// Package sgml implements the SGML substrate of Section 2 of the paper:
// document type definitions (ELEMENT, ATTLIST and ENTITY declarations;
// content models built from the "," sequence, "&" unordered-aggregation and
// "|" choice connectors with "?", "+" and "*" occurrence indicators; tag
// minimisation), and document instances with validation, omitted-tag
// inference, entity substitution and ID/IDREF cross-reference resolution.
//
// It is a from-scratch replacement for the proprietary Euroclid parser the
// paper's prototype used. The mapping into the object model lives in
// package dtdmap.
package sgml

import (
	"fmt"
	"sort"
	"strings"
)

// ContentModel is the recognised structure of an element's content: a
// regular expression over element names and the pseudo-symbols #PCDATA,
// EMPTY and ANY.
type ContentModel interface {
	// String renders the model in DTD syntax.
	String() string
	// nullable reports whether the model matches the empty content.
	nullable() bool
	// first collects the element names (and pcdata) that can start a match.
	first(into map[string]bool)
	// deriv returns the models that can remain after consuming sym; an
	// empty slice means sym cannot occur here. (Brzozowski derivative,
	// kept as a set because "&" groups branch.)
	deriv(sym string) []ContentModel
}

// The symbol used for character data in matching. Element names in SGML
// are case-insensitive and normalised to lower case by the parser, so the
// leading '#' cannot collide.
const pcdataSym = "#PCDATA"

// PCData is the #PCDATA token: character data content.
type PCData struct{}

func (PCData) String() string          { return "#PCDATA" }
func (PCData) nullable() bool          { return true } // character data may be empty
func (PCData) first(m map[string]bool) { m[pcdataSym] = true }
func (p PCData) deriv(sym string) []ContentModel {
	if sym == pcdataSym {
		return []ContentModel{p} // data repeats freely
	}
	return nil
}

// Empty is declared content EMPTY: the element has no content (and in SGML
// its end tag is always omitted).
type Empty struct{}

func (Empty) String() string              { return "EMPTY" }
func (Empty) nullable() bool              { return true }
func (Empty) first(map[string]bool)       {}
func (Empty) deriv(string) []ContentModel { return nil }

// AnyContent is declared content ANY: any mix of data and elements.
type AnyContent struct{}

func (AnyContent) String() string            { return "ANY" }
func (AnyContent) nullable() bool            { return true }
func (a AnyContent) first(m map[string]bool) { m["*"] = true }
func (a AnyContent) deriv(string) []ContentModel {
	return []ContentModel{a}
}

// Name is a reference to an element type within a content model.
type Name struct{ Elem string }

func (n Name) String() string          { return n.Elem }
func (Name) nullable() bool            { return false }
func (n Name) first(m map[string]bool) { m[n.Elem] = true }
func (n Name) deriv(sym string) []ContentModel {
	if sym == n.Elem {
		return []ContentModel{epsilon{}}
	}
	return nil
}

// epsilon matches exactly the empty content; it is the residue of a
// consumed Name and never appears in parsed models.
type epsilon struct{}

func (epsilon) String() string              { return "()" }
func (epsilon) nullable() bool              { return true }
func (epsilon) first(map[string]bool)       {}
func (epsilon) deriv(string) []ContentModel { return nil }

// Seq is the ordered aggregation (a, b, c): each member in order.
type Seq struct{ Items []ContentModel }

func (s Seq) String() string { return groupString(s.Items, ", ") }

func (s Seq) nullable() bool {
	for _, it := range s.Items {
		if !it.nullable() {
			return false
		}
	}
	return true
}

func (s Seq) first(m map[string]bool) {
	for _, it := range s.Items {
		it.first(m)
		if !it.nullable() {
			return
		}
	}
}

func (s Seq) deriv(sym string) []ContentModel {
	var out []ContentModel
	for i, it := range s.Items {
		for _, d := range it.deriv(sym) {
			rest := append([]ContentModel{d}, s.Items[i+1:]...)
			out = append(out, seqOf(rest))
		}
		if !it.nullable() {
			break
		}
	}
	return out
}

// Choice is the alternative (a | b | c): exactly one member.
type Choice struct{ Items []ContentModel }

func (c Choice) String() string { return groupString(c.Items, " | ") }

func (c Choice) nullable() bool {
	for _, it := range c.Items {
		if it.nullable() {
			return true
		}
	}
	return false
}

func (c Choice) first(m map[string]bool) {
	for _, it := range c.Items {
		it.first(m)
	}
}

func (c Choice) deriv(sym string) []ContentModel {
	var out []ContentModel
	for _, it := range c.Items {
		out = append(out, it.deriv(sym)...)
	}
	return out
}

// And is the unordered aggregation (a & b & c): every member exactly once,
// in any order. It is the connector behind the paper's letters example
// (Section 4.4), where sender and recipient appear in permutable order.
type And struct{ Items []ContentModel }

func (a And) String() string { return groupString(a.Items, " & ") }

func (a And) nullable() bool {
	for _, it := range a.Items {
		if !it.nullable() {
			return false
		}
	}
	return true
}

func (a And) first(m map[string]bool) {
	for _, it := range a.Items {
		it.first(m)
	}
}

func (a And) deriv(sym string) []ContentModel {
	var out []ContentModel
	for i, it := range a.Items {
		for _, d := range it.deriv(sym) {
			// The chosen member continues with d and must complete before
			// another member begins (SGML "&" semantics), so sequence d
			// before the And of the remaining members.
			others := make([]ContentModel, 0, len(a.Items)-1)
			others = append(others, a.Items[:i]...)
			others = append(others, a.Items[i+1:]...)
			out = append(out, seqOf([]ContentModel{d, andOf(others)}))
		}
	}
	return out
}

// Occurrence is an occurrence indicator applied to a model.
type Occurrence int

// Occurrence indicators: "?" zero-or-one, "+" one-or-more, "*" zero-or-more.
const (
	Opt  Occurrence = iota // ?
	Plus                   // +
	Rep                    // *
)

// String returns the indicator character.
func (o Occurrence) String() string {
	switch o {
	case Opt:
		return "?"
	case Plus:
		return "+"
	case Rep:
		return "*"
	default:
		return "?"
	}
}

// Occur applies an occurrence indicator to a model.
type Occur struct {
	Item ContentModel
	Ind  Occurrence
}

func (o Occur) String() string {
	s := o.Item.String()
	// Bare names need no parentheses: title+, body*.
	switch o.Item.(type) {
	case Name, PCData:
		return s + o.Ind.String()
	}
	if strings.HasPrefix(s, "(") {
		return s + o.Ind.String()
	}
	return "(" + s + ")" + o.Ind.String()
}

func (o Occur) nullable() bool {
	if o.Ind == Plus {
		return o.Item.nullable()
	}
	return true
}

func (o Occur) first(m map[string]bool) { o.Item.first(m) }

func (o Occur) deriv(sym string) []ContentModel {
	var out []ContentModel
	for _, d := range o.Item.deriv(sym) {
		switch o.Ind {
		case Opt:
			out = append(out, d)
		case Plus, Rep:
			out = append(out, seqOf([]ContentModel{d, Occur{Item: o.Item, Ind: Rep}}))
		}
	}
	return out
}

func groupString(items []ContentModel, sep string) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// seqOf normalises a sequence: drops epsilons, unwraps singletons.
func seqOf(items []ContentModel) ContentModel {
	var keep []ContentModel
	for _, it := range items {
		if _, ok := it.(epsilon); ok {
			continue
		}
		if s, ok := it.(Seq); ok {
			keep = append(keep, s.Items...)
			continue
		}
		keep = append(keep, it)
	}
	switch len(keep) {
	case 0:
		return epsilon{}
	case 1:
		return keep[0]
	default:
		return Seq{Items: keep}
	}
}

// andOf normalises an unordered group: drops epsilons, unwraps singletons.
func andOf(items []ContentModel) ContentModel {
	var keep []ContentModel
	for _, it := range items {
		if _, ok := it.(epsilon); ok {
			continue
		}
		keep = append(keep, it)
	}
	switch len(keep) {
	case 0:
		return epsilon{}
	case 1:
		return keep[0]
	default:
		return And{Items: keep}
	}
}

// Matcher incrementally matches a stream of child symbols (element names
// and pcdata) against a content model using derivative sets. The residual
// set is pruned with structural keys so that repeated derivations stay
// small.
type Matcher struct {
	model     ContentModel
	residuals []ContentModel
	anyModel  bool
}

// NewMatcher starts matching against model.
func NewMatcher(model ContentModel) *Matcher {
	_, isAny := model.(AnyContent)
	return &Matcher{model: model, residuals: []ContentModel{model}, anyModel: isAny}
}

// Model returns the model being matched.
func (m *Matcher) Model() ContentModel { return m.model }

// AcceptsAny reports whether the model is declared ANY.
func (m *Matcher) AcceptsAny() bool { return m.anyModel }

// Step consumes one child symbol: an element name or PCDataSymbol. It
// reports whether the symbol is admissible here.
func (m *Matcher) Step(sym string) bool {
	if m.anyModel {
		return true
	}
	var next []ContentModel
	seen := map[string]bool{}
	for _, r := range m.residuals {
		for _, d := range r.deriv(sym) {
			k := d.String()
			if !seen[k] {
				seen[k] = true
				next = append(next, d)
			}
		}
	}
	if len(next) == 0 {
		return false
	}
	m.residuals = next
	return true
}

// CanStep reports whether sym would be admissible without consuming it.
func (m *Matcher) CanStep(sym string) bool {
	if m.anyModel {
		return true
	}
	for _, r := range m.residuals {
		if len(r.deriv(sym)) > 0 {
			return true
		}
	}
	return false
}

// Complete reports whether the consumed prefix is a complete match.
func (m *Matcher) Complete() bool {
	if m.anyModel {
		return true
	}
	for _, r := range m.residuals {
		if r.nullable() {
			return true
		}
	}
	return false
}

// Next returns the set of symbols admissible at this point, sorted. For
// ANY content it returns ["*"].
func (m *Matcher) Next() []string {
	set := map[string]bool{}
	for _, r := range m.residuals {
		r.first(set)
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Required returns the unique symbol that must come next if the match is
// to be completed and no other symbol is admissible; ok is false when the
// model is complete, ambiguous, or allows several continuations. It drives
// omitted start-tag inference.
func (m *Matcher) Required() (sym string, ok bool) {
	if m.anyModel || m.Complete() {
		return "", false
	}
	next := m.Next()
	if len(next) == 1 && next[0] != "*" {
		return next[0], true
	}
	return "", false
}

// PCDataSymbol is the symbol a Matcher consumes for character data.
const PCDataSymbol = pcdataSym

// CheckAmbiguity verifies SGML's unambiguity requirement on a content
// model: no residual set may ever contain two derivations for the same
// symbol prefix. We approximate with a bounded exploration of the
// derivative graph; models used in practice are tiny. A model is reported
// ambiguous if some reachable residual set holds more than maxResiduals
// states.
func CheckAmbiguity(model ContentModel, maxResiduals int) error {
	start := NewMatcher(model)
	seen := map[string]bool{}
	queue := []*Matcher{start}
	keyOf := func(m *Matcher) string {
		ks := make([]string, len(m.residuals))
		for i, r := range m.residuals {
			ks[i] = r.String()
		}
		sort.Strings(ks)
		return strings.Join(ks, " ")
	}
	seen[keyOf(start)] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.residuals) > maxResiduals {
			return fmt.Errorf("sgml: content model %s is too ambiguous (%d concurrent derivations)",
				model, len(cur.residuals))
		}
		for _, sym := range cur.Next() {
			if sym == "*" {
				continue
			}
			cp := Matcher{model: cur.model, residuals: append([]ContentModel(nil), cur.residuals...)}
			if !cp.Step(sym) {
				continue
			}
			k := keyOf(&cp)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, &cp)
			}
		}
	}
	return nil
}
