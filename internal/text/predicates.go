package text

import (
	"fmt"
	"strings"
)

// Expr is a boolean combination of patterns: the operand of the contains
// predicate in Q1's "SGML" and "OODBMS".
type Expr interface {
	// Eval reports whether the expression holds for the given text.
	Eval(text string) bool
	String() string
}

// MatchExpr is a single pattern atom.
type MatchExpr struct{ Pattern *Pattern }

// Eval implements Expr.
func (e MatchExpr) Eval(text string) bool { return e.Pattern.Match(text) }
func (e MatchExpr) String() string        { return e.Pattern.String() }

// AndExpr holds when both operands hold.
type AndExpr struct{ L, R Expr }

// Eval implements Expr.
func (e AndExpr) Eval(text string) bool { return e.L.Eval(text) && e.R.Eval(text) }
func (e AndExpr) String() string        { return "(" + e.L.String() + " and " + e.R.String() + ")" }

// OrExpr holds when either operand holds.
type OrExpr struct{ L, R Expr }

// Eval implements Expr.
func (e OrExpr) Eval(text string) bool { return e.L.Eval(text) || e.R.Eval(text) }
func (e OrExpr) String() string        { return "(" + e.L.String() + " or " + e.R.String() + ")" }

// NotExpr holds when the operand does not.
type NotExpr struct{ E Expr }

// Eval implements Expr.
func (e NotExpr) Eval(text string) bool { return !e.E.Eval(text) }
func (e NotExpr) String() string        { return "not " + e.E.String() }

// NearExpr is the near predicate: two terms separated by at most Dist
// words in the text ("whether two words are separated by, at most, a given
// number of characters (or words) in a sentence"). With Chars true the
// distance is counted in characters between the term occurrences. Either
// term may be a multi-word phrase; an occurrence is then a run of
// consecutive tokens matching the phrase, and the distance is measured
// between the end of one occurrence and the start of the other.
type NearExpr struct {
	A, B  string
	Dist  int
	Chars bool
}

// span is one occurrence of a near term in the token stream: its word
// position range and byte offset range.
type span struct {
	pos, endPos       int // word positions [pos, endPos)
	offset, endOffset int // byte offsets [offset, endOffset)
}

// phraseSpans finds the occurrences of the phrase (one or more words) in
// the token stream.
func phraseSpans(toks []Token, words []string) []span {
	var out []span
	if len(words) == 0 {
		return out
	}
	for i := 0; i+len(words) <= len(toks); i++ {
		ok := true
		for k, w := range words {
			if toks[i+k].Word != w {
				ok = false
				break
			}
		}
		if ok {
			last := toks[i+len(words)-1]
			out = append(out, span{
				pos:       toks[i].Pos,
				endPos:    last.Pos + 1,
				offset:    toks[i].Offset,
				endOffset: last.Offset + len(last.Word),
			})
		}
	}
	return out
}

// Eval implements Expr.
func (e NearExpr) Eval(text string) bool {
	toks := Tokenize(text)
	aSpans := phraseSpans(toks, Words(e.A))
	bSpans := phraseSpans(toks, Words(e.B))
	for _, sa := range aSpans {
		for _, sb := range bSpans {
			var d int
			if e.Chars {
				if sa.offset < sb.offset {
					d = sb.offset - sa.endOffset
				} else {
					d = sa.offset - sb.endOffset
				}
			} else {
				if sa.pos < sb.pos {
					d = sb.pos - sa.endPos
				} else {
					d = sa.pos - sb.endPos
				}
			}
			if d >= 0 && d <= e.Dist {
				return true
			}
		}
	}
	return false
}

func (e NearExpr) String() string {
	unit := "words"
	if e.Chars {
		unit = "chars"
	}
	return fmt.Sprintf("near(%q, %q, %d %s)", e.A, e.B, e.Dist, unit)
}

// Contains is the contains predicate of Section 4.1: text contains expr.
func Contains(text string, expr Expr) bool { return expr.Eval(text) }

// ContainsWord is the common special case contains("word"): an unanchored
// literal match. A word that fails to compile (impossible for escaped
// literals, but the contains path must not panic) returns the error.
func ContainsWord(text, word string) (bool, error) {
	p, err := Compile(escapeLiteral(word))
	if err != nil {
		return false, err
	}
	return p.Match(text), nil
}

// Word builds the pattern atom for a literal string (metacharacters
// escaped), propagating compile errors instead of panicking.
func Word(s string) (Expr, error) {
	p, err := Compile(escapeLiteral(s))
	if err != nil {
		return nil, err
	}
	return MatchExpr{Pattern: p}, nil
}

// MustWord is Word that panics on error, for fixed literals in tests and
// examples.
func MustWord(s string) Expr {
	e, err := Word(s)
	if err != nil {
		//lint:allow panic Must* constructor for fixed literals, by convention
		panic(err)
	}
	return e
}

// PatternExpr builds a pattern atom from pattern syntax.
func PatternExpr(src string) (Expr, error) {
	p, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return MatchExpr{Pattern: p}, nil
}

// And, Or and Not build boolean combinations.
func And(l, r Expr) Expr { return AndExpr{L: l, R: r} }

// Or builds a disjunction.
func Or(l, r Expr) Expr { return OrExpr{L: l, R: r} }

// Not builds a negation.
func Not(e Expr) Expr { return NotExpr{E: e} }

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '(', ')', '[', ']', '|', '*', '+', '?', '.', '\\':
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	return b.String()
}
