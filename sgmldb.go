// Package sgmldb is a from-scratch Go implementation of "From Structured
// Documents to Novel Query Facilities" (Christophides, Abiteboul, Cluet,
// Scholl — SIGMOD 1994): SGML documents mapped into an object database
// with an extended O₂ data model (ordered tuples, marked unions), queried
// through an extended O₂SQL with paths as first-class citizens, and
// evaluated through the many-sorted calculus of the paper and its
// algebraization.
//
// The typical flow:
//
//	db, _ := sgmldb.OpenDTD(dtdSource)            // Figure 1 → Figure 3
//	oid, _ := db.LoadDocument(articleSource)      // Figure 2 → objects
//	db.Name("my_article", oid)                    // a root of persistence
//	res, _ := db.Query(`select t from my_article PATH_p.title(t)`)
//
// Everything is stdlib-only and in-memory, with snapshot persistence via
// Save and OpenSnapshot.
//
// # Concurrency
//
// A Database serves queries and loads concurrently through epoch-based
// copy-on-write snapshots. Writers (LoadDocument, LoadDocuments, Name)
// serialise among themselves on an internal mutex and build each change
// into a private copy-on-write layer over the published instance — plus a
// lazily-copied clone of the full-text index — publishing the new
// (instance, index) pair with one atomic pointer swap only when the whole
// change succeeded. A failed load is discarded wholesale: the published
// instance is never touched, so no orphan objects can appear (load
// atomicity by construction).
//
// Readers (Query, QueryContext, QueryRows, prepared Run/Rows, Text,
// Check, Stats, Save, Export) pin the snapshot current at their start and
// never block on writers — a query and a load overlap freely, with the
// query answering against the consistent pre-load state. Published
// snapshots are immutable, so the hot evaluation path pays no per-object
// synchronisation. Query evaluation itself can additionally use multiple
// goroutines per query (see WithWorkers) and is cancellable through
// QueryContext.
//
// # Robustness
//
// A Database governs its resources and contains its failures.
// WithMaxConcurrentQueries admits a bounded number of queries and sheds
// the excess with ErrOverloaded after WithQueueTimeout. WithMaxRows,
// WithMaxMemory and WithQueryTimeout bound what one admitted query may
// cost; a query over budget fails alone with ErrBudgetExceeded. A panic
// during evaluation is contained at the API boundary as ErrInternal, and
// a failure (or panic) anywhere in a load is rolled back before anything
// is published — so under misbehaving queries and failing loads alike,
// the database keeps answering from its last good snapshot. DESIGN.md §7
// describes the model; the chaos tests (make chaos) exercise it through
// injected faults.
package sgmldb

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sgmldb/internal/calculus"
	"sgmldb/internal/dtdmap"
	"sgmldb/internal/object"
	"sgmldb/internal/oql"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
	"sgmldb/internal/wal"
)

// Database bundles a mapped schema, its instance, the query engine and
// the full-text index.
type Database struct {
	Mapping *dtdmap.Mapping
	Loader  *dtdmap.Loader
	Engine  *oql.Engine

	// loadMu serialises writers (loads and root naming). Readers never
	// take it: they pin the engine's published snapshot instead.
	loadMu sync.Mutex

	// gate is the admission-control semaphore (nil = unlimited): a query
	// holds one slot for its whole evaluation, excess queries queue on the
	// channel and are shed with ErrOverloaded after queueTimeout. See
	// WithMaxConcurrentQueries.
	gate         chan struct{}
	queueTimeout time.Duration

	// metrics are the cumulative serving counters reported by Stats.
	metrics metrics

	// Durability (nil/zero without WithDataDir; see durable.go). The
	// query path never touches these: durability costs fall on writers
	// only.
	dataDir          string
	checkpointEvery  int
	dtdSource        string
	walLog           *wal.Log
	walClosed        bool
	recordsSinceCkpt int
	ckptCh           chan *wal.Checkpoint
	ckptMu           sync.Mutex
	ckptWG           sync.WaitGroup
	// ckptSeq is the log sequence covered by the newest written
	// checkpoint, for Stats (atomic: the background checkpointer stores
	// it, Stats loads it).
	ckptSeq atomic.Uint64
	// Checkpoint-failure telemetry (DESIGN.md §11): total failures since
	// open, the current consecutive-failure streak (reset by a success),
	// and the last failure's message. All atomic — writeCheckpoint stores
	// from the checkpointer goroutine, Stats and health checks load.
	ckptFailures   atomic.Uint64
	ckptFailStreak atomic.Uint64
	lastCkptErr    atomic.Pointer[string]

	// Replication (see replica.go). A follower applies the primary's log
	// through the commit path; appliedSeq is the last record applied,
	// primarySeq the newest the primary has reported — their difference is
	// the replication lag. follower is atomic because Promote flips it
	// while readers and the apply loop check it concurrently.
	follower   atomic.Bool
	appliedSeq atomic.Uint64
	primarySeq atomic.Uint64

	// Failover (see replica.go). term is the promotion epoch this node
	// writes (or applies) under; fencedTerm is the highest term observed
	// from any remote — a primary whose fencedTerm exceeds its own term
	// has been superseded and refuses writes with ErrStaleTerm.
	// promotions counts term raises observed (including our own Promote);
	// rebootstraps and breakerOpen are follower-client telemetry pushed in
	// by service.Follower so Stats and /v1/health can report them.
	term        atomic.Uint64
	fencedTerm  atomic.Uint64
	promotions  atomic.Uint64
	rebootstrap atomic.Uint64
	breakerOpen atomic.Bool
}

// acquire admits one query, blocking while WithMaxConcurrentQueries
// queries are in flight. The returned release frees the slot; it must be
// called exactly once. With no gate configured both are no-ops.
func (db *Database) acquire(ctx context.Context) (release func(), err error) {
	if db.gate == nil {
		return func() {}, nil
	}
	select {
	case db.gate <- struct{}{}:
		return func() { <-db.gate }, nil
	default:
	}
	var timeout <-chan time.Time
	if db.queueTimeout > 0 {
		t := time.NewTimer(db.queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case db.gate <- struct{}{}:
		return func() { <-db.gate }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timeout:
		db.metrics.shed.Add(1)
		return nil, fmt.Errorf("%w: %d queries in flight, queued %v", ErrOverloaded, cap(db.gate), db.queueTimeout)
	}
}

// rescue converts a panic that unwound to the API boundary into an
// ErrInternal-wrapped error carrying the panic value and stack. The
// published snapshot is immutable, so a contained panic cannot have
// corrupted it: the database keeps serving. (Worker goroutines of a
// parallel plan do their own conversion; rescue covers the serial path.)
func rescue(err *error) {
	if r := recover(); r != nil {
		*err = calculus.Internal(r)
	}
}

// OpenDTD compiles a DTD (Section 3) and opens an empty database for its
// documents.
func OpenDTD(dtdSource string, opts ...Option) (*Database, error) {
	return open(dtdSource, false, opts)
}

// open is the shared body of OpenDTD and OpenFollower: the follower flag
// must be set before a durable recovery runs, because a follower's data
// directory replays the primary's shipped history, not its own writes.
func open(dtdSource string, follower bool, opts []Option) (*Database, error) {
	dtd, err := sgml.ParseDTD(dtdSource)
	if err != nil {
		return nil, err
	}
	m, err := dtdmap.MapDTD(dtd)
	if err != nil {
		return nil, err
	}
	loader := dtdmap.NewLoader(m)
	db := &Database{Mapping: m, Loader: loader}
	db.follower.Store(follower)
	db.dtdSource = dtdSource
	db.wire(loader.Instance, opts)
	if db.dataDir != "" {
		// Durable open: recover the last durable state from the data
		// directory (or initialize a fresh one) instead of publishing the
		// empty instance. See durable.go.
		if err := db.openDurable(dtdSource); err != nil {
			return nil, err
		}
		return db, nil
	}
	db.Engine.Publish(oql.State{Snap: loader.Instance.Snapshot(), Index: db.Engine.Index})
	return db, nil
}

// wire builds the engine over an instance and applies the open options.
// The caller publishes the initial snapshot once the index is built.
func (db *Database) wire(inst *store.Instance, opts []Option) {
	env := calculus.NewEnv(inst)
	env.TextOf = dtdmap.TextOf
	db.Engine = oql.New(env)
	db.Engine.Index = text.NewIndex()
	for _, opt := range opts {
		opt(db)
	}
}

// state returns the published snapshot queries and read-only methods
// answer against.
func (db *Database) state() oql.State { return db.Engine.State() }

// Instance exposes the currently published store instance. Writers
// publish new versions; the returned instance is immutable.
func (db *Database) Instance() *store.Instance { return db.state().Snap.Inst }

// Epoch reports the published snapshot's version number; it advances on
// every successful load or root naming.
func (db *Database) Epoch() uint64 { return db.state().Snap.Epoch }

// Schema exposes the mapped schema.
func (db *Database) Schema() *store.Schema { return db.Instance().Schema() }

// LoadDocument parses, validates and loads one SGML document, returning
// the oid of its document object. The document is added to the plural
// persistence root (e.g. Articles) and to the full-text index. The load
// is atomic — on error the published database state is exactly what it
// was — and concurrent queries keep running against the pre-load
// snapshot. On a snapshot database it reports ErrReadOnly.
func (db *Database) LoadDocument(src string) (object.OID, error) {
	oids, err := db.LoadDocuments([]string{src})
	if err != nil {
		return 0, err
	}
	return oids[0], nil
}

// LoadDocuments loads a batch of documents as one atomic unit: either
// every document becomes visible — in one snapshot publication, one
// copy-on-write layer and one index version — or none does. Batching
// amortises the per-publication cost (root update, index clone, pointer
// swap) over the whole batch. An empty (or nil) batch is a no-op: it
// returns (nil, nil) without taking the writer lock or publishing.
//
// Failures anywhere on the staging path — a document that fails
// validation or loading, and even a panic while rebuilding the text
// index — roll the loader back to the pre-load state (panics surface as
// ErrInternal); the published snapshot was never touched, so concurrent
// queries are unaffected either way.
func (db *Database) LoadDocuments(srcs []string) (oids []object.OID, err error) {
	if db.Loader == nil {
		return nil, ErrReadOnly
	}
	if db.follower.Load() {
		return nil, fmt.Errorf("%w: followers apply the primary's log only", ErrReadOnly)
	}
	if err := db.degradedErr(); err != nil {
		return nil, err
	}
	// Parse and validate outside the writer lock: only instance building
	// needs serialisation.
	docs := make([]*sgml.Document, len(srcs))
	for i, src := range srcs {
		doc, err := sgml.ParseDocument(db.Mapping.DTD, src)
		if err != nil {
			return nil, err
		}
		docs[i] = doc
	}
	if len(docs) == 0 {
		return nil, nil
	}
	db.loadMu.Lock()
	defer db.loadMu.Unlock()
	return db.commitLoad(docs, srcs, true, 0)
}

// commitLoad stages a parsed batch, makes it durable (when the database
// has a log and logIt is set — recovery replays through here with logIt
// false), and publishes it. Caller holds loadMu.
//
// After a successful LoadAll the loader already sits on the staged layer;
// a failure between that point and Publish (the index rebuild can panic,
// the log append can fail) must swing it back, or the "failed" batch
// would leak into the next successful load. The mark captures the
// pre-load state, and the rollback runs under loadMu, so no other writer
// sees the window. The append is fsynced before Publish: a published
// epoch is always recoverable.
//
// recTerm is the term to log the record under: 0 on the primary write
// path (the log stamps its current term), the shipped record's term on a
// durable follower's apply path.
//
//sgmldbvet:commitpath
func (db *Database) commitLoad(docs []*sgml.Document, srcs []string, logIt bool, recTerm uint64) (oids []object.OID, err error) {
	if logIt {
		if err := db.fencedErr(); err != nil {
			return nil, err
		}
	}
	mark := db.Loader.Mark()
	defer func() {
		if r := recover(); r != nil {
			err = calculus.Internal(r)
		}
		if err != nil {
			db.Loader.Restore(mark)
			oids = nil
		}
	}()
	oids, err = db.Loader.LoadAll(docs)
	if err != nil {
		return nil, err
	}
	staged := db.Loader.Instance
	ix := db.state().Index.Clone()
	for _, oid := range oids {
		ix.Add(text.DocID(oid), dtdmap.TextOf(staged, oid))
	}
	if logIt && db.walLog != nil {
		if err = db.walLog.Append(wal.Record{Kind: wal.KindLoad, Docs: srcs, Term: recTerm}); err != nil {
			return nil, db.wrapDegraded(err)
		}
	}
	db.Engine.Publish(oql.State{Snap: staged.Snapshot(), Index: ix})
	if logIt {
		db.maybeCheckpoint(staged, ix)
	}
	return oids, nil
}

// Name declares a root of persistence for an object (e.g. my_article),
// making it addressable from queries. It reports ErrUnknownObject for an
// unassigned oid. Like a load, the change is staged on a copy-on-write
// layer (with a cloned schema when the root is new, so pinned readers
// keep a stable view of G) and published atomically.
func (db *Database) Name(name string, oid object.OID) (err error) {
	if db.follower.Load() {
		return fmt.Errorf("%w: followers apply the primary's log only", ErrReadOnly)
	}
	if err := db.degradedErr(); err != nil {
		return err
	}
	defer rescue(&err)
	db.loadMu.Lock()
	defer db.loadMu.Unlock()
	return db.commitName(name, oid, true, 0)
}

// commitName stages, logs (when logIt — recovery replays with it unset),
// and publishes one root naming. Caller holds loadMu.
//
//sgmldbvet:commitpath
func (db *Database) commitName(name string, oid object.OID, logIt bool, recTerm uint64) error {
	if logIt {
		if err := db.fencedErr(); err != nil {
			return err
		}
	}
	cur := db.state()
	published := cur.Snap.Inst
	class, ok := published.ClassOf(oid)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownObject, oid)
	}
	staged := published.Begin()
	if _, exists := published.Schema().RootType(name); !exists {
		s2 := published.Schema().Clone()
		if err := s2.AddRoot(name, object.Class(class)); err != nil {
			staged.Discard()
			return err
		}
		staged.AdoptSchema(s2)
	}
	if err := staged.SetRoot(name, oid); err != nil {
		staged.Discard()
		return err
	}
	if logIt && db.walLog != nil {
		if err := db.walLog.Append(wal.Record{Kind: wal.KindName, Name: name, OID: uint64(oid), Term: recTerm}); err != nil {
			staged.Discard()
			return db.wrapDegraded(err)
		}
	}
	db.Engine.Publish(oql.State{Snap: staged.Snapshot(), Index: cur.Index})
	// The loader must build the next load on the newly published version,
	// or it would branch from a stale base and drop the root binding.
	if db.Loader != nil {
		db.Loader.Instance = staged
	}
	if logIt {
		db.maybeCheckpoint(staged, cur.Index)
	}
	return nil
}

// Query runs an extended O₂SQL query and returns its value (a set for
// select and pattern queries). It is QueryContext under
// context.Background.
func (db *Database) Query(src string) (object.Value, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext runs a query under a context: cancelling ctx makes the
// evaluation return ctx's error promptly. Any number of QueryContext
// calls may run concurrently, including while a load is in flight: the
// query pins the snapshot current at its start and never blocks on
// writers (admission control, when configured, may queue it behind other
// queries). An evaluation panic is contained here and reported as
// ErrInternal; the database keeps serving. Per-call options tighten the
// database budgets for this one execution (see QueryOption).
func (db *Database) QueryContext(ctx context.Context, src string, opts ...QueryOption) (v object.Value, err error) {
	release, err := db.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer func() { db.observe(err) }()
	defer rescue(&err)
	return db.Engine.QueryBudget(ctx, src, db.callBudget(opts))
}

// QueryRows runs a query and returns the raw rows with their sorted
// bindings (paths stay paths). It is QueryRowsContext under
// context.Background.
func (db *Database) QueryRows(src string, opts ...QueryOption) (*calculus.Result, error) {
	return db.QueryRowsContext(context.Background(), src, opts...)
}

// QueryRowsContext is QueryRows under a context, with per-call options
// tightening the database budgets for this one execution.
func (db *Database) QueryRowsContext(ctx context.Context, src string, opts ...QueryOption) (res *calculus.Result, err error) {
	release, err := db.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer func() { db.observe(err) }()
	defer rescue(&err)
	return db.Engine.RowsBudget(ctx, src, db.callBudget(opts))
}

// Prepare parses, typechecks and compiles a query once for repeated —
// possibly concurrent — execution via Run or Rows.
func (db *Database) Prepare(src string) (pq *PreparedQuery, err error) {
	defer rescue(&err)
	p, err := db.Engine.Prepare(src)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{db: db, p: p}, nil
}

// PreparedQuery is a compiled query bound to its database. It is safe for
// concurrent use and stays valid across document loads (the plan is
// recompiled transparently when the schema changes; each execution pins
// the snapshot current at its start).
type PreparedQuery struct {
	db *Database
	p  *oql.Prepared
}

// Source returns the query text the statement was prepared from.
func (pq *PreparedQuery) Source() string { return pq.p.Source() }

// Run evaluates the prepared query and returns its value, like
// Database.QueryContext without the per-call front-end work. Executions
// count against admission control like any other query; per-call options
// tighten the database budgets for this one execution.
func (pq *PreparedQuery) Run(ctx context.Context, opts ...QueryOption) (v object.Value, err error) {
	release, err := pq.db.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer func() { pq.db.observe(err) }()
	defer rescue(&err)
	return pq.p.RunBudget(ctx, pq.db.callBudget(opts))
}

// Rows evaluates the prepared query and returns the raw rows.
func (pq *PreparedQuery) Rows(ctx context.Context, opts ...QueryOption) (res *calculus.Result, err error) {
	release, err := pq.db.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	defer func() { pq.db.observe(err) }()
	defer rescue(&err)
	return pq.p.RowsBudget(ctx, pq.db.callBudget(opts))
}

// UseAlgebra switches evaluation to the Section 5.4 algebra plans.
//
// Deprecated: prefer the WithAlgebra open option, which fixes the
// evaluation strategy before any query can run. UseAlgebra remains for
// compatibility; like the option it must not be called while queries are
// in flight.
func (db *Database) UseAlgebra(on bool) {
	db.loadMu.Lock()
	defer db.loadMu.Unlock()
	db.Engine.UseAlgebra = on
}

// Text returns the text of a logical object (the text operator).
func (db *Database) Text(v object.Value) string {
	return dtdmap.TextOf(db.Instance(), v)
}

// Check validates the published instance against the schema and the
// Figure 3 constraints.
func (db *Database) Check() []error {
	return db.Instance().Check()
}

// Save writes a snapshot of the database to a file.
func (db *Database) Save(path string) error {
	return store.SaveFile(path, db.Instance())
}

// OpenSnapshot reopens a saved database for querying. Loading further
// documents requires the original DTD (use OpenDTD and reload instead).
func OpenSnapshot(path string, opts ...Option) (*Database, error) {
	inst, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	db := &Database{}
	db.wire(inst, opts)
	if db.dataDir != "" {
		return nil, fmt.Errorf("sgmldb: WithDataDir needs the DTD to replay loads; use OpenDTD")
	}
	// Rebuild the full-text index over the document roots: both plural
	// roots (lists of documents) and singular roots naming one document.
	indexed := map[object.OID]bool{}
	addDoc := func(o object.OID) {
		if !indexed[o] {
			indexed[o] = true
			db.Engine.Index.Add(text.DocID(o), dtdmap.TextOf(inst, o))
		}
	}
	for _, g := range inst.Schema().Roots() {
		v, ok := inst.Root(g)
		if !ok {
			continue
		}
		switch r := v.(type) {
		case *object.List:
			for i := 0; i < r.Len(); i++ {
				if o, isOID := r.At(i).(object.OID); isOID {
					addDoc(o)
				}
			}
		case object.OID:
			addDoc(r)
		default:
			// other root shapes hold no document objects
		}
	}
	db.Engine.Publish(oql.State{Snap: inst.Snapshot(), Index: db.Engine.Index})
	return db, nil
}

// Export reconstructs the SGML source of a loaded document object — the
// inverse mapping of the paper's footnote 1. The result re-parses and
// re-loads to an isomorphic instance. It reports ErrNoMapping on a
// database opened without the DTD.
func (db *Database) Export(doc object.OID) (string, error) {
	if db.Mapping == nil {
		return "", fmt.Errorf("%w: export", ErrNoMapping)
	}
	return dtdmap.Export(db.Mapping, db.Instance(), doc)
}

// SchemaString renders the schema in the paper's Figure 3 syntax.
func (db *Database) SchemaString() string {
	return db.Schema().String()
}

// OpenDTDFile is OpenDTD over a file.
func OpenDTDFile(path string, opts ...Option) (*Database, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenDTD(string(src), opts...)
}

// LoadDocumentFile loads a document from a file.
func (db *Database) LoadDocumentFile(path string) (object.OID, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return db.LoadDocument(string(src))
}
