package path

import (
	"strings"

	"sgmldb/internal/object"
)

// This file implements schema-level path enumeration: the analysis of
// Section 5.4 that finds candidate valuations for path and attribute
// variables from the schema alone, so that a query with path variables can
// be rewritten into a union of variable-free queries. An abstract path is
// a concrete path with indices and set members generalised to wildcards.

// AbstractStep is one step of an abstract (schema-level) path.
type AbstractStep struct {
	Kind StepKind
	Name string // attribute name for StepAttr
}

// String renders the abstract step: ".a", "[*]", "->", "{*}".
func (s AbstractStep) String() string {
	switch s.Kind {
	case StepAttr:
		return "." + s.Name
	case StepIndex:
		return "[*]"
	case StepDeref:
		return "->"
	case StepMember:
		return "{*}"
	default:
		return "?"
	}
}

// Abstract is a schema-level path shape.
type Abstract struct {
	steps []AbstractStep
}

// NewAbstract builds an abstract path.
func NewAbstract(steps ...AbstractStep) Abstract {
	cp := make([]AbstractStep, len(steps))
	copy(cp, steps)
	return Abstract{steps: cp}
}

// Len reports the number of steps.
func (a Abstract) Len() int { return len(a.steps) }

// At returns the i-th step.
func (a Abstract) At(i int) AbstractStep { return a.steps[i] }

// Steps returns a copy of the steps.
func (a Abstract) Steps() []AbstractStep {
	cp := make([]AbstractStep, len(a.steps))
	copy(cp, a.steps)
	return cp
}

// Append returns a extended by steps.
func (a Abstract) Append(steps ...AbstractStep) Abstract {
	cp := make([]AbstractStep, 0, len(a.steps)+len(steps))
	cp = append(cp, a.steps...)
	cp = append(cp, steps...)
	return Abstract{steps: cp}
}

// String renders the abstract path ("ε" when empty).
func (a Abstract) String() string {
	if len(a.steps) == 0 {
		return "ε"
	}
	var b strings.Builder
	for _, s := range a.steps {
		b.WriteString(s.String())
	}
	return b.String()
}

// Matches reports whether concrete path p instantiates the abstract path.
func (a Abstract) Matches(p Path) bool {
	if p.Len() != len(a.steps) {
		return false
	}
	for i, as := range a.steps {
		ps := p.At(i)
		if ps.Kind != as.Kind {
			return false
		}
		if as.Kind == StepAttr && as.Name != ps.Name {
			return false
		}
	}
	return true
}

// Abstraction generalises a concrete path to its abstract shape.
func Abstraction(p Path) Abstract {
	steps := make([]AbstractStep, p.Len())
	for i, s := range p.Steps() {
		steps[i] = AbstractStep{Kind: s.Kind, Name: s.Name}
	}
	return Abstract{steps: steps}
}

// TypedAbstract pairs an abstract path with the type it reaches.
type TypedAbstract struct {
	Path Abstract
	Type object.Type
}

// EnumerateSchema produces every abstract path from a root type under the
// restricted semantics (no class dereferenced twice along a path), with
// the type each path reaches. This is the candidate-valuation analysis of
// Section 5.4: a query ∃P(⟨v P ·title(X)⟩) is compiled by instantiating P
// with every enumerated abstract path whose continuation admits ·title.
//
// The hierarchy resolves class types (σ) and subclasses: dereferencing a
// class type explores σ(c') for every c' ≺* c, since π(c) contains
// objects of every subclass.
func EnumerateSchema(h *object.Hierarchy, root object.Type, maxLen int) []TypedAbstract {
	e := &schemaEnum{h: h, maxLen: maxLen}
	e.visit(root, NewAbstract(), map[string]bool{})
	return e.out
}

type schemaEnum struct {
	h      *object.Hierarchy
	maxLen int
	out    []TypedAbstract
}

func (e *schemaEnum) visit(t object.Type, a Abstract, derefed map[string]bool) {
	e.out = append(e.out, TypedAbstract{Path: a, Type: t})
	if e.maxLen > 0 && a.Len() >= e.maxLen {
		return
	}
	switch x := t.(type) {
	case object.TupleType:
		for _, f := range x.Fields() {
			e.visit(f.Type, a.Append(AbstractStep{Kind: StepAttr, Name: f.Name}), derefed)
		}
	case object.UnionType:
		for _, alt := range x.Alts() {
			e.visit(alt.Type, a.Append(AbstractStep{Kind: StepAttr, Name: alt.Name}), derefed)
		}
	case object.ListType:
		e.visit(x.Elem, a.Append(AbstractStep{Kind: StepIndex}), derefed)
	case object.SetType:
		e.visit(x.Elem, a.Append(AbstractStep{Kind: StepMember}), derefed)
	case object.ClassType:
		e.derefClass(x.Name, a, derefed)
	case object.AnyType:
		if e.h == nil {
			return
		}
		// any covers every class: dereference each declared class not yet
		// crossed.
		for _, c := range e.h.Classes() {
			e.derefClass(c, a, derefed)
		}
	default:
		// atomic types are leaves: no further steps
	}
}

func (e *schemaEnum) derefClass(class string, a Abstract, derefed map[string]bool) {
	if e.h == nil {
		return
	}
	// π(class) holds objects of class and its subclasses; their values
	// follow the respective σ. Each subclass counts as its own
	// dereference target.
	for _, sub := range e.h.Subclasses(class) {
		if derefed[sub] {
			continue
		}
		t, ok := e.h.TypeOf(sub)
		if !ok {
			continue
		}
		d2 := copyStrSet(derefed)
		d2[sub] = true
		e.visit(t, a.Append(AbstractStep{Kind: StepDeref}), d2)
	}
}

// DedupAbstract removes duplicate (path, type) pairs, preserving order.
// EnumerateSchema over a class hierarchy can reach the same shape through
// different subclasses (e.g. →.content via Title and via Author).
func DedupAbstract(in []TypedAbstract) []TypedAbstract {
	seen := map[string]bool{}
	var out []TypedAbstract
	for _, ta := range in {
		k := ta.Path.String() + "\x01" + object.TypeKey(ta.Type)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, ta)
	}
	return out
}
