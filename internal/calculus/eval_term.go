package calculus

import (
	"errors"
	"fmt"
	"sort"

	"sgmldb/internal/object"
	"sgmldb/internal/path"
)

// naturalLess orders values for the sort function: numbers first (by
// value), then strings (lexicographic), then everything else by canonical
// key.
func naturalLess(a, b object.Value) bool {
	an, aIsN := numeric(a)
	bn, bIsN := numeric(b)
	switch {
	case aIsN && bIsN:
		return an < bn
	case aIsN:
		return true
	case bIsN:
		return false
	}
	as, aIsS := a.(object.String_)
	bs, bIsS := b.(object.String_)
	switch {
	case aIsS && bIsS:
		return as < bs
	case aIsS:
		return true
	case bIsS:
		return false
	}
	return object.Key(a) < object.Key(b)
}

func numeric(v object.Value) (float64, bool) {
	switch x := v.(type) {
	case object.Int:
		return float64(x), true
	case object.Float:
		return float64(x), true
	default:
		return 0, false
	}
}

// evalTerm evaluates a term of any sort under a valuation; every variable
// in the term must be bound (range restriction guarantees it when the
// evaluator calls this).
func (e *Env) evalTerm(t Term, v Valuation) (Binding, error) {
	switch x := t.(type) {
	case DataTerm:
		val, err := e.evalDataTerm(x, v)
		if err != nil {
			return Binding{}, err
		}
		return DataBinding(val), nil
	case PathTerm:
		p, err := e.evalPathTerm(x, v)
		if err != nil {
			return Binding{}, err
		}
		return PathBinding(p), nil
	case AttrTerm:
		a, err := e.evalAttrTerm(x, v)
		if err != nil {
			return Binding{}, err
		}
		return AttrBinding(a), nil
	default:
		return Binding{}, fmt.Errorf("calculus: cannot evaluate term %v", t)
	}
}

// evalDataTerm evaluates a data term to a value.
func (e *Env) evalDataTerm(t DataTerm, v Valuation) (object.Value, error) {
	switch x := t.(type) {
	case Const:
		if x.V == nil {
			return object.Nil{}, nil
		}
		return x.V, nil
	case NameRef:
		if e.Inst == nil {
			return nil, fmt.Errorf("calculus: no instance for name %s", x.Name)
		}
		val, ok := e.Inst.Root(x.Name)
		if !ok {
			return nil, fmt.Errorf("calculus: unknown persistence root %s", x.Name)
		}
		return val, nil
	case Var:
		b, ok := v[x.Name]
		if !ok {
			return nil, fmt.Errorf("calculus: unbound variable %s", x.Name)
		}
		return b.Value(), nil
	case TupleTerm:
		fields := make([]object.Field, len(x.Fields))
		for i, f := range x.Fields {
			name, err := e.evalAttrTerm(f.Attr, v)
			if err != nil {
				return nil, err
			}
			val, err := e.evalDataTerm(f.T, v)
			if err != nil {
				return nil, err
			}
			fields[i] = object.Field{Name: name, Value: val}
		}
		return object.NewTuple(fields...), nil
	case ListTerm:
		items := make([]object.Value, len(x.Items))
		for i, it := range x.Items {
			val, err := e.evalDataTerm(it, v)
			if err != nil {
				return nil, err
			}
			items[i] = val
		}
		return object.NewList(items...), nil
	case SetTerm:
		items := make([]object.Value, len(x.Items))
		for i, it := range x.Items {
			val, err := e.evalDataTerm(it, v)
			if err != nil {
				return nil, err
			}
			items[i] = val
		}
		return object.NewSet(items...), nil
	case FuncCall:
		return e.evalFunc(x, v)
	case PathApply:
		base, err := e.evalDataTerm(x.Base, v)
		if err != nil {
			return nil, err
		}
		p, err := e.evalPathTerm(x.Path, v)
		if err != nil {
			return nil, err
		}
		return e.applyWithSelectors(base, p)
	case InnerQuery:
		// Correlated nested query: evaluate with the outer valuation as
		// the seed.
		vals, err := e.evalFormula(x.Q.Body, []Valuation{v})
		if err != nil {
			return nil, err
		}
		var out []object.Value
		seen := map[string]bool{}
		for i, val := range vals {
			if err := e.pollCtx(i); err != nil {
				return nil, err
			}
			var item object.Value
			if len(x.Q.Head) == 1 {
				b, ok := val[x.Q.Head[0].Name]
				if !ok {
					return nil, fmt.Errorf("calculus: inner query head %s unbound", x.Q.Head[0].Name)
				}
				item = b.Value()
			} else {
				fields := make([]object.Field, len(x.Q.Head))
				for i, h := range x.Q.Head {
					b, ok := val[h.Name]
					if !ok {
						return nil, fmt.Errorf("calculus: inner query head %s unbound", h.Name)
					}
					fields[i] = object.Field{Name: h.Name, Value: b.Value()}
				}
				item = object.NewTuple(fields...)
			}
			k := object.Key(item)
			if !seen[k] {
				seen[k] = true
				out = append(out, item)
			}
		}
		return object.NewSet(out...), nil
	default:
		return nil, fmt.Errorf("calculus: cannot evaluate data term %T", t)
	}
}

// errNoSuchPath marks a path application that does not exist on the value
// at hand. Per Section 5.3 ("we will assume that each atom where this
// occurs is false"), atoms catch it and evaluate to false instead of
// failing the query.
var errNoSuchPath = errors.New("calculus: path does not apply")

// applyWithSelectors follows a concrete path like path.Apply but inserts
// the implicit selectors of Section 4.2: an attribute step on a marked
// union whose marker differs is retried inside the alternative.
func (e *Env) applyWithSelectors(v object.Value, p path.Path) (object.Value, error) {
	cur := v
	for _, s := range p.Steps() {
		// Implicit selection: unwrap markers that the step does not name.
		for {
			u, ok := cur.(*object.Union_)
			if !ok {
				break
			}
			if s.Kind == path.StepAttr && u.Marker == s.Name {
				break
			}
			cur = u.Value
		}
		// Implicit dereference: O₂SQL's a.title on an object navigates
		// through the identity transparently.
		if s.Kind != path.StepDeref {
			if o, isOID := cur.(object.OID); isOID && e.Inst != nil {
				if inner, ok := e.Inst.Deref(o); ok {
					cur = inner
					// Unwrap markers again after the dereference.
					for {
						u, ok := cur.(*object.Union_)
						if !ok || (s.Kind == path.StepAttr && u.Marker == s.Name) {
							break
						}
						cur = u.Value
					}
				}
			}
		}
		next, err := path.Apply(e.Inst, cur, path.New(s))
		if err != nil {
			return nil, fmt.Errorf("%w: %w", errNoSuchPath, err)
		}
		cur = next
	}
	return cur, nil
}

// evalPathTerm resolves a ground path term (every variable bound) to a
// concrete path.
func (e *Env) evalPathTerm(t PathTerm, v Valuation) (path.Path, error) {
	out := path.Empty
	for _, el := range t.Elems {
		switch x := el.(type) {
		case ElemVar:
			b, ok := v[x.Name]
			if !ok || b.Sort != SortPath {
				return path.Empty, fmt.Errorf("calculus: unbound path variable %s", x.Name)
			}
			out = out.Concat(b.Path)
		case ElemDeref:
			out = out.Append(path.Deref())
		case ElemAttr:
			name, err := e.evalAttrTerm(x.A, v)
			if err != nil {
				return path.Empty, err
			}
			out = out.Append(path.Attr(name))
		case ElemIndex:
			iv, err := e.evalDataTerm(x.I, v)
			if err != nil {
				return path.Empty, err
			}
			n, ok := iv.(object.Int)
			if !ok {
				return path.Empty, fmt.Errorf("calculus: index %s is not an integer", iv)
			}
			out = out.Append(path.Index(int(n)))
		case ElemMember:
			mv, err := e.evalDataTerm(x.T, v)
			if err != nil {
				return path.Empty, err
			}
			out = out.Append(path.Member(mv))
		case ElemBind:
			// A binding contributes no step.
		default:
			return path.Empty, fmt.Errorf("calculus: cannot resolve path element %T", el)
		}
	}
	return out, nil
}

// evalAttrTerm resolves an attribute term to a name.
func (e *Env) evalAttrTerm(t AttrTerm, v Valuation) (string, error) {
	switch x := t.(type) {
	case AttrName:
		return x.Name, nil
	case AttrVar:
		b, ok := v[x.Name]
		if !ok || b.Sort != SortAttr {
			return "", fmt.Errorf("calculus: unbound attribute variable %s", x.Name)
		}
		return b.Attr, nil
	default:
		return "", fmt.Errorf("calculus: cannot evaluate attribute term %T", t)
	}
}

// evalFunc dispatches interpreted functions: the built-ins of Section 5.2
// (length, name, set_to_list, …) plus the environment's registry and the
// instance's methods.
func (e *Env) evalFunc(f FuncCall, v Valuation) (object.Value, error) {
	args := make([]Binding, len(f.Args))
	for i, a := range f.Args {
		b, err := e.evalTerm(a, v)
		if err != nil {
			return nil, err
		}
		args[i] = b
	}
	switch f.Name {
	case "length":
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: length takes one argument")
		}
		switch args[0].Sort {
		case SortPath:
			return object.Int(args[0].Path.Len()), nil
		default:
			switch x := args[0].Data.(type) {
			case *object.List:
				return object.Int(x.Len()), nil
			case *object.Set:
				return object.Int(x.Len()), nil
			case object.String_:
				return object.Int(len(x)), nil
			case *object.Tuple:
				return object.Int(x.Len()), nil
			default:
				return nil, fmt.Errorf("calculus: length of %s", args[0])
			}
		}
	case "name":
		if len(args) != 1 || args[0].Sort != SortAttr {
			return nil, fmt.Errorf("calculus: name takes one attribute argument")
		}
		return object.String_(args[0].Attr), nil
	case "first", "last":
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: %s takes one argument", f.Name)
		}
		l, ok := object.AsList(args[0].Value())
		if !ok || l.Len() == 0 {
			return object.Nil{}, nil
		}
		if f.Name == "first" {
			return l.At(0), nil
		}
		return l.At(l.Len() - 1), nil
	case "count":
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: count takes one argument")
		}
		switch x := args[0].Value().(type) {
		case *object.List:
			return object.Int(x.Len()), nil
		case *object.Set:
			return object.Int(x.Len()), nil
		default:
			return nil, fmt.Errorf("calculus: count of %s", args[0])
		}
	case "union", "diff", "intersect":
		if len(args) != 2 {
			return nil, fmt.Errorf("calculus: %s takes two arguments", f.Name)
		}
		l, ok1 := args[0].Value().(*object.Set)
		r, ok2 := args[1].Value().(*object.Set)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("calculus: %s of non-sets %s, %s", f.Name, args[0], args[1])
		}
		switch f.Name {
		case "union":
			return l.Union(r), nil
		case "diff":
			return l.Diff(r), nil
		default:
			return l.Intersect(r), nil
		}
	case "element":
		// element(S): the unique member of a singleton set (O₂SQL's
		// element operator).
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: element takes one argument")
		}
		s, ok := args[0].Value().(*object.Set)
		if !ok {
			return nil, fmt.Errorf("calculus: element of non-set %s", args[0])
		}
		if s.Len() != 1 {
			return nil, fmt.Errorf("calculus: element of a set with %d members", s.Len())
		}
		return s.At(0), nil
	case "flatten":
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: flatten takes one argument")
		}
		s, ok := args[0].Value().(*object.Set)
		if !ok {
			return nil, fmt.Errorf("calculus: flatten of non-set %s", args[0])
		}
		var out []object.Value
		for _, el := range s.Elems() {
			switch c := el.(type) {
			case *object.Set:
				out = append(out, c.Elems()...)
			case *object.List:
				out = append(out, c.Elems()...)
			default:
				out = append(out, c)
			}
		}
		return object.NewSet(out...), nil
	case "set_to_list":
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: set_to_list takes one argument")
		}
		s, ok := args[0].Value().(*object.Set)
		if !ok {
			return nil, fmt.Errorf("calculus: set_to_list of %s", args[0])
		}
		return object.NewList(s.Elems()...), nil
	case "sort":
		// sort(collection): the elements as a list in ascending order
		// (numbers before strings before everything else, then canonical)
		// — the paper's sort_by family, specialised to natural order.
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: sort takes one argument")
		}
		var elems []object.Value
		switch c := args[0].Value().(type) {
		case *object.Set:
			elems = c.Elems()
		case *object.List:
			elems = c.Elems()
		default:
			return nil, fmt.Errorf("calculus: sort of %s", args[0])
		}
		sort.SliceStable(elems, func(i, j int) bool { return naturalLess(elems[i], elems[j]) })
		return object.NewList(elems...), nil
	case "text":
		if len(args) != 1 {
			return nil, fmt.Errorf("calculus: text takes one argument")
		}
		txt, ok := e.textOf(args[0].Value())
		if !ok {
			return nil, fmt.Errorf("calculus: no text mapping configured")
		}
		return object.String_(txt), nil
	case "slice":
		if len(args) != 3 {
			return nil, fmt.Errorf("calculus: slice takes (path|list, from, to)")
		}
		from, ok1 := args[1].Data.(object.Int)
		to, ok2 := args[2].Data.(object.Int)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("calculus: slice bounds must be integers")
		}
		if args[0].Sort == SortPath {
			return args[0].Path.Slice(int(from), int(to)).Value(), nil
		}
		l, ok := object.AsList(args[0].Value())
		if !ok {
			return nil, fmt.Errorf("calculus: slice of %s", args[0])
		}
		return l.Slice(int(from), int(to)), nil
	}
	if fn, ok := e.Funcs[f.Name]; ok {
		b, err := fn(args)
		if err != nil {
			return nil, err
		}
		return b.Value(), nil
	}
	// Methods: m(o, args…) invokes method m on the receiver oid ("paths
	// that go through method calls", footnote 3 of the paper). When the
	// receiver is not an object, or no binding applies to its class, the
	// enclosing atom is false rather than the query failing (Section 5.3).
	if e.Inst != nil && len(args) >= 1 && e.Inst.HasMethodNamed(f.Name) {
		recv, ok := args[0].Data.(object.OID)
		if !ok {
			return nil, fmt.Errorf("%w: method %s on non-object receiver", errNoSuchPath, f.Name)
		}
		rest := make([]object.Value, len(args)-1)
		for i, a := range args[1:] {
			rest[i] = a.Value()
		}
		out, err := e.Inst.Invoke(recv, f.Name, rest...)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", errNoSuchPath, err)
		}
		return out, nil
	}
	return nil, fmt.Errorf("calculus: unknown function %q", f.Name)
}
