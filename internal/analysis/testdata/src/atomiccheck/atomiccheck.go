// Package atomiccheck is a sgmldbvet fixture: a struct field accessed
// through sync/atomic anywhere must never be accessed plainly anywhere
// else.
package atomiccheck

import "sync/atomic"

type counters struct {
	served atomic.Uint64 // atomic-typed: methods only
	shed   uint64        // plain-typed, but addressed into sync/atomic below
	plain  uint64        // never touched atomically: free to use plainly
}

func (c *counters) inc() {
	c.served.Add(1)
	atomic.AddUint64(&c.shed, 1)
	c.plain++
}

func (c *counters) read() (uint64, uint64, uint64) {
	return c.served.Load(), atomic.LoadUint64(&c.shed), c.plain
}

func bump(u *atomic.Uint64) { u.Add(1) }

// Taking the field's address to hand it to an atomic-aware helper is a
// legal use of an atomic-typed field.
func (c *counters) viaHelper() { bump(&c.served) }

func (c *counters) tornRead() uint64 {
	return c.shed // want "accessed via sync/atomic elsewhere"
}

func (c *counters) tornWrite() {
	c.shed++ // want "accessed via sync/atomic elsewhere"
}

func bumpRaw(p *uint64) { *p++ }

// Even by address: only sync/atomic calls may take &c.shed.
func (c *counters) escape() {
	bumpRaw(&c.shed) // want "accessed via sync/atomic elsewhere"
}

func (c *counters) copyAtomic() {
	v := c.served // want "access it only through its atomic methods"
	_ = v
}

func (c *counters) sampled() uint64 {
	//lint:allow atomiccheck single-writer phase before the struct is shared
	return c.shed
}
