package store

import (
	"fmt"
	"strings"

	"sgmldb/internal/object"
)

// Constraint is a class-level integrity constraint in the Figure 3
// language. Constraints capture what SGML occurrence indicators and
// attribute defaults say beyond the type: required components (!= nil),
// non-empty repetitions (!= list()), enumerated attribute ranges
// (in set("final", "draft")), and disjunctions over union alternatives.
//
//sgmldbvet:closed
type Constraint interface {
	// Holds evaluates the constraint against the (union-unwrapped) value
	// of an object of the constrained class. deref resolves oids so that
	// constraints can look through references; it may be nil.
	Holds(v object.Value, deref func(object.OID) (object.Value, bool)) bool
	String() string
}

// fieldValue resolves a dotted attribute path like "a1.title" against a
// tuple or marked-union value. It returns the value and whether every step
// resolved.
func fieldValue(v object.Value, path string) (object.Value, bool) {
	cur := v
	for _, step := range strings.Split(path, ".") {
		switch x := cur.(type) {
		case *object.Tuple:
			next, ok := x.Get(step)
			if !ok {
				return nil, false
			}
			cur = next
		case *object.Union_:
			if x.Marker != step {
				// Implicit selection: skip the marker if the step matches
				// inside it instead.
				inner, ok := fieldValue(x.Value, step)
				if !ok {
					return nil, false
				}
				cur = inner
				continue
			}
			cur = x.Value
		default:
			return nil, false
		}
	}
	return cur, true
}

// NotNil is the constraint "attr != nil". For attributes of class type it
// also requires the referenced object to exist when deref is supplied.
type NotNil struct{ Attr string }

// Holds implements Constraint.
func (c NotNil) Holds(v object.Value, deref func(object.OID) (object.Value, bool)) bool {
	fv, ok := fieldValue(v, c.Attr)
	if !ok {
		return false
	}
	if object.IsNil(fv) {
		return false
	}
	if o, isOID := fv.(object.OID); isOID && deref != nil {
		_, exists := deref(o)
		return exists
	}
	return true
}

func (c NotNil) String() string { return c.Attr + " != nil" }

// NotEmptyList is the constraint "attr != list()" generated for "+"
// occurrence indicators.
type NotEmptyList struct{ Attr string }

// Holds implements Constraint.
func (c NotEmptyList) Holds(v object.Value, _ func(object.OID) (object.Value, bool)) bool {
	fv, ok := fieldValue(v, c.Attr)
	if !ok {
		return false
	}
	l, ok := fv.(*object.List)
	return ok && l.Len() > 0
}

func (c NotEmptyList) String() string { return c.Attr + " != list()" }

// InSet is the constraint "attr in set(v₁, …, vₙ)" generated for enumerated
// SGML attributes (e.g. status in set("final", "draft")).
type InSet struct {
	Attr   string
	Values []object.Value
}

// Holds implements Constraint.
func (c InSet) Holds(v object.Value, _ func(object.OID) (object.Value, bool)) bool {
	fv, ok := fieldValue(v, c.Attr)
	if !ok {
		return false
	}
	for _, w := range c.Values {
		if object.Equal(fv, w) {
			return true
		}
	}
	return false
}

func (c InSet) String() string {
	parts := make([]string, len(c.Values))
	for i, w := range c.Values {
		parts[i] = w.String()
	}
	return c.Attr + " in set(" + strings.Join(parts, ", ") + ")"
}

// OnAlt scopes a conjunction of constraints to one alternative of a union
// type: it holds vacuously when the value is marked with a different
// alternative (Figure 3's per-alternative constraint blocks on class
// Section).
type OnAlt struct {
	Marker string
	Inner  []Constraint
}

// Holds implements Constraint.
func (c OnAlt) Holds(v object.Value, deref func(object.OID) (object.Value, bool)) bool {
	u, ok := v.(*object.Union_)
	if !ok || u.Marker != c.Marker {
		return true
	}
	for _, inner := range c.Inner {
		if !inner.Holds(u.Value, deref) {
			return false
		}
	}
	return true
}

func (c OnAlt) String() string {
	parts := make([]string, len(c.Inner))
	for i, inner := range c.Inner {
		parts[i] = c.Marker + "." + inner.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// AnyOf is a disjunction of constraints (Figure 3's
// "figure != nil | paragr != nil" on class Body).
type AnyOf struct{ Alts []Constraint }

// Holds implements Constraint.
func (c AnyOf) Holds(v object.Value, deref func(object.OID) (object.Value, bool)) bool {
	for _, a := range c.Alts {
		if a.Holds(v, deref) {
			return true
		}
	}
	return len(c.Alts) == 0
}

func (c AnyOf) String() string {
	parts := make([]string, len(c.Alts))
	for i, a := range c.Alts {
		parts[i] = a.String()
	}
	return strings.Join(parts, " | ")
}

// ConstraintViolation reports one failed constraint during instance
// checking.
type ConstraintViolation struct {
	Class      string
	OID        object.OID
	Constraint Constraint
}

func (v ConstraintViolation) Error() string {
	return fmt.Sprintf("store: object %s of class %s violates constraint %q",
		v.OID, v.Class, v.Constraint)
}
