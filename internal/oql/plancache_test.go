package oql

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
)

// The plan cache keys on the query source text, so whitespace variants of
// one query make distinct cache entries that compile to identical plans —
// cheap fodder for exercising the LRU bookkeeping.
func spacedQuery(i int) string {
	return "select a from a in my_article" + strings.Repeat(" ", i)
}

func mustQuery(t *testing.T, e *Engine, src string) {
	t.Helper()
	if _, err := e.Query(src); err != nil {
		t.Fatalf("Query(%q): %v", src, err)
	}
}

func TestPlanCacheEvictionOrder(t *testing.T) {
	e := articleEngine(t)
	e.UseAlgebra = true
	e.PlanCacheSize = 3

	for i := 0; i < 3; i++ {
		mustQuery(t, e, spacedQuery(i))
	}
	if got := e.PlanCacheLen(); got != 3 {
		t.Fatalf("cache len = %d, want 3", got)
	}

	// Touch the oldest entry so it becomes the most recently used …
	mustQuery(t, e, spacedQuery(0))
	// … then overflow: the eviction victim must be query 1, not query 0.
	mustQuery(t, e, spacedQuery(3))

	if got := e.PlanCacheLen(); got != 3 {
		t.Fatalf("cache len after overflow = %d, want 3", got)
	}
	keys := e.planCacheKeys()
	want := []string{spacedQuery(3), spacedQuery(0), spacedQuery(2)}
	if len(keys) != len(want) {
		t.Fatalf("cache keys = %q, want %q", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("cache order[%d] = %q, want %q (full order %q)", i, keys[i], want[i], keys)
		}
	}

	// A cache hit must not grow the cache.
	mustQuery(t, e, spacedQuery(2))
	if got := e.PlanCacheLen(); got != 3 {
		t.Fatalf("cache len after hit = %d, want 3", got)
	}
}

func TestPlanCacheDefaultBound(t *testing.T) {
	e := articleEngine(t)
	if got := e.planCacheCap(); got != DefaultPlanCacheSize {
		t.Fatalf("planCacheCap() = %d, want DefaultPlanCacheSize (%d)", got, DefaultPlanCacheSize)
	}
	e.PlanCacheSize = 7
	if got := e.planCacheCap(); got != 7 {
		t.Fatalf("planCacheCap() = %d, want 7", got)
	}
}

// TestPlanCacheSchemaInvalidation checks the interplay of the LRU with
// schema-version invalidation: a schema change makes every cached plan
// stale, and re-running a query recompiles it in place — the cache must
// not grow, and the refreshed entry must carry the new version.
func TestPlanCacheSchemaInvalidation(t *testing.T) {
	e := articleEngine(t)
	e.UseAlgebra = true
	e.PlanCacheSize = 4

	const src = "select a from a in my_article"
	mustQuery(t, e, src)
	mustQuery(t, e, spacedQuery(1))
	if got := e.PlanCacheLen(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
	oldVersion := schemaVersionOf(e.Env)

	// Any schema mutation bumps the version; a new root also changes the
	// candidate valuations of unbound variables, which is exactly why
	// cached plans must not survive it.
	schema := e.Env.Inst.Schema()
	if err := schema.AddRoot("cache_probe", object.Class("Article")); err != nil {
		t.Fatal(err)
	}
	if schemaVersionOf(e.Env) == oldVersion {
		t.Fatal("schema version did not move")
	}

	// The stale entry must be treated as a miss and recompiled in place.
	if _, ok := e.lookupPlan(src, schemaVersionOf(e.Env)); ok {
		t.Fatal("stale plan served as a hit after schema change")
	}
	mustQuery(t, e, src)
	if plan, ok := e.lookupPlan(src, schemaVersionOf(e.Env)); !ok || plan == nil {
		t.Fatal("recompiled plan not cached under the new schema version")
	}

	// Re-running the other stale query refreshes rather than duplicates.
	mustQuery(t, e, spacedQuery(1))
	if got := e.PlanCacheLen(); got != 2 {
		t.Fatalf("cache len after invalidation round = %d, want 2", got)
	}
}
