package path

import (
	"fmt"

	"sgmldb/internal/object"
	"sgmldb/internal/store"
)

// Semantics selects the interpretation of path variables (Section 5.2,
// "Range-Restriction").
type Semantics int

const (
	// Restricted is the paper's chosen semantics: concrete paths with no
	// two dereferencings of objects in the same class. The set of paths
	// from a value is bounded by the schema, which is what makes the
	// calculus algebraizable (Section 5.4). Deeper searches are still
	// expressible by composing paths (P → P′).
	Restricted Semantics = iota
	// Liberal allows any path that does not visit the same object twice:
	// paths of data-bounded length, requiring loop detection. It suits
	// hypertext navigation.
	Liberal
)

// String names the semantics.
func (s Semantics) String() string {
	if s == Liberal {
		return "liberal"
	}
	return "restricted"
}

// Options configures enumeration.
type Options struct {
	Semantics Semantics
	// MaxLen bounds path length (0 = unbounded). Enumeration under either
	// semantics always terminates; the bound is an extra guard for
	// interactive use.
	MaxLen int
}

// Binding is one enumerated (path, value) pair: Value is reached from the
// enumeration root by following Path.
type Binding struct {
	Path  Path
	Value object.Value
}

// Apply follows a concrete path from v, dereferencing through inst (which
// may be nil if the path has no → steps). It fails when a step does not
// apply to the value at hand — the execution-time type error of Section
// 4.2 for named instances.
func Apply(inst *store.Instance, v object.Value, p Path) (object.Value, error) {
	cur := v
	for i, s := range p.Steps() {
		switch s.Kind {
		case StepAttr:
			switch x := cur.(type) {
			case *object.Tuple:
				next, ok := x.Get(s.Name)
				if !ok {
					return nil, fmt.Errorf("path: no attribute %q at step %d of %s", s.Name, i, p)
				}
				cur = next
			case *object.Union_:
				if x.Marker != s.Name {
					return nil, fmt.Errorf("path: union marked %q has no attribute %q (step %d of %s)",
						x.Marker, s.Name, i, p)
				}
				cur = x.Value
			default:
				return nil, fmt.Errorf("path: attribute step %q on %s value (step %d of %s)",
					s.Name, cur.Kind(), i, p)
			}
		case StepIndex:
			l, ok := object.AsList(cur) // tuples embed as heterogeneous lists
			if !ok {
				return nil, fmt.Errorf("path: index step on %s value (step %d of %s)", cur.Kind(), i, p)
			}
			if s.Index < 0 || s.Index >= l.Len() {
				return nil, fmt.Errorf("path: index %d out of range 0..%d (step %d of %s)",
					s.Index, l.Len()-1, i, p)
			}
			cur = l.At(s.Index)
		case StepDeref:
			o, ok := cur.(object.OID)
			if !ok {
				return nil, fmt.Errorf("path: dereference of %s value (step %d of %s)", cur.Kind(), i, p)
			}
			if inst == nil {
				return nil, fmt.Errorf("path: dereference without an instance (step %d of %s)", i, p)
			}
			next, ok := inst.Deref(o)
			if !ok {
				return nil, fmt.Errorf("path: dangling oid %s (step %d of %s)", o, i, p)
			}
			cur = next
		case StepMember:
			set, ok := cur.(*object.Set)
			if !ok {
				return nil, fmt.Errorf("path: member step on %s value (step %d of %s)", cur.Kind(), i, p)
			}
			if !set.Contains(s.Member) {
				return nil, fmt.Errorf("path: %s is not a member (step %d of %s)", s.Member, i, p)
			}
			cur = s.Member
		}
	}
	return cur, nil
}

// Enumerate produces every concrete path from v admitted by the chosen
// semantics, paired with the value it reaches. The empty path (reaching v
// itself) is included first; results are in depth-first, structure order,
// so output is deterministic.
func Enumerate(inst *store.Instance, v object.Value, opts Options) []Binding {
	e := &enumerator{inst: inst, opts: opts}
	e.visit(v, Empty, visitState{derefedClasses: map[string]bool{}, visitedOIDs: map[object.OID]bool{}})
	return e.out
}

type enumerator struct {
	inst *store.Instance
	opts Options
	out  []Binding
}

type visitState struct {
	derefedClasses map[string]bool
	visitedOIDs    map[object.OID]bool
}

func (e *enumerator) visit(v object.Value, p Path, st visitState) {
	e.out = append(e.out, Binding{Path: p, Value: v})
	if e.opts.MaxLen > 0 && p.Len() >= e.opts.MaxLen {
		return
	}
	switch x := v.(type) {
	case *object.Tuple:
		for i := 0; i < x.Len(); i++ {
			f := x.At(i)
			e.visit(f.Value, p.Append(Attr(f.Name)), st)
		}
		// The heterogeneous-list view also admits index steps; they are
		// not enumerated separately to keep path sets non-redundant (the
		// calculus evaluator applies [i] on tuples via Apply when asked).
	case *object.List:
		for i := 0; i < x.Len(); i++ {
			e.visit(x.At(i), p.Append(Index(i)), st)
		}
	case *object.Set:
		for i := 0; i < x.Len(); i++ {
			el := x.At(i)
			e.visit(el, p.Append(Member(el)), st)
		}
	case *object.Union_:
		e.visit(x.Value, p.Append(Attr(x.Marker)), st)
	case object.OID:
		if e.inst == nil {
			return
		}
		inner, ok := e.inst.Deref(x)
		if !ok {
			return
		}
		switch e.opts.Semantics {
		case Restricted:
			class, _ := e.inst.ClassOf(x)
			if st.derefedClasses[class] {
				return
			}
			st2 := visitState{derefedClasses: copyStrSet(st.derefedClasses), visitedOIDs: st.visitedOIDs}
			st2.derefedClasses[class] = true
			e.visit(inner, p.Append(Deref()), st2)
		case Liberal:
			if st.visitedOIDs[x] {
				return
			}
			st2 := visitState{derefedClasses: st.derefedClasses, visitedOIDs: copyOIDSet(st.visitedOIDs)}
			st2.visitedOIDs[x] = true
			e.visit(inner, p.Append(Deref()), st2)
		}
	default:
		// atoms and nil are leaves: no further steps
	}
}

func copyStrSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	return out
}

func copyOIDSet(m map[object.OID]bool) map[object.OID]bool {
	out := make(map[object.OID]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	return out
}

// PathSet collects the paths of an enumeration into a first-class set
// value — the operand of the Q4 difference query.
func PathSet(bindings []Binding) *object.Set {
	vals := make([]object.Value, len(bindings))
	for i, b := range bindings {
		vals[i] = b.Path.Value()
	}
	return object.NewSet(vals...)
}
