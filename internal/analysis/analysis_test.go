package analysis

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: each testdata/src/<name> package is loaded and
// analyzed, and the diagnostics are compared against `// want "…"`
// comments — every quoted string must be a substring of a diagnostic
// reported on that line, and every diagnostic must be accounted for by a
// want. Diagnostics from the "directive" pseudo-analyzer (malformed
// //lint:allow) are returned to the caller for explicit assertion, since
// their positions are the directive comments themselves.

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

type wantSite struct {
	file string
	line int
	subs []string
	hits int
}

func loadFixture(t *testing.T, name string) *Program {
	t.Helper()
	prog, err := Load(".", []string{"./testdata/src/" + name})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Targets) != 1 {
		t.Fatalf("fixture %s: got %d target packages, want 1", name, len(prog.Targets))
	}
	return prog
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(t *testing.T, prog *Program) []*wantSite {
	t.Helper()
	var wants []*wantSite
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					site := &wantSite{file: pos.Filename, line: pos.Line}
					for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						site.subs = append(site.subs, s)
					}
					wants = append(wants, site)
				}
			}
		}
	}
	return wants
}

// checkFixture runs the named analyzer over the fixture and verifies the
// want expectations, returning any "directive" diagnostics.
func checkFixture(t *testing.T, fixture, analyzer string) []Diagnostic {
	t.Helper()
	prog := loadFixture(t, fixture)
	analyzers, err := ByName(analyzer)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	diags := Run(prog, analyzers)
	wants := collectWants(t, prog)
	var directives []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "directive" {
			directives = append(directives, d)
			continue
		}
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			ok := true
			for _, sub := range w.subs {
				if !strings.Contains(d.Message, sub) {
					ok = false
					break
				}
			}
			if ok {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("missing diagnostic at %s:%d: want %q", w.file, w.line, w.subs)
		}
	}
	return directives
}

func TestExhaustiveFixture(t *testing.T) {
	checkFixture(t, "exhaustive", "exhaustive")
}

func TestCtxpollFixture(t *testing.T) {
	checkFixture(t, "ctxpoll", "ctxpoll")
}

func TestLockcheckFixture(t *testing.T) {
	checkFixture(t, "lockcheck", "lockcheck")
}

func TestErrwrapFixture(t *testing.T) {
	checkFixture(t, "errwrap", "errwrap")
}

func TestPanicFixture(t *testing.T) {
	directives := checkFixture(t, "panic", "panic")
	if len(directives) != 1 {
		t.Fatalf("got %d directive diagnostics, want 1 (the reason-less //lint:allow)", len(directives))
	}
	if !strings.Contains(directives[0].Message, "malformed //lint:allow") {
		t.Errorf("directive diagnostic = %q, want malformed //lint:allow", directives[0].Message)
	}
}

func TestFaultpointFixture(t *testing.T) {
	checkFixture(t, "faultguard", "faultpoint")
}

// TestVariantRemovalIsNamed is the acceptance check in executable form:
// deleting a variant from a closed-set switch must fail the build with a
// diagnostic naming the missing case. The fixture's missingConst switch
// plays the deleted-variant role — the diagnostic must name KindC
// specifically, not merely report non-exhaustiveness.
func TestVariantRemovalIsNamed(t *testing.T) {
	prog := loadFixture(t, "exhaustive")
	diags := Run(prog, []*Analyzer{ExhaustiveAnalyzer})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "missing KindC") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic names the missing variant KindC; got %v", messages(diags))
	}
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("exhaustive, panic")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset = %d analyzers, err %v", len(two), err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) did not fail")
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   string
	}{
		{"%s %d", "sd"},
		{"100%% %v", "v"},
		{"%+v %#x %08.3f", "vxf"},
		{"%*d %w", "*dw"},
		{"%[1]s", "s"},
		{"plain", ""},
	}
	for _, c := range cases {
		got := string(formatVerbs(c.format))
		if got != c.want {
			t.Errorf("formatVerbs(%q) = %q, want %q", c.format, got, c.want)
		}
	}
}

func TestAtomicCheckFixture(t *testing.T) {
	checkFixture(t, "atomiccheck", "atomiccheck")
}

func TestPublishOrderFixture(t *testing.T) {
	checkFixture(t, "publishorder", "publishorder")
}

func TestSnapshotPinFixture(t *testing.T) {
	checkFixture(t, "snapshotpin", "snapshotpin")
}

func TestWireCodeFixture(t *testing.T) {
	checkFixture(t, "wirecode", "wirecode")
}

// TestLoadNoPackages pins the driver-error path: patterns that match
// nothing must be a load error (exit 2 at the CLI), not a silent clean
// run.
func TestLoadNoPackages(t *testing.T) {
	if _, err := Load(".", []string{"./testdata/src/no-such-package"}); err == nil {
		t.Fatal("Load of a nonexistent pattern did not fail")
	}
}

// TestBaselineRoundTrip covers the grandfather machinery: BaselineOf →
// Apply marks exactly the recorded findings, and entries that match
// nothing come back stale.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "atomiccheck", File: "a.go", Line: 3, Message: "plain access"},
		{Analyzer: "wirecode", File: "b.go", Line: 9, Message: "no mapping"},
		{Analyzer: "wirecode", File: "b.go", Line: 12, Message: "suppressed one", Suppressed: true},
	}
	b := BaselineOf(findings)
	if len(b.Findings) != 2 {
		t.Fatalf("BaselineOf kept %d entries, want 2 (suppressed findings excluded)", len(b.Findings))
	}
	stale := b.Apply(findings)
	if len(stale) != 0 {
		t.Fatalf("round-trip Apply reported stale entries: %v", stale)
	}
	for i, f := range findings {
		wantBaselined := !f.Suppressed
		if f.Baselined != wantBaselined {
			t.Errorf("finding %d: Baselined = %v, want %v", i, f.Baselined, wantBaselined)
		}
		if f.Active() {
			t.Errorf("finding %d still active after Apply", i)
		}
	}
	orphan := &Baseline{Version: 1, Findings: []BaselineEntry{
		{Analyzer: "ctxpoll", File: "gone.go", Message: "fixed long ago"},
	}}
	if stale := orphan.Apply(findings); len(stale) != 1 {
		t.Fatalf("orphan baseline: got %d stale entries, want 1", len(stale))
	}
}

// TestParallelDeterminism pins the driver's ordering contract: a fully
// parallel run over the repository — fresh load, so even token.Pos
// assignment order differs — reports byte-identical findings to a
// single-goroutine run.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo loads in -short mode")
	}
	render := func(workers int) []string {
		prog, err := Load("../..", []string{"./..."})
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		var out []string
		for _, f := range Analyze(prog, Analyzers(), workers) {
			out = append(out, strconv.Itoa(f.Line)+":"+strconv.Itoa(f.Col)+":"+f.File+
				":["+f.Analyzer+"] "+f.Message)
		}
		return out
	}
	serial := render(1)
	parallel := render(8)
	if len(serial) != len(parallel) {
		t.Fatalf("serial run: %d findings, parallel run: %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("finding %d differs:\n  serial:   %s\n  parallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestRepoIsClean pins the tentpole's acceptance criterion: the analyzers
// run clean over the repository itself.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo load in -short mode")
	}
	prog, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags := Run(prog, Analyzers())
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		t.Errorf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
}
