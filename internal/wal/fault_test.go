package wal

import (
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/text"
)

func TestClassifyTaxonomy(t *testing.T) {
	if classify(nil) != nil {
		t.Error("classify(nil) != nil")
	}
	full := classify(&os.PathError{Op: "write", Path: "wal.log", Err: syscall.ENOSPC})
	if !errors.Is(full, ErrDiskFull) {
		t.Errorf("ENOSPC classified as %v, want ErrDiskFull", full)
	}
	quota := classify(syscall.EDQUOT)
	if !errors.Is(quota, ErrDiskFull) {
		t.Errorf("EDQUOT classified as %v, want ErrDiskFull", quota)
	}
	io := classify(errors.New("input/output error"))
	if !errors.Is(io, ErrIOFailure) || errors.Is(io, ErrDiskFull) {
		t.Errorf("generic error classified as %v, want ErrIOFailure only", io)
	}
	// Already classified errors pass through unchanged, no double wrap.
	if again := classify(full); again != full {
		t.Errorf("re-classify changed %v to %v", full, again)
	}
}

// TestAppendSyncFailurePoisons drives the fsyncgate seam: a failed fsync
// in Append must poison the log — sticky, reason-carrying, first reason
// wins — while the committed prefix stays readable through FramesAfter.
func TestAppendSyncFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	if err := l.Append(Record{Kind: KindSchema, Schema: "d"}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("fsync lost dirty pages (injected)")
	disarm := faultpoint.Arm("wal/append-sync-error", faultpoint.Once(faultpoint.Error(boom)))
	defer disarm()
	err := l.Append(Record{Kind: KindName, Name: "x", OID: 1})
	if !errors.Is(err, ErrPoisoned) || !errors.Is(err, ErrIOFailure) || !errors.Is(err, boom) {
		t.Fatalf("append under failed sync = %v; want ErrPoisoned wrapping ErrIOFailure wrapping the cause", err)
	}
	if perr := l.Err(); !errors.Is(perr, ErrPoisoned) {
		t.Fatalf("Err() = %v, want the sticky poison", perr)
	}
	// Sticky: the next append fails identically even though the injector
	// only fired once, and the first reason is preserved.
	err2 := l.Append(Record{Kind: KindName, Name: "y", OID: 2})
	if !errors.Is(err2, boom) {
		t.Fatalf("second append = %v, want the original cause", err2)
	}
	if l.Seq() != 1 {
		t.Errorf("seq advanced to %d across poisoned appends", l.Seq())
	}
	// The committed prefix keeps serving: the feed must ship record 1.
	frames, lastSeq, err := l.FramesAfter(0, 0, 1<<20)
	if err != nil || lastSeq != 1 || len(frames) == 0 {
		t.Fatalf("FramesAfter on poisoned log = (%d bytes, seq %d, %v), want the committed record", len(frames), lastSeq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close on poisoned log: %v", err)
	}
	// Reopen recovers exactly the pre-fault state.
	l2, _, tail := mustOpen(t, dir)
	defer l2.Close()
	if len(tail) != 1 || l2.Seq() != 1 {
		t.Fatalf("reopen after poison: %d records, seq %d; want 1, 1", len(tail), l2.Seq())
	}
}

// TestRewindFailurePoisons is the satellite-1 regression: a failed
// truncate in rewind used to be swallowed, leaving l.size disagreeing
// with the file so a later shorter append produced mid-file garbage that
// recovery read as ErrCorruptLog. Now it must poison.
func TestRewindFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	if err := l.Append(Record{Kind: KindLoad, Docs: []string{"<a>a long record to leave garbage behind</a>"}}); err != nil {
		t.Fatal(err)
	}
	// Fail the append after the frame bytes landed, then fail the rewind's
	// truncate: the written frame cannot be removed, so the log must stop.
	boom := errors.New("post-append (injected)")
	disarmA := faultpoint.Arm("wal/post-append", faultpoint.Once(faultpoint.Error(boom)))
	defer disarmA()
	trunc := errors.New("truncate failed (injected)")
	disarmT := faultpoint.Arm("wal/rewind-truncate", faultpoint.Once(faultpoint.Error(trunc)))
	defer disarmT()
	err := l.Append(Record{Kind: KindLoad, Docs: []string{"<a>doomed</a>"}})
	if !errors.Is(err, boom) {
		t.Fatalf("armed append = %v, want the injected post-append error", err)
	}
	// The append failure surfaces the injected error; the *rewind* failure
	// poisons, so the next append reports the truncate as the root cause.
	err2 := l.Append(Record{Kind: KindName, Name: "z", OID: 3})
	if !errors.Is(err2, ErrPoisoned) || !errors.Is(err2, trunc) {
		t.Fatalf("append after failed rewind = %v, want poison carrying the truncate failure", err2)
	}
	l.Close()
	// Reopen: the un-rewound frame is a torn tail (valid bytes past
	// l.size were fsynced only incidentally), never ErrCorruptLog.
	l2, _, tail, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after poisoned rewind: %v", err)
	}
	defer l2.Close()
	if len(tail) < 1 {
		t.Fatalf("reopen lost the committed record: tail=%v", tail)
	}
}

// TestDirSyncFailurePoisonsTruncatePrefix drives wal/dir-sync at the
// prefix-truncation seam: after the rename, a failed directory fsync
// leaves the handle pointing at the unlinked old file, so the log must
// fail closed with the handle dropped.
func TestDirSyncFailurePoisonsTruncatePrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// A prefix truncation is only legal once a checkpoint covers the
	// prefix; write it first so the reopen below has its floor.
	if err := WriteCheckpoint(dir, &Checkpoint{Seq: 2, Epoch: 1, DTD: "d", Inst: checkpointInstance(t), Index: text.NewIndex()}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("dir fsync failed (injected)")
	disarm := faultpoint.Arm("wal/dir-sync", faultpoint.Error(boom))
	defer disarm()
	err := l.TruncatePrefix(2)
	if !errors.Is(err, ErrPoisoned) || !errors.Is(err, boom) {
		t.Fatalf("TruncatePrefix under failed dir sync = %v, want poison carrying the cause", err)
	}
	if err := l.Append(Record{Kind: KindName, Name: "x", OID: 9}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after lost handle = %v, want the sticky poison", err)
	}
	// The handle is gone: the feed ends rather than serving a stale file.
	if _, _, err := l.FramesAfter(2, 0, 1<<20); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("FramesAfter after lost handle = %v, want the poison", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close after lost handle: %v", err)
	}
	disarm()
	// The renamed file on disk is the truncated log; it reopens cleanly.
	l2, _, tail, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after dir-sync poison: %v", err)
	}
	defer l2.Close()
	if len(tail) != 2 || tail[0].Seq != 3 {
		t.Fatalf("reopen tail = %+v, want records 3 and 4", tail)
	}
}

// TestCheckpointTempSyncFailureClassified drives wal/ckpt-write: a failed
// checkpoint temp-file sync must fail the checkpoint with a classified
// error, remove the temp file, and leave the log healthy — a failed
// checkpoint only means the log keeps more history.
func TestCheckpointTempSyncFailureClassified(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	defer l.Close()
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	disarm := faultpoint.Arm("wal/ckpt-write", faultpoint.Once(faultpoint.Error(&os.PathError{Op: "sync", Path: "checkpoint", Err: syscall.ENOSPC})))
	defer disarm()
	ck := &Checkpoint{Seq: 4, Epoch: 1, DTD: "d", Inst: checkpointInstance(t), Index: text.NewIndex()}
	err := WriteCheckpoint(dir, ck)
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("WriteCheckpoint under ENOSPC = %v, want ErrDiskFull", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint.tmp-") {
			t.Errorf("failed checkpoint left temp file %s", e.Name())
		}
	}
	if l.Err() != nil {
		t.Errorf("log poisoned by a failed checkpoint: %v", l.Err())
	}
	if err := l.Append(Record{Kind: KindName, Name: "x", OID: 1}); err != nil {
		t.Errorf("append after failed checkpoint: %v", err)
	}
}
