package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"
)

// The errwrap analyzer keeps error chains intact so the facade's sentinel
// errors (ErrReadOnly, ErrUnknownObject, ErrNoMapping) stay observable
// through errors.Is:
//
//  1. A fmt.Errorf whose operand is an error must format it with %w —
//     %v/%s flatten the chain and break errors.Is at the API.
//  2. In the facade package (the module root), new error values may only
//     be minted in errors.go: everywhere else a failure either wraps a
//     sentinel or propagates an underlying error, so every public
//     failure mode stays enumerable in one file.

// ErrwrapAnalyzer checks error wrapping discipline.
var ErrwrapAnalyzer = &Analyzer{
	Name:       "errwrap",
	Doc:        "fmt.Errorf error operands must use %w; facade errors are sentinel-based",
	RunPackage: runErrwrap,
}

func runErrwrap(prog *Program, pkg *Package, report func(Diagnostic)) {
	facade := isFacadePackage(pkg)
	for _, f := range pkg.Files {
		file := prog.Fset.Position(f.Pos()).Filename
		inErrorsFile := filepath.Base(file) == "errors.go"
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fullNameOf(pkg.Info, call) {
			case "fmt.Errorf":
				checkErrorf(pkg, call, report)
			case "errors.New":
				if facade && !inErrorsFile {
					report(Diagnostic{Pos: call.Pos(), Message: "facade errors must be declared in errors.go " +
						"(as sentinels) or wrap one with fmt.Errorf(\"…: %w\", Err…)"})
				}
			}
			return true
		})
	}
}

// isFacadePackage reports the module root package (import path without a
// slash beyond the module name — here, the package with no "/internal/",
// "/cmd/" or "/examples/" segment and a Dir equal to the module root is
// simply the one whose import path contains no slash-separated subpath;
// for this repo that is "sgmldb").
func isFacadePackage(pkg *Package) bool {
	return !strings.Contains(pkg.ImportPath, "/")
}

// fullNameOf renders pkg.Func for a direct package-level call.
func fullNameOf(info *types.Info, call *ast.CallExpr) string {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// checkErrorf verifies that every error-typed operand of fmt.Errorf is
// formatted with %w.
func checkErrorf(pkg *Package, call *ast.CallExpr, report func(Diagnostic)) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for i, verb := range verbs {
		argIndex := 1 + i
		if argIndex >= len(call.Args) {
			break // argument-count mismatches are vet's business
		}
		argType := pkg.Info.TypeOf(call.Args[argIndex])
		if argType == nil || !types.Implements(argType, errorIface) {
			continue
		}
		if verb != 'w' {
			report(Diagnostic{Pos: call.Args[argIndex].Pos(), Message: fmt.Sprintf(
				"fmt.Errorf formats an error operand with %%%c: use %%w so errors.Is/As see the chain", verb)})
		}
	}
}

// formatVerbs returns the verb letter for each consumed argument, in
// order; '*' width/precision arguments consume a slot and appear as '*'.
func formatVerbs(format string) []rune {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i < len(rs) && rs[i] == '%' {
			continue
		}
		for i < len(rs) {
			c := rs[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0.123456789[]", c) {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}
