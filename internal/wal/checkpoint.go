package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// A checkpoint is a full serialization of one published database version:
// everything recovery needs so the log prefix up to the checkpoint's
// sequence number can be dropped. It is written to a temp file and
// renamed into place, so a crash mid-checkpoint leaves at worst a stray
// temp file that recovery ignores.

// Version 2 added the term line (promotion epoch at capture).
const checkpointMagic = "sgmldb-checkpoint 2"

// checkpointMagicV1 is the pre-term version 1 header; see logMagicV1.
const checkpointMagicV1 = "sgmldb-checkpoint 1"

var (
	fpCkptWrite  = faultpoint.New("wal/checkpoint-write")  // mid-checkpoint, temp file partially written
	fpCkptRename = faultpoint.New("wal/checkpoint-rename") // temp file durable, not yet renamed
	fpCkptSync   = faultpoint.New("wal/ckpt-write")        // the temp file's write/fsync reports an I/O error
)

// Checkpoint carries one published version across the serialization
// boundary: the instance and index pointers are the immutable published
// versions (never mutated after publish), so the checkpointer can encode
// them concurrently with new staged writes.
type Checkpoint struct {
	Seq   uint64 // last log sequence number the checkpoint covers
	Epoch uint64 // published epoch at capture
	Term  uint64 // promotion term at capture
	DTD   string // the DTD the database was opened with
	Docs  []uint64
	Inst  *store.Instance
	Index *text.Index
}

func checkpointName(seq uint64) string {
	return fmt.Sprintf("checkpoint-%020d", seq)
}

// parseCheckpointName extracts the sequence number, or ok=false for
// files that are not checkpoints (the log, temp files, strays).
func parseCheckpointName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "checkpoint-")
	if !ok || strings.Contains(rest, ".") {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// WriteCheckpoint serializes ck into dir under its sequence-numbered
// name, durably (temp file, fsync, rename, directory fsync), then prunes
// older checkpoint files. It does not truncate the log — the caller does
// that after this returns, so a crash between the two leaves a log whose
// replayed prefix the checkpoint already covers (replay skips by seq).
func WriteCheckpoint(dir string, ck *Checkpoint) error {
	tmp, err := os.CreateTemp(dir, "checkpoint.tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	w := bufio.NewWriter(tmp)
	if _, err := fmt.Fprintf(w, "%s\nseq %d\nepoch %d\nterm %d\ndtd %d\n%s\n", checkpointMagic, ck.Seq, ck.Epoch, ck.Term, len(ck.DTD), ck.DTD); err != nil {
		cleanup()
		return err
	}
	if err := fpCkptWrite.Hit(); err != nil {
		// Flush what we have so a crash copied at this seam sees a
		// genuinely partial checkpoint file.
		w.Flush()
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if _, err := fmt.Fprintf(w, "docs %d\n", len(ck.Docs)); err != nil {
		cleanup()
		return err
	}
	for _, o := range ck.Docs {
		if _, err := fmt.Fprintf(w, "o %d\n", o); err != nil {
			cleanup()
			return err
		}
	}
	if err := store.Save(w, ck.Inst); err != nil {
		cleanup()
		return err
	}
	if err := ck.Index.Encode(w); err != nil {
		cleanup()
		return err
	}
	if _, err := fmt.Fprintln(w, "end"); err != nil {
		cleanup()
		return err
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return err
	}
	err = tmp.Sync()
	if ferr := fpCkptSync.Hit(); err == nil && ferr != nil {
		err = ferr
	}
	if err != nil {
		cleanup()
		return fmt.Errorf("wal: checkpoint temp sync: %w", classify(err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := fpCkptRename.Hit(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	final := filepath.Join(dir, checkpointName(ck.Seq))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	pruneCheckpoints(dir, ck.Seq)
	return nil
}

// pruneCheckpoints removes checkpoint files older than keepSeq and any
// leftover temp files. Best-effort: a failure here only wastes disk.
func pruneCheckpoints(dir string, keepSeq uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "checkpoint.tmp-") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseCheckpointName(name); ok && seq < keepSeq {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// newestCheckpoint finds and decodes the newest valid checkpoint in dir.
// An unreadable or truncated checkpoint file (a crash can leave one only
// via a torn rename, which modern filesystems don't produce, but be
// lenient) is skipped in favour of an older one. Returns nil if none.
func newestCheckpoint(dir string) (*Checkpoint, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseCheckpointName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		ck, err := readCheckpoint(filepath.Join(dir, checkpointName(seq)))
		if err == nil {
			return ck, nil
		}
	}
	return nil, nil
}

// readCheckpoint decodes one checkpoint file.
func readCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}

// NewestCheckpointPath returns the path and sequence number of the newest
// checkpoint file in dir, or ("", 0, nil) when none exists. Callers
// stream the file as-is (a follower bootstrap); the open file survives a
// concurrent prune's unlink, so racing the checkpointer is safe as long
// as the caller opens promptly.
func NewestCheckpointPath(dir string) (string, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	var best uint64
	found := false
	for _, e := range entries {
		if seq, ok := parseCheckpointName(e.Name()); ok && (!found || seq > best) {
			best = seq
			found = true
		}
	}
	if !found {
		return "", 0, nil
	}
	return filepath.Join(dir, checkpointName(best)), best, nil
}

// DecodeCheckpoint decodes one serialized checkpoint from rd — the same
// format WriteCheckpoint produces, whether read from a local file or
// streamed over a follower's bootstrap fetch.
func DecodeCheckpoint(rd io.Reader) (*Checkpoint, error) {
	r := bufio.NewReader(rd)
	line, err := readCkptLine(r)
	if err != nil {
		return nil, err
	}
	if line != checkpointMagic {
		if line == checkpointMagicV1 {
			return nil, fmt.Errorf("%w: checkpoint written by format v1 (pre-term); rebuild the directory under the current format", ErrUnsupportedVersion)
		}
		return nil, fmt.Errorf("wal: not a checkpoint file (got %q)", line)
	}
	ck := &Checkpoint{}
	if ck.Seq, err = ckptUintLine(r, "seq"); err != nil {
		return nil, err
	}
	if ck.Epoch, err = ckptUintLine(r, "epoch"); err != nil {
		return nil, err
	}
	if ck.Term, err = ckptUintLine(r, "term"); err != nil {
		return nil, err
	}
	dtdLen, err := ckptUintLine(r, "dtd")
	if err != nil {
		return nil, err
	}
	if dtdLen > maxRecordSize {
		return nil, fmt.Errorf("wal: checkpoint dtd length %d too large", dtdLen)
	}
	dtd := make([]byte, dtdLen)
	if _, err := io.ReadFull(r, dtd); err != nil {
		return nil, err
	}
	ck.DTD = string(dtd)
	if b, err := r.ReadByte(); err != nil || b != '\n' {
		return nil, fmt.Errorf("wal: checkpoint dtd not newline-terminated")
	}
	nDocs, err := ckptUintLine(r, "docs")
	if err != nil {
		return nil, err
	}
	if nDocs > maxRecordSize {
		return nil, fmt.Errorf("wal: checkpoint claims %d docs", nDocs)
	}
	ck.Docs = make([]uint64, 0, nDocs)
	for i := uint64(0); i < nDocs; i++ {
		o, err := ckptUintLine(r, "o")
		if err != nil {
			return nil, err
		}
		ck.Docs = append(ck.Docs, o)
	}
	// store.Load wraps its reader in bufio.NewReader, which hands back an
	// existing *bufio.Reader unchanged — so it consumes exactly its
	// section and leaves r positioned at the index section.
	if ck.Inst, err = store.Load(r); err != nil {
		return nil, fmt.Errorf("wal: checkpoint instance: %w", err)
	}
	if ck.Index, err = text.DecodeIndex(r); err != nil {
		return nil, fmt.Errorf("wal: checkpoint index: %w", err)
	}
	line, err = readCkptLine(r)
	if err != nil {
		return nil, err
	}
	if line != "end" {
		return nil, fmt.Errorf("wal: checkpoint missing end (got %q)", line)
	}
	return ck, nil
}

func readCkptLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}

func ckptUintLine(r *bufio.Reader, verb string) (uint64, error) {
	line, err := readCkptLine(r)
	if err != nil {
		return 0, err
	}
	rest, ok := strings.CutPrefix(line, verb+" ")
	if !ok {
		return 0, fmt.Errorf("wal: expected %q line, got %q", verb, line)
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: bad %s value %q", verb, rest)
	}
	return n, nil
}

// Open prepares a data directory: it loads the newest valid checkpoint
// (nil if none), opens the log, validates it end to end, truncates a torn
// tail, and returns the records the checkpoint does not cover, in order.
// The caller replays those records to reconstruct the last durable state.
func Open(dir string) (*Log, *Checkpoint, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	ck, err := newestCheckpoint(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var after uint64
	if ck != nil {
		after = ck.Seq
	}
	l, tail, err := openLog(dir, after)
	if err != nil {
		return nil, nil, nil, err
	}
	if ck != nil && l.seq < ck.Seq {
		// The log was truncated past ck.Seq by a prefix truncation that
		// raced a crash; the checkpoint is still the durable state and the
		// next append must not reuse covered sequence numbers.
		l.seq = ck.Seq
		l.floor = ck.Seq
	}
	if ck != nil {
		// The checkpoint's term anchors whatever the log scan could not
		// see: an empty (or fully truncated) log inherits the checkpoint's
		// term, and the truncation floor gets its term for anchor checks.
		if ck.Term > l.term {
			l.term = ck.Term
		}
		if l.floor == ck.Seq && ck.Term > l.floorTerm {
			l.floorTerm = ck.Term
		}
	}
	return l, ck, tail, nil
}

// TruncatePrefix drops log records at or before seq; the facade's
// checkpointer calls it once a checkpoint covering seq is durable.
func (l *Log) TruncatePrefix(seq uint64) error {
	return l.truncatePrefix(seq)
}
