package service

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"sgmldb"
	"sgmldb/internal/faultpoint"
)

// Replication feed (DESIGN.md §10). Two endpoints turn a durable primary
// into a log shipper:
//
//	GET /v1/feed?after=S        raw committed WAL frames with seq > S
//	GET /v1/checkpoint          the newest checkpoint file, verbatim
//
// Both responses are binary (application/octet-stream): the feed body is
// a concatenation of on-disk frames the follower validates with the same
// codec the local replay path uses, the checkpoint body is the exact file
// WriteCheckpoint produced. Errors still use the JSON envelope. The feed
// long-polls: with no records due it parks up to wait_ms for the next
// commit (a drain or client hang-up wakes it early), so a quiet primary
// costs one idle request per wait window, not a busy poll.
//
// Response headers:
//
//	Sgmldb-Seq            last sequence number included in the body
//	Sgmldb-Primary-Seq    newest committed sequence on the primary
//	Sgmldb-Term           the primary's current term (promotion epoch)
//	Sgmldb-Checkpoint-Seq sequence the checkpoint covers
//
// The follower carries its own term in the `term` query parameter: the
// primary verifies the anchor record's term matches (409 STALE_TERM on a
// divergent history) and fences itself when the reported term exceeds
// its own — the two directions of the split-brain guard.
const (
	feedDefaultWaitMS  = 2000
	feedMaxWaitMS      = 30000
	feedDefaultMaxB    = 4 << 20
	feedMaxMaxB        = 64 << 20
	contentTypeBinary  = "application/octet-stream"
	headerSeq          = "Sgmldb-Seq"
	headerPrimarySeq   = "Sgmldb-Primary-Seq"
	headerTerm         = "Sgmldb-Term"
	headerCheckpointSq = "Sgmldb-Checkpoint-Seq"
)

// fpFeedStream cuts a feed response short mid-body: the chaos suite arms
// it to prove a follower treats a truncated frame stream like a torn tail
// and resumes cleanly from its last applied record.
var fpFeedStream = faultpoint.New("service/feed-stream")

// uintParam parses one optional unsigned query parameter.
func uintParam(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter %q", name, raw)
	}
	return v, nil
}

// handleFeed streams committed log frames after the follower's anchor.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	after, err := uintParam(r, "after", 0)
	if err != nil {
		t.errors.Add(1)
		fail(w, codeBadRequest, err.Error())
		return
	}
	waitMS, err := uintParam(r, "wait_ms", feedDefaultWaitMS)
	if err != nil {
		t.errors.Add(1)
		fail(w, codeBadRequest, err.Error())
		return
	}
	if waitMS > feedMaxWaitMS {
		waitMS = feedMaxWaitMS
	}
	maxBytes, err := uintParam(r, "max_bytes", feedDefaultMaxB)
	if err != nil {
		t.errors.Add(1)
		fail(w, codeBadRequest, err.Error())
		return
	}
	if maxBytes == 0 || maxBytes > feedMaxMaxB {
		maxBytes = feedDefaultMaxB
	}
	term, err := uintParam(r, "term", 0)
	if err != nil {
		t.errors.Add(1)
		fail(w, codeBadRequest, err.Error())
		return
	}
	if term > 0 {
		// The follower's term is the fencing channel: once any follower
		// reports a term above ours, a promotion happened elsewhere and
		// this node must stop accepting writes.
		s.db.ObserveRemoteTerm(term)
	}

	// Long-poll: when the primary has nothing past the anchor, park on the
	// log's commit signal until a record lands, the wait expires, the
	// client goes away, or the server drains — whichever is first. A
	// term-carrying anchor is verified against the log once before the
	// first park: a rejoining deposed primary whose stale unshipped suffix
	// sits at or past our last record would otherwise park and collect
	// empty 200s forever — looking healthy while serving diverged data —
	// instead of the 409 STALE_TERM that tells it to re-bootstrap.
	deadline := time.After(time.Duration(waitMS) * time.Millisecond)
	verified := term == 0
	for {
		seq, commit, err := s.db.FeedWatch()
		if err != nil {
			t.errors.Add(1)
			failErr(w, err)
			return
		}
		if seq > after {
			break
		}
		if !verified {
			// seq <= after here, so this never scans the file: FramesAfter
			// answers from its cached (floor, seq, term) positions.
			if _, _, verr := s.db.FeedFrames(after, term, 1); verr != nil {
				if code := sgmldb.Code(verr); code != sgmldb.CodeSeqTruncated && code != sgmldb.CodeStaleTerm {
					t.errors.Add(1)
				}
				failErr(w, verr)
				return
			}
			verified = true
		}
		select {
		case <-commit:
		case <-deadline:
			writeFrames(w, nil, after, seq, s.db.Term())
			return
		case <-r.Context().Done():
			return // nobody is listening anymore
		case <-s.drainCh:
			fail(w, codeDraining, "server is draining")
			return
		}
	}
	frames, lastSeq, err := s.db.FeedFrames(after, term, int(maxBytes))
	if err != nil {
		if code := sgmldb.Code(err); code != sgmldb.CodeSeqTruncated && code != sgmldb.CodeStaleTerm {
			t.errors.Add(1)
		}
		failErr(w, err)
		return
	}
	if fpFeedStream.Hit() != nil {
		// Injected stream cut: ship only a prefix of the frame bytes, as a
		// killed connection would. The last frame is torn mid-body unless
		// the cut lands exactly on a boundary — both are follower-legal.
		frames = frames[:len(frames)/2]
	}
	primarySeq, _ := s.db.FeedSeq()
	writeFrames(w, frames, lastSeq, primarySeq, s.db.Term())
}

// writeFrames ships one binary feed response.
func writeFrames(w http.ResponseWriter, frames []byte, lastSeq, primarySeq, term uint64) {
	w.Header().Set("Content-Type", contentTypeBinary)
	w.Header().Set(headerSeq, strconv.FormatUint(lastSeq, 10))
	w.Header().Set(headerPrimarySeq, strconv.FormatUint(primarySeq, 10))
	w.Header().Set(headerTerm, strconv.FormatUint(term, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(frames)))
	//lint:allow wirecode binary feed body; errors on this endpoint still use writeJSON
	w.WriteHeader(http.StatusOK)
	//lint:allow wirecode binary feed body; errors on this endpoint still use writeJSON
	_, _ = w.Write(frames)
}

// handleCheckpoint streams the newest checkpoint file for a follower
// bootstrap. 404 NO_CHECKPOINT when none has been written yet — the
// follower then tails the feed from sequence 0.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	path, seq, found, err := s.db.NewestCheckpointFile()
	if err != nil {
		t.errors.Add(1)
		failErr(w, err)
		return
	}
	if !found {
		fail(w, codeNoCheckpoint, "no checkpoint written yet; tail the feed from 0")
		return
	}
	f, err := os.Open(path)
	if err != nil {
		t.errors.Add(1)
		fail(w, sgmldb.CodeInternal, "opening checkpoint: "+err.Error())
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", contentTypeBinary)
	w.Header().Set(headerCheckpointSq, strconv.FormatUint(seq, 10))
	// The serving node's current term: a bootstrapping follower refuses a
	// source behind its own term before decoding a byte of the checkpoint.
	w.Header().Set(headerTerm, strconv.FormatUint(s.db.Term(), 10))
	//lint:allow wirecode binary checkpoint body; errors on this endpoint still use writeJSON
	w.WriteHeader(http.StatusOK)
	//lint:allow wirecode binary checkpoint body; errors on this endpoint still use writeJSON
	_, _ = io.Copy(w, f)
}
