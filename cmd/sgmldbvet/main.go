// Command sgmldbvet runs sgmldb's domain-specific static analyzers over
// the repository: exhaustive kind switches, context polling in row
// scans, receiver-mutex discipline, error wrapping, panic reachability,
// fault-injection hygiene, atomic-field discipline, commit-path publish
// ordering, snapshot pinning, and the wire-code taxonomy.
//
// Usage:
//
//	sgmldbvet [flags] [packages]
//
// Packages default to ./... and accept any `go list` pattern. Flags:
//
//	-analyzers a,b,…   run a subset (default: all)
//	-list              list the analyzers and exit
//	-json              emit the findings report as JSON on stdout
//	-baseline FILE     grandfather the findings recorded in FILE
//	-write-baseline    regenerate FILE from the current findings
//	-parallel N        analysis worker count (default: GOMAXPROCS)
//	-dir DIR           directory to resolve patterns in (default: cwd)
//
// Exit status: 0 when clean, 1 when unsuppressed findings (or stale
// baseline entries) are present, 2 when the driver itself fails —
// unknown analyzer, unloadable or untypecheckable packages. CI can
// therefore distinguish "the code has findings" from "the tool broke".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sgmldb/internal/analysis"
)

// report is the stable JSON artifact schema (-json).
type report struct {
	Version       int                      `json:"version"`
	Patterns      []string                 `json:"patterns"`
	Analyzers     []string                 `json:"analyzers"`
	Findings      []analysis.Finding       `json:"findings"`
	StaleBaseline []analysis.BaselineEntry `json:"stale_baseline,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgmldbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit the findings report as JSON on stdout")
	baselinePath := fs.String("baseline", "", "baseline file grandfathering known findings")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from current findings")
	parallel := fs.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS)")
	dir := fs.String("dir", "", "directory to resolve patterns in (default: cwd)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "sgmldbvet: -write-baseline requires -baseline FILE")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loadDir := *dir
	if loadDir == "" {
		loadDir, err = os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	prog, err := analysis.Load(loadDir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := analysis.Analyze(prog, analyzers, *parallel)

	if *writeBaseline {
		return regenerateBaseline(*baselinePath, findings, stderr)
	}

	var stale []analysis.BaselineEntry
	if *baselinePath != "" {
		baseline, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		stale = baseline.Apply(findings)
	}

	active := 0
	for _, f := range findings {
		if f.Active() {
			active++
		}
	}

	if *asJSON {
		analyzerNames := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			analyzerNames = append(analyzerNames, a.Name)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Version:       1,
			Patterns:      patterns,
			Analyzers:     analyzerNames,
			Findings:      findings,
			StaleBaseline: stale,
		}); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Active() {
				fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
			}
		}
	}
	for _, e := range stale {
		fmt.Fprintf(stderr, "sgmldbvet: stale baseline entry (fixed or reworded — regenerate with -write-baseline): [%s] %s: %s\n",
			e.Analyzer, e.File, e.Message)
	}
	if active > 0 || len(stale) > 0 {
		fmt.Fprintf(stderr, "sgmldbvet: %d finding(s), %d stale baseline entr(ies)\n", active, len(stale))
		return 1
	}
	return 0
}

// regenerateBaseline rewrites the baseline from the current findings.
// The new file is always written, but a shrink — entries present in
// the old baseline and gone from the new — exits nonzero with the
// removed entries listed, so a baseline never shrinks silently.
func regenerateBaseline(path string, findings []analysis.Finding, stderr io.Writer) int {
	old, err := analysis.ReadBaseline(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	next := analysis.BaselineOf(findings)
	if err := analysis.WriteBaseline(path, next); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	kept := map[analysis.BaselineEntry]bool{}
	for _, e := range next.Findings {
		kept[e] = true
	}
	removed := 0
	for _, e := range old.Findings {
		if !kept[e] {
			removed++
			fmt.Fprintf(stderr, "sgmldbvet: baseline entry removed: [%s] %s: %s\n", e.Analyzer, e.File, e.Message)
		}
	}
	fmt.Fprintf(stderr, "sgmldbvet: wrote %s with %d entr(ies)\n", path, len(next.Findings))
	if removed > 0 {
		fmt.Fprintf(stderr, "sgmldbvet: baseline shrank by %d entr(ies); review and commit the regenerated file\n", removed)
		return 1
	}
	return 0
}
