// Package object implements the extended O₂ data model of Section 5.1 of
// "From Structured Documents to Novel Query Facilities" (SIGMOD 1994):
// complex values built from atoms, object identifiers, ordered tuples,
// lists, sets and marked unions, together with the type system, the class
// hierarchy, and the paper's two new subtyping rules (tuple alternatives of
// a marked union, and tuples viewed as heterogeneous lists).
//
// The model is exactly the formal one: a value over a set O of oids is nil,
// an atom, an oid, or a tuple/set/list of values; marked-union values are
// singleton tuples [aᵢ:v] carrying their marker. Ordering of tuple
// attributes is meaningful (Section 3, "Ordered tuples"): two tuples with
// permuted attributes are distinct values.
package object

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the concrete representation of a Value.
//
//sgmldbvet:closed
type Kind int

// The value kinds of the model. KindUnion is the marked-union value
// [marker: v] — formally a singleton tuple, but kept distinct so that the
// marker introduced by the typechecker can be recognised and hidden again
// ("implicit selectors", Section 4.2).
const (
	KindNil Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindOID
	KindTuple
	KindList
	KindSet
	KindUnion
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "boolean"
	case KindOID:
		return "oid"
	case KindTuple:
		return "tuple"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	case KindUnion:
		return "union"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is an element of val(O): nil, an atom of dom, an oid of O, or a
// constructed tuple/list/set/union value. Values are immutable by
// convention: constructors copy their arguments where aliasing would be
// observable, and accessors never expose internal slices for mutation.
//
//sgmldbvet:closed
type Value interface {
	// Kind reports the concrete kind of the value.
	Kind() Kind
	// String renders the value in the paper's surface syntax, e.g.
	// tuple(title: "SGML", authors: list("A", "B")).
	String() string
	// key appends a canonical, injective encoding of the value used for
	// hashing and set membership. Distinct values have distinct keys.
	key(b *strings.Builder)
}

// Nil is the undefined value nil. It belongs to every class domain.
type Nil struct{}

// Kind implements Value.
func (Nil) Kind() Kind     { return KindNil }
func (Nil) String() string { return "nil" }
func (Nil) key(b *strings.Builder) {
	b.WriteByte('n')
}

// Int is an atomic integer value.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind       { return KindInt }
func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }
func (v Int) key(b *strings.Builder) {
	b.WriteByte('i')
	b.WriteString(strconv.FormatInt(int64(v), 10))
	b.WriteByte(';')
}

// Float is an atomic float value.
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }
func (v Float) String() string {
	return strconv.FormatFloat(float64(v), 'g', -1, 64)
}
func (v Float) key(b *strings.Builder) {
	b.WriteByte('f')
	b.WriteString(strconv.FormatUint(math.Float64bits(float64(v)), 16))
	b.WriteByte(';')
}

// String_ is an atomic string value. (Named with a trailing underscore to
// avoid colliding with the String method required by fmt.Stringer.)
type String_ string

// Kind implements Value.
func (String_) Kind() Kind       { return KindString }
func (v String_) String() string { return strconv.Quote(string(v)) }
func (v String_) key(b *strings.Builder) {
	b.WriteByte('s')
	b.WriteString(strconv.Itoa(len(v)))
	b.WriteByte(':')
	b.WriteString(string(v))
}

// Bool is an atomic boolean value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }
func (v Bool) String() string {
	if v {
		return "true"
	}
	return "false"
}
func (v Bool) key(b *strings.Builder) {
	if v {
		b.WriteString("bt")
	} else {
		b.WriteString("bf")
	}
}

// OID is an object identifier from obj. OIDs are pure names: the class of
// an oid and the value it denotes live in the instance (π and ν), not in
// the identifier. The zero OID is never assigned.
type OID uint64

// Kind implements Value.
func (OID) Kind() Kind       { return KindOID }
func (v OID) String() string { return fmt.Sprintf("o%d", uint64(v)) }
func (v OID) key(b *strings.Builder) {
	b.WriteByte('o')
	b.WriteString(strconv.FormatUint(uint64(v), 10))
	b.WriteByte(';')
}

// Field is one attribute of an ordered tuple: a name and a value.
type Field struct {
	Name  string
	Value Value
}

// Tuple is an ordered tuple value [a₁:v₁, …, aₙ:vₙ]. Attribute names are
// pairwise distinct and their order is part of the value: for any
// non-identity permutation, [a₁:v₁,…,aₙ:vₙ] ≠ [aᵢ₁:vᵢ₁,…,aᵢₙ:vᵢₙ].
type Tuple struct {
	fields []Field
}

// NewTuple builds an ordered tuple from the given fields. It panics if two
// fields share a name, mirroring the model's requirement that attribute
// names within a tuple are distinct.
func NewTuple(fields ...Field) *Tuple {
	seen := make(map[string]bool, len(fields))
	fs := make([]Field, len(fields))
	for i, f := range fields {
		if f.Value == nil {
			f.Value = Nil{}
		}
		if seen[f.Name] {
			//lint:allow panic programmer-error guard on a value literal, caught at construction
			panic(fmt.Sprintf("object: duplicate tuple attribute %q", f.Name))
		}
		seen[f.Name] = true
		fs[i] = f
	}
	return &Tuple{fields: fs}
}

// Kind implements Value.
func (*Tuple) Kind() Kind { return KindTuple }

// Len reports the number of attributes.
func (t *Tuple) Len() int { return len(t.fields) }

// At returns the i-th field (0-based).
func (t *Tuple) At(i int) Field { return t.fields[i] }

// Get returns the value of the named attribute and whether it exists.
func (t *Tuple) Get(name string) (Value, bool) {
	for _, f := range t.fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return nil, false
}

// Index returns the position of the named attribute, or -1.
func (t *Tuple) Index(name string) int {
	for i, f := range t.fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the attribute names in order.
func (t *Tuple) Names() []string {
	ns := make([]string, len(t.fields))
	for i, f := range t.fields {
		ns[i] = f.Name
	}
	return ns
}

// With returns a copy of the tuple with the named attribute replaced (or
// appended if absent). The receiver is unchanged.
func (t *Tuple) With(name string, v Value) *Tuple {
	fs := make([]Field, len(t.fields), len(t.fields)+1)
	copy(fs, t.fields)
	for i := range fs {
		if fs[i].Name == name {
			fs[i].Value = v
			return &Tuple{fields: fs}
		}
	}
	return &Tuple{fields: append(fs, Field{Name: name, Value: v})}
}

func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteString("tuple(")
	for i, f := range t.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Value.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (t *Tuple) key(b *strings.Builder) {
	b.WriteByte('t')
	b.WriteString(strconv.Itoa(len(t.fields)))
	b.WriteByte('(')
	for _, f := range t.fields {
		b.WriteString(strconv.Itoa(len(f.Name)))
		b.WriteByte(':')
		b.WriteString(f.Name)
		f.Value.key(b)
	}
	b.WriteByte(')')
}

// List is a list value [v₁, …, vₙ].
type List struct {
	elems []Value
}

// NewList builds a list from the given elements (copied).
func NewList(elems ...Value) *List {
	es := make([]Value, len(elems))
	for i, e := range elems {
		if e == nil {
			e = Nil{}
		}
		es[i] = e
	}
	return &List{elems: es}
}

// Kind implements Value.
func (*List) Kind() Kind { return KindList }

// Len reports the number of elements.
func (l *List) Len() int { return len(l.elems) }

// At returns the i-th element (0-based).
func (l *List) At(i int) Value { return l.elems[i] }

// Elems returns a copy of the element slice.
func (l *List) Elems() []Value {
	es := make([]Value, len(l.elems))
	copy(es, l.elems)
	return es
}

// Slice returns the sublist l[from:to] (0-based, to exclusive). Bounds are
// clamped to the list.
func (l *List) Slice(from, to int) *List {
	if from < 0 {
		from = 0
	}
	if to > len(l.elems) {
		to = len(l.elems)
	}
	if from >= to {
		return NewList()
	}
	return NewList(l.elems[from:to]...)
}

// Append returns a new list with vs appended.
func (l *List) Append(vs ...Value) *List {
	es := make([]Value, 0, len(l.elems)+len(vs))
	es = append(es, l.elems...)
	es = append(es, vs...)
	return NewList(es...)
}

func (l *List) String() string {
	var b strings.Builder
	b.WriteString("list(")
	for i, e := range l.elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (l *List) key(b *strings.Builder) {
	b.WriteByte('l')
	b.WriteString(strconv.Itoa(len(l.elems)))
	b.WriteByte('[')
	for _, e := range l.elems {
		e.key(b)
	}
	b.WriteByte(']')
}

// Set is a set value {v₁, …, vₙ}. Elements are deduplicated under strict
// value equality and kept in canonical (key) order so that equal sets have
// equal representations.
type Set struct {
	elems []Value // sorted by Key, no duplicates
}

// NewSet builds a set from the given elements, removing duplicates.
func NewSet(elems ...Value) *Set {
	type keyed struct {
		k string
		v Value
	}
	ks := make([]keyed, 0, len(elems))
	for _, e := range elems {
		if e == nil {
			e = Nil{}
		}
		ks = append(ks, keyed{Key(e), e})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].k < ks[j].k })
	es := make([]Value, 0, len(ks))
	var prev string
	for i, ke := range ks {
		if i > 0 && ke.k == prev {
			continue
		}
		es = append(es, ke.v)
		prev = ke.k
	}
	return &Set{elems: es}
}

// Kind implements Value.
func (*Set) Kind() Kind { return KindSet }

// Len reports the cardinality.
func (s *Set) Len() int { return len(s.elems) }

// At returns the i-th element in canonical order.
func (s *Set) At(i int) Value { return s.elems[i] }

// Elems returns a copy of the elements in canonical order.
func (s *Set) Elems() []Value {
	es := make([]Value, len(s.elems))
	copy(es, s.elems)
	return es
}

// Contains reports set membership under strict equality.
func (s *Set) Contains(v Value) bool {
	k := Key(v)
	i := sort.Search(len(s.elems), func(i int) bool { return Key(s.elems[i]) >= k })
	return i < len(s.elems) && Key(s.elems[i]) == k
}

// Union returns s ∪ t.
func (s *Set) Union(t *Set) *Set {
	return NewSet(append(s.Elems(), t.Elems()...)...)
}

// Intersect returns s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	var es []Value
	for _, e := range s.elems {
		if t.Contains(e) {
			es = append(es, e)
		}
	}
	return NewSet(es...)
}

// Diff returns s ∖ t.
func (s *Set) Diff(t *Set) *Set {
	var es []Value
	for _, e := range s.elems {
		if !t.Contains(e) {
			es = append(es, e)
		}
	}
	return NewSet(es...)
}

// SubsetOf reports s ⊆ t.
func (s *Set) SubsetOf(t *Set) bool {
	for _, e := range s.elems {
		if !t.Contains(e) {
			return false
		}
	}
	return true
}

func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("set(")
	for i, e := range s.elems {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (s *Set) key(b *strings.Builder) {
	b.WriteByte('S')
	b.WriteString(strconv.Itoa(len(s.elems)))
	b.WriteByte('{')
	for _, e := range s.elems {
		e.key(b)
	}
	b.WriteByte('}')
}

// Union_ is a marked-union value [marker: v]: a value of a union type
// (a₁:τ₁ + … + aₙ:τₙ) tagged with the alternative it takes. Formally it is
// the singleton tuple [aᵢ:v]; the distinct kind lets the query processor
// apply and hide implicit selectors (Section 4.2).
type Union_ struct {
	Marker string
	Value  Value
}

// NewUnion builds the marked-union value [marker: v].
func NewUnion(marker string, v Value) *Union_ {
	if v == nil {
		v = Nil{}
	}
	return &Union_{Marker: marker, Value: v}
}

// Kind implements Value.
func (*Union_) Kind() Kind { return KindUnion }

func (u *Union_) String() string {
	return fmt.Sprintf("<%s: %s>", u.Marker, u.Value.String())
}

func (u *Union_) key(b *strings.Builder) {
	b.WriteByte('u')
	b.WriteString(strconv.Itoa(len(u.Marker)))
	b.WriteByte(':')
	b.WriteString(u.Marker)
	u.Value.key(b)
}

// Key returns a canonical injective encoding of v: Key(v)==Key(w) iff
// Equal(v, w). It is the basis of set semantics and of hashing values in
// maps.
func Key(v Value) string {
	var b strings.Builder
	v.key(&b)
	return b.String()
}

// Equal reports strict value equality: same kind, same structure, same
// atoms, same attribute order. It does not identify a tuple with its
// heterogeneous-list view; see Equiv for the (≡) equivalence of the paper.
func Equal(v, w Value) bool {
	if v == nil {
		v = Nil{}
	}
	if w == nil {
		w = Nil{}
	}
	if v.Kind() != w.Kind() {
		return false
	}
	switch a := v.(type) {
	case Nil:
		return true
	case Int:
		return a == w.(Int)
	case Float:
		return a == w.(Float) || (math.IsNaN(float64(a)) && math.IsNaN(float64(w.(Float))))
	case String_:
		return a == w.(String_)
	case Bool:
		return a == w.(Bool)
	case OID:
		return a == w.(OID)
	case *Tuple:
		b := w.(*Tuple)
		if len(a.fields) != len(b.fields) {
			return false
		}
		for i := range a.fields {
			if a.fields[i].Name != b.fields[i].Name || !Equal(a.fields[i].Value, b.fields[i].Value) {
				return false
			}
		}
		return true
	case *List:
		b := w.(*List)
		if len(a.elems) != len(b.elems) {
			return false
		}
		for i := range a.elems {
			if !Equal(a.elems[i], b.elems[i]) {
				return false
			}
		}
		return true
	case *Set:
		b := w.(*Set)
		if len(a.elems) != len(b.elems) {
			return false
		}
		for i := range a.elems {
			if !Equal(a.elems[i], b.elems[i]) {
				return false
			}
		}
		return true
	case *Union_:
		b := w.(*Union_)
		return a.Marker == b.Marker && Equal(a.Value, b.Value)
	default:
		return false
	}
}

// IsNil reports whether v is the undefined value.
func IsNil(v Value) bool {
	if v == nil {
		return true
	}
	_, ok := v.(Nil)
	return ok
}
