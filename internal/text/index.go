package text

import (
	"hash/fnv"
	"sort"
	"sync"

	"sgmldb/internal/faultpoint"
)

// Fault-injection sites on the index-rebuild path the facade runs after
// staging a load. Clone and Add return no error, so an injected failure
// escalates to a panic — deliberately: these sites exist to prove that a
// panic between "documents staged" and "snapshot published" is contained
// at the facade boundary and rolled back, not that an error is politely
// forwarded.
var (
	fpClone = faultpoint.New("text/index-clone")
	fpAdd   = faultpoint.New("text/index-add")
)

// DocID identifies an indexed document (the caller typically uses object
// identifiers).
type DocID uint64

// posting is the occurrence list of one word in one document.
type posting struct {
	doc       DocID
	positions []int // word positions, ascending
}

// indexShards is the number of vocabulary shards. Words hash to a shard,
// so concurrent lookups of different words — and a replay-time re-index
// running against lookups — contend only when they land on the same
// shard, not on one index-wide mutex. 16 keeps the per-shard maps dense
// while spreading lock traffic well past typical core counts.
const indexShards = 16

// shard holds the postings of the words hashing to it, under its own
// lock. The copy-on-write bookkeeping (cow, owned) is per shard too:
// Clone marks every shard shared, and each shard copies a word's posting
// slice the first time it modifies it.
type shard struct {
	mu    sync.RWMutex
	vocab map[string][]posting // word -> postings, one posting per doc
	// cow marks a shard whose posting slices may be shared with a clone
	// (set on both sides of Clone); owned tracks the words this shard has
	// already copied.
	cow   bool
	owned map[string]bool
	// sortMu guards the lazily built sortedWords cache, which readers
	// (holding only mu.RLock) may need to build. Lock order: mu before
	// sortMu.
	sortMu sync.Mutex
	// sortedWords caches the shard's vocabulary for pattern scans;
	// invalidated by Add and retract.
	sortedWords []string
}

// Index is a positional inverted index: the full-text indexing mechanism
// whose integration Section 4.1 and Section 6 call for. It answers
// contains expressions (boolean combinations of patterns) and near
// predicates without scanning document text.
//
// An Index is safe for concurrent use, and its vocabulary is sharded by
// word hash: Add write-locks only the shards its words hash to (plus the
// document bookkeeping), and every reader (Lookup, Eval, Docs, …) locks
// one shard at a time, so lookups of different words proceed with no
// shared mutex between them. Each atom of an Eval observes its words
// atomically; atomicity across a whole expression against a concurrent
// Add is provided by the facade's copy-on-write discipline instead — a
// published index is never Added to again. Clone supports exactly that
// discipline: a writer clones the published index, Adds into the clone
// (posting slices are copied lazily, per shard, the first time the clone
// touches a word), and publishes the clone, so queries pinned to the old
// index never observe a half-applied batch.
type Index struct {
	shards [indexShards]*shard

	// docMu guards the document-level bookkeeping below. Lock order:
	// docMu before any shard.mu.
	docMu sync.RWMutex
	docs  map[DocID]bool
	order []DocID // insertion order
	// docWords records the distinct words of each indexed document so that
	// re-Adding a document can first retract its old postings.
	docWords map[DocID][]string
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{
		docs:     make(map[DocID]bool),
		docWords: make(map[DocID][]string),
	}
	for i := range ix.shards {
		ix.shards[i] = &shard{
			vocab: make(map[string][]posting),
		}
	}
	return ix
}

// shardOf hashes a word to its shard.
func (ix *Index) shardOf(w string) *shard {
	h := fnv.New32a()
	h.Write([]byte(w))
	return ix.shards[h.Sum32()%indexShards]
}

// shardIndexOf returns the shard number for a word (for per-shard
// bucketing in Add and retract).
func shardIndexOf(w string) int {
	h := fnv.New32a()
	h.Write([]byte(w))
	return int(h.Sum32() % indexShards)
}

// Clone returns an independently mutable copy of the index. The copy is
// cheap — posting slices are shared, shard by shard, until either side
// modifies a word — which is what makes per-load index versions
// affordable: the writer clones, Adds the new documents, and atomically
// publishes the clone, while readers pinned to the original keep a
// stable view.
func (ix *Index) Clone() *Index {
	if err := fpClone.Hit(); err != nil {
		//lint:allow panic injected faults escalate to panics here (no error return); contained at the facade boundary
		panic(err)
	}
	ix.docMu.Lock()
	defer ix.docMu.Unlock()
	c := &Index{
		docs:     make(map[DocID]bool, len(ix.docs)),
		order:    append([]DocID(nil), ix.order...),
		docWords: make(map[DocID][]string, len(ix.docWords)),
	}
	for d := range ix.docs {
		c.docs[d] = true
	}
	for d, ws := range ix.docWords {
		c.docWords[d] = ws
	}
	for i, s := range ix.shards {
		s.mu.Lock()
		cs := &shard{
			vocab: make(map[string][]posting, len(s.vocab)),
			cow:   true,
			owned: make(map[string]bool),
		}
		for w, ps := range s.vocab {
			cs.vocab[w] = ps
		}
		// The source shard's slices are now shared too: everything it
		// owned it no longer owns exclusively, and future Adds must copy
		// before writing.
		s.cow = true
		s.owned = make(map[string]bool)
		s.mu.Unlock()
		c.shards[i] = cs
	}
	return c
}

// Add indexes the text of one document. Re-Adding a document replaces its
// postings wholesale: the old positions are retracted first, so positions
// stay ascending and phrase/near evaluation (which binary-searches
// position lists) stays correct across re-indexing. Concurrent Adds of
// distinct documents are safe; re-Adding the same document from two
// goroutines at once is not (the facade's single-writer discipline never
// does).
func (ix *Index) Add(doc DocID, text string) {
	if err := fpAdd.Hit(); err != nil {
		//lint:allow panic injected faults escalate to panics here (no error return); contained at the facade boundary
		panic(err)
	}
	toks := Tokenize(text)
	// Bucket the tokens by shard; within a bucket, tokens keep document
	// order, so each word's position list is appended ascending.
	var buckets [indexShards][]Token
	for _, t := range toks {
		si := shardIndexOf(t.Word)
		buckets[si] = append(buckets[si], t)
	}
	ix.docMu.Lock()
	defer ix.docMu.Unlock()
	if ix.docs[doc] {
		ix.retract(doc)
	} else {
		ix.docs[doc] = true
		ix.order = append(ix.order, doc)
	}
	var words []string
	for si, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		s := ix.shards[si]
		s.mu.Lock()
		s.invalidateSorted()
		for _, t := range bucket {
			ps := s.ownPostings(t.Word)
			if n := len(ps); n > 0 && ps[n-1].doc == doc {
				ps[n-1].positions = append(ps[n-1].positions, t.Pos)
			} else {
				words = append(words, t.Word)
				ps = append(ps, posting{doc: doc, positions: []int{t.Pos}})
			}
			s.vocab[t.Word] = ps
		}
		s.mu.Unlock()
	}
	ix.docWords[doc] = words
}

// retract removes a document's postings ahead of re-indexing. The caller
// holds ix.docMu and re-Adds the document immediately, so docs and order
// are left alone.
func (ix *Index) retract(doc DocID) {
	var buckets [indexShards][]string
	for _, w := range ix.docWords[doc] {
		si := shardIndexOf(w)
		buckets[si] = append(buckets[si], w)
	}
	for si, ws := range buckets {
		if len(ws) == 0 {
			continue
		}
		s := ix.shards[si]
		s.mu.Lock()
		s.invalidateSorted()
		for _, w := range ws {
			s.retractWord(w, doc)
		}
		s.mu.Unlock()
	}
	delete(ix.docWords, doc)
}

// retractWord removes doc's posting for one word. The caller holds the
// shard's write lock.
func (s *shard) retractWord(w string, doc DocID) {
	ps := s.vocab[w]
	at := -1
	for i, p := range ps {
		if p.doc == doc {
			at = i
			break
		}
	}
	if at < 0 {
		return
	}
	if s.cow && !s.owned[w] {
		cp := make([]posting, 0, len(ps)-1)
		cp = append(cp, ps[:at]...)
		cp = append(cp, ps[at+1:]...)
		ps = cp
		s.owned[w] = true
	} else {
		ps = append(ps[:at], ps[at+1:]...)
	}
	if len(ps) == 0 {
		delete(s.vocab, w)
	} else {
		s.vocab[w] = ps
	}
}

// ownPostings returns the word's posting slice, first copying it if it
// may be shared with a clone. Every posting this Add call appends is
// fresh (retract removed the document's old entry), so owning the slice
// itself is enough — older postings' position lists are never written.
// The caller holds the shard's write lock.
func (s *shard) ownPostings(w string) []posting {
	ps := s.vocab[w]
	if s.cow && !s.owned[w] {
		cp := make([]posting, len(ps))
		copy(cp, ps)
		ps = cp
		s.owned[w] = true
	}
	return ps
}

// invalidateSorted drops the shard's sorted-vocabulary cache. The caller
// holds the shard's write lock.
func (s *shard) invalidateSorted() {
	s.sortMu.Lock()
	s.sortedWords = nil
	s.sortMu.Unlock()
}

// Size reports the number of indexed documents.
func (ix *Index) Size() int {
	ix.docMu.RLock()
	defer ix.docMu.RUnlock()
	return len(ix.docs)
}

// VocabularySize reports the number of distinct words.
func (ix *Index) VocabularySize() int {
	n := 0
	for _, s := range ix.shards {
		s.mu.RLock()
		n += len(s.vocab)
		s.mu.RUnlock()
	}
	return n
}

// Docs returns all indexed documents in insertion order.
func (ix *Index) Docs() []DocID {
	ix.docMu.RLock()
	defer ix.docMu.RUnlock()
	out := make([]DocID, len(ix.order))
	copy(out, ix.order)
	return out
}

// Lookup returns the documents containing the word, ascending. It locks
// only the word's shard, so lookups of different words never contend.
func (ix *Index) Lookup(word string) []DocID {
	s := ix.shardOf(word)
	s.mu.RLock()
	ps := s.vocab[word]
	out := make([]DocID, len(ps))
	for i, p := range ps {
		out[i] = p.doc
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matchingWords scans the vocabulary with a pattern. Bare literals hash
// straight to one shard and skip the scan; genuine patterns scan every
// shard's sorted cache, one shard lock at a time.
func (ix *Index) matchingWords(p *Pattern) []string {
	if lit, ok := p.Literal(); ok {
		s := ix.shardOf(lit)
		s.mu.RLock()
		_, present := s.vocab[lit]
		s.mu.RUnlock()
		if present {
			return []string{lit}
		}
		return nil
	}
	var out []string
	for _, s := range ix.shards {
		s.mu.RLock()
		for _, w := range s.sorted() {
			if p.Match(w) {
				out = append(out, w)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// sorted returns the shard's sorted vocabulary, (re)building the cache
// under its own mutex so that concurrent readers — who hold only
// mu.RLock — do not race on the cache. Mutators invalidate it under
// mu.Lock, which excludes all readers, so the cache a reader builds here
// is consistent with the vocabulary it scans.
func (s *shard) sorted() []string {
	s.sortMu.Lock()
	defer s.sortMu.Unlock()
	if s.sortedWords == nil {
		s.sortedWords = make([]string, 0, len(s.vocab))
		for w := range s.vocab {
			s.sortedWords = append(s.sortedWords, w)
		}
		sort.Strings(s.sortedWords)
	}
	return s.sortedWords
}

// Eval answers a contains expression from the index: the set of documents
// whose text satisfies expr, ascending by DocID.
//
// Pattern atoms are evaluated at word granularity (a pattern matches a
// document if it matches one of the document's words), which is the IRS
// convention the index supports; multi-word literal atoms are evaluated as
// a phrase using positions. Negation complements against the set of all
// indexed documents. Each atom locks only the shards of its own words, so
// concurrent Evals share no index-wide mutex.
func (ix *Index) Eval(expr Expr) []DocID {
	set := ix.eval(expr)
	out := make([]DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (ix *Index) eval(expr Expr) map[DocID]bool {
	switch e := expr.(type) {
	case MatchExpr:
		if lit, ok := e.Pattern.Literal(); ok {
			words := Words(lit)
			if len(words) > 1 {
				return ix.phrase(words)
			}
			if len(words) == 1 {
				return ix.docsWith(words[0])
			}
			return map[DocID]bool{}
		}
		out := map[DocID]bool{}
		for _, w := range ix.matchingWords(e.Pattern) {
			for d := range ix.docsWith(w) {
				out[d] = true
			}
		}
		return out
	case AndExpr:
		l := ix.eval(e.L)
		r := ix.eval(e.R)
		out := map[DocID]bool{}
		for d := range l {
			if r[d] {
				out[d] = true
			}
		}
		return out
	case OrExpr:
		out := ix.eval(e.L)
		for d := range ix.eval(e.R) {
			out[d] = true
		}
		return out
	case NotExpr:
		inner := ix.eval(e.E)
		out := map[DocID]bool{}
		ix.docMu.RLock()
		for d := range ix.docs {
			if !inner[d] {
				out[d] = true
			}
		}
		ix.docMu.RUnlock()
		return out
	case NearExpr:
		return ix.near(e)
	default:
		return map[DocID]bool{}
	}
}

// docsWith returns the set of documents containing the word, under the
// word's shard read lock.
func (ix *Index) docsWith(word string) map[DocID]bool {
	s := ix.shardOf(word)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[DocID]bool{}
	for _, p := range s.vocab[word] {
		out[p.doc] = true
	}
	return out
}

// fetchOcc copies one word's occurrences out of its shard: doc ->
// ascending positions. Copying under the read lock gives each atom a
// consistent per-word snapshot without nesting shard locks (nested read
// locks across shards could deadlock against pending writers).
func (ix *Index) fetchOcc(word string) map[DocID][]int {
	s := ix.shardOf(word)
	s.mu.RLock()
	defer s.mu.RUnlock()
	ps := s.vocab[word]
	out := make(map[DocID][]int, len(ps))
	for _, p := range ps {
		out[p.doc] = append([]int(nil), p.positions...)
	}
	return out
}

// phrase finds documents containing the words consecutively.
func (ix *Index) phrase(words []string) map[DocID]bool {
	occ := ix.occurrencesOf(words)
	out := make(map[DocID]bool, len(occ))
	for d := range occ {
		out[d] = true
	}
	return out
}

// near answers a word-distance predicate from positions. Either operand
// may be a multi-word phrase: its occurrences are the start positions at
// which the words appear consecutively, and the distance is the word gap
// between the end of one occurrence and the start of the other.
func (ix *Index) near(e NearExpr) map[DocID]bool {
	out := map[DocID]bool{}
	aw, bw := Words(e.A), Words(e.B)
	if len(aw) == 0 || len(bw) == 0 {
		return out
	}
	a := ix.occurrencesOf(aw)
	b := ix.occurrencesOf(bw)
	for doc, aPos := range a {
		bPos, ok := b[doc]
		if !ok {
			continue
		}
		if nearSpans(aPos, bPos, len(aw), len(bw), e.Dist) {
			out[doc] = true
		}
	}
	return out
}

// occurrencesOf maps each document to the ascending start positions at
// which the words occur consecutively. A single word reduces to its
// position list; a phrase intersects word k's positions shifted by k,
// one shard lock at a time.
func (ix *Index) occurrencesOf(words []string) map[DocID][]int {
	base := ix.fetchOcc(words[0])
	for k := 1; k < len(words); k++ {
		next := ix.fetchOcc(words[k])
		for doc, starts := range base {
			np := next[doc]
			keep := starts[:0]
			for _, p := range starts {
				i := sort.SearchInts(np, p+k)
				if i < len(np) && np[i] == p+k {
					keep = append(keep, p)
				}
			}
			if len(keep) == 0 {
				delete(base, doc)
			} else {
				base[doc] = keep
			}
		}
	}
	return base
}

// nearSpans reports whether some a-occurrence (la words long) and some
// b-occurrence (lb words long) are separated by at most dist intervening
// words. Overlapping occurrences do not match, which for single words
// coincides with NearExpr.Eval's |pa−pb|−1 ≤ dist, pa ≠ pb.
func nearSpans(as, bs []int, la, lb, dist int) bool {
	for _, sa := range as {
		for _, sb := range bs {
			var gap int
			if sa < sb {
				gap = sb - (sa + la)
			} else {
				gap = sa - (sb + lb)
			}
			if gap >= 0 && gap <= dist {
				return true
			}
		}
	}
	return false
}
