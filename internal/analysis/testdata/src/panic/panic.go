// Package panicfix is a sgmldbvet fixture: a panic reachable from
// exported API must be annotated or removed.
package panicfix

// Explode panics directly.
func Explode() {
	panic("boom") // want "panic in exported panicfix.Explode"
}

// Outer reaches a panic through an unexported helper.
func Outer() int {
	return helper()
}

func helper() int {
	panic("inner") // want "panic reachable from exported API (e.g. via panicfix.Outer)"
}

// Allowed panics deliberately, with the annotation naming why.
func Allowed() {
	//lint:allow panic fixture demonstrates a deliberate contract panic
	panic("deliberate")
}

// Malformed carries an annotation without a reason: the directive itself
// is diagnosed and does not suppress the finding.
func Malformed() {
	//lint:allow panic
	panic("still flagged") // want "panic in exported panicfix.Malformed"
}

func unreachablePanic() {
	panic("dead code")
}
