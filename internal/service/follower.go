package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"sgmldb"
	"sgmldb/internal/faultpoint"
	"sgmldb/internal/wal"
)

// Follower is the replication client: it tails a primary's /v1/feed and
// applies the shipped records to a local OpenFollower database. On a 410
// SEQ_TRUNCATED — the primary checkpointed past our anchor — or a 409
// STALE_TERM — a promotion elsewhere forked past our anchor — it
// bootstraps from /v1/checkpoint and resumes tailing. Transient failures
// (network, primary restarting, primary draining) retry under
// full-jitter exponential backoff; the loop runs until ctx is cancelled.
// Every request anchors at (DB.AppliedSeq(), DB.Term()), so a restarted
// or reconnected follower resumes exactly where it stopped — no record
// is re-applied or skipped — and a primary whose history diverged from
// that anchor is detected on the first poll, not after records applied.
//
// Two self-protection mechanisms harden the loop (DESIGN.md §12):
//
//   - Every request carries a deadline: the feed poll gets its long-poll
//     window plus a grace period, a bootstrap gets BootstrapTimeout. A
//     half-dead primary that accepts connections and then hangs costs
//     one deadline, not a stuck follower.
//   - Checkpoint bootstraps run behind a circuit breaker: after
//     BreakerThreshold consecutive bootstrap failures the breaker opens
//     and the loop probes half-open once per BreakerCooldown instead of
//     hammering a primary that is itself struggling to checkpoint. One
//     success closes it. The state is pushed into the database
//     (Stats.BreakerOpen, /v1/health breaker_open) so operators see it.
type Follower struct {
	DB      *sgmldb.Database // an OpenFollower database
	Primary string           // primary base URL, e.g. http://10.0.0.1:8080
	Key     string           // API key for the primary (empty in open mode)

	// Optional knobs; zero values get serviceable defaults.
	Client           *http.Client
	WaitMS           uint64        // feed long-poll window
	MaxBytes         uint64        // per-response frame budget
	MinBackoff       time.Duration // backoff ceiling for the first retry
	MaxBackoff       time.Duration // backoff ceiling growth cap
	BootstrapTimeout time.Duration // per-bootstrap request deadline
	BreakerThreshold int           // consecutive bootstrap failures that open the breaker
	BreakerCooldown  time.Duration // delay between half-open probes while the breaker is open
}

// feedGrace pads the feed request deadline past the long-poll window:
// the window is server time, the grace covers the network round-trip and
// body transfer.
const feedGrace = 5 * time.Second

const (
	defaultBootstrapTimeout = 30 * time.Second
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 5 * time.Second
)

// fpFollowerApply fails the apply of one shipped record: the chaos suite
// arms it to prove a follower that dies mid-batch resumes from its last
// applied record, not the batch boundary.
var fpFollowerApply = faultpoint.New("service/follower-apply")

func (f *Follower) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return http.DefaultClient
}

func (f *Follower) backoffBounds() (lo, hi time.Duration) {
	lo, hi = f.MinBackoff, f.MaxBackoff
	if lo <= 0 {
		lo = 50 * time.Millisecond
	}
	if hi <= 0 {
		hi = 3 * time.Second
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// backoffDelay picks the sleep before retry attempt (0-based) under full
// jitter: uniform in (0, min(MaxBackoff, MinBackoff<<attempt)]. Full
// jitter beats deterministic doubling when many followers lose the same
// primary at once — their retries spread over the window instead of
// arriving in synchronized waves.
func (f *Follower) backoffDelay(attempt int) time.Duration {
	lo, hi := f.backoffBounds()
	ceil := hi
	if attempt < 30 {
		if c := lo << attempt; c < hi {
			ceil = c
		}
	}
	return rand.N(ceil) + 1
}

func (f *Follower) breakerThreshold() int {
	if f.BreakerThreshold > 0 {
		return f.BreakerThreshold
	}
	return defaultBreakerThreshold
}

func (f *Follower) breakerCooldown() time.Duration {
	if f.BreakerCooldown > 0 {
		return f.BreakerCooldown
	}
	return defaultBreakerCooldown
}

func (f *Follower) bootstrapTimeout() time.Duration {
	if f.BootstrapTimeout > 0 {
		return f.BootstrapTimeout
	}
	return defaultBootstrapTimeout
}

// Run tails the primary until ctx is cancelled. It returns ctx.Err() on
// cancellation; any other return is a permanent failure (a DTD mismatch,
// a poisoned stream) that retrying cannot fix.
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	bootFails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, err := f.poll(ctx)
		switch {
		case err == nil:
			// Any successful round-trip closes the breaker, not only a
			// bootstrap: a loop that recovered via a plain poll must not
			// report breaker_open forever (or keep the cooldown pacing).
			f.DB.SetBreakerOpen(false)
			attempt, bootFails = 0, 0
			continue
		case errors.Is(err, errBootstrap):
			if berr := f.bootstrap(ctx); berr == nil {
				f.DB.ObserveRebootstrap()
				f.DB.SetBreakerOpen(false)
				attempt, bootFails = 0, 0
				continue
			} else if ctx.Err() != nil {
				return ctx.Err()
			}
			// Bootstrap failed (primary mid-checkpoint, transient error):
			// count it toward the breaker, then back off and retry the
			// whole handshake.
			if bootFails++; bootFails >= f.breakerThreshold() {
				f.DB.SetBreakerOpen(true)
			}
		case ctx.Err() != nil:
			return ctx.Err()
		case isPermanent(err):
			return err
		}
		if progressed {
			attempt = 0
		}
		delay := f.backoffDelay(attempt)
		if f.DB.BreakerOpen() {
			// Open breaker: one half-open probe per cooldown, nothing in
			// between. The cooldown dominates the jittered backoff.
			delay = f.breakerCooldown()
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		attempt++
	}
}

// errBootstrap signals poll saw 410 SEQ_TRUNCATED or 409 STALE_TERM: the
// anchor is not in the primary's history (checkpointed away, or forked
// past by a promotion) and the follower must install a checkpoint.
var errBootstrap = errors.New("service: feed anchor unusable; checkpoint bootstrap required")

// isPermanent classifies apply-side failures retrying cannot fix.
func isPermanent(err error) bool {
	return errors.Is(err, errApply)
}

// errApply wraps a local ApplyRecord failure: the shipped record decoded
// cleanly but would not apply, which re-fetching the same record cannot
// cure.
var errApply = errors.New("service: applying shipped record")

// poll performs one feed round-trip and applies what it got. progressed
// reports whether at least one record applied, so the caller can reset
// its backoff even when the stream then broke.
func (f *Follower) poll(ctx context.Context) (progressed bool, err error) {
	after := f.DB.AppliedSeq()
	url := fmt.Sprintf("%s/v1/feed?after=%d&term=%d&wait_ms=%d&max_bytes=%d",
		f.Primary, after, f.DB.Term(), f.waitMS(), f.maxBytes())
	deadline := time.Duration(f.waitMS())*time.Millisecond + feedGrace
	body, hdr, status, err := f.get(ctx, url, deadline)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
	case http.StatusGone:
		return false, errBootstrap
	case http.StatusConflict:
		// 409 STALE_TERM: a promotion forked history past our anchor. Our
		// unshipped suffix is garbage; re-bootstrap truncates it.
		return false, fmt.Errorf("%w (%s)", errBootstrap, wireError(status, body))
	default:
		return false, fmt.Errorf("service: feed: %s", wireError(status, body))
	}
	if seq, perr := strconv.ParseUint(hdr.Get(headerPrimarySeq), 10, 64); perr == nil {
		f.DB.ObservePrimarySeq(seq)
	}
	// Fencing, follower side: a source whose term is behind ours is a
	// deposed primary still serving its old history. Nothing it ships may
	// apply — drop the whole response before decoding a single frame.
	if srcTerm, perr := strconv.ParseUint(hdr.Get(headerTerm), 10, 64); perr == nil && srcTerm > 0 {
		if myTerm := f.DB.Term(); myTerm > 0 && srcTerm < myTerm {
			return false, fmt.Errorf("service: feed source at stale term %d, local history already at term %d: %w",
				srcTerm, myTerm, sgmldb.ErrStaleTerm)
		}
	}
	// Decode and apply frame by frame. A decode failure means the stream
	// was cut mid-frame (a killed primary, a dropped connection): keep
	// what applied, re-anchor, and let the next poll refetch the rest —
	// the same torn-tail tolerance local recovery has.
	off := 0
	for off < len(body) {
		rec, n, derr := wal.DecodeFrame(body[off:])
		if derr != nil {
			return progressed, fmt.Errorf("service: feed stream cut at offset %d: %w", off, derr)
		}
		off += n
		if rec.Seq <= f.DB.AppliedSeq() {
			continue // duplicate delivery after a re-anchor race: skip
		}
		if ferr := fpFollowerApply.Hit(); ferr != nil {
			return progressed, fmt.Errorf("service: apply record %d: %w", rec.Seq, ferr)
		}
		if aerr := f.DB.ApplyRecord(rec); aerr != nil {
			switch {
			case errors.Is(aerr, sgmldb.ErrReplicaGap):
				// The stream skipped records we never saw; only a
				// checkpoint can carry us over the hole.
				return progressed, fmt.Errorf("%w (record %d: %w)", errBootstrap, rec.Seq, aerr)
			case errors.Is(aerr, sgmldb.ErrStaleTerm):
				// A stale-term record slipped into an otherwise current
				// response (promotion racing the poll): drop the batch and
				// re-anchor; retrying sorts out who is current.
				return progressed, fmt.Errorf("service: apply record %d: %w", rec.Seq, aerr)
			default:
				return progressed, fmt.Errorf("%w %d: %w", errApply, rec.Seq, aerr)
			}
		}
		progressed = true
	}
	return progressed, nil
}

// bootstrap fetches and installs the primary's newest checkpoint.
func (f *Follower) bootstrap(ctx context.Context) error {
	body, hdr, status, err := f.get(ctx, f.Primary+"/v1/checkpoint", f.bootstrapTimeout())
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		// No checkpoint on the primary, yet the feed said our anchor is
		// truncated — a prune race; retry the handshake.
		return fmt.Errorf("service: bootstrap: primary has no checkpoint yet")
	}
	if status != http.StatusOK {
		return fmt.Errorf("service: bootstrap: %s", wireError(status, body))
	}
	// Fencing, bootstrap side: a source whose term is behind ours is a
	// deposed primary. Installing its checkpoint would adopt its forked
	// history wholesale (and durably discard our newer-term records), so
	// refuse before decoding a byte. ApplyCheckpoint re-checks against the
	// checkpoint's own term as the last line of defense.
	if srcTerm, perr := strconv.ParseUint(hdr.Get(headerTerm), 10, 64); perr == nil && srcTerm > 0 {
		if myTerm := f.DB.Term(); myTerm > 0 && srcTerm < myTerm {
			return fmt.Errorf("service: bootstrap source at stale term %d, local history already at term %d: %w",
				srcTerm, myTerm, sgmldb.ErrStaleTerm)
		}
	}
	ck, err := wal.DecodeCheckpoint(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("service: bootstrap: decoding checkpoint: %w", err)
	}
	if err := f.DB.ApplyCheckpoint(ck); err != nil {
		return fmt.Errorf("service: bootstrap: %w", err)
	}
	return nil
}

// get performs one authenticated GET under a deadline and slurps the
// body. A read error mid-body returns what arrived: the frame decoder
// treats the missing rest as a stream cut.
func (f *Follower) get(ctx context.Context, url string, timeout time.Duration) (body []byte, hdr http.Header, status int, err error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, 0, err
	}
	if f.Key != "" {
		req.Header.Set("Authorization", "Bearer "+f.Key)
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil && len(body) == 0 {
		return nil, nil, 0, rerr
	}
	return body, resp.Header, resp.StatusCode, nil
}

// wireError renders an error response for a log line: the envelope's
// code and message when the body parses, the raw status otherwise.
func wireError(status int, body []byte) string {
	var eb errorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error.Code != "" {
		return fmt.Sprintf("%d %s: %s", status, eb.Error.Code, eb.Error.Message)
	}
	return fmt.Sprintf("status %d", status)
}

func (f *Follower) waitMS() uint64 {
	if f.WaitMS > 0 {
		return f.WaitMS
	}
	return feedDefaultWaitMS
}

func (f *Follower) maxBytes() uint64 {
	if f.MaxBytes > 0 {
		return f.MaxBytes
	}
	return feedDefaultMaxB
}
