// Command benchgen generates a deterministic synthetic SGML corpus (the
// benchmark workload) and either writes the documents to a directory or
// loads them and writes a database snapshot.
//
// Usage:
//
//	benchgen -docs 100 -sections 8 -out corpus/       # write .sgml files
//	benchgen -docs 100 -snap corpus.snap              # load and snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sgmldb/internal/corpus"
	"sgmldb/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	docs := flag.Int("docs", 10, "number of articles")
	sections := flag.Int("sections", 5, "sections per article")
	words := flag.Int("words", 30, "words per paragraph")
	vocab := flag.Int("vocab", 1000, "vocabulary size")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "directory for generated .sgml files")
	snap := flag.String("snap", "", "load the corpus and write this snapshot")
	flag.Parse()
	p := corpus.Params{Docs: *docs, Sections: *sections, Words: *words,
		Vocabulary: *vocab, Seed: *seed}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		g := corpus.NewGenerator(p)
		if err := os.WriteFile(filepath.Join(*out, "article.dtd"),
			[]byte(corpus.ArticleDTD+"\n"), 0o644); err != nil {
			return err
		}
		for i := 0; i < *docs; i++ {
			name := filepath.Join(*out, fmt.Sprintf("article%04d.sgml", i))
			if err := os.WriteFile(name, []byte(g.Article(i)), 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d documents to %s\n", *docs, *out)
	}
	if *snap != "" {
		db, err := corpus.BuildArticles(p)
		if err != nil {
			return err
		}
		st := db.Loader.Instance.Stats()
		fmt.Printf("corpus: %d documents, %d objects, %d raw SGML bytes, %d value bytes (overhead ×%.2f)\n",
			*docs, st.Objects, db.RawBytes, st.ValueBytes,
			float64(st.ValueBytes)/float64(db.RawBytes))
		if err := saveSnapshot(db, *snap); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", *snap)
	}
	if *out == "" && *snap == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -snap")
	}
	return nil
}

func saveSnapshot(db *corpus.Database, path string) error {
	return store.SaveFile(path, db.Loader.Instance)
}
