package calculus

import (
	"context"

	"sgmldb/internal/store"
)

// Context support for the evaluator. The environment built by NewEnv is
// shared by every query; WithContext derives a cheap per-evaluation copy
// that carries the caller's context, so concurrent evaluations each see
// their own cancellation signal without synchronising on the shared Env.
//
// Cancellation is checked at scan granularity — once per formula
// dispatch, once per valuation batch in the atom filters, and once per
// enumerated path in the naive path-variable scan — so a long query
// returns ctx.Err() promptly without paying a check on every term.

// WithContext returns a copy of the environment whose evaluations observe
// ctx: Eval, EvalWith and Term return ctx.Err() once ctx is done. The
// receiver is not modified, so one shared Env can serve concurrent
// queries, each through its own WithContext copy.
func (e *Env) WithContext(ctx context.Context) *Env {
	if ctx == nil {
		ctx = context.Background()
	}
	e2 := *e
	e2.ctx = ctx
	return &e2
}

// WithInstance returns a copy of the environment evaluating against
// inst: the snapshot-pinning hook of the copy-on-write facade. Queries
// derive a copy pinned to the instance version current at query start,
// so one evaluation never straddles a concurrently published load. The
// receiver is not modified.
func (e *Env) WithInstance(inst *store.Instance) *Env {
	e2 := *e
	e2.Inst = inst
	return &e2
}

// WithMeter returns a copy of the environment whose evaluations charge
// the meter: the strided row-scan polls account processed rows (and
// estimated materialisation) against the meter's budget and fail the
// evaluation with ErrBudgetExceeded when it is exhausted. A nil meter
// leaves the evaluation unbudgeted. The receiver is not modified.
func (e *Env) WithMeter(m *Meter) *Env {
	e2 := *e
	e2.meter = m
	return &e2
}

// Meter returns the evaluation's cost meter (nil when unbudgeted); the
// algebra's charge sites read it off the execution environment.
func (e *Env) Meter() *Meter { return e.meter }

// Context returns the evaluation context (context.Background when the
// environment was not derived with WithContext).
func (e *Env) Context() context.Context {
	if e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// checkCtx reports the context's error, if any.
func (e *Env) checkCtx() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// pollCtx is the strided cancellation-and-budget poll of the row-scan
// loops: it checks the context once every ctxCheckStride rows, so a scan
// stays promptly cancellable without paying a context read per row, and
// charges the stride's rows to the evaluation's cost meter so a scan
// past its budget stops within one stride.
func (e *Env) pollCtx(i int) error {
	if i%ctxCheckStride != 0 {
		return nil
	}
	if err := e.checkCtx(); err != nil {
		return err
	}
	if i == 0 {
		// Nothing processed yet on this scan: just observe a budget trip
		// from a sibling goroutine or branch.
		return e.meter.Err()
	}
	return e.meter.Charge(ctxCheckStride, 0)
}

// ctxCheckStride bounds how many valuations an atom filter processes
// between cancellation checks.
const ctxCheckStride = 64
