package dtdmap

import (
	"strings"

	"sgmldb/internal/object"
	"sgmldb/internal/store"
)

// TextOf implements the system-supplied text operator of Section 4.2: the
// inverse mapping from a logical object (a section, a subsection, …) to
// the corresponding portion of text. It concatenates, in structural
// order, every content string reachable from v, following object
// references. Private reference attributes (the materialised ID/IDREF
// back pointers) are skipped — a paragraph's text does not include the
// figure it cites — and each object is visited at most once, so cycles
// terminate.
func TextOf(inst *store.Instance, v object.Value) string {
	var parts []string
	seen := make(map[object.OID]bool)
	// walk visits a value; class names the class of the object whose
	// stored value this is ("" when the value is not an object's own
	// value), so that private attributes can be recognised.
	var walk func(v object.Value, class string)
	walk = func(v object.Value, class string) {
		switch x := v.(type) {
		case object.String_:
			s := strings.TrimSpace(string(x))
			if s != "" {
				parts = append(parts, s)
			}
		case object.OID:
			if seen[x] {
				return
			}
			seen[x] = true
			if inner, ok := inst.Deref(x); ok {
				c, _ := inst.ClassOf(x)
				walk(inner, c)
			}
		case *object.Tuple:
			for i := 0; i < x.Len(); i++ {
				f := x.At(i)
				if class != "" && inst.Schema().IsPrivate(class, f.Name) {
					continue
				}
				walk(f.Value, "")
			}
		case *object.List:
			for i := 0; i < x.Len(); i++ {
				walk(x.At(i), "")
			}
		case *object.Set:
			for i := 0; i < x.Len(); i++ {
				walk(x.At(i), "")
			}
		case *object.Union_:
			walk(x.Value, class)
		default:
			// ints, floats, bools and nil contribute no text
		}
	}
	if o, ok := v.(object.OID); ok {
		walk(o, "")
	} else {
		walk(v, "")
	}
	return strings.Join(parts, " ")
}
