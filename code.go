package sgmldb

import (
	"context"
	"errors"
)

// Stable machine-readable codes for the sentinel error taxonomy. These
// are wire contract: cmd/sgmldbd returns them in every error body, and
// clients branch on them, so a code once shipped never changes meaning.
const (
	CodeOK            = ""                    // nil error
	CodeParse         = "PARSE"               // ErrParse
	CodeTypecheck     = "TYPECHECK"           // ErrTypecheck
	CodeOverloaded    = "OVERLOADED"          // ErrOverloaded
	CodeBudget        = "BUDGET_EXCEEDED"     // ErrBudgetExceeded
	CodeInternal      = "INTERNAL"            // ErrInternal
	CodeReadOnly      = "READ_ONLY"           // ErrReadOnly
	CodeUnknownObject = "UNKNOWN_OBJECT"      // ErrUnknownObject
	CodeNoMapping     = "NO_MAPPING"          // ErrNoMapping
	CodeCorruptLog    = "CORRUPT_LOG"         // ErrCorruptLog
	CodeUnsupported   = "UNSUPPORTED_VERSION" // ErrUnsupportedVersion
	CodeDegraded      = "DEGRADED"            // ErrDegraded
	CodeNotPrimary    = "NOT_PRIMARY"         // ErrNotPrimary
	CodeSeqTruncated  = "SEQ_TRUNCATED"       // ErrSeqTruncated
	CodeStaleTerm     = "STALE_TERM"          // ErrStaleTerm
	CodeReplicaGap    = "REPLICA_GAP"         // ErrReplicaGap
	CodeNotFollower   = "NOT_FOLLOWER"        // ErrNotFollower
	CodeCanceled      = "CANCELED"            // context.Canceled
	CodeDeadline      = "DEADLINE"            // context.DeadlineExceeded
	CodeUnknown       = "UNKNOWN"             // anything else
)

// Code classifies an error from the Database API into its stable
// machine-readable code: one distinct code per exported sentinel, plus
// CodeCanceled/CodeDeadline for context errors and CodeUnknown for
// anything outside the taxonomy. A nil error is CodeOK. The service layer
// derives HTTP status and the JSON error body from it, so clients never
// have to parse message text.
//
// ErrBudgetExceeded is checked before context errors: a query killed by
// its own WithQueryTimeout/QTimeout budget is a budget trip even when the
// caller's context expired in the same window.
func Code(err error) string {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrParse):
		return CodeParse
	case errors.Is(err, ErrTypecheck):
		return CodeTypecheck
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrBudgetExceeded):
		return CodeBudget
	case errors.Is(err, ErrInternal):
		return CodeInternal
	case errors.Is(err, ErrReadOnly):
		return CodeReadOnly
	case errors.Is(err, ErrUnknownObject):
		return CodeUnknownObject
	case errors.Is(err, ErrNoMapping):
		return CodeNoMapping
	case errors.Is(err, ErrCorruptLog):
		return CodeCorruptLog
	case errors.Is(err, ErrUnsupportedVersion):
		return CodeUnsupported
	case errors.Is(err, ErrDegraded):
		return CodeDegraded
	case errors.Is(err, ErrNotPrimary):
		return CodeNotPrimary
	case errors.Is(err, ErrSeqTruncated):
		return CodeSeqTruncated
	case errors.Is(err, ErrStaleTerm):
		return CodeStaleTerm
	case errors.Is(err, ErrReplicaGap):
		return CodeReplicaGap
	case errors.Is(err, ErrNotFollower):
		return CodeNotFollower
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	default:
		return CodeUnknown
	}
}
