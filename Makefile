# Development targets. `make ci` is the extended verify recorded in
# ROADMAP.md: vet + sgmldbvet + build + the full test suite under the
# race detector + the chaos (fault-injection) suite + the crash-recovery
# suite + a fuzz smoke of the SGML parsers and the WAL record decoder +
# the network-service smoke (real sgmldbd process, load-generator burst,
# clean drain) + a smoke run of every benchmark.

GO ?= go

.PHONY: all build vet vet-fix-baseline test race bench fuzz chaos crash fsck smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sgmldbvet -baseline vet_baseline.json ./...

# Regenerate the sgmldbvet baseline from the current findings. The tool
# exits nonzero when the baseline shrinks (entries were fixed), listing
# what was removed — review the diff and commit the regenerated file;
# a shrink is progress, but never a silent one.
vet-fix-baseline:
	$(GO) run ./cmd/sgmldbvet -baseline vet_baseline.json -write-baseline ./...

# -shuffle=on randomises test (and subtest) order: tests must not lean
# on residue from earlier tests, which matters doubly now that database
# state is published through shared snapshots.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# One iteration of every benchmark: catches bit-rot in the experiment
# harness without paying for full measurements.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# A few seconds per fuzz target: catches parser panics on mutated input
# without an open-ended run. Minimization is capped by executions — the
# default 60s-per-interesting-input budget stalls a smoke run.
fuzz:
	$(GO) test ./internal/sgml/ -run='^$$' -fuzz=FuzzParseDTD -fuzztime=5s -fuzzminimizetime=10x
	$(GO) test ./internal/sgml/ -run='^$$' -fuzz=FuzzParseDocument -fuzztime=5s -fuzzminimizetime=10x
	$(GO) test ./internal/wal/ -run='^$$' -fuzz=FuzzWALRecord -fuzztime=5s -fuzzminimizetime=10x

# The fault-injection suite under the race detector, alone and
# repeated: injected failures mid-load, evaluator panics, budget trips
# and admission shedding must leave the database serving, every run.
# TestChaosFailover* rides along: kill -9 photographs of the primary
# are promoted over and rejoined, and must converge on the new term.
chaos:
	$(GO) test -race -count=2 -run='TestChaos' .

# The crash-recovery suite under the race detector: the durable commit
# path is killed at every WAL seam (append, post-append, post-fsync,
# mid-checkpoint, pre-checkpoint-rename) and the data directory must
# recover to exactly the pre- or post-operation epoch, never a hybrid.
crash:
	$(GO) test -race -count=1 -run='TestCrash|TestDurable' .

# The integrity-checker suite under the race detector: online scrub,
# offline fsck verify/repair semantics (torn tails repaired, corruption
# refused), and the sgmldbfsck exit-code contract.
fsck:
	$(GO) test -race -count=1 -run='TestFsck|TestScrub' ./internal/wal ./cmd/sgmldbfsck

# End-to-end service smoke: a real sgmldbd process on loopback under a
# tenant config, a load-generator burst with zero tolerated errors, and
# a SIGTERM drain that must exit 0 — plus replication, crash-restart
# and kill-9 → promote → rejoin failover legs (scripts/service_smoke.sh).
smoke:
	sh scripts/service_smoke.sh

ci:
	$(GO) vet ./...
	$(GO) run ./cmd/sgmldbvet -baseline vet_baseline.json -json ./... > vet_findings.json
	$(GO) build ./...
	$(GO) test -race -shuffle=on ./...
	$(MAKE) chaos
	$(MAKE) crash
	$(MAKE) fsck
	$(MAKE) fuzz
	$(MAKE) smoke
	$(GO) test -run='^$$' -bench=. -benchtime=1x .
