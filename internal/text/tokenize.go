package text

import (
	"strings"
	"unicode"
)

// Token is one word occurrence: the lower-cased word, its ordinal position
// and its byte offset in the source text.
type Token struct {
	Word   string
	Pos    int // 0-based word position
	Offset int // byte offset of the first character
}

// Tokenize splits text into word tokens: maximal runs of letters and
// digits, lower-cased. Everything else separates words.
func Tokenize(text string) []Token {
	var out []Token
	start := -1
	pos := 0
	flush := func(end int) {
		if start >= 0 {
			out = append(out, Token{
				Word:   strings.ToLower(text[start:end]),
				Pos:    pos,
				Offset: start,
			})
			pos++
			start = -1
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return out
}

// Words returns just the lower-cased words of text.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Word
	}
	return out
}
