package dtdmap

import (
	"fmt"
	"strings"

	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
)

// Export implements the inverse mapping the paper's footnote 1 points at
// ("the inverse mapping from database schema/instances to SGML
// DTD/documents also opens interesting perspectives"): it reconstructs an
// SGML document from a loaded document object. Exported documents
// re-parse and re-load to an isomorphic instance.
//
// ID attribute values are not stored by the loader (it materialises the
// cross references as object references instead), so Export synthesises
// fresh ID tokens: every object referenced through an IDREF attribute
// gets a deterministic "id<N>" label.
func Export(m *Mapping, inst *store.Instance, doc object.OID) (string, error) {
	ex := &exporter{m: m, inst: inst, ids: map[object.OID]string{}}
	// First pass: find IDREF targets so their elements carry ID labels.
	if err := ex.collectIDTargets(doc, map[object.OID]bool{}); err != nil {
		return "", err
	}
	var b strings.Builder
	if err := ex.element(&b, doc); err != nil {
		return "", err
	}
	return b.String(), nil
}

type exporter struct {
	m    *Mapping
	inst *store.Instance
	ids  map[object.OID]string // IDREF target -> synthesised ID token
	next int
}

// collectIDTargets walks the document assigning ID tokens to every object
// referenced through an IDREF-typed private attribute.
func (ex *exporter) collectIDTargets(oid object.OID, seen map[object.OID]bool) error {
	if seen[oid] {
		return nil
	}
	seen[oid] = true
	class, ok := ex.inst.ClassOf(oid)
	if !ok {
		return fmt.Errorf("dtdmap: export of unknown object %s", oid)
	}
	elem := ex.m.ElementFor(class)
	v, _ := ex.inst.Deref(oid)
	if elem != "" {
		decl, _ := ex.m.DTD.Element(elem)
		if tup, ok := v.(*object.Tuple); ok {
			for _, def := range decl.Attrs {
				if def.Type != sgml.AttIDREF && def.Type != sgml.AttIDREFS {
					continue
				}
				fv, ok := tup.Get(def.Name)
				if !ok {
					continue
				}
				for _, target := range oidsIn(fv) {
					if _, has := ex.ids[target]; !has {
						ex.next++
						ex.ids[target] = fmt.Sprintf("id%d", ex.next)
					}
				}
			}
		}
	}
	for _, child := range oidsIn(v) {
		if err := ex.collectIDTargets(child, seen); err != nil {
			return err
		}
	}
	return nil
}

func oidsIn(v object.Value) []object.OID {
	var out []object.OID
	switch x := v.(type) {
	case object.OID:
		out = append(out, x)
	case *object.Tuple:
		for i := 0; i < x.Len(); i++ {
			out = append(out, oidsIn(x.At(i).Value)...)
		}
	case *object.List:
		for i := 0; i < x.Len(); i++ {
			out = append(out, oidsIn(x.At(i))...)
		}
	case *object.Set:
		for i := 0; i < x.Len(); i++ {
			out = append(out, oidsIn(x.At(i))...)
		}
	case *object.Union_:
		out = append(out, oidsIn(x.Value)...)
	default:
		// atoms and nil contain no oids
	}
	return out
}

// element writes one element with its attributes and content.
func (ex *exporter) element(b *strings.Builder, oid object.OID) error {
	class, ok := ex.inst.ClassOf(oid)
	if !ok {
		return fmt.Errorf("dtdmap: export of unknown object %s", oid)
	}
	elem := ex.m.ElementFor(class)
	if elem == "" {
		// A Text/Bitmap content object reached directly (mixed content).
		v, _ := ex.inst.Deref(oid)
		if tup, isTuple := v.(*object.Tuple); isTuple {
			if c, ok := tup.Get("content"); ok {
				if s, isStr := c.(object.String_); isStr {
					b.WriteString(escapeText(string(s)))
					return nil
				}
			}
		}
		return fmt.Errorf("dtdmap: object %s of class %s maps to no element", oid, class)
	}
	decl, _ := ex.m.DTD.Element(elem)
	v, _ := ex.inst.Deref(oid)

	b.WriteByte('<')
	b.WriteString(elem)
	if err := ex.attributes(b, oid, decl, v); err != nil {
		return err
	}
	b.WriteByte('>')

	switch decl.Content.(type) {
	case sgml.PCData:
		if tup, ok := v.(*object.Tuple); ok {
			if c, ok := tup.Get("content"); ok {
				if s, isStr := c.(object.String_); isStr {
					b.WriteString(escapeText(string(s)))
				}
			}
		}
	case sgml.Empty:
		// No content, and in SGML no end tag either.
		return nil
	case sgml.AnyContent:
		if tup, ok := v.(*object.Tuple); ok {
			if c, ok := tup.Get("contents"); ok {
				for _, child := range oidsIn(c) {
					if err := ex.element(b, child); err != nil {
						return err
					}
				}
			}
		}
	default:
		sh := ex.m.shapes[elem]
		inner := structuralValue(sh, v)
		if err := ex.shape(b, sh, inner); err != nil {
			return fmt.Errorf("dtdmap: element %s: %w", elem, err)
		}
	}
	b.WriteString("</")
	b.WriteString(elem)
	b.WriteByte('>')
	return nil
}

// structuralValue undoes the class-type layout of classTypeFor: it
// recovers the value matching the shape from the stored tuple.
func structuralValue(sh shape, v object.Value) object.Value {
	switch sh.(type) {
	case shapeTuple:
		return v // fields are spread into the class tuple
	case shapeUnion:
		if u, ok := v.(*object.Union_); ok {
			return u
		}
		// Wrapped as tuple(content: union, attrs…).
		if tup, ok := v.(*object.Tuple); ok {
			if c, ok := tup.Get("content"); ok {
				return c
			}
		}
		return v
	default:
		// Single-field wrapping (lists, options, single elements).
		if tup, ok := v.(*object.Tuple); ok {
			name := fieldNameFor(sh)
			if c, ok := tup.Get(name); ok {
				return c
			}
		}
		return v
	}
}

// shape writes the content dictated by a shape from the aligned value.
func (ex *exporter) shape(b *strings.Builder, sh shape, v object.Value) error {
	switch x := sh.(type) {
	case shapeElem:
		oid, ok := v.(object.OID)
		if !ok {
			return fmt.Errorf("expected an object for element %s, got %s", x.elem, v)
		}
		return ex.element(b, oid)
	case shapePCData:
		if oid, ok := v.(object.OID); ok {
			return ex.element(b, oid)
		}
		if s, ok := v.(object.String_); ok {
			b.WriteString(escapeText(string(s)))
			return nil
		}
		return fmt.Errorf("expected character data, got %s", v)
	case shapeOpt:
		if object.IsNil(v) {
			return nil
		}
		return ex.shape(b, x.inner, v)
	case shapeList:
		l, ok := v.(*object.List)
		if !ok {
			return fmt.Errorf("expected a list, got %s", v)
		}
		for i := 0; i < l.Len(); i++ {
			if err := ex.shape(b, x.inner, l.At(i)); err != nil {
				return err
			}
		}
		return nil
	case shapeTuple:
		tup, ok := v.(*object.Tuple)
		if !ok {
			return fmt.Errorf("expected a tuple, got %s", v)
		}
		for _, f := range x.fields {
			fv, ok := tup.Get(f.name)
			if !ok {
				return fmt.Errorf("missing field %s", f.name)
			}
			if err := ex.shape(b, f.inner, fv); err != nil {
				return err
			}
		}
		return nil
	case shapeUnion:
		u, ok := v.(*object.Union_)
		if !ok {
			return fmt.Errorf("expected a union value, got %s", v)
		}
		for _, alt := range x.alts {
			if alt.marker == u.Marker {
				return ex.shape(b, alt.inner, u.Value)
			}
		}
		return fmt.Errorf("union marker %s not in shape", u.Marker)
	default:
		return fmt.Errorf("unsupported shape %T", sh)
	}
}

// attributes writes the element's attributes from the private fields.
func (ex *exporter) attributes(b *strings.Builder, oid object.OID, decl *sgml.ElementDecl, v object.Value) error {
	tup, ok := v.(*object.Tuple)
	if !ok {
		if _, isUnion := v.(*object.Union_); isUnion {
			return nil // union-typed class without attributes
		}
		return nil
	}
	for _, def := range decl.Attrs {
		fv, ok := tup.Get(def.Name)
		if !ok {
			continue
		}
		switch def.Type {
		case sgml.AttID:
			// Emit the synthesised ID when this object is referenced, or
			// unconditionally when the DTD requires the attribute.
			id, has := ex.ids[oid]
			if !has && def.Default == sgml.DefaultRequired {
				ex.next++
				id = fmt.Sprintf("id%d", ex.next)
				ex.ids[oid] = id
				has = true
			}
			if has {
				fmt.Fprintf(b, " %s=%q", def.Name, id)
			}
		case sgml.AttIDREF:
			if target, isOID := fv.(object.OID); isOID {
				id, has := ex.ids[target]
				if !has {
					return fmt.Errorf("dtdmap: IDREF target %s has no label", target)
				}
				fmt.Fprintf(b, " %s=%q", def.Name, id)
			}
		case sgml.AttIDREFS:
			if l, isList := fv.(*object.List); isList && l.Len() > 0 {
				parts := make([]string, 0, l.Len())
				for _, t := range oidsIn(l) {
					id, has := ex.ids[t]
					if !has {
						return fmt.Errorf("dtdmap: IDREFS target %s has no label", t)
					}
					parts = append(parts, id)
				}
				fmt.Fprintf(b, " %s=%q", def.Name, strings.Join(parts, " "))
			}
		case sgml.AttNUMBER:
			if n, isInt := fv.(object.Int); isInt {
				fmt.Fprintf(b, " %s=\"%d\"", def.Name, int64(n))
			}
		default:
			if s, isStr := fv.(object.String_); isStr {
				fmt.Fprintf(b, " %s=%q", def.Name, string(s))
			}
		}
	}
	return nil
}

// escapeText escapes markup-significant characters in character data.
func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
