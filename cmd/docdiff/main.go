// Command docdiff computes the structural difference between two versions
// of a document — query Q4 of the paper: the set of paths present in the
// new version and not in the old one.
//
// Usage:
//
//	docdiff -dtd article.dtd old.sgml new.sgml
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sgmldb"
	"sgmldb/internal/object"
	"sgmldb/internal/path"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "docdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	dtdPath := flag.String("dtd", "", "DTD file (required)")
	flag.Parse()
	if *dtdPath == "" || flag.NArg() != 2 {
		return fmt.Errorf("usage: docdiff -dtd file.dtd old.sgml new.sgml")
	}
	db, err := sgmldb.OpenDTDFile(*dtdPath)
	if err != nil {
		return err
	}
	oldOID, err := db.LoadDocumentFile(flag.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %w", flag.Arg(0), err)
	}
	newOID, err := db.LoadDocumentFile(flag.Arg(1))
	if err != nil {
		return fmt.Errorf("%s: %w", flag.Arg(1), err)
	}
	if err := db.Name("old_doc", oldOID); err != nil {
		return err
	}
	if err := db.Name("new_doc", newOID); err != nil {
		return err
	}
	added, err := db.Query(`new_doc PATH_p - old_doc PATH_p`)
	if err != nil {
		return err
	}
	removed, err := db.Query(`old_doc PATH_p - new_doc PATH_p`)
	if err != nil {
		return err
	}
	print := func(label string, v object.Value) {
		s := v.(*object.Set)
		var lines []string
		for i := 0; i < s.Len(); i++ {
			if p, err := path.FromValue(s.At(i)); err == nil {
				lines = append(lines, p.String())
			}
		}
		sort.Strings(lines)
		fmt.Printf("%s (%d paths):\n", label, len(lines))
		for _, l := range lines {
			fmt.Printf("  %s\n", l)
		}
	}
	print("added", added)
	print("removed", removed)
	return nil
}
