module sgmldb

go 1.22
