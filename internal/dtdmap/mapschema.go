package dtdmap

import (
	"fmt"
	"strings"

	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
)

// Names of the predefined content classes of Section 3: SGML basic types
// are represented by classes of an appropriate content type.
const (
	// TextClass holds character data; #PCDATA elements inherit it.
	TextClass = "Text"
	// BitmapClass holds non-SGML data; EMPTY elements (images) inherit it.
	BitmapClass = "Bitmap"
)

// Mapping is a compiled DTD→schema mapping: the generated schema plus the
// correspondence between element names and classes that the instance
// loader and the text() operator need.
type Mapping struct {
	DTD    *sgml.DTD
	Schema *store.Schema

	classOf   map[string]string // element name -> class name
	elemOf    map[string]string // class name -> element name
	shapes    map[string]shape  // element name -> compiled shape (structured elements)
	attrOrder map[string][]sgml.AttDef
	// RootName is the persistence root declared for the document class,
	// e.g. "Articles" for an article DTD.
	RootName string
}

// ClassFor returns the class name an element maps to.
func (m *Mapping) ClassFor(elem string) string { return m.classOf[strings.ToLower(elem)] }

// ElementFor returns the element a class maps back to ("" for the
// predefined content classes).
func (m *Mapping) ElementFor(class string) string { return m.elemOf[class] }

// MapDTD compiles a DTD into a schema of the extended O₂ model following
// Section 3: one class per element definition, plus the predefined Text
// and Bitmap content classes and a persistence root holding the list of
// documents.
func MapDTD(dtd *sgml.DTD) (*Mapping, error) {
	m := &Mapping{
		DTD:       dtd,
		Schema:    store.NewSchema(),
		classOf:   make(map[string]string),
		elemOf:    make(map[string]string),
		shapes:    make(map[string]shape),
		attrOrder: make(map[string][]sgml.AttDef),
	}
	if err := m.Schema.AddClass(TextClass, object.TupleOf(
		object.TField{Name: "content", Type: object.StringType})); err != nil {
		return nil, err
	}
	if err := m.Schema.AddClass(BitmapClass, object.TupleOf(
		object.TField{Name: "file", Type: object.StringType})); err != nil {
		return nil, err
	}
	// First pass: allocate class names so content models may refer to any
	// element regardless of declaration order.
	for _, elem := range dtd.Elements() {
		class := m.className(elem)
		m.classOf[elem] = class
		m.elemOf[class] = elem
		if err := m.Schema.AddClass(class, object.TupleOf()); err != nil {
			return nil, err
		}
	}
	// Second pass: build each class's type, inheritance and constraints.
	for _, elem := range dtd.Elements() {
		if err := m.buildClass(elem); err != nil {
			return nil, err
		}
	}
	// The persistence root: name Articles: list (Article).
	docClass := m.classOf[dtd.Name]
	m.RootName = pluralizeClass(docClass)
	if err := m.Schema.AddRoot(m.RootName, object.ListOf(object.Class(docClass))); err != nil {
		return nil, err
	}
	// Default behaviour: a text method signature on the document class
	// (standard display/read methods in the paper's terms).
	if err := m.Schema.AddMethod(store.MethodSig{
		Class: docClass, Name: "text", Result: object.StringType,
	}); err != nil {
		return nil, err
	}
	if err := m.Schema.Check(); err != nil {
		return nil, err
	}
	return m, nil
}

// className capitalises an element name into a class name: article →
// Article, subsectn → Subsectn. Collisions with the predefined classes are
// suffixed.
func (m *Mapping) className(elem string) string {
	name := strings.ToUpper(elem[:1]) + elem[1:]
	for name == TextClass || name == BitmapClass || m.elemOf[name] != "" {
		name += "_"
	}
	return name
}

// buildClass fills in the class generated for one element definition.
func (m *Mapping) buildClass(elem string) error {
	decl, _ := m.DTD.Element(elem)
	class := m.classOf[elem]
	attrFields, attrCons, err := m.attrFields(decl)
	if err != nil {
		return err
	}
	m.attrOrder[elem] = decl.Attrs

	var classType object.Type
	var cons []store.Constraint

	switch content := decl.Content.(type) {
	case sgml.PCData:
		// An SGML basic type: a class of content type Text.
		if err := m.Schema.AddInherits(class, TextClass); err != nil {
			return err
		}
		fields := append([]object.TField{{Name: "content", Type: object.StringType}}, attrFields...)
		classType = object.TupleOf(dedupFields(fields)...)
	case sgml.Empty:
		// Non-SGML data (images): a class of content type Bitmap. An
		// ENTITY attribute named file (Figure 1's picture) doubles as the
		// Bitmap content; otherwise a file field is added.
		if err := m.Schema.AddInherits(class, BitmapClass); err != nil {
			return err
		}
		fields := attrFields
		if !hasField(fields, "file") {
			fields = append([]object.TField{{Name: "file", Type: object.StringType}}, fields...)
		}
		classType = object.TupleOf(dedupFields(fields)...)
	case sgml.AnyContent:
		// ANY content: a heterogeneous list of arbitrary logical objects.
		fields := append([]object.TField{{Name: "contents", Type: object.ListOf(object.Any)}}, attrFields...)
		classType = object.TupleOf(dedupFields(fields)...)
	default:
		sh, err := m.compileModel(content)
		if err != nil {
			return fmt.Errorf("dtdmap: element %s: %w", elem, err)
		}
		m.shapes[elem] = sh
		classType, cons = m.classTypeFor(sh, attrFields)
	}
	if err := m.Schema.SetClassType(class, classType); err != nil {
		return err
	}
	for _, c := range cons {
		if err := m.Schema.AddConstraint(class, c); err != nil {
			return err
		}
	}
	for _, c := range attrCons {
		if err := m.Schema.AddConstraint(class, c); err != nil {
			return err
		}
	}
	// SGML attributes are private: they do not belong to the document's
	// logical structure (Figure 3's "private status: string").
	for _, a := range attrFields {
		if err := m.Schema.MarkPrivate(class, a.Name); err != nil {
			return err
		}
	}
	return nil
}

// classTypeFor turns a compiled shape into the class's type, appending the
// private attribute fields, and derives the Figure 3 constraints.
func (m *Mapping) classTypeFor(sh shape, attrFields []object.TField) (object.Type, []store.Constraint) {
	var cons []store.Constraint
	switch x := sh.(type) {
	case shapeTuple:
		t := x.typ(m).(object.TupleType)
		fields := append(t.Fields(), attrFields...)
		for _, spec := range constraintsFor(x) {
			cons = append(cons, materialise(spec))
		}
		return object.TupleOf(dedupFields(fields)...), cons
	case shapeUnion:
		u := x.typ(m).(object.UnionType)
		// The paper's Body constraint: one of the alternatives is present.
		var alts []store.Constraint
		allElems := true
		for _, a := range x.alts {
			if _, ok := a.inner.(shapeElem); !ok {
				allElems = false
			}
			alts = append(alts, store.NotNil{Attr: a.marker})
		}
		if allElems {
			cons = append(cons, store.AnyOf{Alts: alts})
		} else {
			for _, spec := range constraintsFor(x) {
				cons = append(cons, materialise(spec))
			}
		}
		if len(attrFields) == 0 {
			return u, cons
		}
		fields := append([]object.TField{{Name: "content", Type: u}}, attrFields...)
		return object.TupleOf(dedupFields(fields)...), cons
	case shapeList:
		name := x.suggestion()
		if name == "" {
			name = "items"
		}
		fields := append([]object.TField{{Name: name, Type: x.typ(m)}}, attrFields...)
		if x.required {
			cons = append(cons, store.NotEmptyList{Attr: name})
		}
		return object.TupleOf(dedupFields(fields)...), cons
	case shapeOpt:
		name := x.suggestion()
		if name == "" {
			name = "content"
		}
		fields := append([]object.TField{{Name: name, Type: x.typ(m)}}, attrFields...)
		return object.TupleOf(dedupFields(fields)...), cons
	case shapeElem, shapePCData:
		name := sh.suggestion()
		fields := append([]object.TField{{Name: name, Type: sh.typ(m)}}, attrFields...)
		cons = append(cons, store.NotNil{Attr: name})
		return object.TupleOf(dedupFields(fields)...), cons
	default:
		return object.TupleOf(attrFields...), nil
	}
}

// materialise converts a constraint spec into a store constraint.
func materialise(spec constraintSpec) store.Constraint {
	switch spec.kind {
	case conNotNil:
		return store.NotNil{Attr: spec.attr}
	case conNotEmpty:
		return store.NotEmptyList{Attr: spec.attr}
	case conOnAlt:
		inner := make([]store.Constraint, len(spec.inner))
		for i, in := range spec.inner {
			inner[i] = materialise(in)
		}
		return store.OnAlt{Marker: spec.attr, Inner: inner}
	default:
		//lint:allow panic unreachable: the switch covers every conKind constant (enforced by sgmldbvet exhaustive)
		panic("dtdmap: unknown constraint kind")
	}
}

// attrFields maps ATTLIST declarations to private tuple attributes:
// strings for CDATA/NMTOKEN/NAME/enumerations, integers for NUMBER,
// object references for IDREF (Figure 3's "private reflabel: Object"),
// lists of referencing objects for ID ("private label: list (Object)"),
// and the entity's system identifier for ENTITY.
func (m *Mapping) attrFields(decl *sgml.ElementDecl) ([]object.TField, []store.Constraint, error) {
	var fields []object.TField
	var cons []store.Constraint
	for _, a := range decl.Attrs {
		var t object.Type
		switch a.Type {
		case sgml.AttID:
			// An ID attribute yields the list of objects referencing this
			// one: object sharing makes the cross reference navigable in
			// both directions.
			t = object.ListOf(object.Any)
		case sgml.AttIDREF:
			t = object.Any
		case sgml.AttIDREFS:
			t = object.ListOf(object.Any)
		case sgml.AttNUMBER:
			t = object.IntType
		default:
			t = object.StringType
		}
		fields = append(fields, object.TField{Name: a.Name, Type: t})
		if a.Type == sgml.AttEnum {
			vals := make([]object.Value, len(a.Enum))
			for i, e := range a.Enum {
				vals[i] = object.String_(e)
			}
			cons = append(cons, store.InSet{Attr: a.Name, Values: vals})
		}
		if a.Default == sgml.DefaultRequired {
			cons = append(cons, store.NotNil{Attr: a.Name})
		}
	}
	return fields, cons, nil
}

// dedupFields suffixes duplicate attribute names (a structural member and
// an SGML attribute may collide).
func dedupFields(fields []object.TField) []object.TField {
	used := map[string]int{}
	out := make([]object.TField, len(fields))
	for i, f := range fields {
		used[f.Name]++
		if used[f.Name] > 1 {
			f.Name = fmt.Sprintf("%s%d", f.Name, used[f.Name])
		}
		out[i] = f
	}
	return out
}

func hasField(fields []object.TField, name string) bool {
	for _, f := range fields {
		if f.Name == name {
			return true
		}
	}
	return false
}

// pluralizeClass forms the root name: Article → Articles.
func pluralizeClass(class string) string { return pluralize(class) }
