package sgmldb

// BenchmarkQueryParallel quantifies the concurrency tentpole on two axes:
//
//   - Serial vs Workers=N: intra-query parallelism — one query's outer
//     scan partitioned across the worker pool;
//   - Concurrent: inter-query parallelism — b.RunParallel issuing
//     independent queries against one engine (shared plan cache, shared
//     index, lock-free instance reads).
//
// Both must beat Serial when GOMAXPROCS > 1. Run with:
//
//	go test -bench=QueryParallel -cpu=1,4,8
import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"sgmldb/internal/corpus"
	"sgmldb/internal/object"
)

func BenchmarkQueryParallel(b *testing.B) {
	const q = `select t from a in Articles, a PATH_p.title(t)`
	db := articlesDB(b, 12)
	check := func(b *testing.B, v object.Value, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if v.(*object.Set).Len() == 0 {
			b.Fatal("empty result")
		}
	}
	b.Run("Serial", func(b *testing.B) {
		e := engineFor(db, true, true)
		e.Workers = 1
		v, err := e.Query(q) // warm the plan cache
		check(b, v, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := e.Query(q)
			check(b, v, err)
		}
	})
	b.Run(fmt.Sprintf("Workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		e := engineFor(db, true, true)
		e.Workers = 0 // GOMAXPROCS
		v, err := e.Query(q)
		check(b, v, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := e.Query(q)
			check(b, v, err)
		}
	})
	b.Run("Concurrent", func(b *testing.B) {
		e := engineFor(db, true, true)
		e.Workers = 1 // isolate inter-query scaling
		p, err := e.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		v, verr := p.Run(ctx)
		check(b, v, verr)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v, err := p.Run(ctx)
				check(b, v, err)
			}
		})
	})
}

// BenchmarkAdmissionGate prices resource governance on the hot query
// path: the same prepared query ungated, behind an uncontended admission
// gate, under a per-query budget, and with all issuing goroutines
// contending for GOMAXPROCS slots. Ungated vs Gated is the cost of the
// semaphore (one channel send/receive per query), Budgeted adds the cost
// of metering at the strided polls, and GatedConcurrent shows shedding
// is not needed to stay cheap when slots cover the parallelism.
func BenchmarkAdmissionGate(b *testing.B) {
	const q = `select t from probe PATH_p.title(t)`
	open := func(b *testing.B, opts ...Option) *PreparedQuery {
		b.Helper()
		g := corpus.NewGenerator(corpus.Params{Seed: 7})
		db, err := OpenDTD(corpus.ArticleDTD, append([]Option{WithAlgebra(true)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		oid, err := db.LoadDocument(g.Article(0))
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Name("probe", oid); err != nil {
			b.Fatal(err)
		}
		p, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(context.Background()); err != nil { // warm the plan cache
			b.Fatal(err)
		}
		return p
	}
	serial := func(b *testing.B, p *PreparedQuery) {
		b.Helper()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Ungated", func(b *testing.B) { serial(b, open(b)) })
	b.Run("Gated", func(b *testing.B) {
		serial(b, open(b, WithMaxConcurrentQueries(runtime.GOMAXPROCS(0))))
	})
	b.Run("Budgeted", func(b *testing.B) {
		serial(b, open(b, WithMaxRows(1<<40), WithMaxMemory(1<<40)))
	})
	b.Run("GatedConcurrent", func(b *testing.B) {
		p := open(b, WithMaxConcurrentQueries(runtime.GOMAXPROCS(0)))
		ctx := context.Background()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := p.Run(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkLoadWhileQuerying measures reader latency under write load:
// one goroutine keeps loading documents through the facade while the
// benchmark loop queries a named root. With copy-on-write snapshots the
// readers never block on the loads — the number reported here is the
// price of a query that pins its snapshot while a writer publishes new
// ones, and should track BenchmarkQueryParallel/Serial, not the load
// time.
func BenchmarkLoadWhileQuerying(b *testing.B) {
	g := corpus.NewGenerator(corpus.Params{Seed: 7})
	const pool = 32
	srcs := make([]string, pool)
	for i := range srcs {
		srcs[i] = g.Article(i)
	}
	db, err := OpenDTD(corpus.ArticleDTD, WithAlgebra(true))
	if err != nil {
		b.Fatal(err)
	}
	oid, err := db.LoadDocument(srcs[0])
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Name("probe", oid); err != nil {
		b.Fatal(err)
	}
	// Query a singular root so the read cost stays flat as the writer
	// grows the Articles extent behind it.
	const q = `select t from probe PATH_p.title(t)`
	v, err := db.Query(q) // warm the plan cache
	if err != nil {
		b.Fatal(err)
	}
	if v.(*object.Set).Len() == 0 {
		b.Fatal("empty result")
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for i := 1; ; i++ {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if _, err := db.LoadDocument(srcs[i%pool]); err != nil {
				done <- err
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	if err := <-done; err != nil {
		b.Fatalf("writer: %v", err)
	}
}
