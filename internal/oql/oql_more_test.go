package oql

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/path"
)

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`select t.x, PATH_p ATT_a "s" 'q' 3 2.5 .. -> [ ] { } ( ) : = != < <= > >= - + * -- comment
ident`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{
		tokKeyword, tokIdent, tokDot, tokIdent, tokComma, tokPathVar, tokAttrVar,
		tokString, tokString, tokInt, tokFloat, tokDotDot, tokArrow,
		tokLBrack, tokRBrack, tokLBrace, tokRBrace, tokLParen, tokRParen,
		tokColon, tokEq, tokNe, tokLt, tokLe, tokGt, tokGe,
		tokMinus, tokPlus, tokStar, tokIdent, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v (%s), want %v", i, kinds[i], toks[i], want[i])
		}
	}
	// String escapes.
	toks2, err := lex(`"a\nb\t\"c\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks2[0].text != "a\nb\t\"c\"" {
		t.Errorf("escapes = %q", toks2[0].text)
	}
	// Errors.
	for _, bad := range []string{`"open`, "~", "`"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) must fail", bad)
		}
	}
	// Keyword case-insensitivity.
	toks3, _ := lex("SELECT x FROM y IN z")
	if toks3[0].kind != tokKeyword || toks3[0].text != "select" {
		t.Error("keywords are case-insensitive")
	}
}

func TestSortInQueries(t *testing.T) {
	e := articleEngine(t)
	v, err := e.Query(`sort(set(3, 1, 2))`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.NewList(object.Int(1), object.Int(2), object.Int(3))) {
		t.Errorf("sort = %s", v)
	}
	// set_to_list composes with a select.
	v, err = e.Query(`sort(select s from a in Articles, s in a.sections)`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*object.List).Len() != 4 {
		t.Errorf("sorted sections = %s", v)
	}
}

func TestLiberalSemanticsOption(t *testing.T) {
	e := articleEngine(t)
	// Under the restricted semantics, a path variable crosses each class
	// once; the article fixture has no cycles, so liberal only adds the
	// paths that revisit a class through the reflabel/label back pointers
	// (none here), and both agree.
	restricted, err := e.Query(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	e.Env.Semantics = path.Liberal
	liberal, err := e.Query(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	e.Env.Semantics = path.Restricted
	rs := restricted.(*object.Set)
	ls := liberal.(*object.Set)
	if !rs.SubsetOf(ls) {
		t.Error("restricted results must be a subset of liberal results")
	}
}

func TestTypecheckCollectionRules(t *testing.T) {
	e := articleEngine(t)
	// §4.2 rule 2 through the surface language: unions of section values
	// join; mixing them with a non-union collection does not.
	ok := []string{
		`list(1, 2, 3)`,
		`set("a", "b")`,
		`list(1, 2.5)`, // int ⊔ float = float
		`select s from a in Articles, s in a.sections`,
		`tuple(a: 1, b: "x")`,
		`set(my_article, my_old_article)`, // two Articles join
	}
	for _, q := range ok {
		if _, err := e.Query(q); err != nil {
			t.Errorf("%q must typecheck: %v", q, err)
		}
	}
	bad := []string{
		`set(1, "x")`,
		`list(my_article, 3)`,
		`set(set(1), list(2))`,
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q must be rejected", q)
		}
	}
}

func TestTypecheckContainsOperands(t *testing.T) {
	e := articleEngine(t)
	// Strings, objects and dynamic values are searchable.
	for _, q := range []string{
		`select a from a in Articles where a.status contains "final"`,
		`select a from a in Articles where a contains "SGML"`,
		`select v from my_article PATH_p.ATT_a(v) where v contains "x"`,
	} {
		if _, err := e.Query(q); err != nil {
			t.Errorf("%q must typecheck: %v", q, err)
		}
	}
	// A list of sections has no text.
	if _, err := e.Query(`select a from a in Articles where a.sections contains "x"`); err == nil {
		t.Error("contains over list(Section) must be rejected")
	}
	// Comparisons with no common supertype.
	if _, err := e.Query(`select a from a in Articles where a.status < 3`); err == nil {
		t.Error("string < int must be rejected")
	}
}

func TestQueryOverUnionRoot(t *testing.T) {
	// A root whose type is a union directly (not through a class).
	e := lettersEngine(t)
	got, err := e.Query(`select p from l in Letters, l.preamble(p)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*object.Set).Len() != 3 {
		t.Errorf("preambles = %s", got)
	}
	// The marker is visible to ATT variables but skipped by names.
	rows, err := e.Rows(`select ATT_a from l in Letters, l.preamble->.ATT_a(x)`)
	if err != nil {
		t.Fatal(err)
	}
	// The PATH_/ATT_ prefixes are sort notation: the variable itself is
	// named "a".
	markers := map[string]bool{}
	for _, b := range rows.Bindings("a") {
		markers[b.Attr] = true
	}
	if !markers["a1"] || !markers["a2"] {
		t.Errorf("markers = %v", markers)
	}
}

func TestEngineValueErrors(t *testing.T) {
	e := articleEngine(t)
	for _, q := range []string{
		`1 +`,            // parse error
		`length(PATH_p)`, // path var out of scope
		`name(ATT_a)`,    // attr var out of scope
		`select PATH_q from my_article PATH_p.title(t)`, // projecting an undeclared var
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q must fail", q)
		}
	}
}

func TestNestedSelectInWhere(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		// Articles whose section count matches another computed set.
		got, err := e.Query(`
select a from a in Articles
where count(a.sections) in set(2)`)
		if err != nil {
			t.Fatal(err)
		}
		if got.(*object.Set).Len() != 2 {
			t.Errorf("nested = %s", got)
		}
	})
}

func TestTupleProjectionAndLiterals(t *testing.T) {
	e := articleEngine(t)
	v, err := e.Query(`tuple(n: 1, f: 2.5, s: "x", b: true, z: nil)`)
	if err != nil {
		t.Fatal(err)
	}
	tup := v.(*object.Tuple)
	if tup.Len() != 5 {
		t.Errorf("tuple = %s", tup)
	}
	if z, _ := tup.Get("z"); !object.IsNil(z) {
		t.Error("nil literal")
	}
	if b, _ := tup.Get("b"); !object.Equal(b, object.Bool(true)) {
		t.Error("bool literal")
	}
	// list/set constructors in queries.
	v, err = e.Query(`list("a", "b")[1]`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.String_("b")) {
		t.Errorf("list index = %s", v)
	}
}

func TestExplicitDerefInQuery(t *testing.T) {
	e := articleEngine(t)
	// Explicit -> works alongside implicit dereferencing.
	v1, err := e.Query(`my_article->.title->.content`)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.Query(`my_article.title.content`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v1, v2) {
		t.Errorf("explicit vs implicit deref: %s vs %s", v1, v2)
	}
	if !strings.Contains(v1.String(), "Querying Documents") {
		t.Errorf("title content = %s", v1)
	}
}

func TestAttrVarBindingConsistency(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		// The same ATT variable used twice must take the same attribute in
		// both places: attributes of my_article whose value equals the
		// same attribute of my_old_article.
		rows, err := e.Rows(`
select ATT_a
from my_article.ATT_a(x), my_old_article.ATT_a(y)
where x = y`)
		if err != nil {
			t.Fatal(err)
		}
		// Only "status" differs... actually both status values differ
		// (draft vs final) and object-valued attributes differ; equal
		// attributes would be none. The point is consistency: no row may
		// pair different attributes.
		for _, b := range rows.Bindings("a") {
			if b.Sort != 2 { // SortAttr
				t.Errorf("binding sort = %v", b.Sort)
			}
		}
	})
}
