package text

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint serialization of an index. The WAL checkpointer persists the
// published (instance, index, schema) triple so recovery does not have to
// re-tokenize every document ever loaded; only the log tail behind the
// checkpoint is re-indexed on replay. The encoding is line-oriented and
// deterministic (words sorted, postings by ascending doc), in the same
// spirit as the store snapshot format.

const indexMagic = "sgmldb-textindex 1"

// Encode writes the index in the checkpoint format. The index must be
// quiescent (the checkpointer serializes a published, immutable version).
func (ix *Index) Encode(w io.Writer) error {
	ix.docMu.RLock()
	order := append([]DocID(nil), ix.order...)
	ix.docMu.RUnlock()
	if _, err := fmt.Fprintln(w, indexMagic); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "docs %d\n", len(order)); err != nil {
		return err
	}
	for _, d := range order {
		if _, err := fmt.Fprintf(w, "d %d\n", uint64(d)); err != nil {
			return err
		}
	}
	var words []string
	byWord := map[string][]posting{}
	for _, s := range ix.shards {
		s.mu.RLock()
		for word, ps := range s.vocab {
			words = append(words, word)
			byWord[word] = ps
		}
		s.mu.RUnlock()
	}
	sort.Strings(words)
	if _, err := fmt.Fprintf(w, "words %d\n", len(words)); err != nil {
		return err
	}
	var b strings.Builder
	for _, word := range words {
		ps := append([]posting(nil), byWord[word]...)
		sort.Slice(ps, func(i, j int) bool { return ps[i].doc < ps[j].doc })
		b.Reset()
		b.WriteString("w ")
		b.WriteString(strconv.Itoa(len(word)))
		b.WriteByte(':')
		b.WriteString(word)
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(len(ps)))
		for _, p := range ps {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(uint64(p.doc), 10))
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(len(p.positions)))
			for _, pos := range p.positions {
				b.WriteByte(' ')
				b.WriteString(strconv.Itoa(pos))
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

// DecodeIndex reads an index written by Encode. It reads exactly the
// encoded section, so the reader may carry further data (the checkpoint
// file embeds the index between other sections).
func DecodeIndex(r *bufio.Reader) (*Index, error) {
	line, err := readIndexLine(r)
	if err != nil {
		return nil, err
	}
	if line != indexMagic {
		return nil, fmt.Errorf("text: not an index section (got %q)", line)
	}
	ix := NewIndex()
	nDocs, err := countLine(r, "docs")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nDocs; i++ {
		line, err := readIndexLine(r)
		if err != nil {
			return nil, err
		}
		id, ok := strings.CutPrefix(line, "d ")
		if !ok {
			return nil, fmt.Errorf("text: bad doc line %q", line)
		}
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("text: bad doc id %q", id)
		}
		d := DocID(n)
		if ix.docs[d] {
			return nil, fmt.Errorf("text: duplicate doc %d", d)
		}
		ix.docs[d] = true
		ix.order = append(ix.order, d)
	}
	nWords, err := countLine(r, "words")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nWords; i++ {
		line, err := readIndexLine(r)
		if err != nil {
			return nil, err
		}
		if err := ix.decodeWordLine(line); err != nil {
			return nil, err
		}
	}
	line, err = readIndexLine(r)
	if err != nil {
		return nil, err
	}
	if line != "end" {
		return nil, fmt.Errorf("text: index section missing end (got %q)", line)
	}
	return ix, nil
}

// decodeWordLine parses one "w <len>:<word> <k> <doc> <npos> <pos...>…"
// line into the index under construction.
func (ix *Index) decodeWordLine(line string) error {
	rest, ok := strings.CutPrefix(line, "w ")
	if !ok {
		return fmt.Errorf("text: bad word line %q", line)
	}
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return fmt.Errorf("text: bad word line %q", line)
	}
	wlen, err := strconv.Atoi(rest[:colon])
	if err != nil || wlen < 0 || colon+1+wlen > len(rest) {
		return fmt.Errorf("text: bad word length in %q", line)
	}
	word := rest[colon+1 : colon+1+wlen]
	fields := strings.Fields(rest[colon+1+wlen:])
	if len(fields) < 1 {
		return fmt.Errorf("text: word line %q missing posting count", line)
	}
	k, err := strconv.Atoi(fields[0])
	if err != nil || k < 0 {
		return fmt.Errorf("text: bad posting count in %q", line)
	}
	fields = fields[1:]
	ps := make([]posting, 0, k)
	for j := 0; j < k; j++ {
		if len(fields) < 2 {
			return fmt.Errorf("text: truncated posting in %q", line)
		}
		docN, err1 := strconv.ParseUint(fields[0], 10, 64)
		npos, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || npos < 0 || len(fields) < 2+npos {
			return fmt.Errorf("text: bad posting in %q", line)
		}
		positions := make([]int, npos)
		for p := 0; p < npos; p++ {
			positions[p], err = strconv.Atoi(fields[2+p])
			if err != nil {
				return fmt.Errorf("text: bad position in %q", line)
			}
		}
		fields = fields[2+npos:]
		doc := DocID(docN)
		if !ix.docs[doc] {
			return fmt.Errorf("text: posting for undeclared doc %d", doc)
		}
		ps = append(ps, posting{doc: doc, positions: positions})
		ix.docWords[doc] = append(ix.docWords[doc], word)
	}
	if len(fields) != 0 {
		return fmt.Errorf("text: trailing data on word line %q", line)
	}
	s := ix.shardOf(word)
	if _, dup := s.vocab[word]; dup {
		return fmt.Errorf("text: duplicate word %q", word)
	}
	s.vocab[word] = ps
	return nil
}

func countLine(r *bufio.Reader, verb string) (int, error) {
	line, err := readIndexLine(r)
	if err != nil {
		return 0, err
	}
	rest, ok := strings.CutPrefix(line, verb+" ")
	if !ok {
		return 0, fmt.Errorf("text: expected %q line, got %q", verb, line)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("text: bad %s count %q", verb, rest)
	}
	return n, nil
}

func readIndexLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err == io.EOF && line != "" {
		return strings.TrimRight(line, "\n"), nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\n"), nil
}
