# Development targets. `make ci` is the extended verify recorded in
# ROADMAP.md: vet + build + the full test suite under the race detector +
# a smoke run of every benchmark.

GO ?= go

.PHONY: all build test race bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the experiment
# harness without paying for full measurements.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run='^$$' -bench=. -benchtime=1x .
