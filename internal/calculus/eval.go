package calculus

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/object"
	"sgmldb/internal/path"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// fpEval lets chaos tests fail (or panic) a naive-calculus evaluation at
// entry: the injection site for "an evaluator blew up mid-query" on the
// non-algebra path.
var fpEval = faultpoint.New("calculus/eval")

// Binding is the value of one variable in a valuation: a data value, a
// concrete path or an attribute name, matching the variable's sort.
type Binding struct {
	Sort Sort
	Data object.Value
	Path path.Path
	Attr string
}

// DataBinding, PathBinding and AttrBinding build bindings of each sort.
func DataBinding(v object.Value) Binding { return Binding{Sort: SortData, Data: v} }

// PathBinding builds a path-sorted binding.
func PathBinding(p path.Path) Binding { return Binding{Sort: SortPath, Path: p} }

// AttrBinding builds an attribute-sorted binding.
func AttrBinding(a string) Binding { return Binding{Sort: SortAttr, Attr: a} }

// Value encodes the binding as a first-class data value (paths as step
// lists, attributes as their name strings).
func (b Binding) Value() object.Value {
	switch b.Sort {
	case SortPath:
		return b.Path.Value()
	case SortAttr:
		return object.String_(b.Attr)
	default:
		if b.Data == nil {
			return object.Nil{}
		}
		return b.Data
	}
}

// String renders the binding.
func (b Binding) String() string {
	switch b.Sort {
	case SortPath:
		return b.Path.String()
	case SortAttr:
		return b.Attr
	default:
		if b.Data == nil {
			return "nil"
		}
		return b.Data.String()
	}
}

func (b Binding) equal(c Binding) bool {
	if b.Sort != c.Sort {
		return false
	}
	switch b.Sort {
	case SortPath:
		return b.Path.Equal(c.Path)
	case SortAttr:
		return b.Attr == c.Attr
	default:
		return object.Equal(b.Value(), c.Value())
	}
}

// Valuation maps variable names to bindings. Valuations are persistent:
// extend copies.
type Valuation map[string]Binding

func (v Valuation) extend(name string, b Binding) Valuation {
	out := make(Valuation, len(v)+1)
	for k, val := range v {
		out[k] = val
	}
	out[name] = b
	return out
}

func (v Valuation) without(names []VarDecl) Valuation {
	out := make(Valuation, len(v))
	for k, val := range v {
		out[k] = val
	}
	for _, n := range names {
		delete(out, n.Name)
	}
	return out
}

func (v Valuation) key() string {
	names := make([]string, 0, len(v))
	for k := range v {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(object.Key(v[n].Value()))
		b.WriteByte(';')
	}
	return b.String()
}

// Func is an interpreted function body.
type Func func(args []Binding) (Binding, error)

// PredFunc is an interpreted predicate body.
type PredFunc func(args []Binding) (bool, error)

// Env is an evaluation environment: the instance, the path-variable
// semantics, and the interpreted functions and predicates.
//
// Concurrency: an Env is safe for concurrent evaluations as long as its
// fields and the underlying instance are not mutated concurrently (the
// single-writer/multi-reader discipline enforced by the sgmldb facade).
// Use WithContext to derive per-evaluation copies carrying cancellation.
type Env struct {
	Inst      *store.Instance
	Semantics path.Semantics
	// MaxPathLen optionally bounds enumerated path length.
	MaxPathLen int
	// TextOf maps a complex value to its text for the contains predicate
	// over logical objects (Section 4.2's text operator); when nil, only
	// string values can be searched. It receives the instance the
	// evaluation is pinned to, so an environment copied onto a snapshot
	// (WithInstance) extracts text from that snapshot, not from whatever
	// instance was current when the environment was wired.
	TextOf func(*store.Instance, object.Value) string
	// Funcs and Preds extend the built-in interpreted functions and
	// predicates.
	Funcs map[string]Func
	Preds map[string]PredFunc

	// ctx is the per-evaluation cancellation context, set by WithContext
	// on a copy of the shared environment (nil means Background).
	ctx context.Context
	// meter is the per-evaluation cost meter, set by WithMeter on a copy
	// of the shared environment (nil means unlimited). The strided polls
	// charge it alongside the cancellation checks.
	meter *Meter
}

// NewEnv builds an environment over an instance with the restricted path
// semantics.
func NewEnv(inst *store.Instance) *Env {
	return &Env{Inst: inst, Funcs: map[string]Func{}, Preds: map[string]PredFunc{}}
}

// Result is the (set) result of a query: one row per satisfying valuation
// of the head variables.
type Result struct {
	Head []VarDecl
	Rows []Valuation
}

// ToSet encodes the result as a first-class set value: a set of the head
// bindings' values for a single-variable head, a set of tuples (one
// attribute per head variable) otherwise.
func (r *Result) ToSet() *object.Set {
	vals := make([]object.Value, 0, len(r.Rows))
	//lint:allow ctxpoll Result methods materialise an already-evaluated result and have no context
	for _, row := range r.Rows {
		if len(r.Head) == 1 {
			vals = append(vals, row[r.Head[0].Name].Value())
			continue
		}
		fields := make([]object.Field, len(r.Head))
		for i, h := range r.Head {
			fields[i] = object.Field{Name: h.Name, Value: row[h.Name].Value()}
		}
		vals = append(vals, object.NewTuple(fields...))
	}
	return object.NewSet(vals...)
}

// Bindings returns the column of one head variable.
func (r *Result) Bindings(name string) []Binding {
	out := make([]Binding, 0, len(r.Rows))
	//lint:allow ctxpoll Result methods materialise an already-evaluated result and have no context
	for _, row := range r.Rows {
		out = append(out, row[name])
	}
	return out
}

// Len reports the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// EvalContext evaluates a query under a cancellation context: it is
// Eval over a WithContext copy of the environment.
func (e *Env) EvalContext(ctx context.Context, q *Query) (*Result, error) {
	return e.WithContext(ctx).Eval(q)
}

// Eval evaluates a query after checking its safety.
func (e *Env) Eval(q *Query) (*Result, error) {
	if err := fpEval.Hit(); err != nil {
		return nil, err
	}
	if err := CheckQuery(q); err != nil {
		return nil, err
	}
	vals, err := e.evalFormula(q.Body, []Valuation{{}})
	if err != nil {
		return nil, err
	}
	res := &Result{Head: q.Head}
	seen := map[string]bool{}
	for i, v := range vals {
		if err := e.pollCtx(i); err != nil {
			return nil, err
		}
		row := make(Valuation, len(q.Head))
		for _, h := range q.Head {
			b, ok := v[h.Name]
			if !ok {
				return nil, fmt.Errorf("calculus: head variable %s unbound in a result", h.Name)
			}
			row[h.Name] = b
		}
		k := row.key()
		if !seen[k] {
			seen[k] = true
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// evalFormula extends each input valuation with all satisfying bindings.
func (e *Env) evalFormula(f Formula, in []Valuation) ([]Valuation, error) {
	if len(in) == 0 {
		return nil, nil
	}
	if err := e.checkCtx(); err != nil {
		return nil, err
	}
	switch x := f.(type) {
	case TrueF:
		return in, nil
	case And:
		bound := varSet{}
		for v := range in[0] {
			bound[v] = true
		}
		order, err := orderConjuncts(conjuncts(f), bound)
		if err != nil {
			return nil, err
		}
		cur := in
		for _, c := range order {
			cur, err = e.evalFormula(c, cur)
			if err != nil {
				return nil, err
			}
			if len(cur) == 0 {
				return nil, nil
			}
		}
		return cur, nil
	case Or:
		l, err := e.evalFormula(x.L, in)
		if err != nil {
			return nil, err
		}
		r, err := e.evalFormula(x.R, in)
		if err != nil {
			return nil, err
		}
		out := append(l, r...)
		return e.dedupValuations(out)
	case Not:
		var out []Valuation
		for i, v := range in {
			if err := e.pollCtx(i); err != nil {
				return nil, err
			}
			sub, err := e.evalFormula(x.F, []Valuation{v})
			if err != nil {
				return nil, err
			}
			if len(sub) == 0 {
				out = append(out, v)
			}
		}
		return out, nil
	case Exists:
		sub, err := e.evalFormula(x.Body, in)
		if err != nil {
			return nil, err
		}
		var out []Valuation
		for i, v := range sub {
			if err := e.pollCtx(i); err != nil {
				return nil, err
			}
			out = append(out, v.without(x.Vars))
		}
		return e.dedupValuations(out)
	case Forall:
		var out []Valuation
		for i, v := range in {
			if err := e.pollCtx(i); err != nil {
				return nil, err
			}
			rng, err := e.evalFormula(x.Range, []Valuation{v})
			if err != nil {
				return nil, err
			}
			ok := true
			for j, rv := range rng {
				if err := e.pollCtx(j); err != nil {
					return nil, err
				}
				then, err := e.evalFormula(x.Then, []Valuation{rv})
				if err != nil {
					return nil, err
				}
				if len(then) == 0 {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, v)
			}
		}
		return out, nil
	case Eq:
		return e.evalEq(x, in)
	case In:
		return e.evalIn(x, in)
	case Subset:
		return e.filter(in, func(v Valuation) (bool, error) {
			l, err := e.evalDataTerm(x.L, v)
			if err != nil {
				return false, err
			}
			r, err := e.evalDataTerm(x.R, v)
			if err != nil {
				return false, err
			}
			ls, ok1 := l.(*object.Set)
			rs, ok2 := r.(*object.Set)
			if !ok1 || !ok2 {
				return false, nil // mismatched atoms are false (Section 5.3)
			}
			return ls.SubsetOf(rs), nil
		})
	case Cmp:
		return e.filter(in, func(v Valuation) (bool, error) {
			l, err := e.evalDataTerm(x.L, v)
			if err != nil {
				return false, err
			}
			r, err := e.evalDataTerm(x.R, v)
			if err != nil {
				return false, err
			}
			return compareValues(x.Op, l, r)
		})
	case Contains:
		return e.filter(in, func(v Valuation) (bool, error) {
			val, err := e.evalDataTerm(x.T, v)
			if err != nil {
				return false, err
			}
			txt, ok := e.textOf(val)
			if !ok {
				return false, nil
			}
			return text.Contains(txt, x.E), nil
		})
	case Pred:
		p, ok := e.Preds[x.Name]
		if !ok {
			return nil, fmt.Errorf("calculus: unknown interpreted predicate %q", x.Name)
		}
		return e.filter(in, func(v Valuation) (bool, error) {
			args := make([]Binding, len(x.Args))
			for i, a := range x.Args {
				b, err := e.evalTerm(a, v)
				if err != nil {
					return false, err
				}
				args[i] = b
			}
			return p(args)
		})
	case PathAtom:
		var out []Valuation
		for i, v := range in {
			if err := e.pollCtx(i); err != nil {
				return nil, err
			}
			base, err := e.evalDataTerm(x.Base, v)
			if errors.Is(err, errNoSuchPath) {
				continue
			}
			if err != nil {
				return nil, err
			}
			matched, err := e.matchPath(base, x.Path.Elems, v)
			if err != nil {
				return nil, err
			}
			out = append(out, matched...)
		}
		return e.dedupValuations(out)
	default:
		return nil, fmt.Errorf("calculus: cannot evaluate %T", f)
	}
}

func (e *Env) filter(in []Valuation, pred func(Valuation) (bool, error)) ([]Valuation, error) {
	var out []Valuation
	for i, v := range in {
		if err := e.pollCtx(i); err != nil {
			return nil, err
		}
		ok, err := pred(v)
		if errors.Is(err, errNoSuchPath) {
			continue // the atom is false on this valuation (Section 5.3)
		}
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, v)
		}
	}
	return out, nil
}

func (e *Env) evalEq(x Eq, in []Valuation) ([]Valuation, error) {
	var out []Valuation
	for i, v := range in {
		if err := e.pollCtx(i); err != nil {
			return nil, err
		}
		lv, lok := x.L.(Var)
		rv, rok := x.R.(Var)
		_, lBound := v[lvName(lv, lok)]
		_, rBound := v[lvName(rv, rok)]
		switch {
		case lok && !lBound && (!rok || rBound):
			r, err := e.evalDataTerm(x.R, v)
			if errors.Is(err, errNoSuchPath) {
				continue
			}
			if err != nil {
				return nil, err
			}
			out = append(out, v.extend(lv.Name, DataBinding(r)))
		case rok && !rBound:
			l, err := e.evalDataTerm(x.L, v)
			if errors.Is(err, errNoSuchPath) {
				continue
			}
			if err != nil {
				return nil, err
			}
			out = append(out, v.extend(rv.Name, DataBinding(l)))
		default:
			l, err := e.evalDataTerm(x.L, v)
			if errors.Is(err, errNoSuchPath) {
				continue
			}
			if err != nil {
				return nil, err
			}
			r, err := e.evalDataTerm(x.R, v)
			if errors.Is(err, errNoSuchPath) {
				continue
			}
			if err != nil {
				return nil, err
			}
			if object.Equiv(l, r) {
				out = append(out, v)
			}
		}
	}
	return out, nil
}

func lvName(v Var, ok bool) string {
	if !ok {
		return "\x00not-a-var"
	}
	return v.Name
}

func (e *Env) evalIn(x In, in []Valuation) ([]Valuation, error) {
	var out []Valuation
	for i, v := range in {
		if err := e.pollCtx(i); err != nil {
			return nil, err
		}
		r, err := e.evalDataTerm(x.R, v)
		if errors.Is(err, errNoSuchPath) {
			continue
		}
		if err != nil {
			return nil, err
		}
		var members []object.Value
		switch coll := r.(type) {
		case *object.Set:
			members = coll.Elems()
		case *object.List:
			members = coll.Elems()
		case *object.Tuple:
			members = object.HeterogeneousList(coll).Elems()
		default:
			continue // mismatched atom is false
		}
		if lv, ok := x.L.(Var); ok {
			if _, bound := v[lv.Name]; !bound {
				// The unbound-variable expansion is where cross products
				// materialise in the naive evaluator: charge the produced
				// valuations up front so a runaway join trips its budget
				// at the point of allocation, not after.
				if err := e.meter.Charge(int64(len(members)), int64(len(members))*estimateBytes(v)); err != nil {
					return nil, err
				}
				for _, m := range members {
					out = append(out, v.extend(lv.Name, DataBinding(m)))
				}
				continue
			}
		}
		l, err := e.evalDataTerm(x.L, v)
		if errors.Is(err, errNoSuchPath) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			if object.Equiv(l, m) {
				out = append(out, v)
				break
			}
		}
	}
	return out, nil
}

// textOf extracts searchable text from a value.
func (e *Env) textOf(v object.Value) (string, bool) {
	if s, ok := v.(object.String_); ok {
		return string(s), true
	}
	if e.TextOf != nil {
		return e.TextOf(e.Inst, v), true
	}
	return "", false
}

// dedupValuations removes duplicate valuations, polling cancellation as
// it scans (result sets can be large after a union).
func (e *Env) dedupValuations(in []Valuation) ([]Valuation, error) {
	seen := map[string]bool{}
	var out []Valuation
	for i, v := range in {
		if err := e.pollCtx(i); err != nil {
			return nil, err
		}
		k := v.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// compareValues implements the interpreted comparisons over integers,
// floats and strings; incomparable operands make the atom false.
func compareValues(op CmpOp, l, r object.Value) (bool, error) {
	if op == Ne {
		return !object.Equiv(l, r), nil
	}
	var c int
	switch a := l.(type) {
	case object.Int:
		switch b := r.(type) {
		case object.Int:
			c = compareInt(int64(a), int64(b))
		case object.Float:
			c = compareFloat(float64(a), float64(b))
		default:
			return false, nil
		}
	case object.Float:
		switch b := r.(type) {
		case object.Int:
			c = compareFloat(float64(a), float64(b))
		case object.Float:
			c = compareFloat(float64(a), float64(b))
		default:
			return false, nil
		}
	case object.String_:
		b, ok := r.(object.String_)
		if !ok {
			return false, nil
		}
		c = strings.Compare(string(a), string(b))
	default:
		return false, nil
	}
	switch op {
	case Lt:
		return c < 0, nil
	case Le:
		return c <= 0, nil
	case Gt:
		return c > 0, nil
	case Ge:
		return c >= 0, nil
	}
	return false, nil
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
