package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedHitIsNil(t *testing.T) {
	p := New("test/disarmed")
	for i := 0; i < 3; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed Hit: %v", err)
		}
	}
}

func TestArmDisarmRoundTrip(t *testing.T) {
	p := New("test/arm")
	boom := errors.New("boom")
	disarm := Arm("test/arm", Error(boom))
	if err := p.Hit(); !errors.Is(err, boom) {
		t.Fatalf("armed Hit = %v, want boom", err)
	}
	disarm()
	if err := p.Hit(); err != nil {
		t.Fatalf("Hit after disarm: %v", err)
	}
}

func TestAfterAndOnce(t *testing.T) {
	boom := errors.New("boom")
	fire := After(2, Error(boom))
	for i := 0; i < 2; i++ {
		if err := fire(); err != nil {
			t.Fatalf("After hit %d: %v", i, err)
		}
	}
	if err := fire(); !errors.Is(err, boom) {
		t.Fatalf("After hit 3 = %v, want boom", err)
	}

	once := Once(Error(boom))
	if err := once(); !errors.Is(err, boom) {
		t.Fatalf("Once first hit = %v, want boom", err)
	}
	if err := once(); err != nil {
		t.Fatalf("Once second hit = %v, want nil", err)
	}
}

func TestPanicInjector(t *testing.T) {
	p := New("test/panic")
	defer Arm("test/panic", Panic("injected"))()
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recover = %v, want injected", r)
		}
	}()
	_ = p.Hit()
	t.Fatal("Hit with panic injector returned")
}

func TestNamesEnumerates(t *testing.T) {
	New("test/names")
	found := false
	for _, n := range Names() {
		if n == "test/names" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing test/names", Names())
	}
}

func TestArmUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Arm on undeclared name did not panic")
		}
	}()
	Arm("test/no-such-point", Error(errors.New("x")))
}

func TestDuplicateNamePanics(t *testing.T) {
	New("test/dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate New did not panic")
		}
	}()
	New("test/dup")
}

// TestConcurrentHitAndArm races hits against arm/disarm cycles; run
// under -race this validates the locking.
func TestConcurrentHitAndArm(t *testing.T) {
	p := New("test/race")
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := p.Hit(); err != nil && !errors.Is(err, boom) {
					t.Errorf("Hit: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		disarm := Arm("test/race", Error(boom))
		disarm()
	}
	wg.Wait()
	DisarmAll()
}
