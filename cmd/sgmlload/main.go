// Command sgmlload parses SGML documents against a DTD, loads them into a
// database (Section 3's document→instance mapping) and writes a snapshot.
//
// Usage:
//
//	sgmlload -dtd article.dtd -o articles.snap doc1.sgml doc2.sgml …
//
// Each document may additionally be named with -name for use as a root of
// persistence in queries (applied to the first document).
package main

import (
	"flag"
	"fmt"
	"os"

	"sgmldb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgmlload:", err)
		os.Exit(1)
	}
}

func run() error {
	dtdPath := flag.String("dtd", "", "DTD file (required)")
	out := flag.String("o", "db.snap", "snapshot output file")
	name := flag.String("name", "", "declare the first document under this persistence root")
	verbose := flag.Bool("v", false, "print per-document statistics")
	flag.Parse()
	if *dtdPath == "" || flag.NArg() == 0 {
		return fmt.Errorf("usage: sgmlload -dtd file.dtd [-o out.snap] [-name root] doc.sgml…")
	}
	db, err := sgmldb.OpenDTDFile(*dtdPath)
	if err != nil {
		return err
	}
	for i, path := range flag.Args() {
		oid, err := db.LoadDocumentFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if i == 0 && *name != "" {
			if err := db.Name(*name, oid); err != nil {
				return err
			}
		}
		if *verbose {
			fmt.Printf("loaded %s as %s\n", path, oid)
		}
	}
	if errs := db.Check(); len(errs) != 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "integrity:", e)
		}
		return fmt.Errorf("%d integrity violations", len(errs))
	}
	st := db.Stats()
	fmt.Printf("loaded %d documents: %d objects, %d value bytes\n",
		flag.NArg(), st.Objects, st.ValueBytes)
	return db.Save(*out)
}
