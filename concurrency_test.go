package sgmldb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sgmldb/internal/object"
)

// TestConcurrentQueryAndLoad exercises the single-writer/multi-reader
// contract: many goroutines query (plain, context-carrying and prepared)
// while one goroutine keeps loading documents and naming roots. Run under
// -race this validates the whole locking story, facade to algebra.
func TestConcurrentQueryAndLoad(t *testing.T) {
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDTD(string(dtd), WithAlgebra(true))
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocument(string(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("my_article", oid); err != nil {
		t.Fatal(err)
	}
	const q = `select t from my_article PATH_p.title(t)`
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}

	const readers, rounds = 8, 20
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < rounds; i++ {
				var got object.Value
				var err error
				switch i % 3 {
				case 0:
					got, err = db.Query(q)
				case 1:
					got, err = db.QueryContext(ctx, q)
				default:
					got, err = pq.Run(ctx)
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d round %d: %w", r, i, err)
					return
				}
				if got.(*object.Set).Len() < 3 {
					errc <- fmt.Errorf("reader %d round %d: titles = %s", r, i, got)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			oid, err := db.LoadDocument(string(doc))
			if err != nil {
				errc <- fmt.Errorf("writer round %d: %w", i, err)
				return
			}
			if err := db.Name(fmt.Sprintf("article_%d", i), oid); err != nil {
				errc <- fmt.Errorf("writer naming round %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestQueryContextCancel asserts that cancellation surfaces as
// context.Canceled from every context-aware entry point.
func TestQueryContextCancel(t *testing.T) {
	db := openArticleDB(t)
	const q = `select t from my_article PATH_p.title(t)`
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryContext on cancelled ctx: err = %v", err)
	}
	pq, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Prepared.Run on cancelled ctx: err = %v", err)
	}
	if _, err := pq.Rows(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Prepared.Rows on cancelled ctx: err = %v", err)
	}
	// Algebra mode observes cancellation inside plan scans too.
	db.UseAlgebra(true)
	if _, err := db.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryContext (algebra) on cancelled ctx: err = %v", err)
	}
	// An un-cancelled context must not interfere.
	if _, err := db.QueryContext(context.Background(), q); err != nil {
		t.Errorf("QueryContext on live ctx: err = %v", err)
	}
}

// TestPrepare checks that a prepared query agrees with ad-hoc Query, both
// repeatedly and across a schema change (a document load adds persistence
// roots, which forces a transparent recompile).
func TestPrepare(t *testing.T) {
	for _, algebra := range []bool{false, true} {
		t.Run(fmt.Sprintf("algebra=%v", algebra), func(t *testing.T) {
			db := openArticleDB(t)
			db.UseAlgebra(algebra)
			const q = `select t from my_article PATH_p.title(t)`
			pq, err := db.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			if pq.Source() != q {
				t.Errorf("Source = %q", pq.Source())
			}
			want, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				got, err := pq.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !object.Equal(got, want) {
					t.Fatalf("run %d: prepared = %s, want %s", i, got, want)
				}
			}
			// Schema change between runs: load and name another document.
			oid, err := db.LoadDocumentFile("testdata/article.sgml")
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Name("second_article", oid); err != nil {
				t.Fatal(err)
			}
			got, err := pq.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !object.Equal(got, want) {
				t.Fatalf("after load: prepared = %s, want %s", got, want)
			}
			// Bare expressions prepare too (and report no row form).
			bare, err := db.Prepare(`my_article.title`)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bare.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if _, err := bare.Rows(context.Background()); err == nil {
				t.Error("bare expression must have no row form")
			}
		})
	}
}

// TestOpenOptions checks the functional options and that the deprecated
// setter still works.
func TestOpenOptions(t *testing.T) {
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDTD(string(dtd),
		WithAlgebra(true), WithMaxBranches(512), WithWorkers(2), WithSkipTypecheck(true))
	if err != nil {
		t.Fatal(err)
	}
	if !db.Engine.UseAlgebra || db.Engine.MaxBranches != 512 ||
		db.Engine.Workers != 2 || !db.Engine.SkipTypecheck {
		t.Errorf("options not applied: %+v", db.Engine)
	}
	db.UseAlgebra(false)
	if db.Engine.UseAlgebra {
		t.Error("deprecated UseAlgebra setter must keep working")
	}
}

// TestSentinelErrors checks that the facade's failure modes surface the
// typed sentinel errors.
func TestSentinelErrors(t *testing.T) {
	db := openArticleDB(t)
	if err := db.Name("ghost", object.OID(99999)); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Name unknown oid: err = %v", err)
	}
	path := filepath.Join(t.TempDir(), "articles.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.LoadDocument("<article></article>"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("LoadDocument on snapshot: err = %v", err)
	}
	if _, err := snap.Export(object.OID(1)); !errors.Is(err, ErrNoMapping) {
		t.Errorf("Export without mapping: err = %v", err)
	}
}

// TestSnapshotIndexesSingularRoots is the regression test for the index
// rebuild of OpenSnapshot: a document reachable only through a singular
// (single-oid) root used to be silently dropped from the full-text index.
func TestSnapshotIndexesSingularRoots(t *testing.T) {
	db := openArticleDB(t)
	// Leave my_article as the only reference to the document: empty the
	// plural Articles root that LoadDocument populated.
	if err := db.Instance().SetRoot("Articles", object.NewList()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "singular.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if docs := snap.Engine.Index.Docs(); len(docs) != 1 {
		t.Fatalf("snapshot index docs = %v, want the singular-root document", docs)
	}
	// The index serves as the contains access path for the document.
	got, err := snap.Query(`select a from a in Articles where a contains "SGML"`)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*object.Set).Len() != 0 {
		t.Errorf("Articles is empty, contains = %s", got)
	}
	root, ok := snap.Instance().Root("my_article")
	if !ok {
		t.Fatal("my_article root missing from snapshot")
	}
	if txt := snap.Text(root); txt == "" {
		t.Error("document text missing from snapshot")
	}
}

// TestWorkersDeterminism checks that parallel plan scans return the same
// answer as serial evaluation at every worker count.
func TestWorkersDeterminism(t *testing.T) {
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	var want object.Value
	for _, workers := range []int{1, 2, 8} {
		db, err := OpenDTD(string(dtd), WithAlgebra(true), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			oid, err := db.LoadDocument(string(doc))
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				if err := db.Name("my_article", oid); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := db.Query(`select t from a in Articles, a PATH_p.title(t)`)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !object.Equal(got, want) {
			t.Errorf("workers=%d: %s, want %s", workers, got, want)
		}
	}
}
