// Package publishorder is a sgmldbvet fixture: in functions annotated
// //sgmldbvet:commitpath, the WAL append must be checked and must
// precede the atomic snapshot publish.
package publishorder

import "sync/atomic"

type Record struct{ Kind int }

type Log struct{ appended int }

func (l *Log) Append(rec Record) error {
	l.appended++
	return nil
}

type State struct{ Epoch uint64 }

type Engine struct{ state atomic.Pointer[State] }

func (e *Engine) Publish(s *State) { e.state.Store(s) }

type DB struct {
	log *Log
	eng *Engine
}

// The idiomatic shape: init-checked append, then publish.
//
//sgmldbvet:commitpath
func (db *DB) commitGood(s *State) error {
	if err := db.log.Append(Record{Kind: 1}); err != nil {
		return err
	}
	db.eng.Publish(s)
	return nil
}

// The two-statement shape is equally handled.
//
//sgmldbvet:commitpath
func (db *DB) commitAssignShape(s *State) error {
	var err error
	err = db.log.Append(Record{Kind: 1})
	if err != nil {
		return err
	}
	db.eng.Publish(s)
	return nil
}

//sgmldbvet:commitpath
func (db *DB) commitReordered(s *State) error {
	db.eng.Publish(s) // want "publishes the snapshot before the WAL append"
	if err := db.log.Append(Record{Kind: 1}); err != nil {
		return err
	}
	return nil
}

//sgmldbvet:commitpath
func (db *DB) commitUnchecked(s *State) error {
	db.log.Append(Record{Kind: 1}) // want "does not check the WAL append error"
	db.eng.Publish(s)
	return nil
}

//sgmldbvet:commitpath
func (db *DB) commitPublishOnFailure(s *State) error {
	if err := db.log.Append(Record{Kind: 1}); err != nil {
		db.eng.Publish(s) // want "publishes the snapshot after a failed WAL append"
		return err
	}
	db.eng.Publish(s)
	return nil
}

// A raw epoch swap (Store on an atomic) counts as a publish too.
//
//sgmldbvet:commitpath
func (db *DB) commitRawStore(s *State) error {
	db.eng.state.Store(s) // want "publishes the snapshot before the WAL append"
	if err := db.log.Append(Record{Kind: 1}); err != nil {
		return err
	}
	return nil
}

// Unannotated functions are not policed: recovery replays publish
// without logging.
func (db *DB) replay(s *State) {
	db.eng.Publish(s)
}

//sgmldbvet:commitpath
func (db *DB) commitAllowed(s *State) error {
	//lint:allow publishorder fixture demonstrates a deliberate exception
	db.eng.Publish(s)
	if err := db.log.Append(Record{Kind: 1}); err != nil {
		return err
	}
	return nil
}
