package object

import (
	"fmt"
	"sort"
	"strings"
)

// TypeKind discriminates the concrete representation of a Type.
//
//sgmldbvet:closed
type TypeKind int

// The type kinds of types(C) (Section 5.1): atomic types, class names, any,
// list and set types, ordered tuple types and marked union types.
const (
	TypeInt TypeKind = iota
	TypeFloat
	TypeString
	TypeBool
	TypeAny
	TypeClass
	TypeList
	TypeSet
	TypeTuple
	TypeUnion
)

// Type is an element of types(C).
//
//sgmldbvet:closed
type Type interface {
	TypeKind() TypeKind
	// String renders the type in the paper's surface syntax.
	String() string
	// typeKey appends a canonical encoding used for type equality and
	// memoisation.
	typeKey(b *strings.Builder)
}

// AtomicType is one of the four atomic types.
type AtomicType struct{ K TypeKind }

// Atomic type singletons.
var (
	IntType    = AtomicType{TypeInt}
	FloatType  = AtomicType{TypeFloat}
	StringType = AtomicType{TypeString}
	BoolType   = AtomicType{TypeBool}
)

// TypeKind implements Type.
func (t AtomicType) TypeKind() TypeKind { return t.K }

func (t AtomicType) String() string {
	switch t.K {
	case TypeInt:
		return "integer"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBool:
		return "boolean"
	default:
		return fmt.Sprintf("atomic(%d)", int(t.K))
	}
}

func (t AtomicType) typeKey(b *strings.Builder) {
	b.WriteByte('A')
	b.WriteByte(byte('0' + int(t.K)))
}

// AnyType is the top of the class hierarchy: its domain is the set of all
// oids. Note that in the model, any is the top of the *class* lattice, not
// of the whole type lattice.
type AnyType struct{}

// Any is the any type singleton.
var Any = AnyType{}

// TypeKind implements Type.
func (AnyType) TypeKind() TypeKind         { return TypeAny }
func (AnyType) String() string             { return "any" }
func (AnyType) typeKey(b *strings.Builder) { b.WriteByte('*') }

// ClassType is a class name used as a type; its domain is π(c) ∪ {nil}.
type ClassType struct{ Name string }

// Class returns the class type with the given name.
func Class(name string) ClassType { return ClassType{Name: name} }

// TypeKind implements Type.
func (ClassType) TypeKind() TypeKind { return TypeClass }
func (t ClassType) String() string   { return t.Name }
func (t ClassType) typeKey(b *strings.Builder) {
	b.WriteByte('C')
	b.WriteString(t.Name)
	b.WriteByte(';')
}

// ListType is the list type [τ].
type ListType struct{ Elem Type }

// ListOf returns the list type with the given element type.
func ListOf(elem Type) ListType { return ListType{Elem: elem} }

// TypeKind implements Type.
func (ListType) TypeKind() TypeKind { return TypeList }
func (t ListType) String() string   { return "list(" + t.Elem.String() + ")" }
func (t ListType) typeKey(b *strings.Builder) {
	b.WriteByte('L')
	t.Elem.typeKey(b)
}

// SetType is the set type {τ}.
type SetType struct{ Elem Type }

// SetOf returns the set type with the given element type.
func SetOf(elem Type) SetType { return SetType{Elem: elem} }

// TypeKind implements Type.
func (SetType) TypeKind() TypeKind { return TypeSet }
func (t SetType) String() string   { return "set(" + t.Elem.String() + ")" }
func (t SetType) typeKey(b *strings.Builder) {
	b.WriteByte('S')
	t.Elem.typeKey(b)
}

// TField is one attribute of a tuple or union type.
type TField struct {
	Name string
	Type Type
}

// TupleType is the ordered tuple type [a₁:τ₁, …, aₙ:τₙ]. The order of the
// attributes is meaningful: it records the SGML aggregation order and
// supports viewing tuple values as heterogeneous lists (Section 4.4).
type TupleType struct {
	fields []TField
}

// TupleOf builds a tuple type. It panics on duplicate attribute names.
func TupleOf(fields ...TField) TupleType {
	seen := make(map[string]bool, len(fields))
	fs := make([]TField, len(fields))
	for i, f := range fields {
		if seen[f.Name] {
			//lint:allow panic programmer-error guard on a schema literal, caught at construction
			panic(fmt.Sprintf("object: duplicate tuple type attribute %q", f.Name))
		}
		seen[f.Name] = true
		fs[i] = f
	}
	return TupleType{fields: fs}
}

// TypeKind implements Type.
func (TupleType) TypeKind() TypeKind { return TypeTuple }

// Len reports the number of attributes.
func (t TupleType) Len() int { return len(t.fields) }

// At returns the i-th attribute.
func (t TupleType) At(i int) TField { return t.fields[i] }

// Get returns the type of the named attribute and whether it exists.
func (t TupleType) Get(name string) (Type, bool) {
	for _, f := range t.fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return nil, false
}

// Fields returns a copy of the attribute list.
func (t TupleType) Fields() []TField {
	fs := make([]TField, len(t.fields))
	copy(fs, t.fields)
	return fs
}

func (t TupleType) String() string {
	var b strings.Builder
	b.WriteString("tuple(")
	for i, f := range t.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (t TupleType) typeKey(b *strings.Builder) {
	b.WriteByte('T')
	for _, f := range t.fields {
		b.WriteString(f.Name)
		b.WriteByte(':')
		f.Type.typeKey(b)
	}
	b.WriteByte(';')
}

// UnionType is the marked union type (a₁:τ₁ + … + aₙ:τₙ). Alternatives are
// kept sorted by marker: unlike tuples, the order of union alternatives is
// not meaningful.
type UnionType struct {
	alts []TField // sorted by Name
}

// UnionOf builds a union type from the given alternatives. Alternatives
// with the same marker must have equal types; otherwise UnionOf panics
// (marker conflicts are rejected earlier by the typechecker's
// common-supertype computation).
func UnionOf(alts ...TField) UnionType {
	m := make(map[string]Type, len(alts))
	for _, a := range alts {
		if prev, ok := m[a.Name]; ok {
			if !TypeEqual(prev, a.Type) {
				//lint:allow panic programmer-error guard on a schema literal, caught at construction
				panic(fmt.Sprintf("object: conflicting union alternative %q: %s vs %s", a.Name, prev, a.Type))
			}
			continue
		}
		m[a.Name] = a.Type
	}
	out := make([]TField, 0, len(m))
	for name, ty := range m {
		out = append(out, TField{Name: name, Type: ty})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return UnionType{alts: out}
}

// TypeKind implements Type.
func (UnionType) TypeKind() TypeKind { return TypeUnion }

// Len reports the number of alternatives.
func (t UnionType) Len() int { return len(t.alts) }

// At returns the i-th alternative in marker order.
func (t UnionType) At(i int) TField { return t.alts[i] }

// Get returns the type of the named alternative and whether it exists.
func (t UnionType) Get(name string) (Type, bool) {
	for _, a := range t.alts {
		if a.Name == name {
			return a.Type, true
		}
	}
	return nil, false
}

// Alts returns a copy of the alternatives in marker order.
func (t UnionType) Alts() []TField {
	as := make([]TField, len(t.alts))
	copy(as, t.alts)
	return as
}

func (t UnionType) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range t.alts {
		if i > 0 {
			b.WriteString(" + ")
		}
		b.WriteString(a.Name)
		b.WriteString(": ")
		b.WriteString(a.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (t UnionType) typeKey(b *strings.Builder) {
	b.WriteByte('U')
	for _, a := range t.alts {
		b.WriteString(a.Name)
		b.WriteByte(':')
		a.Type.typeKey(b)
	}
	b.WriteByte(';')
}

// TypeKey returns a canonical encoding of τ: TypeKey(τ)==TypeKey(υ) iff
// TypeEqual(τ, υ).
func TypeKey(t Type) string {
	var b strings.Builder
	t.typeKey(&b)
	return b.String()
}

// TypeEqual reports structural type equality (union alternatives compared
// unordered, tuple attributes ordered).
func TypeEqual(t, u Type) bool {
	if t == nil || u == nil {
		return t == nil && u == nil
	}
	return TypeKey(t) == TypeKey(u)
}

// IsUnion reports whether τ is a marked union type (used by the §4.2 typing
// rule that forbids a common supertype between union and non-union types).
func IsUnion(t Type) bool {
	_, ok := t.(UnionType)
	return ok
}
