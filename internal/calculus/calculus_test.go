package calculus

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/path"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// knuthDB builds the Section 5 running example: a persistent root
// Knuth_Books holding a book with volumes and chapters.
func knuthDB(t *testing.T) *Env {
	t.Helper()
	s := store.NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Chapter", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "review", Type: object.SetOf(object.StringType)},
		object.TField{Name: "author", Type: object.StringType},
	)))
	must(s.AddClass("Volume", object.TupleOf(
		object.TField{Name: "name", Type: object.StringType},
		object.TField{Name: "chapters", Type: object.ListOf(object.Class("Chapter"))},
	)))
	must(s.AddClass("Book", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "volumes", Type: object.ListOf(object.Class("Volume"))},
		object.TField{Name: "status", Type: object.StringType},
	)))
	must(s.AddRoot("Knuth_Books", object.Class("Book")))
	must(s.Check())
	in := store.NewInstance(s)
	newObj := func(class string, v object.Value) object.OID {
		t.Helper()
		o, err := in.NewObject(class, v)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	ch := func(title, author string, reviews ...string) object.OID {
		rv := make([]object.Value, len(reviews))
		for i, r := range reviews {
			rv[i] = object.String_(r)
		}
		return newObj("Chapter", object.NewTuple(
			object.Field{Name: "title", Value: object.String_(title)},
			object.Field{Name: "review", Value: object.NewSet(rv...)},
			object.Field{Name: "author", Value: object.String_(author)},
		))
	}
	c1 := ch("Basic Concepts", "Knuth", "D. Scott")
	c2 := ch("Information Structures", "Knuth")
	c3 := ch("Random Numbers", "Jo", "D. Scott", "R. Floyd")
	c4 := ch("Arithmetic", "Knuth")
	v1 := newObj("Volume", object.NewTuple(
		object.Field{Name: "name", Value: object.String_("Fundamental Algorithms")},
		object.Field{Name: "chapters", Value: object.NewList(c1, c2)},
	))
	v2 := newObj("Volume", object.NewTuple(
		object.Field{Name: "name", Value: object.String_("Seminumerical Algorithms")},
		object.Field{Name: "chapters", Value: object.NewList(c3, c4)},
	))
	book := newObj("Book", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("TAOCP")},
		object.Field{Name: "volumes", Value: object.NewList(v1, v2)},
		object.Field{Name: "status", Value: object.String_("final")},
	))
	must(in.SetRoot("Knuth_Books", book))
	if errs := in.Check(); len(errs) != 0 {
		t.Fatalf("fixture invalid: %v", errs)
	}
	return NewEnv(in)
}

func evalQ(t *testing.T, e *Env, q *Query) *Result {
	t.Helper()
	r, err := e.Eval(q)
	if err != nil {
		t.Fatalf("eval %s: %v", q, err)
	}
	return r
}

func resultStrings(r *Result, v string) []string {
	var out []string
	for _, b := range r.Bindings(v) {
		out = append(out, b.String())
	}
	return out
}

func hasString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestC1AttributeOfJo reproduces "In which attribute can Jo be found?":
// {A | ∃P,X(⟨Knuth_Books P·A(X)⟩ ∧ X = "Jo")}.
func TestC1AttributeOfJo(t *testing.T) {
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "A", Sort: SortAttr}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}, {Name: "X", Sort: SortData}},
			Body: And{
				L: PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrVar{Name: "A"}}, ElemBind{X: "X"})},
				R: Eq{L: Var{Name: "X"}, R: Str("Jo")},
			},
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "A")
	if len(got) != 1 || got[0] != "author" {
		t.Errorf("attributes of Jo = %v, want [author]", got)
	}
}

// TestC2PathsToJo reproduces "Which paths lead to Jo?":
// {P | ∃X(⟨Knuth_Books P(X)⟩ ∧ X = "Jo")}.
func TestC2PathsToJo(t *testing.T) {
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "P", Sort: SortPath}},
		Body: Exists{
			Vars: []VarDecl{{Name: "X", Sort: SortData}},
			Body: And{
				L: PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemBind{X: "X"})},
				R: Eq{L: Var{Name: "X"}, R: Str("Jo")},
			},
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "P")
	if len(got) != 1 {
		t.Fatalf("paths to Jo = %v", got)
	}
	if got[0] != "->.volumes[1]->.chapters[0]->.author" {
		t.Errorf("path = %s", got[0])
	}
}

// TestC3NewPaths reproduces "What are the new paths in Doc?":
// {P | ⟨Doc P⟩ ∧ ¬⟨Old_Doc P⟩}.
func TestC3NewPaths(t *testing.T) {
	s := store.NewSchema()
	docType := object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "paras", Type: object.ListOf(object.StringType)},
	)
	if err := s.AddRoot("Doc", docType); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRoot("Old_Doc", docType); err != nil {
		t.Fatal(err)
	}
	in := store.NewInstance(s)
	_ = in.SetRoot("Doc", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("T")},
		object.Field{Name: "paras", Value: object.NewList(object.String_("p1"), object.String_("p2"))},
	))
	_ = in.SetRoot("Old_Doc", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("T")},
		object.Field{Name: "paras", Value: object.NewList(object.String_("p1"))},
	))
	e := NewEnv(in)
	q := &Query{
		Head: []VarDecl{{Name: "P", Sort: SortPath}},
		Body: And{
			L: PathAtom{Base: NameRef{Name: "Doc"}, Path: PVar("P")},
			R: Not{F: PathAtom{Base: NameRef{Name: "Old_Doc"}, Path: PVar("P")}},
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "P")
	if len(got) != 1 || got[0] != ".paras[1]" {
		t.Errorf("new paths = %v, want [.paras[1]]", got)
	}
}

// TestC4NewTitles reproduces "What are the new titles in Doc?".
func TestC4NewTitles(t *testing.T) {
	s := store.NewSchema()
	secType := object.TupleOf(object.TField{Name: "title", Type: object.StringType})
	docType := object.TupleOf(object.TField{Name: "sections", Type: object.ListOf(secType)})
	_ = s.AddRoot("Doc", docType)
	_ = s.AddRoot("Old_Doc", docType)
	in := store.NewInstance(s)
	mkDoc := func(titles ...string) object.Value {
		var secs []object.Value
		for _, ti := range titles {
			secs = append(secs, object.NewTuple(object.Field{Name: "title", Value: object.String_(ti)}))
		}
		return object.NewTuple(object.Field{Name: "sections", Value: object.NewList(secs...)})
	}
	_ = in.SetRoot("Doc", mkDoc("Intro", "Methods", "Conclusion"))
	_ = in.SetRoot("Old_Doc", mkDoc("Intro", "Methods"))
	e := NewEnv(in)
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: And{
			L: Exists{Vars: []VarDecl{{Name: "P", Sort: SortPath}},
				Body: PathAtom{Base: NameRef{Name: "Doc"},
					Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrName{Name: "title"}}, ElemBind{X: "X"})}},
			R: Not{F: Exists{Vars: []VarDecl{{Name: "Q", Sort: SortPath}},
				Body: PathAtom{Base: NameRef{Name: "Old_Doc"},
					Path: P(ElemVar{Name: "Q"}, ElemAttr{A: AttrName{Name: "title"}}, ElemBind{X: "X"})}}},
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "X")
	if len(got) != 1 || got[0] != `"Conclusion"` {
		t.Errorf("new titles = %v", got)
	}
}

// TestC5LengthRestriction reproduces {X | ∃P(⟨Knuth_Books P(X)·title⟩ ∧
// length(P) < 3)}: values with a title reachable by a short path.
func TestC5LengthRestriction(t *testing.T) {
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: And{
				L: PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemBind{X: "X"}, ElemAttr{A: AttrName{Name: "title"}})},
				R: Cmp{Op: Lt, L: FuncCall{Name: "length", Args: []Term{PVar("P")}}, R: Num(3)},
			},
		},
	}
	r := evalQ(t, e, q)
	// Only the book tuple itself has a .title within path length < 3
	// (the chapters are 5 steps away: ->.volumes[i]->.chapters[j]->).
	if r.Len() != 2 {
		// ε (the book oid is not a tuple; the title is reached after one
		// deref) — expect the dereferenced book tuple and nothing else;
		// the oid itself has no .title without a deref. Accept 1 or
		// diagnose.
		var all []string
		for _, row := range r.Rows {
			all = append(all, row["X"].String())
		}
		if r.Len() != 1 {
			t.Fatalf("short-path titled values = %v", all)
		}
	}
}

// TestC6NamePatternOnAttributes reproduces
// {X | ∃P,A(⟨Knuth_Books P·A(X)⟩ ∧ name(A) contains "(t|T)itle" ∧ length(P) < 3)}.
func TestC6NamePatternOnAttributes(t *testing.T) {
	e := knuthDB(t)
	pat, err := text.PatternExpr("(t|T)itle")
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}, {Name: "A", Sort: SortAttr}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrVar{Name: "A"}}, ElemBind{X: "X"})},
				Contains{T: FuncCall{Name: "name", Args: []Term{AttrVar{Name: "A"}}}, E: pat},
				Cmp{Op: Lt, L: FuncCall{Name: "length", Args: []Term{PVar("P")}}, R: Num(3)},
			),
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "X")
	if len(got) != 1 || got[0] != `"TAOCP"` {
		t.Errorf("short-path title attributes = %v", got)
	}
}

// TestC7SetToList reproduces the MyList example: a list of the b-strings
// occurring after an a-string, via a nested query and set_to_list.
func TestC7SetToList(t *testing.T) {
	s := store.NewSchema()
	elemT := object.UnionOf(
		object.TField{Name: "a", Type: object.StringType},
		object.TField{Name: "b", Type: object.StringType},
	)
	if err := s.AddRoot("MyList", object.ListOf(elemT)); err != nil {
		t.Fatal(err)
	}
	in := store.NewInstance(s)
	_ = in.SetRoot("MyList", object.NewList(
		object.NewUnion("b", object.String_("early-b")),
		object.NewUnion("a", object.String_("a1")),
		object.NewUnion("b", object.String_("late-b1")),
		object.NewUnion("b", object.String_("late-b2")),
	))
	e := NewEnv(in)
	inner := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "I", Sort: SortData}, {Name: "J", Sort: SortData}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "MyList"},
					Path: P(ElemIndex{I: Var{Name: "I"}}, ElemAttr{A: AttrName{Name: "a"}})},
				PathAtom{Base: NameRef{Name: "MyList"},
					Path: P(ElemIndex{I: Var{Name: "J"}}, ElemAttr{A: AttrName{Name: "b"}}, ElemBind{X: "X"})},
				Cmp{Op: Lt, L: Var{Name: "I"}, R: Var{Name: "J"}},
			),
		},
	}
	q := &Query{
		Head: []VarDecl{{Name: "Y", Sort: SortData}},
		Body: Eq{L: Var{Name: "Y"},
			R: FuncCall{Name: "set_to_list", Args: []Term{InnerQuery{Q: inner}}}},
	}
	r := evalQ(t, e, q)
	if r.Len() != 1 {
		t.Fatalf("rows = %d", r.Len())
	}
	lst := r.Rows[0]["Y"].Data.(*object.List)
	if lst.Len() != 2 {
		t.Fatalf("Y = %s, want the two late b-strings", lst)
	}
	for i := 0; i < lst.Len(); i++ {
		s := string(lst.At(i).(object.String_))
		if !strings.HasPrefix(s, "late-b") {
			t.Errorf("unexpected member %q", s)
		}
	}
}

// lettersEnv builds the Section 5.3 Letters root: a list of tuples where
// to and from appear in permutable order, typed as a marked union of the
// two permutations.
func lettersEnv(t *testing.T) *Env {
	t.Helper()
	s := store.NewSchema()
	t1 := object.TupleOf(
		object.TField{Name: "from", Type: object.StringType},
		object.TField{Name: "to", Type: object.StringType},
		object.TField{Name: "content", Type: object.StringType},
	)
	t2 := object.TupleOf(
		object.TField{Name: "to", Type: object.StringType},
		object.TField{Name: "from", Type: object.StringType},
		object.TField{Name: "content", Type: object.StringType},
	)
	lt := object.ListOf(object.UnionOf(
		object.TField{Name: "a1", Type: t1},
		object.TField{Name: "a2", Type: t2},
	))
	if err := s.AddRoot("Letters", lt); err != nil {
		t.Fatal(err)
	}
	in := store.NewInstance(s)
	letter := func(marker, from, to, content string) object.Value {
		if marker == "a1" {
			return object.NewUnion("a1", object.NewTuple(
				object.Field{Name: "from", Value: object.String_(from)},
				object.Field{Name: "to", Value: object.String_(to)},
				object.Field{Name: "content", Value: object.String_(content)},
			))
		}
		return object.NewUnion("a2", object.NewTuple(
			object.Field{Name: "to", Value: object.String_(to)},
			object.Field{Name: "from", Value: object.String_(from)},
			object.Field{Name: "content", Value: object.String_(content)},
		))
	}
	_ = in.SetRoot("Letters", object.NewList(
		letter("a1", "alice", "bob", "hello bob"),
		letter("a2", "carol", "dan", "hi dan"),
		letter("a1", "erin", "frank", "dear frank"),
	))
	return NewEnv(in)
}

// TestC8LettersKnownStructure reproduces {Y | ∃I ⟨Letters[I]·a1(Y)⟩}: the
// letters whose tuple starts with from.
func TestC8LettersKnownStructure(t *testing.T) {
	e := lettersEnv(t)
	q := &Query{
		Head: []VarDecl{{Name: "Y", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "I", Sort: SortData}},
			Body: PathAtom{Base: NameRef{Name: "Letters"},
				Path: P(ElemIndex{I: Var{Name: "I"}}, ElemAttr{A: AttrName{Name: "a1"}}, ElemBind{X: "Y"})},
		},
	}
	r := evalQ(t, e, q)
	if r.Len() != 2 {
		t.Fatalf("a1 letters = %d, want 2", r.Len())
	}
}

// TestC8LettersOrderedTuple reproduces (†): letters where to precedes
// from, using the heterogeneous-list view and omitted markers:
// {Y | ∃I,J,K(⟨Letters[I](Y)[J]·to⟩ ∧ ⟨Letters[I][K]·from⟩ ∧ J < K)}.
func TestC8LettersOrderedTuple(t *testing.T) {
	e := lettersEnv(t)
	q := &Query{
		Head: []VarDecl{{Name: "Y", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{
				{Name: "I", Sort: SortData}, {Name: "J", Sort: SortData}, {Name: "K", Sort: SortData},
			},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Letters"},
					Path: P(ElemIndex{I: Var{Name: "I"}}, ElemBind{X: "Y"},
						ElemIndex{I: Var{Name: "J"}}, ElemAttr{A: AttrName{Name: "to"}})},
				PathAtom{Base: NameRef{Name: "Letters"},
					Path: P(ElemIndex{I: Var{Name: "I"}},
						ElemIndex{I: Var{Name: "K"}}, ElemAttr{A: AttrName{Name: "from"}})},
				Cmp{Op: Lt, L: Var{Name: "J"}, R: Var{Name: "K"}},
			),
		},
	}
	r := evalQ(t, e, q)
	// Only the a2 letter has to before from.
	if r.Len() != 1 {
		var got []string
		for _, row := range r.Rows {
			got = append(got, row["Y"].String())
		}
		t.Fatalf("to-before-from letters = %v, want exactly the a2 letter", got)
	}
	u := r.Rows[0]["Y"].Data.(*object.Union_)
	if u.Marker != "a2" {
		t.Errorf("marker = %s", u.Marker)
	}
}

// TestC8LettersProjection reproduces {X | ∃I⟨Letters[I]·to(X)⟩} with the
// marking attribute omitted: implicit selectors reach the to field of
// either permutation.
func TestC8LettersProjection(t *testing.T) {
	e := lettersEnv(t)
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "I", Sort: SortData}},
			Body: PathAtom{Base: NameRef{Name: "Letters"},
				Path: P(ElemIndex{I: Var{Name: "I"}}, ElemAttr{A: AttrName{Name: "to"}}, ElemBind{X: "X"})},
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "X")
	for _, want := range []string{`"bob"`, `"dan"`, `"frank"`} {
		if !hasString(got, want) {
			t.Errorf("recipients missing %s: %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("recipients = %v", got)
	}
}

func TestContainsOnReviewMembership(t *testing.T) {
	// ∃P(⟨Knuth_Books P(X)·title⟩ ∧ "D. Scott" ∈ X·review): only chapters
	// have reviews (Section 5.3's typing example).
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemBind{X: "X"}, ElemAttr{A: AttrName{Name: "title"}})},
				In{L: Str("D. Scott"), R: PathApply{Base: Var{Name: "X"},
					Path: P(ElemAttr{A: AttrName{Name: "review"}})}},
			),
		},
	}
	r, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	// Two chapters carry a D. Scott review; each is reached both as the
	// object (X an oid, with attribute steps dereferencing implicitly —
	// the paper's own paths such as .sections[0].subsectns[0] never spell
	// out dereferences) and as its dereferenced tuple value.
	if r.Len() != 4 {
		var got []string
		for _, row := range r.Rows {
			got = append(got, row["X"].String())
		}
		t.Fatalf("reviewed = %v", got)
	}
	oids := 0
	for _, row := range r.Rows {
		if _, isOID := row["X"].Data.(object.OID); isOID {
			oids++
		}
	}
	if oids != 2 {
		t.Errorf("expected 2 object results, got %d", oids)
	}
}

func TestRangeRestrictionErrors(t *testing.T) {
	e := knuthDB(t)
	bad := []*Query{
		// Unrestricted head variable.
		{Head: []VarDecl{{Name: "X", Sort: SortData}}, Body: Cmp{Op: Lt, L: Var{Name: "X"}, R: Num(3)}},
		// Free variable not in the head.
		{Head: []VarDecl{{Name: "X", Sort: SortData}},
			Body: And{L: Eq{L: Var{Name: "X"}, R: Str("a")}, R: Eq{L: Var{Name: "Y"}, R: Str("b")}}},
		// Negation of an unbound atom.
		{Head: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: Not{F: PathAtom{Base: NameRef{Name: "Knuth_Books"}, Path: PVar("P")}}},
		// Duplicate head variable.
		{Head: []VarDecl{{Name: "X", Sort: SortData}, {Name: "X", Sort: SortData}},
			Body: Eq{L: Var{Name: "X"}, R: Str("a")}},
	}
	for i, q := range bad {
		if err := CheckQuery(q); err == nil {
			t.Errorf("case %d: unsafe query accepted: %s", i, q)
		}
		if _, err := e.Eval(q); err == nil {
			t.Errorf("case %d: unsafe query evaluated: %s", i, q)
		}
	}
}

func TestDisjunctionAndForall(t *testing.T) {
	e := knuthDB(t)
	// Chapters whose author is Jo or Knuth: both branches restrict X.
	mkBranch := func(author string) Formula {
		return Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrName{Name: "author"}}, ElemBind{X: "X"})},
				Eq{L: Var{Name: "X"}, R: Str(author)},
			),
		}
	}
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Or{L: mkBranch("Jo"), R: mkBranch("Knuth")},
	}
	r := evalQ(t, e, q)
	if r.Len() != 2 {
		t.Errorf("authors = %v", resultStrings(r, "X"))
	}
	// ∀: every chapter of volume 2 has a non-empty title.
	q2 := &Query{
		Head: []VarDecl{{Name: "V", Sort: SortData}},
		Body: And{
			L: PathAtom{Base: NameRef{Name: "Knuth_Books"},
				Path: P(ElemDeref{}, ElemAttr{A: AttrName{Name: "volumes"}},
					ElemIndex{I: Num(1)}, ElemBind{X: "V"})},
			R: Forall{
				Vars: []VarDecl{{Name: "C", Sort: SortData}},
				Range: PathAtom{Base: Var{Name: "V"},
					Path: P(ElemDeref{}, ElemAttr{A: AttrName{Name: "chapters"}},
						ElemIndex{I: Var{Name: "ChI"}}, ElemBind{X: "C"})},
				Then: Exists{
					Vars: []VarDecl{{Name: "T", Sort: SortData}},
					Body: Conj(
						PathAtom{Base: Var{Name: "C"},
							Path: P(ElemDeref{}, ElemAttr{A: AttrName{Name: "title"}}, ElemBind{X: "T"})},
						Cmp{Op: Ne, L: Var{Name: "T"}, R: Str("")},
					),
				},
			},
		},
	}
	// ChI is an extra range variable of the Forall range; quantify it.
	q2.Body = And{
		L: q2.Body.(And).L,
		R: Forall{
			Vars:  []VarDecl{{Name: "C", Sort: SortData}, {Name: "ChI", Sort: SortData}},
			Range: q2.Body.(And).R.(Forall).Range,
			Then:  q2.Body.(And).R.(Forall).Then,
		},
	}
	r2 := evalQ(t, e, q2)
	if r2.Len() != 1 {
		t.Errorf("forall result = %d rows", r2.Len())
	}
}

func TestLiberalVsRestrictedSemantics(t *testing.T) {
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: PathAtom{Base: NameRef{Name: "Knuth_Books"},
				Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrName{Name: "author"}}, ElemBind{X: "X"})},
		},
	}
	// Restricted: Book -> Volume -> Chapter crosses three distinct
	// classes, so authors are reachable.
	r := evalQ(t, e, q)
	if r.Len() != 2 { // "Knuth" and "Jo"
		t.Errorf("restricted authors = %v", resultStrings(r, "X"))
	}
	e.Semantics = path.Liberal
	r2 := evalQ(t, e, q)
	if r2.Len() != 2 {
		t.Errorf("liberal authors = %v", resultStrings(r2, "X"))
	}
	// Composition P -> P' goes deeper than one variable can (the paper's
	// remark); here a single variable suffices, so both agree.
}

func TestQueryResultToSet(t *testing.T) {
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}, {Name: "A", Sort: SortAttr}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrVar{Name: "A"}}, ElemBind{X: "X"})},
				Eq{L: Var{Name: "X"}, R: Str("Jo")},
			),
		},
	}
	r := evalQ(t, e, q)
	set := r.ToSet()
	if set.Len() != 1 {
		t.Fatalf("set = %s", set)
	}
	tup := set.At(0).(*object.Tuple)
	if v, _ := tup.Get("A"); !object.Equal(v, object.String_("author")) {
		t.Errorf("A = %s", v)
	}
	// Single-variable head: set of plain values.
	q1 := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: In{L: Var{Name: "X"}, R: Const{V: object.NewSet(object.Int(1), object.Int(2))}},
	}
	r1 := evalQ(t, e, q1)
	s1 := r1.ToSet()
	if s1.Len() != 2 || !s1.Contains(object.Int(1)) {
		t.Errorf("single-head set = %s", s1)
	}
}

func TestInterpretedExtensions(t *testing.T) {
	e := knuthDB(t)
	e.Preds["startswith"] = func(args []Binding) (bool, error) {
		s, ok1 := args[0].Data.(object.String_)
		p, ok2 := args[1].Data.(object.String_)
		return ok1 && ok2 && strings.HasPrefix(string(s), string(p)), nil
	}
	e.Funcs["upper"] = func(args []Binding) (Binding, error) {
		s := args[0].Data.(object.String_)
		return DataBinding(object.String_(strings.ToUpper(string(s)))), nil
	}
	q := &Query{
		Head: []VarDecl{{Name: "Y", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}, {Name: "X", Sort: SortData}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrName{Name: "author"}}, ElemBind{X: "X"})},
				Pred{Name: "startswith", Args: []Term{Var{Name: "X"}, Str("J")}},
				Eq{L: Var{Name: "Y"}, R: FuncCall{Name: "upper", Args: []Term{Var{Name: "X"}}}},
			),
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "Y")
	if len(got) != 1 || got[0] != `"JO"` {
		t.Errorf("extensions = %v", got)
	}
	// Unknown predicate errors.
	qBad := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: And{L: Eq{L: Var{Name: "X"}, R: Str("v")},
			R: Pred{Name: "nope", Args: []Term{Var{Name: "X"}}}},
	}
	if _, err := e.Eval(qBad); err == nil {
		t.Error("unknown predicate accepted")
	}
}

func TestBuiltinFunctions(t *testing.T) {
	e := knuthDB(t)
	check := func(f FuncCall, v Valuation, want object.Value) {
		t.Helper()
		got, err := e.evalFunc(f, v)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !object.Equal(got, want) {
			t.Errorf("%s = %s, want %s", f, got, want)
		}
	}
	val := Valuation{
		"P": PathBinding(path.New(path.Attr("sections"), path.Index(0), path.Attr("subsectns"), path.Index(0))),
		"A": AttrBinding("status"),
		"L": DataBinding(object.NewList(object.Int(5), object.Int(6), object.Int(7))),
		"S": DataBinding(object.NewSet(object.Int(1), object.Int(2))),
	}
	check(FuncCall{Name: "length", Args: []Term{PVar("P")}}, val, object.Int(4))
	check(FuncCall{Name: "length", Args: []Term{Var{Name: "L"}}}, val, object.Int(3))
	check(FuncCall{Name: "length", Args: []Term{Str("abc")}}, val, object.Int(3))
	check(FuncCall{Name: "name", Args: []Term{AttrVar{Name: "A"}}}, val, object.String_("status"))
	check(FuncCall{Name: "first", Args: []Term{Var{Name: "L"}}}, val, object.Int(5))
	check(FuncCall{Name: "last", Args: []Term{Var{Name: "L"}}}, val, object.Int(7))
	check(FuncCall{Name: "count", Args: []Term{Var{Name: "S"}}}, val, object.Int(2))
	check(FuncCall{Name: "set_to_list", Args: []Term{Var{Name: "S"}}}, val,
		object.NewList(object.Int(1), object.Int(2)))
	// slice on a path: P[0:1] in the paper's inclusive convention is
	// slice(P, 0, 2) here.
	got, err := e.evalFunc(FuncCall{Name: "slice",
		Args: []Term{PVar("P"), Num(0), Num(2)}}, val)
	if err != nil {
		t.Fatal(err)
	}
	p, err := path.FromValue(got)
	if err != nil || p.String() != ".sections[0]" {
		t.Errorf("slice = %v %v", got, err)
	}
	// Errors.
	for _, f := range []FuncCall{
		{Name: "length", Args: []Term{AttrVar{Name: "A"}}},
		{Name: "name", Args: []Term{Var{Name: "L"}}},
		{Name: "count", Args: []Term{Str("x")}},
		{Name: "set_to_list", Args: []Term{Var{Name: "L"}}},
		{Name: "mystery", Args: []Term{Var{Name: "L"}}},
	} {
		v2 := Valuation{"L": val["L"], "A": val["A"]}
		if _, err := e.evalFunc(f, v2); err == nil {
			t.Errorf("%s must fail", f)
		}
	}
}

func TestTypeInference(t *testing.T) {
	e := knuthDB(t)
	schema := e.Inst.Schema()
	// {X | ∃P ⟨Knuth_Books P(X)·title⟩}: X may be a Book, Volume or
	// Chapter value — a union type with system markers (Section 5.3).
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: PathAtom{Base: NameRef{Name: "Knuth_Books"},
				Path: P(ElemVar{Name: "P"}, ElemBind{X: "X"}, ElemAttr{A: AttrName{Name: "title"}})},
		},
	}
	ti, err := InferTypes(schema, q)
	if err != nil {
		t.Fatal(err)
	}
	ts := ti.Data["X"]
	if len(ts) < 2 {
		t.Fatalf("X types = %v", ts)
	}
	u, ok := ti.TypeOf("X")
	if !ok {
		t.Fatal("TypeOf failed")
	}
	if _, isUnion := u.(object.UnionType); !isUnion {
		t.Errorf("X type should be a union, got %s", u)
	}
	// Attribute variable candidates.
	q2 := &Query{
		Head: []VarDecl{{Name: "A", Sort: SortAttr}},
		Body: Exists{
			Vars: []VarDecl{{Name: "X", Sort: SortData}},
			Body: PathAtom{Base: NameRef{Name: "Knuth_Books"},
				Path: P(ElemDeref{}, ElemAttr{A: AttrVar{Name: "A"}}, ElemBind{X: "X"})},
		},
	}
	ti2, err := InferTypes(schema, q2)
	if err != nil {
		t.Fatal(err)
	}
	attrs := ti2.Attr["A"]
	want := []string{"status", "title", "volumes"}
	if strings.Join(attrs, ",") != strings.Join(want, ",") {
		t.Errorf("A candidates = %v, want %v", attrs, want)
	}
	// Index variables are integers.
	q3 := &Query{
		Head: []VarDecl{{Name: "I", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "X", Sort: SortData}},
			Body: PathAtom{Base: NameRef{Name: "Knuth_Books"},
				Path: P(ElemDeref{}, ElemAttr{A: AttrName{Name: "volumes"}},
					ElemIndex{I: Var{Name: "I"}}, ElemBind{X: "X"})},
		},
	}
	ti3, err := InferTypes(schema, q3)
	if err != nil {
		t.Fatal(err)
	}
	if ts := ti3.Data["I"]; len(ts) != 1 || !object.TypeEqual(ts[0], object.IntType) {
		t.Errorf("I type = %v", ts)
	}
	if len(ti3.PathVars) != 0 {
		t.Errorf("no path vars expected, got %v", ti3.PathVars)
	}
}

func TestSortString(t *testing.T) {
	if SortData.String() != "val" || SortPath.String() != "path" || SortAttr.String() != "att" {
		t.Error("sort names")
	}
	if Sort(9).String() != "Sort(9)" {
		t.Error("unknown sort")
	}
}

func TestFormulaAndTermStrings(t *testing.T) {
	f := Conj(
		PathAtom{Base: NameRef{Name: "Doc"},
			Path: P(ElemVar{Name: "P"}, ElemAttr{A: AttrName{Name: "title"}}, ElemBind{X: "X"})},
		Cmp{Op: Le, L: FuncCall{Name: "length", Args: []Term{PVar("P")}}, R: Num(3)},
		Not{F: Eq{L: Var{Name: "X"}, R: Str("x")}},
	)
	s := f.String()
	for _, want := range []string{"<Doc P.title(X)>", "length(P) <= 3", `¬X = "x"`} {
		if !strings.Contains(s, want) {
			t.Errorf("formula string missing %q in %q", want, s)
		}
	}
	q := &Query{Head: []VarDecl{{Name: "X", Sort: SortData}}, Body: f}
	if !strings.HasPrefix(q.String(), "{X | ") {
		t.Errorf("query string = %s", q)
	}
	tt := TupleTerm{Fields: []TupleField{{Attr: AttrName{Name: "a"}, T: Num(1)}}}
	if tt.String() != "[a: 1]" {
		t.Errorf("tuple term = %s", tt)
	}
	lt := ListTerm{Items: []DataTerm{Num(1), Num(2)}}
	if lt.String() != "list(1, 2)" {
		t.Errorf("list term = %s", lt)
	}
	st := SetTerm{Items: []DataTerm{Str("x")}}
	if st.String() != `{"x"}` {
		t.Errorf("set term = %s", st)
	}
	// Steps conversion round trip.
	conc := path.New(path.Attr("a"), path.Index(2), path.Deref(), path.Member(object.Int(1)))
	elems := Steps(conc)
	if len(elems) != 4 {
		t.Fatalf("Steps = %v", elems)
	}
	pt := P(elems...)
	e := NewEnv(nil)
	back, err := e.evalPathTerm(pt, Valuation{})
	if err != nil || !back.Equal(conc) {
		t.Errorf("Steps round trip = %v %v", back, err)
	}
}

func TestConstructedTermsEvaluate(t *testing.T) {
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "Y", Sort: SortData}},
		Body: Eq{L: Var{Name: "Y"}, R: TupleTerm{Fields: []TupleField{
			{Attr: AttrName{Name: "n"}, T: Num(1)},
			{Attr: AttrName{Name: "s"}, T: SetTerm{Items: []DataTerm{Num(2), Num(2), Num(3)}}},
			{Attr: AttrName{Name: "l"}, T: ListTerm{Items: []DataTerm{Str("a")}}},
		}}},
	}
	r := evalQ(t, e, q)
	tup := r.Rows[0]["Y"].Data.(*object.Tuple)
	if s, _ := tup.Get("s"); s.(*object.Set).Len() != 2 {
		t.Errorf("set field = %s", s)
	}
}
