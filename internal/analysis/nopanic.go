package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The nopanic analyzer: a panic that an exported function can reach is a
// latent crash in an API consumer — in a concurrent serving process, one
// bad query text or malformed document must surface as an error, never
// tear the process down. The analyzer builds a static call graph over the
// analyzed packages (direct calls only; calls through interface values
// are not resolved), marks every exported function and method as a root,
// and flags each reachable `panic` site. Deliberate panics — contract
// violations of the "programming error" kind (MustCompile on a constant,
// duplicate attributes in a constructor) and defense-in-depth defaults
// behind exhaustive kind switches — carry a
//
//	//lint:allow panic <reason>
//
// annotation naming why the panic is the right behaviour.

// NopanicAnalyzer flags panics reachable from exported API.
var NopanicAnalyzer = &Analyzer{
	Name: "panic",
	Doc:  "panic reachable from exported API must be annotated or removed",
	Run:  runNopanic,
}

// callGraph is the program's static direct-call graph.
type callGraph struct {
	calls  map[*types.Func][]*types.Func
	panics map[*types.Func][]token.Pos
	roots  []*types.Func
	names  map[*types.Func]string
}

// callGraph builds the graph once per program over all target packages.
func (prog *Program) callGraph() *callGraph {
	prog.graphOnce.Do(func() {
		g := &callGraph{
			calls:  map[*types.Func][]*types.Func{},
			panics: map[*types.Func][]token.Pos{},
			names:  map[*types.Func]string{},
		}
		for _, pkg := range prog.Targets {
			funcBodies(pkg, func(decl *ast.FuncDecl, fn *types.Func) {
				if fn == nil {
					return
				}
				g.names[fn] = funcDisplayName(pkg, decl)
				if isExportedAPI(decl) {
					g.roots = append(g.roots, fn)
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isPanicCall(pkg.Info, call) {
						g.panics[fn] = append(g.panics[fn], call.Pos())
						return true
					}
					if callee := calleeOf(pkg.Info, call); callee != nil {
						g.calls[fn] = append(g.calls[fn], callee)
					}
					return true
				})
			})
		}
		prog.graph = g
	})
	return prog.graph
}

// isExportedAPI reports an exported function, or an exported method on an
// exported receiver type.
func isExportedAPI(decl *ast.FuncDecl) bool {
	if !decl.Name.IsExported() {
		return false
	}
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return true
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// funcDisplayName renders pkg.Func or pkg.(*T).M for diagnostics.
func funcDisplayName(pkg *Package, decl *ast.FuncDecl) string {
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			if id, ok := star.X.(*ast.Ident); ok {
				name = "(*" + id.Name + ")." + name
			}
		} else if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return pkg.Types.Name() + "." + name
}

func runNopanic(prog *Program, report func(Diagnostic)) {
	g := prog.callGraph()
	// Multi-source BFS from the exported roots, remembering for each
	// reached function one example root (the provenance shown to the
	// developer).
	via := map[*types.Func]*types.Func{}
	queue := make([]*types.Func, 0, len(g.roots))
	for _, r := range g.roots {
		if _, seen := via[r]; !seen {
			via[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.calls[fn] {
			if _, seen := via[callee]; !seen {
				via[callee] = via[fn]
				queue = append(queue, callee)
			}
		}
	}
	for fn, sites := range g.panics {
		root, reachable := via[fn]
		if !reachable {
			continue
		}
		for _, pos := range sites {
			msg := fmt.Sprintf("panic reachable from exported API (e.g. via %s)", g.names[root])
			if root == fn {
				msg = fmt.Sprintf("panic in exported %s", g.names[fn])
			}
			report(Diagnostic{Pos: pos, Message: msg + "; return an error or annotate //lint:allow panic <reason>"})
		}
	}
}
