package sgmldb

import (
	"time"

	"sgmldb/internal/calculus"
)

// QueryOption tightens the resource budget of one query execution:
//
//	v, err := db.QueryContext(ctx, src, sgmldb.QMaxRows(10_000), sgmldb.QTimeout(time.Second))
//
// Per-call options override the Database-level budgets (WithMaxRows,
// WithMaxMemory, WithQueryTimeout) downward only: on each axis the
// effective limit is the tighter of the two, so a caller can never buy
// itself more than the database grants. This is what lets one Database
// serve many tenants — the service hands each tenant's limits to every
// call as options, and a tenant's own per-request limits clamp further.
type QueryOption func(*callOpts)

// callOpts accumulates the per-call limits.
type callOpts struct {
	budget calculus.Budget
}

// QMaxRows bounds the rows this one query may scan or materialise, like
// WithMaxRows but per call. Zero or negative leaves the axis at the
// database limit.
func QMaxRows(n int64) QueryOption {
	return func(c *callOpts) {
		if n > 0 {
			c.budget.MaxRows = n
		}
	}
}

// QMaxMemory bounds the estimated bytes this one query may materialise,
// like WithMaxMemory but per call. Zero or negative leaves the axis at
// the database limit.
func QMaxMemory(bytes int64) QueryOption {
	return func(c *callOpts) {
		if bytes > 0 {
			c.budget.MaxMem = bytes
		}
	}
}

// QTimeout bounds this one query's wall-clock evaluation time, like
// WithQueryTimeout but per call. Zero or negative leaves the axis at the
// database limit.
func QTimeout(d time.Duration) QueryOption {
	return func(c *callOpts) {
		if d > 0 {
			c.budget.MaxDuration = d
		}
	}
}

// callBudget resolves the effective budget of one execution: the
// database-level budget clamped per axis by the per-call options. With no
// options it is exactly the database budget, so the un-optioned paths
// behave as before.
func (db *Database) callBudget(opts []QueryOption) calculus.Budget {
	base := db.Engine.Budget
	if len(opts) == 0 {
		return base
	}
	var c callOpts
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return clampBudget(base, c.budget)
}

// clampBudget merges a requested budget into a base budget, axis by axis:
// an unrequested axis keeps the base limit, a requested axis on an
// unlimited base applies as is, and where both are set the tighter limit
// wins.
func clampBudget(base, req calculus.Budget) calculus.Budget {
	return calculus.Budget{
		MaxRows:     clampI64(base.MaxRows, req.MaxRows),
		MaxMem:      clampI64(base.MaxMem, req.MaxMem),
		MaxDuration: time.Duration(clampI64(int64(base.MaxDuration), int64(req.MaxDuration))),
	}
}

// clampI64 merges one axis (0 = unlimited): the tighter of the two
// limits, or whichever is set.
func clampI64(base, req int64) int64 {
	switch {
	case req <= 0:
		return base
	case base <= 0:
		return req
	case req < base:
		return req
	default:
		return base
	}
}
