package sgmldb

// Option configures a Database at open time:
//
//	db, err := sgmldb.OpenDTD(src, sgmldb.WithAlgebra(true), sgmldb.WithWorkers(8))
//
// Options apply before the database is returned, so the engine
// configuration is fixed while queries run — the concurrency contract of
// the engine requires exactly that.
type Option func(*Database)

// WithAlgebra selects the evaluation strategy: true evaluates through the
// Section 5.4 algebra plans (with plan caching), false through the naive
// calculus interpreter. The default is the naive interpreter.
func WithAlgebra(on bool) Option {
	return func(db *Database) { db.Engine.UseAlgebra = on }
}

// WithMaxBranches bounds the (★) expansion of path-variable patterns into
// a union of variable-free plans (0 keeps the engine default).
func WithMaxBranches(n int) Option {
	return func(db *Database) { db.Engine.MaxBranches = n }
}

// WithSkipTypecheck disables the static Section 4.2 checks, leaving only
// execution-time type errors.
func WithSkipTypecheck(on bool) Option {
	return func(db *Database) { db.Engine.SkipTypecheck = on }
}

// WithWorkers bounds intra-query parallelism of algebra plan scans:
// 0 (the default) uses GOMAXPROCS, 1 evaluates serially, n > 1 uses up to
// n goroutines per query. Results are identical at any setting.
func WithWorkers(n int) Option {
	return func(db *Database) { db.Engine.Workers = n }
}
