package wal

import (
	"errors"
	"fmt"
)

// ErrSeqTruncated reports a feed request anchored before the retained
// log: the prefix covering that sequence was dropped by a checkpoint, so
// the caller must bootstrap from a checkpoint instead of tailing frames.
var ErrSeqTruncated = errors.New("wal: requested sequence precedes the retained log")

// FramesAfter returns raw committed frames with sequence numbers after
// afterSeq, in order, stopping before maxBytes is exceeded (but always
// returning at least one frame when any is due). lastSeq is the sequence
// number of the final returned frame, or afterSeq when none are due.
// Frames are returned exactly as they sit on disk — header, CRC and all —
// so a follower validates them with the same DecodeFrame the local replay
// path uses. Rolled-back appends are invisible by construction: a failed
// Append rewinds the file before l.size ever advances, and FramesAfter
// reads only [0, l.size).
//
// afterTerm, when non-zero, is the term the caller holds at its anchor —
// the Raft-style consistency check. The record at afterSeq in this log
// must carry exactly that term, and the anchor must not sit past the end
// of this log; either mismatch means the caller's history diverged from
// ours at a promotion boundary and is reported as ErrStaleTerm, telling
// the caller to re-bootstrap rather than splice divergent histories.
// afterTerm 0 skips the check (a caller with no term knowledge yet).
func (l *Log) FramesAfter(afterSeq, afterTerm uint64, maxBytes int) (frames []byte, lastSeq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// A poisoned log accepts no writes, but its committed prefix is still
	// the durable truth: keep shipping it so followers stay current up to
	// the last real commit of a degraded primary. Only a lost handle ends
	// the feed.
	if l.f == nil {
		return nil, 0, l.err
	}
	if afterSeq < l.floor {
		return nil, 0, fmt.Errorf("%w: have records after %d, asked for after %d", ErrSeqTruncated, l.floor, afterSeq)
	}
	if afterTerm > 0 && afterSeq > l.seq {
		// The caller is ahead of this log: it holds records we never wrote,
		// which after a promotion means an unshipped suffix from a stale
		// term. (Without a term claim this is the benign "nothing new yet"
		// case a long-polling follower hits constantly.)
		return nil, 0, fmt.Errorf("%w: anchor %d is past this log's last record %d", ErrStaleTerm, afterSeq, l.seq)
	}
	if afterTerm > 0 && afterSeq == l.floor {
		if l.floorTerm > 0 && l.floorTerm != afterTerm {
			return nil, 0, fmt.Errorf("%w: anchor %d has term %d here, caller claims %d", ErrStaleTerm, afterSeq, l.floorTerm, afterTerm)
		}
		afterTerm = 0 // floor verified (or unknowable); skip the scan check
	}
	if afterTerm > 0 && afterSeq == l.seq && afterTerm != l.term {
		// The caught-up long-poll case, checked against the cached last-term
		// so an empty poll never has to scan the file.
		return nil, 0, fmt.Errorf("%w: anchor %d has term %d here, caller claims %d", ErrStaleTerm, afterSeq, l.term, afterTerm)
	}
	if afterSeq >= l.seq {
		return nil, afterSeq, nil
	}
	data := make([]byte, l.size)
	if _, err := l.f.ReadAt(data, 0); err != nil {
		return nil, 0, fmt.Errorf("wal: feed read: %w", err)
	}
	off := len(logMagic)
	lastSeq = afterSeq
	for off < len(data) {
		rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			// Committed bytes failing to decode is corruption, not a torn
			// tail: everything under l.size was fsynced by an Append that
			// returned success.
			return nil, 0, fmt.Errorf("%w: feed scan at offset %d: %w", ErrCorruptLog, off, err)
		}
		if afterTerm > 0 && rec.Seq == afterSeq && rec.Term != afterTerm {
			return nil, 0, fmt.Errorf("%w: anchor %d has term %d here, caller claims %d", ErrStaleTerm, afterSeq, rec.Term, afterTerm)
		}
		if rec.Seq > afterSeq {
			if len(frames) > 0 && len(frames)+n > maxBytes {
				break
			}
			frames = append(frames, data[off:off+n]...)
			lastSeq = rec.Seq
		}
		off += n
	}
	return frames, lastSeq, nil
}
