package algebra

import (
	"sync"

	"sgmldb/internal/calculus"
)

// This file implements the parallel row scan shared by the row-at-a-time
// operators, and the worker pool behind it. An operator's per-row work
// (navigating a path predicate, evaluating a residual formula, unnesting
// a collection) is independent across rows, so the input can be
// partitioned into contiguous chunks and handed to a bounded worker
// pool. Each worker appends into its own output slot and the slots are
// concatenated in partition order, so the merged result is byte-for-byte
// the serial result — parallelism changes wall-clock time, never
// answers.
//
// The pool is one token channel per Ctx, shared by every parallelisable
// site of the plan — row scans here, union branches in op.go — so one
// query never runs more than Ctx.Workers goroutines no matter how its
// operators nest: a site claims tokens for its extra goroutines and runs
// narrower (down to fully serial) when concurrent sites hold them.
//
// Worker goroutines convert panics to ErrInternal-wrapped errors: a
// panicking evaluation must surface to the caller as an error, not kill
// the process (the serial path leaves panics to unwind to the facade's
// recover, which does the same conversion).

// minParallelRows is the smallest input for which spawning workers can
// pay for itself; smaller inputs run serially.
const minParallelRows = 4

// ctxStride bounds how many rows a scan processes between
// cancellation-and-budget checks (the scan-partition granularity of
// query cancellation).
const ctxStride = 64

// workerPool returns the query's shared token pool, sized Workers-1:
// the calling goroutine of any site is a worker already, tokens cover
// only the extras. Built lazily on first use (Workers is set after
// NewCtx); sync.Once makes the build safe against concurrent sites.
func (c *Ctx) workerPool() chan struct{} {
	c.poolOnce.Do(func() {
		n := c.Workers - 1
		if n < 0 {
			n = 0
		}
		c.pool = make(chan struct{}, n)
	})
	return c.pool
}

// mapRows applies fn to every input valuation and concatenates the
// results in input order, splitting the work across the worker pool when
// the input is large enough and tokens are free. fn must be safe for
// concurrent calls on distinct rows (all operator row functions are:
// they only read the environment and extend copy-on-write valuations).
func (ctx *Ctx) mapRows(in []calculus.Valuation, fn func(calculus.Valuation) ([]calculus.Valuation, error)) ([]calculus.Valuation, error) {
	if ctx.Workers <= 1 || len(in) < minParallelRows {
		return ctx.scanPartition(in, fn)
	}
	max := ctx.Workers
	if max > len(in) {
		max = len(in)
	}
	pool := ctx.workerPool()
	extra := 0
claim:
	for extra < max-1 {
		select {
		case pool <- struct{}{}:
			extra++
		default:
			// Pool exhausted (e.g. sibling union branches scanning
			// concurrently): run with what we got.
			break claim
		}
	}
	if extra == 0 {
		return ctx.scanPartition(in, fn)
	}
	defer func() {
		for i := 0; i < extra; i++ {
			<-pool
		}
	}()
	workers := extra + 1
	outs := make([][]calculus.Valuation, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(in) / workers
		hi := (w + 1) * len(in) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = calculus.Internal(r)
				}
			}()
			outs[w], errs[w] = ctx.scanPartition(in[lo:hi], fn)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var merged []calculus.Valuation
	for _, out := range outs {
		merged = append(merged, out...)
	}
	return merged, nil
}

// scanPartition is the serial scan over one contiguous chunk: the whole
// input on the serial path, one partition per worker on the parallel
// path. The strided poll checks cancellation and charges the scanned
// rows to the query's cost meter; produced rows beyond one-per-input
// (unnest and navigation expansions) are charged at materialisation, so
// a cross product trips its budget while allocating, not after.
func (ctx *Ctx) scanPartition(in []calculus.Valuation, fn func(calculus.Valuation) ([]calculus.Valuation, error)) ([]calculus.Valuation, error) {
	meter := ctx.Env.Meter()
	var out []calculus.Valuation
	for i, v := range in {
		if err := ctx.poll(i); err != nil {
			return nil, err
		}
		rows, err := fn(v)
		if err != nil {
			return nil, err
		}
		if len(rows) > 1 {
			if err := meter.Charge(int64(len(rows))-1, int64(len(rows))*calculus.EstimateBytes(rows[0])); err != nil {
				return nil, err
			}
		}
		out = append(out, rows...)
	}
	return out, nil
}
