package dtdmap

import (
	"reflect"
	"testing"

	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
)

// loadBiblio sets up a loader over the crossref DTD with one good
// document already loaded, returning the loader and the parsed DTD.
func loadBiblio(t *testing.T) (*Loader, *sgml.DTD) {
	t.Helper()
	dtd, err := sgml.ParseDTD(crossrefDTD)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	doc := parseBiblio(t, dtd, `<biblio>
<entry key="k1">First work.
<survey cites="k1">A survey.
</biblio>`)
	if _, err := l.Load(doc); err != nil {
		t.Fatal(err)
	}
	return l, dtd
}

func parseBiblio(t *testing.T, dtd *sgml.DTD, src string) *sgml.Document {
	t.Helper()
	doc, err := sgml.ParseDocument(dtd, src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// badIDREFDoc hand-builds a structurally valid biblio whose survey cites
// an undeclared ID. The parser would reject this, but a loader fed from
// other producers must survive it: the fixup failure happens after the
// entry and survey objects were already created.
func badIDREFDoc(dtd *sgml.DTD) *sgml.Document {
	entry := &sgml.Element{
		Name:     "entry",
		Attrs:    []sgml.Attr{{Name: "key", Value: "k9"}},
		Children: []sgml.Node{sgml.Text("Another work.")},
	}
	survey := &sgml.Element{
		Name:     "survey",
		Attrs:    []sgml.Attr{{Name: "cites", Value: "k9 missing"}},
		Children: []sgml.Node{sgml.Text("A survey citing a ghost.")},
	}
	root := &sgml.Element{Name: "biblio", Children: []sgml.Node{entry, survey}}
	return &sgml.Document{DTD: dtd, Root: root, IDs: map[string]*sgml.Element{"k9": entry}}
}

// instanceFingerprint captures everything a failed load must leave
// untouched.
type instanceFingerprint struct {
	objects int
	oids    []uint64
	stats   store.Stats
	epoch   uint64
	docs    int
}

func fingerprint(l *Loader) instanceFingerprint {
	var oids []uint64
	for _, o := range l.Instance.Objects() {
		oids = append(oids, uint64(o))
	}
	return instanceFingerprint{
		objects: l.Instance.NumObjects(),
		oids:    oids,
		stats:   l.Instance.Stats(),
		epoch:   l.Instance.Epoch(),
		docs:    len(l.Documents()),
	}
}

// TestFailedLoadIsAtomic: a document that fails in applyFixups (its
// objects are already built when the unresolved IDREF is discovered)
// must leave the loader's published instance byte-identical — no orphan
// objects, clean Check, unchanged Stats.
func TestFailedLoadIsAtomic(t *testing.T) {
	l, dtd := loadBiblio(t)
	before := fingerprint(l)
	published := l.Instance

	// The parser validates IDREFs itself, so a dangling reference has to
	// be constructed directly to reach the loader's fixup path — entry
	// and survey objects are already built when the fixup fails.
	bad := badIDREFDoc(dtd)
	if _, err := l.Load(bad); err == nil {
		t.Fatal("load with unresolved IDREF must fail")
	}

	if l.Instance != published {
		t.Error("failed load must not swing the loader's instance")
	}
	after := fingerprint(l)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("failed load changed the instance:\nbefore %+v\nafter  %+v", before, after)
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Errorf("Check after failed load: %v", errs)
	}

	// The loader still works: a good document loads fine afterwards.
	good := parseBiblio(t, dtd, `<biblio>
<entry key="k9">Another work.
<survey cites="k9">A proper survey.
</biblio>`)
	if _, err := l.Load(good); err != nil {
		t.Fatalf("load after failed load: %v", err)
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Errorf("Check after recovery load: %v", errs)
	}
	if got := len(l.Documents()); got != 2 {
		t.Errorf("documents = %d, want 2", got)
	}
	if l.Instance.Epoch() <= before.epoch {
		t.Errorf("successful load must advance the epoch (%d -> %d)", before.epoch, l.Instance.Epoch())
	}
}

// TestFailedLoadBadSibling: the failure mode where earlier siblings have
// already created objects when a later sibling is rejected.
func TestFailedLoadBadSibling(t *testing.T) {
	l, dtd := loadBiblio(t)
	before := fingerprint(l)

	// The content model requires (entry+, survey): a biblio whose survey
	// is missing fails after its entries were built.
	doc, err := sgml.ParseDocument(dtd, `<biblio>
<entry key="a1">One.
<entry key="a2">Two.
</biblio>`)
	if err == nil {
		// Some parsers reject this outright; if parsing succeeded, the
		// load must fail and stay atomic.
		if _, err := l.Load(doc); err == nil {
			t.Fatal("load of invalid content model must fail")
		}
	}
	after := fingerprint(l)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("failed load changed the instance:\nbefore %+v\nafter  %+v", before, after)
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Errorf("Check after failed load: %v", errs)
	}
}

// TestLoadAllBatchIsAtomic: a batch with one bad document publishes
// nothing, and a good batch publishes everything in one epoch step.
func TestLoadAllBatchIsAtomic(t *testing.T) {
	l, dtd := loadBiblio(t)
	before := fingerprint(l)

	good1 := parseBiblio(t, dtd, "<biblio>\n<entry key=\"b1\">B1.\n<survey cites=\"b1\">S1.\n</biblio>")
	bad := badIDREFDoc(dtd)
	good2 := parseBiblio(t, dtd, "<biblio>\n<entry key=\"b3\">B3.\n<survey cites=\"b3\">S3.\n</biblio>")

	if _, err := l.LoadAll([]*sgml.Document{good1, bad, good2}); err == nil {
		t.Fatal("batch with a bad document must fail")
	}
	if got := fingerprint(l); !reflect.DeepEqual(before, got) {
		t.Errorf("failed batch changed the instance:\nbefore %+v\nafter  %+v", before, got)
	}

	oids, err := l.LoadAll([]*sgml.Document{good1, good2})
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 2 {
		t.Fatalf("batch oids = %v", oids)
	}
	if got := l.Instance.Epoch(); got != before.epoch+1 {
		t.Errorf("batch must cost one epoch, got %d -> %d", before.epoch, got)
	}
	if got := len(l.Documents()); got != 3 {
		t.Errorf("documents = %d, want 3", got)
	}
	if errs := l.Instance.Check(); len(errs) != 0 {
		t.Errorf("Check after batch: %v", errs)
	}
	// The root lists all three documents in load order.
	root, ok := l.Instance.Root(l.Mapping.RootName)
	if !ok {
		t.Fatal("root unset after batch")
	}
	if got := root.String(); got == "" {
		t.Error("empty root")
	}
}
