package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"sgmldb"
	"sgmldb/internal/faultpoint"
)

// TestServicePrepareQuotaRace is the regression test for the prepared-
// handle quota TOCTOU: the pre-fix code checked the tenant's handle count
// before Engine.Prepare and incremented it after, so N concurrent
// prepares all passed the check and a tenant with quota 2 ended up
// holding N handles. The fixed code reserves the slot atomically up
// front: exactly quota prepares may be in flight, the rest get
// HANDLE_LIMIT immediately.
func TestServicePrepareQuotaRace(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := openTestDB(t, 1)
	defer db.Close()
	cfg := Config{Tenants: []TenantConfig{{Name: "t", APIKey: "k", MaxHandles: 2}}}
	_, ts := newTestServer(t, db, cfg)

	// Park every prepare that makes it past the quota gate inside
	// Engine.Prepare, widening the pre-fix race window from nanoseconds
	// to the whole test.
	var parked atomic.Int64
	release := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	defer faultpoint.Arm("oql/plan-recompile", func() error {
		parked.Add(1)
		<-release
		return nil
	})()

	const callers = 8
	var ok, limited atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := call(t, ts, "POST", "/v1/prepare", "k", map[string]any{"query": "select a from a in Articles"})
			switch {
			case status == http.StatusOK:
				ok.Add(1)
			case status == http.StatusTooManyRequests && errCode(t, body) == codeHandleLimit:
				limited.Add(1)
			default:
				t.Errorf("prepare: unexpected status %d body %v", status, body)
			}
		}()
	}
	waitFor(t, "prepares to park in the engine", func() bool { return parked.Load() >= 2 })
	released = true
	close(release)
	wg.Wait()

	if ok.Load() != 2 || limited.Load() != callers-2 {
		t.Fatalf("quota 2 under %d concurrent prepares: %d succeeded, %d limited (want 2/%d)",
			callers, ok.Load(), limited.Load(), callers-2)
	}
	status, body := call(t, ts, "GET", "/v1/stats", "k", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	tn := body["service"].(map[string]any)["tenants"].([]any)[0].(map[string]any)
	if h := tn["handles"].(float64); h != 2 {
		t.Fatalf("tenant holds %v handles after the race, quota is 2", h)
	}
}

// TestServiceStatsTenantOrderStable: the tenants array in /v1/stats must
// come back in one deterministic (name-sorted) order on every scrape —
// pre-fix it followed Go's randomized map iteration.
func TestServiceStatsTenantOrderStable(t *testing.T) {
	db := openTestDB(t, 1)
	defer db.Close()
	cfg := Config{Tenants: []TenantConfig{
		{Name: "zeta", APIKey: "kz"},
		{Name: "alpha", APIKey: "ka"},
		{Name: "mid", APIKey: "km"},
		{Name: "beta", APIKey: "kb"},
	}}
	_, ts := newTestServer(t, db, cfg)
	want := []string{"alpha", "beta", "mid", "zeta"}
	for i := 0; i < 20; i++ {
		status, body := call(t, ts, "GET", "/v1/stats", "ka", nil)
		if status != http.StatusOK {
			t.Fatalf("stats scrape %d: status %d", i, status)
		}
		raw := body["service"].(map[string]any)["tenants"].([]any)
		if len(raw) != len(want) {
			t.Fatalf("scrape %d: %d tenants, want %d", i, len(raw), len(want))
		}
		for j, tn := range raw {
			if name := tn.(map[string]any)["name"].(string); name != want[j] {
				t.Fatalf("scrape %d: tenants[%d] = %q, want %q", i, j, name, want[j])
			}
		}
	}
}

// TestServiceCanceledNotAnError: a client hanging up mid-query is the
// client's doing, not a service fault — the wire status is 499 (client
// closed request) and the tenant's error counter must not move.
// DESIGN.md §9 names this test.
func TestServiceCanceledNotAnError(t *testing.T) {
	defer faultpoint.DisarmAll()
	db := openTestDB(t, 1)
	defer db.Close()
	s, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	defer faultpoint.Arm("calculus/eval", faultpoint.Once(func() error {
		close(entered)
		<-release
		// The evaluator observes the (by now canceled) request context.
		return context.Canceled
	}))()

	raw, _ := json.Marshal(map[string]any{"query": "select a from a in Articles"})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(rec, req)
	}()
	<-entered
	cancel() // the client hangs up while the query is mid-evaluation
	close(release)
	<-done

	if rec.Code != statusClientClosedRequest {
		t.Fatalf("canceled query: status %d, want %d", rec.Code, statusClientClosedRequest)
	}
	var envelope map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("non-JSON 499 body %q: %v", rec.Body.Bytes(), err)
	}
	if code := errCode(t, envelope); code != sgmldb.CodeCanceled {
		t.Fatalf("canceled query: wire code %q, want %q", code, sgmldb.CodeCanceled)
	}
	if got := s.open.queries.Load(); got != 1 {
		t.Fatalf("canceled query: queries counter = %d, want 1 (it did run)", got)
	}
	if got := s.open.errors.Load(); got != 0 {
		t.Fatalf("client cancellation counted as a tenant error (%d); 499 is not the service's fault", got)
	}
}

// TestServiceStatusForCanceled pins the wire mapping the cancel test
// rides on: CANCELED is 499, SEQ_TRUNCATED is 410.
func TestServiceStatusForCanceled(t *testing.T) {
	if got := statusFor(sgmldb.CodeCanceled); got != statusClientClosedRequest {
		t.Errorf("statusFor(CANCELED) = %d, want %d", got, statusClientClosedRequest)
	}
	if got := statusFor(sgmldb.CodeSeqTruncated); got != http.StatusGone {
		t.Errorf("statusFor(SEQ_TRUNCATED) = %d, want %d", got, http.StatusGone)
	}
	if got := statusFor(sgmldb.CodeNotPrimary); got != http.StatusForbidden {
		t.Errorf("statusFor(NOT_PRIMARY) = %d, want %d", got, http.StatusForbidden)
	}
}
