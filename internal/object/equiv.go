package object

// This file implements the (≡) value equivalence of Section 5.1, which
// blurs the distinction between a tuple and the corresponding
// heterogeneous list:
//
//	[a₁:v₁, …, aₖ:vₖ] ≡ [[a₁:v₁], …, [aₖ:vₖ]]
//
// and, since marked-union values are formally singleton tuples,
//
//	<a: v> ≡ [a: v].
//
// dom is taken over ≡-equivalence classes, so that τ ≤ τ' implies
// dom(τ) ⊆ dom(τ'). The query evaluator relies on the coercions below to
// answer position queries over ordered tuples (Section 4.4, query Q6).

// HeterogeneousList returns the heterogeneous-list view of an ordered
// tuple: the list of its attributes as marked-union values, in attribute
// order.
func HeterogeneousList(t *Tuple) *List {
	elems := make([]Value, t.Len())
	for i := 0; i < t.Len(); i++ {
		f := t.At(i)
		elems[i] = NewUnion(f.Name, f.Value)
	}
	return NewList(elems...)
}

// AsList coerces v to a list when the model views it as one: lists are
// returned as is, and ordered tuples are returned as their heterogeneous
// list. The boolean reports whether the coercion applies.
func AsList(v Value) (*List, bool) {
	switch x := v.(type) {
	case *List:
		return x, true
	case *Tuple:
		return HeterogeneousList(x), true
	default:
		return nil, false
	}
}

// AsTuple coerces v to a tuple view: tuples are returned as is, and a
// marked-union value <a: w> is returned as the singleton tuple [a: w].
func AsTuple(v Value) (*Tuple, bool) {
	switch x := v.(type) {
	case *Tuple:
		return x, true
	case *Union_:
		return NewTuple(Field{Name: x.Marker, Value: x.Value}), true
	default:
		return nil, false
	}
}

// Equiv reports the (≡) equivalence of Section 5.1: strict equality
// extended by the tuple/heterogeneous-list identification and the
// union-value/singleton-tuple identification, applied hereditarily.
func Equiv(v, w Value) bool {
	if v == nil {
		v = Nil{}
	}
	if w == nil {
		w = Nil{}
	}
	if Equal(v, w) {
		return true
	}
	// Union value <a: x> ≡ singleton tuple [a: x].
	if u, ok := v.(*Union_); ok {
		if t, ok := w.(*Tuple); ok && t.Len() == 1 {
			return t.At(0).Name == u.Marker && Equiv(u.Value, t.At(0).Value)
		}
	}
	if u, ok := w.(*Union_); ok {
		if t, ok := v.(*Tuple); ok && t.Len() == 1 {
			return t.At(0).Name == u.Marker && Equiv(u.Value, t.At(0).Value)
		}
	}
	switch a := v.(type) {
	case *Tuple:
		switch b := w.(type) {
		case *Tuple:
			if a.Len() != b.Len() {
				return false
			}
			for i := 0; i < a.Len(); i++ {
				if a.At(i).Name != b.At(i).Name || !Equiv(a.At(i).Value, b.At(i).Value) {
					return false
				}
			}
			return true
		case *List:
			return Equiv(HeterogeneousList(a), b)
		default:
			// kind mismatch: not equivalent
		}
	case *List:
		switch b := w.(type) {
		case *Tuple:
			return Equiv(a, HeterogeneousList(b))
		case *List:
			if a.Len() != b.Len() {
				return false
			}
			for i := 0; i < a.Len(); i++ {
				if !Equiv(a.At(i), b.At(i)) {
					return false
				}
			}
			return true
		default:
			// kind mismatch: not equivalent
		}
	case *Set:
		b, ok := w.(*Set)
		if !ok || a.Len() != b.Len() {
			return false
		}
		// Sets are canonically ordered under Equal but ≡ is coarser, so
		// match greedily.
		used := make([]bool, b.Len())
	outer:
		for i := 0; i < a.Len(); i++ {
			for j := 0; j < b.Len(); j++ {
				if !used[j] && Equiv(a.At(i), b.At(j)) {
					used[j] = true
					continue outer
				}
			}
			return false
		}
		return true
	case *Union_:
		b, ok := w.(*Union_)
		if !ok {
			return false
		}
		return a.Marker == b.Marker && Equiv(a.Value, b.Value)
	default:
		// atoms, oids and nil: Equal above is the whole relation
	}
	return false
}

// UnwrapUnion strips marked-union wrappers from v: for <a: x> it returns x
// (recursively) and for any other value it returns v unchanged. This is
// the runtime counterpart of the "implicit selectors" of Section 4.2: a
// variable ranging over a union-typed domain transparently selects the
// alternative carried by the value.
func UnwrapUnion(v Value) Value {
	for {
		u, ok := v.(*Union_)
		if !ok {
			return v
		}
		v = u.Value
	}
}
