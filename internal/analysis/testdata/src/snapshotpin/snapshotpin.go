// Package snapshotpin is a sgmldbvet fixture: one chain loads the
// published State once and threads it; a reload can observe a
// different epoch.
package snapshotpin

import "sync/atomic"

type State struct{ Epoch uint64 }

type Engine struct{ state atomic.Pointer[State] }

// State performs the primitive load: it is the seed of the pin family.
func (e *Engine) State() *State { return e.state.Load() }

// Epoch only calls family members, so calling it IS loading the
// snapshot: it joins the family.
func (e *Engine) Epoch() uint64 { return e.State().Epoch }

func exec(st *State, q string) uint64 { return st.Epoch + uint64(len(q)) }

// Query pins once and hands the snapshot to execution; the exec call
// keeps it out of the family, so callers may run several queries.
func (e *Engine) Query(q string) uint64 {
	st := e.State()
	return exec(st, q)
}

func torn(e *Engine) (uint64, uint64) {
	epoch := e.Epoch()
	again := e.State().Epoch // want "reloads the published State"
	return epoch, again
}

func pinned(e *Engine) (uint64, uint64) {
	st := e.State()
	return st.Epoch, st.Epoch
}

// Two query chains are two chains, not one torn snapshot.
func twice(e *Engine) uint64 { return e.Query("a") + e.Query("b") }

// Function literals are separate chains, each pinning its own load.
func chains(e *Engine) []uint64 {
	var out []uint64
	for i := 0; i < 2; i++ {
		func() { out = append(out, e.State().Epoch) }()
	}
	return out
}

func audit(e *Engine) (uint64, uint64) {
	before := e.Epoch()
	//lint:allow snapshotpin epochs are compared across a reload deliberately
	after := e.Epoch()
	return before, after
}
