package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"sgmldb"
	"sgmldb/internal/faultpoint"
)

// openTestDB opens an in-memory database over the article corpus with
// ndocs copies loaded, so /v1/query has rows to return.
func openTestDB(t *testing.T, ndocs int) *sgmldb.Database {
	t.Helper()
	dtd, err := os.ReadFile("../../testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("../../testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	db, err := sgmldb.OpenDTD(string(dtd))
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]string, ndocs)
	for i := range srcs {
		srcs[i] = string(doc)
	}
	if _, err := db.LoadDocuments(srcs); err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestServer builds a Server (open mode when cfg is zero) mounted on
// an httptest.Server.
func newTestServer(t *testing.T, db *sgmldb.Database, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// call performs one API call and decodes the JSON response.
func call(t *testing.T, ts *httptest.Server, method, path, key string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: non-JSON response %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, decoded
}

// errCode extracts the wire error code from an error envelope.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

// TestServiceHappyPath drives the whole wire surface in open mode:
// health, ad-hoc query, prepare/execute/close, batch load, stats.
func TestServiceHappyPath(t *testing.T) {
	db := openTestDB(t, 3)
	_, ts := newTestServer(t, db, Config{})

	status, body := call(t, ts, "GET", "/v1/health", "", nil)
	if status != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health: status %d body %v", status, body)
	}

	status, body = call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Fatalf("query: status %d body %v", status, body)
	}
	if n := body["count"].(float64); n != 3 {
		t.Errorf("query: count = %v, want 3", n)
	}
	rows, ok := body["rows"].([]any)
	if !ok || len(rows) != 3 {
		t.Fatalf("query: rows = %v", body["rows"])
	}

	status, body = call(t, ts, "POST", "/v1/prepare", "", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Fatalf("prepare: status %d body %v", status, body)
	}
	h, _ := body["handle"].(string)
	if h == "" {
		t.Fatalf("prepare: no handle in %v", body)
	}
	for i := 0; i < 2; i++ {
		status, body = call(t, ts, "POST", "/v1/execute/"+h, "", nil)
		if status != http.StatusOK || body["count"].(float64) != 3 {
			t.Fatalf("execute %d: status %d body %v", i, status, body)
		}
	}

	doc, err := os.ReadFile("../../testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	status, body = call(t, ts, "POST", "/v1/load", "", map[string]any{"documents": []string{string(doc), string(doc)}})
	if status != http.StatusOK {
		t.Fatalf("load: status %d body %v", status, body)
	}
	if n := body["count"].(float64); n != 2 {
		t.Errorf("load: count = %v, want 2", n)
	}
	// The load is visible to the already-prepared handle (new epoch).
	status, body = call(t, ts, "POST", "/v1/execute/"+h, "", nil)
	if status != http.StatusOK || body["count"].(float64) != 5 {
		t.Fatalf("execute after load: status %d body %v", status, body)
	}

	status, body = call(t, ts, "DELETE", "/v1/execute/"+h, "", nil)
	if status != http.StatusOK {
		t.Fatalf("close: status %d body %v", status, body)
	}
	status, body = call(t, ts, "POST", "/v1/execute/"+h, "", nil)
	if status != http.StatusNotFound || errCode(t, body) != codeUnknownHandle {
		t.Fatalf("execute after close: status %d body %v", status, body)
	}

	status, body = call(t, ts, "GET", "/v1/stats", "", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d body %v", status, body)
	}
	engine, ok := body["engine"].(map[string]any)
	if !ok || engine["QueriesServed"].(float64) < 4 {
		t.Errorf("stats: engine counters missing or low: %v", body["engine"])
	}
}

// TestServiceBadRequests pins the 400 family: malformed JSON, missing
// query field, empty load batch, and an invalid document (422).
func TestServiceBadRequests(t *testing.T) {
	db := openTestDB(t, 1)
	_, ts := newTestServer(t, db, Config{})

	status, body := call(t, ts, "POST", "/v1/query", "", `{"query": not-json`)
	if status != http.StatusBadRequest || errCode(t, body) != codeBadRequest {
		t.Errorf("malformed body: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "POST", "/v1/query", "", map[string]any{})
	if status != http.StatusBadRequest || errCode(t, body) != codeBadRequest {
		t.Errorf("missing query: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select from where"})
	if status != http.StatusBadRequest || errCode(t, body) != sgmldb.CodeParse {
		t.Errorf("parse error: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "POST", "/v1/load", "", map[string]any{"documents": []string{}})
	if status != http.StatusBadRequest || errCode(t, body) != codeBadRequest {
		t.Errorf("empty load: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "POST", "/v1/load", "", map[string]any{"documents": []string{"<not-an-article/>"}})
	if status != http.StatusUnprocessableEntity || errCode(t, body) != codeBadDocument {
		t.Errorf("invalid document: status %d code %q body %v", status, errCode(t, body), body)
	}
	status, body = call(t, ts, "POST", "/v1/execute/h999", "", nil)
	if status != http.StatusNotFound || errCode(t, body) != codeUnknownHandle {
		t.Errorf("unknown handle: status %d code %q", status, errCode(t, body))
	}
}

// TestServiceAuth pins the tenant boundary: no key and wrong key are
// 401, a valid key works, health stays open, and one tenant's prepared
// handle is invisible to another (404, exactly like a nonexistent one).
func TestServiceAuth(t *testing.T) {
	db := openTestDB(t, 1)
	cfg := Config{Tenants: []TenantConfig{
		{Name: "alice", APIKey: "key-a"},
		{Name: "bob", APIKey: "key-b"},
		{Name: "reader", APIKey: "key-r", DenyLoad: true},
	}}
	_, ts := newTestServer(t, db, cfg)

	status, body := call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusUnauthorized || errCode(t, body) != codeUnauthorized {
		t.Errorf("no key: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "POST", "/v1/query", "key-wrong", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusUnauthorized || errCode(t, body) != codeUnauthorized {
		t.Errorf("wrong key: status %d code %q", status, errCode(t, body))
	}
	status, _ = call(t, ts, "GET", "/v1/health", "", nil)
	if status != http.StatusOK {
		t.Errorf("health without key: status %d", status)
	}
	status, body = call(t, ts, "POST", "/v1/query", "key-a", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Errorf("alice query: status %d body %v", status, body)
	}

	status, body = call(t, ts, "POST", "/v1/prepare", "key-a", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Fatalf("alice prepare: status %d body %v", status, body)
	}
	h := body["handle"].(string)
	status, body = call(t, ts, "POST", "/v1/execute/"+h, "key-b", nil)
	if status != http.StatusNotFound || errCode(t, body) != codeUnknownHandle {
		t.Errorf("bob executing alice's handle: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "DELETE", "/v1/execute/"+h, "key-b", nil)
	if status != http.StatusNotFound {
		t.Errorf("bob closing alice's handle: status %d body %v", status, body)
	}
	status, _ = call(t, ts, "POST", "/v1/execute/"+h, "key-a", nil)
	if status != http.StatusOK {
		t.Errorf("alice's handle after bob's attempts: status %d", status)
	}

	doc, err := os.ReadFile("../../testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	status, body = call(t, ts, "POST", "/v1/load", "key-r", map[string]any{"documents": []string{string(doc)}})
	if status != http.StatusForbidden || errCode(t, body) != codeForbidden {
		t.Errorf("deny_load tenant loading: status %d code %q", status, errCode(t, body))
	}
}

// TestServiceTenantIsolation parks one of tenant A's queries inside the
// evaluator, filling A's single concurrency slot, and asserts A's next
// call is shed with 429 while tenant B — same database, same instant —
// still gets 200. That is the isolation contract: one tenant's limit is
// invisible to another.
func TestServiceTenantIsolation(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	db := openTestDB(t, 1)
	cfg := Config{Tenants: []TenantConfig{
		{Name: "small", APIKey: "key-small", MaxConcurrent: 1},
		{Name: "big", APIKey: "key-big"},
	}}
	_, ts := newTestServer(t, db, cfg)

	entered := make(chan struct{})
	release := make(chan struct{})
	defer faultpoint.Arm("calculus/eval", faultpoint.Once(func() error {
		close(entered)
		<-release
		return nil
	}))()

	parked := make(chan int, 1)
	go func() {
		status, _ := call(t, ts, "POST", "/v1/query", "key-small", map[string]any{"query": "select a from a in Articles"})
		parked <- status
	}()
	<-entered // small's slot-holder is parked inside the evaluator

	status, body := call(t, ts, "POST", "/v1/query", "key-small", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusTooManyRequests || errCode(t, body) != codeTenantLimit {
		t.Errorf("small over limit: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "POST", "/v1/query", "key-big", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Errorf("big while small is saturated: status %d body %v", status, body)
	}

	close(release)
	if status := <-parked; status != http.StatusOK {
		t.Errorf("small's parked query: status %d", status)
	}
	// The slot is free again.
	status, _ = call(t, ts, "POST", "/v1/query", "key-small", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Errorf("small after release: status %d", status)
	}
}

// TestServiceTenantBudget pins the limit layering over the wire: a
// tenant row cap kills a query the open database would answer, and the
// client's own max_rows cannot exceed the tenant's grant.
func TestServiceTenantBudget(t *testing.T) {
	// 200 docs so the scan crosses the meter's 64-row poll stride.
	db := openTestDB(t, 200)
	cfg := Config{Tenants: []TenantConfig{
		{Name: "capped", APIKey: "key-c", MaxRows: 1},
		{Name: "free", APIKey: "key-f"},
	}}
	_, ts := newTestServer(t, db, cfg)

	status, body := call(t, ts, "POST", "/v1/query", "key-c", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusUnprocessableEntity || errCode(t, body) != sgmldb.CodeBudget {
		t.Errorf("capped tenant: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "POST", "/v1/query", "key-c", map[string]any{
		"query": "select a from a in Articles", "max_rows": 1_000_000,
	})
	if status != http.StatusUnprocessableEntity || errCode(t, body) != sgmldb.CodeBudget {
		t.Errorf("capped tenant asking for more: status %d code %q", status, errCode(t, body))
	}
	status, _ = call(t, ts, "POST", "/v1/query", "key-f", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Errorf("free tenant: status %d", status)
	}
	status, body = call(t, ts, "POST", "/v1/query", "key-f", map[string]any{
		"query": "select a from a in Articles", "max_rows": 1,
	})
	if status != http.StatusUnprocessableEntity || errCode(t, body) != sgmldb.CodeBudget {
		t.Errorf("free tenant self-capping: status %d code %q", status, errCode(t, body))
	}
}

// TestServicePanicContained injects an evaluator panic and asserts the
// wire reports a clean 500 with the INTERNAL code — and that the server
// keeps serving afterwards.
func TestServicePanicContained(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	db := openTestDB(t, 1)
	_, ts := newTestServer(t, db, Config{})

	disarm := faultpoint.Arm("calculus/eval", faultpoint.Panic("injected evaluator panic"))
	status, body := call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
	disarm()
	if status != http.StatusInternalServerError || errCode(t, body) != sgmldb.CodeInternal {
		t.Errorf("panicking query: status %d code %q body %v", status, errCode(t, body), body)
	}
	status, _ = call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Errorf("query after contained panic: status %d", status)
	}
}

// TestServiceDrain pins the graceful-shutdown handshake: after Drain,
// new calls are rejected with 503 DRAINING and health flips to
// draining, while a request already inside a handler runs to completion.
func TestServiceDrain(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	db := openTestDB(t, 1)
	s, ts := newTestServer(t, db, Config{})

	entered := make(chan struct{})
	release := make(chan struct{})
	defer faultpoint.Arm("calculus/eval", faultpoint.Once(func() error {
		close(entered)
		<-release
		return nil
	}))()

	inflight := make(chan int, 1)
	go func() {
		status, _ := call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
		inflight <- status
	}()
	<-entered
	s.Drain()

	status, body := call(t, ts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusServiceUnavailable || errCode(t, body) != codeDraining {
		t.Errorf("query while draining: status %d code %q", status, errCode(t, body))
	}
	status, body = call(t, ts, "GET", "/v1/health", "", nil)
	if status != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Errorf("health while draining: status %d body %v", status, body)
	}

	close(release)
	select {
	case status := <-inflight:
		if status != http.StatusOK {
			t.Errorf("in-flight query during drain: status %d", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query did not complete after release")
	}
}

// TestServiceHandleLimit fills a tenant's handle quota and asserts the
// next prepare is rejected with 429 HANDLE_LIMIT until a handle closes.
func TestServiceHandleLimit(t *testing.T) {
	db := openTestDB(t, 1)
	cfg := Config{Tenants: []TenantConfig{{Name: "t", APIKey: "k", MaxHandles: 2}}}
	_, ts := newTestServer(t, db, cfg)

	handles := make([]string, 2)
	for i := range handles {
		status, body := call(t, ts, "POST", "/v1/prepare", "k", map[string]any{
			"query": fmt.Sprintf("select a from a in Articles where %d = %d", i, i),
		})
		if status != http.StatusOK {
			t.Fatalf("prepare %d: status %d body %v", i, status, body)
		}
		handles[i] = body["handle"].(string)
	}
	status, body := call(t, ts, "POST", "/v1/prepare", "k", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusTooManyRequests || errCode(t, body) != codeHandleLimit {
		t.Errorf("over handle quota: status %d code %q", status, errCode(t, body))
	}
	status, _ = call(t, ts, "DELETE", "/v1/execute/"+handles[0], "k", nil)
	if status != http.StatusOK {
		t.Fatalf("close: status %d", status)
	}
	status, _ = call(t, ts, "POST", "/v1/prepare", "k", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK {
		t.Errorf("prepare after close: status %d", status)
	}
}

// TestParseConfig pins the tenants-file validation rules.
func TestParseConfig(t *testing.T) {
	good := `{"tenants": [
		{"name": "a", "api_key": "ka", "max_concurrent": 2, "max_rows": 100},
		{"name": "b", "api_key": "kb", "deny_load": true}
	]}`
	cfg, err := ParseConfig([]byte(good))
	if err != nil {
		t.Fatalf("good config: %v", err)
	}
	if len(cfg.Tenants) != 2 || cfg.Tenants[0].MaxConcurrent != 2 || !cfg.Tenants[1].DenyLoad {
		t.Errorf("good config parsed wrong: %+v", cfg)
	}
	bad := []string{
		`{"tenants": [{"api_key": "k"}]}`,                                    // no name
		`{"tenants": [{"name": "a"}]}`,                                       // no key
		`{"tenants": [{"name": "a", "api_key": "k"}, {"name": "a", "api_key": "k2"}]}`, // dup name
		`{"tenants": [{"name": "a", "api_key": "k"}, {"name": "b", "api_key": "k"}]}`,  // dup key
		`{"tenants": [{"name": "a", "api_key": "k", "max_rows": -1}]}`,       // negative limit
		`{"tenants": `, // malformed JSON
	}
	for _, src := range bad {
		if _, err := ParseConfig([]byte(src)); err == nil {
			t.Errorf("ParseConfig(%s) accepted invalid config", src)
		}
	}
}
