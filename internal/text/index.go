package text

import (
	"sort"
	"sync"
)

// DocID identifies an indexed document (the caller typically uses object
// identifiers).
type DocID uint64

// posting is the occurrence list of one word in one document.
type posting struct {
	doc       DocID
	positions []int // word positions, ascending
}

// Index is a positional inverted index: the full-text indexing mechanism
// whose integration Section 4.1 and Section 6 call for. It answers
// contains expressions (boolean combinations of patterns) and near
// predicates without scanning document text.
//
// An Index is safe for concurrent use: Add takes the write lock, every
// reader (Lookup, Eval, Docs, …) the read lock, so any number of queries
// can evaluate contains expressions while one loader indexes documents.
type Index struct {
	mu    sync.RWMutex
	vocab map[string][]posting // word -> postings, docs ascending
	docs  map[DocID]bool
	order []DocID // insertion order
	// sortMu guards the lazily built sortedWords cache, which readers
	// (holding only mu.RLock) may need to build. Lock order: mu before
	// sortMu.
	sortMu sync.Mutex
	// sortedWords caches the vocabulary for pattern scans; invalidated on
	// Add.
	sortedWords []string
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{vocab: make(map[string][]posting), docs: make(map[DocID]bool)}
}

// Add indexes the text of one document. Adding the same document twice
// replaces nothing — positions accumulate — so callers index each
// document once.
func (ix *Index) Add(doc DocID, text string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.docs[doc] {
		ix.docs[doc] = true
		ix.order = append(ix.order, doc)
	}
	ix.sortMu.Lock()
	ix.sortedWords = nil
	ix.sortMu.Unlock()
	for _, t := range Tokenize(text) {
		ps := ix.vocab[t.Word]
		if n := len(ps); n > 0 && ps[n-1].doc == doc {
			ps[n-1].positions = append(ps[n-1].positions, t.Pos)
		} else {
			ps = append(ps, posting{doc: doc, positions: []int{t.Pos}})
		}
		ix.vocab[t.Word] = ps
	}
}

// Size reports the number of indexed documents.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// VocabularySize reports the number of distinct words.
func (ix *Index) VocabularySize() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vocab)
}

// Docs returns all indexed documents in insertion order.
func (ix *Index) Docs() []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]DocID, len(ix.order))
	copy(out, ix.order)
	return out
}

// Lookup returns the documents containing the word, ascending.
func (ix *Index) Lookup(word string) []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ps := ix.vocab[word]
	out := make([]DocID, len(ps))
	for i, p := range ps {
		out[i] = p.doc
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matchingWords scans the vocabulary with a pattern. Bare literals skip
// the scan. Callers hold at least ix.mu.RLock.
func (ix *Index) matchingWords(p *Pattern) []string {
	if lit, ok := p.Literal(); ok {
		if _, present := ix.vocab[lit]; present {
			return []string{lit}
		}
		return nil
	}
	var out []string
	for _, w := range ix.sorted() {
		if p.Match(w) {
			out = append(out, w)
		}
	}
	return out
}

// sorted returns the sorted vocabulary, (re)building the cache under its
// own mutex so that concurrent readers — who hold only mu.RLock — do not
// race on the cache. Add invalidates it under mu.Lock, which excludes all
// readers, so the cache a reader builds here is consistent with the
// vocabulary it scans.
func (ix *Index) sorted() []string {
	ix.sortMu.Lock()
	defer ix.sortMu.Unlock()
	if ix.sortedWords == nil {
		ix.sortedWords = make([]string, 0, len(ix.vocab))
		for w := range ix.vocab {
			ix.sortedWords = append(ix.sortedWords, w)
		}
		sort.Strings(ix.sortedWords)
	}
	return ix.sortedWords
}

// Eval answers a contains expression from the index: the set of documents
// whose text satisfies expr, ascending by DocID.
//
// Pattern atoms are evaluated at word granularity (a pattern matches a
// document if it matches one of the document's words), which is the IRS
// convention the index supports; multi-word literal atoms are evaluated as
// a phrase using positions. Negation complements against the set of all
// indexed documents.
func (ix *Index) Eval(expr Expr) []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := ix.eval(expr)
	out := make([]DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (ix *Index) eval(expr Expr) map[DocID]bool {
	switch e := expr.(type) {
	case MatchExpr:
		if lit, ok := e.Pattern.Literal(); ok {
			words := Words(lit)
			if len(words) > 1 {
				return ix.phrase(words)
			}
			if len(words) == 1 {
				return ix.docsWith(words[0])
			}
			return map[DocID]bool{}
		}
		out := map[DocID]bool{}
		for _, w := range ix.matchingWords(e.Pattern) {
			for d := range ix.docsWith(w) {
				out[d] = true
			}
		}
		return out
	case AndExpr:
		l := ix.eval(e.L)
		r := ix.eval(e.R)
		out := map[DocID]bool{}
		for d := range l {
			if r[d] {
				out[d] = true
			}
		}
		return out
	case OrExpr:
		out := ix.eval(e.L)
		for d := range ix.eval(e.R) {
			out[d] = true
		}
		return out
	case NotExpr:
		inner := ix.eval(e.E)
		out := map[DocID]bool{}
		for d := range ix.docs {
			if !inner[d] {
				out[d] = true
			}
		}
		return out
	case NearExpr:
		return ix.near(e)
	default:
		return map[DocID]bool{}
	}
}

func (ix *Index) docsWith(word string) map[DocID]bool {
	out := map[DocID]bool{}
	for _, p := range ix.vocab[word] {
		out[p.doc] = true
	}
	return out
}

// phrase finds documents containing the words consecutively.
func (ix *Index) phrase(words []string) map[DocID]bool {
	out := map[DocID]bool{}
	if len(words) == 0 {
		return out
	}
	first := ix.vocab[words[0]]
	for _, p := range first {
		for _, pos := range p.positions {
			ok := true
			for k := 1; k < len(words); k++ {
				if !ix.hasAt(words[k], p.doc, pos+k) {
					ok = false
					break
				}
			}
			if ok {
				out[p.doc] = true
				break
			}
		}
	}
	return out
}

func (ix *Index) hasAt(word string, doc DocID, pos int) bool {
	for _, p := range ix.vocab[word] {
		if p.doc != doc {
			continue
		}
		i := sort.SearchInts(p.positions, pos)
		return i < len(p.positions) && p.positions[i] == pos
	}
	return false
}

// near answers a word-distance predicate from positions.
func (ix *Index) near(e NearExpr) map[DocID]bool {
	out := map[DocID]bool{}
	a := ix.postingsOf(e.A)
	b := ix.postingsOf(e.B)
	for doc, aPos := range a {
		bPos, ok := b[doc]
		if !ok {
			continue
		}
		if nearPositions(aPos, bPos, e.Dist) {
			out[doc] = true
		}
	}
	return out
}

func (ix *Index) postingsOf(word string) map[DocID][]int {
	out := map[DocID][]int{}
	for _, t := range Tokenize(word) {
		// near operands are single words; Tokenize normalises case.
		word = t.Word
		break
	}
	for _, p := range ix.vocab[word] {
		out[p.doc] = p.positions
	}
	return out
}

// nearPositions reports whether some a-position and b-position are within
// dist words (exclusive of the words themselves, matching NearExpr.Eval).
func nearPositions(as, bs []int, dist int) bool {
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		d := as[i] - bs[j]
		if d < 0 {
			d = -d
		}
		if d > 0 && d-1 <= dist {
			return true
		}
		if as[i] < bs[j] {
			i++
		} else {
			j++
		}
	}
	return false
}
