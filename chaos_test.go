package sgmldb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/object"
)

// The chaos suite (make chaos runs it under -race) injects faults at the
// named faultpoint sites and asserts the robustness contract of
// DESIGN.md §7: a failed or panicking load never publishes (epoch, root
// bindings and index version are exactly what they were, and nothing
// staged leaks into the next successful load), a query over budget fails
// alone, and a panicking evaluation surfaces as ErrInternal while the
// database keeps serving.

var errBoom = errors.New("boom (injected)")

// openChaosDB opens an article database with the given options, loads
// one document, names it my_article, and registers faultpoint hygiene.
func openChaosDB(t *testing.T, opts ...Option) *Database {
	t.Helper()
	t.Cleanup(faultpoint.DisarmAll)
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDTD(string(dtd), opts...)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocumentFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("my_article", oid); err != nil {
		t.Fatal(err)
	}
	return db
}

func articleSrc(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

const chaosQuery = `select t from my_article PATH_p.title(t)`

// mustQuery runs a query that must succeed and return a non-empty set.
func mustQuery(t *testing.T, db *Database, q string) *object.Set {
	t.Helper()
	v, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	s, ok := v.(*object.Set)
	if !ok || s.Len() == 0 {
		t.Fatalf("query %q = %v, want non-empty set", q, v)
	}
	return s
}

// TestChaosSitesEnumerated pins the set of injection sites: adding a
// faultpoint without extending the chaos suite (or removing one a test
// still arms) fails here first.
func TestChaosSitesEnumerated(t *testing.T) {
	want := []string{
		"algebra/plan-run",
		"calculus/eval",
		"dtdmap/load-doc",
		"dtdmap/set-root",
		"oql/plan-recompile",
		"service/feed-stream",
		"service/follower-apply",
		"text/index-add",
		"text/index-clone",
		"wal/append",
		"wal/append-sync-error",
		"wal/checkpoint-rename",
		"wal/checkpoint-write",
		"wal/ckpt-write",
		"wal/dir-sync",
		"wal/post-append",
		"wal/post-fsync",
		"wal/rewind-truncate",
		"wal/truncate-reopen",
	}
	if got := faultpoint.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("faultpoint.Names() = %v, want %v", got, want)
	}
}

// loadFaultCases enumerates the staging-path sites together with how
// their injected failure surfaces: an error return from the loader, or a
// panic (sites without an error return) contained as ErrInternal.
// Per-document sites fail on the second hit, so the batch dies with one
// document already staged; per-batch sites are hit once and fail there.
var loadFaultCases = []struct {
	site     string
	perDoc   bool
	asPanics bool
}{
	{"dtdmap/load-doc", true, false},
	{"dtdmap/set-root", false, false},
	{"text/index-clone", false, true},
	{"text/index-add", true, true},
}

// TestChaosFailedLoadPublishesNothing injects a failure at every staging
// site — including mid-batch, after a document has already been staged —
// and asserts the published state is untouched: same epoch, same index
// version, same query answers, and no staged object leaking into the
// next (successful) load.
func TestChaosFailedLoadPublishesNothing(t *testing.T) {
	for _, tc := range loadFaultCases {
		t.Run(tc.site, func(t *testing.T) {
			db := openChaosDB(t)
			src := articleSrc(t)
			epoch0 := db.Epoch()
			index0 := db.state().Index
			docs0 := len(db.Loader.Documents())
			titles0 := mustQuery(t, db, chaosQuery).Len()

			inject := faultpoint.Error(errBoom)
			if tc.perDoc {
				// After(1): the first hit passes, so the batch fails with
				// one document already staged.
				inject = faultpoint.After(1, inject)
			}
			disarm := faultpoint.Arm(tc.site, inject)
			_, err := db.LoadDocuments([]string{src, src})
			disarm()
			if err == nil {
				t.Fatalf("LoadDocuments with %s armed: err = nil", tc.site)
			}
			if tc.asPanics {
				if !errors.Is(err, ErrInternal) {
					t.Errorf("err = %v, want errors.Is ErrInternal (panic containment)", err)
				}
			} else if !errors.Is(err, errBoom) {
				t.Errorf("err = %v, want errors.Is errBoom", err)
			}

			if got := db.Epoch(); got != epoch0 {
				t.Errorf("epoch after failed load = %d, want %d (unchanged)", got, epoch0)
			}
			if got := db.state().Index; got != index0 {
				t.Errorf("index version changed by a failed load")
			}
			if got := len(db.Loader.Documents()); got != docs0 {
				t.Errorf("loader documents after failed load = %d, want %d (rollback)", got, docs0)
			}
			if got := mustQuery(t, db, chaosQuery).Len(); got != titles0 {
				t.Errorf("titles after failed load = %d, want %d", got, titles0)
			}

			// The next load must succeed and contain exactly its own batch:
			// nothing from the failed one leaks through.
			oids, err := db.LoadDocuments([]string{src, src})
			if err != nil {
				t.Fatalf("LoadDocuments after disarm: %v", err)
			}
			if len(oids) != 2 {
				t.Fatalf("oids = %v, want 2", oids)
			}
			if got := len(db.Loader.Documents()); got != docs0+2 {
				t.Errorf("loader documents after recovery load = %d, want %d", got, docs0+2)
			}
			if got := db.Epoch(); got != epoch0+1 {
				t.Errorf("epoch after recovery load = %d, want %d", got, epoch0+1)
			}
		})
	}
}

// TestChaosReadersServeAcrossFailedLoad holds a load open mid-batch
// (first document staged, fault pending) and asserts concurrent readers
// keep answering from the old snapshot, before letting the load fail and
// checking nothing was published.
func TestChaosReadersServeAcrossFailedLoad(t *testing.T) {
	db := openChaosDB(t, WithAlgebra(true))
	src := articleSrc(t)
	epoch0 := db.Epoch()
	titles0 := mustQuery(t, db, chaosQuery).Len()

	entered := make(chan struct{})
	release := make(chan struct{})
	defer faultpoint.Arm("dtdmap/load-doc", faultpoint.After(1, func() error {
		close(entered)
		<-release
		return errBoom
	}))()

	loadErr := make(chan error, 1)
	go func() {
		_, err := db.LoadDocuments([]string{src, src})
		loadErr <- err
	}()

	<-entered // the load is mid-batch: one document staged, writer lock held
	for i := 0; i < 4; i++ {
		if got := mustQuery(t, db, chaosQuery).Len(); got != titles0 {
			t.Errorf("mid-load query %d: titles = %d, want %d", i, got, titles0)
		}
	}
	if got := db.Epoch(); got != epoch0 {
		t.Errorf("epoch mid-load = %d, want %d", got, epoch0)
	}
	close(release)
	if err := <-loadErr; !errors.Is(err, errBoom) {
		t.Errorf("load err = %v, want errBoom", err)
	}
	if got := db.Epoch(); got != epoch0 {
		t.Errorf("epoch after failed load = %d, want %d", got, epoch0)
	}
	if got := mustQuery(t, db, chaosQuery).Len(); got != titles0 {
		t.Errorf("titles after failed load = %d, want %d", got, titles0)
	}
}

// TestChaosEvaluatorPanicContained panics inside both evaluators and
// asserts the query fails with ErrInternal while the database keeps
// serving — including the prepared-statement entry points.
func TestChaosEvaluatorPanicContained(t *testing.T) {
	cases := []struct {
		name string
		site string
		opts []Option
	}{
		{"naive", "calculus/eval", nil},
		{"algebra", "algebra/plan-run", []Option{WithAlgebra(true)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := openChaosDB(t, tc.opts...)
			pq, err := db.Prepare(chaosQuery)
			if err != nil {
				t.Fatal(err)
			}
			disarm := faultpoint.Arm(tc.site, faultpoint.Panic("injected evaluator panic"))
			if _, err := db.Query(chaosQuery); !errors.Is(err, ErrInternal) {
				t.Errorf("Query under panic: err = %v, want errors.Is ErrInternal", err)
			}
			if _, err := db.QueryRows(chaosQuery); !errors.Is(err, ErrInternal) {
				t.Errorf("QueryRows under panic: err = %v, want errors.Is ErrInternal", err)
			}
			if _, err := pq.Run(context.Background()); !errors.Is(err, ErrInternal) {
				t.Errorf("Prepared.Run under panic: err = %v, want errors.Is ErrInternal", err)
			}
			disarm()
			// The database kept serving: same query, clean answer.
			mustQuery(t, db, chaosQuery)
			if _, err := pq.Run(context.Background()); err != nil {
				t.Errorf("Prepared.Run after disarm: %v", err)
			}
		})
	}
}

// TestChaosRecompileFaultIsTransient fails one plan compilation (the
// path every cached plan takes after a schema change) and asserts the
// failure is per-query: the next attempt compiles and answers.
func TestChaosRecompileFaultIsTransient(t *testing.T) {
	db := openChaosDB(t, WithAlgebra(true))
	defer faultpoint.Arm("oql/plan-recompile", faultpoint.Once(faultpoint.Error(errBoom)))()
	if _, err := db.Query(chaosQuery); !errors.Is(err, errBoom) {
		t.Fatalf("query with recompile fault: err = %v, want errBoom", err)
	}
	mustQuery(t, db, chaosQuery) // transient: the retry compiles and serves
}

// TestChaosBudgetTripsAlone gives the database a memory budget that an
// Articles scan blows but a single-document query fits, and asserts the
// expensive query fails with ErrBudgetExceeded — concurrently with cheap
// queries that all succeed, since every execution meters independently.
func TestChaosBudgetTripsAlone(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"naive", []Option{WithMaxMemory(8192)}},
		{"algebra", []Option{WithAlgebra(true), WithMaxMemory(8192)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			db := openChaosDB(t, mode.opts...)
			src := articleSrc(t)
			batch := make([]string, 8)
			for i := range batch {
				batch[i] = src
			}
			if _, err := db.LoadDocuments(batch); err != nil {
				t.Fatal(err)
			}
			const expensive = `select t from a in Articles, b in Articles, a PATH_p.title(t)`
			var wg sync.WaitGroup
			errc := make(chan error, 8)
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := db.Query(chaosQuery); err != nil {
						errc <- fmt.Errorf("cheap query: %w", err)
					}
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := db.Query(expensive); !errors.Is(err, ErrBudgetExceeded) {
						errc <- fmt.Errorf("expensive query: err = %w, want ErrBudgetExceeded", err)
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

// TestChaosQueryTimeoutTrips asserts the wall-clock budget axis: an
// (already expired) per-query deadline fails evaluation at its first
// poll with ErrBudgetExceeded, on both evaluators, and only while
// configured.
func TestChaosQueryTimeoutTrips(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"naive", []Option{WithQueryTimeout(time.Nanosecond)}},
		{"algebra", []Option{WithAlgebra(true), WithQueryTimeout(time.Nanosecond)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			db := openChaosDB(t, mode.opts...)
			if _, err := db.Query(chaosQuery); !errors.Is(err, ErrBudgetExceeded) {
				t.Errorf("query under 1ns budget: err = %v, want errors.Is ErrBudgetExceeded", err)
			}
			// The same database without the budget (fresh open) answers.
			clean := openChaosDB(t)
			mustQuery(t, clean, chaosQuery)
		})
	}
}

// TestChaosAdmissionShedsAndRecovers fills the single admission slot
// with a query parked inside the evaluator, asserts a second query is
// shed with ErrOverloaded after the queue timeout (and with the caller's
// context error when that fires first), then releases the slot and
// checks the gate serves again.
func TestChaosAdmissionShedsAndRecovers(t *testing.T) {
	db := openChaosDB(t, WithMaxConcurrentQueries(1), WithQueueTimeout(25*time.Millisecond))
	entered := make(chan struct{})
	release := make(chan struct{})
	defer faultpoint.Arm("calculus/eval", faultpoint.Once(func() error {
		close(entered)
		<-release
		return nil
	}))()

	done := make(chan error, 1)
	go func() {
		_, err := db.Query(chaosQuery)
		done <- err
	}()
	<-entered // the slot-holder is parked inside Eval

	if _, err := db.Query(chaosQuery); !errors.Is(err, ErrOverloaded) {
		t.Errorf("second query: err = %v, want errors.Is ErrOverloaded", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, chaosQuery); !errors.Is(err, context.Canceled) {
		t.Errorf("queued query with cancelled ctx: err = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("slot-holding query: %v", err)
	}
	mustQuery(t, db, chaosQuery) // the slot is free again
}
