package sgmldb

import (
	"errors"

	"sgmldb/internal/calculus"
	"sgmldb/internal/oql"
	"sgmldb/internal/wal"
)

// Sentinel errors returned (wrapped) by the Database API; test with
// errors.Is.
var (
	// ErrReadOnly is returned by LoadDocument on a snapshot database,
	// which has no DTD mapping to parse and load documents with.
	ErrReadOnly = errors.New("sgmldb: snapshot databases are read-only for documents")

	// ErrUnknownObject is returned when an operation refers to an oid that
	// is not assigned in the instance.
	ErrUnknownObject = errors.New("sgmldb: unknown object")

	// ErrNoMapping is returned by operations that need the DTD mapping
	// (e.g. Export) on a database opened without one.
	ErrNoMapping = errors.New("sgmldb: operation requires the DTD mapping (open with OpenDTD)")

	// ErrOverloaded is returned when admission control sheds a query: the
	// database already runs WithMaxConcurrentQueries queries and the
	// caller's wait exceeded WithQueueTimeout. Overload is the caller's
	// signal to back off (or retry elsewhere); the queries already admitted
	// are unaffected.
	ErrOverloaded = errors.New("sgmldb: overloaded, query shed by admission control")

	// ErrBudgetExceeded is returned when a query exhausts its resource
	// budget (WithMaxRows, WithMaxMemory, WithQueryTimeout). The message
	// carries the cost accrued up to the trip point. Only the offending
	// query fails; the database and other in-flight queries are unaffected.
	// It aliases the internal sentinel so errors.Is works across layers.
	ErrBudgetExceeded = calculus.ErrBudgetExceeded

	// ErrInternal is returned when an evaluation panics: the panic is
	// contained at the API boundary (or at the spawning worker), converted
	// to an error wrapping this sentinel together with the panic value and
	// stack, and the database keeps serving from its published snapshot.
	ErrInternal = calculus.ErrInternal

	// ErrParse is returned when a query source is not well-formed O₂SQL:
	// every lexical and syntactic rejection wraps it. It aliases the
	// internal sentinel so errors.Is works across layers.
	ErrParse = oql.ErrParse

	// ErrTypecheck is returned when a well-formed query fails the static
	// Section 4.2 checks (and by the paper's deferred execution-time type
	// errors). It aliases the internal sentinel so errors.Is works across
	// layers.
	ErrTypecheck = oql.ErrTypecheck

	// ErrCorruptLog is returned by OpenDTD(..., WithDataDir(dir)) when the
	// write-ahead log in dir is damaged somewhere other than its tail. A
	// torn tail record is the normal signature of a crash and is truncated
	// silently during recovery; corruption before the tail means durable
	// history was lost, which recovery refuses to guess around. It aliases
	// the internal sentinel so errors.Is works across layers.
	ErrCorruptLog = wal.ErrCorruptLog

	// ErrUnsupportedVersion is returned by OpenDTD(..., WithDataDir(dir))
	// when dir was written by an older on-disk format version this build
	// cannot read in place (a pre-term v1 log or checkpoint). Unlike
	// ErrCorruptLog the data is healthy — rebuild the directory under the
	// current format by re-loading the documents or re-bootstrapping from
	// a current primary. It aliases the internal sentinel so errors.Is
	// works across layers.
	ErrUnsupportedVersion = wal.ErrUnsupportedVersion

	// ErrDegraded is returned by writers (LoadDocument, LoadDocuments,
	// Name) on a durable database whose write-ahead log was poisoned by a
	// storage fault (a failed fsync, a full disk, a lost handle). The
	// database is degraded, not down: readers keep serving the last
	// published epoch and the replication feed keeps shipping the durable
	// prefix, but nothing new can be made durable, so nothing new is
	// accepted. The wrapped cause (wal.ErrPoisoned with its classified
	// root) says why; recovery is operational — fix the storage, then
	// reopen (fsck first if in doubt).
	ErrDegraded = errors.New("sgmldb: degraded (read-only): a storage fault poisoned the write-ahead log")

	// ErrNotPrimary is returned by the replication feed accessors
	// (FeedFrames, FeedWatch, FeedSeq, NewestCheckpointFile) on a database
	// without a write-ahead log: only a durable primary has history to
	// ship to followers.
	ErrNotPrimary = errors.New("sgmldb: not a primary (no write-ahead log to ship)")

	// ErrSeqTruncated is returned by FeedFrames when the requested anchor
	// precedes the retained log — a checkpoint dropped that prefix, and
	// the follower must bootstrap from a checkpoint instead of tailing
	// frames. It aliases the internal sentinel so errors.Is works across
	// layers.
	ErrSeqTruncated = wal.ErrSeqTruncated

	// ErrStaleTerm is returned when a promotion elsewhere has superseded
	// the caller's view of the log: a fenced old primary refusing writes
	// after observing a higher term, a feed anchor whose term diverges
	// from the serving log's history, a shipped record from a deposed
	// source. The write side must stop; the follower side must bootstrap
	// from the current primary. It aliases the internal sentinel so
	// errors.Is works across layers.
	ErrStaleTerm = wal.ErrStaleTerm

	// ErrReplicaGap is returned by ApplyRecord when a shipped record skips
	// past the follower's applied position — the stream lost records (a
	// mid-poll reconnect against a primary whose retained log moved, an
	// interrupted bootstrap). Applying around a gap would fork the replica
	// from the primary's history, so the follower must re-bootstrap from a
	// checkpoint instead.
	ErrReplicaGap = errors.New("sgmldb: replica stream gap; checkpoint re-bootstrap required")

	// ErrNotFollower is returned by the follower-only operations (Promote,
	// ApplyCheckpoint, ApplyRecord) on a database that is not (or is no
	// longer) a follower.
	ErrNotFollower = errors.New("sgmldb: not a follower")
)
