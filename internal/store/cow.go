package store

import "sgmldb/internal/object"

// Copy-on-write instance versions. A document load must be atomic: either
// every object it creates becomes visible, or none does. Mutating the
// shared (π, ν, μ, γ) maps in place cannot provide that — an error halfway
// through a load leaves orphan objects behind — and it forces readers to
// block for the whole load. Instead, writers stage their changes in a
// private *delta layer* chained over the published instance (Begin), and
// the owner publishes the staged layer with one atomic pointer swap only
// if the whole load succeeded. A failed load simply drops the layer.
//
// Readers that pinned the old version keep reading it: published layers
// are never mutated again, so pinned reads need no locks at all. The
// layer chain is bounded by maxCOWDepth — Begin flattens the chain into a
// fresh single-layer instance once it grows past that, so the per-read
// chain walk stays O(1) amortised while the flatten cost is paid by the
// writer, not the readers.

// maxCOWDepth bounds the delta-layer chain. Reads walk the chain on a
// miss, so depth is a direct multiplier on worst-case Deref cost; 8 keeps
// the walk trivial while amortising the O(objects) flatten over 8 loads.
const maxCOWDepth = 8

// Epoch reports the instance's version number: 0 for a fresh instance,
// incremented by every Begin. Epochs order the published versions of one
// database; two instances from different Begin chains are not comparable.
func (in *Instance) Epoch() uint64 { return in.epoch }

// Begin starts a new copy-on-write layer over the instance: an Instance
// that reads through to the receiver but stages every mutation (NewObject,
// SetValue, SetRoot, BindMethod) privately. The receiver is not touched —
// it can keep serving readers — and the staged layer becomes durable only
// when the caller publishes it (e.g. swaps it into an atomic pointer).
// Discarding the returned instance discards the staged mutations
// wholesale, which is what makes failed loads atomic.
//
// The receiver must not be mutated directly after Begin: the staged layer
// shares its maps by reference.
func (in *Instance) Begin() *Instance {
	if in.depth >= maxCOWDepth {
		f := in.flatten()
		f.epoch = in.epoch + 1
		return f
	}
	return &Instance{
		schema: in.schema,
		nextID: in.nextID,
		base:   in,
		depth:  in.depth + 1,
		epoch:  in.epoch + 1,
		class:  make(map[object.OID]string),
		extent: make(map[string][]object.OID),
		values: make(map[object.OID]object.Value),
		roots:  make(map[string]object.Value),
		method: make(map[string]Method),
	}
}

// flatten merges the whole layer chain into a fresh single-layer instance
// with the same contents, schema and epoch. Newer layers win where a key
// is shadowed (ν after fixups, rebound roots).
func (in *Instance) flatten() *Instance {
	out := &Instance{
		schema: in.schema,
		nextID: in.nextID,
		epoch:  in.epoch,
		class:  make(map[object.OID]string, in.NumObjects()),
		extent: make(map[string][]object.OID),
		values: make(map[object.OID]object.Value, in.NumObjects()),
		roots:  make(map[string]object.Value),
		method: make(map[string]Method),
	}
	// Walk the chain bottom-up so appends preserve creation order and
	// top-layer writes overwrite base entries last.
	var layers []*Instance
	for l := in; l != nil; l = l.base {
		layers = append(layers, l)
	}
	for i := len(layers) - 1; i >= 0; i-- {
		l := layers[i]
		for o, c := range l.class {
			out.class[o] = c
		}
		for c, es := range l.extent {
			out.extent[c] = append(out.extent[c], es...)
		}
		for o, v := range l.values {
			out.values[o] = v
		}
		for g, v := range l.roots {
			out.roots[g] = v
		}
		for k, m := range l.method {
			out.method[k] = m
		}
	}
	return out
}

// Depth reports the length of the copy-on-write chain under the instance
// (0 for a flat instance); exposed for tests and diagnostics.
func (in *Instance) Depth() int { return in.depth }

// SetEpoch re-anchors the instance's version number. Recovery uses it: an
// instance deserialized from a checkpoint starts at epoch 0, but the
// epochs it publishes must continue the pre-crash sequence so that the
// recovered database reports exactly the epoch that was durable.
func (in *Instance) SetEpoch(e uint64) { in.epoch = e }

// Discard releases a staged layer that will never be published: it drops
// the layer's maps and its reference to the base chain so an abandoned
// load's staging becomes garbage immediately rather than living until the
// *Instance itself is collected. The instance is unusable afterwards.
func (in *Instance) Discard() {
	in.base = nil
	in.class = nil
	in.extent = nil
	in.values = nil
	in.roots = nil
	in.method = nil
}

// AdoptSchema swaps the instance's schema pointer. It is meant for staged
// layers only (between Begin and publish): declaring a new persistence
// root at run time must not mutate the schema that older pinned versions
// still read, so the writer clones the schema, adds the root to the
// clone, and adopts it on the staged layer before publishing.
func (in *Instance) AdoptSchema(s *Schema) { in.schema = s }

// Snapshot pins one published instance version: the version readers hold
// for the duration of a query so every Deref, extent scan and root lookup
// answers against a single consistent (π, ν, μ, γ).
type Snapshot struct {
	Inst  *Instance
	Epoch uint64
}

// Snapshot captures the instance as a pinnable version.
func (in *Instance) Snapshot() Snapshot { return Snapshot{Inst: in, Epoch: in.epoch} }

// eachValue visits every assigned (oid, ν(oid)) pair exactly once, newer
// layers shadowing older ones.
func (in *Instance) eachValue(f func(object.OID, object.Value)) {
	if in.base == nil {
		for o, v := range in.values {
			f(o, v)
		}
		return
	}
	seen := make(map[object.OID]bool)
	for l := in; l != nil; l = l.base {
		for o, v := range l.values {
			if !seen[o] {
				seen[o] = true
				f(o, v)
			}
		}
	}
}

// eachRoot visits every assigned root exactly once, newer layers
// shadowing older ones.
func (in *Instance) eachRoot(f func(string, object.Value)) {
	if in.base == nil {
		for g, v := range in.roots {
			f(g, v)
		}
		return
	}
	seen := make(map[string]bool)
	for l := in; l != nil; l = l.base {
		for g, v := range l.roots {
			if !seen[g] {
				seen[g] = true
				f(g, v)
			}
		}
	}
}
