package object

// Subtype implements the sub-typing relation ≤ of Section 5.1: the O₂
// rules (reflexivity, class inheritance, any as the top of the class
// lattice, covariant sets and lists, width-and-depth tuple subtyping)
// extended with the paper's two new rules:
//
//	[aᵢ:τᵢ] ≤ (… + aᵢ:τᵢ + …)                      (tuple into marked union)
//	[a₁:τ₁, …, aₙ:τₙ] ≤ [(a₁:τ₁ + … + aₙ:τₙ)]      (tuple as heterogeneous list)
//
// As a consequence of the first rule together with tuple width subtyping,
// [a₁:τ₁,…,aₙ:τₙ] ≤ [aᵢ:τᵢ] ≤ (a₁:τ₁+…+aₙ:τₙ) for every i.
//
// Tuple width subtyping is attribute-set based (the O₂/IQL tradition): a
// tuple type with more attributes is a subtype of one with fewer,
// regardless of attribute positions. Ordering of attributes is meaningful
// for *values* (two permuted tuples are distinct values) and for the
// heterogeneous-list view, but not for the subtype lattice; this matches
// the paper's dom definition, which quotients by the (≡) equivalence.
func Subtype(h *Hierarchy, t, u Type) bool {
	if t == nil || u == nil {
		return false
	}
	if TypeEqual(t, u) {
		return true
	}
	switch ut := u.(type) {
	case AnyType:
		// any is the top of the class hierarchy: its domain contains all
		// oids, so only class types (and any itself) are below it.
		switch t.(type) {
		case ClassType, AnyType:
			return true
		default:
			return false
		}
	case AtomicType:
		at, ok := t.(AtomicType)
		if !ok {
			return false
		}
		// integer ≤ float, the one atomic coercion O₂ admits.
		return at.K == ut.K || (at.K == TypeInt && ut.K == TypeFloat)
	case ClassType:
		ct, ok := t.(ClassType)
		if !ok {
			return false
		}
		return h != nil && h.IsSubclass(ct.Name, ut.Name)
	case SetType:
		st, ok := t.(SetType)
		if !ok {
			return false
		}
		return Subtype(h, st.Elem, ut.Elem)
	case ListType:
		switch tt := t.(type) {
		case ListType:
			return Subtype(h, tt.Elem, ut.Elem)
		case TupleType:
			// New rule 2: a tuple is a special case of heterogeneous list.
			// [a₁:τ₁,…,aₙ:τₙ] ≤ [υ] holds when each singleton [aᵢ:τᵢ] is a
			// subtype of the element type υ (in the paper's statement υ is
			// the union of the fields, and rule 1 makes each singleton a
			// subtype of that union; stating it through the element type
			// also covers wider unions).
			for i := 0; i < tt.Len(); i++ {
				f := tt.At(i)
				if !Subtype(h, TupleOf(TField{Name: f.Name, Type: f.Type}), ut.Elem) {
					return false
				}
			}
			return true
		default:
			return false
		}
	case TupleType:
		tt, ok := t.(TupleType)
		if !ok {
			return false
		}
		// Width and depth: every attribute required by u must be present
		// in t with a subtype domain.
		for i := 0; i < ut.Len(); i++ {
			f := ut.At(i)
			ft, ok := tt.Get(f.Name)
			if !ok || !Subtype(h, ft, f.Type) {
				return false
			}
		}
		return true
	case UnionType:
		switch tt := t.(type) {
		case UnionType:
			// Width subtyping on alternatives: a union with fewer
			// alternatives is a subtype of one with more.
			for i := 0; i < tt.Len(); i++ {
				a := tt.At(i)
				ua, ok := ut.Get(a.Name)
				if !ok || !Subtype(h, a.Type, ua) {
					return false
				}
			}
			return true
		case TupleType:
			// New rule 1: [aᵢ:τᵢ] ≤ (… + aᵢ:τᵢ + …). Combined with tuple
			// width subtyping, any tuple owning an alternative's attribute
			// with a subtype domain is below the union.
			for i := 0; i < ut.Len(); i++ {
				a := ut.At(i)
				ft, ok := tt.Get(a.Name)
				if ok && Subtype(h, ft, a.Type) {
					return true
				}
			}
			return false
		default:
			return false
		}
	default:
		return false
	}
}

// CommonSupertype computes the least common supertype of t and u following
// the two typing rules of Section 4.2:
//
//  1. there is no common supertype between a union type and a non-union
//     type;
//  2. two union types have a common supertype iff they have no marker
//     conflict, and it is then the union of the two types (same-marker
//     alternatives merged by recursion).
//
// For non-union types it computes the usual least upper bound (least common
// superclass for classes, pointwise for collections, common attributes for
// tuples). The boolean result reports whether a common supertype exists.
func CommonSupertype(h *Hierarchy, t, u Type) (Type, bool) {
	if t == nil || u == nil {
		return nil, false
	}
	if TypeEqual(t, u) {
		return t, true
	}
	if Subtype(h, t, u) {
		return u, true
	}
	if Subtype(h, u, t) {
		return t, true
	}
	// Rule 1 of Section 4.2: union vs non-union never joins. (A tuple is
	// *below* a union by the new subtyping rule — handled above — but a
	// tuple and a union that are not related by ≤ have no join.)
	if IsUnion(t) != IsUnion(u) {
		return nil, false
	}
	switch tt := t.(type) {
	case UnionType:
		uu := u.(UnionType)
		// Rule 2: merge alternatives; a marker conflict (same marker,
		// unjoinable domains) means no common supertype.
		merged := make(map[string]Type)
		for _, a := range tt.Alts() {
			merged[a.Name] = a.Type
		}
		for _, a := range uu.Alts() {
			if prev, ok := merged[a.Name]; ok {
				j, ok := CommonSupertype(h, prev, a.Type)
				if !ok {
					return nil, false
				}
				merged[a.Name] = j
			} else {
				merged[a.Name] = a.Type
			}
		}
		alts := make([]TField, 0, len(merged))
		for name, ty := range merged {
			alts = append(alts, TField{Name: name, Type: ty})
		}
		return UnionOf(alts...), true
	case AtomicType:
		ua, ok := u.(AtomicType)
		if !ok {
			return nil, false
		}
		// integer ⊔ float = float; all other distinct atom pairs fail.
		if (tt.K == TypeInt && ua.K == TypeFloat) || (tt.K == TypeFloat && ua.K == TypeInt) {
			return FloatType, true
		}
		return nil, false
	case ClassType:
		uc, ok := u.(ClassType)
		if !ok {
			if _, isAny := u.(AnyType); isAny {
				return Any, true
			}
			return nil, false
		}
		if h != nil {
			if lcs := h.LeastCommonSuperclass(tt.Name, uc.Name); lcs != "" {
				return Class(lcs), true
			}
		}
		return Any, true
	case AnyType:
		if _, ok := u.(ClassType); ok {
			return Any, true
		}
		return nil, false
	case SetType:
		us, ok := u.(SetType)
		if !ok {
			return nil, false
		}
		elem, ok := CommonSupertype(h, tt.Elem, us.Elem)
		if !ok {
			return nil, false
		}
		return SetOf(elem), true
	case ListType:
		switch uu := u.(type) {
		case ListType:
			elem, ok := CommonSupertype(h, tt.Elem, uu.Elem)
			if !ok {
				return nil, false
			}
			return ListOf(elem), true
		case TupleType:
			return CommonSupertype(h, u, t)
		default:
			return nil, false
		}
	case TupleType:
		switch uu := u.(type) {
		case TupleType:
			// Join on the common attributes, preserving t's order.
			var fields []TField
			for _, f := range tt.Fields() {
				ut2, ok := uu.Get(f.Name)
				if !ok {
					continue
				}
				j, ok := CommonSupertype(h, f.Type, ut2)
				if !ok {
					continue
				}
				fields = append(fields, TField{Name: f.Name, Type: j})
			}
			if len(fields) == 0 {
				return nil, false
			}
			return TupleOf(fields...), true
		case ListType:
			// The tuple embeds into a heterogeneous list; join the list of
			// the tuple's field union with u.
			return CommonSupertype(h, HeterogeneousListType(tt), uu)
		default:
			return nil, false
		}
	default:
		return nil, false
	}
}

// HeterogeneousListType returns the heterogeneous-list view of a tuple
// type: [(a₁:τ₁ + … + aₙ:τₙ)] (Section 5.1, second new subtyping rule).
func HeterogeneousListType(t TupleType) ListType {
	alts := make([]TField, t.Len())
	for i := 0; i < t.Len(); i++ {
		alts[i] = t.At(i)
	}
	return ListOf(UnionOf(alts...))
}
