// Package algebra implements the algebraization sketched in Section 5.4
// of the paper: a complex-value algebra with variant-based selection over
// heterogeneous collections, and the (★) transformation that rewrites a
// calculus query with path and attribute variables into a union of
// variable-free plans, using schema analysis to find the candidate
// valuations.
//
// Plans are trees of operators that transform streams of valuations. A
// compiled plan is immutable after translation except for its guides'
// memo tables, which are protected by a lock, so one plan may serve any
// number of concurrent Run calls (each with its own Ctx). The
// decisive difference from naive calculus evaluation is the treatment of
// path predicates: instead of enumerating every concrete path from the
// base value (the naive interpretation of a path variable), the plan
// navigates only the schema-derived shapes that can satisfy the whole
// pattern — which is exactly why the restricted path semantics "can be
// implemented with efficient algebraic techniques" (Section 5.2).
//
// Within one Run, the row-at-a-time operators (select, bind, unnest,
// path-navigate, anti-join) can additionally partition their input rows
// across a bounded worker pool (Ctx.Workers); partitions are contiguous
// and results are concatenated in input order, so evaluation stays
// deterministic at any worker count.
package algebra

import (
	"fmt"
	"strings"
	"sync"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/text"
)

// Ctx carries the runtime context of one plan execution: the calculus
// environment (instance, interpreted functions; derive it with
// Env.WithContext to make the run cancellable), an optional full-text
// index used as an access path for contains predicates, and the size of
// the worker pool for intra-query parallel scans. A Ctx is used by one
// Run call; concurrent Runs each build their own.
type Ctx struct {
	Env   *calculus.Env
	Index *text.Index
	// Workers bounds intra-query parallelism: row-scan operators split
	// their input across up to Workers goroutines. Values <= 1 evaluate
	// serially. The split is deterministic (ordered merge), so results
	// are identical at any setting.
	Workers int

	// mu guards containsDocs: parallel scan partitions may race on it.
	mu sync.Mutex
	// containsDocs caches index evaluations per expression source.
	containsDocs map[string]map[object.OID]bool

	// pool is the shared worker-token channel bounding the query's total
	// goroutines across every parallel site (row scans, union branches);
	// see parallel.go. Built lazily once Workers is known.
	poolOnce sync.Once
	pool     chan struct{}
}

// NewCtx builds a serial runtime context; set Workers to enable parallel
// scans.
func NewCtx(env *calculus.Env) *Ctx {
	return &Ctx{Env: env, containsDocs: map[string]map[object.OID]bool{}}
}

// err reports the evaluation context's cancellation error, if any.
func (c *Ctx) err() error { return c.Env.Context().Err() }

// poll is the strided cancellation-and-budget check of the row-scan
// loops: one context read every ctxStride rows, charging the stride to
// the query's cost meter so a scan past its budget fails within one
// stride.
func (c *Ctx) poll(i int) error {
	if i%ctxStride != 0 {
		return nil
	}
	if err := c.err(); err != nil {
		return err
	}
	if i == 0 {
		// Nothing scanned yet here: just observe a trip from a sibling
		// partition or branch.
		return c.Env.Meter().Err()
	}
	return c.Env.Meter().Charge(ctxStride, 0)
}

// Op is one algebra operator: it produces valuations, consuming its
// input's valuations (nested-loops style, materialised).
//
//sgmldbvet:closed
type Op interface {
	Rows(ctx *Ctx) ([]calculus.Valuation, error)
	// explain appends an indented description of the operator subtree.
	explain(b *strings.Builder, indent int)
}

// Explain renders a plan tree for inspection.
func Explain(op Op) string {
	var b strings.Builder
	op.explain(&b, 0)
	return b.String()
}

func pad(b *strings.Builder, indent int) {
	for i := 0; i < indent; i++ {
		b.WriteString("  ")
	}
}

// startOp yields one empty valuation: the unit input.
type startOp struct{}

func (startOp) Rows(*Ctx) ([]calculus.Valuation, error) {
	return []calculus.Valuation{{}}, nil
}

func (startOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("start\n")
}

// selectOp filters rows by a ground formula, delegating to the calculus
// evaluator (which also implements variant-based selection through
// implicit selectors).
type selectOp struct {
	in Op
	f  calculus.Formula
}

func (o *selectOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.mapRows(in, func(v calculus.Valuation) ([]calculus.Valuation, error) {
		return ctx.Env.EvalWith(o.f, []calculus.Valuation{v})
	})
}

func (o *selectOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "select %s\n", o.f)
	o.in.explain(b, indent+1)
}

// bindOp extends each row with x = t.
type bindOp struct {
	in Op
	x  string
	t  calculus.DataTerm
}

func (o *bindOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.mapRows(in, func(v calculus.Valuation) ([]calculus.Valuation, error) {
		val, err := ctx.Env.Term(o.t, v)
		if calculus.IsNoSuchPath(err) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		return []calculus.Valuation{v.Extend(o.x, calculus.DataBinding(val))}, nil
	})
}

func (o *bindOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "bind %s = %s\n", o.x, o.t)
	o.in.explain(b, indent+1)
}

// unnestOp extends each row with x ranging over the members of a
// collection term (the algebra's variant of quantifying over elements of a
// set or list).
type unnestOp struct {
	in   Op
	x    string
	coll calculus.DataTerm
}

func (o *unnestOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	// The outer set/list scan of a select-from-where plan: partitioned
	// across the worker pool, merged in input order.
	return ctx.mapRows(in, func(v calculus.Valuation) ([]calculus.Valuation, error) {
		val, err := ctx.Env.Term(o.coll, v)
		if calculus.IsNoSuchPath(err) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		var members []object.Value
		switch c := val.(type) {
		case *object.Set:
			members = c.Elems()
		case *object.List:
			members = c.Elems()
		case *object.Tuple:
			members = object.HeterogeneousList(c).Elems()
		default:
			return nil, nil
		}
		out := make([]calculus.Valuation, 0, len(members))
		for _, m := range members {
			out = append(out, v.Extend(o.x, calculus.DataBinding(m)))
		}
		return out, nil
	})
}

func (o *unnestOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "unnest %s in %s\n", o.x, o.coll)
	o.in.explain(b, indent+1)
}

// unionOp concatenates and deduplicates the rows of its children (the
// union of variable-free queries of the (★) transformation, and the
// translation of ∨).
type unionOp struct {
	children []Op
}

func (o *unionOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	outs := make([][]calculus.Valuation, len(o.children))
	errs := make([]error, len(o.children))
	if ctx.Workers > 1 && len(o.children) > 1 {
		// The branches are independent variable-free plans: fan them out
		// over the query's shared worker pool. A branch whose token
		// claim fails runs inline on this goroutine, so the union makes
		// progress even with the pool drained by sibling scans. Outputs
		// are concatenated in branch order below, so the result is the
		// serial result at any worker count; a budget trip or
		// cancellation in one branch stops the others at their next
		// strided poll, since every branch charges the same meter.
		pool := ctx.workerPool()
		var wg sync.WaitGroup
		for i := range o.children {
			if err := ctx.err(); err != nil {
				errs[i] = err
				break
			}
			select {
			case pool <- struct{}{}:
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-pool }()
					defer func() {
						if r := recover(); r != nil {
							errs[i] = calculus.Internal(r)
						}
					}()
					outs[i], errs[i] = o.children[i].Rows(ctx)
				}(i)
			default:
				outs[i], errs[i] = o.children[i].Rows(ctx)
			}
		}
		wg.Wait()
	} else {
		for i, c := range o.children {
			if err := ctx.err(); err != nil {
				errs[i] = err
				break
			}
			outs[i], errs[i] = c.Rows(ctx)
		}
	}
	var all []calculus.Valuation
	for i := range o.children {
		if errs[i] != nil {
			return nil, errs[i]
		}
		all = append(all, outs[i]...)
	}
	return ctx.dedup(all)
}

func (o *unionOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "union (%d branches)\n", len(o.children))
	for _, c := range o.children {
		c.explain(b, indent+1)
	}
}

// projectOp keeps only the given variables and deduplicates.
type projectOp struct {
	in   Op
	keep []calculus.VarDecl
}

func (o *projectOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]calculus.Valuation, 0, len(in))
	for i, v := range in {
		if err := ctx.poll(i); err != nil {
			return nil, err
		}
		row := calculus.Valuation{}
		for _, h := range o.keep {
			b, ok := v[h.Name]
			if !ok {
				return nil, fmt.Errorf("algebra: variable %s unbound at projection", h.Name)
			}
			row = row.Extend(h.Name, b)
		}
		out = append(out, row)
	}
	return ctx.dedup(out)
}

func (o *projectOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	names := make([]string, len(o.keep))
	for i, k := range o.keep {
		names[i] = k.Name
	}
	fmt.Fprintf(b, "project [%s]\n", strings.Join(names, ", "))
	o.in.explain(b, indent+1)
}

// dropOp removes quantified variables (∃ projection without reordering).
type dropOp struct {
	in   Op
	vars []calculus.VarDecl
}

func (o *dropOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]calculus.Valuation, 0, len(in))
	for i, v := range in {
		if err := ctx.poll(i); err != nil {
			return nil, err
		}
		out = append(out, v.Without(o.vars))
	}
	return ctx.dedup(out)
}

func (o *dropOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	names := make([]string, len(o.vars))
	for i, k := range o.vars {
		names[i] = k.Name
	}
	fmt.Fprintf(b, "drop [%s]\n", strings.Join(names, ", "))
	o.in.explain(b, indent+1)
}

// antiOp keeps rows for which the subplan (seeded with the row) is empty:
// the translation of safe negation.
type antiOp struct {
	in  Op
	sub calculus.Formula
}

func (o *antiOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	return ctx.mapRows(in, func(v calculus.Valuation) ([]calculus.Valuation, error) {
		sub, err := ctx.Env.EvalWith(o.sub, []calculus.Valuation{v})
		if err != nil {
			return nil, err
		}
		if len(sub) == 0 {
			return []calculus.Valuation{v}, nil
		}
		return nil, nil
	})
}

func (o *antiOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "anti-join ¬(%s)\n", o.sub)
	o.in.explain(b, indent+1)
}

// indexContainsOp filters rows whose variable holds an oid using the
// full-text index as an access path; non-oid values fall back to text
// scanning.
type indexContainsOp struct {
	in   Op
	x    string
	expr text.Expr
}

func (o *indexContainsOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Index == nil {
		return ctx.Env.EvalWith(calculus.Contains{T: calculus.Var{Name: o.x}, E: o.expr}, in)
	}
	key := o.expr.String()
	ctx.mu.Lock()
	docs, ok := ctx.containsDocs[key]
	ctx.mu.Unlock()
	if !ok {
		docs = map[object.OID]bool{}
		for _, d := range ctx.Index.Eval(o.expr) {
			docs[object.OID(d)] = true
		}
		ctx.mu.Lock()
		ctx.containsDocs[key] = docs
		ctx.mu.Unlock()
	}
	var out []calculus.Valuation
	var fallback []calculus.Valuation
	for i, v := range in {
		if err := ctx.poll(i); err != nil {
			return nil, err
		}
		b := v[o.x]
		if oid, isOID := b.Data.(object.OID); isOID {
			if docs[oid] {
				out = append(out, v)
			}
			continue
		}
		fallback = append(fallback, v)
	}
	if len(fallback) > 0 {
		rest, err := ctx.Env.EvalWith(calculus.Contains{T: calculus.Var{Name: o.x}, E: o.expr}, fallback)
		if err != nil {
			return nil, err
		}
		out = append(out, rest...)
	}
	return out, nil
}

func (o *indexContainsOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "index-contains %s %s\n", o.x, o.expr)
	o.in.explain(b, indent+1)
}

// dedup removes duplicate valuations, polling cancellation as it scans
// (union results can be large).
func (c *Ctx) dedup(in []calculus.Valuation) ([]calculus.Valuation, error) {
	seen := map[string]bool{}
	out := make([]calculus.Valuation, 0, len(in))
	for i, v := range in {
		if err := c.poll(i); err != nil {
			return nil, err
		}
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out, nil
}
