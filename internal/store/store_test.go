package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"sgmldb/internal/object"
)

// articleSchema builds a small version of the Figure 3 schema by hand.
func articleSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddClass("Text", object.TupleOf(object.TField{Name: "content", Type: object.StringType})))
	must(s.AddClass("Title", object.TupleOf(object.TField{Name: "content", Type: object.StringType})))
	must(s.AddInherits("Title", "Text"))
	must(s.AddClass("Author", object.TupleOf(object.TField{Name: "content", Type: object.StringType})))
	must(s.AddInherits("Author", "Text"))
	must(s.AddClass("Article", object.TupleOf(
		object.TField{Name: "title", Type: object.Class("Title")},
		object.TField{Name: "authors", Type: object.ListOf(object.Class("Author"))},
		object.TField{Name: "status", Type: object.StringType},
	)))
	must(s.MarkPrivate("Article", "status"))
	must(s.AddConstraint("Article", NotNil{Attr: "title"}))
	must(s.AddConstraint("Article", NotEmptyList{Attr: "authors"}))
	must(s.AddConstraint("Article", InSet{Attr: "status", Values: []object.Value{
		object.String_("final"), object.String_("draft")}}))
	must(s.AddRoot("Articles", object.ListOf(object.Class("Article"))))
	must(s.AddMethod(MethodSig{Class: "Article", Name: "text", Result: object.StringType}))
	must(s.Check())
	return s
}

func populate(t *testing.T, s *Schema) *Instance {
	t.Helper()
	in := NewInstance(s)
	title, err := in.NewObject("Title", object.NewTuple(object.Field{Name: "content", Value: object.String_("SGML and OODBMS")}))
	if err != nil {
		t.Fatal(err)
	}
	au, err := in.NewObject("Author", object.NewTuple(object.Field{Name: "content", Value: object.String_("V. Christophides")}))
	if err != nil {
		t.Fatal(err)
	}
	art, err := in.NewObject("Article", object.NewTuple(
		object.Field{Name: "title", Value: title},
		object.Field{Name: "authors", Value: object.NewList(au)},
		object.Field{Name: "status", Value: object.String_("final")},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetRoot("Articles", object.NewList(art)); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInstanceBasics(t *testing.T) {
	s := articleSchema(t)
	in := populate(t, s)
	if in.NumObjects() != 3 {
		t.Fatalf("NumObjects = %d", in.NumObjects())
	}
	if errs := in.Check(); len(errs) != 0 {
		t.Fatalf("Check = %v", errs)
	}
	// π(Text) includes titles and authors via inheritance.
	if got := len(in.Extent("Text")); got != 2 {
		t.Errorf("Extent(Text) = %d, want 2", got)
	}
	if got := len(in.DirectExtent("Text")); got != 0 {
		t.Errorf("DirectExtent(Text) = %d, want 0", got)
	}
	if got := len(in.Extent("Article")); got != 1 {
		t.Errorf("Extent(Article) = %d", got)
	}
	o := in.Extent("Article")[0]
	if c, _ := in.ClassOf(o); c != "Article" {
		t.Errorf("ClassOf = %s", c)
	}
	v, ok := in.Deref(o)
	if !ok {
		t.Fatal("Deref failed")
	}
	if _, ok := v.(*object.Tuple); !ok {
		t.Fatal("article value not a tuple")
	}
	if _, ok := in.Deref(object.OID(999)); ok {
		t.Error("Deref of unknown oid must fail")
	}
	if _, err := in.NewObject("Ghost", object.Nil{}); err == nil {
		t.Error("NewObject of undeclared class must fail")
	}
	if err := in.SetRoot("Ghost", object.Nil{}); err == nil {
		t.Error("SetRoot of undeclared root must fail")
	}
	if err := in.SetValue(object.OID(999), object.Nil{}); err == nil {
		t.Error("SetValue of unknown oid must fail")
	}
}

func TestInstanceCheckViolations(t *testing.T) {
	s := articleSchema(t)
	in := NewInstance(s)
	// Wrong value type for the class.
	o, err := in.NewObject("Title", object.Int(42))
	if err != nil {
		t.Fatal(err)
	}
	errs := in.Check()
	if len(errs) == 0 {
		t.Fatal("expected type violation")
	}
	if err := in.SetValue(o, object.NewTuple(object.Field{Name: "content", Value: object.String_("ok")})); err != nil {
		t.Fatal(err)
	}
	if errs := in.Check(); len(errs) != 0 {
		t.Fatalf("fixed instance still fails: %v", errs)
	}
	// Constraint violations: nil title, empty authors, bad status.
	_, err = in.NewObject("Article", object.NewTuple(
		object.Field{Name: "title", Value: object.Nil{}},
		object.Field{Name: "authors", Value: object.NewList()},
		object.Field{Name: "status", Value: object.String_("published")},
	))
	if err != nil {
		t.Fatal(err)
	}
	errs = in.Check()
	var nViol int
	for _, e := range errs {
		if _, ok := e.(ConstraintViolation); ok {
			nViol++
			if !strings.Contains(e.Error(), "Article") {
				t.Errorf("violation message lacks class: %v", e)
			}
		}
	}
	if nViol != 3 {
		t.Errorf("want 3 constraint violations, got %d (%v)", nViol, errs)
	}
	// Dangling reference.
	in2 := NewInstance(s)
	_, err = in2.NewObject("Article", object.NewTuple(
		object.Field{Name: "title", Value: object.OID(12345)},
		object.Field{Name: "authors", Value: object.NewList(object.OID(777))},
		object.Field{Name: "status", Value: object.String_("final")},
	))
	if err != nil {
		t.Fatal(err)
	}
	errs = in2.Check()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "unassigned oids") {
			found = true
		}
	}
	if !found {
		t.Errorf("dangling oids not reported: %v", errs)
	}
}

func TestMethods(t *testing.T) {
	s := articleSchema(t)
	in := populate(t, s)
	err := in.BindMethod("Text", "text", func(inst *Instance, recv object.OID, _ []object.Value) (object.Value, error) {
		v, _ := inst.Deref(recv)
		tup := v.(*object.Tuple)
		c, _ := tup.Get("content")
		return c, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Invoke on a Title resolves the Text binding via inheritance.
	titleOID := in.Extent("Title")[0]
	got, err := in.Invoke(titleOID, "text")
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(got, object.String_("SGML and OODBMS")) {
		t.Errorf("Invoke = %s", got)
	}
	if _, err := in.Invoke(titleOID, "missing"); err == nil {
		t.Error("missing method must error")
	}
	if _, err := in.Invoke(object.OID(999), "text"); err == nil {
		t.Error("unknown receiver must error")
	}
	// A more specific binding wins.
	err = in.BindMethod("Title", "text", func(*Instance, object.OID, []object.Value) (object.Value, error) {
		return object.String_("TITLE"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = in.Invoke(titleOID, "text")
	if err != nil || !object.Equal(got, object.String_("TITLE")) {
		t.Errorf("override failed: %v %v", got, err)
	}
	if err := in.BindMethod("Nope", "x", nil); err == nil {
		t.Error("BindMethod on undeclared class must fail")
	}
}

func TestConstraintKinds(t *testing.T) {
	deref := func(object.OID) (object.Value, bool) { return object.Nil{}, false }
	v := object.NewTuple(
		object.Field{Name: "a", Value: object.String_("x")},
		object.Field{Name: "b", Value: object.NewList(object.Int(1))},
		object.Field{Name: "c", Value: object.Nil{}},
	)
	if !(NotNil{Attr: "a"}).Holds(v, nil) {
		t.Error("NotNil a")
	}
	if (NotNil{Attr: "c"}).Holds(v, nil) {
		t.Error("NotNil c must fail")
	}
	if (NotNil{Attr: "zz"}).Holds(v, nil) {
		t.Error("NotNil on missing attr must fail")
	}
	if !(NotEmptyList{Attr: "b"}).Holds(v, nil) {
		t.Error("NotEmptyList b")
	}
	if (NotEmptyList{Attr: "a"}).Holds(v, nil) {
		t.Error("NotEmptyList on non-list must fail")
	}
	in := InSet{Attr: "a", Values: []object.Value{object.String_("x"), object.String_("y")}}
	if !in.Holds(v, nil) {
		t.Error("InSet")
	}
	if (InSet{Attr: "a", Values: []object.Value{object.Int(1)}}).Holds(v, nil) {
		t.Error("InSet mismatch must fail")
	}
	// NotNil through a present but dangling reference.
	vr := object.NewTuple(object.Field{Name: "r", Value: object.OID(5)})
	if (NotNil{Attr: "r"}).Holds(vr, deref) {
		t.Error("NotNil with dangling deref must fail")
	}
	if !(NotNil{Attr: "r"}).Holds(vr, nil) {
		t.Error("NotNil without deref accepts oid")
	}
	// OnAlt applies only to the matching alternative.
	ua := object.NewUnion("a1", object.NewTuple(object.Field{Name: "title", Value: object.Nil{}}))
	con := OnAlt{Marker: "a1", Inner: []Constraint{NotNil{Attr: "title"}}}
	if con.Holds(ua, nil) {
		t.Error("OnAlt a1 must fail on nil title")
	}
	ub := object.NewUnion("a2", object.NewTuple(object.Field{Name: "title", Value: object.Nil{}}))
	if !con.Holds(ub, nil) {
		t.Error("OnAlt must hold vacuously on other alternatives")
	}
	// AnyOf.
	any := AnyOf{Alts: []Constraint{NotNil{Attr: "c"}, NotNil{Attr: "a"}}}
	if !any.Holds(v, nil) {
		t.Error("AnyOf")
	}
	none := AnyOf{Alts: []Constraint{NotNil{Attr: "c"}, NotNil{Attr: "zz"}}}
	if none.Holds(v, nil) {
		t.Error("AnyOf all failing must fail")
	}
	// Dotted paths reach into union alternatives (a1.title style).
	sec := object.NewUnion("a1", object.NewTuple(object.Field{Name: "title", Value: object.String_("t")}))
	if !(NotNil{Attr: "a1.title"}).Holds(sec, nil) {
		t.Error("dotted path through union marker")
	}
	// Strings.
	if (NotNil{Attr: "x"}).String() != "x != nil" {
		t.Error("NotNil String")
	}
	if (NotEmptyList{Attr: "x"}).String() != "x != list()" {
		t.Error("NotEmptyList String")
	}
	if got := in.String(); got != `a in set("x", "y")` {
		t.Errorf("InSet String = %s", got)
	}
	if !strings.Contains(con.String(), "a1.title != nil") {
		t.Errorf("OnAlt String = %s", con.String())
	}
	if !strings.Contains(any.String(), " | ") {
		t.Errorf("AnyOf String = %s", any.String())
	}
}

func TestSchemaErrorsAndString(t *testing.T) {
	s := articleSchema(t)
	if err := s.AddRoot("Articles", object.Any); err == nil {
		t.Error("duplicate root must fail")
	}
	if err := s.AddRoot("", object.Any); err == nil {
		t.Error("empty root must fail")
	}
	if err := s.AddConstraint("Nope", NotNil{}); err == nil {
		t.Error("constraint on undeclared class must fail")
	}
	if err := s.MarkPrivate("Nope", "x"); err == nil {
		t.Error("private on undeclared class must fail")
	}
	if err := s.AddMethod(MethodSig{Class: "Nope", Name: "m"}); err == nil {
		t.Error("method on undeclared class must fail")
	}
	out := s.String()
	for _, want := range []string{
		"class Title inherit Text",
		"private status: string",
		`status in set("final", "draft")`,
		"name Articles: list(Article)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("schema String missing %q in:\n%s", want, out)
		}
	}
	// Undeclared class reference is caught by Check.
	s2 := NewSchema()
	_ = s2.AddClass("A", object.TupleOf(object.TField{Name: "x", Type: object.Class("Missing")}))
	if err := s2.Check(); err == nil {
		t.Error("dangling class reference must be rejected")
	}
	s3 := NewSchema()
	_ = s3.AddRoot("G", object.SetOf(object.Class("Missing")))
	if err := s3.Check(); err == nil {
		t.Error("dangling root reference must be rejected")
	}
	sig := MethodSig{Class: "A", Name: "m", Params: []object.Type{object.IntType}, Result: object.StringType}
	if got := sig.String(); got != "A::m(integer): string" {
		t.Errorf("MethodSig String = %s", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := articleSchema(t)
	in := populate(t, s)
	var buf bytes.Buffer
	if err := Save(&buf, in); err != nil {
		t.Fatal(err)
	}
	in2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in2.NumObjects() != in.NumObjects() {
		t.Fatalf("object count mismatch: %d vs %d", in2.NumObjects(), in.NumObjects())
	}
	for _, o := range in.Objects() {
		c1, _ := in.ClassOf(o)
		c2, ok := in2.ClassOf(o)
		if !ok || c1 != c2 {
			t.Errorf("class of %s mismatch: %s vs %s", o, c1, c2)
		}
		v1, _ := in.Deref(o)
		v2, _ := in2.Deref(o)
		if !object.Equal(v1, v2) {
			t.Errorf("value of %s mismatch: %s vs %s", o, v1, v2)
		}
	}
	r1, _ := in.Root("Articles")
	r2, ok := in2.Root("Articles")
	if !ok || !object.Equal(r1, r2) {
		t.Error("root mismatch after round trip")
	}
	// Schema survives: constraints, private marks, methods, inheritance.
	if len(in2.Schema().Constraints("Article")) != 3 {
		t.Error("constraints lost")
	}
	if !in2.Schema().IsPrivate("Article", "status") {
		t.Error("private mark lost")
	}
	if len(in2.Schema().Methods()) != 1 {
		t.Error("method signatures lost")
	}
	if !in2.Schema().Hierarchy().IsSubclass("Title", "Text") {
		t.Error("inheritance lost")
	}
	if errs := in2.Check(); len(errs) != 0 {
		t.Errorf("reloaded instance fails Check: %v", errs)
	}
	// New objects after load continue the oid sequence.
	o, err := in2.NewObject("Title", object.NewTuple(object.Field{Name: "content", Value: object.String_("new")}))
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := in.Deref(o); taken {
		t.Errorf("oid %s reused after load", o)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	s := articleSchema(t)
	in := populate(t, s)
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := SaveFile(path, in); err != nil {
		t.Fatal(err)
	}
	in2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if in2.NumObjects() != 3 {
		t.Error("file round trip lost objects")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file must error")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a snapshot\nend\n",
		snapshotMagic + "\nbogus 1:x\nend\n",
		snapshotMagic + "\nclass 1:A\nend\n", // missing type
		snapshotMagic + "\nobject zz 1:A vn\nend\n", // bad oid
		snapshotMagic + "\n",                        // truncated
		snapshotMagic + "\ninherits 1:A 1:B\nend\n", // undeclared classes
		snapshotMagic + "\nrootval 1:G vn\nend\n",   // undeclared root
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestSnapshotValueRoundTripProperty(t *testing.T) {
	// Round-trip random values through the encoding.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := genValue(r, 3)
		var b strings.Builder
		encodeValue(&b, v)
		p := &parser{s: b.String()}
		got := p.value()
		if p.err != nil {
			t.Fatalf("decode error for %s: %v", v, p.err)
		}
		if p.pos != len(p.s) {
			t.Fatalf("trailing input for %s", v)
		}
		if !object.Equal(v, got) {
			t.Fatalf("round trip %s -> %s", v, got)
		}
	}
}

// genValue mirrors the object package's property generator (unexported
// there).
func genValue(r *rand.Rand, depth int) object.Value {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return object.Nil{}
		case 1:
			return object.Int(r.Int63n(1000) - 500)
		case 2:
			return object.Float(float64(r.Intn(100)) / 4)
		case 3:
			return object.String_(strings.Repeat("xyžβ", r.Intn(3)))
		case 4:
			return object.Bool(r.Intn(2) == 0)
		default:
			return object.OID(uint64(r.Intn(9) + 1))
		}
	}
	switch r.Intn(8) {
	case 0:
		return object.Int(r.Int63n(100))
	case 1, 2:
		names := []string{"a", "b", "c d", "ε"}
		n := r.Intn(3)
		fs := make([]object.Field, 0, n)
		for i := 0; i < n; i++ {
			fs = append(fs, object.Field{Name: names[i], Value: genValue(r, depth-1)})
		}
		return object.NewTuple(fs...)
	case 3, 4:
		n := r.Intn(4)
		es := make([]object.Value, n)
		for i := range es {
			es[i] = genValue(r, depth-1)
		}
		return object.NewList(es...)
	case 5:
		n := r.Intn(4)
		es := make([]object.Value, n)
		for i := range es {
			es[i] = genValue(r, depth-1)
		}
		return object.NewSet(es...)
	case 6:
		return object.NewUnion("m"+string(rune('0'+r.Intn(3))), genValue(r, depth-1))
	default:
		return object.String_("s")
	}
}

func TestStats(t *testing.T) {
	s := articleSchema(t)
	in := populate(t, s)
	st := in.Stats()
	if st.Objects != 3 {
		t.Errorf("Objects = %d", st.Objects)
	}
	if st.PerClass["Title"] != 1 || st.PerClass["Author"] != 1 || st.PerClass["Article"] != 1 {
		t.Errorf("PerClass = %v", st.PerClass)
	}
	if st.ValueBytes == 0 {
		t.Error("ValueBytes must be positive")
	}
	if st.RootValues != 1 || len(st.Roots) != 1 || st.Roots[0] != "Articles" {
		t.Errorf("roots = %v", st.Roots)
	}
}
