// Package calculus implements the many-sorted calculus of Section 5.2 of
// the paper: data, path and attribute terms, atoms (equality, membership,
// containment and path predicates ⟨vP⟩), first-order formulas, the
// range-restriction (safety) discipline, type inference, and an evaluator.
//
// Path variables are interpreted under the restricted semantics by default
// (no two dereferences of objects in the same class — Section 5.2), with
// the liberal semantics available per evaluation. Interpreted predicates
// (contains, near, comparisons) and functions (length, name, first, count,
// set_to_list, …) follow Section 5.2's "Interpreted Predicates and
// Functions".
package calculus

import (
	"fmt"
	"strings"

	"sgmldb/internal/object"
	"sgmldb/internal/path"
)

// Sort is the sort of a variable or term: val, path or att.
//
//sgmldbvet:closed
type Sort int

// The three sorts of the calculus.
const (
	SortData Sort = iota
	SortPath
	SortAttr
)

// String names the sort.
func (s Sort) String() string {
	switch s {
	case SortData:
		return "val"
	case SortPath:
		return "path"
	case SortAttr:
		return "att"
	default:
		return fmt.Sprintf("Sort(%d)", int(s))
	}
}

// DataTerm is a term of sort val.
//
//sgmldbvet:closed
type DataTerm interface {
	isDataTerm()
	String() string
}

// NameRef refers to a persistence root g ∈ G.
type NameRef struct{ Name string }

func (NameRef) isDataTerm()      {}
func (t NameRef) String() string { return t.Name }

// Const is an atomic (or constructed) constant value.
type Const struct{ V object.Value }

func (Const) isDataTerm() {}
func (t Const) String() string {
	if t.V == nil {
		return "nil"
	}
	return t.V.String()
}

// Var is a data variable (X, Y, Z …).
type Var struct{ Name string }

func (Var) isDataTerm()      {}
func (t Var) String() string { return t.Name }

// TupleField is one attribute of a tuple term; the attribute itself may be
// a variable (grammar rule 2 of data terms).
type TupleField struct {
	Attr AttrTerm
	T    DataTerm
}

// TupleTerm is [A₁:t₁, …, Aₙ:tₙ].
type TupleTerm struct{ Fields []TupleField }

func (TupleTerm) isDataTerm() {}
func (t TupleTerm) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.Attr.String() + ": " + f.T.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// ListTerm is [t₁, …, tₙ].
type ListTerm struct{ Items []DataTerm }

func (ListTerm) isDataTerm() {}
func (t ListTerm) String() string {
	parts := make([]string, len(t.Items))
	for i, it := range t.Items {
		parts[i] = it.String()
	}
	return "list(" + strings.Join(parts, ", ") + ")"
}

// SetTerm is {t₁, …, tₙ}.
type SetTerm struct{ Items []DataTerm }

func (SetTerm) isDataTerm() {}
func (t SetTerm) String() string {
	parts := make([]string, len(t.Items))
	for i, it := range t.Items {
		parts[i] = it.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FuncCall applies an interpreted function or a method m(t₁, …, tₙ).
// Arguments may be of any sort (length takes a path, name an attribute).
type FuncCall struct {
	Name string
	Args []Term
}

func (FuncCall) isDataTerm() {}
func (t FuncCall) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return t.Name + "(" + strings.Join(parts, ", ") + ")"
}

// PathApply is the data term tP: the value reached from t by following P.
type PathApply struct {
	Base DataTerm
	Path PathTerm
}

func (PathApply) isDataTerm() {}
func (t PathApply) String() string {
	return t.Base.String() + " " + t.Path.String()
}

// InnerQuery nests a query as a data term ("the nesting of queries in a
// calculus à la [3]"): it denotes the set of head tuples — or, for a
// single-variable head, the set of head values.
type InnerQuery struct{ Q *Query }

func (InnerQuery) isDataTerm()      {}
func (t InnerQuery) String() string { return t.Q.String() }

// AttrTerm is a term of sort att: an attribute name or variable.
//
//sgmldbvet:closed
type AttrTerm interface {
	isAttrTerm()
	String() string
}

// AttrName is a constant attribute name.
type AttrName struct{ Name string }

func (AttrName) isAttrTerm()      {}
func (t AttrName) String() string { return t.Name }

// AttrVar is an attribute variable (A, B, C …).
type AttrVar struct{ Name string }

func (AttrVar) isAttrTerm()      {}
func (t AttrVar) String() string { return t.Name }

// PathTerm is a term of sort path: a sequence of path elements. The
// grammar's PQ concatenation is flattened into the element list.
type PathTerm struct{ Elems []PathElem }

// String renders the path term.
func (t PathTerm) String() string {
	if len(t.Elems) == 0 {
		return "ε"
	}
	var b strings.Builder
	for i, e := range t.Elems {
		if i > 0 {
			if _, isVar := e.(ElemVar); isVar {
				b.WriteByte(' ')
			}
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// Concat returns the path term t followed by u.
func (t PathTerm) Concat(u PathTerm) PathTerm {
	elems := make([]PathElem, 0, len(t.Elems)+len(u.Elems))
	elems = append(elems, t.Elems...)
	elems = append(elems, u.Elems...)
	return PathTerm{Elems: elems}
}

// PathElem is one element of a path term.
//
//sgmldbvet:closed
type PathElem interface {
	isPathElem()
	String() string
}

// ElemVar is an occurrence of a path variable (P, Q, R …).
type ElemVar struct{ Name string }

func (ElemVar) isPathElem()      {}
func (e ElemVar) String() string { return e.Name }

// ElemDeref is the dereferencing step →.
type ElemDeref struct{}

func (ElemDeref) isPathElem()    {}
func (ElemDeref) String() string { return "->" }

// ElemAttr is ·A for an attribute term A (name or variable).
type ElemAttr struct{ A AttrTerm }

func (ElemAttr) isPathElem()      {}
func (e ElemAttr) String() string { return "." + e.A.String() }

// ElemIndex is [i] for an integer term: a constant or a data variable.
type ElemIndex struct{ I DataTerm }

func (ElemIndex) isPathElem()      {}
func (e ElemIndex) String() string { return "[" + e.I.String() + "]" }

// ElemBind is the binding (X): the data variable X denotes the value
// reached at this point of the path.
type ElemBind struct{ X string }

func (ElemBind) isPathElem()      {}
func (e ElemBind) String() string { return "(" + e.X + ")" }

// ElemMember is {t}: step into a set by choosing member t (a constant or a
// data variable, which the step binds).
type ElemMember struct{ T DataTerm }

func (ElemMember) isPathElem()      {}
func (e ElemMember) String() string { return "{" + e.T.String() + "}" }

// Term is any term of the three sorts (the argument type of interpreted
// functions and predicates).
type Term interface{ String() string }

// Convenience constructors.

// P builds a path term from elements.
func P(elems ...PathElem) PathTerm { return PathTerm{Elems: elems} }

// PVar is the path term consisting of one path variable.
func PVar(name string) PathTerm { return P(ElemVar{Name: name}) }

// Steps converts concrete path steps to path elements (for fixed paths in
// queries).
func Steps(p path.Path) []PathElem {
	out := make([]PathElem, 0, p.Len())
	for _, s := range p.Steps() {
		switch s.Kind {
		case path.StepAttr:
			out = append(out, ElemAttr{A: AttrName{Name: s.Name}})
		case path.StepIndex:
			out = append(out, ElemIndex{I: Const{V: object.Int(s.Index)}})
		case path.StepDeref:
			out = append(out, ElemDeref{})
		case path.StepMember:
			out = append(out, ElemMember{T: Const{V: s.Member}})
		}
	}
	return out
}

// Str, Num and Bl build constant data terms.
func Str(s string) DataTerm { return Const{V: object.String_(s)} }

// Num builds an integer constant term.
func Num(i int64) DataTerm { return Const{V: object.Int(i)} }

// Bl builds a boolean constant term.
func Bl(b bool) DataTerm { return Const{V: object.Bool(b)} }
