// Package errwrap is a sgmldbvet fixture: fmt.Errorf must format error
// operands with %w so errors.Is and errors.As see the chain.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func flattensV(err error) error {
	return fmt.Errorf("load: %v", err) // want "use %w"
}

func flattensS(err error) error {
	return fmt.Errorf("load %s at %d: %s", "x", 3, err) // want "use %w"
}

func wraps(err error) error {
	return fmt.Errorf("load: %w", err)
}

func doubleWraps(err error) error {
	return fmt.Errorf("%w: %w", errBase, err)
}

func notAnError(s string) error {
	return fmt.Errorf("load: %v (%d%%)", s, 3)
}

func starWidth(err error) error {
	return fmt.Errorf("pad %*d: %w", 4, 7, err)
}

func allowedFlatten(err error) error {
	//lint:allow errwrap fixture demonstrates suppression
	return fmt.Errorf("load: %v", err)
}
