// Quickstart: the paper's running example end to end — compile the
// Figure 1 DTD into the Figure 3 schema, load the Figure 2 article, and
// run the Section 4 queries Q1 and Q3.
package main

import (
	"fmt"
	"log"

	"sgmldb"
	"sgmldb/internal/object"
)

const articleDTD = `<!DOCTYPE article [
<!ELEMENT article - - (title, author+, affil, abstract, section+, acknowl)>
<!ATTLIST article status (final | draft) draft>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT author - O (#PCDATA)>
<!ELEMENT affil - O (#PCDATA)>
<!ELEMENT abstract - O (#PCDATA)>
<!ELEMENT section - O ((title, body+) | (title, body*, subsectn+))>
<!ELEMENT subsectn - O (title, body+)>
<!ELEMENT body - O (figure | paragr)>
<!ELEMENT figure - O (picture, caption?)>
<!ATTLIST figure label ID #IMPLIED>
<!ELEMENT picture - O EMPTY>
<!ATTLIST picture sizex NMTOKEN "16cm" sizey NMTOKEN #IMPLIED file ENTITY #IMPLIED>
<!ELEMENT caption O O (#PCDATA)>
<!ELEMENT paragr - O (#PCDATA)>
<!ATTLIST paragr reflabel IDREF #IMPLIED>
<!ELEMENT acknowl - O (#PCDATA)>
]>`

const article = `<article status="final">
<title>From Structured Documents to Novel Query Facilities</title>
<author>V. Christophides
<author>S. Abiteboul
<author>S. Cluet
<author>M. Scholl
<affil>I.N.R.I.A.
<abstract>Structured documents can benefit a lot from database support,
notably SGML repositories stored in an OODBMS.
<section><title>Combining SGML and an OODBMS</title>
<body><paragr>This section explains why the mapping works.</body>
</section>
<section><title>Query facilities</title>
<body><paragr>Paths are first class citizens.</body>
</section>
<acknowl>Thanks to the Verso group.
</article>`

func main() {
	// 1. DTD → schema (Figure 1 → Figure 3).
	db, err := sgmldb.OpenDTD(articleDTD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== generated O2 schema (Figure 3) ===")
	fmt.Println(db.SchemaString())

	// 2. Document instance → objects (Figure 2 → a database).
	oid, err := db.LoadDocument(article)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Name("my_article", oid); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("loaded article %s: %d objects\n\n", oid, st.Objects)

	// 3. Q1: the title and first author of articles having a section with
	// a title containing "SGML" and "OODBMS".
	q1 := `
select tuple (t: a.title, f_author: first(a.authors))
from a in Articles, s in a.sections
where s.title contains ("SGML" and "OODBMS")`
	res, err := db.Query(q1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Q1 ===")
	for _, row := range res.(*object.Set).Elems() {
		tup := row.(*object.Tuple)
		title, _ := tup.Get("t")
		author, _ := tup.Get("f_author")
		fmt.Printf("title=%q first author=%q\n", db.Text(title), db.Text(author))
	}

	// 4. Q3: all titles in my_article, wherever they occur.
	res, err = db.Query(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Q3 ===")
	for _, t := range res.(*object.Set).Elems() {
		fmt.Printf("title: %q\n", db.Text(t))
	}

	// 5. The same query through the Section 5.4 algebra.
	db.UseAlgebra(true)
	res2, err := db.Query(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalgebraic evaluation agrees: %v\n",
		object.Equal(res, res2))
}
