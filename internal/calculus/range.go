package calculus

import (
	"fmt"
	"sort"
)

// This file implements the range-restriction discipline of Section 5.2 "in
// the style of [3]": all variables of a formula must be range restricted —
// bound to values derived from persistence roots or constants. The same
// analysis drives the static safety check (CheckQuery) and the evaluator's
// conjunct ordering: a conjunct is evaluable once the analysis says its
// free variables are restricted.

// varSet is a set of variable names.
type varSet map[string]bool

func (s varSet) clone() varSet {
	out := make(varSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s varSet) addAll(t varSet) {
	for k := range t {
		s[k] = true
	}
}

func (s varSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// groundable reports whether every variable of the term is restricted.
func groundableData(t DataTerm, bound varSet) bool {
	vars := map[string]Sort{}
	dataTermVars(t, map[string]bool{}, vars)
	for v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

func groundableTerm(t Term, bound varSet) bool {
	vars := map[string]Sort{}
	termVars(t, map[string]bool{}, vars)
	for v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

// pathVarsOf collects every variable occurring in a path term (they all
// inherit range restriction from the path atom's base).
func pathVarsOf(t PathTerm) varSet {
	vars := map[string]Sort{}
	pathTermVars(t, map[string]bool{}, vars)
	out := varSet{}
	for v := range vars {
		out[v] = true
	}
	return out
}

// restrict computes the set of variables a formula restricts, assuming
// bound are already restricted. ok is false when the formula cannot be
// safely evaluated in this context (some variable has no range).
func restrict(f Formula, bound varSet) (varSet, bool) {
	switch x := f.(type) {
	case TrueF:
		return varSet{}, true
	case Eq:
		lg := groundableData(x.L, bound)
		rg := groundableData(x.R, bound)
		switch {
		case lg && rg:
			return varSet{}, true
		case rg:
			if v, ok := x.L.(Var); ok {
				return varSet{v.Name: true}, true
			}
			return nil, false
		case lg:
			if v, ok := x.R.(Var); ok {
				return varSet{v.Name: true}, true
			}
			return nil, false
		default:
			return nil, false
		}
	case In:
		if !groundableData(x.R, bound) {
			return nil, false
		}
		if groundableData(x.L, bound) {
			return varSet{}, true
		}
		if v, ok := x.L.(Var); ok {
			return varSet{v.Name: true}, true
		}
		return nil, false
	case Subset:
		if groundableData(x.L, bound) && groundableData(x.R, bound) {
			return varSet{}, true
		}
		return nil, false
	case Cmp:
		if groundableData(x.L, bound) && groundableData(x.R, bound) {
			return varSet{}, true
		}
		return nil, false
	case Contains:
		if groundableData(x.T, bound) {
			return varSet{}, true
		}
		return nil, false
	case Pred:
		for _, a := range x.Args {
			if !groundableTerm(a, bound) {
				return nil, false
			}
		}
		return varSet{}, true
	case PathAtom:
		// The base must be restricted; every variable on the path then
		// inherits its restriction from the base (Section 5.2) — except
		// index terms that are not bare variables, which must already be
		// ground.
		if !groundableData(x.Base, bound) {
			return nil, false
		}
		out := varSet{}
		for _, e := range x.Elems() {
			switch el := e.(type) {
			case ElemVar:
				out[el.Name] = true
			case ElemAttr:
				if v, ok := el.A.(AttrVar); ok {
					out[v.Name] = true
				}
			case ElemIndex:
				if v, ok := el.I.(Var); ok {
					out[v.Name] = true
				} else if !groundableData(el.I, bound) {
					return nil, false
				}
			case ElemBind:
				out[el.X] = true
			case ElemMember:
				if v, ok := el.T.(Var); ok {
					out[v.Name] = true
				} else if !groundableData(el.T, bound) {
					return nil, false
				}
			case ElemDeref:
				// binds nothing
			}
		}
		return out, true
	case And:
		return restrictConj(conjuncts(f), bound)
	case Or:
		l, okL := restrict(x.L, bound)
		r, okR := restrict(x.R, bound)
		if !okL || !okR {
			return nil, false
		}
		// A disjunction restricts only what both branches restrict, and it
		// is evaluable only if each branch restricts all of its own free
		// variables (so that the union is over comparable valuations).
		if !coversFree(x.L, bound, l) || !coversFree(x.R, bound, r) {
			return nil, false
		}
		out := varSet{}
		for v := range l {
			if r[v] {
				out[v] = true
			}
		}
		return out, true
	case Not:
		// Safe negation: every free variable must already be restricted.
		for v := range FreeVars(x.F) {
			if !bound[v] {
				return nil, false
			}
		}
		return varSet{}, true
	case Exists:
		b2 := bound.clone()
		inner, ok := restrict(x.Body, b2)
		if !ok {
			return nil, false
		}
		for _, v := range x.Vars {
			if !inner[v.Name] && !bound[v.Name] {
				return nil, false // quantified variable with no range
			}
		}
		out := varSet{}
		q := varSet{}
		for _, v := range x.Vars {
			q[v.Name] = true
		}
		for v := range inner {
			if !q[v] {
				out[v] = true
			}
		}
		return out, true
	case Forall:
		b2 := bound.clone()
		rng, ok := restrict(x.Range, b2)
		if !ok {
			return nil, false
		}
		for _, v := range x.Vars {
			if !rng[v.Name] && !bound[v.Name] {
				return nil, false
			}
		}
		b3 := bound.clone()
		b3.addAll(rng)
		if _, ok := restrict(x.Then, b3); !ok {
			return nil, false
		}
		return varSet{}, true
	default:
		return nil, false
	}
}

// Elems exposes a path atom's elements.
func (f PathAtom) Elems() []PathElem { return f.Path.Elems }

// coversFree reports whether bound∪got covers every free variable of f.
func coversFree(f Formula, bound, got varSet) bool {
	for v := range FreeVars(f) {
		if !bound[v] && !got[v] {
			return false
		}
	}
	return true
}

// restrictConj schedules conjuncts greedily: repeatedly take any conjunct
// whose analysis succeeds under the current bound set. The same order is
// used by the evaluator.
func restrictConj(cs []Formula, bound varSet) (varSet, bool) {
	out := varSet{}
	cur := bound.clone()
	remaining := append([]Formula(nil), cs...)
	for len(remaining) > 0 {
		progress := false
		for i, c := range remaining {
			got, ok := restrict(c, cur)
			if !ok || !coversFree(c, cur, got) {
				continue
			}
			out.addAll(got)
			cur.addAll(got)
			remaining = append(remaining[:i], remaining[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, false
		}
	}
	return out, true
}

// orderConjuncts returns the conjuncts in an evaluable order, or an error
// naming the stuck conjuncts.
func orderConjuncts(cs []Formula, bound varSet) ([]Formula, error) {
	var order []Formula
	cur := bound.clone()
	remaining := append([]Formula(nil), cs...)
	for len(remaining) > 0 {
		progress := false
		for i, c := range remaining {
			got, ok := restrict(c, cur)
			if !ok || !coversFree(c, cur, got) {
				continue
			}
			cur.addAll(got)
			order = append(order, c)
			remaining = append(remaining[:i], remaining[i+1:]...)
			progress = true
			break
		}
		if !progress {
			names := make([]string, len(remaining))
			for i, c := range remaining {
				names[i] = c.String()
			}
			return nil, fmt.Errorf("calculus: not range-restricted: cannot order conjuncts %v (bound %v)",
				names, cur.sorted())
		}
	}
	return order, nil
}

// CheckQuery verifies the safety of a query: the body must be range
// restricted, every head variable must be restricted by the body, and the
// body's free variables must be exactly the head (Section 5.2's "x₁, …,
// xₙ are the only free variables in φ").
func CheckQuery(q *Query) error {
	free := FreeVars(q.Body)
	head := varSet{}
	for _, v := range q.Head {
		if head[v.Name] {
			return fmt.Errorf("calculus: duplicate head variable %s", v.Name)
		}
		head[v.Name] = true
		if s, ok := free[v.Name]; ok && s != v.Sort {
			return fmt.Errorf("calculus: head variable %s declared %v but used as %v", v.Name, v.Sort, s)
		}
	}
	for v := range free {
		if !head[v] {
			return fmt.Errorf("calculus: variable %s is free in the body but not in the head", v)
		}
	}
	got, ok := restrict(q.Body, varSet{})
	if !ok {
		if _, err := orderAll(q.Body); err != nil {
			return err
		}
		return fmt.Errorf("calculus: query body is not range-restricted")
	}
	for _, v := range q.Head {
		if !got[v.Name] {
			return fmt.Errorf("calculus: head variable %s is not range-restricted by the body", v.Name)
		}
	}
	return nil
}

func orderAll(f Formula) ([]Formula, error) {
	return orderConjuncts(conjuncts(f), varSet{})
}
