// Package analysis is sgmldb's domain-specific static-analysis suite: a
// from-scratch driver on go/parser and go/types (packages enumerated via
// `go list -json`), with analyzers that enforce the repo's hand-kept
// invariants mechanically:
//
//   - exhaustive: switches over closed kind sets (types marked
//     //sgmldbvet:closed) must handle every variant, so that removing or
//     adding a variant fails CI instead of surfacing as a runtime panic.
//   - ctxpoll: row-scan loops over valuation slices must poll context
//     cancellation, keeping long queries promptly cancellable.
//   - lockcheck: a method that acquires its receiver's mutex must release
//     it on every path and must not re-acquire it — directly or through
//     another method of the same receiver (self-deadlock).
//   - errwrap: fmt.Errorf with an error operand must wrap it with %w, and
//     facade-level errors must be sentinel-based.
//   - nopanic: a panic reachable from an exported function is flagged
//     unless annotated.
//   - faultpoint: fault-injection sites must be package-level
//     declarations, and production code may only Hit them — the arming
//     machinery stays in tests.
//
// Intentional deviations are annotated in source as
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go standard library
	Target     bool // named by the load patterns: analyzed, not just imported
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Program is a load result: the analysis targets plus every dependency,
// sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // in dependency order (dependencies first)
	Targets  []*Package // the packages named by the load patterns
	packages map[string]*Package

	closedOnce sync.Once
	closed     *closedSets

	graphOnce sync.Once
	graph     *callGraph
}

// Diagnostic is one finding, positioned in the program's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one check. Run inspects the program's target packages and
// reports findings; it must not mutate the program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report func(Diagnostic))
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ExhaustiveAnalyzer,
		CtxpollAnalyzer,
		LockcheckAnalyzer,
		ErrwrapAnalyzer,
		NopanicAnalyzer,
		FaultpointAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to the program's targets and returns the
// surviving diagnostics sorted by position: findings suppressed by a
// well-formed //lint:allow directive are dropped, and malformed
// directives (missing reason) are themselves reported.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(prog, func(d Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		})
	}
	allows, bad := collectAllows(prog)
	var out []Diagnostic
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if allows.covers(d.Analyzer, pos) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := prog.Fset.Position(out[i].Pos), prog.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// allowKey identifies one //lint:allow site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// covers reports whether an allow directive for the analyzer sits on the
// diagnostic's line or the line directly above it.
func (s allowSet) covers(analyzer string, pos token.Position) bool {
	return s[allowKey{pos.Filename, pos.Line, analyzer}] ||
		s[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}

// collectAllows gathers the //lint:allow directives of every target file.
// A directive without a reason is reported: the annotation grammar is
// "//lint:allow <analyzer> <reason>", and the reason is the audit trail.
func collectAllows(prog *Program) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var bad []Diagnostic
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:allow") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
					pos := prog.Fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "directive",
							Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
						})
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return allows, bad
}

// funcBodies visits every function declaration of a target package with
// its resolved types.Func (nil receiver-less init bodies included).
func funcBodies(pkg *Package, visit func(decl *ast.FuncDecl, fn *types.Func)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
			visit(decl, fn)
		}
	}
}

// calleeOf resolves a call expression to the called named function or
// method, when the call is direct (not through an interface value whose
// dynamic type is unknown — those resolve to the interface method).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPanicCall reports a call to the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
