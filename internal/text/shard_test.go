package text

import (
	"bufio"
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestShardedAddLookupConcurrent exercises the sharding contract: any
// number of Lookup/Eval/Docs readers run while a writer re-indexes
// documents, with no index-wide mutex between them. Run under -race this
// pins the per-shard locking discipline.
func TestShardedAddLookupConcurrent(t *testing.T) {
	ix := NewIndex()
	for d := 0; d < 8; d++ {
		ix.Add(DocID(d), fmt.Sprintf("alpha beta gamma doc%d delta", d))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			words := []string{"alpha", "beta", "gamma", "delta", "doc3"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := words[(i+r)%len(words)]
				if len(ix.Lookup(w)) == 0 {
					t.Errorf("Lookup(%q) went empty mid-run", w)
					return
				}
				ix.Eval(MustWord("alpha"))
				ix.Docs()
				ix.VocabularySize()
			}
		}(r)
	}
	for i := 0; i < 50; i++ {
		ix.Add(DocID(100+i%4), fmt.Sprintf("epsilon zeta run%d alpha", i))
	}
	close(stop)
	wg.Wait()
}

// TestShardedCloneVersioning re-checks the copy-on-write contract against
// the per-shard cow/owned bookkeeping: Adds into a clone never disturb
// the original, and vice versa, across all shards.
func TestShardedCloneVersioning(t *testing.T) {
	ix := NewIndex()
	for d := 0; d < 20; d++ {
		ix.Add(DocID(d), fmt.Sprintf("shared word%d tail", d))
	}
	before := ix.Eval(MustWord("shared"))
	c := ix.Clone()
	c.Add(DocID(99), "shared fresh")
	c.Add(DocID(3), "rewritten only") // re-Add retracts doc 3's old words in the clone
	if got := ix.Eval(MustWord("shared")); !reflect.DeepEqual(got, before) {
		t.Errorf("original 'shared' docs changed after clone Adds: %v != %v", got, before)
	}
	if got := ix.Lookup("word3"); len(got) != 1 || got[0] != 3 {
		t.Errorf("original lost doc 3's postings: %v", got)
	}
	if got := c.Lookup("word3"); len(got) != 0 {
		t.Errorf("clone kept retracted word3: %v", got)
	}
	if got := c.Lookup("fresh"); len(got) != 1 || got[0] != 99 {
		t.Errorf("clone missing its own Add: %v", got)
	}
	// Writing back into the original after Clone must not leak into the
	// clone either (both sides are cow).
	ix.Add(DocID(77), "shared original only")
	if got := c.Lookup("original"); len(got) != 0 {
		t.Errorf("original's post-clone Add leaked into clone: %v", got)
	}
}

// TestIndexCodecRoundTrip encodes an index and decodes it back, checking
// documents, vocabulary, phrase and near evaluation — the checkpoint
// path's fidelity requirement.
func TestIndexCodecRoundTrip(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "structured documents to novel query facilities")
	ix.Add(2, "novel query facilities for structured text")
	ix.Add(7, "an unrelated third document")
	ix.Add(2, "re-added second document with novel query phrasing") // exercise retract
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("trailer survives\n")
	br := bufio.NewReader(&buf)
	got, err := DecodeIndex(br)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Docs(), ix.Docs()) {
		t.Errorf("docs = %v, want %v", got.Docs(), ix.Docs())
	}
	if got.VocabularySize() != ix.VocabularySize() {
		t.Errorf("vocab = %d, want %d", got.VocabularySize(), ix.VocabularySize())
	}
	for _, expr := range []Expr{
		MustWord("novel"),
		MatchExpr{Pattern: MustCompile("novel query")}, // phrase
		NearExpr{A: "novel", B: "phrasing", Dist: 2},
		NotExpr{E: MustWord("unrelated")},
	} {
		if want, have := ix.Eval(expr), got.Eval(expr); !reflect.DeepEqual(have, want) {
			t.Errorf("Eval(%v) = %v, want %v", expr, have, want)
		}
	}
	// The reader position is exactly past the index section.
	line, err := br.ReadString('\n')
	if err != nil || line != "trailer survives\n" {
		t.Errorf("reader past index section: %q, %v", line, err)
	}
	// And the decoded index is mutable (docWords rebuilt): re-Add works.
	got.Add(2, "fully new content")
	if ids := got.Lookup("structured"); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("retract after decode: structured in %v, want [1]", ids)
	}
}

// TestIndexCodecRejectsGarbage feeds malformed sections to the decoder:
// errors, never panics, never partial silent success.
func TestIndexCodecRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not an index\n",
		"sgmldb-textindex 1\n",
		"sgmldb-textindex 1\ndocs x\n",
		"sgmldb-textindex 1\ndocs 1\nd nope\n",
		"sgmldb-textindex 1\ndocs 0\nwords 1\nw 3:abc 1 5 1 0\nend\n",    // posting for undeclared doc
		"sgmldb-textindex 1\ndocs 1\nd 5\nwords 1\nw 3:abc 1 5 2 0\nend\n", // truncated positions
		"sgmldb-textindex 1\ndocs 1\nd 5\nwords 1\nw 3:abc 1 5 1 0 9\nend\n", // trailing data
		"sgmldb-textindex 1\ndocs 1\nd 5\nwords 1\nw 3:abc 1 5 1 0\nnot-end\n",
	}
	for _, src := range cases {
		if _, err := DecodeIndex(bufio.NewReader(bytes.NewReader([]byte(src)))); err == nil {
			t.Errorf("DecodeIndex(%q) succeeded, want error", src)
		}
	}
}
