package sgmldb

import (
	"errors"
	"os"
	"syscall"
	"testing"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/wal"
)

// The disk-fault chaos suite (make chaos runs it under -race). Where
// crash_test.go photographs a kill, these tests model the *disk* failing
// while the process lives: a failed fsync on the append path, a full
// disk under the checkpointer, an unsyncable directory. The contract
// under test is DESIGN.md §11: the log fails closed (poison), the
// database degrades to read-only serving instead of lying about
// durability, no unlogged epoch is ever published, and every directory a
// fault leaves behind fscks clean — recovery never needs a hybrid.

// diskFault is a realistic injected storage error: an ENOSPC-rooted
// *os.PathError, so the wal taxonomy classifies it ErrDiskFull.
func diskFault(op string) error {
	return &os.PathError{Op: op, Path: "wal.log", Err: syscall.ENOSPC}
}

// TestChaosDiskFaultAppendSyncPoisons is the tentpole scenario: a failed
// fsync in Append on a live primary. The batch must fail with
// ErrDegraded, nothing may be published, readers and the feed keep
// serving the durable prefix, every later write fails fast, and the
// directory both scrubs and fscks clean.
func TestChaosDiskFaultAppendSyncPoisons(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	src := articleSrc(t)
	epochPre := db.Epoch()
	countPre := articleCount(t, db)
	seqPre, err := db.FeedSeq()
	if err != nil {
		t.Fatal(err)
	}

	disarm := faultpoint.Arm("wal/append-sync-error", faultpoint.Once(faultpoint.Error(diskFault("sync"))))
	defer disarm()
	_, err = db.LoadDocuments([]string{src})
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, wal.ErrDiskFull) {
		t.Fatalf("load under failed fsync = %v, want ErrDegraded wrapping ErrDiskFull", err)
	}
	if Code(err) != CodeDegraded {
		t.Errorf("Code = %q, want DEGRADED", Code(err))
	}

	// publishorder: the failed append published nothing, and readers keep
	// answering from the last good epoch.
	if got := db.Epoch(); got != epochPre {
		t.Fatalf("epoch after poisoned append = %d, want %d (no publish after failed append)", got, epochPre)
	}
	if got := articleCount(t, db); got != countPre {
		t.Errorf("reads after poison = %d articles, want %d", got, countPre)
	}

	// Every later write fails fast — including ones that never reach the
	// log — and the injector fired only once: the poison is sticky.
	if _, err := db.LoadDocuments([]string{src}); !errors.Is(err, ErrDegraded) {
		t.Errorf("second load = %v, want fast ErrDegraded", err)
	}
	if err := db.Name("another", 1); !errors.Is(err, ErrDegraded) {
		t.Errorf("Name on degraded db = %v, want ErrDegraded", err)
	}

	// Stats carry the state and the sticky reason.
	st := db.Stats()
	if !st.Degraded || st.DegradedReason == "" {
		t.Errorf("Stats degraded = (%v, %q), want (true, reason)", st.Degraded, st.DegradedReason)
	}
	if degraded, reason := db.DegradedState(); !degraded || reason != st.DegradedReason {
		t.Errorf("DegradedState = (%v, %q), disagrees with Stats", degraded, reason)
	}

	// The feed still ships the whole durable prefix: followers stay
	// current up to the last real commit of the degraded primary.
	frames, lastSeq, err := db.FeedFrames(0, 0, 1<<20)
	if err != nil || lastSeq != seqPre || len(frames) == 0 {
		t.Fatalf("feed on degraded primary = (%d bytes, seq %d, %v), want the prefix through %d", len(frames), lastSeq, err, seqPre)
	}

	// Online scrub of the degraded directory: the committed prefix is
	// intact.
	rep, err := db.Scrub()
	if err != nil {
		t.Fatalf("Scrub on degraded db: %v", err)
	}
	if rep.LastSeq != seqPre {
		t.Errorf("Scrub.LastSeq = %d, want %d", rep.LastSeq, seqPre)
	}

	// Close drains cleanly, the directory fscks clean, and a reopen
	// recovers exactly the pre-fault epoch.
	if err := db.Close(); err != nil {
		t.Fatalf("Close on degraded db: %v", err)
	}
	fsckRep, err := wal.Fsck(dir, false)
	if err != nil {
		t.Fatalf("fsck after poison: %v", err)
	}
	if !fsckRep.Clean() {
		t.Errorf("fsck after poison not clean: %+v", fsckRep)
	}
	db2 := reopenDurable(t, dir)
	if db2.Epoch() != epochPre || articleCount(t, db2) != countPre {
		t.Errorf("reopen recovered (epoch %d, %d articles), want (%d, %d)", db2.Epoch(), articleCount(t, db2), epochPre, countPre)
	}
	if st := db2.Stats(); st.Degraded {
		t.Error("reopened database still degraded")
	}
}

// TestChaosDiskFaultRewindPoisons is the satellite-1 regression at facade
// level: an append fails after its frame landed and the rewind's truncate
// reports failure. The live process must roll back, degrade, and keep
// serving — the log cannot tell whether the truncate took (the injection
// harness fires after a truncate that did), so it must assume the worst
// and fail closed. Recovery then lands on whichever consistent state the
// disk actually holds; with the harness, the pre-batch one.
func TestChaosDiskFaultRewindPoisons(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	src := articleSrc(t)
	epochPre := db.Epoch()
	countPre := articleCount(t, db)

	disarmA := faultpoint.Arm("wal/post-append", faultpoint.Once(faultpoint.Error(errBoom)))
	defer disarmA()
	disarmT := faultpoint.Arm("wal/rewind-truncate", faultpoint.Once(faultpoint.Error(diskFault("truncate"))))
	defer disarmT()
	_, err := db.LoadDocuments([]string{src})
	if !errors.Is(err, errBoom) || !errors.Is(err, ErrDegraded) {
		t.Fatalf("load = %v, want the injected fault dressed in ErrDegraded (the rewind poisoned)", err)
	}

	// Live process: rolled back, serving, degraded for writes.
	if db.Epoch() != epochPre || articleCount(t, db) != countPre {
		t.Fatalf("live state moved: epoch %d count %d, want %d %d", db.Epoch(), articleCount(t, db), epochPre, countPre)
	}
	if _, err := db.LoadDocuments([]string{src}); !errors.Is(err, ErrDegraded) {
		t.Errorf("post-poison load = %v, want ErrDegraded", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Whatever the disk holds is consistent: fsck reports no corruption
	// and recovery lands on the pre-batch state (the harness's truncate
	// physically succeeded before the injected failure).
	if _, err := wal.Fsck(dir, false); err != nil {
		t.Fatalf("fsck: %v", err)
	}
	db2 := reopenDurable(t, dir)
	if got := articleCount(t, db2); got != countPre {
		t.Errorf("recovery has %d titles, want the pre-fault %d", got, countPre)
	}
	if db2.Epoch() != epochPre {
		t.Errorf("recovery epoch = %d, want %d", db2.Epoch(), epochPre)
	}
}

// TestChaosDiskFaultCheckpointFailuresSurface is satellite 2: a sick disk
// under the checkpointer must not stay silent. Failures count, the streak
// grows, the last error is recorded, the log stays healthy — and one
// success clears the streak but not the total.
func TestChaosDiskFaultCheckpointFailuresSurface(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	src := articleSrc(t)

	disarm := faultpoint.Arm("wal/ckpt-write", faultpoint.Error(diskFault("sync")))
	for i := 1; i <= 2; i++ {
		if err := db.Checkpoint(); !errors.Is(err, wal.ErrDiskFull) {
			t.Fatalf("checkpoint %d under ENOSPC = %v, want ErrDiskFull", i, err)
		}
		st := db.Stats()
		if st.CheckpointFailures != uint64(i) || st.CheckpointFailStreak != uint64(i) || st.LastCheckpointError == "" {
			t.Fatalf("after failure %d: failures=%d streak=%d lastErr=%q", i, st.CheckpointFailures, st.CheckpointFailStreak, st.LastCheckpointError)
		}
		if st.Degraded {
			t.Fatal("failed checkpoint degraded the database (only the log keeps more history)")
		}
	}
	// The write path is unaffected the whole time.
	if _, err := db.LoadDocuments([]string{src}); err != nil {
		t.Fatalf("load while checkpoints fail: %v", err)
	}
	disarm()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after disarm: %v", err)
	}
	st := db.Stats()
	if st.CheckpointFailures != 2 || st.CheckpointFailStreak != 0 {
		t.Errorf("after recovery: failures=%d streak=%d, want 2, 0", st.CheckpointFailures, st.CheckpointFailStreak)
	}
	if st.CheckpointSeq == 0 {
		t.Error("successful checkpoint not reflected in CheckpointSeq")
	}
}

// TestChaosDiskFaultSweep is satellite 3: every storage-fault site driven
// at its commit-path seam, asserting the shared contract — readers keep
// serving the pre-fault state, nothing unlogged is ever published, and a
// reopen after the fault recovers exactly the pre-fault epoch.
func TestChaosDiskFaultSweep(t *testing.T) {
	cases := []struct {
		name string
		arm  func() func() // arm the site(s); returns disarm
		poke func(db *Database, src string) error
		// degrades: the fault must leave the database read-only.
		degrades bool
	}{
		{
			name: "append-sync",
			arm: func() func() {
				return faultpoint.Arm("wal/append-sync-error", faultpoint.Once(faultpoint.Error(diskFault("sync"))))
			},
			poke: func(db *Database, src string) error {
				_, err := db.LoadDocuments([]string{src})
				return err
			},
			degrades: true,
		},
		{
			name: "checkpoint-temp-write",
			arm: func() func() {
				return faultpoint.Arm("wal/ckpt-write", faultpoint.Once(faultpoint.Error(diskFault("sync"))))
			},
			poke:     func(db *Database, _ string) error { return db.Checkpoint() },
			degrades: false,
		},
		{
			name: "dir-sync-under-truncation",
			arm: func() func() {
				// The checkpoint's own dir sync (first hit) passes; the
				// prefix truncation's (second) fails after the rename, when
				// the old handle already points at the unlinked file.
				return faultpoint.Arm("wal/dir-sync", faultpoint.After(1, faultpoint.Error(diskFault("fsync"))))
			},
			poke:     func(db *Database, _ string) error { return db.Checkpoint() },
			degrades: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db := seedDurableDB(t, dir)
			src := articleSrc(t)
			epochPre := db.Epoch()
			countPre := articleCount(t, db)

			disarm := tc.arm()
			err := tc.poke(db, src)
			disarm()
			if err == nil {
				t.Fatalf("%s: armed operation succeeded", tc.name)
			}
			if got := db.Epoch(); got != epochPre {
				t.Fatalf("%s: epoch moved to %d under the fault, want %d", tc.name, got, epochPre)
			}
			if got := articleCount(t, db); got != countPre {
				t.Errorf("%s: reads broke under the fault: %d articles, want %d", tc.name, got, countPre)
			}
			_, loadErr := db.LoadDocuments([]string{src})
			if tc.degrades {
				if !errors.Is(loadErr, ErrDegraded) {
					t.Errorf("%s: load after fault = %v, want ErrDegraded", tc.name, loadErr)
				}
			} else if loadErr != nil {
				t.Errorf("%s: load after fault = %v, want healthy", tc.name, loadErr)
			}
			countLive := articleCount(t, db) // what a reopen must reproduce
			if err := db.Close(); err != nil {
				t.Fatalf("%s: Close: %v", tc.name, err)
			}
			if _, err := wal.Fsck(dir, false); err != nil {
				t.Fatalf("%s: fsck after fault: %v", tc.name, err)
			}
			db2 := reopenDurable(t, dir)
			if got := articleCount(t, db2); got != countLive {
				t.Errorf("%s: recovery has %d titles, the live process served %d", tc.name, got, countLive)
			}
			if st := db2.Stats(); st.Degraded {
				t.Errorf("%s: reopened database still degraded", tc.name)
			}
		})
	}
}
