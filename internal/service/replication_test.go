package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"sgmldb"
	"sgmldb/internal/wal"
)

// readCorpus loads the article DTD and document sources.
func readCorpus(t *testing.T) (dtd, doc string) {
	t.Helper()
	d, err := os.ReadFile("../../testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile("../../testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	return string(d), string(a)
}

// openPrimary opens a durable database (the replication source) with
// background checkpointing off, so tests control checkpoints explicitly.
func openPrimary(t *testing.T, dtd string) *sgmldb.Database {
	t.Helper()
	db, err := sgmldb.OpenDTD(dtd, sgmldb.WithDataDir(t.TempDir()), sgmldb.WithCheckpointEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// rawGet performs one GET and returns the raw body (feed and checkpoint
// responses are binary, not JSON).
func rawGet(t *testing.T, ts *httptest.Server, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// decodeFeed splits a feed body into records.
func decodeFeed(t *testing.T, body []byte) []wal.Record {
	t.Helper()
	var recs []wal.Record
	off := 0
	for off < len(body) {
		rec, n, err := wal.DecodeFrame(body[off:])
		if err != nil {
			t.Fatalf("feed frame at offset %d: %v", off, err)
		}
		recs = append(recs, rec)
		off += n
	}
	return recs
}

// waitFor polls cond to true within a generous deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServiceFeedHandshake(t *testing.T) {
	dtd, doc := readCorpus(t)
	db := openPrimary(t, dtd)
	if _, err := db.LoadDocuments([]string{doc, doc}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, Config{})

	// From 0: the full history (schema record + one load batch).
	status, hdr, body := rawGet(t, ts, "/v1/feed?after=0")
	if status != http.StatusOK {
		t.Fatalf("feed: status %d body %q", status, body)
	}
	recs := decodeFeed(t, body)
	if len(recs) != 2 || recs[0].Kind != wal.KindSchema || recs[1].Kind != wal.KindLoad {
		t.Fatalf("feed records = %+v", recs)
	}
	if hdr.Get("Sgmldb-Seq") != "2" || hdr.Get("Sgmldb-Primary-Seq") != "2" {
		t.Fatalf("feed headers: seq %q primary %q", hdr.Get("Sgmldb-Seq"), hdr.Get("Sgmldb-Primary-Seq"))
	}

	// Caught up: an empty body whose seq echoes the anchor.
	status, hdr, body = rawGet(t, ts, "/v1/feed?after=2&wait_ms=1")
	if status != http.StatusOK || len(body) != 0 || hdr.Get("Sgmldb-Seq") != "2" {
		t.Fatalf("caught up: status %d len %d seq %q", status, len(body), hdr.Get("Sgmldb-Seq"))
	}

	// Malformed anchor: 400.
	status, _, body = rawGet(t, ts, "/v1/feed?after=banana")
	if status != http.StatusBadRequest {
		t.Fatalf("bad anchor: status %d body %q", status, body)
	}
}

// TestServiceFeedLongPollWakes parks a feed request on an up-to-date
// anchor and proves a commit on the primary wakes it with the new record
// well before the wait window expires.
func TestServiceFeedLongPollWakes(t *testing.T) {
	dtd, doc := readCorpus(t)
	db := openPrimary(t, dtd)
	if _, err := db.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, Config{})

	type res struct {
		recs    []wal.Record
		elapsed time.Duration
	}
	got := make(chan res, 1)
	start := time.Now()
	go func() {
		_, _, body := rawGet(t, ts, "/v1/feed?after=2&wait_ms=30000")
		got <- res{decodeFeed(t, body), time.Since(start)}
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	if _, err := db.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if len(r.recs) != 1 || r.recs[0].Seq != 3 {
		t.Fatalf("woken poll got %+v", r.recs)
	}
	if r.elapsed > 10*time.Second {
		t.Fatalf("poll took %v; the commit signal did not wake it", r.elapsed)
	}
}

// TestServiceFeedDrainWakes proves Drain unparks waiting feeds at once.
func TestServiceFeedDrainWakes(t *testing.T) {
	dtd, doc := readCorpus(t)
	db := openPrimary(t, dtd)
	if _, err := db.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, db, Config{})
	got := make(chan int, 1)
	go func() {
		status, _, _ := rawGet(t, ts, "/v1/feed?after=2&wait_ms=30000")
		got <- status
	}()
	time.Sleep(50 * time.Millisecond)
	s.Drain()
	select {
	case status := <-got:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("drained feed: status %d", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not wake the parked feed")
	}
}

func TestServiceFeedNotPrimary(t *testing.T) {
	db := openTestDB(t, 1) // in-memory: no WAL to ship
	_, ts := newTestServer(t, db, Config{})
	status, body := call(t, ts, "GET", "/v1/feed?after=0", "", nil)
	if status != http.StatusForbidden || errCode(t, body) != sgmldb.CodeNotPrimary {
		t.Fatalf("feed on non-primary: status %d body %v", status, body)
	}
	status, body = call(t, ts, "GET", "/v1/checkpoint", "", nil)
	if status != http.StatusForbidden || errCode(t, body) != sgmldb.CodeNotPrimary {
		t.Fatalf("checkpoint on non-primary: status %d body %v", status, body)
	}
}

func TestServiceCheckpointNoneYet(t *testing.T) {
	dtd, _ := readCorpus(t)
	db := openPrimary(t, dtd)
	_, ts := newTestServer(t, db, Config{})
	status, body := call(t, ts, "GET", "/v1/checkpoint", "", nil)
	if status != http.StatusNotFound || errCode(t, body) != codeNoCheckpoint {
		t.Fatalf("checkpoint before any: status %d body %v", status, body)
	}
}

// runFollower starts a replication client over an OpenFollower database
// and returns it with a stopper that waits the loop out.
func runFollower(t *testing.T, dtd, primaryURL string) (*sgmldb.Database, func()) {
	t.Helper()
	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		t.Fatal(err)
	}
	fl := &Follower{DB: fdb, Primary: primaryURL, WaitMS: 200, MinBackoff: 5 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fl.Run(ctx) }()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		if err := <-done; err != context.Canceled {
			t.Errorf("follower loop: %v", err)
		}
	}
	t.Cleanup(stop)
	return fdb, stop
}

// TestServiceFollowerTailsAndServes is the end-to-end happy path: a
// follower bootstraps from scratch, tails live commits, converges to the
// primary's exact epoch, serves read-only queries, and rejects loads.
func TestServiceFollowerTailsAndServes(t *testing.T) {
	dtd, doc := readCorpus(t)
	primary := openPrimary(t, dtd)
	if _, err := primary.LoadDocuments([]string{doc, doc, doc}); err != nil {
		t.Fatal(err)
	}
	_, pts := newTestServer(t, primary, Config{})

	fdb, _ := runFollower(t, dtd, pts.URL)
	waitFor(t, "initial catch-up", func() bool { return fdb.AppliedSeq() == 2 })

	// Live tail: new commits on the primary arrive without re-anchoring.
	if _, err := primary.LoadDocuments([]string{doc, doc}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live tail", func() bool { return fdb.AppliedSeq() == 3 })
	if fdb.Epoch() != primary.Epoch() {
		t.Fatalf("follower epoch %d, primary %d", fdb.Epoch(), primary.Epoch())
	}

	// The follower serves reads at the primary's state...
	_, fts := newTestServer(t, fdb, Config{})
	status, body := call(t, fts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK || body["count"].(float64) != 5 {
		t.Fatalf("follower query: status %d body %v", status, body)
	}
	// ...reports its replication position in health...
	status, body = call(t, fts, "GET", "/v1/health", "", nil)
	if status != http.StatusOK || body["follower"] != true {
		t.Fatalf("follower health: status %d body %v", status, body)
	}
	if lag := body["lag"].(float64); lag != 0 {
		t.Fatalf("caught-up follower reports lag %v", lag)
	}
	if body["applied_seq"].(float64) != 3 || body["primary_seq"].(float64) != 3 {
		t.Fatalf("follower health seqs: %v", body)
	}
	// ...and refuses writes with the read-only wire code.
	status, body = call(t, fts, "POST", "/v1/load", "", map[string]any{"documents": []string{doc}})
	if status != http.StatusForbidden || errCode(t, body) != sgmldb.CodeReadOnly {
		t.Fatalf("follower load: status %d body %v", status, body)
	}

	// Follower stats carry the replication counters.
	st := fdb.Stats()
	if !st.Follower || st.AppliedSeq != 3 || st.PrimarySeq != 3 {
		t.Fatalf("follower stats: %+v", st)
	}
}

// TestServiceFeedTruncatedAnchorBootstraps is the checkpoint/replication
// interplay case: the primary checkpoints and truncates its log prefix,
// so a follower anchored before the floor must get 410 SEQ_TRUNCATED and
// recover by installing the checkpoint — landing on the primary's exact
// epoch with no record re-applied or skipped.
func TestServiceFeedTruncatedAnchorBootstraps(t *testing.T) {
	dtd, doc := readCorpus(t)
	primary := openPrimary(t, dtd)
	if _, err := primary.LoadDocuments([]string{doc, doc, doc}); err != nil {
		t.Fatal(err)
	}
	if err := primary.Checkpoint(); err != nil { // covers seq 2, truncates the prefix
		t.Fatal(err)
	}
	if _, err := primary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.LoadDocuments([]string{doc}); err != nil {
		t.Fatal(err)
	}
	_, pts := newTestServer(t, primary, Config{})

	// The wire handshake: an anchor under the floor is told to bootstrap.
	status, _, body := rawGet(t, pts, "/v1/feed?after=0")
	if status != http.StatusGone {
		t.Fatalf("feed under the floor: status %d body %q", status, body)
	}

	// A follower from scratch rides exactly that handshake: 410 →
	// checkpoint install → tail the two post-checkpoint loads.
	fdb, _ := runFollower(t, dtd, pts.URL)
	waitFor(t, "bootstrap + tail", func() bool { return fdb.AppliedSeq() == 4 })
	if fdb.Epoch() != primary.Epoch() {
		t.Fatalf("follower epoch %d, primary %d", fdb.Epoch(), primary.Epoch())
	}
	_, fts := newTestServer(t, fdb, Config{})
	status, body2 := call(t, fts, "POST", "/v1/query", "", map[string]any{"query": "select a from a in Articles"})
	if status != http.StatusOK || body2["count"].(float64) != 5 {
		t.Fatalf("follower query: status %d body %v", status, body2)
	}
}
