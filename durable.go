package sgmldb

import (
	"fmt"

	"sgmldb/internal/object"
	"sgmldb/internal/oql"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
	"sgmldb/internal/wal"
)

// Durability (DESIGN.md §8). With WithDataDir, every committed load batch
// and root naming appends one checksummed record to a write-ahead log and
// fsyncs it *before* the atomic snapshot swap publishes the new epoch —
// so any epoch a reader ever observed is recoverable. A checkpointer
// (background, every WithCheckpointEvery records, or on-demand via
// Checkpoint) serializes the published (instance, index, schema) triple
// to a sidecar file and truncates the log prefix it covers. OpenDTD on an
// existing directory recovers: newest valid checkpoint, then replay of
// the log tail; a torn tail record (the crash signature) is truncated
// silently, any other damage is ErrCorruptLog.

// defaultCheckpointEvery is the auto-checkpoint cadence (in committed
// records) when WithDataDir is set and WithCheckpointEvery is not.
const defaultCheckpointEvery = 8

// openDurable recovers (or initializes) the data directory and attaches
// the log to the database. Called from OpenDTD before the database is
// returned, so no queries or loads race it.
func (db *Database) openDurable(dtdSource string) error {
	db.dtdSource = dtdSource
	l, ck, tail, err := wal.Open(db.dataDir)
	if err != nil {
		return err
	}
	db.walLog = l
	if ck != nil {
		db.ckptSeq.Store(ck.Seq)
		if ck.DTD != dtdSource {
			l.Close()
			return fmt.Errorf("sgmldb: data directory %s holds a database for a different DTD", db.dataDir)
		}
		// Adopt the checkpointed version wholesale and re-anchor its epoch
		// so the sequence continues exactly where the durable history ended.
		inst := ck.Inst
		inst.SetEpoch(ck.Epoch)
		docs := make([]object.OID, len(ck.Docs))
		for i, o := range ck.Docs {
			docs[i] = object.OID(o)
		}
		db.Loader.Adopt(inst, docs)
		db.Engine.Publish(oql.State{Snap: inst.Snapshot(), Index: ck.Index})
	} else {
		db.Engine.Publish(oql.State{Snap: db.Loader.Instance.Snapshot(), Index: db.Engine.Index})
	}
	// Replay the records the checkpoint does not cover, through the same
	// commit path as live writes minus the append: loading is
	// deterministic, so replay reproduces the pre-crash oids and epochs.
	for _, rec := range tail {
		switch rec.Kind {
		case wal.KindSchema:
			if rec.Schema != dtdSource {
				l.Close()
				return fmt.Errorf("sgmldb: data directory %s holds a database for a different DTD", db.dataDir)
			}
		case wal.KindLoad:
			docs := make([]*sgml.Document, len(rec.Docs))
			for i, src := range rec.Docs {
				d, err := sgml.ParseDocument(db.Mapping.DTD, src)
				if err != nil {
					l.Close()
					return fmt.Errorf("sgmldb: replay record %d: %w", rec.Seq, err)
				}
				docs[i] = d
			}
			if _, err := db.commitLoad(docs, rec.Docs, false, 0); err != nil {
				l.Close()
				return fmt.Errorf("sgmldb: replay record %d: %w", rec.Seq, err)
			}
		case wal.KindName:
			if err := db.commitName(rec.Name, object.OID(rec.OID), false, 0); err != nil {
				l.Close()
				return fmt.Errorf("sgmldb: replay record %d: %w", rec.Seq, err)
			}
		case wal.KindTerm:
			// a replayed promotion only moves the term, which the log scan
			// already tracked; nothing to apply
		}
	}
	if l.Seq() == 0 && !db.follower.Load() {
		// Fresh directory: pin the DTD as the first record so a reopen can
		// verify it is given the same schema. A fresh *follower* directory
		// stays empty — its record 1 is the primary's shipped schema record.
		if err := l.Append(wal.Record{Kind: wal.KindSchema, Schema: dtdSource}); err != nil {
			l.Close()
			return err
		}
	}
	db.term.Store(l.Term())
	if db.follower.Load() {
		// A durable follower's local log is the shipped history: resume
		// applying exactly past what it already holds.
		db.appliedSeq.Store(l.Seq())
		db.ObservePrimarySeq(l.Seq())
	}
	if db.checkpointEvery == 0 {
		db.checkpointEvery = defaultCheckpointEvery
	}
	if db.checkpointEvery > 0 {
		db.ckptCh = make(chan *wal.Checkpoint, 1)
		db.ckptWG.Add(1)
		go db.checkpointer()
	}
	return nil
}

// captureCheckpoint snapshots everything a checkpoint needs. Caller holds
// loadMu, so the (seq, epoch, docs, inst, index) quintuple is consistent;
// the instance and index are published versions and thus immutable, so
// the checkpointer can serialize them outside the lock.
func (db *Database) captureCheckpoint(inst *store.Instance, ix *text.Index) *wal.Checkpoint {
	loaderDocs := db.Loader.Documents()
	docs := make([]uint64, len(loaderDocs))
	for i, o := range loaderDocs {
		docs[i] = uint64(o)
	}
	return &wal.Checkpoint{
		Seq:   db.walLog.Seq(),
		Epoch: inst.Epoch(),
		Term:  db.walLog.Term(),
		DTD:   db.dtdSource,
		Docs:  docs,
		Inst:  inst,
		Index: ix,
	}
}

// maybeCheckpoint hands the just-published version to the background
// checkpointer once enough records have accumulated. Caller holds loadMu.
// The send never blocks: if the checkpointer is still busy with the
// previous version, this one is skipped and the counter keeps growing, so
// the next commit offers again.
func (db *Database) maybeCheckpoint(inst *store.Instance, ix *text.Index) {
	if db.ckptCh == nil || db.walClosed {
		return
	}
	db.recordsSinceCkpt++
	if db.recordsSinceCkpt < db.checkpointEvery {
		return
	}
	select {
	case db.ckptCh <- db.captureCheckpoint(inst, ix):
		db.recordsSinceCkpt = 0
	default:
	}
}

// checkpointer is the background goroutine that makes offered versions
// durable and drops the log prefix they cover. A failed write only means
// the log keeps more history; the next offer retries from scratch.
func (db *Database) checkpointer() {
	defer db.ckptWG.Done()
	for ck := range db.ckptCh {
		db.writeCheckpoint(ck)
	}
}

// writeCheckpoint serializes one checkpoint and truncates the covered log
// prefix. ckptMu keeps on-demand and background checkpoints from
// interleaving their temp-file/rename/truncate sequences. Every failure —
// background or on-demand — is counted and its message recorded, so a
// silently sick disk shows up in Stats and /v1/health long before the log
// poisons: a failed checkpoint only means the log keeps more history, but
// a *streak* of them means recovery time is growing without bound.
func (db *Database) writeCheckpoint(ck *wal.Checkpoint) error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	err := wal.WriteCheckpoint(db.dataDir, ck)
	if err == nil {
		db.ckptSeq.Store(ck.Seq)
		err = db.walLog.TruncatePrefix(ck.Seq)
	}
	if err != nil {
		db.ckptFailures.Add(1)
		db.ckptFailStreak.Add(1)
		msg := err.Error()
		db.lastCkptErr.Store(&msg)
		return err
	}
	db.ckptFailStreak.Store(0)
	return nil
}

// Checkpoint forces a checkpoint of the currently published version and
// truncates the log prefix it covers, synchronously. On a database
// without a data directory it is a no-op. Useful before a planned
// shutdown to make the next open's recovery O(1) in loaded documents.
func (db *Database) Checkpoint() error {
	if db.walLog == nil {
		return nil
	}
	db.loadMu.Lock()
	st := db.state()
	ck := db.captureCheckpoint(st.Snap.Inst, st.Index)
	db.recordsSinceCkpt = 0
	db.loadMu.Unlock()
	return db.writeCheckpoint(ck)
}

// degradedErr reports the degraded-mode error writers fail fast with:
// non-nil exactly when the write-ahead log is poisoned. It wraps
// ErrDegraded around the log's sticky reason so callers can branch with
// errors.Is(err, ErrDegraded) and still read the root cause.
func (db *Database) degradedErr() error {
	if db.walLog == nil {
		return nil
	}
	if perr := db.walLog.Err(); perr != nil {
		return fmt.Errorf("%w: %w", ErrDegraded, perr)
	}
	return nil
}

// wrapDegraded dresses a commit-path append failure in ErrDegraded when
// the failure poisoned the log (or found it already poisoned). Transient
// injected faults that do not poison — the crash-seam faultpoints — pass
// through unchanged: they model a kill, not a sick disk.
func (db *Database) wrapDegraded(err error) error {
	if err == nil || db.walLog == nil || db.walLog.Err() == nil {
		return err
	}
	return fmt.Errorf("%w: %w", ErrDegraded, err)
}

// DegradedState reports whether the database is in degraded read-only
// mode and, when it is, the sticky reason (the first storage fault that
// poisoned the log). A non-durable database is never degraded.
func (db *Database) DegradedState() (degraded bool, reason string) {
	if db.walLog == nil {
		return false, ""
	}
	if perr := db.walLog.Err(); perr != nil {
		return true, perr.Error()
	}
	return false, ""
}

// CheckpointFailures reports the checkpoint-failure telemetry: total
// failed checkpoint attempts since open, the current consecutive-failure
// streak (0 after a success), and the last failure's message ("" if
// none).
func (db *Database) CheckpointFailures() (total, streak uint64, lastErr string) {
	total = db.ckptFailures.Load()
	streak = db.ckptFailStreak.Load()
	if msg := db.lastCkptErr.Load(); msg != nil {
		lastErr = *msg
	}
	return total, streak, lastErr
}

// ScrubReport summarises one online integrity pass over the data
// directory: every committed log frame re-read and re-validated, every
// checkpoint file fully decoded.
type ScrubReport struct {
	Frames         int    // valid committed log frames
	LastSeq        uint64 // last committed log sequence number
	Checkpoints    int    // checkpoint files that fully decode
	BadCheckpoints int    // checkpoint files that do not (recovery skips them)
	CheckpointSeq  uint64 // newest valid checkpoint's covered sequence
}

// Scrub runs an online integrity check of the data directory without
// stopping the database: it re-reads the committed log from disk and
// re-verifies every frame's checksum and the sequence chain, then fully
// decodes every checkpoint file. Readers are untouched (queries run
// against published in-memory epochs); appends are held out only for one
// sequential read of the log. A degraded database can still be scrubbed —
// auditing the durable prefix is exactly what an operator wants before
// failing over. On a database without a data directory it reports
// ErrNotPrimary.
func (db *Database) Scrub() (*ScrubReport, error) {
	if db.walLog == nil {
		return nil, fmt.Errorf("%w: scrub", ErrNotPrimary)
	}
	frames, lastSeq, err := db.walLog.Scrub()
	if err != nil {
		return nil, err
	}
	newest, valid, bad, err := wal.ScrubCheckpoints(db.dataDir)
	if err != nil {
		return nil, err
	}
	return &ScrubReport{
		Frames:         frames,
		LastSeq:        lastSeq,
		Checkpoints:    valid,
		BadCheckpoints: bad,
		CheckpointSeq:  newest,
	}, nil
}

// Close releases the durability machinery: it stops the background
// checkpointer and closes the log file. The in-memory database keeps
// answering queries, but further loads and namings fail. On a database
// without a data directory it is a no-op. Close is idempotent.
func (db *Database) Close() error {
	db.loadMu.Lock()
	if db.walLog == nil || db.walClosed {
		db.loadMu.Unlock()
		return nil
	}
	db.walClosed = true
	db.loadMu.Unlock()
	if db.ckptCh != nil {
		close(db.ckptCh)
	}
	db.ckptWG.Wait()
	return db.walLog.Close()
}
