package sgml

import (
	"os"
	"testing"
)

// The fuzz targets pin the parser contract: arbitrary input must produce
// a value or an error, never a panic, and a successfully parsed document
// must be internally consistent enough to walk.

func seedFile(f *testing.F, path string) {
	f.Helper()
	f.Add(mustReadFile(f, path))
}

func FuzzParseDTD(f *testing.F) {
	seedFile(f, "../../testdata/article.dtd")
	f.Add("<!ELEMENT a - - (#PCDATA)>")
	f.Add("<!ELEMENT a - - (b, c*)> <!ELEMENT (b|c) - O (#PCDATA)>")
	f.Add("<!ATTLIST a kind (x|y) x>")
	f.Add("<!ELEMENT")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		dtd, err := ParseDTD(src)
		if err == nil && dtd == nil {
			t.Fatal("ParseDTD returned nil, nil")
		}
	})
}

func FuzzParseDocument(f *testing.F) {
	seedFile(f, "../../testdata/article.sgml")
	f.Add("<article><title>t</title></article>")
	f.Add("<article status=\"draft\">")
	f.Add("</article>")
	f.Add("")
	dtd, err := ParseDTD(mustReadFile(f, "../../testdata/article.dtd"))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseDocument(dtd, src)
		if err == nil && doc == nil {
			t.Fatal("ParseDocument returned nil, nil")
		}
		if err == nil && doc.Root == nil {
			t.Fatal("parsed document has nil root")
		}
	})
}

func mustReadFile(f *testing.F, path string) string {
	f.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return string(src)
}
