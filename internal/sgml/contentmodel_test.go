package sgml

import (
	"strings"
	"testing"
)

// match runs a full symbol sequence against a model.
func match(m ContentModel, syms ...string) bool {
	mt := NewMatcher(m)
	for _, s := range syms {
		if !mt.Step(s) {
			return false
		}
	}
	return mt.Complete()
}

func TestSeqMatching(t *testing.T) {
	// (title, author+, abstract)
	m := Seq{Items: []ContentModel{
		Name{"title"},
		Occur{Item: Name{"author"}, Ind: Plus},
		Name{"abstract"},
	}}
	if !match(m, "title", "author", "abstract") {
		t.Error("one author")
	}
	if !match(m, "title", "author", "author", "author", "abstract") {
		t.Error("many authors")
	}
	if match(m, "title", "abstract") {
		t.Error("plus requires at least one")
	}
	if match(m, "author", "title", "abstract") {
		t.Error("order matters")
	}
	if match(m, "title", "author") {
		t.Error("incomplete must not match")
	}
	if match(m, "title", "author", "abstract", "author") {
		t.Error("trailing junk must not match")
	}
}

func TestChoiceAndOccurrences(t *testing.T) {
	// (figure | paragr)
	m := Choice{Items: []ContentModel{Name{"figure"}, Name{"paragr"}}}
	if !match(m, "figure") || !match(m, "paragr") {
		t.Error("choice members")
	}
	if match(m) || match(m, "figure", "paragr") {
		t.Error("choice picks exactly one")
	}
	// (picture, caption?)
	m2 := Seq{Items: []ContentModel{Name{"picture"}, Occur{Item: Name{"caption"}, Ind: Opt}}}
	if !match(m2, "picture") || !match(m2, "picture", "caption") {
		t.Error("optional caption")
	}
	if match(m2, "picture", "caption", "caption") {
		t.Error("? means at most one")
	}
	// body*
	m3 := Occur{Item: Name{"body"}, Ind: Rep}
	if !match(m3) || !match(m3, "body") || !match(m3, "body", "body", "body") {
		t.Error("star")
	}
}

func TestPaperSectionModel(t *testing.T) {
	// ((title, body+) | (title, body*, subsectn+)) — the paper's section
	// model, which is NOT 1-unambiguous: after title,body the match may
	// continue in either branch. The derivative matcher tracks both.
	m := Choice{Items: []ContentModel{
		Seq{Items: []ContentModel{Name{"title"}, Occur{Item: Name{"body"}, Ind: Plus}}},
		Seq{Items: []ContentModel{Name{"title"}, Occur{Item: Name{"body"}, Ind: Rep},
			Occur{Item: Name{"subsectn"}, Ind: Plus}}},
	}}
	if !match(m, "title", "body") {
		t.Error("branch 1")
	}
	if !match(m, "title", "subsectn") {
		t.Error("branch 2 without bodies")
	}
	if !match(m, "title", "body", "body", "subsectn", "subsectn") {
		t.Error("branch 2 with bodies")
	}
	if match(m, "title") {
		t.Error("title alone matches neither branch")
	}
	if match(m, "title", "subsectn", "body") {
		t.Error("body after subsectn")
	}
	if err := CheckAmbiguity(m, 64); err != nil {
		t.Errorf("bounded ambiguity must be accepted: %v", err)
	}
}

func TestAndConnector(t *testing.T) {
	// (to & from): both, in either order — Section 4.4's preamble.
	m := And{Items: []ContentModel{Name{"to"}, Name{"from"}}}
	if !match(m, "to", "from") || !match(m, "from", "to") {
		t.Error("& permits both orders")
	}
	if match(m, "to") || match(m, "from", "from") || match(m, "to", "from", "to") {
		t.Error("& requires each exactly once")
	}
	// Three-way with an optional member.
	m3 := And{Items: []ContentModel{Name{"a"}, Name{"b"}, Occur{Item: Name{"c"}, Ind: Opt}}}
	if !match(m3, "b", "a") || !match(m3, "c", "a", "b") || !match(m3, "a", "c", "b") {
		t.Error("3-way & with optional")
	}
	if match(m3, "a", "a", "b") {
		t.Error("repeat member")
	}
	// A member must complete before another begins.
	seq := And{Items: []ContentModel{
		Seq{Items: []ContentModel{Name{"x"}, Name{"y"}}},
		Name{"z"},
	}}
	if !match(seq, "x", "y", "z") || !match(seq, "z", "x", "y") {
		t.Error("& over groups")
	}
	if match(seq, "x", "z", "y") {
		t.Error("& member must not interleave")
	}
}

func TestPCDataAndEmptyAndAny(t *testing.T) {
	m := PCData{}
	if !match(m) || !match(m, PCDataSymbol) || !match(m, PCDataSymbol, PCDataSymbol) {
		t.Error("pcdata repeats freely")
	}
	if match(m, "title") {
		t.Error("pcdata admits no elements")
	}
	e := Empty{}
	if !match(e) || match(e, "x") || match(e, PCDataSymbol) {
		t.Error("EMPTY admits nothing")
	}
	a := AnyContent{}
	if !match(a) || !match(a, "x", PCDataSymbol, "y") {
		t.Error("ANY admits everything")
	}
	mt := NewMatcher(a)
	if !mt.AcceptsAny() {
		t.Error("AcceptsAny")
	}
	if got := mt.Next(); len(got) != 1 || got[0] != "*" {
		t.Errorf("ANY Next = %v", got)
	}
}

func TestMatcherNextAndRequired(t *testing.T) {
	m := Seq{Items: []ContentModel{
		Name{"title"},
		Occur{Item: Name{"author"}, Ind: Plus},
		Name{"abstract"},
	}}
	mt := NewMatcher(m)
	if got := mt.Next(); len(got) != 1 || got[0] != "title" {
		t.Errorf("Next = %v", got)
	}
	if sym, ok := mt.Required(); !ok || sym != "title" {
		t.Errorf("Required = %q %v", sym, ok)
	}
	mt.Step("title")
	if sym, ok := mt.Required(); !ok || sym != "author" {
		t.Errorf("Required after title = %q %v", sym, ok)
	}
	mt.Step("author")
	// Now author or abstract may come: no unique requirement.
	if _, ok := mt.Required(); ok {
		t.Error("Required must fail with two continuations")
	}
	if got := mt.Next(); len(got) != 2 {
		t.Errorf("Next = %v", got)
	}
	if !mt.CanStep("abstract") || mt.CanStep("title") {
		t.Error("CanStep")
	}
	// CanStep must not consume.
	if !mt.CanStep("abstract") {
		t.Error("CanStep consumed input")
	}
	mt.Step("abstract")
	if _, ok := mt.Required(); ok {
		t.Error("Required on complete model")
	}
	if !mt.Complete() {
		t.Error("Complete")
	}
}

func TestModelStrings(t *testing.T) {
	cases := []struct {
		m    ContentModel
		want string
	}{
		{Seq{Items: []ContentModel{Name{"title"}, Occur{Item: Name{"author"}, Ind: Plus}}},
			"(title, author+)"},
		{Choice{Items: []ContentModel{Name{"figure"}, Name{"paragr"}}}, "(figure | paragr)"},
		{And{Items: []ContentModel{Name{"to"}, Name{"from"}}}, "(to & from)"},
		{Occur{Item: Choice{Items: []ContentModel{Name{"a"}, Name{"b"}}}, Ind: Rep}, "(a | b)*"},
		{Occur{Item: PCData{}, Ind: Opt}, "#PCDATA?"},
		{Empty{}, "EMPTY"},
		{AnyContent{}, "ANY"},
		{PCData{}, "#PCDATA"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if Opt.String() != "?" || Plus.String() != "+" || Rep.String() != "*" {
		t.Error("occurrence strings")
	}
}

func TestCheckAmbiguityExplosion(t *testing.T) {
	// (a?, a?, …, a?, b): consuming an "a" leaves one residual per
	// possible alignment, so the derivative set grows with the number of
	// optional members; the checker must bound it rather than hang.
	var items []ContentModel
	for i := 0; i < 20; i++ {
		items = append(items, Occur{Item: Name{"a"}, Ind: Opt})
	}
	items = append(items, Name{"b"})
	m := Seq{Items: items}
	err := CheckAmbiguity(m, 8)
	if err == nil {
		t.Error("explosive model must be rejected at a small bound")
	}
	if err != nil && !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unexpected error: %v", err)
	}
	// The same model passes with a generous bound or fails fast — either
	// way CheckAmbiguity must terminate (implicitly tested by returning).
}

func TestDerivativeResidualsStayBounded(t *testing.T) {
	// Long repetitive input through a starred model must not grow the
	// residual set.
	m := Occur{Item: Choice{Items: []ContentModel{Name{"a"}, Name{"b"}}}, Ind: Rep}
	mt := NewMatcher(m)
	for i := 0; i < 1000; i++ {
		sym := "a"
		if i%3 == 0 {
			sym = "b"
		}
		if !mt.Step(sym) {
			t.Fatal("step failed")
		}
		if len(mt.residuals) > 4 {
			t.Fatalf("residual blow-up: %d", len(mt.residuals))
		}
	}
	if !mt.Complete() {
		t.Error("star always complete")
	}
}
