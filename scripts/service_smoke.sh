#!/bin/sh
# Service smoke test (make smoke / part of make ci): build sgmldbd and
# sgmldbload, start the server on loopback in tenant mode over the
# article corpus, fire a load-generator burst through the authenticated
# key, require zero request errors, then SIGTERM the server and require
# a clean drain (exit 0). A second leg stands up a durable primary plus
# a -follow replica: loads go to the primary, the follower must converge
# to lag 0 at the same epoch, serve a read burst with zero errors, and
# refuse loads with 403 READ_ONLY. A third leg kills the primary with
# SIGKILL mid-flight, runs sgmldbfsck over the data directory (-verify,
# then -repair when it finds recoverable crash damage), restarts the
# primary on the same directory, and requires the still-running follower
# to reconverge. A fourth leg is the failover drill: SIGKILL the primary
# again, POST /v1/promote the (durable) follower, load through the new
# primary, restart the corpse with -follow pointing at it, and require
# the rejoiner to converge on the new term's history; both data
# directories must fsck clean after the final drain. Fails fast on any
# step.
set -eu

GO=${GO:-go}
ADDR=${SGMLDBD_ADDR:-127.0.0.1:8344}
PRI_ADDR=${SGMLDBD_PRI_ADDR:-127.0.0.1:8354}
FOL_ADDR=${SGMLDBD_FOL_ADDR:-127.0.0.1:8364}
TMP=$(mktemp -d)
SRV_PID=
PRI_PID=
FOL_PID=

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "$FOL_PID" ] && kill "$FOL_PID" 2>/dev/null || true
    [ -n "$PRI_PID" ] && kill "$PRI_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# wait_health ADDR: poll /v1/health until the server answers.
wait_health() {
    i=0
    until curl -sf "http://$1/v1/health" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "service_smoke: server on $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "service_smoke: building"
$GO build -o "$TMP/sgmldbd" ./cmd/sgmldbd
$GO build -o "$TMP/sgmldbload" ./cmd/sgmldbload
$GO build -o "$TMP/sgmldbfsck" ./cmd/sgmldbfsck

cat > "$TMP/tenants.json" <<'EOF'
{"tenants": [
  {"name": "smoke", "api_key": "smoke-key", "max_concurrent": 32, "timeout_ms": 10000}
]}
EOF

echo "service_smoke: starting sgmldbd on $ADDR"
"$TMP/sgmldbd" -dtd testdata/article.dtd -addr "$ADDR" -tenants "$TMP/tenants.json" \
    testdata/article.sgml testdata/article.sgml testdata/article.sgml &
SRV_PID=$!

# Wait for the health endpoint (the server binds asynchronously).
wait_health "$ADDR"

echo "service_smoke: load burst"
"$TMP/sgmldbload" -addr "http://$ADDR" -key smoke-key -n 500 -c 8 -o "$TMP/report.json"
cat "$TMP/report.json"
grep -q '"errors": 0' "$TMP/report.json" || {
    echo "service_smoke: load generator reported request errors" >&2
    exit 1
}

echo "service_smoke: draining"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
    echo "service_smoke: sgmldbd exited non-zero" >&2
    SRV_PID=
    exit 1
}
SRV_PID=

# --- Replication leg: durable primary + read-only follower -------------

echo "service_smoke: starting primary on $PRI_ADDR (durable)"
"$TMP/sgmldbd" -dtd testdata/article.dtd -addr "$PRI_ADDR" -data "$TMP/data" &
PRI_PID=$!
wait_health "$PRI_ADDR"

echo "service_smoke: starting follower on $FOL_ADDR (durable: promotion-eligible)"
"$TMP/sgmldbd" -dtd testdata/article.dtd -addr "$FOL_ADDR" -data "$TMP/fdata" \
    -follow "http://$PRI_ADDR" -follow-wait-ms 200 &
FOL_PID=$!
wait_health "$FOL_ADDR"

echo "service_smoke: loading documents on the primary"
"$TMP/sgmldbload" -addr "http://$PRI_ADDR" -load testdata/article.sgml -load-count 3 \
    -n 100 -c 4 -o "$TMP/primary_report.json"
grep -q '"errors": 0' "$TMP/primary_report.json" || {
    echo "service_smoke: primary load burst reported request errors" >&2
    exit 1
}

# wait_converged PRIMARY FOLLOWER: poll the follower until it reports
# lag 0 at the primary's current epoch.
wait_converged() {
    pri_epoch=$(curl -sf "http://$1/v1/health" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')
    i=0
    while :; do
        h=$(curl -sf "http://$2/v1/health" || true)
        fol_epoch=$(printf '%s' "$h" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')
        lag=$(printf '%s' "$h" | sed -n 's/.*"lag":\([0-9]*\).*/\1/p')
        [ "$lag" = "0" ] && [ "$fol_epoch" = "$pri_epoch" ] && break
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "service_smoke: $2 never converged on $1 (primary epoch $pri_epoch); last health: $h" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "service_smoke: waiting for the follower to converge"
wait_converged "$PRI_ADDR" "$FOL_ADDR"

echo "service_smoke: read burst on the follower"
"$TMP/sgmldbload" -addr "http://$FOL_ADDR" -n 200 -c 4 -o "$TMP/follower_report.json"
cat "$TMP/follower_report.json"
grep -q '"errors": 0' "$TMP/follower_report.json" || {
    echo "service_smoke: follower read burst reported request errors" >&2
    exit 1
}

echo "service_smoke: loads on the follower must be refused"
code=$(curl -s -o "$TMP/load_reject.json" -w '%{http_code}' \
    -X POST "http://$FOL_ADDR/v1/load" \
    -d '{"documents": ["<article></article>"]}')
if [ "$code" != "403" ] || ! grep -q 'READ_ONLY' "$TMP/load_reject.json"; then
    echo "service_smoke: follower load: status $code, body:" >&2
    cat "$TMP/load_reject.json" >&2
    exit 1
fi

# --- Crash leg: SIGKILL the primary, fsck, restart, reconverge ---------

echo "service_smoke: killing the primary with SIGKILL"
kill -9 "$PRI_PID"
wait "$PRI_PID" 2>/dev/null || true
PRI_PID=

echo "service_smoke: sgmldbfsck -verify"
fsck_code=0
"$TMP/sgmldbfsck" -verify "$TMP/data" || fsck_code=$?
case "$fsck_code" in
0) ;;
1)
    echo "service_smoke: recoverable crash damage, repairing"
    "$TMP/sgmldbfsck" -repair "$TMP/data" || {
        echo "service_smoke: sgmldbfsck -repair failed (exit $?)" >&2
        exit 1
    }
    "$TMP/sgmldbfsck" -verify "$TMP/data" || {
        echo "service_smoke: data dir not clean after repair (exit $?)" >&2
        exit 1
    }
    ;;
*)
    echo "service_smoke: sgmldbfsck -verify exit $fsck_code on a crashed dir" >&2
    exit 1
    ;;
esac

echo "service_smoke: restarting the primary on the same data directory"
"$TMP/sgmldbd" -dtd testdata/article.dtd -addr "$PRI_ADDR" -data "$TMP/data" &
PRI_PID=$!
wait_health "$PRI_ADDR"

echo "service_smoke: post-restart load burst on the primary"
"$TMP/sgmldbload" -addr "http://$PRI_ADDR" -load testdata/article.sgml -load-count 2 \
    -n 50 -c 4 -o "$TMP/restart_report.json"
grep -q '"errors": 0' "$TMP/restart_report.json" || {
    echo "service_smoke: post-restart load burst reported request errors" >&2
    exit 1
}

echo "service_smoke: waiting for the follower to reconverge"
wait_converged "$PRI_ADDR" "$FOL_ADDR"

# --- Failover leg: SIGKILL primary, promote follower, rejoin corpse ----

echo "service_smoke: killing the primary with SIGKILL (failover drill)"
kill -9 "$PRI_PID"
wait "$PRI_PID" 2>/dev/null || true
PRI_PID=

echo "service_smoke: promoting the follower"
code=$(curl -s -o "$TMP/promote.json" -w '%{http_code}' -X POST "http://$FOL_ADDR/v1/promote")
if [ "$code" != "200" ] || ! grep -q '"promoted": *true' "$TMP/promote.json"; then
    echo "service_smoke: promote: status $code, body:" >&2
    cat "$TMP/promote.json" >&2
    exit 1
fi
cat "$TMP/promote.json"

echo "service_smoke: load burst on the new primary"
"$TMP/sgmldbload" -addr "http://$FOL_ADDR" -load testdata/article.sgml -load-count 2 \
    -n 50 -c 4 -o "$TMP/failover_report.json"
grep -q '"errors": 0' "$TMP/failover_report.json" || {
    echo "service_smoke: post-promotion load burst reported request errors" >&2
    exit 1
}

echo "service_smoke: rejoining the old primary as a follower of the new one"
"$TMP/sgmldbd" -dtd testdata/article.dtd -addr "$PRI_ADDR" -data "$TMP/data" \
    -follow "http://$FOL_ADDR" -follow-wait-ms 200 &
PRI_PID=$!
wait_health "$PRI_ADDR"

echo "service_smoke: waiting for the rejoiner to converge on the new term"
wait_converged "$FOL_ADDR" "$PRI_ADDR"
term=$(curl -sf "http://$PRI_ADDR/v1/health" | sed -n 's/.*"term":\([0-9]*\).*/\1/p')
if [ "$term" -lt 2 ]; then
    echo "service_smoke: rejoiner still at term $term after failover" >&2
    exit 1
fi

echo "service_smoke: draining the pair"
kill -TERM "$PRI_PID"
wait "$PRI_PID" || {
    echo "service_smoke: rejoined follower exited non-zero" >&2
    PRI_PID=
    exit 1
}
PRI_PID=
kill -TERM "$FOL_PID"
wait "$FOL_PID" || {
    echo "service_smoke: promoted primary exited non-zero" >&2
    FOL_PID=
    exit 1
}
FOL_PID=

echo "service_smoke: fsck both data directories after the drill"
for d in "$TMP/data" "$TMP/fdata"; do
    "$TMP/sgmldbfsck" -verify "$d" || {
        echo "service_smoke: $d not clean after drain (exit $?)" >&2
        exit 1
    }
done
echo "service_smoke: ok"
