package sgmldb

// Whole-pipeline property tests: for several generator seeds, every
// synthetic document must survive parse → load → check → export →
// re-parse → re-load with an isomorphic result, and snapshots must
// round-trip the whole instance.

import (
	"fmt"
	"path/filepath"
	"testing"

	"sgmldb/internal/calculus"
	"sgmldb/internal/corpus"
	"sgmldb/internal/dtdmap"
	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
)

func TestPropertyGeneratedCorpusRoundTrips(t *testing.T) {
	dtd, err := sgml.ParseDTD(corpus.ArticleDTD)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		g := corpus.NewGenerator(corpus.Params{Seed: seed, Docs: 2, Sections: 4, Words: 12})
		m, err := dtdmap.MapDTD(dtd)
		if err != nil {
			t.Fatal(err)
		}
		loader := dtdmap.NewLoader(m)
		for i := 0; i < 2; i++ {
			src := g.Article(i)
			doc, err := sgml.ParseDocument(dtd, src)
			if err != nil {
				t.Fatalf("seed %d doc %d: parse: %v", seed, i, err)
			}
			oid, err := loader.Load(doc)
			if err != nil {
				t.Fatalf("seed %d doc %d: load: %v", seed, i, err)
			}
			out, err := dtdmap.Export(m, loader.Instance, oid)
			if err != nil {
				t.Fatalf("seed %d doc %d: export: %v", seed, i, err)
			}
			doc2, err := sgml.ParseDocument(dtd, out)
			if err != nil {
				t.Fatalf("seed %d doc %d: re-parse: %v", seed, i, err)
			}
			m2, _ := dtdmap.MapDTD(dtd)
			l2 := dtdmap.NewLoader(m2)
			oid2, err := l2.Load(doc2)
			if err != nil {
				t.Fatalf("seed %d doc %d: re-load: %v", seed, i, err)
			}
			t1 := dtdmap.TextOf(loader.Instance, oid)
			t2 := dtdmap.TextOf(l2.Instance, oid2)
			if t1 != t2 {
				t.Fatalf("seed %d doc %d: text changed", seed, i)
			}
		}
		if errs := loader.Instance.Check(); len(errs) != 0 {
			t.Fatalf("seed %d: instance invalid: %v", seed, errs)
		}
	}
}

func TestPropertySnapshotPreservesWholeInstance(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		db, err := corpus.BuildArticles(corpus.Params{Seed: seed, Docs: 3, Sections: 3})
		if err != nil {
			t.Fatal(err)
		}
		inst := db.Loader.Instance
		path := filepath.Join(t.TempDir(), fmt.Sprintf("s%d.snap", seed))
		if err := store.SaveFile(path, inst); err != nil {
			t.Fatal(err)
		}
		inst2, err := store.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if inst2.NumObjects() != inst.NumObjects() {
			t.Fatalf("seed %d: object count %d vs %d", seed, inst2.NumObjects(), inst.NumObjects())
		}
		for _, o := range inst.Objects() {
			v1, _ := inst.Deref(o)
			v2, ok := inst2.Deref(o)
			if !ok || !object.Equal(v1, v2) {
				t.Fatalf("seed %d: object %s changed", seed, o)
			}
			c1, _ := inst.ClassOf(o)
			c2, _ := inst2.ClassOf(o)
			if c1 != c2 {
				t.Fatalf("seed %d: class of %s changed", seed, o)
			}
		}
		if errs := inst2.Check(); len(errs) != 0 {
			t.Fatalf("seed %d: reloaded instance invalid: %v", seed, errs)
		}
		// Queries over the reloaded instance agree with the original.
		db2, err := OpenSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		const q = `select t from a in Articles, a PATH_p.title(t)`
		want, err := db.Env.Eval(mustLower(t, db2, q))
		if err != nil {
			t.Fatal(err)
		}
		got, err := db2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !object.Equal(want.ToSet(), got) {
			t.Fatalf("seed %d: snapshot query drift", seed)
		}
	}
}

func mustLower(t *testing.T, db *Database, q string) *calculus.Query {
	t.Helper()
	lowered, err := db.Engine.Lower(q)
	if err != nil {
		t.Fatal(err)
	}
	return lowered
}
