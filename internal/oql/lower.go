package oql

import (
	"fmt"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/text"
)

// lowerer translates parsed O₂SQL into the calculus of Section 5 — the
// paper's remark that "any O₂SQL query of the form Doc PATH_p[i].ATT_a(x)…
// can be translated into a calculus expression ⟨Doc P[I]·A(X)…⟩" made
// systematic.
type lowerer struct {
	fresh int
	// roots knows the persistence roots, distinguishing root references
	// from unbound identifiers (nil means: any unbound identifier is a
	// root reference).
	roots map[string]bool
}

// Lower translates a parsed query into a calculus query. For a
// select-from-where the head is the projection; for a bare expression the
// head is a fresh variable equated with the expression.
func Lower(e Expr, roots []string) (*calculus.Query, error) {
	lw := &lowerer{}
	if roots != nil {
		lw.roots = map[string]bool{}
		for _, r := range roots {
			lw.roots[r] = true
		}
	}
	return lw.query(e, scope{})
}

// scope tracks the variables in scope with their sorts.
type scope map[string]calculus.Sort

func (s scope) with(name string, sort calculus.Sort) scope {
	out := make(scope, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	out[name] = sort
	return out
}

func (lw *lowerer) freshVar(prefix string) string {
	lw.fresh++
	return fmt.Sprintf("_%s%d", prefix, lw.fresh)
}

// rewriteDotDot replaces each ".." sugar element with a fresh anonymous
// path variable, so downstream lowering sees ordinary path variables.
func (lw *lowerer) rewriteDotDot(elems []PatElem) []PatElem {
	out := make([]PatElem, len(elems))
	for i, el := range elems {
		if _, ok := el.(DotDotP); ok {
			out[i] = PathVarP{Name: lw.freshVar("dd")}
		} else {
			out[i] = el
		}
	}
	return out
}

// query lowers a top-level or nested query expression.
func (lw *lowerer) query(e Expr, outer scope) (*calculus.Query, error) {
	if sel, ok := e.(SelectExpr); ok {
		return lw.selectQuery(sel, outer)
	}
	// A bare expression: a path-pattern expression yields its paths (or
	// bound values); anything else is equated with a fresh head variable.
	if pe, ok := e.(PathExpr); ok && patternHasVars(pe.Elems) {
		return lw.patternQuery(pe, outer)
	}
	head := lw.freshVar("r")
	t, err := lw.term(e, outer)
	if err != nil {
		return nil, err
	}
	return &calculus.Query{
		Head: []calculus.VarDecl{{Name: head, Sort: calculus.SortData}},
		Body: calculus.Eq{L: calculus.Var{Name: head}, R: t},
	}, nil
}

// selectQuery lowers select-from-where.
func (lw *lowerer) selectQuery(sel SelectExpr, outer scope) (*calculus.Query, error) {
	sc := outer
	var declared []calculus.VarDecl
	declare := func(name string, sort calculus.Sort) error {
		if _, dup := sc[name]; dup {
			return fmt.Errorf("oql: variable %s declared twice", name)
		}
		sc = sc.with(name, sort)
		declared = append(declared, calculus.VarDecl{Name: name, Sort: sort})
		return nil
	}
	// First pass: declare every variable the from clause introduces, so
	// that bindings may reference each other in any order the clause
	// allows (a in Articles, s in a.sections).
	for i := range sel.From {
		b := &sel.From[i]
		switch {
		case b.Attr != "":
			if err := declare(b.PosVar, calculus.SortData); err != nil {
				return nil, err
			}
		case b.Base != nil:
			pe, ok := b.Base.(PathExpr)
			if !ok {
				return nil, fmt.Errorf("oql: from entry %s is not a path pattern", b.Base)
			}
			pe.Elems = lw.rewriteDotDot(pe.Elems)
			b.Base = pe
			for _, v := range patternVars(pe.Elems, sc) {
				if err := declare(v.Name, v.Sort); err != nil {
					return nil, err
				}
			}
		default:
			if err := declare(b.Var, calculus.SortData); err != nil {
				return nil, err
			}
		}
	}
	// Second pass: lower the bindings.
	var conjs []calculus.Formula
	for _, b := range sel.From {
		f, err := lw.fromFormula(b, sc)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, f)
	}
	if sel.Where != nil {
		w, err := lw.cond(sel.Where, sc)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, w)
	}
	// Projection: a bare in-scope variable becomes the head directly;
	// anything else is computed into a fresh head variable.
	var head calculus.VarDecl
	switch proj := sel.Proj.(type) {
	case Ident:
		if sort, ok := sc[proj.Name]; ok {
			head = calculus.VarDecl{Name: proj.Name, Sort: sort}
		}
	case PathVarRef:
		if _, ok := sc[proj.Name]; ok {
			head = calculus.VarDecl{Name: proj.Name, Sort: calculus.SortPath}
		}
	case AttrVarRef:
		if _, ok := sc[proj.Name]; ok {
			head = calculus.VarDecl{Name: proj.Name, Sort: calculus.SortAttr}
		}
	default:
		// computed projection: handled by the fresh-variable fallback below
	}
	if head.Name == "" {
		head = calculus.VarDecl{Name: lw.freshVar("r"), Sort: calculus.SortData}
		t, err := lw.term(sel.Proj, sc)
		if err != nil {
			return nil, err
		}
		conjs = append(conjs, calculus.Eq{L: calculus.Var{Name: head.Name}, R: t})
	}
	// Quantify every declared variable except the head.
	var quant []calculus.VarDecl
	for _, d := range declared {
		if d.Name != head.Name {
			quant = append(quant, d)
		}
	}
	body := calculus.Conj(conjs...)
	if len(quant) > 0 {
		body = calculus.Exists{Vars: quant, Body: body}
	}
	return &calculus.Query{Head: []calculus.VarDecl{head}, Body: body}, nil
}

// patternQuery lowers a bare path-pattern expression like
// "my_article PATH_p.title": the result is the set of values of its
// distinguished variable — the single path variable if there is exactly
// one, else the single (x) binding.
func (lw *lowerer) patternQuery(pe PathExpr, outer scope) (*calculus.Query, error) {
	sc := outer
	pe.Elems = lw.rewriteDotDot(pe.Elems)
	vars := patternVars(pe.Elems, sc)
	var headName string
	var headSort calculus.Sort
	var pathVars, bindVars []calculus.VarDecl
	for _, v := range vars {
		sc = sc.with(v.Name, v.Sort)
		if v.Sort == calculus.SortPath {
			pathVars = append(pathVars, v)
		} else if v.Sort == calculus.SortData {
			bindVars = append(bindVars, v)
		}
	}
	switch {
	case len(pathVars) == 1:
		headName, headSort = pathVars[0].Name, calculus.SortPath
	case len(bindVars) == 1:
		headName, headSort = bindVars[0].Name, calculus.SortData
	default:
		return nil, fmt.Errorf("oql: ambiguous bare path pattern %s: name one variable", pe)
	}
	atom, err := lw.pathAtom(pe, sc)
	if err != nil {
		return nil, err
	}
	var quant []calculus.VarDecl
	for _, v := range vars {
		if v.Name != headName {
			quant = append(quant, v)
		}
	}
	var body calculus.Formula = atom
	if len(quant) > 0 {
		body = calculus.Exists{Vars: quant, Body: body}
	}
	return &calculus.Query{
		Head: []calculus.VarDecl{{Name: headName, Sort: headSort}},
		Body: body,
	}, nil
}

// fromFormula lowers one from-clause binding.
func (lw *lowerer) fromFormula(b FromBinding, sc scope) (calculus.Formula, error) {
	switch {
	case b.Attr != "":
		// attr(i) in coll: i ranges over the positions of marker attr in
		// the tuple viewed as a heterogeneous list (Section 4.4).
		coll, err := lw.term(b.Coll, sc)
		if err != nil {
			return nil, err
		}
		return calculus.PathAtom{Base: coll, Path: calculus.P(
			calculus.ElemIndex{I: calculus.Var{Name: b.PosVar}},
			calculus.ElemAttr{A: calculus.AttrName{Name: b.Attr}},
		)}, nil
	case b.Base != nil:
		return lw.pathAtom(b.Base.(PathExpr), sc)
	default:
		coll, err := lw.term(b.Coll, sc)
		if err != nil {
			return nil, err
		}
		return calculus.In{L: calculus.Var{Name: b.Var}, R: coll}, nil
	}
}

// pathAtom lowers a path-pattern expression to a path predicate.
func (lw *lowerer) pathAtom(pe PathExpr, sc scope) (calculus.Formula, error) {
	base, err := lw.term(pe.Base, sc)
	if err != nil {
		return nil, err
	}
	elems, err := lw.patElems(pe.Elems, sc)
	if err != nil {
		return nil, err
	}
	return calculus.PathAtom{Base: base, Path: calculus.PathTerm{Elems: elems}}, nil
}

// patElems lowers pattern elements. The ".." sugar becomes an anonymous
// path variable declared by patternVars.
func (lw *lowerer) patElems(elems []PatElem, sc scope) ([]calculus.PathElem, error) {
	var out []calculus.PathElem
	for _, el := range elems {
		switch x := el.(type) {
		case AttrP:
			out = append(out, calculus.ElemAttr{A: calculus.AttrName{Name: x.Name}})
		case AttrVarP:
			out = append(out, calculus.ElemAttr{A: calculus.AttrVar{Name: x.Name}})
		case PathVarP:
			out = append(out, calculus.ElemVar{Name: x.Name})
		case DerefP:
			out = append(out, calculus.ElemDeref{})
		case BindP:
			out = append(out, calculus.ElemBind{X: x.Var})
		case IdxP:
			t, err := lw.term(x.I, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, calculus.ElemIndex{I: t})
		default:
			return nil, fmt.Errorf("oql: cannot lower pattern element %s", el)
		}
	}
	return out, nil
}

// patternVars lists the variables a pattern introduces (those not already
// in scope).
func patternVars(elems []PatElem, sc scope) []calculus.VarDecl {
	var out []calculus.VarDecl
	seen := map[string]bool{}
	add := func(name string, sort calculus.Sort) {
		if _, inScope := sc[name]; inScope || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, calculus.VarDecl{Name: name, Sort: sort})
	}
	for _, el := range elems {
		switch x := el.(type) {
		case PathVarP:
			add(x.Name, calculus.SortPath)
		case AttrVarP:
			add(x.Name, calculus.SortAttr)
		case BindP:
			add(x.Var, calculus.SortData)
		case IdxP:
			if id, ok := x.I.(Ident); ok {
				add(id.Name, calculus.SortData)
			}
		}
	}
	return out
}

// patternHasVars reports whether a path suffix introduces variables
// (making the expression a query rather than plain navigation).
func patternHasVars(elems []PatElem) bool {
	for _, el := range elems {
		switch el.(type) {
		case PathVarP, AttrVarP, BindP, DotDotP:
			return true
		}
	}
	return false
}

// cond lowers a boolean condition to a formula.
func (lw *lowerer) cond(e Expr, sc scope) (calculus.Formula, error) {
	switch x := e.(type) {
	case Binary:
		switch x.Op {
		case OpAnd, OpOr:
			l, err := lw.cond(x.L, sc)
			if err != nil {
				return nil, err
			}
			r, err := lw.cond(x.R, sc)
			if err != nil {
				return nil, err
			}
			if x.Op == OpAnd {
				return calculus.And{L: l, R: r}, nil
			}
			return calculus.Or{L: l, R: r}, nil
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIn:
			l, err := lw.term(x.L, sc)
			if err != nil {
				return nil, err
			}
			r, err := lw.term(x.R, sc)
			if err != nil {
				return nil, err
			}
			switch x.Op {
			case OpEq:
				return calculus.Eq{L: l, R: r}, nil
			case OpIn:
				return calculus.In{L: l, R: r}, nil
			case OpNe:
				return calculus.Cmp{Op: calculus.Ne, L: l, R: r}, nil
			case OpLt:
				return calculus.Cmp{Op: calculus.Lt, L: l, R: r}, nil
			case OpLe:
				return calculus.Cmp{Op: calculus.Le, L: l, R: r}, nil
			case OpGt:
				return calculus.Cmp{Op: calculus.Gt, L: l, R: r}, nil
			default:
				return calculus.Cmp{Op: calculus.Ge, L: l, R: r}, nil
			}
		default:
			return nil, fmt.Errorf("oql: %s is not a condition", e)
		}
	case NotExpr:
		f, err := lw.cond(x.E, sc)
		if err != nil {
			return nil, err
		}
		return calculus.Not{F: f}, nil
	case ContainsExpr:
		t, err := lw.term(x.Subject, sc)
		if err != nil {
			return nil, err
		}
		pat, err := lowerPattern(x.Pattern)
		if err != nil {
			return nil, err
		}
		return calculus.Contains{T: t, E: pat}, nil
	case NearCond:
		t, err := lw.term(x.Subject, sc)
		if err != nil {
			return nil, err
		}
		return calculus.Contains{T: t, E: text.NearExpr{A: x.A, B: x.B, Dist: int(x.Dist)}}, nil
	case ExistsExpr:
		coll, err := lw.term(x.Coll, sc)
		if err != nil {
			return nil, err
		}
		inner := sc.with(x.Var, calculus.SortData)
		cond, err := lw.cond(x.Cond, inner)
		if err != nil {
			return nil, err
		}
		return calculus.Exists{
			Vars: []calculus.VarDecl{{Name: x.Var, Sort: calculus.SortData}},
			Body: calculus.And{L: calculus.In{L: calculus.Var{Name: x.Var}, R: coll}, R: cond},
		}, nil
	case ForallExpr:
		coll, err := lw.term(x.Coll, sc)
		if err != nil {
			return nil, err
		}
		inner := sc.with(x.Var, calculus.SortData)
		cond, err := lw.cond(x.Cond, inner)
		if err != nil {
			return nil, err
		}
		return calculus.Forall{
			Vars:  []calculus.VarDecl{{Name: x.Var, Sort: calculus.SortData}},
			Range: calculus.In{L: calculus.Var{Name: x.Var}, R: coll},
			Then:  cond,
		}, nil
	case BoolLit:
		if x.V {
			return calculus.TrueF{}, nil
		}
		return calculus.Not{F: calculus.TrueF{}}, nil
	default:
		// A boolean-valued expression: compare with true.
		t, err := lw.term(e, sc)
		if err != nil {
			return nil, err
		}
		return calculus.Eq{L: t, R: calculus.Bl(true)}, nil
	}
}

// lowerPattern compiles a pattern expression to a text.Expr.
func lowerPattern(p PatternExpr) (text.Expr, error) {
	switch x := p.(type) {
	case PatLit:
		return text.PatternExpr(x.Src)
	case PatAnd:
		l, err := lowerPattern(x.L)
		if err != nil {
			return nil, err
		}
		r, err := lowerPattern(x.R)
		if err != nil {
			return nil, err
		}
		return text.And(l, r), nil
	case PatOr:
		l, err := lowerPattern(x.L)
		if err != nil {
			return nil, err
		}
		r, err := lowerPattern(x.R)
		if err != nil {
			return nil, err
		}
		return text.Or(l, r), nil
	case PatNot:
		e, err := lowerPattern(x.E)
		if err != nil {
			return nil, err
		}
		return text.Not(e), nil
	default:
		return nil, fmt.Errorf("oql: unknown pattern %T", p)
	}
}

// term lowers an expression to a data term.
func (lw *lowerer) term(e Expr, sc scope) (calculus.DataTerm, error) {
	switch x := e.(type) {
	case Ident:
		if sort, ok := sc[x.Name]; ok {
			if sort != calculus.SortData {
				return nil, fmt.Errorf("oql: variable %s is a %v variable, not data", x.Name, sort)
			}
			return calculus.Var{Name: x.Name}, nil
		}
		if lw.roots != nil && !lw.roots[x.Name] {
			return nil, fmt.Errorf("oql: unknown name %s (neither a variable in scope nor a persistence root)", x.Name)
		}
		return calculus.NameRef{Name: x.Name}, nil
	case IntLit:
		return calculus.Num(x.V), nil
	case FloatLit:
		return calculus.Const{V: object.Float(x.V)}, nil
	case StringLit:
		return calculus.Str(x.V), nil
	case BoolLit:
		return calculus.Bl(x.V), nil
	case NilLit:
		return calculus.Const{V: object.Nil{}}, nil
	case PathExpr:
		if patternHasVars(x.Elems) {
			// A pattern used as a value: the set its query denotes (Q4).
			q, err := lw.patternQuery(x, sc)
			if err != nil {
				return nil, err
			}
			return calculus.InnerQuery{Q: q}, nil
		}
		base, err := lw.term(x.Base, sc)
		if err != nil {
			return nil, err
		}
		elems, err := lw.patElems(x.Elems, sc)
		if err != nil {
			return nil, err
		}
		return calculus.PathApply{Base: base, Path: calculus.PathTerm{Elems: elems}}, nil
	case SelectExpr:
		q, err := lw.selectQuery(x, sc)
		if err != nil {
			return nil, err
		}
		return calculus.InnerQuery{Q: q}, nil
	case Binary:
		switch x.Op {
		case OpUnion, OpExcept, OpIntersect:
			l, err := lw.term(x.L, sc)
			if err != nil {
				return nil, err
			}
			r, err := lw.term(x.R, sc)
			if err != nil {
				return nil, err
			}
			name := map[BinOp]string{OpUnion: "union", OpExcept: "diff", OpIntersect: "intersect"}[x.Op]
			return calculus.FuncCall{Name: name, Args: []calculus.Term{l, r}}, nil
		default:
			return nil, fmt.Errorf("oql: %s is a condition, not a value", e)
		}
	case Call:
		args := make([]calculus.Term, len(x.Args))
		for i, a := range x.Args {
			switch av := a.(type) {
			case PathVarRef:
				if _, ok := sc[av.Name]; !ok {
					return nil, fmt.Errorf("oql: path variable PATH_%s not in scope", av.Name)
				}
				args[i] = calculus.PVar(av.Name)
			case AttrVarRef:
				if _, ok := sc[av.Name]; !ok {
					return nil, fmt.Errorf("oql: attribute variable ATT_%s not in scope", av.Name)
				}
				args[i] = calculus.AttrVar{Name: av.Name}
			default:
				t, err := lw.term(a, sc)
				if err != nil {
					return nil, err
				}
				args[i] = t
			}
		}
		return calculus.FuncCall{Name: x.Name, Args: args}, nil
	case TupleCons:
		fields := make([]calculus.TupleField, len(x.Fields))
		for i, f := range x.Fields {
			t, err := lw.term(f.E, sc)
			if err != nil {
				return nil, err
			}
			fields[i] = calculus.TupleField{Attr: calculus.AttrName{Name: f.Name}, T: t}
		}
		return calculus.TupleTerm{Fields: fields}, nil
	case ListCons:
		items := make([]calculus.DataTerm, len(x.Items))
		for i, it := range x.Items {
			t, err := lw.term(it, sc)
			if err != nil {
				return nil, err
			}
			items[i] = t
		}
		return calculus.ListTerm{Items: items}, nil
	case SetCons:
		items := make([]calculus.DataTerm, len(x.Items))
		for i, it := range x.Items {
			t, err := lw.term(it, sc)
			if err != nil {
				return nil, err
			}
			items[i] = t
		}
		return calculus.SetTerm{Items: items}, nil
	case PathVarRef:
		return nil, fmt.Errorf("oql: PATH_%s cannot be used as a data value directly (use length/slice or project it)", x.Name)
	case AttrVarRef:
		// name(ATT_a) is the way to observe an attribute variable; as a
		// data value it denotes its name.
		if _, ok := sc[x.Name]; !ok {
			return nil, fmt.Errorf("oql: attribute variable ATT_%s not in scope", x.Name)
		}
		return calculus.FuncCall{Name: "name", Args: []calculus.Term{calculus.AttrVar{Name: x.Name}}}, nil
	default:
		return nil, fmt.Errorf("oql: cannot use %s as a value", e)
	}
}
