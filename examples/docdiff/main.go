// Docdiff: query Q4 of the paper — the structural difference between two
// versions of a document is the set difference of their path sets,
// because paths are first-class citizens.
package main

import (
	"fmt"
	"log"
	"sort"

	"sgmldb"
	"sgmldb/internal/object"
	"sgmldb/internal/path"
)

const memoDTD = `<!DOCTYPE memo [
<!ELEMENT memo - - (title, para+)>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT para - O (#PCDATA)>
]>`

const oldVersion = `<memo><title>Plan</title>
<para>Write the mapping.
<para>Write the query language.
</memo>`

const newVersion = `<memo><title>Plan</title>
<para>Write the mapping.
<para>Write the query language.
<para>Benchmark the algebra.
</memo>`

func main() {
	db, err := sgmldb.OpenDTD(memoDTD)
	if err != nil {
		log.Fatal(err)
	}
	oldOID, err := db.LoadDocument(oldVersion)
	if err != nil {
		log.Fatal(err)
	}
	newOID, err := db.LoadDocument(newVersion)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Name("my_old_memo", oldOID); err != nil {
		log.Fatal(err)
	}
	if err := db.Name("my_memo", newOID); err != nil {
		log.Fatal(err)
	}

	// Q4, verbatim shape: my_article PATH_p - my_old_article PATH_p.
	diff, err := db.Query(`my_memo PATH_p - my_old_memo PATH_p`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paths in the new version and not in the old one:")
	printPaths(diff)

	// Supplementary conditions detect moved/updated text: the new titles.
	newTitles, err := db.Query(`
(select t from p in my_memo.paras, p.content(t)) -
(select t from p in my_old_memo.paras, p.content(t))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnew paragraph texts:")
	for _, v := range newTitles.(*object.Set).Elems() {
		fmt.Printf("  %s\n", v)
	}
}

func printPaths(v object.Value) {
	s := v.(*object.Set)
	var lines []string
	for i := 0; i < s.Len(); i++ {
		if p, err := path.FromValue(s.At(i)); err == nil {
			lines = append(lines, p.String())
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Printf("  %s\n", l)
	}
}
