// Package sgmldb is a from-scratch Go implementation of "From Structured
// Documents to Novel Query Facilities" (Christophides, Abiteboul, Cluet,
// Scholl — SIGMOD 1994): SGML documents mapped into an object database
// with an extended O₂ data model (ordered tuples, marked unions), queried
// through an extended O₂SQL with paths as first-class citizens, and
// evaluated through the many-sorted calculus of the paper and its
// algebraization.
//
// The typical flow:
//
//	db, _ := sgmldb.OpenDTD(dtdSource)            // Figure 1 → Figure 3
//	oid, _ := db.LoadDocument(articleSource)      // Figure 2 → objects
//	db.Name("my_article", oid)                    // a root of persistence
//	res, _ := db.Query(`select t from my_article PATH_p.title(t)`)
//
// Everything is stdlib-only and in-memory, with snapshot persistence via
// Save and OpenSnapshot.
//
// # Concurrency
//
// A Database is safe for concurrent use under a single-writer /
// multi-reader discipline enforced internally with an RWMutex: the
// mutating methods (LoadDocument, Name, UseAlgebra) take the write lock,
// while queries (Query, QueryContext, QueryRows, prepared Run/Rows) and
// the other read-only methods share the read lock. Readers run fully in
// parallel — the hot evaluation path pays no per-object synchronisation —
// and a writer simply excludes them for the duration of a load. Query
// evaluation itself can additionally use multiple goroutines per query
// (see WithWorkers) and is cancellable through QueryContext.
package sgmldb

import (
	"context"
	"fmt"
	"os"
	"sync"

	"sgmldb/internal/calculus"
	"sgmldb/internal/dtdmap"
	"sgmldb/internal/object"
	"sgmldb/internal/oql"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// Database bundles a mapped schema, its instance, the query engine and
// the full-text index.
type Database struct {
	Mapping *dtdmap.Mapping
	Loader  *dtdmap.Loader
	Engine  *oql.Engine

	// mu enforces the single-writer/multi-reader discipline: document
	// loads and root naming take the write lock, queries the read lock.
	mu sync.RWMutex
}

// OpenDTD compiles a DTD (Section 3) and opens an empty database for its
// documents.
func OpenDTD(dtdSource string, opts ...Option) (*Database, error) {
	dtd, err := sgml.ParseDTD(dtdSource)
	if err != nil {
		return nil, err
	}
	m, err := dtdmap.MapDTD(dtd)
	if err != nil {
		return nil, err
	}
	loader := dtdmap.NewLoader(m)
	db := &Database{Mapping: m, Loader: loader}
	db.wire(loader.Instance, opts)
	return db, nil
}

// wire builds the engine over an instance and applies the open options.
func (db *Database) wire(inst *store.Instance, opts []Option) {
	env := calculus.NewEnv(inst)
	env.TextOf = func(v object.Value) string { return dtdmap.TextOf(inst, v) }
	db.Engine = oql.New(env)
	db.Engine.Index = text.NewIndex()
	for _, opt := range opts {
		opt(db)
	}
}

// Instance exposes the underlying store instance.
func (db *Database) Instance() *store.Instance { return db.Engine.Env.Inst }

// Schema exposes the mapped schema.
func (db *Database) Schema() *store.Schema { return db.Instance().Schema() }

// LoadDocument parses, validates and loads one SGML document, returning
// the oid of its document object. The document is added to the plural
// persistence root (e.g. Articles) and to the full-text index. It excludes
// concurrent queries for the duration of the load; on a snapshot database
// it reports ErrReadOnly.
func (db *Database) LoadDocument(src string) (object.OID, error) {
	if db.Loader == nil {
		return 0, ErrReadOnly
	}
	doc, err := sgml.ParseDocument(db.Mapping.DTD, src)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	oid, err := db.Loader.Load(doc)
	if err != nil {
		return 0, err
	}
	db.Engine.Index.Add(text.DocID(oid), dtdmap.TextOf(db.Instance(), oid))
	return oid, nil
}

// Name declares a root of persistence for an object (e.g. my_article),
// making it addressable from queries. It reports ErrUnknownObject for an
// unassigned oid.
func (db *Database) Name(name string, oid object.OID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	class, ok := db.Instance().ClassOf(oid)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownObject, oid)
	}
	if _, exists := db.Schema().RootType(name); !exists {
		if err := db.Schema().AddRoot(name, object.Class(class)); err != nil {
			return err
		}
	}
	return db.Instance().SetRoot(name, oid)
}

// Query runs an extended O₂SQL query and returns its value (a set for
// select and pattern queries). It is QueryContext under
// context.Background.
func (db *Database) Query(src string) (object.Value, error) {
	return db.QueryContext(context.Background(), src)
}

// QueryContext runs a query under a context: cancelling ctx makes the
// evaluation return ctx's error promptly. Any number of QueryContext
// calls may run concurrently.
func (db *Database) QueryContext(ctx context.Context, src string) (object.Value, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Engine.QueryContext(ctx, src)
}

// QueryRows runs a query and returns the raw rows with their sorted
// bindings (paths stay paths).
func (db *Database) QueryRows(src string) (*calculus.Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Engine.Rows(src)
}

// Prepare parses, typechecks and compiles a query once for repeated —
// possibly concurrent — execution via Run or Rows.
func (db *Database) Prepare(src string) (*PreparedQuery, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.Engine.Prepare(src)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{db: db, p: p}, nil
}

// PreparedQuery is a compiled query bound to its database. It is safe for
// concurrent use and stays valid across document loads (the plan is
// recompiled transparently when the schema changes).
type PreparedQuery struct {
	db *Database
	p  *oql.Prepared
}

// Source returns the query text the statement was prepared from.
func (pq *PreparedQuery) Source() string { return pq.p.Source() }

// Run evaluates the prepared query and returns its value, like
// Database.QueryContext without the per-call front-end work.
func (pq *PreparedQuery) Run(ctx context.Context) (object.Value, error) {
	pq.db.mu.RLock()
	defer pq.db.mu.RUnlock()
	return pq.p.Run(ctx)
}

// Rows evaluates the prepared query and returns the raw rows.
func (pq *PreparedQuery) Rows(ctx context.Context) (*calculus.Result, error) {
	pq.db.mu.RLock()
	defer pq.db.mu.RUnlock()
	return pq.p.Rows(ctx)
}

// UseAlgebra switches evaluation to the Section 5.4 algebra plans.
//
// Deprecated: prefer the WithAlgebra open option, which fixes the
// evaluation strategy before any query can run. UseAlgebra remains for
// compatibility and takes the write lock, so it must not be called from
// within a query.
func (db *Database) UseAlgebra(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.Engine.UseAlgebra = on
}

// Text returns the text of a logical object (the text operator).
func (db *Database) Text(v object.Value) string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return dtdmap.TextOf(db.Instance(), v)
}

// Check validates the instance against the schema and the Figure 3
// constraints.
func (db *Database) Check() []error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Instance().Check()
}

// Stats summarises the database.
func (db *Database) Stats() store.Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Instance().Stats()
}

// Save writes a snapshot of the database to a file.
func (db *Database) Save(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return store.SaveFile(path, db.Instance())
}

// OpenSnapshot reopens a saved database for querying. Loading further
// documents requires the original DTD (use OpenDTD and reload instead).
func OpenSnapshot(path string, opts ...Option) (*Database, error) {
	inst, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	db := &Database{}
	db.wire(inst, opts)
	// Rebuild the full-text index over the document roots: both plural
	// roots (lists of documents) and singular roots naming one document.
	indexed := map[object.OID]bool{}
	addDoc := func(o object.OID) {
		if !indexed[o] {
			indexed[o] = true
			db.Engine.Index.Add(text.DocID(o), dtdmap.TextOf(inst, o))
		}
	}
	for _, g := range inst.Schema().Roots() {
		v, ok := inst.Root(g)
		if !ok {
			continue
		}
		switch r := v.(type) {
		case *object.List:
			for i := 0; i < r.Len(); i++ {
				if o, isOID := r.At(i).(object.OID); isOID {
					addDoc(o)
				}
			}
		case object.OID:
			addDoc(r)
		default:
			// other root shapes hold no document objects
		}
	}
	return db, nil
}

// Export reconstructs the SGML source of a loaded document object — the
// inverse mapping of the paper's footnote 1. The result re-parses and
// re-loads to an isomorphic instance. It reports ErrNoMapping on a
// database opened without the DTD.
func (db *Database) Export(doc object.OID) (string, error) {
	if db.Mapping == nil {
		return "", fmt.Errorf("%w: export", ErrNoMapping)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return dtdmap.Export(db.Mapping, db.Instance(), doc)
}

// SchemaString renders the schema in the paper's Figure 3 syntax.
func (db *Database) SchemaString() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.Schema().String()
}

// OpenDTDFile is OpenDTD over a file.
func OpenDTDFile(path string, opts ...Option) (*Database, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenDTD(string(src), opts...)
}

// LoadDocumentFile loads a document from a file.
func (db *Database) LoadDocumentFile(path string) (object.OID, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return db.LoadDocument(string(src))
}
