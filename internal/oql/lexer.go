package oql

import (
	"fmt"
	"strings"
)

// lexer tokenises a query string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises the whole input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%w at offset %d: %s", ErrParse, l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and -- comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if strings.HasPrefix(l.src[l.pos:], "--") {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isLetter(c) || c == '_':
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		word := l.src[start:l.pos]
		lower := strings.ToLower(word)
		switch {
		case strings.HasPrefix(word, "PATH_"):
			return token{kind: tokPathVar, text: word[len("PATH_"):], pos: start}, nil
		case strings.HasPrefix(word, "ATT_"):
			return token{kind: tokAttrVar, text: word[len("ATT_"):], pos: start}, nil
		case keywords[lower]:
			return token{kind: tokKeyword, text: lower, pos: start}, nil
		default:
			return token{kind: tokIdent, text: word, pos: start}, nil
		}
	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		kind := tokInt
		if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isDigit(l.src[l.pos+1]) {
			kind = tokFloat
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
	case c == '"' || c == '\'':
		q := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != q {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(l.src[l.pos])
				}
				l.pos++
				continue
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		l.pos++
		return token{kind: tokString, text: b.String(), pos: start}, nil
	}
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "..":
		l.pos += 2
		return token{kind: tokDotDot, text: "..", pos: start}, nil
	case "->":
		l.pos += 2
		return token{kind: tokArrow, text: "->", pos: start}, nil
	case "<=":
		l.pos += 2
		return token{kind: tokLe, text: "<=", pos: start}, nil
	case ">=":
		l.pos += 2
		return token{kind: tokGe, text: ">=", pos: start}, nil
	case "!=":
		l.pos += 2
		return token{kind: tokNe, text: "!=", pos: start}, nil
	}
	l.pos++
	switch c {
	case '.':
		return token{kind: tokDot, text: ".", pos: start}, nil
	case '[':
		return token{kind: tokLBrack, text: "[", pos: start}, nil
	case ']':
		return token{kind: tokRBrack, text: "]", pos: start}, nil
	case '(':
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '{':
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case '}':
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case ',':
		return token{kind: tokComma, text: ",", pos: start}, nil
	case ':':
		return token{kind: tokColon, text: ":", pos: start}, nil
	case '=':
		return token{kind: tokEq, text: "=", pos: start}, nil
	case '<':
		return token{kind: tokLt, text: "<", pos: start}, nil
	case '>':
		return token{kind: tokGt, text: ">", pos: start}, nil
	case '-':
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case '+':
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case '*':
		return token{kind: tokStar, text: "*", pos: start}, nil
	default:
		return token{}, l.errf("unexpected character %q", string(c))
	}
}

func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
