package text

// Thompson construction and NFA simulation. States are numbered; each
// state has either a rune condition with one successor, or up to two
// epsilon successors. Simulation carries a sparse set of active states and
// is re-seeded at every input position, giving unanchored (substring)
// search in O(len(text) · states) without backtracking.

type stateKind int

const (
	stRune stateKind = iota
	stAny
	stClass
	stSplit
	stMatch
)

type state struct {
	kind      stateKind
	r         rune
	neg       bool
	ranges    []runeRange
	out, out2 int // successor state indices (-1 = none)
}

type program struct {
	states []state
	start  int
}

// frag is a partially built automaton: a start state and a list of
// dangling out-pointers to patch.
type frag struct {
	start int
	outs  []patch
}

type patch struct {
	state  int
	second bool
}

type builder struct{ states []state }

func (b *builder) add(s state) int {
	b.states = append(b.states, s)
	return len(b.states) - 1
}

func (b *builder) patchAll(outs []patch, to int) {
	for _, p := range outs {
		if p.second {
			b.states[p.state].out2 = to
		} else {
			b.states[p.state].out = to
		}
	}
}

func compileAST(n node) *program {
	b := &builder{}
	f := b.compile(n)
	match := b.add(state{kind: stMatch, out: -1, out2: -1})
	b.patchAll(f.outs, match)
	return &program{states: b.states, start: f.start}
}

func (b *builder) compile(n node) frag {
	switch x := n.(type) {
	case litNode:
		id := b.add(state{kind: stRune, r: x.r, out: -1, out2: -1})
		return frag{start: id, outs: []patch{{state: id}}}
	case anyNode:
		id := b.add(state{kind: stAny, out: -1, out2: -1})
		return frag{start: id, outs: []patch{{state: id}}}
	case classNode:
		id := b.add(state{kind: stClass, neg: x.neg, ranges: x.ranges, out: -1, out2: -1})
		return frag{start: id, outs: []patch{{state: id}}}
	case emptyNode:
		id := b.add(state{kind: stSplit, out: -1, out2: -1})
		return frag{start: id, outs: []patch{{state: id}}}
	case seqNode:
		f := b.compile(x.items[0])
		for _, it := range x.items[1:] {
			g := b.compile(it)
			b.patchAll(f.outs, g.start)
			f.outs = g.outs
		}
		return f
	case altNode:
		f := b.compile(x.items[0])
		for _, it := range x.items[1:] {
			g := b.compile(it)
			split := b.add(state{kind: stSplit, out: f.start, out2: g.start})
			f = frag{start: split, outs: append(f.outs, g.outs...)}
		}
		return f
	case starNode:
		f := b.compile(x.item)
		split := b.add(state{kind: stSplit, out: f.start, out2: -1})
		b.patchAll(f.outs, split)
		return frag{start: split, outs: []patch{{state: split, second: true}}}
	case plusNode:
		f := b.compile(x.item)
		split := b.add(state{kind: stSplit, out: f.start, out2: -1})
		b.patchAll(f.outs, split)
		return frag{start: f.start, outs: []patch{{state: split, second: true}}}
	case optNode:
		f := b.compile(x.item)
		split := b.add(state{kind: stSplit, out: f.start, out2: -1})
		return frag{start: split, outs: append(f.outs, patch{state: split, second: true})}
	default:
		//lint:allow panic unreachable: the switch covers the closed node set (enforced by sgmldbvet exhaustive)
		panic("text: unknown pattern node")
	}
}

// sparseSet is the classic sparse set for NFA simulation: O(1) add,
// contains and clear.
type sparseSet struct {
	dense  []int
	sparse []int
}

func newSparseSet(n int) *sparseSet {
	return &sparseSet{dense: make([]int, 0, n), sparse: make([]int, n)}
}

func (s *sparseSet) has(i int) bool {
	j := s.sparse[i]
	return j < len(s.dense) && s.dense[j] == i
}

func (s *sparseSet) addRaw(i int) {
	if s.has(i) {
		return
	}
	s.sparse[i] = len(s.dense)
	s.dense = append(s.dense, i)
}

func (s *sparseSet) clear() { s.dense = s.dense[:0] }

// addClosure adds state i and its epsilon closure.
func (p *program) addClosure(set *sparseSet, i int) {
	if i < 0 || set.has(i) {
		return
	}
	set.addRaw(i)
	st := p.states[i]
	if st.kind == stSplit {
		p.addClosure(set, st.out)
		p.addClosure(set, st.out2)
	}
}

// search reports whether the program matches any substring of text.
func (p *program) search(text string) bool {
	cur := newSparseSet(len(p.states))
	next := newSparseSet(len(p.states))
	// Empty-match check at position 0 (and every position, but the start
	// closure is position independent).
	p.addClosure(cur, p.start)
	if p.accepting(cur) {
		return true
	}
	for _, r := range text {
		// Re-seed: a match may start at this position.
		p.addClosure(cur, p.start)
		next.clear()
		for _, i := range cur.dense {
			st := p.states[i]
			ok := false
			switch st.kind {
			case stRune:
				ok = st.r == r
			case stAny:
				ok = true
			case stClass:
				in := false
				for _, rng := range st.ranges {
					if r >= rng.lo && r <= rng.hi {
						in = true
						break
					}
				}
				ok = in != st.neg
			}
			if ok {
				p.addClosure(next, st.out)
			}
		}
		cur, next = next, cur
		if p.accepting(cur) {
			return true
		}
	}
	return false
}

func (p *program) accepting(set *sparseSet) bool {
	for _, i := range set.dense {
		if p.states[i].kind == stMatch {
			return true
		}
	}
	return false
}
