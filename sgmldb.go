// Package sgmldb is a from-scratch Go implementation of "From Structured
// Documents to Novel Query Facilities" (Christophides, Abiteboul, Cluet,
// Scholl — SIGMOD 1994): SGML documents mapped into an object database
// with an extended O₂ data model (ordered tuples, marked unions), queried
// through an extended O₂SQL with paths as first-class citizens, and
// evaluated through the many-sorted calculus of the paper and its
// algebraization.
//
// The typical flow:
//
//	db, _ := sgmldb.OpenDTD(dtdSource)            // Figure 1 → Figure 3
//	oid, _ := db.LoadDocument(articleSource)      // Figure 2 → objects
//	db.Name("my_article", oid)                    // a root of persistence
//	res, _ := db.Query(`select t from my_article PATH_p.title(t)`)
//
// Everything is stdlib-only and in-memory, with snapshot persistence via
// Save and OpenSnapshot.
package sgmldb

import (
	"fmt"
	"os"

	"sgmldb/internal/calculus"
	"sgmldb/internal/dtdmap"
	"sgmldb/internal/object"
	"sgmldb/internal/oql"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// Database bundles a mapped schema, its instance, the query engine and
// the full-text index.
type Database struct {
	Mapping *dtdmap.Mapping
	Loader  *dtdmap.Loader
	Engine  *oql.Engine
}

// OpenDTD compiles a DTD (Section 3) and opens an empty database for its
// documents.
func OpenDTD(dtdSource string) (*Database, error) {
	dtd, err := sgml.ParseDTD(dtdSource)
	if err != nil {
		return nil, err
	}
	m, err := dtdmap.MapDTD(dtd)
	if err != nil {
		return nil, err
	}
	loader := dtdmap.NewLoader(m)
	db := &Database{Mapping: m, Loader: loader}
	db.wire(loader.Instance)
	return db, nil
}

// wire builds the engine over an instance.
func (db *Database) wire(inst *store.Instance) {
	env := calculus.NewEnv(inst)
	env.TextOf = func(v object.Value) string { return dtdmap.TextOf(inst, v) }
	db.Engine = oql.New(env)
	db.Engine.Index = text.NewIndex()
}

// Instance exposes the underlying store instance.
func (db *Database) Instance() *store.Instance { return db.Engine.Env.Inst }

// Schema exposes the mapped schema.
func (db *Database) Schema() *store.Schema { return db.Instance().Schema() }

// LoadDocument parses, validates and loads one SGML document, returning
// the oid of its document object. The document is added to the plural
// persistence root (e.g. Articles) and to the full-text index.
func (db *Database) LoadDocument(src string) (object.OID, error) {
	if db.Loader == nil {
		return 0, fmt.Errorf("sgmldb: snapshot databases are read-only for documents")
	}
	doc, err := sgml.ParseDocument(db.Mapping.DTD, src)
	if err != nil {
		return 0, err
	}
	oid, err := db.Loader.Load(doc)
	if err != nil {
		return 0, err
	}
	db.Engine.Index.Add(text.DocID(oid), dtdmap.TextOf(db.Instance(), oid))
	return oid, nil
}

// Name declares a root of persistence for an object (e.g. my_article),
// making it addressable from queries.
func (db *Database) Name(name string, oid object.OID) error {
	class, ok := db.Instance().ClassOf(oid)
	if !ok {
		return fmt.Errorf("sgmldb: unknown object %s", oid)
	}
	if _, exists := db.Schema().RootType(name); !exists {
		if err := db.Schema().AddRoot(name, object.Class(class)); err != nil {
			return err
		}
	}
	return db.Instance().SetRoot(name, oid)
}

// Query runs an extended O₂SQL query and returns its value (a set for
// select and pattern queries).
func (db *Database) Query(src string) (object.Value, error) {
	return db.Engine.Query(src)
}

// QueryRows runs a query and returns the raw rows with their sorted
// bindings (paths stay paths).
func (db *Database) QueryRows(src string) (*calculus.Result, error) {
	return db.Engine.Rows(src)
}

// UseAlgebra switches evaluation to the Section 5.4 algebra plans.
func (db *Database) UseAlgebra(on bool) { db.Engine.UseAlgebra = on }

// Text returns the text of a logical object (the text operator).
func (db *Database) Text(v object.Value) string {
	return dtdmap.TextOf(db.Instance(), v)
}

// Check validates the instance against the schema and the Figure 3
// constraints.
func (db *Database) Check() []error { return db.Instance().Check() }

// Stats summarises the database.
func (db *Database) Stats() store.Stats { return db.Instance().Stats() }

// Save writes a snapshot of the database to a file.
func (db *Database) Save(path string) error {
	return store.SaveFile(path, db.Instance())
}

// OpenSnapshot reopens a saved database for querying. Loading further
// documents requires the original DTD (use OpenDTD and reload instead).
func OpenSnapshot(path string) (*Database, error) {
	inst, err := store.LoadFile(path)
	if err != nil {
		return nil, err
	}
	db := &Database{}
	db.wire(inst)
	// Rebuild the full-text index over the document roots.
	for _, g := range inst.Schema().Roots() {
		v, ok := inst.Root(g)
		if !ok {
			continue
		}
		if l, isList := v.(*object.List); isList {
			for i := 0; i < l.Len(); i++ {
				if o, isOID := l.At(i).(object.OID); isOID {
					db.Engine.Index.Add(text.DocID(o), dtdmap.TextOf(inst, o))
				}
			}
		}
	}
	return db, nil
}

// Export reconstructs the SGML source of a loaded document object — the
// inverse mapping of the paper's footnote 1. The result re-parses and
// re-loads to an isomorphic instance.
func (db *Database) Export(doc object.OID) (string, error) {
	if db.Mapping == nil {
		return "", fmt.Errorf("sgmldb: export requires the DTD mapping (open with OpenDTD)")
	}
	return dtdmap.Export(db.Mapping, db.Instance(), doc)
}

// SchemaString renders the schema in the paper's Figure 3 syntax.
func (db *Database) SchemaString() string { return db.Schema().String() }

// OpenDTDFile is OpenDTD over a file.
func OpenDTDFile(path string) (*Database, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenDTD(string(src))
}

// LoadDocumentFile loads a document from a file.
func (db *Database) LoadDocumentFile(path string) (object.OID, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return db.LoadDocument(string(src))
}
