package sgmldb

// Durability benchmarks (BENCH_durability.json):
//
//	BenchmarkLoadDurable  the price of the WAL on the write path, by batch
//	                      size. A whole batch is one log record and one
//	                      fsync, so the per-document overhead must shrink
//	                      as batches grow — if it doesn't, the commit path
//	                      is syncing per document.
//	BenchmarkRecovery     OpenDTD against an existing data directory: once
//	                      replaying a pure log tail, once restoring from a
//	                      checkpoint with an empty tail.
//	BenchmarkScrub        the online integrity scrub over a live primary's
//	                      log, by tail length (BENCH_robustness.json): a
//	                      full re-read and checksum walk, priced so the
//	                      operator knows what a background scrub costs.
//
// Run with: go test -run '^$' -bench 'LoadDurable|Recovery|Scrub' .

import (
	"fmt"
	"os"
	"testing"
)

func benchArticleDTD(b *testing.B) string {
	b.Helper()
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		b.Fatal(err)
	}
	return string(dtd)
}

func benchArticleSrc(b *testing.B) string {
	b.Helper()
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		b.Fatal(err)
	}
	return string(src)
}

// BenchmarkLoadDurable loads one batch of parsed documents into a fresh
// database per iteration, with and without a data directory. Fresh per
// iteration because loads accumulate: timing b.N loads into one database
// measures its growth, not the commit path. The durable variants pay one
// Append+fsync per batch; auto-checkpointing is disabled so the
// measurement is the log alone.
func BenchmarkLoadDurable(b *testing.B) {
	dtd := benchArticleDTD(b)
	src := benchArticleSrc(b)
	for _, batch := range []int{1, 4, 16} {
		srcs := make([]string, batch)
		for i := range srcs {
			srcs[i] = src
		}
		b.Run(fmt.Sprintf("InMemory/batch=%d", batch), func(b *testing.B) {
			b.ReportMetric(float64(batch), "docs/batch")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, err := OpenDTD(dtd)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := db.LoadDocuments(srcs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Durable/batch=%d", batch), func(b *testing.B) {
			b.ReportMetric(float64(batch), "docs/batch")
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, err := OpenDTD(dtd, WithDataDir(b.TempDir()), WithCheckpointEvery(-1))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := db.LoadDocuments(srcs); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkScrub measures Database.Scrub on a live primary whose log
// tail holds 4, 16 or 64 committed batches. The scrub re-reads the log
// from disk under the log mutex and re-verifies every frame checksum
// and the sequence chain, so its cost is linear in tail bytes — the
// number an operator needs before putting it on a timer.
func BenchmarkScrub(b *testing.B) {
	dtd := benchArticleDTD(b)
	src := benchArticleSrc(b)
	for _, batches := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("batches=%d", batches), func(b *testing.B) {
			db, err := OpenDTD(dtd, WithDataDir(b.TempDir()), WithCheckpointEvery(-1))
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < batches; i++ {
				if _, err := db.LoadDocuments([]string{src}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := db.Scrub()
				if err != nil {
					b.Fatal(err)
				}
				if rep.Frames != batches+1 { // schema frame + one per batch
					b.Fatalf("scrubbed %d frames, want %d", rep.Frames, batches+1)
				}
			}
		})
	}
}

// BenchmarkRecovery measures OpenDTD on a data directory holding 16
// committed batches — once with everything in the log tail (replay
// re-parses every document), once compacted into a checkpoint (recovery
// deserializes the snapshot and replays nothing).
func BenchmarkRecovery(b *testing.B) {
	dtd := benchArticleDTD(b)
	src := benchArticleSrc(b)
	const batches = 16

	seed := func(b *testing.B, dir string, checkpoint bool) {
		b.Helper()
		db, err := OpenDTD(dtd, WithDataDir(dir), WithCheckpointEvery(-1))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < batches; i++ {
			if _, err := db.LoadDocuments([]string{src}); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}

	for _, tc := range []struct {
		name       string
		checkpoint bool
	}{
		{"Replay", false},
		{"Checkpoint", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			seed(b, dir, tc.checkpoint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := OpenDTD(dtd, WithDataDir(dir), WithCheckpointEvery(-1))
				if err != nil {
					b.Fatal(err)
				}
				if got := len(db.Loader.Documents()); got != batches {
					b.Fatalf("recovered %d documents, want %d", got, batches)
				}
				b.StopTimer()
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
