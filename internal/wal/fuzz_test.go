package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes to the frame and payload decoders:
// they must return errors, never panic or over-allocate, and a record
// that does decode must re-encode to a frame that decodes to itself.
func FuzzWALRecord(f *testing.F) {
	for _, r := range []Record{
		{Seq: 1, Kind: KindSchema, Schema: "<!ELEMENT a (#PCDATA)>"},
		{Seq: 2, Kind: KindLoad, Docs: []string{"<a>one</a>", "<a>two</a>"}},
		{Seq: 3, Kind: KindName, Name: "my_a", OID: 42},
		{Seq: 4, Kind: KindTerm, Term: 7},
		{Seq: 5, Kind: KindLoad, Term: 3, Docs: []string{"<a>three</a>"}},
	} {
		f.Add(EncodeFrame(r))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}
		// A decoded record must round-trip through its canonical frame.
		frame := EncodeFrame(rec)
		back, m, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record: %v", err)
		}
		if m != len(frame) {
			t.Fatalf("canonical frame length %d, consumed %d", len(frame), m)
		}
		if back.Seq != rec.Seq || back.Term != rec.Term || back.Kind != rec.Kind || back.Schema != rec.Schema ||
			back.Name != rec.Name || back.OID != rec.OID || len(back.Docs) != len(rec.Docs) {
			t.Fatalf("round trip mismatch: %+v != %+v", back, rec)
		}
		for i := range rec.Docs {
			if back.Docs[i] != rec.Docs[i] {
				t.Fatalf("doc %d mismatch", i)
			}
		}
		// DecodePayload on the raw payload agrees with the framed path.
		if !bytes.Equal(EncodePayload(back), EncodePayload(rec)) {
			t.Fatal("payload encodings diverge")
		}
	})
}
