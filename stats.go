package sgmldb

import (
	"errors"
	"sync/atomic"

	"sgmldb/internal/store"
)

// Stats summarises the database: the instance statistics of the published
// snapshot (embedded, so the seed fields — Objects, PerClass, … — read as
// before) plus the engine counters a serving process reports. The
// counters are cumulative since open and populated from atomics, so Stats
// is safe to call concurrently with queries and loads and costs the
// queries nothing.
type Stats struct {
	store.Stats

	// Epoch is the published snapshot's version number.
	Epoch uint64

	// QueriesServed counts admitted query executions (across Query,
	// QueryContext, QueryRows, QueryRowsContext and prepared Run/Rows),
	// successes and failures alike.
	QueriesServed uint64
	// QueriesShed counts queries rejected by admission control with
	// ErrOverloaded; they are not in QueriesServed.
	QueriesShed uint64
	// BudgetExceeded counts served queries killed by a resource budget
	// (database-level or per-call options).
	BudgetExceeded uint64
	// PanicsContained counts served queries that panicked and were
	// contained at the API boundary as ErrInternal.
	PanicsContained uint64

	// PlanCacheHits / PlanCacheMisses count plan-cache lookups in algebra
	// mode; PlanCachePlans is the current number of cached plans.
	PlanCacheHits   uint64
	PlanCacheMisses uint64
	PlanCachePlans  int

	// Durable reports whether the database runs with a write-ahead log
	// (WithDataDir). WALSeq is then the sequence number of the last
	// committed log record, CheckpointSeq the log sequence covered by the
	// newest checkpoint (0 before the first).
	Durable       bool
	WALSeq        uint64
	CheckpointSeq uint64

	// Degraded reports that a storage fault poisoned the write-ahead log:
	// the database serves reads from the last published epoch but rejects
	// writes with ErrDegraded. DegradedReason is the first fault's message
	// (sticky — later cascades never mask the root cause).
	Degraded       bool
	DegradedReason string

	// CheckpointFailures counts failed checkpoint attempts since open;
	// CheckpointFailStreak is the current run of consecutive failures (0
	// after a success) and LastCheckpointError the most recent failure's
	// message. A growing streak means the log prefix — and with it
	// recovery time — is growing without bound on a sick disk.
	CheckpointFailures   uint64
	CheckpointFailStreak uint64
	LastCheckpointError  string

	// Follower reports whether the database currently applies a primary's
	// log (opened with OpenFollower and not promoted). AppliedSeq is then
	// the last primary log record applied, PrimarySeq the newest primary
	// sequence observed; their difference is the replication lag in
	// records.
	Follower   bool
	AppliedSeq uint64
	PrimarySeq uint64

	// Failover telemetry (DESIGN.md §12). Term is the promotion epoch this
	// node writes or applies under (0 on a non-replicating database);
	// Promotions counts the term raises observed since open — our own
	// Promote calls plus promotions applied from the feed. Rebootstraps
	// counts the replication client's checkpoint bootstraps; BreakerOpen
	// reports its bootstrap circuit breaker tripped open.
	Term         uint64
	Promotions   uint64
	Rebootstraps uint64
	BreakerOpen  bool
}

// metrics holds the facade's cumulative counters. All atomic: they are
// bumped on the hot query path by any number of goroutines and read
// race-free by Stats.
type metrics struct {
	queries     atomic.Uint64
	shed        atomic.Uint64
	budgetKills atomic.Uint64
	panics      atomic.Uint64
}

// observe classifies one served query's outcome into the counters. It
// runs after rescue, so a contained panic is counted from the error it
// became.
func (db *Database) observe(err error) {
	db.metrics.queries.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, ErrBudgetExceeded):
		db.metrics.budgetKills.Add(1)
	case errors.Is(err, ErrInternal):
		db.metrics.panics.Add(1)
	}
}

// Stats summarises the database.
func (db *Database) Stats() Stats {
	hits, misses := db.Engine.PlanCacheStats()
	snap := db.state() // one pinned snapshot: stats and epoch must agree
	st := Stats{
		Stats:           snap.Snap.Inst.Stats(),
		Epoch:           snap.Snap.Epoch,
		QueriesServed:   db.metrics.queries.Load(),
		QueriesShed:     db.metrics.shed.Load(),
		BudgetExceeded:  db.metrics.budgetKills.Load(),
		PanicsContained: db.metrics.panics.Load(),
		PlanCacheHits:   hits,
		PlanCacheMisses: misses,
		PlanCachePlans:  db.Engine.PlanCacheLen(),
	}
	if db.walLog != nil {
		st.Durable = true
		st.WALSeq = db.walLog.Seq()
		st.CheckpointSeq = db.ckptSeq.Load()
		st.Degraded, st.DegradedReason = db.DegradedState()
		st.CheckpointFailures, st.CheckpointFailStreak, st.LastCheckpointError = db.CheckpointFailures()
	}
	if db.follower.Load() {
		st.Follower = true
		st.AppliedSeq = db.appliedSeq.Load()
		st.PrimarySeq = db.primarySeq.Load()
	}
	st.Term = db.term.Load()
	st.Promotions = db.promotions.Load()
	st.Rebootstraps = db.rebootstrap.Load()
	st.BreakerOpen = db.breakerOpen.Load()
	return st
}
