# Development targets. `make ci` is the extended verify recorded in
# ROADMAP.md: vet + sgmldbvet + build + the full test suite under the
# race detector + a fuzz smoke of the SGML parsers + a smoke run of
# every benchmark.

GO ?= go

.PHONY: all build vet test race bench fuzz ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/sgmldbvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the experiment
# harness without paying for full measurements.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# A few seconds per fuzz target: catches parser panics on mutated input
# without an open-ended run. Minimization is capped by executions — the
# default 60s-per-interesting-input budget stalls a smoke run.
fuzz:
	$(GO) test ./internal/sgml/ -run='^$$' -fuzz=FuzzParseDTD -fuzztime=5s -fuzzminimizetime=10x
	$(GO) test ./internal/sgml/ -run='^$$' -fuzz=FuzzParseDocument -fuzztime=5s -fuzzminimizetime=10x

ci:
	$(GO) vet ./...
	$(GO) run ./cmd/sgmldbvet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) fuzz
	$(GO) test -run='^$$' -bench=. -benchtime=1x .
