package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// The faultpoint analyzer keeps fault injection out of production
// control flow. The faultpoint package is deliberately two-faced: the
// declaration side (New) and the probe side (Hit) belong in shipping
// code, while the arming machinery (Arm, DisarmAll, the injector
// constructors) belongs in tests only — an armed site in production
// would be a latent chaos monkey. Test files never reach the analyzer
// (the loader excludes _test.go), so the rule for what it does see is
// simple:
//
//   - faultpoint.New may appear only as a package-level var initializer,
//     keeping the set of injection sites static and enumerable;
//   - method Hit may be called anywhere;
//   - every other use of the faultpoint package is flagged.
//
// The faultpoint package itself is exempt (it implements the machinery
// it would otherwise be flagged for).

// FaultpointAnalyzer restricts production faultpoint usage to
// package-level New declarations and Hit calls.
var FaultpointAnalyzer = &Analyzer{
	Name:       "faultpoint",
	Doc:        "fault-injection sites must be declared at package level and only Hit in production code",
	RunPackage: runFaultpoint,
}

func runFaultpoint(prog *Program, pkg *Package, report func(Diagnostic)) {
	if pkg.Types.Name() == "faultpoint" {
		return
	}
	declared := declaredSiteCalls(pkg)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "faultpoint" {
				return true
			}
			switch fn.Name() {
			case "Hit":
			case "New":
				if !declared[call.Pos()] {
					report(Diagnostic{Pos: call.Pos(),
						Message: "faultpoint.New outside a package-level var declaration; injection sites must be static and enumerable"})
				}
			default:
				report(Diagnostic{Pos: call.Pos(),
					Message: fmt.Sprintf("faultpoint.%s is test-only machinery; production code may only declare sites (package-level faultpoint.New) and call Hit", fn.Name())})
			}
			return true
		})
	}
}

// declaredSiteCalls collects the positions of calls used directly as
// package-level var initializers — the one place faultpoint.New belongs.
func declaredSiteCalls(pkg *Package) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if call, ok := ast.Unparen(v).(*ast.CallExpr); ok {
						out[call.Pos()] = true
					}
				}
			}
		}
	}
	return out
}
