package algebra

import (
	"sgmldb/internal/object"
)

// implicitDeref resolves an oid to its (union-unwrapped) value; other
// values pass through. It implements the identity-transparent navigation
// of O₂SQL (the paper's paths never spell out dereferences).
func implicitDeref(ctx *Ctx, v object.Value) object.Value {
	if o, ok := v.(object.OID); ok {
		if inner, ok := derefOID(ctx, o); ok {
			return object.UnwrapUnion(inner)
		}
	}
	return v
}

func derefOID(ctx *Ctx, o object.OID) (object.Value, bool) {
	if ctx.Env.Inst == nil {
		return nil, false
	}
	return ctx.Env.Inst.Deref(o)
}
