// Package service implements the network query service behind
// cmd/sgmldbd: HTTP handlers, the JSON codec for query results, wire
// error mapping over the sgmldb.Code taxonomy, and per-tenant governance
// (API keys resolved to concurrency/row/memory/time limits layered over
// the one shared Database). It is net/http-only and fully unit-testable
// without sockets via httptest.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// TenantConfig is one tenant's identity and resource grant, as read from
// the tenants file. Zero limits mean "no per-tenant bound on this axis"
// (the database-level budgets still apply).
type TenantConfig struct {
	// Name identifies the tenant in stats and logs; it never leaves the
	// server except on /v1/stats.
	Name string `json:"name"`
	// APIKey authenticates the tenant (Authorization: Bearer <key> or
	// X-API-Key). Keys are opaque strings, compared byte-for-byte.
	APIKey string `json:"api_key"`
	// MaxConcurrent bounds the tenant's in-flight calls (queries,
	// executes and loads together). Over-limit calls are rejected
	// immediately with HTTP 429 — the tenant's own excess never queues
	// into the shared admission gate, so one greedy tenant cannot starve
	// the others. 0 = unlimited (only the database gate applies).
	MaxConcurrent int `json:"max_concurrent"`
	// MaxRows / MaxMemoryBytes / TimeoutMS clamp every call's budget via
	// per-call query options; a client's own limits can tighten but never
	// exceed them. 0 = axis unlimited.
	MaxRows        int64 `json:"max_rows"`
	MaxMemoryBytes int64 `json:"max_memory_bytes"`
	TimeoutMS      int64 `json:"timeout_ms"`
	// MaxHandles bounds the tenant's live prepared-statement handles
	// (0 = DefaultMaxHandles).
	MaxHandles int `json:"max_handles"`
	// DenyLoad forbids POST /v1/load for this tenant (read-only tenants).
	DenyLoad bool `json:"deny_load"`
}

// Timeout returns the tenant's per-call wall-clock clamp.
func (t TenantConfig) Timeout() time.Duration {
	return time.Duration(t.TimeoutMS) * time.Millisecond
}

// Config is the service configuration: the tenant table. An empty table
// runs the server in open mode — a single anonymous tenant with no
// per-tenant limits — which is what the quickstart and the load
// generator's default target use.
type Config struct {
	Tenants []TenantConfig `json:"tenants"`
}

// DefaultMaxHandles bounds a tenant's live prepared-statement handles
// when its config does not say otherwise.
const DefaultMaxHandles = 64

// ParseConfig decodes and validates a tenants file.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("service: tenants config: %w", err)
	}
	names := map[string]bool{}
	keys := map[string]bool{}
	for i, t := range cfg.Tenants {
		if t.Name == "" {
			return Config{}, fmt.Errorf("service: tenants config: tenant %d has no name", i)
		}
		if t.APIKey == "" {
			return Config{}, fmt.Errorf("service: tenants config: tenant %q has no api_key", t.Name)
		}
		if names[t.Name] {
			return Config{}, fmt.Errorf("service: tenants config: duplicate tenant name %q", t.Name)
		}
		if keys[t.APIKey] {
			return Config{}, fmt.Errorf("service: tenants config: tenant %q reuses another tenant's api_key", t.Name)
		}
		if t.MaxConcurrent < 0 || t.MaxRows < 0 || t.MaxMemoryBytes < 0 || t.TimeoutMS < 0 || t.MaxHandles < 0 {
			return Config{}, fmt.Errorf("service: tenants config: tenant %q has a negative limit", t.Name)
		}
		names[t.Name] = true
		keys[t.APIKey] = true
	}
	return cfg, nil
}

// LoadConfig reads and validates a tenants file from disk.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ParseConfig(data)
}
