// Command sgmldbd serves one SGML database over HTTP — the network query
// service of DESIGN.md §9. It opens a database from a DTD (optionally
// durable under -data, optionally preloading documents), mounts the
// internal/service handlers, and runs until SIGINT/SIGTERM, at which
// point it drains: new requests get 503, in-flight requests finish, a
// final checkpoint is written, and the process exits 0.
//
// Usage:
//
//	sgmldbd -dtd article.dtd [-addr 127.0.0.1:8344] [-tenants tenants.json]
//	        [-data dir] [-max-concurrent N] [-max-rows N] [-max-memory B]
//	        [-query-timeout D] [-drain-timeout D] [doc.sgml …]
//
// Without -tenants the server runs in open mode: every caller is one
// anonymous tenant with no per-tenant limits (the database-level budgets
// still apply). With -tenants, callers authenticate with
// "Authorization: Bearer <key>" or "X-API-Key: <key>".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sgmldb"
	"sgmldb/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgmldbd:", err)
		os.Exit(1)
	}
}

func run() error {
	dtdPath := flag.String("dtd", "", "DTD file (required)")
	addr := flag.String("addr", "127.0.0.1:8344", "listen address")
	tenantsPath := flag.String("tenants", "", "tenants config file (JSON); empty = open mode")
	dataDir := flag.String("data", "", "data directory for durable operation (WAL + checkpoints)")
	maxConcurrent := flag.Int("max-concurrent", 0, "database-wide concurrent query limit (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a query may wait for an admission slot")
	maxRows := flag.Int64("max-rows", 0, "database-wide per-query row budget (0 = unlimited)")
	maxMemory := flag.Int64("max-memory", 0, "database-wide per-query memory budget in bytes (0 = unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0, "database-wide per-query wall-clock budget (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	flag.Parse()
	if *dtdPath == "" {
		return fmt.Errorf("usage: sgmldbd -dtd file.dtd [flags] [doc.sgml…]")
	}

	var opts []sgmldb.Option
	if *dataDir != "" {
		opts = append(opts, sgmldb.WithDataDir(*dataDir))
	}
	if *maxConcurrent > 0 {
		opts = append(opts, sgmldb.WithMaxConcurrentQueries(*maxConcurrent))
	}
	if *queueTimeout > 0 {
		opts = append(opts, sgmldb.WithQueueTimeout(*queueTimeout))
	}
	if *maxRows > 0 {
		opts = append(opts, sgmldb.WithMaxRows(*maxRows))
	}
	if *maxMemory > 0 {
		opts = append(opts, sgmldb.WithMaxMemory(*maxMemory))
	}
	if *queryTimeout > 0 {
		opts = append(opts, sgmldb.WithQueryTimeout(*queryTimeout))
	}

	db, err := sgmldb.OpenDTDFile(*dtdPath, opts...)
	if err != nil {
		return err
	}
	for _, path := range flag.Args() {
		if _, err := db.LoadDocumentFile(path); err != nil {
			return fmt.Errorf("preloading %s: %w", path, err)
		}
	}

	cfg := service.Config{}
	if *tenantsPath != "" {
		cfg, err = service.LoadConfig(*tenantsPath)
		if err != nil {
			return err
		}
	}
	srv, err := service.New(db, cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	mode := "open"
	if n := len(cfg.Tenants); n > 0 {
		mode = fmt.Sprintf("%d tenants", n)
	}
	log.Printf("sgmldbd: serving on %s (%s mode, epoch %d)", *addr, mode, db.Epoch())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("sgmldbd: %v, draining", s)
	}

	// Graceful shutdown: flip the service into draining (503 for new
	// calls), let http.Server.Shutdown wait out the in-flight handlers,
	// then checkpoint and close the durability machinery.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("sgmldbd: shutdown: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		log.Printf("sgmldbd: final checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		return err
	}
	log.Printf("sgmldbd: drained, bye")
	return nil
}
