package object

// ClassOf resolves the class of an oid. An instance provides one (its π
// assignment); the zero function treats every oid as classless.
type ClassOf func(OID) (string, bool)

// MemberOf reports whether v ∈ dom(τ) for the interpretation of Section
// 5.1, given the class hierarchy and the oid assignment (through classOf):
//
//   - dom(atomic) is the corresponding atom domain;
//   - dom(any) = ∪ π(c); dom(c) = π(c) ∪ {nil};
//   - dom({τ}) and dom([τ]) are the finite sets/lists over dom(τ);
//   - dom([a₁:τ₁,…,aₖ:τₖ]) contains the tuples whose first k attributes
//     are a₁…aₖ with vᵢ ∈ dom(τᵢ) — extra attributes may follow;
//   - dom(a₁:τ₁+…+aₖ:τₖ) = ∪ dom([aᵢ:τᵢ]) — marked values <aᵢ: vᵢ> and
//     their (≡) singleton-tuple representatives.
//
// dom is taken over (≡) classes, so a tuple value also belongs to the
// domain of its heterogeneous-list type.
func MemberOf(v Value, t Type, h *Hierarchy, classOf ClassOf) bool {
	if v == nil {
		v = Nil{}
	}
	// nil, the undefined value, belongs to every domain (IQL/O₂): it is
	// the Figure 3 constraints ("title != nil"), not the types, that make
	// components required.
	if IsNil(v) {
		return true
	}
	switch ty := t.(type) {
	case AtomicType:
		switch ty.K {
		case TypeInt:
			return v.Kind() == KindInt
		case TypeFloat:
			// integer ≤ float at the value level as well.
			return v.Kind() == KindFloat || v.Kind() == KindInt
		case TypeString:
			return v.Kind() == KindString
		case TypeBool:
			return v.Kind() == KindBool
		default:
			// non-atomic kinds never label an AtomicType
			return false
		}
	case AnyType:
		// nil belongs to every class domain and c ≤ any, so dom
		// monotonicity puts nil in dom(any) as well.
		return v.Kind() == KindOID || IsNil(v)
	case ClassType:
		if IsNil(v) {
			return true // nil belongs to every class domain
		}
		o, ok := v.(OID)
		if !ok {
			return false
		}
		if classOf == nil {
			return true
		}
		c, ok := classOf(o)
		if !ok {
			return false
		}
		return h != nil && h.IsSubclass(c, ty.Name)
	case SetType:
		s, ok := v.(*Set)
		if !ok {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if !MemberOf(s.At(i), ty.Elem, h, classOf) {
				return false
			}
		}
		return true
	case ListType:
		l, ok := AsList(v) // tuples embed as heterogeneous lists
		if !ok {
			return false
		}
		for i := 0; i < l.Len(); i++ {
			if !MemberOf(l.At(i), ty.Elem, h, classOf) {
				return false
			}
		}
		return true
	case TupleType:
		tup, ok := AsTuple(v) // union values embed as singleton tuples
		if !ok {
			return false
		}
		if tup.Len() < ty.Len() {
			return false
		}
		for i := 0; i < ty.Len(); i++ {
			f := ty.At(i)
			if tup.At(i).Name != f.Name {
				return false
			}
			if !MemberOf(tup.At(i).Value, f.Type, h, classOf) {
				return false
			}
		}
		return true
	case UnionType:
		switch x := v.(type) {
		case *Union_:
			alt, ok := ty.Get(x.Marker)
			return ok && MemberOf(x.Value, alt, h, classOf)
		case *Tuple:
			// dom(a₁:τ₁+…+aₖ:τₖ) = ∪ dom([aᵢ:τᵢ]), and tuple domains admit
			// extra trailing attributes: a tuple whose first attribute is
			// some aᵢ with a value in dom(τᵢ) belongs to the union.
			if x.Len() == 0 {
				return false
			}
			alt, ok := ty.Get(x.At(0).Name)
			return ok && MemberOf(x.At(0).Value, alt, h, classOf)
		default:
			// other kinds are outside every union domain
			return false
		}
	default:
		return false
	}
}
