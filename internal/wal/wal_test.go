package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/object"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

func logPath(dir string) string { return filepath.Join(dir, logName) }

func mustOpen(t *testing.T, dir string) (*Log, *Checkpoint, []Record) {
	t.Helper()
	l, ck, tail, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, ck, tail
}

func sampleRecords() []Record {
	return []Record{
		{Kind: KindSchema, Schema: "<!ELEMENT a (#PCDATA)>"},
		{Kind: KindLoad, Docs: []string{"<a>one</a>", "<a>two</a>"}},
		{Kind: KindName, Name: "my_a", OID: 7},
		{Kind: KindLoad, Docs: []string{"<a>three</a>"}},
	}
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, ck, tail := mustOpen(t, dir)
	if ck != nil || len(tail) != 0 {
		t.Fatalf("fresh dir: ck=%v tail=%v", ck, tail)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Seq() != uint64(len(want)) {
		t.Fatalf("Seq = %d, want %d", l.Seq(), len(want))
	}
	l.Close()

	_, ck, tail = mustOpen(t, dir)
	if ck != nil {
		t.Fatalf("unexpected checkpoint: %v", ck)
	}
	if len(tail) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(tail), len(want))
	}
	for i, r := range tail {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
		if r.Term != 1 {
			t.Errorf("record %d: term %d, want the fresh log's term 1", i, r.Term)
		}
		r.Seq, r.Term = 0, 0
		if !reflect.DeepEqual(r, want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

// TestLogTornTailTruncated cuts the log at every byte offset inside the
// final record: each prefix must reopen cleanly with the last record
// dropped, and the file must be truncated back to the good prefix.
func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	recs := sampleRecords()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lastLen := len(EncodeFrame(Record{Seq: uint64(len(recs)), Kind: recs[len(recs)-1].Kind, Docs: recs[len(recs)-1].Docs}))
	goodLen := len(full) - lastLen
	for cut := goodLen + 1; cut < len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(logPath(sub), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, ck, tail, err := Open(sub)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if ck != nil || len(tail) != len(recs)-1 {
			t.Fatalf("cut=%d: got %d records, want %d", cut, len(tail), len(recs)-1)
		}
		if l2.Seq() != uint64(len(recs)-1) {
			t.Fatalf("cut=%d: seq %d", cut, l2.Seq())
		}
		l2.Close()
		if after, _ := os.ReadFile(logPath(sub)); len(after) != goodLen {
			t.Fatalf("cut=%d: torn tail not truncated: %d bytes, want %d", cut, len(after), goodLen)
		}
	}
}

// TestLogCorruptionBeforeTail flips a byte inside an early record: with
// records behind the damage, Open must fail with ErrCorruptLog.
func TestLogCorruptionBeforeTail(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record (past magic + frame header).
	data[len(logMagic)+frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(logPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Open(dir)
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Open on mid-log corruption: %v, want ErrCorruptLog", err)
	}
}

// TestLogCorruptTailAloneTruncated flips a byte in the *last* record: with
// nothing behind it, the damage is indistinguishable from a torn append
// and must be truncated silently.
func TestLogCorruptTailAloneTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	recs := sampleRecords()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(logPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ck, tail, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ck != nil || len(tail) != len(recs)-1 {
		t.Fatalf("got %d records, want %d", len(tail), len(recs)-1)
	}
}

func TestLogBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir), []byte("not a wal file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Open on bad magic: %v, want ErrCorruptLog", err)
	}
	// A partial magic (crash while stamping a fresh log) restarts cleanly.
	dir2 := t.TempDir()
	if err := os.WriteFile(logPath(dir2), []byte(logMagic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	l, ck, tail, err := Open(dir2)
	if err != nil || ck != nil || len(tail) != 0 {
		t.Fatalf("Open on partial magic: l=%v ck=%v tail=%v err=%v", l, ck, tail, err)
	}
	if err := l.Append(Record{Kind: KindName, Name: "x", OID: 1}); err != nil {
		t.Fatalf("Append after restamp: %v", err)
	}
	l.Close()
}

// TestUnsupportedVersionMagic: a pre-term (v1) data directory is a
// migration problem, not corruption — Open, Fsck, and DecodeCheckpoint
// all report the distinct ErrUnsupportedVersion, and repair never deletes
// the old-format files (they are healthy data under another codec).
func TestUnsupportedVersionMagic(t *testing.T) {
	// A v1 log header.
	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir), []byte(logMagicV1), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := Open(dir)
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("Open on v1 log: %v, want ErrUnsupportedVersion", err)
	}
	if errors.Is(err, ErrCorruptLog) {
		t.Fatal("v1 log misclassified as ErrCorruptLog")
	}
	if _, err := Fsck(dir, false); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("Fsck -verify on v1 log: %v, want ErrUnsupportedVersion", err)
	}

	// A v1 checkpoint. Repair must not delete it the way it deletes
	// crash-damaged (undecodable) checkpoints.
	dir2 := t.TempDir()
	ckPath := filepath.Join(dir2, checkpointName(2))
	if err := os.WriteFile(ckPath, []byte(checkpointMagicV1+"\nseq 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCheckpoint(ckPath); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("readCheckpoint on v1 checkpoint: %v, want ErrUnsupportedVersion", err)
	}
	if _, err := Fsck(dir2, true); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("Fsck -repair on v1 checkpoint: %v, want ErrUnsupportedVersion", err)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("repair deleted the v1 checkpoint: %v", err)
	}
}

func checkpointInstance(t *testing.T) *store.Instance {
	t.Helper()
	s := store.NewSchema()
	if err := s.AddClass("Doc", object.TupleOf(object.TField{Name: "content", Type: object.StringType})); err != nil {
		t.Fatal(err)
	}
	return store.NewInstance(s)
}

func TestCheckpointRoundTripAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	inst := checkpointInstance(t)
	ix := text.NewIndex()
	ix.Add(3, "novel query facilities")
	ck := &Checkpoint{Seq: 3, Epoch: 9, DTD: "<!ELEMENT a (#PCDATA)>", Docs: []uint64{3, 5}, Inst: inst, Index: ix}
	if err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := l.TruncatePrefix(ck.Seq); err != nil {
		t.Fatalf("TruncatePrefix: %v", err)
	}
	l.Close()

	l2, got, tail := mustOpen(t, dir)
	defer l2.Close()
	if got == nil {
		t.Fatal("no checkpoint recovered")
	}
	if got.Seq != 3 || got.Epoch != 9 || got.DTD != ck.DTD || !reflect.DeepEqual(got.Docs, ck.Docs) {
		t.Errorf("checkpoint header = %+v", got)
	}
	if ids := got.Index.Lookup("novel"); len(ids) != 1 || ids[0] != 3 {
		t.Errorf("checkpoint index: %v", ids)
	}
	if len(tail) != 1 || tail[0].Seq != 4 || tail[0].Kind != KindLoad {
		t.Fatalf("tail after truncation = %+v, want the seq-4 load", tail)
	}
	// The next append must continue the pre-checkpoint numbering.
	if err := l2.Append(Record{Kind: KindName, Name: "y", OID: 2}); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 5 {
		t.Errorf("seq after append = %d, want 5", l2.Seq())
	}
}

// TestCheckpointCoversWholeLog checks the skip-by-seq path: when a crash
// hits after WriteCheckpoint but before TruncatePrefix, the log still
// holds records the checkpoint covers; they must be skipped, not
// replayed, and appends must not reuse their sequence numbers.
func TestCheckpointCoversWholeLog(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	ck := &Checkpoint{Seq: 4, Epoch: 11, DTD: "d", Docs: nil, Inst: checkpointInstance(t), Index: text.NewIndex()}
	if err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	l.Close() // no TruncatePrefix: simulates the crash window
	l2, got, tail := mustOpen(t, dir)
	defer l2.Close()
	if got == nil || got.Seq != 4 {
		t.Fatalf("checkpoint = %+v", got)
	}
	if len(tail) != 0 {
		t.Fatalf("covered records replayed: %+v", tail)
	}
	if l2.Seq() != 4 {
		t.Errorf("seq = %d, want 4", l2.Seq())
	}
}

// TestNewestValidCheckpointWins writes a good checkpoint and then a newer
// garbage one: recovery must fall back to the older valid file.
func TestNewestValidCheckpointWins(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	defer l.Close()
	ck := &Checkpoint{Seq: 1, Epoch: 2, DTD: "d", Inst: checkpointInstance(t), Index: text.NewIndex()}
	if err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointName(9)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := newestCheckpoint(dir)
	if err != nil || got == nil || got.Seq != 1 {
		t.Fatalf("newestCheckpoint = %+v, %v; want the valid seq-1 file", got, err)
	}
}

func TestAppendFailureRewindsLog(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	if err := l.Append(Record{Kind: KindSchema, Schema: "d"}); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(logPath(dir))
	disarm := faultpoint.Arm("wal/post-append", faultpoint.Once(faultpoint.Error(errors.New("boom (injected)"))))
	defer disarm()
	err := l.Append(Record{Kind: KindName, Name: "x", OID: 1})
	if err == nil {
		t.Fatal("armed append succeeded")
	}
	after, _ := os.ReadFile(logPath(dir))
	if len(after) != len(before) {
		t.Fatalf("failed append left %d bytes, want %d", len(after), len(before))
	}
	if l.Seq() != 1 {
		t.Errorf("seq advanced to %d on failed append", l.Seq())
	}
	// The log still works after the rewind.
	if err := l.Append(Record{Kind: KindName, Name: "x", OID: 1}); err != nil {
		t.Fatalf("append after rewind: %v", err)
	}
	l.Close()
	_, _, tail, err := Open(dir)
	if err != nil || len(tail) != 2 {
		t.Fatalf("reopen after rewind: tail=%v err=%v", tail, err)
	}
}
