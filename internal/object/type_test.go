package object

import (
	"math/rand"
	"testing"
)

func testHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h := NewHierarchy()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(h.AddClass("Text", TupleOf(TField{"content", StringType})))
	must(h.AddClass("Title", TupleOf(TField{"content", StringType})))
	must(h.AddClass("Author", TupleOf(TField{"content", StringType})))
	must(h.AddClass("Bitmap", TupleOf(TField{"bits", StringType})))
	must(h.AddClass("Picture", TupleOf(TField{"bits", StringType})))
	must(h.AddInherits("Title", "Text"))
	must(h.AddInherits("Author", "Text"))
	must(h.AddInherits("Picture", "Bitmap"))
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTypeStrings(t *testing.T) {
	u := UnionOf(TField{"a", IntType}, TField{"b", StringType})
	if got := u.String(); got != "(a: integer + b: string)" {
		t.Errorf("union String = %q", got)
	}
	tt := TupleOf(TField{"x", FloatType}, TField{"y", BoolType})
	if got := tt.String(); got != "tuple(x: float, y: boolean)" {
		t.Errorf("tuple String = %q", got)
	}
	if got := ListOf(SetOf(Class("Doc"))).String(); got != "list(set(Doc))" {
		t.Errorf("nested String = %q", got)
	}
	if Any.String() != "any" {
		t.Error("any String")
	}
}

func TestUnionOfNormalises(t *testing.T) {
	a := UnionOf(TField{"b", StringType}, TField{"a", IntType})
	b := UnionOf(TField{"a", IntType}, TField{"b", StringType})
	if !TypeEqual(a, b) {
		t.Error("union alternatives are unordered")
	}
	// Same-marker same-type alternatives collapse.
	c := UnionOf(TField{"a", IntType}, TField{"a", IntType})
	if c.Len() != 1 {
		t.Error("duplicate alternatives must collapse")
	}
}

func TestUnionOfConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("conflicting alternatives must panic")
		}
	}()
	UnionOf(TField{"a", IntType}, TField{"a", StringType})
}

func TestTupleTypeOrderMeaningful(t *testing.T) {
	ab := TupleOf(TField{"a", IntType}, TField{"b", IntType})
	ba := TupleOf(TField{"b", IntType}, TField{"a", IntType})
	if TypeEqual(ab, ba) {
		t.Error("tuple types are ordered")
	}
	// ...but mutual subtypes (the lattice ignores order, dom quotients by ≡).
	h := NewHierarchy()
	if !Subtype(h, ab, ba) || !Subtype(h, ba, ab) {
		t.Error("permuted tuple types are mutual subtypes")
	}
}

func TestSubtypeBasics(t *testing.T) {
	h := testHierarchy(t)
	cases := []struct {
		t, u Type
		want bool
	}{
		{IntType, IntType, true},
		{IntType, FloatType, true},
		{FloatType, IntType, false},
		{IntType, StringType, false},
		{Class("Title"), Class("Text"), true},
		{Class("Text"), Class("Title"), false},
		{Class("Title"), Any, true},
		{Any, Class("Title"), false},
		{IntType, Any, false},
		{Any, Any, true},
		{SetOf(Class("Title")), SetOf(Class("Text")), true},
		{ListOf(IntType), ListOf(FloatType), true},
		{ListOf(FloatType), ListOf(IntType), false},
		{SetOf(IntType), ListOf(IntType), false},
		// Tuple width/depth.
		{TupleOf(TField{"a", IntType}, TField{"b", StringType}), TupleOf(TField{"a", IntType}), true},
		{TupleOf(TField{"a", IntType}), TupleOf(TField{"a", IntType}, TField{"b", StringType}), false},
		{TupleOf(TField{"a", Class("Title")}), TupleOf(TField{"a", Class("Text")}), true},
	}
	for _, c := range cases {
		if got := Subtype(h, c.t, c.u); got != c.want {
			t.Errorf("Subtype(%s, %s) = %v, want %v", c.t, c.u, got, c.want)
		}
	}
}

func TestPaperSubtypeChain(t *testing.T) {
	// [a₁:τ₁,…,aₙ:τₙ] ≤ [aᵢ:τᵢ] ≤ (a₁:τ₁+…+aₙ:τₙ)  (Section 5.1)
	h := NewHierarchy()
	full := TupleOf(TField{"a", IntType}, TField{"b", StringType}, TField{"c", BoolType})
	u := UnionOf(TField{"a", IntType}, TField{"b", StringType}, TField{"c", BoolType})
	for _, f := range full.Fields() {
		single := TupleOf(f)
		if !Subtype(h, full, single) {
			t.Errorf("full tuple must be ≤ [%s:%s]", f.Name, f.Type)
		}
		if !Subtype(h, single, u) {
			t.Errorf("[%s:%s] must be ≤ %s", f.Name, f.Type, u)
		}
	}
	if !Subtype(h, full, u) {
		t.Error("≤ must be transitive to the union")
	}
	// Second new rule: tuple ≤ heterogeneous list.
	hl := HeterogeneousListType(full)
	if !Subtype(h, full, hl) {
		t.Errorf("%s must be ≤ %s", full, hl)
	}
	// And to a wider union element.
	wider := ListOf(UnionOf(TField{"a", IntType}, TField{"b", StringType},
		TField{"c", BoolType}, TField{"d", FloatType}))
	if !Subtype(h, full, wider) {
		t.Error("tuple ≤ list of wider union")
	}
	// But not to a narrower one.
	narrow := ListOf(UnionOf(TField{"a", IntType}))
	if Subtype(h, full, narrow) {
		t.Error("tuple must not be ≤ list of narrower union")
	}
}

func TestUnionSubtyping(t *testing.T) {
	h := NewHierarchy()
	small := UnionOf(TField{"a", IntType}, TField{"b", StringType})
	big := UnionOf(TField{"a", IntType}, TField{"b", StringType}, TField{"c", BoolType})
	if !Subtype(h, small, big) {
		t.Error("narrower union ≤ wider union")
	}
	if Subtype(h, big, small) {
		t.Error("wider union must not be ≤ narrower")
	}
	deep := UnionOf(TField{"a", IntType})
	deepSup := UnionOf(TField{"a", FloatType})
	if !Subtype(h, deep, deepSup) {
		t.Error("union depth subtyping")
	}
	if Subtype(h, small, SetOf(IntType)) || Subtype(h, SetOf(IntType), small) {
		t.Error("union and set are unrelated")
	}
}

func TestCommonSupertypeRules(t *testing.T) {
	h := testHierarchy(t)
	// Rule 1 (Section 4.2): no common supertype between union and non-union.
	u := UnionOf(TField{"a", IntType}, TField{"b", StringType})
	if _, ok := CommonSupertype(h, SetOf(IntType), SetOf(u)); ok {
		t.Error("set(int) and set(union) must not join (rule 1)")
	}
	if _, ok := CommonSupertype(h, IntType, u); ok {
		t.Error("int and union must not join (rule 1)")
	}
	// Rule 2: the paper's example. (a:int+b:char) ⊔ (b:char+c:string) =
	// (a:int+b:char+c:string); we use bool for char.
	x := UnionOf(TField{"a", IntType}, TField{"b", BoolType})
	y := UnionOf(TField{"b", BoolType}, TField{"c", StringType})
	j, ok := CommonSupertype(h, x, y)
	if !ok {
		t.Fatal("rule 2 join must exist")
	}
	want := UnionOf(TField{"a", IntType}, TField{"b", BoolType}, TField{"c", StringType})
	if !TypeEqual(j, want) {
		t.Errorf("join = %s, want %s", j, want)
	}
	// Marker conflict: same marker, unjoinable domains.
	x2 := UnionOf(TField{"a", IntType})
	y2 := UnionOf(TField{"a", StringType})
	if _, ok := CommonSupertype(h, x2, y2); ok {
		t.Error("marker conflict must prevent a join")
	}
	// Same marker with joinable domains merges.
	x3 := UnionOf(TField{"a", IntType})
	y3 := UnionOf(TField{"a", FloatType})
	j3, ok := CommonSupertype(h, x3, y3)
	if !ok || !TypeEqual(j3, UnionOf(TField{"a", FloatType})) {
		t.Errorf("same-marker joinable merge = %v", j3)
	}
}

func TestCommonSupertypeClasses(t *testing.T) {
	h := testHierarchy(t)
	j, ok := CommonSupertype(h, Class("Title"), Class("Author"))
	if !ok || !TypeEqual(j, Class("Text")) {
		t.Errorf("Title ⊔ Author = %v, want Text", j)
	}
	j2, ok := CommonSupertype(h, Class("Title"), Class("Picture"))
	if !ok || !TypeEqual(j2, Any) {
		t.Errorf("Title ⊔ Picture = %v, want any", j2)
	}
	j3, ok := CommonSupertype(h, Class("Title"), Any)
	if !ok || !TypeEqual(j3, Any) {
		t.Errorf("Title ⊔ any = %v", j3)
	}
	if _, ok := CommonSupertype(h, IntType, StringType); ok {
		t.Error("int ⊔ string must fail")
	}
	jf, ok := CommonSupertype(h, IntType, FloatType)
	if !ok || !TypeEqual(jf, FloatType) {
		t.Error("int ⊔ float = float")
	}
}

func TestCommonSupertypeCollectionsAndTuples(t *testing.T) {
	h := testHierarchy(t)
	j, ok := CommonSupertype(h, SetOf(Class("Title")), SetOf(Class("Author")))
	if !ok || !TypeEqual(j, SetOf(Class("Text"))) {
		t.Errorf("set join = %v", j)
	}
	ta := TupleOf(TField{"a", IntType}, TField{"b", StringType})
	tb := TupleOf(TField{"a", FloatType}, TField{"c", BoolType})
	jt, ok := CommonSupertype(h, ta, tb)
	if !ok || !TypeEqual(jt, TupleOf(TField{"a", FloatType})) {
		t.Errorf("tuple join = %v", jt)
	}
	// Tuples with no common attributes do not join.
	if _, ok := CommonSupertype(h, TupleOf(TField{"a", IntType}), TupleOf(TField{"b", IntType})); ok {
		t.Error("disjoint tuples must not join")
	}
	// Tuple vs list joins through the heterogeneous-list view.
	lt := ListOf(UnionOf(TField{"a", IntType}, TField{"b", StringType}, TField{"z", BoolType}))
	jl, ok := CommonSupertype(h, ta, lt)
	if !ok {
		t.Fatal("tuple ⊔ list of union must exist")
	}
	if !Subtype(h, ta, jl) || !Subtype(h, lt, jl) {
		t.Errorf("join %s must be above both", jl)
	}
}

func TestHierarchyChecks(t *testing.T) {
	h := NewHierarchy()
	if err := h.AddClass("A", TupleOf(TField{"x", IntType})); err != nil {
		t.Fatal(err)
	}
	if err := h.AddClass("A", nil); err == nil {
		t.Error("redeclaration must fail")
	}
	if err := h.AddClass("", nil); err == nil {
		t.Error("empty name must fail")
	}
	if err := h.AddInherits("A", "Zed"); err == nil {
		t.Error("inherits from undeclared must fail")
	}
	if err := h.AddInherits("Zed", "A"); err == nil {
		t.Error("inherits of undeclared must fail")
	}
	if err := h.AddClass("B", TupleOf(TField{"x", IntType}, TField{"y", IntType})); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInherits("B", "A"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInherits("B", "A"); err != nil {
		t.Error("duplicate edge is idempotent")
	}
	if err := h.Check(); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	// Cycle detection.
	if err := h.AddInherits("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(); err == nil {
		t.Error("cycle must be rejected")
	}
	// σ incompatibility.
	h2 := NewHierarchy()
	_ = h2.AddClass("Sup", TupleOf(TField{"x", IntType}))
	_ = h2.AddClass("Sub", TupleOf(TField{"y", IntType}))
	_ = h2.AddInherits("Sub", "Sup")
	if err := h2.Check(); err == nil {
		t.Error("σ(Sub) ≰ σ(Sup) must be rejected")
	}
}

func TestHierarchyQueries(t *testing.T) {
	h := testHierarchy(t)
	if !h.IsSubclass("Title", "Title") {
		t.Error("≺* is reflexive")
	}
	subs := h.Subclasses("Text")
	if len(subs) != 3 { // Text, Title, Author
		t.Errorf("Subclasses(Text) = %v", subs)
	}
	sups := h.Superclasses("Title")
	if len(sups) != 2 {
		t.Errorf("Superclasses(Title) = %v", sups)
	}
	if h.LeastCommonSuperclass("Title", "Picture") != "" {
		t.Error("Title and Picture share no class")
	}
	if h.LeastCommonSuperclass("Title", "Author") != "Text" {
		t.Error("LCS(Title, Author) = Text")
	}
	if h.LeastCommonSuperclass("Title", "Text") != "Text" {
		t.Error("LCS(Title, Text) = Text")
	}
	cl := h.Clone()
	if err := cl.AddClass("New", TupleOf()); err != nil {
		t.Fatal(err)
	}
	if h.Has("New") {
		t.Error("Clone must be independent")
	}
	if got := h.Parents("Title"); len(got) != 1 || got[0] != "Text" {
		t.Errorf("Parents = %v", got)
	}
}

func TestDiamondInheritance(t *testing.T) {
	h := NewHierarchy()
	for _, c := range []string{"Top", "L", "R", "Bot"} {
		if err := h.AddClass(c, TupleOf()); err != nil {
			t.Fatal(err)
		}
	}
	_ = h.AddInherits("L", "Top")
	_ = h.AddInherits("R", "Top")
	_ = h.AddInherits("Bot", "L")
	_ = h.AddInherits("Bot", "R")
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
	if !h.IsSubclass("Bot", "Top") {
		t.Error("diamond transitivity")
	}
	// L and R are incomparable; LCS(L,R)=Top, LCS(Bot,L)=L.
	if h.LeastCommonSuperclass("L", "R") != "Top" {
		t.Error("LCS(L,R)")
	}
	if h.LeastCommonSuperclass("Bot", "L") != "L" {
		t.Error("LCS(Bot,L)")
	}
}

// genType builds a random type of bounded depth for property tests.
func genType(r *rand.Rand, classes []string, depth int) Type {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return IntType
		case 1:
			return FloatType
		case 2:
			return StringType
		case 3:
			return BoolType
		default:
			if len(classes) == 0 {
				return IntType
			}
			return Class(classes[r.Intn(len(classes))])
		}
	}
	switch r.Intn(8) {
	case 0:
		return IntType
	case 1:
		return StringType
	case 2:
		return genTypeColl(r, classes, depth, true)
	case 3:
		return genTypeColl(r, classes, depth, false)
	case 4, 5:
		n := 1 + r.Intn(3)
		names := []string{"a", "b", "c"}
		fs := make([]TField, 0, n)
		for i := 0; i < n && i < len(names); i++ {
			fs = append(fs, TField{names[i], genType(r, classes, depth-1)})
		}
		return TupleOf(fs...)
	case 6:
		n := 1 + r.Intn(3)
		names := []string{"a", "b", "c"}
		fs := make([]TField, 0, n)
		for i := 0; i < n && i < len(names); i++ {
			fs = append(fs, TField{names[i], genType(r, classes, depth-1)})
		}
		return UnionOf(fs...)
	default:
		if len(classes) == 0 {
			return BoolType
		}
		return Class(classes[r.Intn(len(classes))])
	}
}

func genTypeColl(r *rand.Rand, classes []string, depth int, isSet bool) Type {
	e := genType(r, classes, depth-1)
	if isSet {
		return SetOf(e)
	}
	return ListOf(e)
}

func TestPropertySubtypeReflexiveAndJoinSound(t *testing.T) {
	h := testHierarchy(t)
	classes := h.Classes()
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 1500; i++ {
		a := genType(r, classes, 3)
		b := genType(r, classes, 3)
		if !Subtype(h, a, a) {
			t.Fatalf("≤ not reflexive on %s", a)
		}
		if j, ok := CommonSupertype(h, a, b); ok {
			if !Subtype(h, a, j) || !Subtype(h, b, j) {
				t.Fatalf("join %s of %s and %s is not an upper bound", j, a, b)
			}
		} else if Subtype(h, a, b) || Subtype(h, b, a) {
			t.Fatalf("comparable types %s, %s must join", a, b)
		}
	}
}

func TestPropertySubtypeTransitive(t *testing.T) {
	h := testHierarchy(t)
	classes := h.Classes()
	r := rand.New(rand.NewSource(23))
	checked := 0
	for i := 0; i < 30000 && checked < 600; i++ {
		a := genType(r, classes, 2)
		b := genType(r, classes, 2)
		c := genType(r, classes, 2)
		if Subtype(h, a, b) && Subtype(h, b, c) {
			checked++
			if !Subtype(h, a, c) {
				t.Fatalf("transitivity violated: %s ≤ %s ≤ %s but not %s ≤ %s", a, b, c, a, c)
			}
		}
	}
	if checked == 0 {
		t.Error("property test vacuous: no chains found")
	}
}

func TestMemberOf(t *testing.T) {
	h := testHierarchy(t)
	classOf := func(o OID) (string, bool) {
		switch o {
		case 1:
			return "Title", true
		case 2:
			return "Picture", true
		}
		return "", false
	}
	cases := []struct {
		v    Value
		t    Type
		want bool
	}{
		{Int(3), IntType, true},
		{Int(3), FloatType, true},
		{Float(3), IntType, false},
		{String_("x"), StringType, true},
		{Bool(true), BoolType, true},
		{Nil{}, Class("Text"), true},
		{OID(1), Class("Text"), true},
		{OID(1), Class("Title"), true},
		{OID(2), Class("Text"), false},
		{OID(1), Any, true},
		{Int(1), Any, false},
		{OID(9), Class("Text"), false}, // unassigned oid
		{NewSet(Int(1), Int(2)), SetOf(IntType), true},
		{NewSet(Int(1), String_("x")), SetOf(IntType), false},
		{NewList(Int(1)), ListOf(IntType), true},
		{NewTuple(Field{"a", Int(1)}), TupleOf(TField{"a", IntType}), true},
		{NewTuple(Field{"a", Int(1)}, Field{"b", Bool(true)}),
			TupleOf(TField{"a", IntType}), true}, // extra trailing attrs allowed
		{NewTuple(Field{"b", Bool(true)}, Field{"a", Int(1)}),
			TupleOf(TField{"a", IntType}), false}, // prefix must match in order
		{NewUnion("a", Int(1)), UnionOf(TField{"a", IntType}, TField{"b", StringType}), true},
		{NewUnion("c", Int(1)), UnionOf(TField{"a", IntType}), false},
		{NewTuple(Field{"a", Int(1)}), UnionOf(TField{"a", IntType}), true},
		// Tuple belongs to its heterogeneous-list type.
		{NewTuple(Field{"a", Int(1)}, Field{"b", String_("s")}),
			ListOf(UnionOf(TField{"a", IntType}, TField{"b", StringType})), true},
		{Int(1), ListOf(IntType), false},
		{NewList(Int(1)), SetOf(IntType), false},
	}
	for _, c := range cases {
		if got := MemberOf(c.v, c.t, h, classOf); got != c.want {
			t.Errorf("MemberOf(%s, %s) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
}

func TestPropertyMemberRespectsSubtype(t *testing.T) {
	// If v ∈ dom(τ) and τ ≤ υ then v ∈ dom(υ) — the paper's dom
	// monotonicity, restricted to non-class types (class membership needs
	// the oid assignment, exercised separately above).
	h := testHierarchy(t)
	r := rand.New(rand.NewSource(31))
	checked := 0
	for i := 0; i < 40000 && checked < 500; i++ {
		tau := genType(r, nil, 2)
		ups := genType(r, nil, 2)
		if !Subtype(h, tau, ups) {
			continue
		}
		v := genValue(r, 3)
		if MemberOf(v, tau, h, nil) {
			checked++
			if !MemberOf(v, ups, h, nil) {
				t.Fatalf("dom not monotone: %s ∈ dom(%s), %s ≤ %s, but ∉ dom(%s)", v, tau, tau, ups, ups)
			}
		}
	}
	if checked == 0 {
		t.Error("property test vacuous")
	}
}
