package sgmldb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sgmldb/internal/object"
)

func openArticleDB(t *testing.T) *Database {
	t.Helper()
	db, err := OpenDTDFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocumentFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("my_article", oid); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFacadeQuickstart(t *testing.T) {
	db := openArticleDB(t)
	if errs := db.Check(); len(errs) != 0 {
		t.Fatalf("Check = %v", errs)
	}
	// Figure 3 schema rendering.
	if !strings.Contains(db.SchemaString(), "class Article") {
		t.Error("SchemaString")
	}
	// Q3 through the facade.
	got, err := db.Query(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	s := got.(*object.Set)
	if s.Len() < 3 {
		t.Errorf("titles = %s", s)
	}
	// Algebra mode agrees.
	db.UseAlgebra(true)
	got2, err := db.Query(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(got, got2) {
		t.Error("algebra mode must agree with naive mode")
	}
	// Text extraction.
	art, _ := db.Instance().Root("my_article")
	if !strings.Contains(db.Text(art), "Structured Documents") {
		t.Error("Text")
	}
	if db.Stats().Objects == 0 {
		t.Error("Stats")
	}
}

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	db := openArticleDB(t)
	path := filepath.Join(t.TempDir(), "articles.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.Query(`select a from a in Articles where a contains "SGML"`)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*object.Set).Len() != 1 {
		t.Errorf("snapshot query = %s", got)
	}
	// Snapshot databases refuse further documents.
	if _, err := db2.LoadDocument("<article></article>"); err == nil {
		t.Error("snapshot must be read-only for documents")
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := OpenDTD("not a dtd"); err == nil {
		t.Error("bad DTD accepted")
	}
	if _, err := OpenDTDFile("testdata/missing.dtd"); err == nil {
		t.Error("missing file accepted")
	}
	db := openArticleDB(t)
	if _, err := db.LoadDocument("<bogus>x</bogus>"); err != nil {
		// expected: invalid document
	} else {
		t.Error("invalid document accepted")
	}
	if err := db.Name("ghost", object.OID(9999)); err == nil {
		t.Error("naming an unknown object must fail")
	}
	if _, err := db.LoadDocumentFile("testdata/missing.sgml"); err == nil {
		t.Error("missing document file accepted")
	}
	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "none")); err == nil {
		t.Error("missing snapshot accepted")
	}
}

func TestFacadeExport(t *testing.T) {
	db := openArticleDB(t)
	art, _ := db.Instance().Root("my_article")
	out, err := db.Export(art.(object.OID))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, `<article status="final">`) {
		t.Errorf("export prefix = %.60s", out)
	}
	// The export loads back.
	oid2, err := db.LoadDocument(out)
	if err != nil {
		t.Fatalf("re-load of export: %v\n%s", err, out)
	}
	if db.Text(art) != db.Text(oid2) {
		t.Error("export changed document text")
	}
	// Snapshot databases cannot export (no mapping).
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Export(art.(object.OID)); err == nil {
		t.Error("snapshot export must fail without a mapping")
	}
}

func TestFacadeQ4AcrossVersions(t *testing.T) {
	db := openArticleDB(t)
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	// A new version with an extra section.
	newSrc := strings.Replace(string(src), "<acknowl>",
		"<section><title>New Section</title><body><paragr>added text</body></section>\n<acknowl>", 1)
	oid, err := db.LoadDocument(newSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("my_new_article", oid); err != nil {
		t.Fatal(err)
	}
	diff, err := db.Query(`my_new_article PATH_p - my_article PATH_p`)
	if err != nil {
		t.Fatal(err)
	}
	if diff.(*object.Set).Len() == 0 {
		t.Error("Q4 difference must be non-empty")
	}
	rows, err := db.QueryRows(`select t from my_new_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() < 4 {
		t.Errorf("rows = %d", rows.Len())
	}
}

// TestLoadDocumentsEmptyBatch asserts the empty (and nil) batch is a
// cheap no-op: (nil, nil) back, no snapshot published, epoch unchanged.
func TestLoadDocumentsEmptyBatch(t *testing.T) {
	db := openArticleDB(t)
	epoch := db.Epoch()
	for _, batch := range [][]string{nil, {}} {
		oids, err := db.LoadDocuments(batch)
		if err != nil {
			t.Fatalf("LoadDocuments(%v): %v", batch, err)
		}
		if oids != nil {
			t.Errorf("LoadDocuments(%v) = %v, want nil", batch, oids)
		}
	}
	if got := db.Epoch(); got != epoch {
		t.Errorf("epoch after empty batches = %d, want %d (no publication)", got, epoch)
	}
}
