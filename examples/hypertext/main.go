// Hypertext: the paper's remark that "in hypertext applications,
// navigation is crucial and the liberal semantics should be used"
// (Section 5.2). A small web of cross-referencing pages forms a cyclic
// graph; under the restricted semantics a path variable crosses the Page
// class once, while the liberal semantics follows links until an object
// repeats — navigation bounded by the data, not the schema.
package main

import (
	"fmt"
	"log"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/path"
	"sgmldb/internal/store"
)

func main() {
	env := buildWeb()

	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "T", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
			Body: calculus.PathAtom{
				Base: calculus.NameRef{Name: "Home"},
				Path: calculus.P(
					calculus.ElemVar{Name: "P"},
					calculus.ElemAttr{A: calculus.AttrName{Name: "title"}},
					calculus.ElemBind{X: "T"},
				),
			},
		},
	}

	for _, sem := range []path.Semantics{path.Restricted, path.Liberal} {
		env.Semantics = sem
		res, err := env.Eval(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== titles reachable under the %s semantics ===\n", sem)
		for _, b := range res.Bindings("T") {
			fmt.Printf("  %s\n", b)
		}
		fmt.Println()
	}

	// Deeper reach under the restricted semantics via composition
	// (the paper: "queries going more in depth in the search can still be
	// specified using paths of the form P → P′").
	env.Semantics = path.Restricted
	q2 := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "T", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{
				{Name: "P", Sort: calculus.SortPath},
				{Name: "Q", Sort: calculus.SortPath},
			},
			Body: calculus.PathAtom{
				Base: calculus.NameRef{Name: "Home"},
				Path: calculus.P(
					calculus.ElemVar{Name: "P"},
					calculus.ElemVar{Name: "Q"},
					calculus.ElemAttr{A: calculus.AttrName{Name: "title"}},
					calculus.ElemBind{X: "T"},
				),
			},
		},
	}
	res, err := env.Eval(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== restricted semantics, two composed path variables (P Q) ===")
	for _, b := range res.Bindings("T") {
		fmt.Printf("  %s\n", b)
	}
}

// buildWeb creates Home → Docs → FAQ → Home (a cycle) plus a leaf.
func buildWeb() *calculus.Env {
	s := store.NewSchema()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(s.AddClass("Page", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "links", Type: object.ListOf(object.Class("Page"))},
	)))
	must(s.AddRoot("Home", object.Class("Page")))
	must(s.Check())
	in := store.NewInstance(s)
	page := func(title string) object.OID {
		o, err := in.NewObject("Page", object.NewTuple(
			object.Field{Name: "title", Value: object.String_(title)},
			object.Field{Name: "links", Value: object.NewList()},
		))
		if err != nil {
			log.Fatal(err)
		}
		return o
	}
	link := func(from object.OID, to ...object.OID) {
		v, _ := in.Deref(from)
		vals := make([]object.Value, len(to))
		for i, t := range to {
			vals[i] = t
		}
		if err := in.SetValue(from, v.(*object.Tuple).With("links", object.NewList(vals...))); err != nil {
			log.Fatal(err)
		}
	}
	home := page("Home")
	docs := page("Documentation")
	faq := page("FAQ")
	leaf := page("Glossary")
	link(home, docs)
	link(docs, faq, leaf)
	link(faq, home) // the cycle
	if err := in.SetRoot("Home", home); err != nil {
		log.Fatal(err)
	}
	return calculus.NewEnv(in)
}
