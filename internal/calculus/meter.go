package calculus

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// This file implements per-query resource governance: a Budget states
// what one query may consume, a Meter enforces it. The meter piggybacks
// on the strided cancellation polls of the row-scan loops (pollCtx here,
// Ctx.poll in the algebra), so enforcement costs nothing on queries that
// were already paying for prompt cancellation: every stride boundary
// charges the stride's rows (plus an estimated materialisation size) and
// fails the scan with ErrBudgetExceeded the moment the budget is gone.
// Counters are atomic — one meter is shared by every goroutine of one
// query (parallel scan partitions, parallel union branches), so a budget
// trip in any branch stops all of them at their next poll.

// ErrBudgetExceeded is the sentinel for a query that exhausted its
// budget (rows, memory or duration); the returned error wraps it and
// carries a partial-cost report. Test with errors.Is. The sgmldb facade
// re-exports it.
var ErrBudgetExceeded = errors.New("query budget exceeded")

// ErrInternal is the sentinel wrapping a panic recovered at an engine
// boundary (the facade's query/load entry points, the algebra's worker
// goroutines). The database that returns it is still serving: the panic
// unwound a single evaluation, never the published snapshot. The sgmldb
// facade re-exports it.
var ErrInternal = errors.New("internal error (recovered panic)")

// Budget bounds one query's run-time cost. The zero value means
// unlimited on every axis.
type Budget struct {
	// MaxRows bounds the valuations the query may process, summed over
	// every operator scan — a work bound, not a result-size bound. 0 is
	// unlimited. Enforcement is strided: overruns are detected within
	// one poll stride (64 rows) per scanning goroutine.
	MaxRows int64
	// MaxMem bounds the query's estimated materialisation, in bytes
	// (valuations built by scans, unnests and unions — an allocation
	// estimate, not resident-set truth). 0 is unlimited.
	MaxMem int64
	// MaxDuration bounds wall-clock evaluation time; checked at the same
	// stride boundaries, so it fires while scanning, not after. 0 is
	// unlimited.
	MaxDuration time.Duration
}

// zero reports a budget with no limits, for which no meter is needed.
func (b Budget) zero() bool {
	return b.MaxRows == 0 && b.MaxMem == 0 && b.MaxDuration == 0
}

// Cost is a meter reading: what the query has consumed so far.
type Cost struct {
	Rows int64         // valuations processed across all scans
	Mem  int64         // estimated bytes materialised
	Took time.Duration // wall clock since the meter started
}

func (c Cost) String() string {
	return fmt.Sprintf("~%d rows scanned, ~%d bytes materialised, %v elapsed",
		c.Rows, c.Mem, c.Took.Round(time.Millisecond))
}

// Meter enforces a Budget for one query execution. A nil *Meter is a
// valid no-op (every method returns nil), so un-budgeted paths pay one
// nil check. Safe for concurrent use by the query's goroutines.
type Meter struct {
	budget Budget
	start  time.Time
	rows   atomic.Int64
	mem    atomic.Int64
	// tripped latches the first budget error so every subsequent poll —
	// on any goroutine — fails fast with the same report instead of
	// re-deriving it.
	tripped atomic.Bool
}

// NewMeter starts a meter over a budget; nil when the budget is
// unlimited, so callers thread the no-op for free.
func NewMeter(b Budget) *Meter {
	if b.zero() {
		return nil
	}
	return &Meter{budget: b, start: time.Now()}
}

// Cost reads the meter.
func (m *Meter) Cost() Cost {
	if m == nil {
		return Cost{}
	}
	return Cost{Rows: m.rows.Load(), Mem: m.mem.Load(), Took: time.Since(m.start)}
}

// Charge accounts rows processed and bytes materialised, returning
// ErrBudgetExceeded (wrapped, with the partial cost) once any budget
// axis is exhausted. The deadline is checked here too, so a slow scan
// trips within one stride of its deadline.
func (m *Meter) Charge(rows, bytes int64) error {
	if m == nil {
		return nil
	}
	r := m.rows.Add(rows)
	b := m.mem.Add(bytes)
	if m.tripped.Load() {
		return m.fail("")
	}
	switch {
	case m.budget.MaxRows > 0 && r > m.budget.MaxRows:
		return m.fail(fmt.Sprintf("row budget %d", m.budget.MaxRows))
	case m.budget.MaxMem > 0 && b > m.budget.MaxMem:
		return m.fail(fmt.Sprintf("memory budget %d bytes", m.budget.MaxMem))
	case m.budget.MaxDuration > 0 && time.Since(m.start) > m.budget.MaxDuration:
		return m.fail(fmt.Sprintf("deadline %v", m.budget.MaxDuration))
	}
	return nil
}

// Err reports whether the meter has already tripped (or is past
// deadline), without charging anything: the cheap re-check for code that
// sits between charge sites.
func (m *Meter) Err() error {
	if m == nil {
		return nil
	}
	if m.tripped.Load() {
		return m.fail("")
	}
	if m.budget.MaxDuration > 0 && time.Since(m.start) > m.budget.MaxDuration {
		return m.fail(fmt.Sprintf("deadline %v", m.budget.MaxDuration))
	}
	return nil
}

// fail latches the trip and builds the budget error with its
// partial-cost report.
func (m *Meter) fail(axis string) error {
	m.tripped.Store(true)
	if axis == "" {
		return fmt.Errorf("calculus: %w (%s)", ErrBudgetExceeded, m.Cost())
	}
	return fmt.Errorf("calculus: %w: %s (%s)", ErrBudgetExceeded, axis, m.Cost())
}

// estimateBytes approximates the heap footprint of one valuation: map
// header plus per-binding bucket, key string and Binding struct. A
// governance estimate, deliberately coarse and deliberately cheap.
func estimateBytes(v Valuation) int64 {
	return 48 + 112*int64(len(v))
}

// EstimateBytes is estimateBytes for the algebra's charge sites.
func EstimateBytes(v Valuation) int64 { return estimateBytes(v) }

// Internal converts a recovered panic value into an ErrInternal-wrapped
// error carrying the panic and its stack. Worker goroutines recover with
// it so an evaluator panic surfaces to the caller as an error instead of
// killing the process; the facade boundary uses it for the same
// conversion on the calling goroutine.
func Internal(recovered any) error {
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return fmt.Errorf("%w: %v\n%s", ErrInternal, recovered, buf)
}
