package corpus

import (
	"strings"
	"testing"

	"sgmldb/internal/oql"
)

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(Params{Seed: 42})
	g2 := NewGenerator(Params{Seed: 42})
	if g1.Article(3) != g2.Article(3) {
		t.Error("same seed must generate identical documents")
	}
	g3 := NewGenerator(Params{Seed: 43})
	if g1.Article(0) == g3.Article(0) {
		t.Error("different seeds should differ")
	}
}

func TestBuildArticles(t *testing.T) {
	db, err := BuildArticles(Params{Docs: 4, Sections: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.Loader.Documents()); got != 4 {
		t.Fatalf("documents = %d", got)
	}
	if errs := db.Loader.Instance.Check(); len(errs) != 0 {
		t.Fatalf("generated instance invalid: %v", errs)
	}
	if db.RawBytes == 0 {
		t.Error("RawBytes")
	}
	if db.Index.Size() != 4 {
		t.Errorf("index size = %d", db.Index.Size())
	}
	// The corpus is queryable: sections with subsections exist.
	e := oql.New(db.Env)
	e.Index = db.Index
	got, err := e.Query(`select ss from a in Articles, s in a.sections, ss in s.subsectns`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got.String(), "set()") {
		t.Error("expected subsections in the corpus")
	}
}

func TestBuildLetters(t *testing.T) {
	db, err := BuildLetters(Params{Docs: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if errs := db.Loader.Instance.Check(); len(errs) != 0 {
		t.Fatalf("letters instance invalid: %v", errs)
	}
	e := oql.New(db.Env)
	got, err := e.Query(`
select letter
from letter in Letters, from(i) in letter.preamble, to(j) in letter.preamble
where i < j`)
	if err != nil {
		t.Fatal(err)
	}
	// Odd ids put the sender first: 3 of 6.
	if !strings.Contains(got.String(), "o") {
		t.Errorf("Q6 over generated letters = %s", got)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewGenerator(Params{Seed: 1, Vocabulary: 100})
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[g.word()]++
	}
	// The most frequent word should dominate a mid-rank word heavily.
	if counts["w0000"] < 5*counts["w0050"]+1 {
		t.Errorf("distribution not skewed: w0000=%d w0050=%d", counts["w0000"], counts["w0050"])
	}
}
