package calculus

import (
	"errors"

	"sgmldb/internal/object"
)

// This file exports the evaluation hooks the algebra layer (Section 5.4)
// builds on: conjunct ordering, formula evaluation over valuations, and
// term evaluation.

// Conjuncts flattens nested conjunctions into a list.
func Conjuncts(f Formula) []Formula { return conjuncts(f) }

// OrderConjuncts returns the conjuncts of f in a range-restriction-
// respecting evaluation order, given the already-bound variables.
func OrderConjuncts(f Formula, bound map[string]bool) ([]Formula, error) {
	b := varSet{}
	for k, v := range bound {
		if v {
			b[k] = true
		}
	}
	return orderConjuncts(conjuncts(f), b)
}

// Restricts reports whether formula f, evaluated with the given variables
// already bound, safely restricts all of its free variables, and returns
// the set of variables it binds.
func Restricts(f Formula, bound map[string]bool) (map[string]bool, bool) {
	b := varSet{}
	for k, v := range bound {
		if v {
			b[k] = true
		}
	}
	got, ok := restrict(f, b)
	if !ok || !coversFree(f, b, got) {
		return nil, false
	}
	out := map[string]bool{}
	for k := range got {
		out[k] = true
	}
	return out, true
}

// EvalWith evaluates a formula over the given input valuations, extending
// each with all satisfying bindings — the algebra's escape hatch for
// residual predicates.
func (e *Env) EvalWith(f Formula, in []Valuation) ([]Valuation, error) {
	return e.evalFormula(f, in)
}

// Term evaluates a data term under a valuation.
func (e *Env) Term(t DataTerm, v Valuation) (object.Value, error) {
	return e.evalDataTerm(t, v)
}

// TermBinding evaluates a term of any sort under a valuation.
func (e *Env) TermBinding(t Term, v Valuation) (Binding, error) {
	return e.evalTerm(t, v)
}

// ApplyPath follows a concrete path from a value with implicit selectors;
// the error is ErrNoSuchPath-like when the path does not apply.
func (e *Env) ApplyPath(v object.Value, p Binding) (object.Value, error) {
	return e.applyWithSelectors(v, p.Path)
}

// IsNoSuchPath reports whether an error means "the path does not apply
// here" (the atom-is-false condition of Section 5.3).
func IsNoSuchPath(err error) bool { return errors.Is(err, errNoSuchPath) }

// Extend returns the valuation extended with a binding (copy-on-write).
func (v Valuation) Extend(name string, b Binding) Valuation { return v.extend(name, b) }

// Key returns a canonical key of the valuation for deduplication.
func (v Valuation) Key() string { return v.key() }

// Without returns the valuation with the given variables removed.
func (v Valuation) Without(names []VarDecl) Valuation { return v.without(names) }
