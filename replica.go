package sgmldb

import (
	"fmt"

	"sgmldb/internal/object"
	"sgmldb/internal/oql"
	"sgmldb/internal/sgml"
	"sgmldb/internal/wal"
)

// Log-shipping replication (DESIGN.md §10). A primary with a data
// directory exposes its durable history twice over: the newest checkpoint
// file as a bootstrap image (NewestCheckpointFile) and the retained log
// as raw frames (FeedFrames). A follower — opened with OpenFollower, no
// data directory — applies that history through the same deterministic
// commit path recovery replays through (commitLoad/commitName with
// logIt=false), so a follower that has applied sequence S sits on exactly
// the epoch the primary published at S. The follower is read-only for
// clients: queries serve lock-free from its replayed COW snapshot, loads
// and namings fail with ErrReadOnly.

// OpenFollower compiles the DTD and opens an empty read-only database
// that is advanced exclusively through ApplyCheckpoint/ApplyRecord with
// records shipped from a primary's log. WithDataDir is rejected: a
// follower keeps no log of its own — restarting one re-bootstraps from
// the primary, which is always at least as fresh.
func OpenFollower(dtdSource string, opts ...Option) (*Database, error) {
	db, err := OpenDTD(dtdSource, opts...)
	if err != nil {
		return nil, err
	}
	if db.dataDir != "" {
		db.Close()
		return nil, fmt.Errorf("sgmldb: a follower replays the primary's log; WithDataDir is for primaries")
	}
	db.follower = true
	db.dtdSource = dtdSource
	return db, nil
}

// IsFollower reports whether the database was opened with OpenFollower.
func (db *Database) IsFollower() bool { return db.follower }

// AppliedSeq is the sequence number of the last primary log record this
// follower has applied (0 before any). On a non-follower it is 0.
func (db *Database) AppliedSeq() uint64 { return db.appliedSeq.Load() }

// PrimarySeq is the newest primary log sequence the follower has observed
// (from feed responses), whether or not it has applied that far yet;
// PrimarySeq-AppliedSeq is the replication lag in records.
func (db *Database) PrimarySeq() uint64 { return db.primarySeq.Load() }

// ObservePrimarySeq records the newest primary log sequence seen by the
// replication client. It only moves forward.
func (db *Database) ObservePrimarySeq(seq uint64) {
	for {
		cur := db.primarySeq.Load()
		if seq <= cur || db.primarySeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// ApplyCheckpoint installs a primary checkpoint wholesale — the follower
// bootstrap path, used when the feed reports the follower's anchor was
// truncated away. It only moves forward: a checkpoint at or behind the
// applied sequence is a no-op, so a bootstrap racing normal tailing can
// never rewind the follower.
func (db *Database) ApplyCheckpoint(ck *wal.Checkpoint) error {
	if !db.follower {
		return fmt.Errorf("sgmldb: ApplyCheckpoint on a non-follower database")
	}
	if ck.DTD != db.dtdSource {
		return fmt.Errorf("sgmldb: checkpoint is for a different DTD")
	}
	db.loadMu.Lock()
	defer db.loadMu.Unlock()
	if ck.Seq <= db.appliedSeq.Load() {
		return nil
	}
	inst := ck.Inst
	inst.SetEpoch(ck.Epoch)
	docs := make([]object.OID, len(ck.Docs))
	for i, o := range ck.Docs {
		docs[i] = object.OID(o)
	}
	db.Loader.Adopt(inst, docs)
	db.Engine.Publish(oql.State{Snap: inst.Snapshot(), Index: ck.Index})
	db.appliedSeq.Store(ck.Seq)
	db.ObservePrimarySeq(ck.Seq)
	return nil
}

// ApplyRecord applies one shipped log record through the deterministic
// replay path. Records must arrive in exact sequence order — the apply
// loop anchors its feed requests at AppliedSeq, so a gap or repeat means
// the stream is broken and the record is refused rather than guessed
// around (re-applying a load would mint duplicate documents).
func (db *Database) ApplyRecord(rec wal.Record) error {
	if !db.follower {
		return fmt.Errorf("sgmldb: ApplyRecord on a non-follower database")
	}
	db.loadMu.Lock()
	defer db.loadMu.Unlock()
	applied := db.appliedSeq.Load()
	if rec.Seq != applied+1 {
		return fmt.Errorf("sgmldb: apply: record %d out of order (applied through %d)", rec.Seq, applied)
	}
	switch rec.Kind {
	case wal.KindSchema:
		if rec.Schema != db.dtdSource {
			return fmt.Errorf("sgmldb: primary log is for a different DTD")
		}
	case wal.KindLoad:
		docs := make([]*sgml.Document, len(rec.Docs))
		for i, src := range rec.Docs {
			d, err := sgml.ParseDocument(db.Mapping.DTD, src)
			if err != nil {
				return fmt.Errorf("sgmldb: apply record %d: %w", rec.Seq, err)
			}
			docs[i] = d
		}
		if _, err := db.commitLoad(docs, rec.Docs, false); err != nil {
			return fmt.Errorf("sgmldb: apply record %d: %w", rec.Seq, err)
		}
	case wal.KindName:
		if err := db.commitName(rec.Name, object.OID(rec.OID), false); err != nil {
			return fmt.Errorf("sgmldb: apply record %d: %w", rec.Seq, err)
		}
	default:
		return fmt.Errorf("sgmldb: apply record %d: unknown kind %d", rec.Seq, rec.Kind)
	}
	db.appliedSeq.Store(rec.Seq)
	db.ObservePrimarySeq(rec.Seq)
	return nil
}

// FeedFrames returns raw committed log frames after afterSeq (at most
// roughly maxBytes, always at least one frame when any is due) together
// with the sequence number of the last frame returned. It reports
// ErrSeqTruncated when afterSeq precedes the retained log — the caller
// must bootstrap from a checkpoint — and ErrNotPrimary on a database
// without a write-ahead log.
func (db *Database) FeedFrames(afterSeq uint64, maxBytes int) ([]byte, uint64, error) {
	if db.walLog == nil {
		return nil, 0, ErrNotPrimary
	}
	return db.walLog.FramesAfter(afterSeq, maxBytes)
}

// FeedWatch returns the last committed log sequence and a channel closed
// when a later record commits, for long-polling feed handlers.
func (db *Database) FeedWatch() (uint64, <-chan struct{}, error) {
	if db.walLog == nil {
		return 0, nil, ErrNotPrimary
	}
	seq, ch := db.walLog.Watch()
	return seq, ch, nil
}

// FeedSeq is the last committed log sequence number on the primary.
func (db *Database) FeedSeq() (uint64, error) {
	if db.walLog == nil {
		return 0, ErrNotPrimary
	}
	return db.walLog.Seq(), nil
}

// NewestCheckpointFile returns the path and covered sequence of the
// newest checkpoint file in the data directory, for streaming to a
// bootstrapping follower. ok is false when no checkpoint has been written
// yet (the follower then tails the log from sequence 0 instead).
func (db *Database) NewestCheckpointFile() (path string, seq uint64, ok bool, err error) {
	if db.walLog == nil {
		return "", 0, false, ErrNotPrimary
	}
	db.ckptMu.Lock() // a checkpoint rename/prune mid-scan would race the pick
	defer db.ckptMu.Unlock()
	path, seq, err = wal.NewestCheckpointPath(db.dataDir)
	if err != nil {
		return "", 0, false, err
	}
	return path, seq, path != "", nil
}
