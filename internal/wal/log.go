package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"sgmldb/internal/faultpoint"
)

// logMagic is the first line of every log file; a data directory whose log
// lacks it is not ours (or is damaged before the first record). Version 2
// added the per-record term (promotion epoch) to the payload codec.
const logMagic = "sgmldb-wal 2\n"

// logMagicV1 is the header the pre-term version 1 codec stamped. A log
// carrying it is healthy data in a format this build no longer reads — a
// migration problem, reported as ErrUnsupportedVersion, never as
// corruption.
const logMagicV1 = "sgmldb-wal 1\n"

// ErrUnsupportedVersion reports a data directory written by an older
// on-disk format version this build cannot read in place. The data is not
// damaged: rebuild it by re-loading the documents (or re-bootstrapping
// from a current primary) under the current format.
var ErrUnsupportedVersion = errors.New("wal: unsupported on-disk format version")

// ErrStaleTerm reports a write or feed anchor from a superseded term: the
// source was demoted (or partitioned away) and a later promotion has
// already moved the log past it. The fenced side must stop writing and —
// for a follower — re-bootstrap from the current primary.
var ErrStaleTerm = errors.New("wal: stale term")

const logName = "wal.log"

// Fault-injection sites on the commit path. The crash chaos suite arms
// these to kill the write path at every seam and prove recovery lands on
// exactly the pre-batch or post-batch epoch.
var (
	fpAppend      = faultpoint.New("wal/append")          // before the frame is written
	fpPostWrite   = faultpoint.New("wal/post-append")     // frame written, not yet fsynced
	fpPostSync    = faultpoint.New("wal/post-fsync")      // durable, not yet published
	fpTruncReopen = faultpoint.New("wal/truncate-reopen") // reopen after prefix-truncation rename
)

// Storage-fault sites (DESIGN.md §11). Unlike the crash seams above,
// these model the *disk* failing while the process lives — a failed
// fsync, a failed truncate, an unsyncable directory — and drive the
// poison state machine instead of photographing a kill.
var (
	fpAppendSync  = faultpoint.New("wal/append-sync-error") // Append's fsync reports an error
	fpRewindTrunc = faultpoint.New("wal/rewind-truncate")   // rewind's truncate reports an error
	fpDirSync     = faultpoint.New("wal/dir-sync")          // a directory fsync reports an error
)

// Log is the append-only write-ahead log of one data directory. Appends
// are serialized by the facade's single-writer lock; the Log's own mutex
// additionally protects against the background checkpointer truncating a
// covered prefix concurrently with an append.
type Log struct {
	mu    sync.Mutex
	dir   string
	f     *os.File
	size  int64         // current file size (append offset)
	seq   uint64        // last appended sequence number
	floor uint64        // highest sequence number dropped by prefix truncation
	err   error         // sticky: set when the log handle is lost, fails all writes
	tail  chan struct{} // closed on append to wake feed watchers; lazily made

	term      uint64 // term of the last record (fresh log: 1)
	floorTerm uint64 // term of the record at the truncation floor (0 = unknown)
}

// Seq returns the sequence number of the last record written (or replayed
// at open), 0 if none.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Term returns the log's current term: the term of the last record, or
// the term recovered from the newest checkpoint when the log is empty.
// A fresh log starts at term 1.
func (l *Log) Term() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// Err reports the log's sticky poison error, nil while healthy. Once
// poisoned a log accepts no further writes; committed bytes stay
// readable (FramesAfter, Scrub) as long as the handle survived.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// poison moves the log into its terminal failed-closed state: every
// later write reports the same sticky, reason-carrying error. The first
// reason wins — a cascade of follow-on failures must not mask the root
// cause. Caller holds l.mu.
func (l *Log) poison(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %w", ErrPoisoned, classify(err))
	}
	return l.err
}

// poisonHandleLost is poison for failures that leave l.f pointing at an
// unlinked or untrustworthy file: the handle is dropped so nothing can
// ever be written (or read) through it again. Caller holds l.mu.
func (l *Log) poisonHandleLost(err error) error {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	return l.poison(err)
}

// Append frames the record, writes it, and fsyncs — one sync per call, so
// the facade batches a whole document load into a single record. On a
// failure before the fsync the file is truncated back to its pre-append
// offset so the live log never holds a half-written frame the process
// itself would then have to treat as torn. A failed fsync is different:
// the kernel may have dropped the dirty pages and cleared the error (the
// "fsyncgate" hazard), so nothing about the file can be trusted anymore —
// the log poisons itself and every later Append fails with the same
// sticky, reason-carrying error. A failed rewind poisons too (see
// rewind), since memory and disk then disagree about the append offset.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	r.Seq = l.seq + 1
	// Term rule: a primary leaves r.Term 0 and the log stamps its current
	// term; a follower replays shipped records (and a promotion appends a
	// term bump) with an explicit term, which must never go backwards.
	switch {
	case r.Term == 0:
		r.Term = l.term
	case r.Term < l.term:
		return fmt.Errorf("wal: append at term %d, log already at term %d: %w", r.Term, l.term, ErrStaleTerm)
	}
	if err := fpAppend.Hit(); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	frame := EncodeFrame(r)
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		l.rewind()
		return fmt.Errorf("wal: append: %w", classify(err))
	}
	if err := fpPostWrite.Hit(); err != nil {
		l.rewind()
		return fmt.Errorf("wal: append: %w", err)
	}
	err := l.f.Sync()
	if ferr := fpAppendSync.Hit(); err == nil && ferr != nil {
		err = ferr
	}
	if err != nil {
		l.rewind()
		return fmt.Errorf("wal: append sync: %w", l.poison(err))
	}
	if err := fpPostSync.Hit(); err != nil {
		// The record is durable; the injected failure models a crash after
		// fsync but before publish. Rewind so the live process stays
		// consistent with the rolled-back in-memory state.
		l.rewind()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.seq = r.Seq
	l.term = r.Term
	if l.tail != nil {
		close(l.tail)
		l.tail = nil
	}
	return nil
}

// Watch returns the last committed sequence number and a channel that is
// closed when a later record commits. Feed handlers long-poll on it: if
// the returned seq already exceeds what the caller has shipped it should
// read immediately; otherwise a receive on ch (raced against a deadline)
// parks until the next append.
func (l *Log) Watch() (seq uint64, ch <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tail == nil {
		l.tail = make(chan struct{})
	}
	return l.seq, l.tail
}

// rewind discards anything written past the last committed offset. A
// failed truncate poisons the log: l.size would then disagree with the
// file, and a later, shorter append would leave mid-file garbage that
// recovery reports as ErrCorruptLog instead of a torn tail. Caller holds
// l.mu.
func (l *Log) rewind() {
	err := l.f.Truncate(l.size)
	if ferr := fpRewindTrunc.Hit(); err == nil && ferr != nil {
		err = ferr
	}
	if err != nil {
		l.poison(fmt.Errorf("rewind truncate to %d: %w", l.size, err))
		return
	}
	_ = l.f.Sync()
}

// NextSeq is the sequence number Append would assign next; the facade
// captures it to label checkpoints.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq + 1
}

// Close releases the log file. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil // handle already lost (poisoned after failed reopen)
	}
	return l.f.Close()
}

// openLog opens (or creates) dir's log file, scans it, and returns the
// records after afterSeq along with the validated log handle. Records at
// or before afterSeq — covered by a checkpoint — are skipped without being
// re-materialized, but still participate in CRC and sequence validation.
//
// Tail policy: a final frame that is incomplete or fails its CRC with
// nothing behind it is the signature of a crash mid-append; it is cut off
// and the log truncated to the last good record. The same damage with
// records behind it is ErrCorruptLog.
func openLog(dir string, afterSeq uint64) (*Log, []Record, error) {
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(data) == 0 {
		// Fresh log: stamp the magic.
		if _, err := f.WriteString(logMagic); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &Log{dir: dir, f: f, size: int64(len(logMagic)), term: 1}, nil, nil
	}
	if !bytes.HasPrefix(data, []byte(logMagic)) {
		if bytes.HasPrefix(data, []byte(logMagicV1)) {
			f.Close()
			return nil, nil, fmt.Errorf("%w: log written by format v1 (pre-term); rebuild the directory under the current format", ErrUnsupportedVersion)
		}
		// A short prefix of the magic can only mean a crash while stamping
		// a fresh, record-free log: safe to restart it.
		if len(data) < len(logMagic) && bytes.HasPrefix([]byte(logMagic), data) {
			if err := restampMagic(f); err != nil {
				f.Close()
				return nil, nil, err
			}
			return &Log{dir: dir, f: f, size: int64(len(logMagic)), term: 1}, nil, nil
		}
		f.Close()
		return nil, nil, fmt.Errorf("%w: bad log header", ErrCorruptLog)
	}

	var (
		tail     []Record
		off      = len(logMagic)
		lastSeq  uint64
		lastTerm uint64
		floor    uint64
		first    = true
	)
	for off < len(data) {
		rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			if isTornTail(data, off, n, err) {
				break // silent truncate below
			}
			f.Close()
			return nil, nil, fmt.Errorf("%w: record at offset %d: %w", ErrCorruptLog, off, err)
		}
		if first {
			// A prefix-truncated log starts just past some checkpointed
			// seq; an untruncated one starts at 1. Anything past
			// afterSeq+1 means durable records are missing.
			if rec.Seq == 0 || rec.Seq > afterSeq+1 {
				f.Close()
				return nil, nil, fmt.Errorf("%w: log starts at sequence %d, checkpoint covers %d", ErrCorruptLog, rec.Seq, afterSeq)
			}
			floor = rec.Seq - 1 // earlier records were truncated away
			first = false
		} else if rec.Seq != lastSeq+1 {
			f.Close()
			return nil, nil, fmt.Errorf("%w: sequence jump %d -> %d at offset %d", ErrCorruptLog, lastSeq, rec.Seq, off)
		}
		if rec.Term < lastTerm {
			// Terms are a monotone promotion chain; a regression means the
			// file was spliced from divergent histories.
			f.Close()
			return nil, nil, fmt.Errorf("%w: term regression %d -> %d at offset %d", ErrCorruptLog, lastTerm, rec.Term, off)
		}
		lastSeq = rec.Seq
		lastTerm = rec.Term
		if rec.Seq > afterSeq {
			tail = append(tail, rec)
		}
		off += n
	}
	if lastTerm == 0 {
		lastTerm = 1 // no records survived the scan: fresh-log term
	}
	l := &Log{dir: dir, f: f, size: int64(off), seq: lastSeq, floor: floor, term: lastTerm}
	if off < len(data) {
		// Torn tail: cut it off so the next append starts on a clean edge.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return l, tail, nil
}

// isTornTail decides whether a decode failure at off is the expected
// crash signature (damage confined to the final frame) or mid-log
// corruption. n is the frame length DecodeFrame reported (0 when the
// header itself is short).
func isTornTail(data []byte, off, n int, err error) bool {
	if errors.Is(err, errShortFrame) {
		return true // file ends inside the frame, by definition the tail
	}
	if errors.Is(err, errBadCRC) {
		// A checksum-failed frame is torn only if nothing follows it.
		return n == 0 || off+n >= len(data)
	}
	return false // valid CRC over a malformed payload: not crash damage
}

// restampMagic resets a file to exactly the log magic.
func restampMagic(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(logMagic), 0); err != nil {
		return err
	}
	return f.Sync()
}

// truncatePrefix rewrites the log to hold only records after seq — called
// by the checkpointer once a checkpoint covering seq is durable. The
// rewrite goes through a temp file + rename so a crash mid-truncation
// leaves either the old or the new log, never a partial one.
func (l *Log) truncatePrefix(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	data := make([]byte, l.size)
	if _, err := l.f.ReadAt(data, 0); err != nil {
		return err
	}
	keep := []byte(logMagic)
	off := len(logMagic)
	var dropTerm uint64
	for off < len(data) {
		rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			return fmt.Errorf("wal: truncate scan: %w", err)
		}
		if rec.Seq > seq {
			keep = append(keep, data[off:off+n]...)
		} else {
			dropTerm = rec.Term // term at the new truncation floor
		}
		off += n
	}
	tmp, err := os.CreateTemp(l.dir, logName+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(keep); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(l.dir, logName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Past the rename, every failure poisons: the old handle points at the
	// unlinked file, so any further append through it would be durably
	// written to a file no open() can ever see again. Fail the log closed —
	// drop the dead handle and poison every later write — rather than keep
	// accepting "durable" commits into oblivion.
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: truncate dir sync: %w", l.poisonHandleLost(err))
	}
	// Swap the handle to the new file.
	nf, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_RDWR, 0o644)
	if err == nil {
		if ferr := fpTruncReopen.Hit(); ferr != nil {
			nf.Close()
			err = ferr
		}
	}
	if err != nil {
		return fmt.Errorf("wal: log handle lost after prefix truncation: %w", l.poisonHandleLost(err))
	}
	old := l.f
	l.f = nf
	l.size = int64(len(keep))
	if seq > l.floor {
		l.floor = seq
		if dropTerm > 0 {
			l.floorTerm = dropTerm
		}
	}
	old.Close()
	return nil
}

// Reset discards every record and restarts the log at (seq, term) — the
// position of a just-installed checkpoint. A durable follower calls it
// when bootstrap replaces its state wholesale: whatever local suffix the
// old history held (typically unshipped records from a deposed primary's
// stale term) is truncated at the term boundary the checkpoint
// establishes. Like truncatePrefix, the rewrite goes through a temp file
// + rename so a crash leaves either the old or the new log.
func (l *Log) Reset(seq, term uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	tmp, err := os.CreateTemp(l.dir, logName+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(logMagic); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(l.dir, logName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: reset dir sync: %w", l.poisonHandleLost(err))
	}
	nf, err := os.OpenFile(filepath.Join(l.dir, logName), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: log handle lost after reset: %w", l.poisonHandleLost(err))
	}
	old := l.f
	l.f = nf
	l.size = int64(len(logMagic))
	l.seq, l.floor = seq, seq
	l.term, l.floorTerm = term, term
	old.Close()
	return nil
}

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	err = d.Sync()
	if ferr := fpDirSync.Hit(); err == nil && ferr != nil {
		err = ferr
	}
	return err
}
