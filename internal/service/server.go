package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sgmldb"
)

// Server is the HTTP front door over one shared Database. Handlers are
// plain net/http; every endpoint except /v1/health authenticates an API
// key to a tenant and runs under that tenant's limits. The server is an
// http.Handler, so it is unit-testable with httptest and mountable under
// any mux or middleware in cmd/sgmldbd.
//
// Endpoints:
//
//	POST   /v1/query            O₂SQL source → JSON rows
//	POST   /v1/prepare          source → prepared-statement handle
//	POST   /v1/execute/{handle} run a prepared handle → JSON rows
//	DELETE /v1/execute/{handle} close a handle
//	POST   /v1/load             batch SGML load, all-or-nothing
//	GET    /v1/health           liveness + draining (no auth)
//	GET    /v1/stats            engine + service counters
type Server struct {
	db  *sgmldb.Database
	mux *http.ServeMux

	// byKey resolves an API key to its tenant. open is the anonymous
	// tenant used when no tenants are configured (open mode); nil
	// otherwise, in which case a missing or unknown key is 401.
	byKey map[string]*tenant
	open  *tenant

	// draining rejects new work with 503 while in-flight calls finish —
	// the graceful-shutdown handshake (Drain, then http.Server.Shutdown).
	// drainCh is closed by Drain so parked feed long-polls wake at once
	// instead of riding out their wait.
	draining atomic.Bool
	drainCh  chan struct{}

	// handles is the wire-level prepared-statement table. Handles are
	// tenant-owned: executing or closing another tenant's handle is
	// indistinguishable from a handle that never existed. The statements
	// themselves share the engine's bounded plan cache, so a handle is
	// cheap: the table bounds live handles per tenant, not plans.
	handlesMu  sync.Mutex
	handles    map[string]*handle
	nextHandle uint64

	// OnPromote, when set, is called once per successful POST /v1/promote
	// with the new term, after the database has switched to primary. The
	// daemon uses it to stop its replication tail loop — the process is the
	// primary now and has nothing to follow. Set before serving; called
	// from the request handler's goroutine.
	OnPromote func(newTerm uint64)
}

// tenant is one tenant's runtime state: its config grant, an admission
// semaphore when MaxConcurrent is set, and serving counters.
type tenant struct {
	cfg   TenantConfig
	slots chan struct{}

	queries    atomic.Uint64
	loads      atomic.Uint64
	rejected   atomic.Uint64 // over-limit 429s
	errors     atomic.Uint64 // calls that returned any error body
	numHandles atomic.Int64
}

// admit takes one of the tenant's slots without blocking: per-tenant
// over-limit is rejected immediately (429), never queued, so a tenant's
// excess cannot occupy the shared gate. release must be called iff ok.
func (t *tenant) admit() (release func(), ok bool) {
	if t.slots == nil {
		return func() {}, true
	}
	select {
	case t.slots <- struct{}{}:
		return func() { <-t.slots }, true
	default:
		t.rejected.Add(1)
		return nil, false
	}
}

// maxHandles resolves the tenant's live-handle bound.
func (t *tenant) maxHandles() int64 {
	if t.cfg.MaxHandles > 0 {
		return int64(t.cfg.MaxHandles)
	}
	return DefaultMaxHandles
}

// handle is one wire-level prepared statement.
type handle struct {
	id     string
	owner  *tenant
	pq     *sgmldb.PreparedQuery
	source string
}

// New builds a server over a database and a tenant table. An empty table
// runs in open mode (one anonymous unlimited tenant).
func New(db *sgmldb.Database, cfg Config) (*Server, error) {
	s := &Server{
		db:      db,
		byKey:   map[string]*tenant{},
		handles: map[string]*handle{},
		drainCh: make(chan struct{}),
	}
	for _, tc := range cfg.Tenants {
		t := &tenant{cfg: tc}
		if tc.MaxConcurrent > 0 {
			t.slots = make(chan struct{}, tc.MaxConcurrent)
		}
		if _, dup := s.byKey[tc.APIKey]; dup {
			return nil, fmt.Errorf("service: duplicate api_key for tenant %q", tc.Name)
		}
		s.byKey[tc.APIKey] = t
	}
	if len(s.byKey) == 0 {
		s.open = &tenant{cfg: TenantConfig{Name: "open"}}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	mux.HandleFunc("POST /v1/execute/{handle}", s.handleExecute)
	mux.HandleFunc("DELETE /v1/execute/{handle}", s.handleClose)
	mux.HandleFunc("POST /v1/load", s.handleLoad)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/feed", s.handleFeed)
	mux.HandleFunc("GET /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain flips the server into shutdown mode: every subsequent call (even
// health-checked ones) reports draining, and API endpoints reject with
// 503 so load balancers move on while http.Server.Shutdown waits for the
// in-flight handlers. Parked feed long-polls are woken immediately.
// Draining is one-way.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Service-level wire codes, complementing the sgmldb.Code taxonomy. Same
// contract: stable, machine-readable, never reused.
const (
	codeBadRequest    = "BAD_REQUEST"
	codeUnauthorized  = "UNAUTHORIZED"
	codeForbidden     = "FORBIDDEN"
	codeTenantLimit   = "TENANT_LIMIT"
	codeUnknownHandle = "UNKNOWN_HANDLE"
	codeHandleLimit   = "HANDLE_LIMIT"
	codeDraining      = "DRAINING"
	codeBadDocument   = "BAD_DOCUMENT"
	codeNoCheckpoint  = "NO_CHECKPOINT"
)

// statusClientClosedRequest is the de-facto standard (nginx) status for a
// caller that went away mid-call: not a client error the caller will ever
// read, not a server fault — its own class, visible in access logs.
const statusClientClosedRequest = 499

// statusFor maps a wire code (service-level or sgmldb.Code) to its HTTP
// status. Unknown codes are 500: an unclassified failure is the server's
// fault until proven otherwise.
func statusFor(code string) int {
	switch code {
	case sgmldb.CodeParse, sgmldb.CodeTypecheck, codeBadRequest:
		return http.StatusBadRequest
	case codeUnauthorized:
		return http.StatusUnauthorized
	case codeForbidden, sgmldb.CodeReadOnly, sgmldb.CodeNoMapping, sgmldb.CodeNotPrimary:
		return http.StatusForbidden
	case codeUnknownHandle, sgmldb.CodeUnknownObject, codeNoCheckpoint:
		return http.StatusNotFound
	case sgmldb.CodeSeqTruncated:
		return http.StatusGone
	case sgmldb.CodeStaleTerm, sgmldb.CodeReplicaGap, sgmldb.CodeNotFollower:
		// Term conflicts are state conflicts, not client errors: the
		// caller's view of who is primary disagrees with this node's.
		return http.StatusConflict
	case sgmldb.CodeCanceled:
		// The caller hung up mid-call; nobody is reading this response.
		return statusClientClosedRequest
	case codeTenantLimit, codeHandleLimit:
		return http.StatusTooManyRequests
	case codeBadDocument:
		return http.StatusUnprocessableEntity
	case sgmldb.CodeBudget:
		return http.StatusUnprocessableEntity
	case sgmldb.CodeOverloaded, sgmldb.CodeDegraded, codeDraining:
		// DEGRADED is 503, not 403: the rejection is about the node's
		// storage health, not the caller's rights — retrying against a
		// healthy replica can succeed.
		return http.StatusServiceUnavailable
	case sgmldb.CodeDeadline:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// fail writes the error envelope for a wire code.
func fail(w http.ResponseWriter, code, message string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	writeJSON(w, statusFor(code), body)
}

// failErr classifies a Database error through sgmldb.Code and writes it.
func failErr(w http.ResponseWriter, err error) {
	fail(w, sgmldb.Code(err), err.Error())
}

// failCall writes a failed call's error and counts it against the tenant
// — except client cancellation: a caller hanging up mid-query is not a
// serving failure, and counting it would let impatient clients inflate
// the server's error rate.
func (t *tenant) failCall(w http.ResponseWriter, err error) {
	code := sgmldb.Code(err)
	if code != sgmldb.CodeCanceled {
		t.errors.Add(1)
	}
	fail(w, code, err.Error())
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	//lint:allow errcheck the response writer's error has nowhere to go
	_ = enc.Encode(v)
}

// tenantFor authenticates the request: Authorization: Bearer <key> or
// X-API-Key. In open mode every request is the anonymous tenant.
func (s *Server) tenantFor(r *http.Request) (*tenant, bool) {
	if s.open != nil {
		return s.open, true
	}
	key := r.Header.Get("X-API-Key")
	if auth := r.Header.Get("Authorization"); key == "" && strings.HasPrefix(auth, "Bearer ") {
		key = strings.TrimPrefix(auth, "Bearer ")
	}
	t, ok := s.byKey[key]
	return t, ok
}

// enter runs the common preamble of every governed endpoint: draining,
// auth, per-tenant admission. On failure it has already written the
// response and returns ok=false.
func (s *Server) enter(w http.ResponseWriter, r *http.Request) (t *tenant, release func(), ok bool) {
	if s.draining.Load() {
		fail(w, codeDraining, "server is draining")
		return nil, nil, false
	}
	t, ok = s.tenantFor(r)
	if !ok {
		fail(w, codeUnauthorized, "missing or unknown API key")
		return nil, nil, false
	}
	release, ok = t.admit()
	if !ok {
		fail(w, codeTenantLimit, fmt.Sprintf("tenant %q already has %d calls in flight", t.cfg.Name, t.cfg.MaxConcurrent))
		return nil, nil, false
	}
	return t, release, true
}

// callLimits are the per-request budget overrides every query-ish body
// may carry. They tighten the tenant's limits, never exceed them.
type callLimits struct {
	MaxRows        int64 `json:"max_rows"`
	MaxMemoryBytes int64 `json:"max_memory_bytes"`
	TimeoutMS      int64 `json:"timeout_ms"`
}

// options resolves the tenant grant and the request overrides into
// per-call query options. Both layers only tighten: minNonZero per axis
// here, then the database-level budgets clamp once more inside the
// facade.
func options(t *tenant, req callLimits) []sgmldb.QueryOption {
	rows := minNonZero(t.cfg.MaxRows, req.MaxRows)
	mem := minNonZero(t.cfg.MaxMemoryBytes, req.MaxMemoryBytes)
	timeout := time.Duration(minNonZero(t.cfg.TimeoutMS, req.TimeoutMS)) * time.Millisecond
	var opts []sgmldb.QueryOption
	if rows > 0 {
		opts = append(opts, sgmldb.QMaxRows(rows))
	}
	if mem > 0 {
		opts = append(opts, sgmldb.QMaxMemory(mem))
	}
	if timeout > 0 {
		opts = append(opts, sgmldb.QTimeout(timeout))
	}
	return opts
}

// minNonZero merges one limit axis (0 = unlimited): the tighter of the
// two, or whichever is set.
func minNonZero(a, b int64) int64 {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case b < a:
		return b
	default:
		return a
	}
}

// maxBody bounds request bodies (queries and document batches) so one
// malformed client cannot balloon the server.
const maxBody = 64 << 20

// decode reads one JSON request body.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		fail(w, codeBadRequest, "reading request body: "+err.Error())
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		fail(w, codeBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

// rowsResponse is the uniform success envelope of query and execute.
type rowsResponse struct {
	Rows      []any  `json:"rows"`
	Count     int    `json:"count"`
	ElapsedUS int64  `json:"elapsed_us"`
	Epoch     uint64 `json:"epoch"`
}

// handleQuery runs one ad-hoc O₂SQL query under the caller's limits.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	var req struct {
		Query string `json:"query"`
		callLimits
	}
	if !decode(w, r, &req) {
		t.errors.Add(1)
		return
	}
	if req.Query == "" {
		t.errors.Add(1)
		fail(w, codeBadRequest, `body needs a "query" field`)
		return
	}
	t.queries.Add(1)
	start := time.Now()
	v, err := s.db.QueryContext(r.Context(), req.Query, options(t, req.callLimits)...)
	if err != nil {
		t.failCall(w, err)
		return
	}
	rows := RowsJSON(v)
	writeJSON(w, http.StatusOK, rowsResponse{
		Rows:      rows,
		Count:     len(rows),
		ElapsedUS: time.Since(start).Microseconds(),
		Epoch:     s.db.Epoch(),
	})
}

// handlePrepare compiles a query once and returns a handle for repeated
// execution. The compiled plan lives in the engine's shared bounded plan
// cache; the handle pins the statement for this tenant.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	var req struct {
		Query string `json:"query"`
	}
	if !decode(w, r, &req) {
		t.errors.Add(1)
		return
	}
	if req.Query == "" {
		t.errors.Add(1)
		fail(w, codeBadRequest, `body needs a "query" field`)
		return
	}
	// Reserve the slot before compiling: a load-then-add after the insert
	// would let N concurrent prepares all pass the check at the old count
	// and blow past the quota together. Add first, roll back on failure.
	if t.numHandles.Add(1) > t.maxHandles() {
		t.numHandles.Add(-1)
		t.errors.Add(1)
		fail(w, codeHandleLimit, fmt.Sprintf("tenant %q already holds %d prepared handles; close some", t.cfg.Name, t.maxHandles()))
		return
	}
	pq, err := s.db.Prepare(req.Query)
	if err != nil {
		t.numHandles.Add(-1)
		t.errors.Add(1)
		failErr(w, err)
		return
	}
	s.handlesMu.Lock()
	s.nextHandle++
	h := &handle{id: "h" + strconv.FormatUint(s.nextHandle, 10), owner: t, pq: pq, source: req.Query}
	s.handles[h.id] = h
	s.handlesMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"handle": h.id, "query": req.Query})
}

// lookupHandle resolves a handle id for a tenant. Another tenant's handle
// is reported exactly like a nonexistent one.
func (s *Server) lookupHandle(t *tenant, id string) (*handle, bool) {
	s.handlesMu.Lock()
	defer s.handlesMu.Unlock()
	h, ok := s.handles[id]
	if !ok || h.owner != t {
		return nil, false
	}
	return h, true
}

// handleExecute runs a prepared handle under the caller's limits.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	h, ok := s.lookupHandle(t, r.PathValue("handle"))
	if !ok {
		t.errors.Add(1)
		fail(w, codeUnknownHandle, fmt.Sprintf("no prepared handle %q", r.PathValue("handle")))
		return
	}
	// The body is optional: an empty body means no per-call overrides.
	var req callLimits
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		t.errors.Add(1)
		fail(w, codeBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			t.errors.Add(1)
			fail(w, codeBadRequest, "malformed JSON body: "+err.Error())
			return
		}
	}
	t.queries.Add(1)
	start := time.Now()
	v, err := h.pq.Run(r.Context(), options(t, req)...)
	if err != nil {
		t.failCall(w, err)
		return
	}
	rows := RowsJSON(v)
	writeJSON(w, http.StatusOK, rowsResponse{
		Rows:      rows,
		Count:     len(rows),
		ElapsedUS: time.Since(start).Microseconds(),
		Epoch:     s.db.Epoch(),
	})
}

// handleClose frees a prepared handle.
func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	id := r.PathValue("handle")
	s.handlesMu.Lock()
	h, ok := s.handles[id]
	if ok && h.owner == t {
		delete(s.handles, id)
	}
	s.handlesMu.Unlock()
	if !ok || h.owner != t {
		t.errors.Add(1)
		fail(w, codeUnknownHandle, fmt.Sprintf("no prepared handle %q", id))
		return
	}
	h.owner.numHandles.Add(-1)
	writeJSON(w, http.StatusOK, map[string]any{"closed": id})
}

// handleLoad loads a batch of SGML documents as one atomic unit (PR 3
// semantics: either every document becomes visible in one epoch or none
// does), returning the new document oids.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	if t.cfg.DenyLoad {
		t.errors.Add(1)
		fail(w, codeForbidden, fmt.Sprintf("tenant %q may not load documents", t.cfg.Name))
		return
	}
	var req struct {
		Documents []string `json:"documents"`
	}
	if !decode(w, r, &req) {
		t.errors.Add(1)
		return
	}
	if len(req.Documents) == 0 {
		t.errors.Add(1)
		fail(w, codeBadRequest, `body needs a non-empty "documents" array`)
		return
	}
	t.loads.Add(1)
	start := time.Now()
	oids, err := s.db.LoadDocuments(req.Documents)
	if err != nil {
		t.errors.Add(1)
		// Anything the taxonomy cannot name on this path is a rejected
		// document (SGML parse/validation failure): the client's fault,
		// not the server's.
		if code := sgmldb.Code(err); code == sgmldb.CodeUnknown {
			fail(w, codeBadDocument, err.Error())
		} else {
			failErr(w, err)
		}
		return
	}
	ids := make([]string, len(oids))
	for i, oid := range oids {
		ids[i] = oid.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"oids":       ids,
		"count":      len(ids),
		"epoch":      s.db.Epoch(),
		"elapsed_us": time.Since(start).Microseconds(),
	})
}

// handleHealth is the unauthenticated liveness probe. A follower also
// reports how far behind the primary it is, so probes can take a lagging
// replica out of rotation. A degraded primary (poisoned write-ahead log)
// reports status "degraded" with the sticky reason — but stays 200: the
// node still serves reads and ships its feed, and only write probes
// should route around it. Checkpoint-failure telemetry rides along on
// every durable node so monitors catch a sick disk before it poisons.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	degraded, reason := s.db.DegradedState()
	if degraded {
		status = "degraded"
	}
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	body := map[string]any{"status": status, "epoch": s.db.Epoch()}
	if degraded {
		body["degraded"] = true
		body["degraded_reason"] = reason
	}
	if total, streak, lastErr := s.db.CheckpointFailures(); total > 0 {
		body["checkpoint_failures"] = total
		body["checkpoint_fail_streak"] = streak
		body["last_checkpoint_error"] = lastErr
	}
	if s.db.IsFollower() {
		applied, primary := s.db.AppliedSeq(), s.db.PrimarySeq()
		var lag uint64
		if primary > applied {
			lag = primary - applied
		}
		body["follower"] = true
		body["applied_seq"] = applied
		body["primary_seq"] = primary
		body["lag"] = lag
	}
	// Failover telemetry (DESIGN.md §12): always present so monitors see a
	// promotion as a term step, not a field appearing out of nowhere.
	body["term"] = s.db.Term()
	body["promotions"] = s.db.Promotions()
	body["rebootstraps"] = s.db.Rebootstraps()
	body["breaker_open"] = s.db.BreakerOpen()
	writeJSON(w, code, body)
}

// tenantStats is one tenant's row in the stats response.
type tenantStats struct {
	Name     string `json:"name"`
	Queries  uint64 `json:"queries"`
	Loads    uint64 `json:"loads"`
	Rejected uint64 `json:"rejected"`
	Errors   uint64 `json:"errors"`
	Handles  int64  `json:"handles"`
}

// handleStats reports the engine counters (sgmldb.Stats) plus the
// service-level view: per-tenant counters and the handle table.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.tenantFor(r); !ok {
		fail(w, codeUnauthorized, "missing or unknown API key")
		return
	}
	s.handlesMu.Lock()
	numHandles := len(s.handles)
	s.handlesMu.Unlock()
	tenants := make([]tenantStats, 0, len(s.byKey)+1)
	add := func(tn *tenant) {
		tenants = append(tenants, tenantStats{
			Name:     tn.cfg.Name,
			Queries:  tn.queries.Load(),
			Loads:    tn.loads.Load(),
			Rejected: tn.rejected.Load(),
			Errors:   tn.errors.Load(),
			Handles:  tn.numHandles.Load(),
		})
	}
	if s.open != nil {
		add(s.open)
	}
	for _, tn := range s.byKey {
		add(tn)
	}
	// byKey is a map: without a sort, consecutive scrapes reorder tenants
	// and diff-based monitors see phantom churn.
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{
		"engine": s.db.Stats(),
		"service": map[string]any{
			"draining": s.draining.Load(),
			"handles":  numHandles,
			"tenants":  tenants,
		},
	})
}
