package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// The wirecode analyzer keeps the error-code taxonomy closed end to
// end: every failure a client can see must have a stable wire code,
// and the code must be documented. Three mechanically checkable rules:
//
//   - In a package that declares the mapper `func Code(error) string`,
//     every package-level `Err…` sentinel must be referenced inside
//     Code's body — adding a sentinel without a mapping otherwise
//     degrades silently to UNKNOWN on the wire.
//   - Every non-empty string constant named `Code…`/`code…` must
//     appear backticked in the governing DESIGN.md (found by walking
//     up from the package directory; the walk stops at the first
//     DESIGN.md or at the module root). Undocumented codes are wire
//     surface nobody signed off on.
//   - In a package that declares the envelope writer `writeJSON`,
//     responses must go through it: http.Error and direct
//     WriteHeader/Write calls on an http.ResponseWriter outside
//     writeJSON bypass the JSON error envelope clients parse.

// WireCodeAnalyzer checks the wire-code taxonomy and envelope discipline.
var WireCodeAnalyzer = &Analyzer{
	Name:       "wirecode",
	Doc:        "sentinels map to documented wire codes; responses go through the JSON envelope",
	RunPackage: runWireCode,
}

func runWireCode(prog *Program, pkg *Package, report func(Diagnostic)) {
	checkSentinelMapping(pkg, report)
	checkDocumentedCodes(pkg, report)
	checkEnvelopeDiscipline(pkg, report)
}

// checkSentinelMapping enforces Err… sentinel coverage in Code(err).
func checkSentinelMapping(pkg *Package, report func(Diagnostic)) {
	var codeDecl *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if ok && decl.Recv == nil && decl.Name.Name == "Code" && decl.Body != nil &&
				isErrorToStringSig(pkg, decl) {
				codeDecl = decl
			}
		}
	}
	if codeDecl == nil {
		return
	}
	referenced := map[types.Object]bool{}
	ast.Inspect(codeDecl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				referenced[obj] = true
			}
		}
		return true
	})
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok || !strings.HasPrefix(name.Name, "Err") ||
						!types.Implements(v.Type(), errorIface) {
						continue
					}
					if !referenced[v] {
						report(Diagnostic{Pos: name.Pos(), Message: fmt.Sprintf(
							"sentinel %s has no wire-code mapping in Code(err)", name.Name)})
					}
				}
			}
		}
	}
}

// isErrorToStringSig matches func(error) string.
func isErrorToStringSig(pkg *Package, decl *ast.FuncDecl) bool {
	fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return sig.Params().At(0).Type().String() == "error" &&
		sig.Results().At(0).Type().String() == "string"
}

// checkDocumentedCodes enforces the DESIGN.md entry for each wire code
// constant.
func checkDocumentedCodes(pkg *Package, report func(Diagnostic)) {
	type codeConst struct {
		name  *ast.Ident
		value string
	}
	var codes []codeConst
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Code") && !strings.HasPrefix(name.Name, "code") {
						continue
					}
					c, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					if v := constant.StringVal(c.Val()); v != "" {
						codes = append(codes, codeConst{name: name, value: v})
					}
				}
			}
		}
	}
	if len(codes) == 0 {
		return
	}
	design := findDesignDoc(pkg.Dir)
	if design == "" {
		report(Diagnostic{Pos: codes[0].name.Pos(), Message: fmt.Sprintf(
			"package declares wire codes but no DESIGN.md was found above %s", pkg.Dir)})
		return
	}
	content, err := os.ReadFile(design)
	if err != nil {
		report(Diagnostic{Pos: codes[0].name.Pos(),
			Message: "package declares wire codes but " + design + " is unreadable"})
		return
	}
	for _, c := range codes {
		if !strings.Contains(string(content), "`"+c.value+"`") {
			report(Diagnostic{Pos: c.name.Pos(), Message: fmt.Sprintf(
				"wire code %s (%q) is not documented in %s", c.name.Name, c.value, filepath.Base(design))})
		}
	}
}

// findDesignDoc walks up from dir to the first DESIGN.md; the walk
// stops at the module root (the first go.mod).
func findDesignDoc(dir string) string {
	for {
		p := filepath.Join(dir, "DESIGN.md")
		if _, err := os.Stat(p); err == nil {
			return p
		}
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// checkEnvelopeDiscipline enforces writeJSON-only responses.
func checkEnvelopeDiscipline(pkg *Package, report func(Diagnostic)) {
	hasEnvelope := false
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Recv == nil && decl.Name.Name == "writeJSON" {
				hasEnvelope = true
			}
		}
	}
	if !hasEnvelope {
		return
	}
	funcBodies(pkg, func(decl *ast.FuncDecl, fn *types.Func) {
		if decl.Recv == nil && decl.Name.Name == "writeJSON" {
			return // the envelope itself is the one sanctioned writer
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fullNameOf(pkg.Info, call) == "net/http.Error" {
				report(Diagnostic{Pos: call.Pos(),
					Message: "respond through the writeJSON envelope, not http.Error"})
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "WriteHeader" && sel.Sel.Name != "Write" {
				return true
			}
			if isResponseWriter(pkg.Info.TypeOf(sel.X)) {
				report(Diagnostic{Pos: call.Pos(), Message: fmt.Sprintf(
					"%s on an http.ResponseWriter bypasses the writeJSON envelope", sel.Sel.Name)})
			}
			return true
		})
	})
}

// isResponseWriter matches net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter"
}
