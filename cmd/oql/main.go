// Command oql runs extended O₂SQL queries (Section 4 of the paper) over a
// database snapshot, one-shot or as a REPL.
//
// Usage:
//
//	oql -db articles.snap -q 'select t from my_article PATH_p.title(t)'
//	oql -db articles.snap            # REPL, one query per line
//	oql -db articles.snap -algebra -explain -q '…'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sgmldb"
	"sgmldb/internal/path"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oql:", err)
		os.Exit(1)
	}
}

func run() error {
	dbPath := flag.String("db", "", "database snapshot (required)")
	query := flag.String("q", "", "query to run (omit for a REPL)")
	useAlgebra := flag.Bool("algebra", false, "evaluate through the Section 5.4 algebra")
	explain := flag.Bool("explain", false, "print the algebra plan instead of running")
	semantics := flag.String("semantics", "restricted", "path-variable semantics: restricted | liberal")
	flag.Parse()
	if *dbPath == "" {
		return fmt.Errorf("usage: oql -db file.snap [-q query] [-algebra] [-explain] [-semantics restricted|liberal]")
	}
	db, err := sgmldb.OpenSnapshot(*dbPath)
	if err != nil {
		return err
	}
	db.UseAlgebra(*useAlgebra)
	switch *semantics {
	case "restricted":
		db.Engine.Env.Semantics = path.Restricted
	case "liberal":
		db.Engine.Env.Semantics = path.Liberal
	default:
		return fmt.Errorf("unknown -semantics %q", *semantics)
	}
	exec := func(q string) {
		q = strings.TrimSpace(q)
		if q == "" {
			return
		}
		if *explain {
			plan, err := db.Engine.Plan(q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Print(plan.Explain())
			return
		}
		v, err := db.Query(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Println(v)
	}
	if *query != "" {
		exec(*query)
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("sgmldb oql — one query per line, Ctrl-D to quit")
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		exec(sc.Text())
	}
}
