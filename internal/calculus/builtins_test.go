package calculus

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/path"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// callFn is a helper to invoke a built-in with data bindings.
func callFn(t *testing.T, e *Env, name string, vals ...object.Value) (object.Value, error) {
	t.Helper()
	args := make([]Term, len(vals))
	v := Valuation{}
	for i, val := range vals {
		n := "v" + string(rune('0'+i))
		v = v.extend(n, DataBinding(val))
		args[i] = Var{Name: n}
	}
	return e.evalFunc(FuncCall{Name: name, Args: args}, v)
}

func TestSetAlgebraBuiltins(t *testing.T) {
	e := NewEnv(nil)
	s1 := object.NewSet(object.Int(1), object.Int(2))
	s2 := object.NewSet(object.Int(2), object.Int(3))
	got, err := callFn(t, e, "union", s1, s2)
	if err != nil || got.(*object.Set).Len() != 3 {
		t.Errorf("union = %v %v", got, err)
	}
	got, err = callFn(t, e, "intersect", s1, s2)
	if err != nil || !object.Equal(got, object.NewSet(object.Int(2))) {
		t.Errorf("intersect = %v %v", got, err)
	}
	got, err = callFn(t, e, "diff", s1, s2)
	if err != nil || !object.Equal(got, object.NewSet(object.Int(1))) {
		t.Errorf("diff = %v %v", got, err)
	}
	if _, err := callFn(t, e, "union", s1, object.Int(3)); err == nil {
		t.Error("union of non-set must fail")
	}
	if _, err := callFn(t, e, "union", s1); err == nil {
		t.Error("union arity must be checked")
	}
}

func TestElementAndFlatten(t *testing.T) {
	e := NewEnv(nil)
	got, err := callFn(t, e, "element", object.NewSet(object.Int(9)))
	if err != nil || !object.Equal(got, object.Int(9)) {
		t.Errorf("element = %v %v", got, err)
	}
	if _, err := callFn(t, e, "element", object.NewSet(object.Int(1), object.Int(2))); err == nil {
		t.Error("element of a 2-set must fail")
	}
	if _, err := callFn(t, e, "element", object.NewSet()); err == nil {
		t.Error("element of the empty set must fail")
	}
	if _, err := callFn(t, e, "element", object.Int(1)); err == nil {
		t.Error("element of a non-set must fail")
	}
	nested := object.NewSet(
		object.NewSet(object.Int(1), object.Int(2)),
		object.NewList(object.Int(3)),
		object.Int(4),
	)
	got, err = callFn(t, e, "flatten", nested)
	if err != nil {
		t.Fatal(err)
	}
	if got.(*object.Set).Len() != 4 {
		t.Errorf("flatten = %s", got)
	}
	if _, err := callFn(t, e, "flatten", object.Int(1)); err == nil {
		t.Error("flatten of a non-set must fail")
	}
}

func TestSortBuiltin(t *testing.T) {
	e := NewEnv(nil)
	mixed := object.NewList(
		object.String_("b"), object.Int(3), object.Float(1.5),
		object.String_("a"), object.Int(2), object.Bool(true),
	)
	got, err := callFn(t, e, "sort", mixed)
	if err != nil {
		t.Fatal(err)
	}
	l := got.(*object.List)
	want := []string{"1.5", "2", "3", `"a"`, `"b"`, "true"}
	for i, w := range want {
		if l.At(i).String() != w {
			t.Errorf("sort[%d] = %s, want %s", i, l.At(i), w)
		}
	}
	// Sets sort into canonical lists too.
	got, err = callFn(t, e, "sort", object.NewSet(object.Int(2), object.Int(1)))
	if err != nil || !object.Equal(got, object.NewList(object.Int(1), object.Int(2))) {
		t.Errorf("sort set = %v %v", got, err)
	}
	if _, err := callFn(t, e, "sort", object.Int(1)); err == nil {
		t.Error("sort of an atom must fail")
	}
}

func TestCompareValuesMatrix(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r object.Value
		want bool
	}{
		{Lt, object.Int(1), object.Int(2), true},
		{Lt, object.Int(2), object.Int(1), false},
		{Le, object.Int(2), object.Int(2), true},
		{Gt, object.Float(2.5), object.Int(2), true},
		{Ge, object.Int(2), object.Float(2.5), false},
		{Lt, object.Int(1), object.Float(1.5), true},
		{Lt, object.Float(0.5), object.Float(1.5), true},
		{Gt, object.String_("b"), object.String_("a"), true},
		{Lt, object.String_("a"), object.String_("b"), true},
		{Ne, object.Int(1), object.Int(2), true},
		{Ne, object.Int(1), object.Int(1), false},
		// ≡-aware inequality: a tuple equals its heterogeneous list.
		{Ne, object.NewTuple(object.Field{Name: "a", Value: object.Int(1)}),
			object.NewList(object.NewUnion("a", object.Int(1))), false},
		// Incomparable operands make ordering atoms false.
		{Lt, object.String_("a"), object.Int(1), false},
		{Lt, object.Bool(true), object.Bool(false), false},
		{Gt, object.NewList(), object.NewList(), false},
		{Lt, object.Int(1), object.String_("a"), false},
	}
	for _, c := range cases {
		got, err := compareValues(c.op, c.l, c.r)
		if err != nil {
			t.Fatalf("%s %s %s: %v", c.l, c.op, c.r, err)
		}
		if got != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestSubsetAtom(t *testing.T) {
	e := knuthDB(t)
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Conj(
			Eq{L: Var{Name: "X"}, R: Const{V: object.NewSet(object.String_("D. Scott"))}},
			Subset{L: Var{Name: "X"},
				R: Const{V: object.NewSet(object.String_("D. Scott"), object.String_("R. Floyd"))}},
		),
	}
	r := evalQ(t, e, q)
	if r.Len() != 1 {
		t.Errorf("subset = %d rows", r.Len())
	}
	// Non-subset filtered out.
	q2 := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Conj(
			Eq{L: Var{Name: "X"}, R: Const{V: object.NewSet(object.String_("zzz"))}},
			Subset{L: Var{Name: "X"}, R: Const{V: object.NewSet(object.String_("D. Scott"))}},
		),
	}
	if r := evalQ(t, e, q2); r.Len() != 0 {
		t.Errorf("non-subset = %d rows", r.Len())
	}
	// Mismatched operands make the atom false, not an error.
	q3 := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Conj(
			Eq{L: Var{Name: "X"}, R: Num(1)},
			Subset{L: Var{Name: "X"}, R: Const{V: object.NewSet()}},
		),
	}
	if r := evalQ(t, e, q3); r.Len() != 0 {
		t.Errorf("mismatched subset = %d rows", r.Len())
	}
}

func TestMethodsAsInterpretedFunctions(t *testing.T) {
	e := knuthDB(t)
	// Paths "through method calls" (the paper's footnote 3): a method
	// bound on Chapter is callable as an interpreted function with the
	// receiver as the first argument.
	firstReview := func(inst *store.Instance, recv object.OID, _ []object.Value) (object.Value, error) {
		v, _ := inst.Deref(recv)
		tup, ok := v.(*object.Tuple)
		if !ok {
			return object.Nil{}, nil
		}
		rv, _ := tup.Get("review")
		s, ok := rv.(*object.Set)
		if !ok || s.Len() == 0 {
			return object.Nil{}, nil
		}
		return s.At(0), nil
	}
	if err := e.Inst.BindMethod("Chapter", "firstReview", firstReview); err != nil {
		t.Fatal(err)
	}
	q := &Query{
		Head: []VarDecl{{Name: "Y", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}, {Name: "C", Sort: SortData}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemBind{X: "C"}, ElemAttr{A: AttrName{Name: "review"}})},
				Eq{L: Var{Name: "Y"}, R: FuncCall{Name: "firstReview", Args: []Term{Var{Name: "C"}}}},
				Cmp{Op: Ne, L: Var{Name: "Y"}, R: Const{V: object.Nil{}}},
			),
		},
	}
	r := evalQ(t, e, q)
	got := resultStrings(r, "Y")
	if !hasString(got, `"D. Scott"`) {
		t.Errorf("method results = %v", got)
	}
}

func TestExportedHelpers(t *testing.T) {
	e := knuthDB(t)
	f := Conj(
		PathAtom{Base: NameRef{Name: "Knuth_Books"}, Path: PVar("P")},
		Cmp{Op: Lt, L: FuncCall{Name: "length", Args: []Term{PVar("P")}}, R: Num(2)},
	)
	if len(Conjuncts(f)) != 2 {
		t.Error("Conjuncts")
	}
	order, err := OrderConjuncts(f, nil)
	if err != nil || len(order) != 2 {
		t.Errorf("OrderConjuncts = %v %v", order, err)
	}
	if _, ok := order[0].(PathAtom); !ok {
		t.Error("the path atom must be scheduled first")
	}
	got, ok := Restricts(f, map[string]bool{})
	if !ok || !got["P"] {
		t.Errorf("Restricts = %v %v", got, ok)
	}
	if _, ok := Restricts(Cmp{Op: Lt, L: Var{Name: "Z"}, R: Num(1)}, map[string]bool{}); ok {
		t.Error("unrestricted comparison must not restrict")
	}
	vals, err := e.EvalWith(f, []Valuation{{}})
	if err != nil || len(vals) == 0 {
		t.Errorf("EvalWith = %d %v", len(vals), err)
	}
	v := Valuation{}.Extend("X", DataBinding(object.Int(1)))
	if v["X"].Data != object.Int(1) {
		t.Error("Extend")
	}
	if v.Key() == (Valuation{}).Key() {
		t.Error("Key must distinguish valuations")
	}
	w := v.Without([]VarDecl{{Name: "X"}})
	if len(w) != 0 {
		t.Error("Without")
	}
	val, err := e.Term(NameRef{Name: "Knuth_Books"}, Valuation{})
	if err != nil || val.Kind() != object.KindOID {
		t.Errorf("Term = %v %v", val, err)
	}
	b, err := e.TermBinding(PVar("P"), Valuation{"P": PathBinding(path.New(path.Deref()))})
	if err != nil || b.Sort != SortPath {
		t.Errorf("TermBinding = %v %v", b, err)
	}
	out, err := e.ApplyPath(val, PathBinding(path.New(path.Deref(), path.Attr("title"))))
	if err != nil || !object.Equal(out, object.String_("TAOCP")) {
		t.Errorf("ApplyPath = %v %v", out, err)
	}
	_, err = e.ApplyPath(val, PathBinding(path.New(path.Attr("nope"))))
	if !IsNoSuchPath(err) {
		t.Errorf("IsNoSuchPath = %v", err)
	}
	if IsNoSuchPath(nil) {
		t.Error("IsNoSuchPath(nil)")
	}
}

func TestTextOfOnEnv(t *testing.T) {
	e := knuthDB(t)
	// Without TextOf, contains over a non-string is simply false.
	q := &Query{
		Head: []VarDecl{{Name: "X", Sort: SortData}},
		Body: Exists{
			Vars: []VarDecl{{Name: "P", Sort: SortPath}},
			Body: Conj(
				PathAtom{Base: NameRef{Name: "Knuth_Books"},
					Path: P(ElemVar{Name: "P"}, ElemBind{X: "X"}, ElemAttr{A: AttrName{Name: "chapters"}})},
				Contains{T: Var{Name: "X"}, E: text.MustWord("Fundamental")},
			),
		},
	}
	r := evalQ(t, e, q)
	if r.Len() != 0 {
		t.Errorf("without TextOf = %d rows", r.Len())
	}
	// With TextOf, complex values become searchable.
	e.TextOf = func(inst *store.Instance, v object.Value) string {
		if o, ok := v.(object.OID); ok {
			if inner, ok := inst.Deref(o); ok {
				return inner.String()
			}
		}
		return v.String()
	}
	r = evalQ(t, e, q)
	if r.Len() == 0 {
		t.Error("with TextOf the volume should match")
	}
}

func TestValuationBindingStrings(t *testing.T) {
	b := DataBinding(nil)
	if b.String() != "nil" || !object.IsNil(b.Value()) {
		t.Error("nil data binding")
	}
	pb := PathBinding(path.New(path.Attr("x")))
	if pb.String() != ".x" {
		t.Error("path binding String")
	}
	ab := AttrBinding("title")
	if ab.String() != "title" || !object.Equal(ab.Value(), object.String_("title")) {
		t.Error("attr binding")
	}
	if !pb.equal(PathBinding(path.New(path.Attr("x")))) || pb.equal(ab) {
		t.Error("binding equal")
	}
	if !ab.equal(AttrBinding("title")) || ab.equal(AttrBinding("other")) {
		t.Error("attr equal")
	}
	db := DataBinding(object.Int(1))
	if !db.equal(DataBinding(object.Int(1))) || db.equal(DataBinding(object.Int(2))) {
		t.Error("data equal")
	}
}

func TestPredStrings(t *testing.T) {
	p := Pred{Name: "near", Args: []Term{Var{Name: "X"}, Str("a")}}
	if p.String() != `near(X, "a")` {
		t.Errorf("Pred String = %s", p)
	}
	sub := Subset{L: Var{Name: "X"}, R: Var{Name: "Y"}}
	if sub.String() != "X subset Y" {
		t.Errorf("Subset String = %s", sub)
	}
	in := In{L: Var{Name: "X"}, R: Var{Name: "Y"}}
	if in.String() != "X in Y" {
		t.Errorf("In String = %s", in)
	}
	fa := Forall{Vars: []VarDecl{{Name: "X"}}, Range: TrueF{}, Then: TrueF{}}
	if !strings.Contains(fa.String(), "∀X") {
		t.Errorf("Forall String = %s", fa)
	}
	iq := InnerQuery{Q: &Query{Head: []VarDecl{{Name: "X"}}, Body: TrueF{}}}
	if !strings.Contains(iq.String(), "{X | true}") {
		t.Errorf("InnerQuery String = %s", iq)
	}
	pa := PathApply{Base: Var{Name: "X"}, Path: P(ElemDeref{}, ElemMember{T: Num(1)})}
	if pa.String() != "X ->{1}" {
		t.Errorf("PathApply String = %s", pa)
	}
}
