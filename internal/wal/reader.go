package wal

import (
	"errors"
	"fmt"
)

// ErrSeqTruncated reports a feed request anchored before the retained
// log: the prefix covering that sequence was dropped by a checkpoint, so
// the caller must bootstrap from a checkpoint instead of tailing frames.
var ErrSeqTruncated = errors.New("wal: requested sequence precedes the retained log")

// FramesAfter returns raw committed frames with sequence numbers after
// afterSeq, in order, stopping before maxBytes is exceeded (but always
// returning at least one frame when any is due). lastSeq is the sequence
// number of the final returned frame, or afterSeq when none are due.
// Frames are returned exactly as they sit on disk — header, CRC and all —
// so a follower validates them with the same DecodeFrame the local replay
// path uses. Rolled-back appends are invisible by construction: a failed
// Append rewinds the file before l.size ever advances, and FramesAfter
// reads only [0, l.size).
func (l *Log) FramesAfter(afterSeq uint64, maxBytes int) (frames []byte, lastSeq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// A poisoned log accepts no writes, but its committed prefix is still
	// the durable truth: keep shipping it so followers stay current up to
	// the last real commit of a degraded primary. Only a lost handle ends
	// the feed.
	if l.f == nil {
		return nil, 0, l.err
	}
	if afterSeq < l.floor {
		return nil, 0, fmt.Errorf("%w: have records after %d, asked for after %d", ErrSeqTruncated, l.floor, afterSeq)
	}
	if afterSeq >= l.seq {
		return nil, afterSeq, nil
	}
	data := make([]byte, l.size)
	if _, err := l.f.ReadAt(data, 0); err != nil {
		return nil, 0, fmt.Errorf("wal: feed read: %w", err)
	}
	off := len(logMagic)
	lastSeq = afterSeq
	for off < len(data) {
		rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			// Committed bytes failing to decode is corruption, not a torn
			// tail: everything under l.size was fsynced by an Append that
			// returned success.
			return nil, 0, fmt.Errorf("%w: feed scan at offset %d: %w", ErrCorruptLog, off, err)
		}
		if rec.Seq > afterSeq {
			if len(frames) > 0 && len(frames)+n > maxBytes {
				break
			}
			frames = append(frames, data[off:off+n]...)
			lastSeq = rec.Seq
		}
		off += n
	}
	return frames, lastSeq, nil
}
