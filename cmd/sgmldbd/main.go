// Command sgmldbd serves one SGML database over HTTP — the network query
// service of DESIGN.md §9. It opens a database from a DTD (optionally
// durable under -data, optionally preloading documents), mounts the
// internal/service handlers, and runs until SIGINT/SIGTERM, at which
// point it drains: new requests get 503, in-flight requests finish, a
// final checkpoint is written, and the process exits 0.
//
// Usage:
//
//	sgmldbd -dtd article.dtd [-addr 127.0.0.1:8344] [-tenants tenants.json]
//	        [-data dir] [-max-concurrent N] [-max-rows N] [-max-memory B]
//	        [-query-timeout D] [-drain-timeout D] [doc.sgml …]
//	sgmldbd -dtd article.dtd -follow http://primary:8344 [-follow-key K] [-data dir] [flags]
//
// Without -tenants the server runs in open mode: every caller is one
// anonymous tenant with no per-tenant limits (the database-level budgets
// still apply). With -tenants, callers authenticate with
// "Authorization: Bearer <key>" or "X-API-Key: <key>".
//
// With -follow the process is a read-only follower (DESIGN.md §10): it
// bootstraps from the primary's newest checkpoint, tails its log feed,
// and serves queries at the primary's epoch; loads are rejected with
// READ_ONLY. Document preloading is primary-only. -follow combined with
// -data runs a *durable* follower (DESIGN.md §12): the shipped log is
// re-persisted locally, which survives restarts without a re-bootstrap
// and makes the node eligible for promotion — POST /v1/promote flips it
// into a writable primary at a fresh term and stops the tail loop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sgmldb"
	"sgmldb/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgmldbd:", err)
		os.Exit(1)
	}
}

func run() error {
	dtdPath := flag.String("dtd", "", "DTD file (required)")
	addr := flag.String("addr", "127.0.0.1:8344", "listen address")
	tenantsPath := flag.String("tenants", "", "tenants config file (JSON); empty = open mode")
	dataDir := flag.String("data", "", "data directory for durable operation (WAL + checkpoints)")
	maxConcurrent := flag.Int("max-concurrent", 0, "database-wide concurrent query limit (0 = unlimited)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long a query may wait for an admission slot")
	maxRows := flag.Int64("max-rows", 0, "database-wide per-query row budget (0 = unlimited)")
	maxMemory := flag.Int64("max-memory", 0, "database-wide per-query memory budget in bytes (0 = unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0, "database-wide per-query wall-clock budget (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	follow := flag.String("follow", "", "primary base URL; run as a read-only follower")
	followKey := flag.String("follow-key", "", "API key the follower presents to the primary")
	followWait := flag.Uint64("follow-wait-ms", 0, "feed long-poll window in ms (0 = server default)")
	flag.Parse()
	if *dtdPath == "" {
		return fmt.Errorf("usage: sgmldbd -dtd file.dtd [flags] [doc.sgml…]")
	}
	if *follow != "" && flag.NArg() > 0 {
		return fmt.Errorf("-follow rejects document preloading: followers are read-only")
	}

	var opts []sgmldb.Option
	if *dataDir != "" {
		opts = append(opts, sgmldb.WithDataDir(*dataDir))
	}
	if *maxConcurrent > 0 {
		opts = append(opts, sgmldb.WithMaxConcurrentQueries(*maxConcurrent))
	}
	if *queueTimeout > 0 {
		opts = append(opts, sgmldb.WithQueueTimeout(*queueTimeout))
	}
	if *maxRows > 0 {
		opts = append(opts, sgmldb.WithMaxRows(*maxRows))
	}
	if *maxMemory > 0 {
		opts = append(opts, sgmldb.WithMaxMemory(*maxMemory))
	}
	if *queryTimeout > 0 {
		opts = append(opts, sgmldb.WithQueryTimeout(*queryTimeout))
	}

	var db *sgmldb.Database
	var err error
	if *follow != "" {
		dtdSrc, rerr := os.ReadFile(*dtdPath)
		if rerr != nil {
			return rerr
		}
		db, err = sgmldb.OpenFollower(string(dtdSrc), opts...)
	} else {
		db, err = sgmldb.OpenDTDFile(*dtdPath, opts...)
	}
	if err != nil {
		return err
	}
	for _, path := range flag.Args() {
		if _, err := db.LoadDocumentFile(path); err != nil {
			return fmt.Errorf("preloading %s: %w", path, err)
		}
	}

	// In follower mode, start the replication client before serving: the
	// first poll bootstraps from the primary's checkpoint, later ones tail
	// its live log. The tail loop is cancelled first thing at shutdown.
	var stopTail context.CancelFunc
	tailDone := make(chan struct{})
	close(tailDone)
	if *follow != "" {
		var tailCtx context.Context
		tailCtx, stopTail = context.WithCancel(context.Background())
		defer stopTail()
		fl := &service.Follower{DB: db, Primary: *follow, Key: *followKey, WaitMS: *followWait}
		tailDone = make(chan struct{})
		go func() {
			defer close(tailDone)
			if err := fl.Run(tailCtx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("sgmldbd: replication stopped: %v", err)
			}
		}()
	}

	// On a durable primary, watch the storage health and log once per
	// state change: the transition into (or, after a reopen, out of)
	// degraded mode, and every change of the checkpoint-failure streak.
	// Polling is fine here — the states are sticky or slow-moving, and one
	// line per change keeps the log greppable instead of scrolling.
	stopMonitor := func() {}
	if *dataDir != "" {
		monCtx, cancel := context.WithCancel(context.Background())
		monDone := make(chan struct{})
		stopMonitor = func() {
			cancel()
			<-monDone
		}
		go func() {
			defer close(monDone)
			watchStorageHealth(monCtx, db)
		}()
	}

	cfg := service.Config{}
	if *tenantsPath != "" {
		cfg, err = service.LoadConfig(*tenantsPath)
		if err != nil {
			return err
		}
	}
	srv, err := service.New(db, cfg)
	if err != nil {
		return err
	}
	if *follow != "" {
		// POST /v1/promote flipped the database writable: stop tailing the
		// old primary — this process is the primary now.
		srv.OnPromote = func(term uint64) {
			log.Printf("sgmldbd: promoted to primary at term %d, stopping replication tail", term)
			if stopTail != nil {
				stopTail()
			}
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	mode := "open mode"
	if n := len(cfg.Tenants); n > 0 {
		mode = fmt.Sprintf("%d-tenant mode", n)
	}
	if *follow != "" {
		mode += fmt.Sprintf(", following %s", *follow)
	}
	log.Printf("sgmldbd: serving on %s (%s, epoch %d)", *addr, mode, db.Epoch())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("sgmldbd: %v, draining", s)
	}

	// Graceful shutdown: flip the service into draining (503 for new
	// calls), let http.Server.Shutdown wait out the in-flight handlers,
	// then checkpoint and close the durability machinery.
	srv.Drain()
	stopMonitor()
	if stopTail != nil {
		stopTail()
		<-tailDone
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("sgmldbd: shutdown: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		log.Printf("sgmldbd: final checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		return err
	}
	log.Printf("sgmldbd: drained, bye")
	return nil
}

// watchStorageHealth polls the database's storage state and logs once per
// transition: degraded on/off (with the sticky reason) and checkpoint
// failure-streak changes (with the last error while failing, or an
// all-clear when a checkpoint succeeds again).
func watchStorageHealth(ctx context.Context, db *sgmldb.Database) {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	var wasDegraded bool
	var lastStreak uint64
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if degraded, reason := db.DegradedState(); degraded != wasDegraded {
			wasDegraded = degraded
			if degraded {
				log.Printf("sgmldbd: DEGRADED (read-only): %s", reason)
			} else {
				log.Printf("sgmldbd: storage recovered, accepting writes again")
			}
		}
		if _, streak, lastErr := db.CheckpointFailures(); streak != lastStreak {
			lastStreak = streak
			if streak > 0 {
				log.Printf("sgmldbd: checkpoint failing (%d consecutive): %s", streak, lastErr)
			} else {
				log.Printf("sgmldbd: checkpoint succeeded, failure streak cleared")
			}
		}
	}
}
