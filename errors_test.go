package sgmldb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sgmldb/internal/calculus"
	"sgmldb/internal/faultpoint"
	"sgmldb/internal/object"
)

// The facade promises sentinel errors testable with errors.Is, no matter
// how many wrapping layers the failing operation adds.

func TestErrReadOnlyFromSnapshot(t *testing.T) {
	db := openArticleDB(t)
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocument(string(src)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = snap.LoadDocument(string(src))
	if !errors.Is(err, ErrReadOnly) {
		t.Errorf("LoadDocument on snapshot: err = %v, want errors.Is ErrReadOnly", err)
	}
}

func TestErrUnknownObjectFromName(t *testing.T) {
	db := openArticleDB(t)
	err := db.Name("ghost", object.OID(1<<40))
	if !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Name with bogus oid: err = %v, want errors.Is ErrUnknownObject", err)
	}
}

func TestErrNoMappingFromExport(t *testing.T) {
	db := openArticleDB(t)
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocument(string(src))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = snap.Export(oid)
	if !errors.Is(err, ErrNoMapping) {
		t.Errorf("Export without mapping: err = %v, want errors.Is ErrNoMapping", err)
	}
}

func TestErrBudgetExceededFromQuery(t *testing.T) {
	db, err := OpenDTDFile("testdata/article.dtd", WithQueryTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocumentFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("my_article", oid); err != nil {
		t.Fatal(err)
	}
	_, err = db.Query(`select t from my_article PATH_p.title(t)`)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("query over budget: err = %v, want errors.Is ErrBudgetExceeded", err)
	}
	// The facade sentinel aliases the internal one, so errors.Is holds
	// across layers.
	if !errors.Is(err, calculus.ErrBudgetExceeded) {
		t.Errorf("query over budget: err = %v, want errors.Is calculus.ErrBudgetExceeded", err)
	}
}

func TestErrInternalFromEvaluatorPanic(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	db := openArticleDB(t)
	defer faultpoint.Arm("calculus/eval", faultpoint.Panic("kaboom"))()
	_, err := db.Query(`select t from my_article PATH_p.title(t)`)
	if !errors.Is(err, ErrInternal) {
		t.Errorf("query under panic: err = %v, want errors.Is ErrInternal", err)
	}
	if !errors.Is(err, calculus.ErrInternal) {
		t.Errorf("query under panic: err = %v, want errors.Is calculus.ErrInternal", err)
	}
}

// TestErrOverloadedQueueTimeoutBounded asserts both the sentinel and the
// bound: a shed query waits roughly the configured queue timeout — not
// forever, and not zero (it did queue).
func TestErrOverloadedQueueTimeoutBounded(t *testing.T) {
	t.Cleanup(faultpoint.DisarmAll)
	const wait = 50 * time.Millisecond
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDTD(string(dtd), WithMaxConcurrentQueries(1), WithQueueTimeout(wait))
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db.LoadDocument(string(doc))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Name("my_article", oid); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	defer faultpoint.Arm("calculus/eval", faultpoint.Once(func() error {
		close(entered)
		<-release
		return nil
	}))()
	defer close(release)
	holder := make(chan error, 1)
	go func() {
		_, err := db.Query(`select t from my_article PATH_p.title(t)`)
		holder <- err
	}()
	<-entered

	start := time.Now()
	_, err = db.Query(`select t from my_article PATH_p.title(t)`)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued query: err = %v, want errors.Is ErrOverloaded", err)
	}
	if elapsed < wait {
		t.Errorf("shed after %v, want >= %v (the query must queue first)", elapsed, wait)
	}
	if elapsed > 10*wait {
		t.Errorf("shed after %v, want well under %v (the timeout bounds the wait)", elapsed, 10*wait)
	}
}
