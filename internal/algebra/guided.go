package algebra

import (
	"strings"
	"sync"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/path"
	"sgmldb/internal/store"
)

// guide is the compile-time product of the (★) analysis for one path
// predicate: a satisfiability oracle over the schema's type graph. For
// every pattern position i and schema type τ it answers "can the pattern
// suffix starting at element i match a value of type τ?". The runtime
// navigator consults it before descending into a subtree, so navigation
// visits only shapes that can still satisfy the pattern — the paper's
// candidate-valuation analysis, realised as pruning instead of a
// materialised union of plans.
//
// Types are interned to small integer ids; every transition (attribute
// step, element step, dereference) is memoised per id, so the runtime
// type tracking costs a map lookup, not a structural walk.
//
// The memo tables fill lazily: mostly at translation time (CandidateCount
// walks the whole satisfiability space) but also during execution, when
// navigation reaches types the eager pass did not touch. Concurrent Run
// calls on one compiled plan therefore go through the rt* wrappers below,
// which serve memo hits under a read lock and fall back to a write-locked
// computation on a miss. The unlocked methods stay single-goroutine
// (translation) or write-locked (runtime miss path).
type guide struct {
	mu     sync.RWMutex
	h      *object.Hierarchy
	schema *store.Schema
	elems  []calculus.PathElem

	ids   map[string]int // TypeKey -> id
	types []object.Type  // id -> type

	sat    []map[int]int8 // [elem pos] -> id -> -1 unknown / 0 false / 1 true
	satVar []map[int]int8

	succ   map[int][]int // id -> successor ids
	reach  map[int][]int // id -> reachable ids (incl self)
	attrs  map[attrKey][]int
	elemsC map[int][]int // index-step transitions
	membC  map[int][]int // member-step transitions
	derefC map[int][]int
	allC   map[int][]int    // attribute-variable transitions
	class  map[string][]int // class name -> σ ids

	inProgress map[[2]int]bool
}

type attrKey struct {
	id   int
	name string
}

func newGuide(schema *store.Schema, elems []calculus.PathElem) *guide {
	g := &guide{
		h:          schema.Hierarchy(),
		schema:     schema,
		elems:      elems,
		ids:        map[string]int{},
		succ:       map[int][]int{},
		reach:      map[int][]int{},
		attrs:      map[attrKey][]int{},
		elemsC:     map[int][]int{},
		membC:      map[int][]int{},
		derefC:     map[int][]int{},
		allC:       map[int][]int{},
		class:      map[string][]int{},
		inProgress: map[[2]int]bool{},
	}
	g.sat = make([]map[int]int8, len(elems)+1)
	g.satVar = make([]map[int]int8, len(elems)+1)
	for i := range g.sat {
		g.sat[i] = map[int]int8{}
		g.satVar[i] = map[int]int8{}
	}
	return g
}

// id interns a type.
func (g *guide) id(t object.Type) int {
	k := object.TypeKey(t)
	if id, ok := g.ids[k]; ok {
		return id
	}
	id := len(g.types)
	g.ids[k] = id
	g.types = append(g.types, t)
	return id
}

func (g *guide) idsOf(ts []object.Type) []int {
	out := make([]int, 0, len(ts))
	seen := map[int]bool{}
	for _, t := range ts {
		id := g.id(t)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// classIDs returns the σ ids of a class's extent (subclasses included).
func (g *guide) classIDs(name string) []int {
	if ids, ok := g.class[name]; ok {
		return ids
	}
	var out []int
	for _, sub := range g.h.Subclasses(name) {
		if sigma, ok := g.h.TypeOf(sub); ok {
			out = appendUnique(out, g.id(sigma))
		}
	}
	g.class[name] = out
	return out
}

func appendUnique(ids []int, id int) []int {
	for _, x := range ids {
		if x == id {
			return ids
		}
	}
	return append(ids, id)
}

func mergeUnique(dst []int, src []int) []int {
	for _, id := range src {
		dst = appendUnique(dst, id)
	}
	return dst
}

// successors lists the ids one step away from a type id.
func (g *guide) successors(id int) []int {
	if s, ok := g.succ[id]; ok {
		return s
	}
	g.succ[id] = nil // break cycles during computation
	var out []int
	switch c := g.types[id].(type) {
	case object.TupleType:
		for _, f := range c.Fields() {
			out = appendUnique(out, g.id(f.Type))
		}
	case object.UnionType:
		for _, a := range c.Alts() {
			out = appendUnique(out, g.id(a.Type))
		}
	case object.ListType:
		out = appendUnique(out, g.id(c.Elem))
	case object.SetType:
		out = appendUnique(out, g.id(c.Elem))
	case object.ClassType:
		out = mergeUnique(out, g.classIDs(c.Name))
	case object.AnyType:
		for _, cl := range g.h.Classes() {
			out = mergeUnique(out, g.classIDs(cl))
		}
	default:
		// atomic types are leaves: no successors
	}
	g.succ[id] = out
	return out
}

// reachable returns every id reachable from id (including itself).
func (g *guide) reachable(id int) []int {
	if r, ok := g.reach[id]; ok {
		return r
	}
	seen := map[int]bool{id: true}
	stack := []int{id}
	out := []int{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range g.successors(cur) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
				stack = append(stack, n)
			}
		}
	}
	g.reach[id] = out
	return out
}

// attrStep memoises the named-attribute transition (implicit selectors
// and implicit dereferencing included).
func (g *guide) attrStep(id int, name string) []int {
	k := attrKey{id: id, name: name}
	if r, ok := g.attrs[k]; ok {
		return r
	}
	g.attrs[k] = nil
	var out []int
	switch c := g.types[id].(type) {
	case object.TupleType:
		if ft, ok := c.Get(name); ok {
			out = appendUnique(out, g.id(ft))
		}
	case object.UnionType:
		if alt, ok := c.Get(name); ok {
			out = appendUnique(out, g.id(alt))
		} else {
			for _, a := range c.Alts() {
				out = mergeUnique(out, g.attrStep(g.id(a.Type), name))
			}
		}
	case object.ClassType, object.AnyType:
		for _, s := range g.successors(id) {
			out = mergeUnique(out, g.attrStep(s, name))
		}
	default:
		// other kinds have no named attributes: dead end
	}
	g.attrs[k] = out
	return out
}

// attrAllStep memoises the attribute-variable transition.
func (g *guide) attrAllStep(id int) []int {
	if r, ok := g.allC[id]; ok {
		return r
	}
	g.allC[id] = nil
	var out []int
	switch c := g.types[id].(type) {
	case object.TupleType:
		for _, f := range c.Fields() {
			out = appendUnique(out, g.id(f.Type))
		}
	case object.UnionType:
		for _, a := range c.Alts() {
			out = appendUnique(out, g.id(a.Type))
		}
	case object.ClassType, object.AnyType:
		for _, s := range g.successors(id) {
			out = mergeUnique(out, g.attrAllStep(s))
		}
	default:
		// other kinds have no attributes: dead end
	}
	g.allC[id] = out
	return out
}

// elemStep memoises the index-step transition (lists, tuples as
// heterogeneous lists, unions and classes implicitly).
func (g *guide) elemStep(id int) []int {
	if r, ok := g.elemsC[id]; ok {
		return r
	}
	g.elemsC[id] = nil
	var out []int
	switch c := g.types[id].(type) {
	case object.ListType:
		out = appendUnique(out, g.id(c.Elem))
	case object.TupleType:
		out = appendUnique(out, g.id(object.HeterogeneousListType(c).Elem))
	case object.UnionType:
		for _, a := range c.Alts() {
			out = mergeUnique(out, g.elemStep(g.id(a.Type)))
		}
	case object.ClassType, object.AnyType:
		for _, s := range g.successors(id) {
			out = mergeUnique(out, g.elemStep(s))
		}
	default:
		// other kinds are not indexable: dead end
	}
	g.elemsC[id] = out
	return out
}

// memberStep memoises the set-member transition.
func (g *guide) memberStep(id int) []int {
	if r, ok := g.membC[id]; ok {
		return r
	}
	g.membC[id] = nil
	var out []int
	switch c := g.types[id].(type) {
	case object.SetType:
		out = appendUnique(out, g.id(c.Elem))
	case object.UnionType:
		for _, a := range c.Alts() {
			out = mergeUnique(out, g.memberStep(g.id(a.Type)))
		}
	case object.ClassType, object.AnyType:
		for _, s := range g.successors(id) {
			out = mergeUnique(out, g.memberStep(s))
		}
	default:
		// other kinds have no members: dead end
	}
	g.membC[id] = out
	return out
}

// derefStep memoises the explicit-dereference transition.
func (g *guide) derefStep(id int) []int {
	if r, ok := g.derefC[id]; ok {
		return r
	}
	g.derefC[id] = nil
	var out []int
	switch c := g.types[id].(type) {
	case object.ClassType, object.AnyType:
		out = mergeUnique(out, g.successors(id))
	case object.UnionType:
		for _, a := range c.Alts() {
			out = mergeUnique(out, g.derefStep(g.id(a.Type)))
		}
	default:
		// other kinds are not dereferenceable: dead end
	}
	g.derefC[id] = out
	return out
}

// satID reports whether the suffix elems[i:] can match a value of type id.
func (g *guide) satID(i, id int) bool {
	if i >= len(g.elems) {
		return true
	}
	if v, ok := g.sat[i][id]; ok && v >= 0 {
		return v == 1
	}
	key := [2]int{i, id}
	if g.inProgress[key] {
		return false
	}
	g.inProgress[key] = true
	v := g.satUncached(i, id)
	delete(g.inProgress, key)
	if v {
		g.sat[i][id] = 1
	} else {
		g.sat[i][id] = 0
	}
	return v
}

func (g *guide) satAny(i int, ids []int) bool {
	if len(ids) == 0 {
		return false
	}
	for _, id := range ids {
		if g.satID(i, id) {
			return true
		}
	}
	return false
}

func (g *guide) satUncached(i, id int) bool {
	switch el := g.elems[i].(type) {
	case calculus.ElemBind:
		return g.satID(i+1, id)
	case calculus.ElemVar:
		return g.satVarID(i+1, id)
	case calculus.ElemAttr:
		if a, ok := el.A.(calculus.AttrName); ok {
			return g.satAny(i+1, g.attrStep(id, a.Name))
		}
		return g.satAny(i+1, g.attrAllStep(id))
	case calculus.ElemIndex:
		return g.satAny(i+1, g.elemStep(id))
	case calculus.ElemDeref:
		return g.satAny(i+1, g.derefStep(id))
	case calculus.ElemMember:
		return g.satAny(i+1, g.memberStep(id))
	default:
		return true
	}
}

// satVarID reports whether the suffix elems[i:] can match from some type
// reachable from id — the descend decision under a path variable. The
// reachability over-approximates the restricted semantics, which only
// costs pruning power.
func (g *guide) satVarID(i, id int) bool {
	if i >= len(g.elems) {
		return true
	}
	if v, ok := g.satVar[i][id]; ok && v >= 0 {
		return v == 1
	}
	out := false
	for _, r := range g.reachable(id) {
		if g.satID(i, r) {
			out = true
			break
		}
	}
	if out {
		g.satVar[i][id] = 1
	} else {
		g.satVar[i][id] = 0
	}
	return out
}

// Runtime-safe accessors. Each serves the memo-hit fast path under the
// read lock and recomputes under the write lock on a miss, so concurrent
// plan executions share one guide without racing on the memo tables.

// rtIDsOf interns base types at execution time (once per Rows call).
func (g *guide) rtIDsOf(ts []object.Type) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.idsOf(ts)
}

// rtID interns one type at execution time.
func (g *guide) rtID(t object.Type) int {
	k := object.TypeKey(t)
	g.mu.RLock()
	id, ok := g.ids[k]
	g.mu.RUnlock()
	if ok {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.id(t)
}

// rtSatAny is satAny for the runtime navigator.
func (g *guide) rtSatAny(i int, ids []int) bool {
	if len(ids) == 0 {
		return false
	}
	if i >= len(g.elems) {
		return true
	}
	g.mu.RLock()
	complete := true
	for _, id := range ids {
		v, ok := g.sat[i][id]
		if !ok || v < 0 {
			complete = false
			break
		}
		if v == 1 {
			g.mu.RUnlock()
			return true
		}
	}
	g.mu.RUnlock()
	if complete {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.satAny(i, ids)
}

// rtSatVar is satVarID for the runtime navigator.
func (g *guide) rtSatVar(i, id int) bool {
	if i >= len(g.elems) {
		return true
	}
	g.mu.RLock()
	v, ok := g.satVar[i][id]
	g.mu.RUnlock()
	if ok && v >= 0 {
		return v == 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.satVarID(i, id)
}

// rtMemoStep wraps one memoised transition table lookup.
func (g *guide) rtMemoStep(memo map[int][]int, id int, compute func(int) []int) []int {
	g.mu.RLock()
	r, ok := memo[id]
	g.mu.RUnlock()
	if ok {
		return r
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return compute(id)
}

func (g *guide) rtElemStep(id int) []int   { return g.rtMemoStep(g.elemsC, id, g.elemStep) }
func (g *guide) rtMemberStep(id int) []int { return g.rtMemoStep(g.membC, id, g.memberStep) }

// rtAttrStep is attrStep for the runtime navigator.
func (g *guide) rtAttrStep(id int, name string) []int {
	k := attrKey{id: id, name: name}
	g.mu.RLock()
	r, ok := g.attrs[k]
	g.mu.RUnlock()
	if ok {
		return r
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.attrStep(id, name)
}

// CandidateCount eagerly evaluates sat for every (position, schema type)
// pair and reports how many are satisfiable — the size of the candidate
// valuation space, the cost measure of the union-expansion experiment.
func (g *guide) CandidateCount() int {
	var all []int
	for _, c := range g.h.Classes() {
		for _, id := range g.classIDs(c) {
			all = mergeUnique(all, g.reachable(id))
		}
	}
	for _, root := range g.schema.Roots() {
		if rt, ok := g.schema.RootType(root); ok {
			all = mergeUnique(all, g.reachable(g.id(rt)))
		}
	}
	count := 0
	for i := range g.elems {
		for _, id := range all {
			if g.satID(i, id) {
				count++
			}
		}
	}
	return count
}

// guidedOp evaluates a path predicate by schema-guided navigation.
type guidedOp struct {
	in        Op
	base      calculus.DataTerm
	atom      calculus.PathAtom
	guide     *guide
	baseTypes []object.Type
	noPrune   bool
}

func (o *guidedOp) Rows(ctx *Ctx) ([]calculus.Valuation, error) {
	in, err := o.in.Rows(ctx)
	if err != nil {
		return nil, err
	}
	baseIDs := o.guide.rtIDsOf(o.baseTypes)
	// Navigation is the plan's hot loop: partition the per-row matches
	// across the worker pool (each partition gets its own matcher, so the
	// per-execution oid caches stay goroutine-local).
	out, err := ctx.mapRows(in, func(v calculus.Valuation) ([]calculus.Valuation, error) {
		base, err := ctx.Env.Term(o.base, v)
		if calculus.IsNoSuchPath(err) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		m := &guidedMatcher{ctx: ctx, g: o.guide, noPrune: o.noPrune}
		return m.match(base, baseIDs, 0, v)
	})
	if err != nil {
		return nil, err
	}
	return ctx.dedup(out)
}

func (o *guidedOp) explain(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("path-navigate ")
	b.WriteString(o.atom.String())
	b.WriteString(" (schema-guided)\n")
	o.in.explain(b, indent+1)
}

// guidedMatcher mirrors the calculus path matcher with parallel type
// tracking (as interned ids; nil slice = unknown, no pruning) and
// satisfiability pruning.
type guidedMatcher struct {
	ctx     *Ctx
	g       *guide
	noPrune bool
	// oidIDs caches per-class σ ids during one execution.
	oidIDs map[string][]int
}

func (m *guidedMatcher) match(cur object.Value, ids []int, i int, v calculus.Valuation) ([]calculus.Valuation, error) {
	if i >= len(m.g.elems) {
		return []calculus.Valuation{v}, nil
	}
	if !m.noPrune && len(ids) > 0 && !m.g.rtSatAny(i, ids) {
		return nil, nil
	}
	switch el := m.g.elems[i].(type) {
	case calculus.ElemBind:
		if b, bound := v[el.X]; bound {
			if !object.Equiv(b.Value(), cur) {
				return nil, nil
			}
			return m.match(cur, ids, i+1, v)
		}
		return m.match(cur, ids, i+1, v.Extend(el.X, calculus.DataBinding(cur)))
	case calculus.ElemVar:
		if b, bound := v[el.Name]; bound {
			val, err := m.ctx.Env.ApplyPath(cur, b)
			if calculus.IsNoSuchPath(err) {
				return nil, nil
			}
			if err != nil {
				return nil, err
			}
			return m.match(val, nil, i+1, v)
		}
		st := enumState{derefed: map[string]bool{}}
		var out []calculus.Valuation
		err := m.enumerate(cur, ids, path.Empty, i+1, el.Name, v, st, &out)
		return out, err
	case calculus.ElemAttr:
		switch a := el.A.(type) {
		case calculus.AttrName:
			return m.namedAttr(cur, ids, a.Name, i, v)
		case calculus.AttrVar:
			if b, bound := v[a.Name]; bound {
				return m.namedAttr(cur, ids, b.Attr, i, v)
			}
			return m.attrVar(cur, ids, a.Name, i, v)
		}
		return nil, nil
	case calculus.ElemIndex:
		return m.index(cur, ids, el, i, v)
	case calculus.ElemDeref:
		o, ok := object.UnwrapUnion(cur).(object.OID)
		if !ok || m.ctx.Env.Inst == nil {
			return nil, nil
		}
		inner, ok := m.ctx.Env.Inst.Deref(o)
		if !ok {
			return nil, nil
		}
		return m.match(inner, m.idsOfOID(o), i+1, v)
	case calculus.ElemMember:
		return m.member(cur, ids, el, i, v)
	default:
		return nil, nil
	}
}

// idsOfOID gives the precise value type ids of an object from its class.
func (m *guidedMatcher) idsOfOID(o object.OID) []int {
	class, ok := m.ctx.Env.Inst.ClassOf(o)
	if !ok {
		return nil
	}
	if m.oidIDs == nil {
		m.oidIDs = map[string][]int{}
	}
	if ids, ok := m.oidIDs[class]; ok {
		return ids
	}
	var ids []int
	if sigma, ok := m.ctx.Env.Inst.Schema().Hierarchy().TypeOf(class); ok {
		ids = []int{m.g.rtID(sigma)}
	}
	m.oidIDs[class] = ids
	return ids
}

func (m *guidedMatcher) advanceAttr(ids []int, name string) []int {
	var out []int
	for _, id := range ids {
		out = mergeUnique(out, m.g.rtAttrStep(id, name))
	}
	return out
}

func (m *guidedMatcher) namedAttr(cur object.Value, ids []int, name string, i int, v calculus.Valuation) ([]calculus.Valuation, error) {
	switch val := cur.(type) {
	case *object.Tuple:
		f, ok := val.Get(name)
		if !ok {
			return nil, nil
		}
		return m.match(f, m.advanceAttr(ids, name), i+1, v)
	case *object.Union_:
		if val.Marker == name {
			return m.match(val.Value, m.advanceAttr(ids, name), i+1, v)
		}
		return m.namedAttr(val.Value, m.advanceAttr(ids, val.Marker), name, i, v)
	case object.OID:
		if m.ctx.Env.Inst == nil {
			return nil, nil
		}
		inner, ok := m.ctx.Env.Inst.Deref(val)
		if !ok {
			return nil, nil
		}
		return m.namedAttr(inner, m.idsOfOID(val), name, i, v)
	default:
		return nil, nil
	}
}

func (m *guidedMatcher) attrVar(cur object.Value, ids []int, name string, i int, v calculus.Valuation) ([]calculus.Valuation, error) {
	switch val := cur.(type) {
	case *object.Tuple:
		var out []calculus.Valuation
		for j := 0; j < val.Len(); j++ {
			f := val.At(j)
			sub, err := m.match(f.Value, m.advanceAttr(ids, f.Name), i+1,
				v.Extend(name, calculus.AttrBinding(f.Name)))
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case *object.Union_:
		return m.match(val.Value, m.advanceAttr(ids, val.Marker), i+1,
			v.Extend(name, calculus.AttrBinding(val.Marker)))
	default:
		return nil, nil
	}
}

func (m *guidedMatcher) advanceElems(ids []int) []int {
	var out []int
	for _, id := range ids {
		out = mergeUnique(out, m.g.rtElemStep(id))
	}
	return out
}

func (m *guidedMatcher) index(cur object.Value, ids []int, el calculus.ElemIndex, i int, v calculus.Valuation) ([]calculus.Valuation, error) {
	l, ok := object.AsList(implicitDeref(m.ctx, object.UnwrapUnion(cur)))
	if !ok {
		return nil, nil
	}
	next := m.advanceElems(ids)
	if iv, isVar := el.I.(calculus.Var); isVar {
		if _, bound := v[iv.Name]; !bound {
			var out []calculus.Valuation
			for j := 0; j < l.Len(); j++ {
				sub, err := m.match(l.At(j), next, i+1,
					v.Extend(iv.Name, calculus.DataBinding(object.Int(j))))
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
			return out, nil
		}
	}
	idx, err := m.ctx.Env.Term(el.I, v)
	if calculus.IsNoSuchPath(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	n, ok := idx.(object.Int)
	if !ok || int(n) < 0 || int(n) >= l.Len() {
		return nil, nil
	}
	return m.match(l.At(int(n)), next, i+1, v)
}

func (m *guidedMatcher) member(cur object.Value, ids []int, el calculus.ElemMember, i int, v calculus.Valuation) ([]calculus.Valuation, error) {
	s, ok := implicitDeref(m.ctx, object.UnwrapUnion(cur)).(*object.Set)
	if !ok {
		return nil, nil
	}
	var next []int
	for _, id := range ids {
		next = mergeUnique(next, m.g.rtMemberStep(id))
	}
	if mv, isVar := el.T.(calculus.Var); isVar {
		if _, bound := v[mv.Name]; !bound {
			var out []calculus.Valuation
			for j := 0; j < s.Len(); j++ {
				elv := s.At(j)
				sub, err := m.match(elv, next, i+1, v.Extend(mv.Name, calculus.DataBinding(elv)))
				if err != nil {
					return nil, err
				}
				out = append(out, sub...)
			}
			return out, nil
		}
	}
	mv, err := m.ctx.Env.Term(el.T, v)
	if calculus.IsNoSuchPath(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if !s.Contains(mv) {
		return nil, nil
	}
	return m.match(mv, next, i+1, v)
}

// enumState carries the restricted-semantics bookkeeping of one path
// variable's enumeration.
type enumState struct {
	derefed map[string]bool
	visited map[object.OID]bool
}

// enumerate interprets an unbound path variable: it walks every concrete
// path from cur admitted by the environment's semantics, matching the
// continuation elems[i:] at every node — but it descends into a child
// only when the child's static types can still satisfy the continuation
// (the schema-guided pruning that makes the algebra efficient).
func (m *guidedMatcher) enumerate(cur object.Value, ids []int, prefix path.Path,
	i int, pvar string, v calculus.Valuation, st enumState, out *[]calculus.Valuation) error {
	// The variable may stop here — attempt the continuation only when the
	// current types admit it (or are unknown).
	if m.noPrune || len(ids) == 0 || m.g.rtSatAny(i, ids) {
		sub, err := m.match(cur, ids, i, v.Extend(pvar, calculus.PathBinding(prefix)))
		if err != nil {
			return err
		}
		*out = append(*out, sub...)
	}
	if m.ctx.Env.MaxPathLen > 0 && prefix.Len() >= m.ctx.Env.MaxPathLen {
		return nil
	}
	descend := func(child object.Value, childIDs []int, step path.Step, st2 enumState) error {
		if !m.noPrune && len(childIDs) > 0 {
			ok := false
			for _, id := range childIDs {
				if m.g.rtSatVar(i, id) {
					ok = true
					break
				}
			}
			if !ok {
				return nil // prune the whole subtree
			}
		}
		return m.enumerate(child, childIDs, prefix.Append(step), i, pvar, v, st2, out)
	}
	switch x := cur.(type) {
	case *object.Tuple:
		for j := 0; j < x.Len(); j++ {
			f := x.At(j)
			if err := descend(f.Value, m.advanceAttr(ids, f.Name), path.Attr(f.Name), st); err != nil {
				return err
			}
		}
	case *object.List:
		next := m.advanceElems(ids)
		for j := 0; j < x.Len(); j++ {
			if err := descend(x.At(j), next, path.Index(j), st); err != nil {
				return err
			}
		}
	case *object.Set:
		var next []int
		for _, id := range ids {
			next = mergeUnique(next, m.g.rtMemberStep(id))
		}
		for j := 0; j < x.Len(); j++ {
			el := x.At(j)
			if err := descend(el, next, path.Member(el), st); err != nil {
				return err
			}
		}
	case *object.Union_:
		if err := descend(x.Value, m.advanceAttr(ids, x.Marker), path.Attr(x.Marker), st); err != nil {
			return err
		}
	case object.OID:
		if m.ctx.Env.Inst == nil {
			return nil
		}
		inner, ok := m.ctx.Env.Inst.Deref(x)
		if !ok {
			return nil
		}
		switch m.ctx.Env.Semantics {
		case path.Restricted:
			class, _ := m.ctx.Env.Inst.ClassOf(x)
			if st.derefed[class] {
				return nil
			}
			st2 := enumState{derefed: copyStrSet(st.derefed), visited: st.visited}
			st2.derefed[class] = true
			return descend(inner, m.idsOfOID(x), path.Deref(), st2)
		case path.Liberal:
			if st.visited == nil {
				st.visited = map[object.OID]bool{}
			}
			if st.visited[x] {
				return nil
			}
			st2 := enumState{derefed: st.derefed, visited: copyOIDSet(st.visited)}
			st2.visited[x] = true
			return descend(inner, m.idsOfOID(x), path.Deref(), st2)
		}
	default:
		// atoms and nil are leaves: nothing to descend into
	}
	return nil
}

func copyStrSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	return out
}

func copyOIDSet(m map[object.OID]bool) map[object.OID]bool {
	out := make(map[object.OID]bool, len(m)+1)
	for k := range m {
		out[k] = true
	}
	return out
}
