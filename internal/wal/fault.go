package wal

import (
	"errors"
	"fmt"
	"syscall"
)

// I/O error taxonomy. Storage fails partially in practice: the disk
// fills, an fsync reports lost dirty pages, a directory refuses to sync.
// Every such failure on the durable path is classified into one of two
// sentinels so callers can branch with errors.Is without parsing
// platform-specific messages.
var (
	// ErrDiskFull classifies failures rooted in exhausted space: ENOSPC
	// and EDQUOT. Retrying without freeing space cannot help.
	ErrDiskFull = errors.New("wal: disk full")

	// ErrIOFailure classifies every other storage-level failure (a failed
	// fsync, an unwritable file, a lost handle). After a failed fsync the
	// kernel may have silently dropped the dirty pages, so the write-path
	// state is unknowable — the log fails closed rather than guess.
	ErrIOFailure = errors.New("wal: i/o failure")

	// ErrPoisoned is the sticky log-poison marker: every write on a
	// poisoned log wraps it (together with the classified root cause), so
	// the facade can tell "the log is down" from a one-off failure.
	ErrPoisoned = errors.New("wal: log poisoned by a storage fault")
)

// classify wraps a raw storage error with its taxonomy sentinel. Already
// classified errors pass through unchanged.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrDiskFull) || errors.Is(err, ErrIOFailure):
		return err
	case errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT):
		return fmt.Errorf("%w: %w", ErrDiskFull, err)
	default:
		return fmt.Errorf("%w: %w", ErrIOFailure, err)
	}
}
