package oql

import (
	"errors"
	"fmt"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/store"
)

// checker implements the typing rules of Section 4.2 over the schema:
//
//  1. there is no common supertype between a union type and a non-union
//     type (so set operations over mismatched element types are rejected);
//  2. two union types join only without marker conflicts;
//
// plus the usual O₂SQL restrictions: collection constructors require a
// common supertype among their members, from-clause ranges must be
// collections, attribute steps must exist somewhere in the (possibly
// union) type — implicit selectors make union alternatives transparent —
// and the operand of contains must be able to hold text.
//
// Types flow best-effort: a nil type means "statically unknown" (e.g. a
// value reached through a path variable), for which checks are deferred
// to execution time, exactly the paper's split between compile-time and
// execution-time type errors.
type checker struct {
	schema *store.Schema
}

// Typecheck checks a parsed query against the schema. A nil schema checks
// nothing. Every failure wraps ErrTypecheck, including the structural
// checks that do not phrase themselves as type errors (e.g. a from entry
// that is not a path pattern), so the facade can classify any static
// rejection uniformly.
func Typecheck(schema *store.Schema, e Expr) error {
	if schema == nil {
		return nil
	}
	c := &checker{schema: schema}
	_, err := c.typeOf(e, map[string]object.Type{})
	if err != nil && !errors.Is(err, ErrTypecheck) {
		err = fmt.Errorf("%w: %w", ErrTypecheck, err)
	}
	return err
}

// typeOf computes the static type of an expression (nil = unknown).
func (c *checker) typeOf(e Expr, env map[string]object.Type) (object.Type, error) {
	switch x := e.(type) {
	case Ident:
		if t, ok := env[x.Name]; ok {
			return t, nil
		}
		if t, ok := c.schema.RootType(x.Name); ok {
			return t, nil
		}
		return nil, fmt.Errorf("%w: unknown name %s", ErrTypecheck, x.Name)
	case IntLit:
		return object.IntType, nil
	case FloatLit:
		return object.FloatType, nil
	case StringLit:
		return object.StringType, nil
	case BoolLit:
		return object.BoolType, nil
	case NilLit:
		return nil, nil
	case PathVarRef, AttrVarRef:
		return nil, nil
	case PathExpr:
		base, err := c.typeOf(x.Base, env)
		if err != nil {
			return nil, err
		}
		return c.pathType(base, x.Elems, env, x)
	case Call:
		return c.callType(x, env)
	case TupleCons:
		fields := make([]object.TField, len(x.Fields))
		for i, f := range x.Fields {
			t, err := c.typeOf(f.E, env)
			if err != nil {
				return nil, err
			}
			if t == nil {
				t = object.Any
			}
			fields[i] = object.TField{Name: f.Name, Type: t}
		}
		return object.TupleOf(fields...), nil
	case ListCons:
		elem, err := c.joinItems(x.Items, env, "list")
		if err != nil {
			return nil, err
		}
		if elem == nil {
			return nil, nil
		}
		return object.ListOf(elem), nil
	case SetCons:
		elem, err := c.joinItems(x.Items, env, "set")
		if err != nil {
			return nil, err
		}
		if elem == nil {
			return nil, nil
		}
		return object.SetOf(elem), nil
	case SelectExpr:
		return c.selectType(x, env)
	case Binary:
		return c.binaryType(x, env)
	case NotExpr:
		if _, err := c.typeOf(x.E, env); err != nil {
			return nil, err
		}
		return object.BoolType, nil
	case ContainsExpr:
		t, err := c.typeOf(x.Subject, env)
		if err != nil {
			return nil, err
		}
		if err := c.checkTextOperand(t, x); err != nil {
			return nil, err
		}
		return object.BoolType, nil
	case NearCond:
		if _, err := c.typeOf(x.Subject, env); err != nil {
			return nil, err
		}
		return object.BoolType, nil
	case ExistsExpr:
		return c.quantifierType(x.Var, x.Coll, x.Cond, env)
	case ForallExpr:
		return c.quantifierType(x.Var, x.Coll, x.Cond, env)
	default:
		return nil, nil
	}
}

func (c *checker) quantifierType(v string, coll, cond Expr, env map[string]object.Type) (object.Type, error) {
	ct, err := c.typeOf(coll, env)
	if err != nil {
		return nil, err
	}
	elem, err := c.elementType(ct, coll)
	if err != nil {
		return nil, err
	}
	inner := copyEnv(env)
	inner[v] = elem
	if _, err := c.typeOf(cond, inner); err != nil {
		return nil, err
	}
	return object.BoolType, nil
}

// joinItems computes the least common supertype of constructor members —
// the Section 4.2 check that "sets containing integers and characters are
// forbidden".
func (c *checker) joinItems(items []Expr, env map[string]object.Type, what string) (object.Type, error) {
	var join object.Type
	for _, it := range items {
		t, err := c.typeOf(it, env)
		if err != nil {
			return nil, err
		}
		if t == nil {
			return nil, nil // unknown member: defer
		}
		if join == nil {
			join = t
			continue
		}
		j, ok := object.CommonSupertype(c.schema.Hierarchy(), join, t)
		if !ok {
			return nil, fmt.Errorf("%w: %s members %s and %s have no common supertype", ErrTypecheck, what, join, t)
		}
		join = j
	}
	return join, nil
}

// binaryType types comparisons, boolean connectives and set operations.
func (c *checker) binaryType(x Binary, env map[string]object.Type) (object.Type, error) {
	lt, err := c.typeOf(x.L, env)
	if err != nil {
		return nil, err
	}
	rt, err := c.typeOf(x.R, env)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case OpAnd, OpOr:
		return object.BoolType, nil
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if lt != nil && rt != nil {
			if _, ok := object.CommonSupertype(c.schema.Hierarchy(), lt, rt); !ok {
				return nil, fmt.Errorf("%w: cannot compare %s with %s", ErrTypecheck, lt, rt)
			}
		}
		return object.BoolType, nil
	case OpIn:
		if rt != nil {
			elem, err := c.elementType(rt, x.R)
			if err != nil {
				return nil, err
			}
			if lt != nil && elem != nil {
				if _, ok := object.CommonSupertype(c.schema.Hierarchy(), lt, elem); !ok {
					return nil, fmt.Errorf("%w: %s cannot be a member of %s", ErrTypecheck, lt, rt)
				}
			}
		}
		return object.BoolType, nil
	case OpUnion, OpExcept, OpIntersect:
		// Section 4.2 rule 1 in action: set(integer) and set(union) do
		// not join.
		if lt != nil && rt != nil {
			j, ok := object.CommonSupertype(c.schema.Hierarchy(), lt, rt)
			if !ok {
				return nil, fmt.Errorf("%w: operands of %s have no common supertype (%s vs %s)", ErrTypecheck, x.Op, lt, rt)
			}
			if _, isSet := j.(object.SetType); !isSet {
				if _, isList := j.(object.ListType); !isList {
					return nil, fmt.Errorf("%w: %s applies to sets, not %s", ErrTypecheck, x.Op, j)
				}
			}
			return j, nil
		}
		return nil, nil
	default:
		return nil, nil
	}
}

// selectType types a select-from-where and returns set(projection type).
func (c *checker) selectType(sel SelectExpr, env map[string]object.Type) (object.Type, error) {
	inner := copyEnv(env)
	for _, b := range sel.From {
		switch {
		case b.Attr != "":
			inner[b.PosVar] = object.IntType
			if _, err := c.typeOf(b.Coll, inner); err != nil {
				return nil, err
			}
		case b.Base != nil:
			pe, ok := b.Base.(PathExpr)
			if !ok {
				return nil, fmt.Errorf("oql: from entry %s is not a path pattern", b.Base)
			}
			if _, err := c.typeOf(pe.Base, inner); err != nil {
				return nil, err
			}
			// Variables reached through patterns have union types computed
			// at execution (Section 4.3 point 2); statically unknown.
			for _, v := range patternVars(pe.Elems, scope{}) {
				if v.Sort == calculus.SortData {
					inner[v.Name] = nil
				}
			}
		default:
			ct, err := c.typeOf(b.Coll, inner)
			if err != nil {
				return nil, err
			}
			elem, err := c.elementType(ct, b.Coll)
			if err != nil {
				return nil, err
			}
			inner[b.Var] = elem
		}
	}
	if sel.Where != nil {
		if _, err := c.typeOf(sel.Where, inner); err != nil {
			return nil, err
		}
	}
	pt, err := c.typeOf(sel.Proj, inner)
	if err != nil {
		return nil, err
	}
	if pt == nil {
		return nil, nil
	}
	return object.SetOf(pt), nil
}

// elementType returns the member type of a collection type; collections
// include the heterogeneous-list view of tuples. nil input stays nil.
func (c *checker) elementType(t object.Type, at Expr) (object.Type, error) {
	switch ct := t.(type) {
	case nil:
		return nil, nil
	case object.SetType:
		return ct.Elem, nil
	case object.ListType:
		return ct.Elem, nil
	case object.TupleType:
		return object.HeterogeneousListType(ct).Elem, nil
	case object.UnionType:
		// Implicit selection: every alternative must be a collection.
		var elems []object.Type
		for _, alt := range ct.Alts() {
			et, err := c.elementType(alt.Type, at)
			if err != nil {
				return nil, err
			}
			if et == nil {
				return nil, nil
			}
			elems = append(elems, et)
		}
		return calculus.UnionOfTypes(elems), nil
	case object.ClassType:
		// Implicit dereference.
		sigma := c.classValueType(ct.Name)
		if sigma == nil {
			return nil, fmt.Errorf("%w: unknown class %s", ErrTypecheck, ct.Name)
		}
		return c.elementType(sigma, at)
	default:
		return nil, fmt.Errorf("%w: %s ranges over %s, which is not a collection", ErrTypecheck, at, t)
	}
}

// classValueType joins the value types of a class's extent.
func (c *checker) classValueType(class string) object.Type {
	var ts []object.Type
	for _, sub := range c.schema.Hierarchy().Subclasses(class) {
		if t, ok := c.schema.Hierarchy().TypeOf(sub); ok {
			ts = append(ts, t)
		}
	}
	if len(ts) == 0 {
		return nil
	}
	return calculus.UnionOfTypes(ts)
}

// pathType walks path elements over a static type. Pattern variables make
// the remainder unknown.
func (c *checker) pathType(t object.Type, elems []PatElem, env map[string]object.Type, at Expr) (object.Type, error) {
	cur := t
	for _, el := range elems {
		if cur == nil {
			// Unknown: still typecheck index expressions.
			if ix, ok := el.(IdxP); ok {
				if _, err := c.typeOf(ix.I, env); err != nil {
					return nil, err
				}
			}
			continue
		}
		switch x := el.(type) {
		case AttrP:
			nts := attrStepTypes(c.schema.Hierarchy(), cur, x.Name)
			if len(nts) == 0 {
				return nil, fmt.Errorf("%w: %s has no attribute %q in %s", ErrTypecheck, cur, x.Name, at)
			}
			cur = calculus.UnionOfTypes(nts)
		case IdxP:
			if _, err := c.typeOf(x.I, env); err != nil {
				return nil, err
			}
			et, err := c.elementType(cur, at)
			if err != nil {
				return nil, err
			}
			cur = et
		case DerefP:
			if cl, ok := cur.(object.ClassType); ok {
				cur = c.classValueType(cl.Name)
			} else if _, ok := cur.(object.AnyType); ok {
				cur = nil
			} else {
				return nil, fmt.Errorf("%w: dereference of non-object type %s in %s", ErrTypecheck, cur, at)
			}
		case AttrVarP, PathVarP, DotDotP, BindP:
			// Dynamic from here on.
			cur = nil
		}
	}
	return cur, nil
}

// attrStepTypes resolves one attribute step over a type with implicit
// selectors and implicit dereferencing.
func attrStepTypes(h *object.Hierarchy, t object.Type, name string) []object.Type {
	switch ct := t.(type) {
	case object.TupleType:
		if ft, ok := ct.Get(name); ok {
			return []object.Type{ft}
		}
		return nil
	case object.UnionType:
		if alt, ok := ct.Get(name); ok {
			return []object.Type{alt}
		}
		var out []object.Type
		for _, alt := range ct.Alts() {
			out = append(out, attrStepTypes(h, alt.Type, name)...)
		}
		return out
	case object.ClassType:
		var out []object.Type
		for _, sub := range h.Subclasses(ct.Name) {
			if sigma, ok := h.TypeOf(sub); ok {
				out = append(out, attrStepTypes(h, sigma, name)...)
			}
		}
		return out
	default:
		return nil
	}
}

// checkTextOperand verifies that contains applies: strings, objects (whose
// text the text operator extracts), unknown types, and union types with at
// least one textual alternative (Q5's "O₂SQL restricts val to type
// string").
func (c *checker) checkTextOperand(t object.Type, at Expr) error {
	switch ct := t.(type) {
	case nil:
		return nil
	case object.AtomicType:
		if ct.K == object.TypeString {
			return nil
		}
	case object.ClassType, object.AnyType, object.TupleType:
		return nil // complex logical objects go through text()
	case object.UnionType:
		for _, alt := range ct.Alts() {
			if c.checkTextOperand(alt.Type, at) == nil {
				return nil
			}
		}
	default:
		// lists, sets and non-string atoms are not searchable
	}
	return fmt.Errorf("%w: contains cannot search a %s (%s)", ErrTypecheck, t, at)
}

// callType types the built-in functions.
func (c *checker) callType(x Call, env map[string]object.Type) (object.Type, error) {
	var argTypes []object.Type
	for _, a := range x.Args {
		t, err := c.typeOf(a, env)
		if err != nil {
			return nil, err
		}
		argTypes = append(argTypes, t)
	}
	arg := func(i int) object.Type {
		if i < len(argTypes) {
			return argTypes[i]
		}
		return nil
	}
	switch x.Name {
	case "length", "count":
		return object.IntType, nil
	case "name", "text":
		return object.StringType, nil
	case "first", "last", "element":
		t := arg(0)
		if t == nil {
			return nil, nil
		}
		return c.elementType(t, x)
	case "set_to_list":
		t := arg(0)
		if st, ok := t.(object.SetType); ok {
			return object.ListOf(st.Elem), nil
		}
		if t == nil {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: set_to_list of %s", ErrTypecheck, t)
	case "flatten":
		return nil, nil
	default:
		return nil, nil // user functions and methods: dynamic
	}
}

func copyEnv(env map[string]object.Type) map[string]object.Type {
	out := make(map[string]object.Type, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}
