// Package lockcheck is a sgmldbvet fixture: receiver mutexes must be
// released on every path and never re-acquired.
package lockcheck

import "sync"

type store struct {
	mu sync.RWMutex
	n  int
}

func (s *store) goodDefer() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func (s *store) goodLinear() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *store) forgetsUnlock() {
	s.mu.Lock() // want "locked but not released on every path"
	s.n++
}

func (s *store) returnsWhileHeld(flag bool) int {
	s.mu.Lock()
	if flag {
		return s.n // want "returns while mu is held"
	}
	s.mu.Unlock()
	return 0
}

func (s *store) reacquires() {
	s.mu.Lock()
	s.mu.Lock() // want "Go mutexes are not reentrant"
	s.n++
	s.mu.Unlock()
}

func (s *store) lockedIncr() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

func (s *store) selfDeadlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockedIncr() // want "self-deadlock"
}

func (s *store) callsOtherUnlocked() {
	s.lockedIncr()
	s.lockedIncr()
}

func (s *store) allowedHold() {
	//lint:allow lockcheck fixture demonstrates suppression
	s.mu.Lock()
	s.n++
}
