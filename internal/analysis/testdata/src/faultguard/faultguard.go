// Package faultguard exercises the faultpoint analyzer: production code
// may declare injection sites as package-level vars and Hit them; the
// arming machinery is test-only and anything else is flagged.
package faultguard

import (
	"sgmldb/internal/analysis/testdata/src/faultguard/faultpoint"
)

// A package-level declaration is the sanctioned form.
var fpGood = faultpoint.New("guard/good")

// Grouped declarations are fine too.
var (
	fpOther = faultpoint.New("guard/other")
)

// hitOnPath is the sanctioned probe.
func hitOnPath() error {
	if err := fpGood.Hit(); err != nil {
		return err
	}
	return fpOther.Hit()
}

// declareDynamically creates a site at run time, defeating enumerability.
func declareDynamically(name string) *faultpoint.Point {
	return faultpoint.New(name) // want "faultpoint.New outside a package-level var"
}

// armInProduction reaches for the test-only machinery.
func armInProduction() {
	inject := faultpoint.Error(nil)              // want "faultpoint.Error is test-only"
	defer faultpoint.Arm("guard/good", inject)() // want "faultpoint.Arm is test-only"
}

// resetEverything is suppressible with an annotation like any analyzer.
func resetEverything() {
	//lint:allow faultpoint fixture demonstrates suppression
	faultpoint.DisarmAll()
}
