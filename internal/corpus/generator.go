// Package corpus generates deterministic synthetic SGML document
// collections for the benchmarks — the substitute for the paper's
// (unpublished) document corpora. Documents conform to the Figure 1
// article DTD; their text follows a Zipf word distribution over a
// synthetic vocabulary, so full-text selectivities resemble real
// collections.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"sgmldb/internal/calculus"
	"sgmldb/internal/dtdmap"
	"sgmldb/internal/sgml"
	"sgmldb/internal/text"
)

// Params controls generation. The zero value is adjusted to the defaults
// documented on each field.
type Params struct {
	Docs          int // number of articles (default 10)
	Sections      int // sections per article (default 5)
	Subsections   int // subsections per a2-section (default 2)
	Bodies        int // bodies per section/subsection (default 3)
	Words         int // words per paragraph (default 30)
	Authors       int // authors per article (default 3)
	Vocabulary    int // vocabulary size (default 1000)
	SubsectnEvery int // every n-th section uses the a2 branch (default 3)
	FigureEvery   int // every n-th body is a figure (default 4)
	Seed          int64
}

func (p Params) withDefaults() Params {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&p.Docs, 10)
	def(&p.Sections, 5)
	def(&p.Subsections, 2)
	def(&p.Bodies, 3)
	def(&p.Words, 30)
	def(&p.Authors, 3)
	def(&p.Vocabulary, 1000)
	def(&p.SubsectnEvery, 3)
	def(&p.FigureEvery, 4)
	return p
}

// ArticleDTD is the Figure 1 DTD (with reflabel relaxed to #IMPLIED, as
// the paper's own Figure 2 instance requires).
const ArticleDTD = `<!DOCTYPE article [
<!ELEMENT article - - (title, author+, affil, abstract, section+, acknowl)>
<!ATTLIST article status (final | draft) draft>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT author - O (#PCDATA)>
<!ELEMENT affil - O (#PCDATA)>
<!ELEMENT abstract - O (#PCDATA)>
<!ELEMENT section - O ((title, body+) | (title, body*, subsectn+))>
<!ELEMENT subsectn - O (title, body+)>
<!ELEMENT body - O (figure | paragr)>
<!ELEMENT figure - O (picture, caption?)>
<!ATTLIST figure label ID #IMPLIED>
<!ELEMENT picture - O EMPTY>
<!ATTLIST picture sizex NMTOKEN "16cm"
                  sizey NMTOKEN #IMPLIED
                  file ENTITY #IMPLIED>
<!ELEMENT caption O O (#PCDATA)>
<!ELEMENT paragr - O (#PCDATA)>
<!ATTLIST paragr reflabel IDREF #IMPLIED>
<!ELEMENT acknowl - O (#PCDATA)>
]>`

// LettersDTD is the Section 4.4 letters grammar, with the "&" connector.
const LettersDTD = `<!DOCTYPE letter [
<!ELEMENT letter - - (preamble, content)>
<!ELEMENT preamble - O (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT content - O (#PCDATA)>
]>`

// Generator produces documents and databases.
type Generator struct {
	params Params
	rng    *rand.Rand
	zipf   *rand.Zipf
	vocab  []string
}

// NewGenerator builds a deterministic generator.
func NewGenerator(p Params) *Generator {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := &Generator{
		params: p,
		rng:    rng,
		zipf:   rand.NewZipf(rng, 1.2, 1.0, uint64(p.Vocabulary-1)),
		vocab:  make([]string, p.Vocabulary),
	}
	for i := range g.vocab {
		g.vocab[i] = fmt.Sprintf("w%04d", i)
	}
	return g
}

// word draws one Zipf-distributed word.
func (g *Generator) word() string { return g.vocab[g.zipf.Uint64()] }

// sentence draws n words.
func (g *Generator) sentence(n int) string {
	ws := make([]string, n)
	for i := range ws {
		ws[i] = g.word()
	}
	return strings.Join(ws, " ")
}

// Article generates one SGML article instance (source text).
func (g *Generator) Article(id int) string {
	p := g.params
	var b strings.Builder
	status := "draft"
	if id%2 == 0 {
		status = "final"
	}
	fmt.Fprintf(&b, "<article status=\"%s\">\n", status)
	fmt.Fprintf(&b, "<title>Article %d on %s</title>\n", id, g.sentence(4))
	for a := 0; a < p.Authors; a++ {
		fmt.Fprintf(&b, "<author>Author %d-%d\n", id, a)
	}
	fmt.Fprintf(&b, "<affil>Institute %d\n", id%7)
	fmt.Fprintf(&b, "<abstract>%s\n", g.sentence(p.Words))
	for s := 0; s < p.Sections; s++ {
		fmt.Fprintf(&b, "<section><title>Section %d %s</title>\n", s, g.sentence(3))
		withSubs := p.SubsectnEvery > 0 && s%p.SubsectnEvery == p.SubsectnEvery-1
		if withSubs {
			for ss := 0; ss < p.Subsections; ss++ {
				fmt.Fprintf(&b, "<subsectn><title>Subsection %d.%d %s</title>\n", s, ss, g.sentence(2))
				g.bodies(&b, id, s*100+ss)
				b.WriteString("</subsectn>\n")
			}
		} else {
			g.bodies(&b, id, s)
		}
		b.WriteString("</section>\n")
	}
	fmt.Fprintf(&b, "<acknowl>%s\n", g.sentence(8))
	b.WriteString("</article>\n")
	return b.String()
}

func (g *Generator) bodies(b *strings.Builder, id, sec int) {
	p := g.params
	for i := 0; i < p.Bodies; i++ {
		if p.FigureEvery > 0 && i%p.FigureEvery == p.FigureEvery-1 {
			fmt.Fprintf(b, "<body><figure label=\"fig-%d-%d-%d\"><picture sizex=\"%dcm\">", id, sec, i, 4+i)
			fmt.Fprintf(b, "caption %s</figure></body>\n", g.sentence(4))
		} else {
			fmt.Fprintf(b, "<body><paragr>%s</body>\n", g.sentence(p.Words))
		}
	}
}

// Letter generates one letters-DTD instance; even ids put the recipient
// first.
func (g *Generator) Letter(id int) string {
	if id%2 == 0 {
		return fmt.Sprintf("<letter><preamble><to>Recipient %d<from>Sender %d</preamble><content>%s</letter>",
			id, id, g.sentence(10))
	}
	return fmt.Sprintf("<letter><preamble><from>Sender %d<to>Recipient %d</preamble><content>%s</letter>",
		id, id, g.sentence(10))
}

// Database is a generated, loaded corpus ready for querying.
type Database struct {
	Mapping *dtdmap.Mapping
	Loader  *dtdmap.Loader
	Env     *calculus.Env
	Index   *text.Index
	// RawBytes is the total size of the generated SGML sources (the
	// storage-overhead baseline of experiment B4).
	RawBytes int
}

// BuildArticles generates and loads an article corpus, wiring the text
// operator and the full-text index.
func BuildArticles(p Params) (*Database, error) {
	g := NewGenerator(p)
	dtd, err := sgml.ParseDTD(ArticleDTD)
	if err != nil {
		return nil, err
	}
	m, err := dtdmap.MapDTD(dtd)
	if err != nil {
		return nil, err
	}
	loader := dtdmap.NewLoader(m)
	db := &Database{Mapping: m, Loader: loader}
	for i := 0; i < g.params.Docs; i++ {
		src := g.Article(i)
		db.RawBytes += len(src)
		doc, err := sgml.ParseDocument(dtd, src)
		if err != nil {
			return nil, fmt.Errorf("corpus: article %d: %w", i, err)
		}
		if _, err := loader.Load(doc); err != nil {
			return nil, fmt.Errorf("corpus: article %d: %w", i, err)
		}
	}
	db.finish()
	return db, nil
}

// BuildLetters generates and loads a letters corpus.
func BuildLetters(p Params) (*Database, error) {
	g := NewGenerator(p)
	dtd, err := sgml.ParseDTD(LettersDTD)
	if err != nil {
		return nil, err
	}
	m, err := dtdmap.MapDTD(dtd)
	if err != nil {
		return nil, err
	}
	loader := dtdmap.NewLoader(m)
	db := &Database{Mapping: m, Loader: loader}
	for i := 0; i < g.params.Docs; i++ {
		src := g.Letter(i)
		db.RawBytes += len(src)
		doc, err := sgml.ParseDocument(dtd, src)
		if err != nil {
			return nil, fmt.Errorf("corpus: letter %d: %w", i, err)
		}
		if _, err := loader.Load(doc); err != nil {
			return nil, fmt.Errorf("corpus: letter %d: %w", i, err)
		}
	}
	db.finish()
	return db, nil
}

// finish wires the text operator and builds the index.
func (db *Database) finish() {
	inst := db.Loader.Instance
	db.Env = calculus.NewEnv(inst)
	db.Env.TextOf = dtdmap.TextOf
	db.Index = text.NewIndex()
	for _, o := range db.Loader.Documents() {
		db.Index.Add(text.DocID(o), dtdmap.TextOf(inst, o))
	}
}
