package oql

import (
	"fmt"

	"sgmldb/internal/algebra"
	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/text"
)

// Engine executes O₂SQL queries over a calculus environment: parse →
// typecheck (Section 4.2) → lower to the calculus (Section 5.2) →
// evaluate, either naively or through the algebraization of Section 5.4.
type Engine struct {
	Env *calculus.Env
	// Index, when set, serves as the full-text access path for contains.
	Index *text.Index
	// UseAlgebra evaluates through the (★) algebra plans instead of the
	// naive calculus interpreter.
	UseAlgebra bool
	// SkipTypecheck disables the static Section 4.2 checks.
	SkipTypecheck bool
	// MaxBranches bounds the (★) expansion (0 = default).
	MaxBranches int

	// planCache memoises compiled algebra plans per query source, so
	// repeated queries pay the (★) analysis once. Plans and the cache
	// share the engine's single-goroutine discipline.
	planCache map[string]*algebra.Plan
}

// New builds an engine over an environment.
func New(env *calculus.Env) *Engine { return &Engine{Env: env} }

// Query parses, checks and evaluates a query, returning its value: a set
// for select-from-where and bare pattern queries, the computed value for
// other expressions.
func (e *Engine) Query(src string) (object.Value, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if !e.SkipTypecheck && e.Env.Inst != nil {
		if err := Typecheck(e.Env.Inst.Schema(), ast); err != nil {
			return nil, err
		}
	}
	switch x := ast.(type) {
	case SelectExpr:
		res, err := e.runCached(src, ast)
		if err != nil {
			return nil, err
		}
		return res.ToSet(), nil
	case PathExpr:
		if patternHasVars(x.Elems) {
			res, err := e.runCached(src, ast)
			if err != nil {
				return nil, err
			}
			return res.ToSet(), nil
		}
		return e.value(ast)
	default:
		return e.value(ast)
	}
}

// Rows evaluates a select or pattern query and returns the raw result
// (head variables with their sorted bindings).
func (e *Engine) Rows(src string) (*calculus.Result, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if !e.SkipTypecheck && e.Env.Inst != nil {
		if err := Typecheck(e.Env.Inst.Schema(), ast); err != nil {
			return nil, err
		}
	}
	return e.runCached(src, ast)
}

// Lower exposes the calculus translation of a query (for inspection and
// for the benchmarks).
func (e *Engine) Lower(src string) (*calculus.Query, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(ast, e.rootNames())
}

// Plan exposes the algebra plan of a query.
func (e *Engine) Plan(src string) (*algebra.Plan, error) {
	q, err := e.Lower(src)
	if err != nil {
		return nil, err
	}
	return algebra.Translate(e.Env, q, algebra.Options{Index: e.Index, MaxBranches: e.MaxBranches})
}

func (e *Engine) rootNames() []string {
	if e.Env.Inst == nil {
		return nil
	}
	return e.Env.Inst.Schema().Roots()
}

// run lowers and evaluates a query expression.
func (e *Engine) run(ast Expr) (*calculus.Result, error) {
	q, err := Lower(ast, e.rootNames())
	if err != nil {
		return nil, err
	}
	if e.UseAlgebra {
		plan, err := algebra.Translate(e.Env, q, algebra.Options{Index: e.Index, MaxBranches: e.MaxBranches})
		if err != nil {
			return nil, err
		}
		ctx := algebra.NewCtx(e.Env)
		ctx.Index = e.Index
		return plan.Run(ctx)
	}
	return e.Env.Eval(q)
}

// runCached is run with plan caching keyed by the query source.
func (e *Engine) runCached(src string, ast Expr) (*calculus.Result, error) {
	if !e.UseAlgebra {
		return e.run(ast)
	}
	if plan, ok := e.planCache[src]; ok {
		ctx := algebra.NewCtx(e.Env)
		ctx.Index = e.Index
		return plan.Run(ctx)
	}
	q, err := Lower(ast, e.rootNames())
	if err != nil {
		return nil, err
	}
	plan, err := algebra.Translate(e.Env, q, algebra.Options{Index: e.Index, MaxBranches: e.MaxBranches})
	if err != nil {
		return nil, err
	}
	if e.planCache == nil {
		e.planCache = map[string]*algebra.Plan{}
	}
	e.planCache[src] = plan
	ctx := algebra.NewCtx(e.Env)
	ctx.Index = e.Index
	return plan.Run(ctx)
}

// value evaluates a bare (non-select) expression directly. A path step
// that does not apply to a named instance surfaces as the execution-time
// type error of Section 4.2 ("my_section.subsectns will return a type
// error detected at execution time").
func (e *Engine) value(ast Expr) (object.Value, error) {
	lw := &lowerer{}
	if roots := e.rootNames(); roots != nil {
		lw.roots = map[string]bool{}
		for _, r := range roots {
			lw.roots[r] = true
		}
	}
	t, err := lw.term(ast, scope{})
	if err != nil {
		return nil, err
	}
	v, err := e.Env.Term(t, calculus.Valuation{})
	if calculus.IsNoSuchPath(err) {
		return nil, fmt.Errorf("oql: execution-time type error: %v", err)
	}
	return v, err
}
