package sgmldb

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

// TestCodeRoundTrip (code_test.go) checks the mappings that exist;
// this file checks that no mapping is MISSING. It parses errors.go and
// code.go at test time, so adding a sentinel without a wire code — or
// a code no error can produce — fails here instead of degrading to
// UNKNOWN on the wire.

// sentinelByName mirrors errors.go by hand; the parse keeps it honest.
var sentinelByName = map[string]error{
	"ErrReadOnly":           ErrReadOnly,
	"ErrUnknownObject":      ErrUnknownObject,
	"ErrNoMapping":          ErrNoMapping,
	"ErrOverloaded":         ErrOverloaded,
	"ErrBudgetExceeded":     ErrBudgetExceeded,
	"ErrInternal":           ErrInternal,
	"ErrParse":              ErrParse,
	"ErrTypecheck":          ErrTypecheck,
	"ErrCorruptLog":         ErrCorruptLog,
	"ErrUnsupportedVersion": ErrUnsupportedVersion,
	"ErrDegraded":           ErrDegraded,
	"ErrNotPrimary":         ErrNotPrimary,
	"ErrSeqTruncated":       ErrSeqTruncated,
	"ErrStaleTerm":          ErrStaleTerm,
	"ErrReplicaGap":         ErrReplicaGap,
	"ErrNotFollower":        ErrNotFollower,
}

// declaredSentinels parses errors.go for its package-level Err… names.
func declaredSentinels(t *testing.T) []string {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "errors.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing errors.go: %v", err)
	}
	var names []string
	for _, d := range f.Decls {
		gen, ok := d.(*ast.GenDecl)
		if !ok || gen.Tok != token.VAR {
			continue
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if strings.HasPrefix(n.Name, "Err") {
					names = append(names, n.Name)
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("errors.go declares no sentinels — parse went wrong")
	}
	return names
}

// declaredCodes parses code.go for its Code… constant values.
func declaredCodes(t *testing.T) map[string]string {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "code.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing code.go: %v", err)
	}
	codes := map[string]string{}
	for _, d := range f.Decls {
		gen, ok := d.(*ast.GenDecl)
		if !ok || gen.Tok != token.CONST {
			continue
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, n := range vs.Names {
				if !strings.HasPrefix(n.Name, "Code") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("code.go: unquoting %s: %v", lit.Value, err)
				}
				codes[n.Name] = v
			}
		}
	}
	if len(codes) == 0 {
		t.Fatal("code.go declares no codes — parse went wrong")
	}
	return codes
}

func TestCodeTaxonomyComplete(t *testing.T) {
	declared := declaredSentinels(t)
	for _, name := range declared {
		if _, ok := sentinelByName[name]; !ok {
			t.Errorf("errors.go declares %s but sentinelByName here does not: add it (and its Code arm, its Code… const, and the DESIGN.md row)", name)
		}
	}
	if len(sentinelByName) != len(declared) {
		t.Errorf("sentinelByName has %d entries, errors.go declares %d sentinels", len(sentinelByName), len(declared))
	}

	produced := map[string]string{ // code value -> what produces it
		CodeOK:       "nil",
		CodeCanceled: "context.Canceled",
		CodeDeadline: "context.DeadlineExceeded",
		CodeUnknown:  "unclassified errors",
	}
	for name, sentinel := range sentinelByName {
		code := Code(fmt.Errorf("wrapped: %w", sentinel))
		if code == CodeOK || code == CodeUnknown {
			t.Errorf("sentinel %s has no Code(err) mapping (got %q)", name, code)
			continue
		}
		if prev, dup := produced[code]; dup {
			t.Errorf("sentinel %s and %s share wire code %q; codes must be distinct", name, prev, code)
		}
		produced[code] = name
	}

	// Every declared code must be reachable from some input.
	for name, value := range declaredCodes(t) {
		if _, ok := produced[value]; !ok {
			t.Errorf("code.go declares %s = %q but no error produces it", name, value)
		}
	}
}
