package sgml

import (
	"os"
	"strings"
	"testing"
)

func loadFigure2(t *testing.T) *Document {
	t.Helper()
	dtd := loadFigure1(t)
	src, err := os.ReadFile("../../testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(dtd, string(src))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestFigure2Document reproduces experiment F2: parsing the paper's
// Figure 2 instance, whose author/affil/abstract/acknowl end tags are
// omitted as the DTD's "- O" minimisation permits.
func TestFigure2Document(t *testing.T) {
	doc := loadFigure2(t)
	root := doc.Root
	if root.Name != "article" {
		t.Fatalf("root = %s", root.Name)
	}
	if v, _ := root.Attr("status"); v != "final" {
		t.Errorf("status = %q", v)
	}
	kids := root.ChildElements()
	names := make([]string, len(kids))
	for i, k := range kids {
		names[i] = k.Name
	}
	want := []string{"title", "author", "author", "author", "author",
		"affil", "abstract", "section", "section", "acknowl"}
	if len(names) != len(want) {
		t.Fatalf("children = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("children = %v, want %v", names, want)
		}
	}
	if got := kids[0].Text(); got != "From Structured Documents to Novel Query Facilities" {
		t.Errorf("title text = %q", got)
	}
	if got := kids[1].Text(); got != "V. Christophides" {
		t.Errorf("author text = %q", got)
	}
	// Sections: title + one body with one paragr.
	sec := kids[7]
	secKids := sec.ChildElements()
	if len(secKids) != 2 || secKids[0].Name != "title" || secKids[1].Name != "body" {
		t.Fatalf("section children: %v", secKids)
	}
	if got := secKids[0].Text(); got != "Introduction" {
		t.Errorf("section title = %q", got)
	}
	par := secKids[1].ChildElements()
	if len(par) != 1 || par[0].Name != "paragr" {
		t.Fatalf("body children")
	}
	if !strings.Contains(par[0].Text(), "organized as follows") {
		t.Errorf("paragraph text = %q", par[0].Text())
	}
	// The document-wide text extraction.
	if !strings.Contains(root.Text(), "SGML preliminaries") {
		t.Error("document Text()")
	}
}

func TestDocumentWithInlineDoctype(t *testing.T) {
	src := `<!DOCTYPE memo [
<!ELEMENT memo - - (para+)>
<!ELEMENT para - O (#PCDATA)>
]>
<memo><para>hello<para>world</memo>`
	doc, err := ParseDocument(nil, src)
	if err != nil {
		t.Fatal(err)
	}
	ps := doc.Root.ChildElements()
	if len(ps) != 2 || ps[0].Text() != "hello" || ps[1].Text() != "world" {
		t.Errorf("paras = %v", ps)
	}
	if _, err := ParseDocument(nil, `<memo>x</memo>`); err == nil {
		t.Error("no DTD anywhere must fail")
	}
}

func TestOmittedStartTagInference(t *testing.T) {
	// caption is declared O O: its start tag may be implied when the
	// model requires it.
	dtd, err := ParseDTD(`
<!ELEMENT fig - - (picture, caption)>
<!ELEMENT picture - O EMPTY>
<!ELEMENT caption O O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(dtd, `<fig><picture>the caption text</fig>`)
	if err != nil {
		t.Fatal(err)
	}
	kids := doc.Root.ChildElements()
	if len(kids) != 2 || kids[1].Name != "caption" {
		t.Fatalf("children = %v", kids)
	}
	if !kids[1].Implied {
		t.Error("caption start tag must be marked implied")
	}
	if got := kids[1].Text(); got != "the caption text" {
		t.Errorf("caption text = %q", got)
	}
}

func TestValidationErrors(t *testing.T) {
	dtd := loadFigure1(t)
	cases := []struct {
		name string
		src  string
	}{
		{"wrong document element", `<title>x</title>`},
		{"undeclared element", `<article status="final"><bogus></bogus></article>`},
		{"incomplete content", `<article status="final"><title>t</title></article>`},
		{"element out of order", `<article><author>a<title>t</title></article>`},
		{"bad enum value", `<article status="published"><title>t</title></article>`},
		{"undeclared attribute", `<article color="red"><title>t</title></article>`},
		{"unclosed non-omissible", `<article status="final"><title>t</title>`},
		{"data where forbidden", `<article>stray text</article>`},
		{"mismatched end tag", `<article><title>t</wrong></article>`},
		{"empty document", `   `},
	}
	for _, c := range cases {
		if _, err := ParseDocument(dtd, c.src); err == nil {
			t.Errorf("%s: invalid document accepted", c.name)
		}
	}
}

func TestAttributeDefaulting(t *testing.T) {
	dtd := loadFigure1(t)
	src := `<article>
<title>t</title><author>a<affil>f<abstract>ab
<section><title>s</title>
<body><figure label="f1"><picture></figure></body>
</section>
<acknowl>ack
</article>`
	doc, err := ParseDocument(dtd, src)
	if err != nil {
		t.Fatal(err)
	}
	// article status defaults to draft.
	if v, ok := doc.Root.Attr("status"); !ok || v != "draft" {
		t.Errorf("defaulted status = %q %v", v, ok)
	}
	// picture sizex defaults to 16cm; sizey (#IMPLIED) stays absent.
	pics := doc.ElementsByName("picture")
	if len(pics) != 1 {
		t.Fatal("picture count")
	}
	if v, ok := pics[0].Attr("sizex"); !ok || v != "16cm" {
		t.Errorf("sizex = %q", v)
	}
	if _, ok := pics[0].Attr("sizey"); ok {
		t.Error("sizey must stay absent")
	}
	// figure captured the ID.
	if doc.IDs["f1"] == nil || doc.IDs["f1"].Name != "figure" {
		t.Error("ID index")
	}
}

func TestMinimisedEnumAttribute(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT doc - - (#PCDATA)>
<!ATTLIST doc status (final | draft) draft>`)
	if err != nil {
		t.Fatal(err)
	}
	// SGML minimised attribute: <doc final> means status="final".
	doc, err := ParseDocument(dtd, `<doc final>x</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.Attr("status"); v != "final" {
		t.Errorf("minimised attribute = %q", v)
	}
}

func TestIDREFResolution(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT doc - - (fig+, para+)>
<!ELEMENT fig - O EMPTY>
<!ATTLIST fig label ID #REQUIRED>
<!ELEMENT para - O (#PCDATA)>
<!ATTLIST para ref IDREF #IMPLIED
               refs IDREFS #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(dtd, `<doc><fig label="a"><fig label="b"><para ref="a">x<para refs="a b">y</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.IDs) != 2 {
		t.Errorf("IDs = %v", doc.IDs)
	}
	if _, err := ParseDocument(dtd, `<doc><fig label="a"><para ref="zz">x</doc>`); err == nil {
		t.Error("dangling IDREF accepted")
	}
	if _, err := ParseDocument(dtd, `<doc><fig label="a"><fig label="a"><para>x</doc>`); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := ParseDocument(dtd, `<doc><fig label="a"><para refs="a zz">x</doc>`); err == nil {
		t.Error("dangling IDREFS accepted")
	}
	// Missing #REQUIRED attribute.
	if _, err := ParseDocument(dtd, `<doc><fig><para>x</doc>`); err == nil {
		t.Error("missing required attribute accepted")
	}
}

func TestEntitySubstitution(t *testing.T) {
	dtd, err := ParseDTD(`
<!ENTITY lab "I.N.R.I.A.">
<!ENTITY img SYSTEM "/images/one">
<!ELEMENT doc - - (#PCDATA)>
<!ATTLIST doc file CDATA #IMPLIED>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(dtd, `<doc file="&img;">Work done at &lab; &amp; CNAM &#33;</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.Text(); got != "Work done at I.N.R.I.A. & CNAM !" {
		t.Errorf("text = %q", got)
	}
	if v, _ := doc.Root.Attr("file"); v != "/images/one" {
		t.Errorf("external entity in attribute = %q", v)
	}
	if _, err := ParseDocument(dtd, `<doc>&undeclared;</doc>`); err == nil {
		t.Error("undeclared entity accepted")
	}
	// Standard character entities need no declaration.
	doc2, err := ParseDocument(dtd, `<doc>&lt;tag&gt; &quot;q&quot; &apos;a&apos;</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc2.Root.Text(); got != `<tag> "q" 'a'` {
		t.Errorf("char entities = %q", got)
	}
}

func TestCommentsAndPIsInInstance(t *testing.T) {
	dtd, _ := ParseDTD(`<!ELEMENT doc - - (#PCDATA)>`)
	doc, err := ParseDocument(dtd, `<doc><!-- note -->text<?pi stuff?> more</doc>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.Text(); got != "text more" {
		t.Errorf("text = %q", got)
	}
}

func TestAndConnectorDocument(t *testing.T) {
	dtd, err := ParseDTD(`
<!ELEMENT letter - - (preamble, content)>
<!ELEMENT preamble - O (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT content - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`<letter><preamble><to>Alice<from>Bob</preamble><content>hi</letter>`,
		`<letter><preamble><from>Bob<to>Alice</preamble><content>hi</letter>`,
	} {
		doc, err := ParseDocument(dtd, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		pre := doc.Root.ChildElements()[0]
		if len(pre.ChildElements()) != 2 {
			t.Error("preamble children")
		}
	}
	if _, err := ParseDocument(dtd, `<letter><preamble><to>A</preamble><content>x</letter>`); err == nil {
		t.Error("missing & member accepted")
	}
}

func TestElementStringNormalises(t *testing.T) {
	doc := loadFigure2(t)
	out := doc.Root.String()
	// All tags explicit in the normalised rendering.
	if strings.Count(out, "</author>") != 4 {
		t.Errorf("normalised output must close all authors:\n%s", out)
	}
	if !strings.HasPrefix(out, `<article status="final">`) {
		t.Errorf("prefix = %.60s", out)
	}
	// The rendering re-parses to the same structure.
	doc2, err := ParseDocument(doc.DTD, out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(doc2.Root.ChildElements()) != len(doc.Root.ChildElements()) {
		t.Error("round trip changed structure")
	}
}

func TestDoctypePrologueSplitting(t *testing.T) {
	if i := indexDoctype(`  <!doctype x [`); i != 2 {
		t.Errorf("indexDoctype = %d", i)
	}
	if _, err := doctypeEnd(`<!DOCTYPE x [ <!ELEMENT`, 0); err == nil {
		t.Error("unterminated prologue accepted")
	}
	end, err := doctypeEnd(`<!DOCTYPE x [ <!ELEMENT y - - (#PCDATA)> ]> <y>`, 0)
	if err != nil || !strings.HasPrefix(`<!DOCTYPE x [ <!ELEMENT y - - (#PCDATA)> ]> <y>`[end:], " <y>") {
		t.Errorf("doctypeEnd = %d %v", end, err)
	}
}

func TestDeepNestingGuard(t *testing.T) {
	dtd, err := ParseDTD(`<!ELEMENT box - - (box | #PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := 0; i < maxNesting+10; i++ {
		b.WriteString("<box>")
	}
	b.WriteString("x")
	for i := 0; i < maxNesting+10; i++ {
		b.WriteString("</box>")
	}
	if _, err := ParseDocument(dtd, b.String()); err == nil {
		t.Error("over-deep nesting accepted")
	}
}
