package oql

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"

	"sgmldb/internal/algebra"
	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/text"
)

// Engine executes O₂SQL queries over a calculus environment: parse →
// typecheck (Section 4.2) → lower to the calculus (Section 5.2) →
// evaluate, either naively or through the algebraization of Section 5.4.
//
// Concurrency: the query methods (Query, QueryContext, Rows, RowsContext,
// Prepare and prepared Run/Rows) are safe for concurrent use as long as
// the underlying instance follows the single-writer/multi-reader
// discipline — the sgmldb facade serialises writers against them. The
// configuration fields (UseAlgebra, MaxBranches, Workers, …) must not be
// changed while queries are in flight.
type Engine struct {
	Env *calculus.Env
	// Index, when set, serves as the full-text access path for contains.
	Index *text.Index
	// UseAlgebra evaluates through the (★) algebra plans instead of the
	// naive calculus interpreter.
	UseAlgebra bool
	// SkipTypecheck disables the static Section 4.2 checks.
	SkipTypecheck bool
	// MaxBranches bounds the (★) expansion (0 = default).
	MaxBranches int
	// Workers bounds intra-query parallelism of algebra scans:
	// 0 uses GOMAXPROCS, 1 evaluates serially, n > 1 uses n goroutines.
	Workers int
	// PlanCacheSize bounds the plan cache (0 = DefaultPlanCacheSize). A
	// long-lived serving process sees unbounded query-text churn; the
	// cache keeps the hot plans and evicts the least recently used.
	PlanCacheSize int

	// mu guards the plan cache; queries from many goroutines share it.
	mu sync.RWMutex
	// plans memoises compiled algebra plans per query source, so repeated
	// queries pay the (★) analysis once. Entries record the schema
	// version they were compiled against and are recompiled when the
	// schema moves (a document load can add persistence roots, which
	// changes the candidate valuations of unbound variables). The cache
	// is a bounded LRU: entries is the by-source index into order, whose
	// front is the most recently used plan.
	plans struct {
		entries map[string]*list.Element
		order   list.List // of *planEntry
	}
}

// planEntry is one plan cache entry with its compilation version.
type planEntry struct {
	src     string
	plan    *algebra.Plan
	version uint64
}

// DefaultPlanCacheSize is the plan-cache bound when PlanCacheSize is 0.
const DefaultPlanCacheSize = 128

// New builds an engine over an environment.
func New(env *calculus.Env) *Engine { return &Engine{Env: env} }

// schemaVersion reports the current schema mutation counter (0 when the
// engine has no instance).
func (e *Engine) schemaVersion() uint64 {
	if e.Env.Inst == nil {
		return 0
	}
	return e.Env.Inst.Schema().Version()
}

// workers resolves the Workers setting to a concrete pool size.
func (e *Engine) workers() int {
	if e.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// newCtx builds one plan-execution context carrying ctx for cancellation.
func (e *Engine) newCtx(ctx context.Context) *algebra.Ctx {
	c := algebra.NewCtx(e.Env.WithContext(ctx))
	c.Index = e.Index
	c.Workers = e.workers()
	return c
}

// Query parses, checks and evaluates a query, returning its value: a set
// for select-from-where and bare pattern queries, the computed value for
// other expressions.
func (e *Engine) Query(src string) (object.Value, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: evaluation observes ctx and
// returns its error promptly after cancellation.
func (e *Engine) QueryContext(ctx context.Context, src string) (object.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ast, err := e.parseCheck(src)
	if err != nil {
		return nil, err
	}
	switch x := ast.(type) {
	case SelectExpr:
		res, err := e.runCached(ctx, src, ast)
		if err != nil {
			return nil, err
		}
		return res.ToSet(), nil
	case PathExpr:
		if patternHasVars(x.Elems) {
			res, err := e.runCached(ctx, src, ast)
			if err != nil {
				return nil, err
			}
			return res.ToSet(), nil
		}
		return e.value(ctx, ast)
	default:
		return e.value(ctx, ast)
	}
}

// Rows evaluates a select or pattern query and returns the raw result
// (head variables with their sorted bindings).
func (e *Engine) Rows(src string) (*calculus.Result, error) {
	return e.RowsContext(context.Background(), src)
}

// RowsContext is Rows under a context.
func (e *Engine) RowsContext(ctx context.Context, src string) (*calculus.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ast, err := e.parseCheck(src)
	if err != nil {
		return nil, err
	}
	return e.runCached(ctx, src, ast)
}

// parseCheck parses the source and runs the static checks.
func (e *Engine) parseCheck(src string) (Expr, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if !e.SkipTypecheck && e.Env.Inst != nil {
		if err := Typecheck(e.Env.Inst.Schema(), ast); err != nil {
			return nil, err
		}
	}
	return ast, nil
}

// Lower exposes the calculus translation of a query (for inspection and
// for the benchmarks).
func (e *Engine) Lower(src string) (*calculus.Query, error) {
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(ast, e.rootNames())
}

// Plan exposes the algebra plan of a query.
func (e *Engine) Plan(src string) (*algebra.Plan, error) {
	q, err := e.Lower(src)
	if err != nil {
		return nil, err
	}
	return algebra.Translate(e.Env, q, algebra.Options{Index: e.Index, MaxBranches: e.MaxBranches})
}

func (e *Engine) rootNames() []string {
	if e.Env.Inst == nil {
		return nil
	}
	return e.Env.Inst.Schema().Roots()
}

// run lowers and evaluates a query expression.
func (e *Engine) run(ctx context.Context, ast Expr) (*calculus.Result, error) {
	q, err := Lower(ast, e.rootNames())
	if err != nil {
		return nil, err
	}
	if e.UseAlgebra {
		plan, err := algebra.Translate(e.Env, q, algebra.Options{Index: e.Index, MaxBranches: e.MaxBranches})
		if err != nil {
			return nil, err
		}
		return plan.Run(e.newCtx(ctx))
	}
	return e.Env.EvalContext(ctx, q)
}

// runCached is run with plan caching keyed by the query source.
func (e *Engine) runCached(ctx context.Context, src string, ast Expr) (*calculus.Result, error) {
	if !e.UseAlgebra {
		return e.run(ctx, ast)
	}
	plan, err := e.cachedPlan(src, ast)
	if err != nil {
		return nil, err
	}
	return plan.Run(e.newCtx(ctx))
}

// cachedPlan returns the compiled plan for src, compiling (or recompiling,
// if the schema changed underneath the cached entry) outside the lock.
func (e *Engine) cachedPlan(src string, ast Expr) (*algebra.Plan, error) {
	version := e.schemaVersion()
	if plan, ok := e.lookupPlan(src, version); ok {
		return plan, nil
	}
	q, err := Lower(ast, e.rootNames())
	if err != nil {
		return nil, err
	}
	plan, err := algebra.Translate(e.Env, q, algebra.Options{Index: e.Index, MaxBranches: e.MaxBranches})
	if err != nil {
		return nil, err
	}
	e.storePlan(src, plan, version)
	return plan, nil
}

// planCacheCap resolves the configured cache bound.
func (e *Engine) planCacheCap() int {
	if e.PlanCacheSize > 0 {
		return e.PlanCacheSize
	}
	return DefaultPlanCacheSize
}

// lookupPlan returns the cached plan for src if it was compiled against
// the current schema version, marking it most recently used. A stale
// entry (schema moved underneath it) is dropped so the recompiled plan
// re-enters at the front.
func (e *Engine) lookupPlan(src string, version uint64) (*algebra.Plan, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.plans.entries[src]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*planEntry)
	if ent.version != version {
		e.plans.order.Remove(el)
		delete(e.plans.entries, src)
		return nil, false
	}
	e.plans.order.MoveToFront(el)
	return ent.plan, true
}

// storePlan inserts (or refreshes) a compiled plan at the front of the
// LRU order, evicting from the back beyond the cache bound.
func (e *Engine) storePlan(src string, plan *algebra.Plan, version uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plans.entries == nil {
		e.plans.entries = map[string]*list.Element{}
	}
	if el, ok := e.plans.entries[src]; ok {
		ent := el.Value.(*planEntry)
		ent.plan, ent.version = plan, version
		e.plans.order.MoveToFront(el)
		return
	}
	e.plans.entries[src] = e.plans.order.PushFront(&planEntry{src: src, plan: plan, version: version})
	for e.plans.order.Len() > e.planCacheCap() {
		back := e.plans.order.Back()
		e.plans.order.Remove(back)
		delete(e.plans.entries, back.Value.(*planEntry).src)
	}
}

// PlanCacheLen reports the number of cached plans.
func (e *Engine) PlanCacheLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.plans.order.Len()
}

// planCacheKeys lists the cached query sources in recency order (most
// recent first); test hook.
func (e *Engine) planCacheKeys() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for el := e.plans.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*planEntry).src)
	}
	return out
}

// Prepared is a query whose front-end work — parsing, typechecking,
// lowering to the calculus and (in algebra mode) plan compilation — has
// been done once. Run and Rows replay only the evaluation. A Prepared is
// safe for concurrent use; it recompiles its plan transparently if the
// schema has changed since preparation (e.g. after a document load).
type Prepared struct {
	engine *Engine
	src    string
	ast    Expr
	bare   bool // bare expression: evaluated directly, no row form

	mu      sync.RWMutex
	lowered *calculus.Query
	plan    *algebra.Plan // nil in naive-calculus mode
	version uint64
}

// Prepare parses, typechecks and compiles a query for repeated execution.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	ast, err := e.parseCheck(src)
	if err != nil {
		return nil, err
	}
	p := &Prepared{engine: e, src: src, ast: ast}
	switch x := ast.(type) {
	case SelectExpr:
	case PathExpr:
		if !patternHasVars(x.Elems) {
			p.bare = true
			return p, nil
		}
	default:
		p.bare = true
		return p, nil
	}
	if err := p.compile(e.schemaVersion()); err != nil {
		return nil, err
	}
	return p, nil
}

// compile (re)lowers the query and, in algebra mode, rebuilds its plan,
// recording the schema version it compiled against.
func (p *Prepared) compile(version uint64) error {
	e := p.engine
	q, err := Lower(p.ast, e.rootNames())
	if err != nil {
		return err
	}
	var plan *algebra.Plan
	if e.UseAlgebra {
		plan, err = algebra.Translate(e.Env, q, algebra.Options{Index: e.Index, MaxBranches: e.MaxBranches})
		if err != nil {
			return err
		}
	}
	p.mu.Lock()
	p.lowered, p.plan, p.version = q, plan, version
	p.mu.Unlock()
	return nil
}

// Source returns the query text the statement was prepared from.
func (p *Prepared) Source() string { return p.src }

// Run evaluates the prepared query and returns its value, like
// Engine.QueryContext but without re-doing the front-end work.
func (p *Prepared) Run(ctx context.Context) (object.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.bare {
		return p.engine.value(ctx, p.ast)
	}
	res, err := p.rows(ctx)
	if err != nil {
		return nil, err
	}
	return res.ToSet(), nil
}

// Rows evaluates the prepared query and returns the raw result. It
// reports an error for bare expressions that have no row form.
func (p *Prepared) Rows(ctx context.Context) (*calculus.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.bare {
		return nil, fmt.Errorf("oql: prepared query %q has no row form", p.src)
	}
	return p.rows(ctx)
}

func (p *Prepared) rows(ctx context.Context) (*calculus.Result, error) {
	e := p.engine
	version := e.schemaVersion()
	p.mu.RLock()
	q, plan := p.lowered, p.plan
	fresh := p.version == version && (plan != nil) == e.UseAlgebra
	p.mu.RUnlock()
	if !fresh {
		// The schema moved since compilation (a document load can add
		// persistence roots, changing the candidate valuations of unbound
		// variables), or the engine's evaluation mode was switched:
		// recompile against the current state.
		if err := p.compile(version); err != nil {
			return nil, err
		}
		p.mu.RLock()
		q, plan = p.lowered, p.plan
		p.mu.RUnlock()
	}
	if plan == nil {
		return e.Env.EvalContext(ctx, q)
	}
	return plan.Run(e.newCtx(ctx))
}

// value evaluates a bare (non-select) expression directly. A path step
// that does not apply to a named instance surfaces as the execution-time
// type error of Section 4.2 ("my_section.subsectns will return a type
// error detected at execution time").
func (e *Engine) value(ctx context.Context, ast Expr) (object.Value, error) {
	lw := &lowerer{}
	if roots := e.rootNames(); roots != nil {
		lw.roots = map[string]bool{}
		for _, r := range roots {
			lw.roots[r] = true
		}
	}
	t, err := lw.term(ast, scope{})
	if err != nil {
		return nil, err
	}
	v, err := e.Env.WithContext(ctx).Term(t, calculus.Valuation{})
	if calculus.IsNoSuchPath(err) {
		return nil, fmt.Errorf("oql: execution-time type error: %w", err)
	}
	return v, err
}
