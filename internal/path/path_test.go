package path

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/store"
)

func TestStepValuesRoundTrip(t *testing.T) {
	steps := []Step{
		Attr("title"), Index(3), Deref(), Member(object.Int(7)),
		Member(object.String_("x")), Attr("a1"), Index(0),
	}
	for _, s := range steps {
		got, err := StepFromValue(s.Value())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !stepEqual(got, s) {
			t.Errorf("round trip %s -> %s", s, got)
		}
	}
	if _, err := StepFromValue(object.Int(1)); err == nil {
		t.Error("non-union step accepted")
	}
	if _, err := StepFromValue(object.NewUnion("bogus", object.Int(1))); err == nil {
		t.Error("unknown marker accepted")
	}
	if _, err := StepFromValue(object.NewUnion("attr", object.Int(1))); err == nil {
		t.Error("bad attr payload accepted")
	}
	if _, err := StepFromValue(object.NewUnion("index", object.String_("x"))); err == nil {
		t.Error("bad index payload accepted")
	}
}

func TestPathStringAndParse(t *testing.T) {
	// The paper's example: .sections[0].subsectns[0], length 4.
	p := New(Attr("sections"), Index(0), Attr("subsectns"), Index(0))
	if p.String() != ".sections[0].subsectns[0]" {
		t.Errorf("String = %s", p)
	}
	if p.Len() != 4 {
		t.Errorf("length(P) = %d, want 4", p.Len())
	}
	// P[0:1] = .sections[0] (the paper's inclusive projection on the
	// first two steps).
	if got := p.Slice(0, 2); got.String() != ".sections[0]" {
		t.Errorf("P[0:1] = %s", got)
	}
	parsed, err := Parse(".sections[0].subsectns[0]")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(p) {
		t.Errorf("Parse = %s", parsed)
	}
	// All step kinds round trip through String/Parse.
	q := New(Deref(), Attr("a"), Index(12), Member(object.String_("k")), Member(object.Int(3)), Deref())
	parsed2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if !parsed2.Equal(q) {
		t.Errorf("round trip %s -> %s", q, parsed2)
	}
	// Empty path.
	if Empty.String() != "ε" {
		t.Error("empty path renders ε")
	}
	for _, s := range []string{"", "ε", "  "} {
		e, err := Parse(s)
		if err != nil || e.Len() != 0 {
			t.Errorf("Parse(%q) = %v %v", s, e, err)
		}
	}
	for _, bad := range []string{".", "[x]", "[3", "{", "{zz}", "junk", ".a..b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
	// Member literal forms.
	for _, src := range []string{`{true}`, `{false}`, `{"s"}`, `{3}`, `{2.5}`} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestPathOps(t *testing.T) {
	p := New(Attr("a"), Index(1))
	q := p.Append(Deref())
	if p.Len() != 2 || q.Len() != 3 {
		t.Error("Append must not mutate")
	}
	if got := p.Concat(New(Attr("b"))); got.String() != ".a[1].b" {
		t.Errorf("Concat = %s", got)
	}
	if !q.HasPrefix(p) || p.HasPrefix(q) {
		t.Error("HasPrefix")
	}
	if !p.HasPrefix(Empty) {
		t.Error("empty path prefixes everything")
	}
	if p.Slice(-3, 99).String() != ".a[1]" {
		t.Error("Slice clamps")
	}
	if p.Slice(1, 1).Len() != 0 {
		t.Error("empty slice")
	}
	if p.Equal(New(Attr("a"), Index(2))) {
		t.Error("different index must differ")
	}
	if p.Equal(New(Attr("a"))) {
		t.Error("different length must differ")
	}
	if !stepEqual(Member(object.Int(1)), Member(object.Int(1))) ||
		stepEqual(Member(object.Int(1)), Member(object.Int(2))) {
		t.Error("member step equality")
	}
}

func TestPathAsFirstClassValue(t *testing.T) {
	p := New(Attr("sections"), Index(0))
	v := p.Value()
	// length(P) is the list length.
	if v.(*object.List).Len() != 2 {
		t.Error("path value length")
	}
	back, err := FromValue(v)
	if err != nil || !back.Equal(p) {
		t.Errorf("FromValue = %v %v", back, err)
	}
	// Sets of paths dedup and subtract — the machinery behind Q4.
	q := New(Attr("sections"), Index(1))
	s1 := object.NewSet(p.Value(), q.Value(), p.Value())
	if s1.Len() != 2 {
		t.Error("path set dedup")
	}
	s2 := object.NewSet(p.Value())
	diff := s1.Diff(s2)
	if diff.Len() != 1 {
		t.Fatalf("diff = %s", diff)
	}
	got, _ := FromValue(diff.At(0))
	if !got.Equal(q) {
		t.Errorf("diff = %s", got)
	}
	if !IsPathValue(v) || !IsStepValue(v.(*object.List).At(0)) {
		t.Error("Is*Value")
	}
	if IsPathValue(object.Int(3)) {
		t.Error("IsPathValue on atom")
	}
	if p.Key() == q.Key() {
		t.Error("Key collision")
	}
}

// letterDB builds a small database: a root object with a tuple value
// containing a list, a set, a union and a reference to another object.
func letterDB(t *testing.T) (*store.Instance, object.OID) {
	t.Helper()
	s := store.NewSchema()
	if err := s.AddClass("Doc", object.TupleOf(
		object.TField{Name: "title", Type: object.StringType},
		object.TField{Name: "items", Type: object.ListOf(object.IntType)},
		object.TField{Name: "tags", Type: object.SetOf(object.StringType)},
		object.TField{Name: "body", Type: object.UnionOf(
			object.TField{Name: "fig", Type: object.IntType},
			object.TField{Name: "par", Type: object.StringType})},
		object.TField{Name: "next", Type: object.Class("Doc")},
	)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRoot("MyDoc", object.Class("Doc")); err != nil {
		t.Fatal(err)
	}
	in := store.NewInstance(s)
	d2, err := in.NewObject("Doc", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("old")},
		object.Field{Name: "items", Value: object.NewList()},
		object.Field{Name: "tags", Value: object.NewSet()},
		object.Field{Name: "body", Value: object.NewUnion("par", object.String_("text2"))},
		object.Field{Name: "next", Value: object.Nil{}},
	))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := in.NewObject("Doc", object.NewTuple(
		object.Field{Name: "title", Value: object.String_("new")},
		object.Field{Name: "items", Value: object.NewList(object.Int(10), object.Int(20))},
		object.Field{Name: "tags", Value: object.NewSet(object.String_("x"), object.String_("y"))},
		object.Field{Name: "body", Value: object.NewUnion("fig", object.Int(9))},
		object.Field{Name: "next", Value: d2},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetRoot("MyDoc", d1); err != nil {
		t.Fatal(err)
	}
	return in, d1
}

func TestApply(t *testing.T) {
	in, d1 := letterDB(t)
	cases := []struct {
		path string
		want object.Value
	}{
		{"->.title", object.String_("new")},
		{"->.items[1]", object.Int(20)},
		{`->.tags{"x"}`, object.String_("x")},
		{"->.body.fig", object.Int(9)},
		{"->.next->.title", object.String_("old")},
		{"->.next->.body.par", object.String_("text2")},
		{"", d1},
	}
	for _, c := range cases {
		p, err := Parse(c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		got, err := Apply(in, d1, p)
		if err != nil {
			t.Errorf("%s: %v", c.path, err)
			continue
		}
		if !object.Equal(got, c.want) {
			t.Errorf("%s = %s, want %s", c.path, got, c.want)
		}
	}
	// Error cases: the execution-time type errors of Section 4.2.
	for _, bad := range []string{
		".title",          // attribute step on an oid
		"->.nope",         // missing attribute
		"->.items[5]",     // index out of range
		"->.items.title",  // attribute on a list
		`->.tags{"zz"}`,   // not a member
		"->.title->",      // deref of a string
		"->.body.par",     // wrong union marker
		"->.title{\"x\"}", // member step on a string
		"->.items[0][0]",  // index on an int
	} {
		p, err := Parse(bad)
		if err != nil {
			t.Fatalf("parse %q: %v", bad, err)
		}
		if _, err := Apply(in, d1, p); err == nil {
			t.Errorf("Apply(%s) must fail", bad)
		}
	}
	// Dereference without an instance.
	if _, err := Apply(nil, d1, New(Deref())); err == nil {
		t.Error("deref without instance must fail")
	}
	// Index steps apply to tuples through the heterogeneous-list view
	// (Section 4.4).
	tup := object.NewTuple(object.Field{Name: "to", Value: object.String_("T")},
		object.Field{Name: "from", Value: object.String_("F")})
	got, err := Apply(nil, tup, New(Index(1)))
	if err != nil {
		t.Fatal(err)
	}
	u := got.(*object.Union_)
	if u.Marker != "from" {
		t.Errorf("tuple[1] = %s", got)
	}
}

func TestEnumerateRestricted(t *testing.T) {
	in, d1 := letterDB(t)
	bs := Enumerate(in, d1, Options{Semantics: Restricted})
	byPath := map[string]object.Value{}
	for _, b := range bs {
		byPath[b.Path.String()] = b.Value
	}
	// The root itself.
	if v, ok := byPath["ε"]; !ok || !object.Equal(v, d1) {
		t.Error("empty path missing")
	}
	// One deref reaches d1's fields.
	if v := byPath["->.title"]; !object.Equal(v, object.String_("new")) {
		t.Errorf("->.title = %v", v)
	}
	if v := byPath["->.items[0]"]; !object.Equal(v, object.Int(10)) {
		t.Errorf("->.items[0] = %v", v)
	}
	if v := byPath["->.body.fig"]; !object.Equal(v, object.Int(9)) {
		t.Errorf("->.body.fig = %v", v)
	}
	if _, ok := byPath[`->.tags{"y"}`]; !ok {
		t.Error("set member path missing")
	}
	// The second deref enters class Doc again: forbidden under the
	// restricted semantics.
	if _, ok := byPath["->.next->.title"]; ok {
		t.Error("restricted semantics must not dereference Doc twice")
	}
	// But the un-dereferenced oid is reached.
	if v, ok := byPath["->.next"]; !ok || v.Kind() != object.KindOID {
		t.Error("->.next must be reached as an oid")
	}
}

func TestEnumerateLiberal(t *testing.T) {
	in, d1 := letterDB(t)
	bs := Enumerate(in, d1, Options{Semantics: Liberal})
	byPath := map[string]object.Value{}
	for _, b := range bs {
		byPath[b.Path.String()] = b.Value
	}
	// Liberal semantics crosses into the second Doc...
	if v := byPath["->.next->.title"]; !object.Equal(v, object.String_("old")) {
		t.Errorf("liberal ->.next->.title = %v", v)
	}
	// ...but never revisits an object, so enumeration terminates even
	// with a cycle.
	v2, _ := in.Deref(d1)
	_ = v2
	// Make a cycle: d2.next = d1.
	d2 := mustOID(t, byPath["->.next"])
	v, _ := in.Deref(d2)
	if err := in.SetValue(d2, v.(*object.Tuple).With("next", d1)); err != nil {
		t.Fatal(err)
	}
	bs2 := Enumerate(in, d1, Options{Semantics: Liberal})
	for _, b := range bs2 {
		if b.Path.Len() > 12 {
			t.Fatalf("cycle not cut: %s", b.Path)
		}
	}
	// Restricted is a subset of liberal.
	rs := Enumerate(in, d1, Options{Semantics: Restricted})
	liberalSet := map[string]bool{}
	for _, b := range bs2 {
		liberalSet[b.Path.String()] = true
	}
	for _, b := range rs {
		if !liberalSet[b.Path.String()] {
			t.Errorf("restricted path %s not in liberal set", b.Path)
		}
	}
}

func mustOID(t *testing.T, v object.Value) object.OID {
	t.Helper()
	o, ok := v.(object.OID)
	if !ok {
		t.Fatalf("not an oid: %v", v)
	}
	return o
}

func TestEnumerateMaxLen(t *testing.T) {
	in, d1 := letterDB(t)
	bs := Enumerate(in, d1, Options{Semantics: Liberal, MaxLen: 2})
	for _, b := range bs {
		if b.Path.Len() > 2 {
			t.Fatalf("MaxLen violated: %s", b.Path)
		}
	}
}

// TestQ4PathDifference reproduces the shape of query Q4: the structural
// difference between two versions of a document is the set difference of
// their path sets.
func TestQ4PathDifference(t *testing.T) {
	in, d1 := letterDB(t)
	v, _ := in.Deref(d1)
	// The "old version": same doc without the second list item.
	oldDoc := v.(*object.Tuple).With("items", object.NewList(object.Int(10)))
	newPaths := PathSet(Enumerate(in, v, Options{}))
	oldPaths := PathSet(Enumerate(in, oldDoc, Options{}))
	diff := newPaths.Diff(oldPaths)
	var strs []string
	for i := 0; i < diff.Len(); i++ {
		p, err := FromValue(diff.At(i))
		if err != nil {
			t.Fatal(err)
		}
		strs = append(strs, p.String())
	}
	joined := strings.Join(strs, " ")
	if !strings.Contains(joined, ".items[1]") {
		t.Errorf("difference must expose the new item path, got %v", strs)
	}
	for _, s := range strs {
		if s == ".title" {
			t.Error("unchanged paths must not appear in the difference")
		}
	}
}

func TestEnumerateSchema(t *testing.T) {
	in, _ := letterDB(t)
	h := in.Schema().Hierarchy()
	root, _ := in.Schema().RootType("MyDoc")
	tas := DedupAbstract(EnumerateSchema(h, root, 0))
	byPath := map[string]object.Type{}
	for _, ta := range tas {
		byPath[ta.Path.String()] = ta.Type
	}
	if ty, ok := byPath["->.title"]; !ok || !object.TypeEqual(ty, object.StringType) {
		t.Errorf("->.title type = %v", ty)
	}
	if ty, ok := byPath["->.items[*]"]; !ok || !object.TypeEqual(ty, object.IntType) {
		t.Errorf("->.items[*] type = %v", ty)
	}
	if ty, ok := byPath["->.tags{*}"]; !ok || !object.TypeEqual(ty, object.StringType) {
		t.Errorf("->.tags{*} type = %v", ty)
	}
	if ty, ok := byPath["->.body.par"]; !ok || !object.TypeEqual(ty, object.StringType) {
		t.Errorf("->.body.par type = %v", ty)
	}
	// No class is dereferenced twice.
	if _, ok := byPath["->.next->.title"]; ok {
		t.Error("schema enumeration must respect the restricted semantics")
	}
	if _, ok := byPath["->.next"]; !ok {
		t.Error("->.next must appear as a class-typed path")
	}
	// Abstract/concrete matching.
	ab := NewAbstract(
		AbstractStep{Kind: StepDeref},
		AbstractStep{Kind: StepAttr, Name: "items"},
		AbstractStep{Kind: StepIndex},
	)
	if !ab.Matches(New(Deref(), Attr("items"), Index(7))) {
		t.Error("abstract must match any index")
	}
	if ab.Matches(New(Deref(), Attr("title"))) {
		t.Error("length mismatch")
	}
	if ab.Matches(New(Deref(), Attr("tags"), Index(0))) {
		t.Error("attr mismatch")
	}
	if got := Abstraction(New(Deref(), Attr("items"), Index(7))); got.String() != "->.items[*]" {
		t.Errorf("Abstraction = %s", got)
	}
	if ab.String() != "->.items[*]" {
		t.Errorf("abstract String = %s", ab)
	}
}

func TestEnumerateSchemaWithInheritanceAndAny(t *testing.T) {
	s := store.NewSchema()
	mustErr := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustErr(s.AddClass("Text", object.TupleOf(object.TField{Name: "content", Type: object.StringType})))
	mustErr(s.AddClass("Title", object.TupleOf(object.TField{Name: "content", Type: object.StringType})))
	mustErr(s.AddInherits("Title", "Text"))
	mustErr(s.AddClass("Doc", object.TupleOf(
		object.TField{Name: "t", Type: object.Class("Text")},
		object.TField{Name: "ref", Type: object.Any},
	)))
	h := s.Hierarchy()
	tas := DedupAbstract(EnumerateSchema(h, object.Class("Doc"), 0))
	found := map[string]bool{}
	for _, ta := range tas {
		found[ta.Path.String()] = true
	}
	// Dereferencing a Text-typed attribute explores both Text and Title.
	if !found["->.t->.content"] {
		t.Error("subclass extents must be explored")
	}
	// any explores every class.
	if !found["->.ref->.content"] {
		t.Errorf("any must dereference into every class: %v", found)
	}
	// MaxLen bound.
	short := EnumerateSchema(h, object.Class("Doc"), 2)
	for _, ta := range short {
		if ta.Path.Len() > 2 {
			t.Error("maxLen violated")
		}
	}
	// Semantics String.
	if Restricted.String() != "restricted" || Liberal.String() != "liberal" {
		t.Error("Semantics String")
	}
}
