package dtdmap

import (
	"strings"
	"testing"

	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
)

// roundTrip loads src, exports the loaded object, re-parses and re-loads
// the export, and returns both loaders for comparison.
func roundTrip(t *testing.T, dtd *sgml.DTD, src string) (*Loader, *Loader, string) {
	t.Helper()
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	l1 := NewLoader(m)
	doc, err := sgml.ParseDocument(dtd, src)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := l1.Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Export(m, l1.Instance, oid)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	doc2, err := sgml.ParseDocument(dtd, out)
	if err != nil {
		t.Fatalf("re-parse of export failed: %v\n%s", err, out)
	}
	m2, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	l2 := NewLoader(m2)
	if _, err := l2.Load(doc2); err != nil {
		t.Fatalf("re-load of export failed: %v\n%s", err, out)
	}
	return l1, l2, out
}

// assertIsomorphic checks the two instances agree on per-class extents
// and document text.
func assertIsomorphic(t *testing.T, l1, l2 *Loader, out string) {
	t.Helper()
	st1 := l1.Instance.Stats()
	st2 := l2.Instance.Stats()
	if st1.Objects != st2.Objects {
		t.Errorf("object count changed: %d vs %d\n%s", st1.Objects, st2.Objects, out)
	}
	for c, n := range st1.PerClass {
		if st2.PerClass[c] != n {
			t.Errorf("class %s extent changed: %d vs %d", c, n, st2.PerClass[c])
		}
	}
	t1 := TextOf(l1.Instance, l1.Documents()[0])
	t2 := TextOf(l2.Instance, l2.Documents()[0])
	if t1 != t2 {
		t.Errorf("document text changed:\n%q\nvs\n%q", t1, t2)
	}
	if errs := l2.Instance.Check(); len(errs) != 0 {
		t.Errorf("re-loaded instance invalid: %v", errs)
	}
}

func TestExportRoundTripArticle(t *testing.T) {
	dtd := figure1(t)
	src := `<article status="final">
<title>Round Trips</title>
<author>A. Author
<author>B. Author
<affil>Nowhere U
<abstract>On reconstructing documents from objects.
<section><title>One</title>
<body><paragr>First paragraph.</body>
<body><figure label="f1"><picture sizex="10cm"></figure></body>
</section>
<section><title>Two</title>
<subsectn><title>Deep</title><body><paragr reflabel="f1">See the figure.</body></subsectn>
</section>
<acknowl>Thanks.
</article>`
	l1, l2, out := roundTrip(t, dtd, src)
	assertIsomorphic(t, l1, l2, out)
	// Attributes survive.
	if !strings.Contains(out, `status="final"`) {
		t.Errorf("status lost:\n%s", out)
	}
	if !strings.Contains(out, `sizex="10cm"`) {
		t.Errorf("sizex lost:\n%s", out)
	}
	// Cross references are re-synthesised consistently.
	if !strings.Contains(out, `label="id1"`) || !strings.Contains(out, `reflabel="id1"`) {
		t.Errorf("ID/IDREF not reconstructed:\n%s", out)
	}
	// The a2 union branch (subsections) is reproduced.
	if !strings.Contains(out, "<subsectn>") {
		t.Errorf("subsection lost:\n%s", out)
	}
	// The re-exported IDREF points at the same structural target.
	figs := l2.Instance.Extent("Figure")
	pars := l2.Instance.Extent("Paragr")
	var refOK bool
	for _, p := range pars {
		v, _ := l2.Instance.Deref(p)
		if ref, ok := v.(*object.Tuple).Get("reflabel"); ok && len(figs) == 1 && object.Equal(ref, figs[0]) {
			refOK = true
		}
	}
	if !refOK {
		t.Error("re-loaded IDREF does not resolve to the figure")
	}
}

func TestExportRoundTripLetters(t *testing.T) {
	dtd, err := sgml.ParseDTD(`
<!ELEMENT letter - - (preamble, content)>
<!ELEMENT preamble - O (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT content - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`<letter><preamble><to>Alice<from>Bob</preamble><content>recipient first</letter>`,
		`<letter><preamble><from>Carol<to>Dan</preamble><content>sender first</letter>`,
	} {
		l1, l2, out := roundTrip(t, dtd, src)
		assertIsomorphic(t, l1, l2, out)
		// Permutation order is preserved exactly.
		p1, _ := l1.Instance.Deref(l1.Instance.Extent("Preamble")[0])
		p2, _ := l2.Instance.Deref(l2.Instance.Extent("Preamble")[0])
		if p1.(*object.Union_).Marker != p2.(*object.Union_).Marker {
			t.Errorf("permutation marker changed: %s vs %s\n%s",
				p1.(*object.Union_).Marker, p2.(*object.Union_).Marker, out)
		}
	}
}

func TestExportRoundTripMixedContent(t *testing.T) {
	dtd, err := sgml.ParseDTD(`
<!ELEMENT note - - ((#PCDATA | emph)*)>
<!ELEMENT emph - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2, out := roundTrip(t, dtd, `<note>plain <emph>strong</emph> tail &amp; more</note>`)
	assertIsomorphic(t, l1, l2, out)
	if !strings.Contains(out, "<emph>strong</emph>") {
		t.Errorf("inline markup lost:\n%s", out)
	}
	if !strings.Contains(out, "&amp;") {
		t.Errorf("text escaping lost:\n%s", out)
	}
}

func TestExportEscaping(t *testing.T) {
	dtd, err := sgml.ParseDTD(`<!ELEMENT doc - - (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2, out := roundTrip(t, dtd, `<doc>1 &lt; 2 &amp; 3 &gt; 2</doc>`)
	assertIsomorphic(t, l1, l2, out)
	txt := TextOf(l2.Instance, l2.Documents()[0])
	if txt != "1 < 2 & 3 > 2" {
		t.Errorf("escaped text = %q", txt)
	}
}

func TestExportErrors(t *testing.T) {
	dtd := figure1(t)
	m, err := MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(m)
	if _, err := Export(m, l.Instance, object.OID(42)); err == nil {
		t.Error("export of unknown object must fail")
	}
}

func TestExportGeneratedCorpusSample(t *testing.T) {
	// Round-trip a synthetic article with figures and subsections built
	// inline (the corpus package depends on dtdmap, so generate by hand).
	dtd := figure1(t)
	src := `<article status="draft">
<title>Generated</title><author>G<affil>F<abstract>Ab
<section><title>S0</title>
<body><paragr>text one</body>
<body><figure label="g1"><picture></figure></body>
<body><paragr reflabel="g1">ref text</body>
</section>
<section><title>S1</title>
<subsectn><title>SS0</title><body><paragr>deep</body></subsectn>
<subsectn><title>SS1</title><body><paragr>deeper</body></subsectn>
</section>
<acknowl>ok
</article>`
	l1, l2, out := roundTrip(t, dtd, src)
	assertIsomorphic(t, l1, l2, out)
}
