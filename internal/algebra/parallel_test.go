package algebra

import (
	"errors"
	"fmt"
	"testing"

	"sgmldb/internal/calculus"
)

// disjunctionQuery builds the two-branch union query of
// TestEquivalenceDisjunction: its plan contains a unionOp, the operator
// the parallel branch evaluation must keep deterministic.
func disjunctionQuery() *calculus.Query {
	mk := func(author string) calculus.Formula {
		return calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
			Body: calculus.Conj(
				calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
					Path: calculus.P(calculus.ElemVar{Name: "P"},
						calculus.ElemAttr{A: calculus.AttrName{Name: "author"}},
						calculus.ElemBind{X: "X"})},
				calculus.Eq{L: calculus.Var{Name: "X"}, R: calculus.Str(author)},
			),
		}
	}
	return &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Or{L: mk("Jo"), R: mk("Knuth")},
	}
}

// TestUnionParallelDeterministic runs a union plan serially and with a
// worker pool, repeatedly: the parallel branch evaluation must return
// rows identical to the serial evaluation — same bindings, same order —
// because branch results are concatenated in branch order regardless of
// completion order.
func TestUnionParallelDeterministic(t *testing.T) {
	env := knuthEnv(t)
	plan, err := Translate(env, disjunctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		ctx := NewCtx(env)
		ctx.Workers = workers
		res, err := plan.Run(ctx)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fmt.Sprint(res.Rows)
	}
	want := run(1)
	for i := 0; i < 50; i++ {
		for _, workers := range []int{2, 4, 8} {
			if got := run(workers); got != want {
				t.Fatalf("iteration %d workers=%d: rows %s, want %s", i, workers, got, want)
			}
		}
	}
}

// TestUnionParallelObservesMeter threads an exhausted cost meter into a
// parallel union evaluation: the branches, scanning on pool goroutines,
// must observe the meter at their polls and fail the query with
// ErrBudgetExceeded.
func TestUnionParallelObservesMeter(t *testing.T) {
	env := knuthEnv(t)
	plan, err := Translate(env, disjunctionQuery(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := calculus.NewMeter(calculus.Budget{MaxDuration: 1}) // expires immediately
	ctx := NewCtx(env.WithMeter(m))
	ctx.Workers = 4
	if _, err := plan.Run(ctx); !errors.Is(err, calculus.ErrBudgetExceeded) {
		t.Fatalf("run with exhausted meter: err = %v, want ErrBudgetExceeded", err)
	}
}
