// Command sgmldbload is the load generator for sgmldbd: it drives a
// mixed read workload (ad-hoc /v1/query and prepared /v1/execute in a
// configurable ratio) from concurrent workers and reports throughput and
// latency percentiles (p50/p99/p999) as JSON — the client side of the
// service macro-benchmark recorded in BENCH_service.json.
//
// Usage:
//
//	sgmldbload [-addr http://127.0.0.1:8344] [-key K] [-n 1000] [-c 8]
//	           [-query "select a from a in Articles"] [-prepared 0.5]
//	           [-load doc.sgml] [-load-count N] [-o report.json]
//
// With -load, before the read burst the given SGML document is loaded
// -load-count times through POST /v1/load (one document per batch) — the
// write leg the replication smoke uses to make a primary's feed move.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sgmldbload:", err)
		os.Exit(1)
	}
}

// report is the JSON document written when the run finishes.
type report struct {
	Addr       string  `json:"addr"`
	Query      string  `json:"query"`
	Requests   int     `json:"requests"`
	Workers    int     `json:"workers"`
	Prepared   float64 `json:"prepared_fraction"`
	Errors     int     `json:"errors"`
	ElapsedMS  int64   `json:"elapsed_ms"`
	Throughput float64 `json:"requests_per_second"`
	P50US      int64   `json:"p50_us"`
	P99US      int64   `json:"p99_us"`
	P999US     int64   `json:"p999_us"`
	MaxUS      int64   `json:"max_us"`
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8344", "server base URL")
	key := flag.String("key", "", "API key (empty for an open-mode server)")
	n := flag.Int("n", 1000, "total requests")
	workers := flag.Int("c", 8, "concurrent workers")
	query := flag.String("query", "select a from a in Articles", "query to drive")
	prepared := flag.Float64("prepared", 0.5, "fraction of requests via a prepared handle (0..1)")
	loadFile := flag.String("load", "", "SGML document to load before the read burst")
	loadCount := flag.Int("load-count", 1, "how many times to load the -load document")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()
	if *n <= 0 || *workers <= 0 || *prepared < 0 || *prepared > 1 {
		return fmt.Errorf("invalid -n/-c/-prepared")
	}

	client := &http.Client{Timeout: 60 * time.Second}
	post := func(path string, body any) (int, map[string]any, error) {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		req, err := http.NewRequest("POST", *addr+path, bytes.NewReader(raw))
		if err != nil {
			return 0, nil, err
		}
		if *key != "" {
			req.Header.Set("Authorization", "Bearer "+*key)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, nil, err
		}
		var decoded map[string]any
		if len(data) > 0 {
			if err := json.Unmarshal(data, &decoded); err != nil {
				return resp.StatusCode, nil, fmt.Errorf("non-JSON response: %q", data)
			}
		}
		return resp.StatusCode, decoded, nil
	}

	if *loadFile != "" {
		src, err := os.ReadFile(*loadFile)
		if err != nil {
			return fmt.Errorf("reading -load file: %w", err)
		}
		for i := 0; i < *loadCount; i++ {
			status, body, err := post("/v1/load", map[string]any{"documents": []string{string(src)}})
			if err != nil {
				return fmt.Errorf("load %d: %w", i+1, err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("load %d: status %d: %v", i+1, status, body)
			}
		}
	}

	// One warm-up round trip doubles as the health check.
	status, body, err := post("/v1/query", map[string]any{"query": *query})
	if err != nil {
		return fmt.Errorf("warm-up query: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("warm-up query: status %d: %v", status, body)
	}

	handle := ""
	if *prepared > 0 {
		status, body, err := post("/v1/prepare", map[string]any{"query": *query})
		if err != nil {
			return fmt.Errorf("prepare: %w", err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("prepare: status %d body %v", status, body)
		}
		handle, _ = body["handle"].(string)
		if handle == "" {
			return fmt.Errorf("prepare returned no handle: %v", body)
		}
	}

	// Every worker pulls the next request index from the shared counter;
	// the index decides ad-hoc vs prepared so the mix is exact, not
	// probabilistic, and runs are reproducible.
	preparedEvery := 0
	if *prepared > 0 {
		preparedEvery = int(1 / *prepared)
	}
	latencies := make([]int64, *n)
	var next, errCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				var (
					status int
					err    error
					t0     = time.Now()
				)
				if preparedEvery > 0 && i%preparedEvery == 0 {
					status, _, err = post("/v1/execute/"+handle, map[string]any{})
				} else {
					status, _, err = post("/v1/query", map[string]any{"query": *query})
				}
				latencies[i] = time.Since(t0).Microseconds()
				if err != nil || status != http.StatusOK {
					errCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) int64 {
		idx := int(p * float64(len(latencies)))
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		return latencies[idx]
	}
	r := report{
		Addr:       *addr,
		Query:      *query,
		Requests:   *n,
		Workers:    *workers,
		Prepared:   *prepared,
		Errors:     int(errCount.Load()),
		ElapsedMS:  elapsed.Milliseconds(),
		Throughput: float64(*n) / elapsed.Seconds(),
		P50US:      pct(0.50),
		P99US:      pct(0.99),
		P999US:     pct(0.999),
		MaxUS:      latencies[len(latencies)-1],
	}
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = os.Stdout.Write(enc)
	return err
}
