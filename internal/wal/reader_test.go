package wal

import (
	"errors"
	"os"
	"testing"
	"time"

	"sgmldb/internal/faultpoint"
	"sgmldb/internal/text"
)

// decodeAll splits a feed body back into records, failing on any damage:
// FramesAfter promises byte-exact committed frames.
func decodeAll(t *testing.T, frames []byte) []Record {
	t.Helper()
	var recs []Record
	off := 0
	for off < len(frames) {
		rec, n, err := DecodeFrame(frames[off:])
		if err != nil {
			t.Fatalf("decoding feed frame at offset %d: %v", off, err)
		}
		recs = append(recs, rec)
		off += n
	}
	return recs
}

func TestFramesAfterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	defer l.Close()
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	// From 0: everything, and lastSeq is the final record's.
	frames, lastSeq, err := l.FramesAfter(0, 0, 1<<30)
	if err != nil {
		t.Fatalf("FramesAfter(0): %v", err)
	}
	recs := decodeAll(t, frames)
	if len(recs) != len(want) || lastSeq != uint64(len(want)) {
		t.Fatalf("got %d records lastSeq=%d, want %d/%d", len(recs), lastSeq, len(want), len(want))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
	}

	// From a mid anchor: only the records past it.
	frames, lastSeq, err = l.FramesAfter(2, 0, 1<<30)
	if err != nil {
		t.Fatalf("FramesAfter(2): %v", err)
	}
	recs = decodeAll(t, frames)
	if len(recs) != len(want)-2 || recs[0].Seq != 3 || lastSeq != uint64(len(want)) {
		t.Fatalf("after=2: %d records first=%d lastSeq=%d", len(recs), recs[0].Seq, lastSeq)
	}

	// Caught up: empty, lastSeq echoes the anchor.
	frames, lastSeq, err = l.FramesAfter(uint64(len(want)), 0, 1<<30)
	if err != nil || len(frames) != 0 || lastSeq != uint64(len(want)) {
		t.Fatalf("caught up: frames=%d lastSeq=%d err=%v", len(frames), lastSeq, err)
	}
}

// TestFramesAfterMaxBytes: a tiny budget still ships one frame per call,
// and chunked fetches cover the log exactly once.
func TestFramesAfterMaxBytes(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	defer l.Close()
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	after := uint64(0)
	for i := 0; i < 100; i++ {
		frames, lastSeq, err := l.FramesAfter(after, 0, 1) // always under one frame
		if err != nil {
			t.Fatalf("FramesAfter(%d): %v", after, err)
		}
		if lastSeq == after {
			break
		}
		recs := decodeAll(t, frames)
		if len(recs) != 1 {
			t.Fatalf("budget 1 byte shipped %d frames", len(recs))
		}
		got = append(got, recs...)
		after = lastSeq
	}
	if len(got) != len(want) {
		t.Fatalf("chunked fetch got %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
	}
}

// TestFramesAfterTruncated: once a prefix is dropped, anchors inside it
// are refused with ErrSeqTruncated — across the live log AND a reopen
// (the floor must survive recovery via the checkpoint).
func TestFramesAfterTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// A real truncation follows a durable checkpoint; write one so the
	// reopen below passes the first-record rule.
	ck := &Checkpoint{Seq: 2, Epoch: 2, DTD: "<!ELEMENT a (#PCDATA)>", Inst: checkpointInstance(t), Index: text.NewIndex()}
	if err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := l.TruncatePrefix(2); err != nil {
		t.Fatalf("TruncatePrefix: %v", err)
	}
	if _, _, err := l.FramesAfter(1, 0, 1<<30); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("after=1 under floor 2: err = %v, want ErrSeqTruncated", err)
	}
	frames, lastSeq, err := l.FramesAfter(2, 0, 1<<30)
	if err != nil {
		t.Fatalf("FramesAfter(2) at the floor: %v", err)
	}
	if recs := decodeAll(t, frames); len(recs) != 2 || recs[0].Seq != 3 || lastSeq != 4 {
		t.Fatalf("after=2: %d records lastSeq=%d", len(recs), lastSeq)
	}
	l.Close()

	// Reopen: the retained log starts at 3, so the floor must be 2.
	l2, _, _ := mustOpen(t, dir)
	defer l2.Close()
	if _, _, err := l2.FramesAfter(1, 0, 1<<30); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("reopened: after=1 err = %v, want ErrSeqTruncated", err)
	}
	if frames, _, err := l2.FramesAfter(2, 0, 1<<30); err != nil || len(decodeAll(t, frames)) != 2 {
		t.Fatalf("reopened: after=2 failed: %v", err)
	}
}

func TestWatchWakesOnAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	defer l.Close()
	seq, ch := l.Watch()
	if seq != 0 {
		t.Fatalf("fresh log Watch seq = %d", seq)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Error("watch channel never closed after append")
		}
	}()
	if err := l.Append(Record{Kind: KindName, Name: "n", OID: 1}); err != nil {
		t.Fatal(err)
	}
	<-done
	if seq, _ := l.Watch(); seq != 1 {
		t.Fatalf("post-append Watch seq = %d", seq)
	}
}

// TestTruncateReopenFailurePoisonsLog is the regression test for the
// truncation handle-loss bug: when the reopen after the prefix-rewrite
// rename fails, the old handle points at an unlinked file — the pre-fix
// code kept appending to it, "durably" committing records no recovery
// could ever see. The log must instead fail closed: the truncation
// errors, and every subsequent Append reports the same sticky error.
func TestTruncateReopenFailurePoisonsLog(t *testing.T) {
	defer faultpoint.DisarmAll()
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir)
	recs := sampleRecords()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	faultpoint.Arm("wal/truncate-reopen", faultpoint.Error(errors.New("injected reopen failure")))
	if err := l.TruncatePrefix(2); err == nil {
		t.Fatal("TruncatePrefix with a failed reopen reported success")
	}
	faultpoint.DisarmAll()
	// The pre-fix code returned the error but kept the stale handle: this
	// append would succeed — durably, into the unlinked file.
	if err := l.Append(Record{Kind: KindName, Name: "lost", OID: 9}); err == nil {
		t.Fatal("Append after a lost log handle succeeded; the record went to an unlinked file")
	}
	if err := l.Append(Record{Kind: KindName, Name: "lost2", OID: 10}); err == nil {
		t.Fatal("second Append after poisoning succeeded")
	}
	if _, _, err := l.FramesAfter(2, 0, 1<<30); err == nil {
		t.Fatal("FramesAfter on a poisoned log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close on a poisoned log: %v", err)
	}

	// The durable state on disk is intact either way: the rename completed,
	// so the renamed log holds exactly the post-truncation records (a real
	// recovery would pair it with the checkpoint that covered seq 2).
	data, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs2 := decodeAll(t, data[len(logMagic):])
	if len(recs2) != 2 || recs2[0].Seq != 3 {
		t.Fatalf("on-disk log after poisoned truncation: %d records, first seq %d", len(recs2), recs2[0].Seq)
	}
}
