package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Scrub re-reads the committed log from disk and re-validates every frame
// end to end: header, CRC, and sequence continuity from the truncation
// floor. It is the online integrity check — readers are never touched
// (queries run against published in-memory epochs), and appends are held
// out only for the duration of one sequential file read, the same window
// a feed catch-up read takes. A poisoned log can still be scrubbed as
// long as its handle survived: the committed prefix remains the durable
// truth worth auditing.
func (l *Log) Scrub() (frames int, lastSeq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, 0, fmt.Errorf("wal: scrub: log handle lost: %w", l.err)
	}
	data := make([]byte, l.size)
	if _, err := l.f.ReadAt(data, 0); err != nil {
		return 0, 0, fmt.Errorf("wal: scrub read: %w", classify(err))
	}
	if string(data[:min(len(data), len(logMagic))]) != logMagic {
		return 0, 0, fmt.Errorf("%w: scrub: bad log header", ErrCorruptLog)
	}
	off := len(logMagic)
	last := l.floor
	var lastTerm uint64
	for off < len(data) {
		rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			// Everything under l.size was fsynced by an Append that
			// returned success, so any damage here is corruption — there
			// is no torn-tail excuse inside the committed prefix.
			return frames, last, fmt.Errorf("%w: scrub: frame at offset %d: %w", ErrCorruptLog, off, err)
		}
		if rec.Seq != last+1 {
			return frames, last, fmt.Errorf("%w: scrub: sequence jump %d -> %d at offset %d", ErrCorruptLog, last, rec.Seq, off)
		}
		if rec.Term < lastTerm {
			return frames, last, fmt.Errorf("%w: scrub: term regression %d -> %d at offset %d", ErrCorruptLog, lastTerm, rec.Term, off)
		}
		last = rec.Seq
		lastTerm = rec.Term
		frames++
		off += n
	}
	if last != l.seq {
		return frames, last, fmt.Errorf("%w: scrub: log ends at sequence %d, expected %d", ErrCorruptLog, last, l.seq)
	}
	return frames, last, nil
}

// ScrubCheckpoints fully decodes every checkpoint file in dir and reports
// the newest valid sequence number, how many checkpoints are valid, and
// how many failed to decode. Recovery tolerates bad checkpoints (it falls
// back to an older one), so bad ones are reported, not fatal — the caller
// decides whether a nonzero bad count is alarming.
func ScrubCheckpoints(dir string) (newestSeq uint64, valid, bad int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, 0, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseCheckpointName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		if _, err := readCheckpoint(filepath.Join(dir, checkpointName(seq))); err != nil {
			bad++
			continue
		}
		if valid == 0 {
			newestSeq = seq
		}
		valid++
	}
	return newestSeq, valid, bad, nil
}
