// Command dtd2schema compiles an SGML DTD into the extended O₂ schema of
// Section 3 of the paper and prints it in Figure 3 syntax.
//
// Usage:
//
//	dtd2schema article.dtd
//	dtd2schema < article.dtd
package main

import (
	"fmt"
	"io"
	"os"

	"sgmldb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dtd2schema:", err)
		os.Exit(1)
	}
}

func run() error {
	var src []byte
	var err error
	if len(os.Args) > 1 {
		src, err = os.ReadFile(os.Args[1])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return err
	}
	db, err := sgmldb.OpenDTD(string(src))
	if err != nil {
		return err
	}
	fmt.Print(db.SchemaString())
	return nil
}
