package analysis

import (
	"go/ast"
	"go/types"
)

// The snapshotpin analyzer guards epoch coherence on the read side.
// The engine publishes an immutable State behind an atomic pointer;
// a reader that loads it twice in one logical chain can observe two
// different epochs — a torn snapshot whose halves disagree (stats
// from one epoch labelled with another, a plan resolved against one
// instance and executed against the next). The rule: one chain loads
// the State once and threads it.
//
// The census is program-wide. The primitive is a .Load() on an
// atomic.Pointer[State]. The "pin family" is the least set containing
// every function whose body performs the primitive directly, closed
// under pure accessors: a function whose every direct call is to a
// family member joins the family (e.g. Epoch() { return state().Snap.
// Epoch } — calling it IS loading the snapshot). Functions with any
// call outside the family (parsing, evaluation, I/O) stay out: they
// are chain roots that may legitimately run several chains.
//
// The check: in each function body — function literals are separate
// chains — the second and later direct family/primitive call sites
// are flagged.

// SnapshotPinAnalyzer flags repeated State loads in one chain.
var SnapshotPinAnalyzer = &Analyzer{
	Name:       "snapshotpin",
	Doc:        "a query chain must load the published State once and thread it",
	RunPackage: runSnapshotPin,
}

// pinCensus is the program-wide pin family.
type pinCensus struct {
	family map[*types.Func]bool
}

// pinCensus computes the family once: seed with primitive loaders,
// then close over pure accessors to a fixpoint.
func (prog *Program) pinCensus() *pinCensus {
	prog.pinOnce.Do(func() {
		type fnInfo struct {
			fn        *types.Func
			primitive bool                 // body performs a State load directly
			calls     map[*types.Func]bool // direct named callees
			other     bool                 // has a call not resolvable to a named function
		}
		var infos []*fnInfo
		for _, pkg := range prog.Packages {
			if pkg.Standard {
				continue
			}
			pkg := pkg
			funcBodies(pkg, func(decl *ast.FuncDecl, fn *types.Func) {
				if fn == nil {
					return
				}
				info := &fnInfo{fn: fn, calls: map[*types.Func]bool{}}
				inspectSkippingFuncLits(decl.Body, func(n ast.Node) {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return
					}
					if isStateLoad(pkg, call) {
						info.primitive = true
						return
					}
					if callee := calleeOf(pkg.Info, call); callee != nil {
						info.calls[callee] = true
						return
					}
					if !isConversionOrBuiltin(pkg, call) {
						info.other = true
					}
				})
				infos = append(infos, info)
			})
		}
		family := map[*types.Func]bool{}
		for _, in := range infos {
			if in.primitive {
				family[in.fn] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, in := range infos {
				if family[in.fn] || in.other || len(in.calls) == 0 {
					continue
				}
				all := true
				for c := range in.calls {
					if !family[c] {
						all = false
						break
					}
				}
				if all {
					family[in.fn] = true
					changed = true
				}
			}
		}
		prog.pins = &pinCensus{family: family}
	})
	return prog.pins
}

// isStateLoad matches `x.Load()` where x is an atomic.Pointer[State].
func isStateLoad(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	t := pkg.Info.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
		return false
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return false
	}
	elem, ok := args.At(0).(*types.Named)
	return ok && elem.Obj().Name() == "State"
}

// isConversionOrBuiltin matches type conversions and builtin calls —
// neither counts as leaving the pin family.
func isConversionOrBuiltin(pkg *Package, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	return false
}

func runSnapshotPin(prog *Program, pkg *Package, report func(Diagnostic)) {
	census := prog.pinCensus()
	check := func(body *ast.BlockStmt) {
		var sites []*ast.CallExpr
		inspectSkippingFuncLits(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if isStateLoad(pkg, call) || census.family[calleeOf(pkg.Info, call)] {
				sites = append(sites, call)
			}
		})
		if len(sites) < 2 {
			return
		}
		for _, call := range sites[1:] {
			report(Diagnostic{Pos: call.Pos(),
				Message: "reloads the published State in the same chain: pin one snapshot and thread it"})
		}
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			check(decl.Body)
		}
		// Function literals are separate chains, checked on their own.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				check(lit.Body)
			}
			return true
		})
	}
}
