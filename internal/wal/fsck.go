package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Fsck is the offline integrity checker behind cmd/sgmldbfsck. It never
// runs against a live database: it opens the data directory cold,
// validates every checkpoint and every log frame, and classifies what it
// finds into three buckets — clean, recoverable crash damage (a torn log
// tail, a partial checkpoint temp file, an undecodable newer checkpoint
// with a valid older one behind it), and real corruption (damage inside
// the committed prefix, a sequence gap, a log that starts past what the
// newest valid checkpoint covers).
//
// With repair=false the directory is never written. With repair=true the
// recoverable bucket is fixed the same way recovery would fix it —
// truncate the torn tail on a clean frame edge, delete stray temp files
// and undecodable checkpoints — and the report says what was done. Real
// corruption is never repaired; it returns an error wrapping
// ErrCorruptLog so the operator restores from a replica instead.

// FsckReport is what Fsck found (and, under repair, fixed).
type FsckReport struct {
	CheckpointSeq  uint64 // newest valid checkpoint's sequence, 0 if none
	CheckpointTerm uint64 // newest valid checkpoint's term, 0 if none
	Checkpoints    int    // valid checkpoint files
	BadCheckpoints int    // undecodable checkpoint files (skipped by recovery)
	Frames         int    // valid log frames
	LastSeq        uint64 // last valid log sequence number
	FirstTerm      uint64 // term of the first log frame (0 when no frames)
	LastTerm       uint64 // term of the last valid log frame (0 when no frames)
	TermBumps      int    // promotion boundaries inside the log (term changes between frames)
	TornTail       bool   // log ends in crash damage confined to the final frame
	TornOffset     int64  // offset of the torn frame (valid when TornTail)
	StrayTemps     int    // leftover checkpoint/log temp files
	Repaired       bool   // repair mode changed the directory
}

// Clean reports whether the directory needs no attention at all.
func (r *FsckReport) Clean() bool {
	return !r.TornTail && r.BadCheckpoints == 0 && r.StrayTemps == 0
}

// Fsck validates the data directory at dir. See the package comment above
// for the verify/repair contract. The returned report is non-nil whenever
// the directory could be enumerated, even alongside a corruption error, so
// the caller can say how far validation got.
func Fsck(dir string, repair bool) (*FsckReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rep := &FsckReport{}

	// Pass 1: stray temp files. Recovery ignores them; repair deletes them.
	var ckptSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "checkpoint.tmp-") || strings.HasPrefix(name, logName+".tmp-") {
			rep.StrayTemps++
			if repair {
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return rep, err
				}
				rep.Repaired = true
			}
			continue
		}
		if seq, ok := parseCheckpointName(name); ok {
			ckptSeqs = append(ckptSeqs, seq)
		}
	}

	// Pass 2: checkpoints, newest first. The newest fully-decodable one is
	// the recovery floor; undecodable ones are crash leftovers that repair
	// removes so they cannot shadow the real floor.
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] > ckptSeqs[j] })
	for _, seq := range ckptSeqs {
		path := filepath.Join(dir, checkpointName(seq))
		ck, err := readCheckpoint(path)
		if err != nil {
			if errors.Is(err, ErrUnsupportedVersion) {
				// An old-format checkpoint is healthy data, not a crash
				// leftover: never delete it, report the migration problem.
				return rep, err
			}
			rep.BadCheckpoints++
			if repair {
				if err := os.Remove(path); err != nil {
					return rep, err
				}
				rep.Repaired = true
			}
			continue
		}
		if rep.Checkpoints == 0 {
			rep.CheckpointSeq = seq
			rep.CheckpointTerm = ck.Term
		}
		rep.Checkpoints++
	}

	// Pass 3: the log, frame by frame, with openLog's exact taxonomy —
	// but read-only unless repairing.
	if err := fsckLog(dir, rep, repair); err != nil {
		return rep, err
	}

	if repair && rep.Repaired {
		if err := syncDir(dir); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

func fsckLog(dir string, rep *FsckReport, repair bool) error {
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		// No log at all: a directory that never committed past its newest
		// checkpoint (recovery creates a fresh log on open).
		rep.LastSeq = rep.CheckpointSeq
		return nil
	}
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(data, []byte(logMagic)) {
		if bytes.HasPrefix(data, []byte(logMagicV1)) {
			// Old-format data is a migration problem, not damage: neither
			// bucket of repairable-vs-corrupt applies.
			return fmt.Errorf("%w: log written by format v1 (pre-term); rebuild the directory under the current format", ErrUnsupportedVersion)
		}
		if len(data) < len(logMagic) && bytes.HasPrefix([]byte(logMagic), data) {
			// Crash while stamping a fresh log: torn at offset 0, repair
			// restamps exactly as recovery would.
			rep.TornTail = true
			rep.TornOffset = 0
			rep.LastSeq = rep.CheckpointSeq
			if repair {
				if err := restampLogFile(path); err != nil {
					return err
				}
				rep.Repaired = true
			}
			return nil
		}
		return fmt.Errorf("%w: bad log header", ErrCorruptLog)
	}

	off := len(logMagic)
	var lastSeq, lastTerm uint64
	first := true
	for off < len(data) {
		rec, n, err := DecodeFrame(data[off:])
		if err != nil {
			if !isTornTail(data, off, n, err) {
				return fmt.Errorf("%w: record at offset %d: %w", ErrCorruptLog, off, err)
			}
			rep.TornTail = true
			rep.TornOffset = int64(off)
			if repair {
				if err := truncateLogFile(path, int64(off)); err != nil {
					return err
				}
				rep.Repaired = true
			}
			break
		}
		if first {
			if rec.Seq == 0 || rec.Seq > rep.CheckpointSeq+1 {
				return fmt.Errorf("%w: log starts at sequence %d, checkpoint covers %d", ErrCorruptLog, rec.Seq, rep.CheckpointSeq)
			}
			rep.FirstTerm = rec.Term
			first = false
		} else if rec.Seq != lastSeq+1 {
			return fmt.Errorf("%w: sequence jump %d -> %d at offset %d", ErrCorruptLog, lastSeq, rec.Seq, off)
		} else if rec.Term != lastTerm {
			if rec.Term < lastTerm {
				// The term chain is monotone by construction; a regression
				// means frames from divergent histories were spliced. Never
				// repairable: the boundary cannot be crossed by truncation.
				return fmt.Errorf("%w: term regression %d -> %d at offset %d", ErrCorruptLog, lastTerm, rec.Term, off)
			}
			rep.TermBumps++
		}
		lastSeq = rec.Seq
		lastTerm = rec.Term
		rep.LastTerm = rec.Term
		rep.Frames++
		off += n
	}
	rep.LastSeq = lastSeq
	if rep.Frames == 0 {
		rep.LastSeq = rep.CheckpointSeq
	}
	return nil
}

func truncateLogFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

func restampLogFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return restampMagic(f)
}
