package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The publishorder analyzer guards the crash-safety ordering of the
// commit path: a mutation is durable only once its WAL record is
// appended and fsynced, so the atomic snapshot publish (the epoch
// swap readers see) must come after a successful append. The two
// reorderings that silently break recovery are
//
//   - publishing before the append: a crash between the two leaves
//     readers having observed state the log never recorded;
//   - publishing on the append-failure path: the caller gets an error
//     while readers already see the new state.
//
// Functions opt in with a //sgmldbvet:commitpath doc-comment
// directive; the analyzer then walks the body linearly in source
// order (skipping `go` statements and function literals — other
// goroutines are not this path). An append is "handled" when its
// error is checked by the idiomatic shapes
//
//	if err := log.Append(rec); err != nil { …; return … }
//	err = log.Append(rec); if err != nil { …; return … }
//
// and any other append is flagged as unchecked. A publish is a call
// to a method named Publish, or Store on a sync/atomic-typed value.

// commitPathDirective marks a function as a commit path.
const commitPathDirective = "sgmldbvet:commitpath"

// PublishOrderAnalyzer checks WAL-append-before-publish ordering.
var PublishOrderAnalyzer = &Analyzer{
	Name:       "publishorder",
	Doc:        "//sgmldbvet:commitpath functions must fsync the WAL append before the atomic publish",
	RunPackage: runPublishOrder,
}

func runPublishOrder(prog *Program, pkg *Package, report func(Diagnostic)) {
	funcBodies(pkg, func(decl *ast.FuncDecl, fn *types.Func) {
		if !hasCommitPathDirective(decl) {
			return
		}
		w := &publishWalker{pkg: pkg, report: report}
		inspectSkippingFuncLits(decl.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok && isWALAppendCall(pkg, call) {
				w.appendPositions = append(w.appendPositions, call.Pos())
			}
		})
		w.stmts(decl.Body.List)
	})
}

func hasCommitPathDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.Contains(c.Text, commitPathDirective) {
			return true
		}
	}
	return false
}

// isWALAppendCall matches a method call named Append whose receiver
// type is named Log (the WAL's append+fsync entry point).
func isWALAppendCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeOf(pkg.Info, call)
	if fn == nil || fn.Name() != "Append" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Log"
}

// isPublishCall matches the snapshot publish: a method named Publish,
// or Store on a value of a sync/atomic type (a raw epoch swap).
func isPublishCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeOf(pkg.Info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Publish":
		return true
	case "Store":
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && isAtomicNamed(pkg.Info.TypeOf(sel.X))
	}
	return false
}

// publishWalker is the linear source-order walk of one commit path.
type publishWalker struct {
	pkg             *Package
	report          func(Diagnostic)
	appendPositions []token.Pos // every WAL append in the body, for "append later?" queries
	appendSeen      bool        // an append site has been passed
	inFailure       bool        // inside an append-failure branch
}

// appendLater reports whether some WAL append appears after pos.
func (w *publishWalker) appendLater(pos token.Pos) bool {
	for _, p := range w.appendPositions {
		if p > pos {
			return true
		}
	}
	return false
}

func (w *publishWalker) stmts(list []ast.Stmt) {
	for i := 0; i < len(list); i++ {
		// Shape: err = log.Append(rec)  followed by  if err != nil { … return }
		if as, ok := list[i].(*ast.AssignStmt); ok {
			if call := appendCallIn(w.pkg, as.Rhs); call != nil {
				w.appendSeen = true
				if i+1 < len(list) {
					if ifs, ok := list[i+1].(*ast.IfStmt); ok && ifs.Init == nil &&
						isErrNilCheck(ifs.Cond) && endsInReturn(ifs.Body) {
						w.failureBody(ifs.Body)
						if ifs.Else != nil {
							w.stmt(ifs.Else)
						}
						i++
						continue
					}
				}
				w.report(Diagnostic{Pos: call.Pos(),
					Message: "commit path does not check the WAL append error before continuing"})
				continue
			}
		}
		w.stmt(list[i])
	}
}

func (w *publishWalker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		w.stmts(x.List)
	case *ast.IfStmt:
		// Shape: if err := log.Append(rec); err != nil { … return }
		if as, ok := x.Init.(*ast.AssignStmt); ok {
			if call := appendCallIn(w.pkg, as.Rhs); call != nil {
				w.appendSeen = true
				if isErrNilCheck(x.Cond) && endsInReturn(x.Body) {
					w.failureBody(x.Body)
					if x.Else != nil {
						w.stmt(x.Else)
					}
					return
				}
				w.report(Diagnostic{Pos: call.Pos(),
					Message: "commit path does not check the WAL append error before continuing"})
				w.stmt(x.Body)
				if x.Else != nil {
					w.stmt(x.Else)
				}
				return
			}
		}
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.exprCalls(x.Cond)
		w.stmt(x.Body)
		if x.Else != nil {
			w.stmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Cond != nil {
			w.exprCalls(x.Cond)
		}
		w.stmt(x.Body)
		if x.Post != nil {
			w.stmt(x.Post)
		}
	case *ast.RangeStmt:
		w.exprCalls(x.X)
		w.stmt(x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Tag != nil {
			w.exprCalls(x.Tag)
		}
		for _, c := range x.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		for _, c := range x.Body.List {
			w.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			comm := c.(*ast.CommClause)
			if comm.Comm != nil {
				w.stmt(comm.Comm)
			}
			w.stmts(comm.Body)
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	case *ast.GoStmt:
		// Another goroutine: outside this path's ordering.
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.exprCalls(r)
		}
	default:
		w.exprCalls(s)
	}
}

// failureBody walks an append-failure branch, where a publish means
// readers observe state the log rejected.
func (w *publishWalker) failureBody(body *ast.BlockStmt) {
	defer func(prev bool) { w.inFailure = prev }(w.inFailure)
	w.inFailure = true
	w.stmts(body.List)
}

// exprCalls classifies every direct call inside an expression or
// simple statement, in source order.
func (w *publishWalker) exprCalls(n ast.Node) {
	if n == nil {
		return
	}
	inspectSkippingFuncLits(n, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		switch {
		case isWALAppendCall(w.pkg, call):
			// Reached outside the two handled shapes: the error goes nowhere.
			w.appendSeen = true
			w.report(Diagnostic{Pos: call.Pos(),
				Message: "commit path does not check the WAL append error before continuing"})
		case isPublishCall(w.pkg, call):
			switch {
			case w.inFailure:
				w.report(Diagnostic{Pos: call.Pos(),
					Message: "commit path publishes the snapshot after a failed WAL append"})
			case !w.appendSeen && w.appendLater(call.Pos()):
				w.report(Diagnostic{Pos: call.Pos(),
					Message: "commit path publishes the snapshot before the WAL append+fsync"})
			}
		}
	})
}

// appendCallIn returns the WAL append call among assignment operands,
// if any.
func appendCallIn(pkg *Package, rhs []ast.Expr) *ast.CallExpr {
	for _, e := range rhs {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && isWALAppendCall(pkg, call) {
			return call
		}
	}
	return nil
}

// isErrNilCheck matches `x != nil`.
func isErrNilCheck(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(b.X) || isNil(b.Y)
}

// endsInReturn reports a block whose last statement returns.
func endsInReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}
