package sgmldb_test

// Replication micro/macro benchmarks (BENCH_replication.json):
//
//	BenchmarkFollowerApply  apply throughput of the follower's replay
//	                        loop — one shipped KindLoad record per
//	                        iteration, applied straight to the COW
//	                        snapshot (the ceiling on how fast a follower
//	                        can track a primary)
//	BenchmarkFollowerQuery  client-observed read latency against a
//	                        converged follower over a real HTTP round
//	                        trip (the scale-out payoff the feed buys)
//	BenchmarkPromote        failover write-unavailability window — one
//	                        Promote() on a durable caught-up follower:
//	                        term record fsync plus the synchronous
//	                        fencing checkpoint (DESIGN.md §12)
//
// Run with: go test -run '^$' -bench 'Follower|Promote' .

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sgmldb"
	"sgmldb/internal/service"
	"sgmldb/internal/wal"
)

// BenchmarkFollowerApply measures the apply loop alone: records are
// pre-built (no wire, no decode), and each iteration replays a fixed
// 16-record batch into a fresh follower — per-batch commit cost grows
// with database size, so a fixed batch keeps iterations comparable.
// ns/op is one 16-document replay; records/s is the apply throughput.
func BenchmarkFollowerApply(b *testing.B) {
	const batch = 16
	dtd, doc := replCorpus(b)
	recs := make([]wal.Record, batch)
	for i := range recs {
		recs[i] = wal.Record{Seq: uint64(i + 2), Kind: wal.KindLoad, Docs: []string{doc}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fdb, err := sgmldb.OpenFollower(dtd)
		if err != nil {
			b.Fatal(err)
		}
		if err := fdb.ApplyRecord(wal.Record{Seq: 1, Kind: wal.KindSchema, Schema: dtd}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, rec := range recs {
			if err := fdb.ApplyRecord(rec); err != nil {
				b.Fatalf("ApplyRecord %d: %v", rec.Seq, err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkFollowerQuery measures a read against a live follower: a
// primary is loaded with 8 documents, a follower converges on it, and
// every iteration is one ad-hoc POST /v1/query over loopback HTTP —
// directly comparable to BenchmarkServiceQuery on the primary.
func BenchmarkFollowerQuery(b *testing.B) {
	dtd, doc := replCorpus(b)
	primary, err := sgmldb.OpenDTD(dtd, sgmldb.WithDataDir(b.TempDir()), sgmldb.WithCheckpointEvery(-1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { primary.Close() })
	srcs := make([]string, 8)
	for i := range srcs {
		srcs[i] = doc
	}
	if _, err := primary.LoadDocuments(srcs); err != nil {
		b.Fatal(err)
	}
	psrv, err := service.New(primary, service.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pts := httptest.NewServer(psrv)
	b.Cleanup(pts.Close)

	fdb, err := sgmldb.OpenFollower(dtd)
	if err != nil {
		b.Fatal(err)
	}
	fl := &service.Follower{DB: fdb, Primary: pts.URL, WaitMS: 200}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); fl.Run(ctx) }()
	b.Cleanup(func() { cancel(); <-done })
	deadline := time.Now().Add(15 * time.Second)
	for fdb.AppliedSeq() != 2 {
		if time.Now().After(deadline) {
			b.Fatalf("follower never converged (applied %d)", fdb.AppliedSeq())
		}
		time.Sleep(2 * time.Millisecond)
	}

	fsrv, err := service.New(fdb, service.Config{})
	if err != nil {
		b.Fatal(err)
	}
	fts := httptest.NewServer(fsrv)
	b.Cleanup(fts.Close)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, _ := benchPost(b, fts, "/v1/query", map[string]any{"query": benchServiceQuery})
		if status != http.StatusOK {
			b.Fatalf("status %d", status)
		}
	}
}

// BenchmarkPromote measures the promotion itself — the window during
// which neither node accepts writes during a controlled switchover.
// Each iteration builds a fresh durable follower off-clock (Promote is
// one-shot per node), applies a schema and a 16-document history, then
// times Promote(): the KindTerm append+fsync plus the synchronous
// new-term checkpoint that fences rejoining stale primaries.
func BenchmarkPromote(b *testing.B) {
	dtd, doc := replCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fdb, err := sgmldb.OpenFollower(dtd, sgmldb.WithDataDir(b.TempDir()), sgmldb.WithCheckpointEvery(-1))
		if err != nil {
			b.Fatal(err)
		}
		if err := fdb.ApplyRecord(wal.Record{Seq: 1, Kind: wal.KindSchema, Schema: dtd}); err != nil {
			b.Fatal(err)
		}
		for seq := uint64(2); seq <= 17; seq++ {
			if err := fdb.ApplyRecord(wal.Record{Seq: seq, Kind: wal.KindLoad, Docs: []string{doc}}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := fdb.Promote(); err != nil {
			b.Fatalf("Promote: %v", err)
		}
		b.StopTimer()
		fdb.Close()
		b.StartTimer()
	}
}
