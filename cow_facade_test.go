package sgmldb

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sgmldb/internal/object"
)

// facadeState captures everything about the published database state that
// a failed load must leave untouched.
type facadeState struct {
	epoch    uint64
	objects  int
	stats    string
	checks   int
	articles int
	indexed  int
	titles   string
}

func captureFacade(t *testing.T, db *Database) facadeState {
	t.Helper()
	got, err := db.Query(`select t from a in Articles, a PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := db.Instance().Root("Articles")
	return facadeState{
		epoch:    db.Epoch(),
		objects:  db.Stats().Objects,
		// Only the instance statistics: the serving counters (queries
		// observed, cache hits, …) advance with every capture and are not
		// published state.
		stats: fmt.Sprintf("%+v", db.Stats().Stats),
		checks:   len(db.Check()),
		articles: root.(*object.List).Len(),
		indexed:  len(db.state().Index.Docs()),
		titles:   got.String(),
	}
}

// TestFacadeFailedLoadIsAtomic is the facade half of the load-atomicity
// story: a rejected document — alone or anywhere inside a batch — leaves
// the published database byte-identical. The mid-load (post-parse)
// failure path is covered in internal/dtdmap's atomicity tests; here we
// assert the contract users observe through LoadDocument(s).
func TestFacadeFailedLoadIsAtomic(t *testing.T) {
	db := openArticleDB(t)
	good, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	const bad = `<article><title>only a title</title></article>`

	before := captureFacade(t, db)
	if before.checks != 0 {
		t.Fatalf("pre-state dirty: %d check errors", before.checks)
	}
	if _, err := db.LoadDocument(bad); err == nil {
		t.Fatal("invalid document accepted")
	}
	// A batch must be all-or-nothing: the valid first document must not
	// leak when its sibling is rejected.
	if _, err := db.LoadDocuments([]string{string(good), bad}); err == nil {
		t.Fatal("batch with invalid document accepted")
	}
	after := captureFacade(t, db)
	if before != after {
		t.Errorf("failed loads changed published state:\n before %+v\n after  %+v", before, after)
	}

	// The database stays fully usable: the next valid load succeeds and
	// publishes exactly one new epoch.
	if _, err := db.LoadDocument(string(good)); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != before.epoch+1 {
		t.Errorf("epoch after recovery load = %d, want %d", db.Epoch(), before.epoch+1)
	}
	if errs := db.Check(); len(errs) != 0 {
		t.Errorf("Check after recovery = %v", errs)
	}
}

// TestFacadeBatchLoadOneEpoch checks the batch contract of LoadDocuments:
// the whole batch becomes visible in a single snapshot publication — one
// epoch, one index version — never document by document.
func TestFacadeBatchLoadOneEpoch(t *testing.T) {
	db := openArticleDB(t)
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	e0 := db.Epoch()
	oids, err := db.LoadDocuments([]string{string(src), string(src)})
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 2 || oids[0] == oids[1] {
		t.Fatalf("oids = %v, want two distinct", oids)
	}
	if db.Epoch() != e0+1 {
		t.Errorf("epoch = %d, want exactly one bump from %d", db.Epoch(), e0)
	}
	root, _ := db.Instance().Root("Articles")
	if n := root.(*object.List).Len(); n != 3 {
		t.Errorf("Articles = %d documents, want 3", n)
	}
	if n := len(db.state().Index.Docs()); n != 3 {
		t.Errorf("index = %d documents, want 3", n)
	}
	if errs := db.Check(); len(errs) != 0 {
		t.Errorf("Check = %v", errs)
	}
	// Empty batches are a no-op, not a publication.
	if oids, err := db.LoadDocuments(nil); err != nil || oids != nil {
		t.Errorf("empty batch = %v, %v", oids, err)
	}
	if db.Epoch() != e0+1 {
		t.Errorf("empty batch published an epoch: %d", db.Epoch())
	}
}

// TestFacadePinnedSnapshotSurvivesLoads checks the reader half of the
// copy-on-write design: a pinned snapshot (as every query pins one) keeps
// answering with its own consistent (instance, index) pair while writers
// publish new versions over it.
func TestFacadePinnedSnapshotSurvivesLoads(t *testing.T) {
	db := openArticleDB(t)
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	pinned := db.Engine.State() // what a query starting now would see
	if _, err := db.LoadDocuments([]string{string(src), string(src)}); err != nil {
		t.Fatal(err)
	}
	if db.Instance() == pinned.Snap.Inst {
		t.Fatal("load published without a new instance version")
	}
	if db.Epoch() <= pinned.Snap.Epoch {
		t.Errorf("epoch %d not past pinned %d", db.Epoch(), pinned.Snap.Epoch)
	}
	// The pinned pair is frozen: one article, one indexed document — even
	// though the published state has three of each.
	root, _ := pinned.Snap.Inst.Root("Articles")
	if n := root.(*object.List).Len(); n != 1 {
		t.Errorf("pinned Articles = %d, want 1", n)
	}
	if n := len(pinned.Index.Docs()); n != 1 {
		t.Errorf("pinned index = %d documents, want 1", n)
	}
	if errs := pinned.Snap.Inst.Check(); len(errs) != 0 {
		t.Errorf("pinned snapshot dirty after later loads: %v", errs)
	}
	root, _ = db.Instance().Root("Articles")
	if n := root.(*object.List).Len(); n != 3 {
		t.Errorf("published Articles = %d, want 3", n)
	}
}

// TestFacadeRebindServesCurrentRoot is the regression test for the
// stale-plan hazard: rebinding an existing root to another object changes
// no schema, so the plan cache keeps serving the already-translated plan —
// which is correct only because plans read root bindings at run time, not
// at translate time. Before-and-after queries must follow the binding.
func TestFacadeRebindServesCurrentRoot(t *testing.T) {
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	src1, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	const oldTitle = "From Structured Documents to Novel Query Facilities"
	const newTitle = "An Entirely Different Headline"
	src2 := strings.Replace(string(src1), oldTitle, newTitle, 1)
	if src2 == string(src1) {
		t.Fatal("fixture title changed; update the test")
	}
	for _, algebra := range []bool{false, true} {
		t.Run(fmt.Sprintf("algebra=%v", algebra), func(t *testing.T) {
			db, err := OpenDTD(string(dtd), WithAlgebra(algebra))
			if err != nil {
				t.Fatal(err)
			}
			oids, err := db.LoadDocuments([]string{string(src1), src2})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Name("probe", oids[0]); err != nil {
				t.Fatal(err)
			}
			// The result binds title objects; render them to text so the
			// two documents are distinguishable.
			titles := func(v object.Value) string {
				var b strings.Builder
				for _, e := range v.(*object.Set).Elems() {
					b.WriteString(db.Text(e))
					b.WriteString("\n")
				}
				return b.String()
			}
			const q = `select t from probe PATH_p.title(t)`
			pq, err := db.Prepare(q) // compiled against the first binding
			if err != nil {
				t.Fatal(err)
			}
			got, err := db.Query(q) // populates the plan cache
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(titles(got), oldTitle) {
				t.Fatalf("first binding: %s lacks %q", titles(got), oldTitle)
			}
			// Rebind the root. No new root is declared, so the schema —
			// and with it every cached plan — stays valid and must now
			// resolve probe to the second document.
			if err := db.Name("probe", oids[1]); err != nil {
				t.Fatal(err)
			}
			for _, run := range []struct {
				name string
				eval func() (object.Value, error)
			}{
				{"Query", func() (object.Value, error) { return db.Query(q) }},
				{"Prepared.Run", func() (object.Value, error) { return pq.Run(context.Background()) }},
			} {
				got, err := run.eval()
				if err != nil {
					t.Fatalf("%s after rebind: %v", run.name, err)
				}
				if !strings.Contains(titles(got), newTitle) {
					t.Errorf("%s after rebind: %s lacks %q", run.name, titles(got), newTitle)
				}
				if strings.Contains(titles(got), oldTitle) {
					t.Errorf("%s after rebind: stale plan served the old binding: %s", run.name, titles(got))
				}
			}
		})
	}
}

// TestFacadeLoadVsQuerySnapshots races LoadDocument against QueryContext
// and checks snapshot semantics, not just race-cleanness: every answer
// must reflect a complete published epoch (the contains count equals some
// prefix of the load sequence), and the epochs a reader observes never go
// backwards.
func TestFacadeLoadVsQuerySnapshots(t *testing.T) {
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDTD(string(dtd), WithAlgebra(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocument(string(src)); err != nil {
		t.Fatal(err)
	}
	// Every copy of the article matches, so the answer size counts the
	// documents of the pinned snapshot — through the pinned index.
	const q = `select a from a in Articles where a contains "SGML"`
	const loads = 12
	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			last := 0
			for {
				stop := done.Load() // read before querying: one final pass after the writer finishes
				got, err := db.QueryContext(ctx, q)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				n := got.(*object.Set).Len()
				if n < last || n < 1 || n > 1+loads {
					errc <- fmt.Errorf("reader %d: count %d after %d (want monotonic in [1,%d])", r, n, last, 1+loads)
					return
				}
				last = n
				if stop {
					if n != 1+loads {
						errc <- fmt.Errorf("reader %d: final count %d, want %d", r, n, 1+loads)
					}
					return
				}
			}
		}(r)
	}
	for i := 0; i < loads; i++ {
		if _, err := db.LoadDocument(string(src)); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
