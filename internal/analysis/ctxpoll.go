package analysis

import (
	"go/ast"
	"go/types"
)

// The ctxpoll analyzer: the engine's cancellation guarantee ("a cancelled
// query returns ctx.Err() promptly") rests on every row-scan loop polling
// the context. A row scan is a loop that iterates a slice of valuations —
// ranging over a value of slice type whose element type is named
// Valuation, or counting with an index bounded by len() of such a slice.
// Its body (or the body of a function literal it runs) must reach a
// cancellation poll: a call to a function or method named err, Err,
// checkCtx, pollCtx or poll, or a receive from a Done() channel.
// Per-iteration cost is the loop author's business — strided polls
// (every k rows) satisfy the rule, since the call appears in the body.

// CtxpollAnalyzer checks that valuation scans poll cancellation.
var CtxpollAnalyzer = &Analyzer{
	Name:       "ctxpoll",
	Doc:        "row-scan loops over valuation slices must poll context cancellation",
	RunPackage: runCtxpoll,
}

// pollNames are the recognised cancellation-poll callees.
var pollNames = map[string]bool{
	"err":      true,
	"Err":      true,
	"checkCtx": true,
	"pollCtx":  true,
	"poll":     true,
}

func runCtxpoll(prog *Program, pkg *Package, report func(Diagnostic)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch loop := n.(type) {
			case *ast.RangeStmt:
				if isValuationSlice(pkg.Info.TypeOf(loop.X)) && !bodyPolls(loop.Body) {
					report(Diagnostic{Pos: loop.For,
						Message: "row-scan loop over valuations does not poll context cancellation"})
				}
			case *ast.ForStmt:
				if forOverValuations(pkg, loop) && !bodyPolls(loop.Body) {
					report(Diagnostic{Pos: loop.For,
						Message: "row-scan loop over valuations does not poll context cancellation"})
				}
			}
			return true
		})
	}
}

// isValuationSlice reports a []Valuation (by element type name, so the
// rule is testable outside the calculus package).
func isValuationSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := slice.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Valuation"
}

// forOverValuations reports a counting loop bounded by len() of a
// valuation slice.
func forOverValuations(pkg *Package, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return false
	}
	found := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
			if isValuationSlice(pkg.Info.TypeOf(call.Args[0])) {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyPolls reports whether the loop body reaches a cancellation poll.
// Function literals are descended into: the parallel scan hands each
// partition to a goroutine whose body does the polling.
func bodyPolls(body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				if pollNames[fun.Name] {
					polls = true
				}
			case *ast.SelectorExpr:
				if pollNames[fun.Sel.Name] {
					polls = true
				}
				if fun.Sel.Name == "Done" {
					polls = true
				}
			}
		}
		return !polls
	})
	return polls
}
