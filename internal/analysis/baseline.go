package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline grandfathers known findings so the suite can be turned on
// strict against a codebase that is not yet clean: baselined findings
// are reported in the JSON artifact but do not fail the build. The
// match key is (analyzer, file, message) — deliberately line-free, so
// unrelated edits that shift a finding a few lines do not resurrect
// it. A baseline entry that no longer matches anything is stale and
// IS a failure: baselines may only shrink deliberately (via the
// regenerate target), never rot silently.

// BaselineEntry identifies one grandfathered finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the serialized grandfather list.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineVersion is the current serialization format.
const baselineVersion = 1

// ReadBaseline loads a baseline file; a missing file is an empty
// baseline, not an error.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s has version %d, want %d", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Apply marks findings covered by the baseline as Baselined and
// returns the stale entries — baseline lines that matched nothing.
func (b *Baseline) Apply(findings []Finding) (stale []BaselineEntry) {
	keys := map[BaselineEntry]bool{}
	for _, e := range b.Findings {
		keys[e] = true
	}
	matched := map[BaselineEntry]bool{}
	for i := range findings {
		f := &findings[i]
		if f.Suppressed {
			continue
		}
		key := BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message}
		if keys[key] {
			f.Baselined = true
			matched[key] = true
		}
	}
	for _, e := range b.Findings {
		if !matched[e] {
			stale = append(stale, e)
		}
	}
	return stale
}

// BaselineOf builds the baseline covering every unsuppressed finding,
// deduplicated and sorted.
func BaselineOf(findings []Finding) *Baseline {
	seen := map[BaselineEntry]bool{}
	b := &Baseline{Version: baselineVersion, Findings: []BaselineEntry{}}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		e := BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message}
		if !seen[e] {
			seen[e] = true
			b.Findings = append(b.Findings, e)
		}
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteBaseline writes the baseline as stable, indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
