package sgmldb_test

// Service macro-benchmarks (BENCH_service.json): the full network round
// trip — HTTP request over loopback, auth, admission, query execution,
// JSON encoding — measured from the client side, the way a tenant sees
// the service.
//
//	BenchmarkServiceQuery    sequential ad-hoc POST /v1/query
//	BenchmarkServiceExecute  sequential POST /v1/execute over one handle
//	BenchmarkServiceMixed    concurrent workers, 50/50 ad-hoc/prepared,
//	                         reporting p50/p99/p999 latency percentiles
//
// This file is an external test package (package sgmldb_test) because it
// imports internal/service, which itself imports sgmldb.
//
// Run with: go test -run '^$' -bench 'Service' .

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgmldb"
	"sgmldb/internal/service"
)

// benchService starts an open-mode service over a database holding ndocs
// article documents and returns the httptest server plus a prepared
// handle for the benchmark query.
func benchService(b *testing.B, ndocs int) (*httptest.Server, string) {
	b.Helper()
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		b.Fatal(err)
	}
	doc, err := os.ReadFile("testdata/article.sgml")
	if err != nil {
		b.Fatal(err)
	}
	db, err := sgmldb.OpenDTD(string(dtd))
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]string, ndocs)
	for i := range srcs {
		srcs[i] = string(doc)
	}
	if _, err := db.LoadDocuments(srcs); err != nil {
		b.Fatal(err)
	}
	srv, err := service.New(db, service.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	status, body := benchPost(b, ts, "/v1/prepare", map[string]any{"query": benchServiceQuery})
	if status != http.StatusOK {
		b.Fatalf("prepare: status %d body %v", status, body)
	}
	handle, _ := body["handle"].(string)
	if handle == "" {
		b.Fatalf("prepare returned no handle: %v", body)
	}
	return ts, handle
}

const benchServiceQuery = `select a from a in Articles`

func benchPost(b *testing.B, ts *httptest.Server, path string, body any) (int, map[string]any) {
	b.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		b.Fatalf("non-JSON response %q: %v", data, err)
	}
	return resp.StatusCode, decoded
}

// BenchmarkServiceQuery measures the sequential ad-hoc path: every
// iteration parses, typechecks, plans (plan-cache hit after the first),
// runs and JSON-encodes over a real HTTP round trip.
func BenchmarkServiceQuery(b *testing.B) {
	ts, _ := benchService(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, _ := benchPost(b, ts, "/v1/query", map[string]any{"query": benchServiceQuery})
		if status != http.StatusOK {
			b.Fatalf("status %d", status)
		}
	}
}

// BenchmarkServiceExecute measures the prepared path: the handle skips
// per-call parse/typecheck/plan, so the delta to ServiceQuery is the
// compilation cost the wire handle amortizes away.
func BenchmarkServiceExecute(b *testing.B) {
	ts, handle := benchService(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		status, _ := benchPost(b, ts, "/v1/execute/"+handle, map[string]any{})
		if status != http.StatusOK {
			b.Fatalf("status %d", status)
		}
	}
}

// BenchmarkServiceMixed is the macro-benchmark: concurrent workers drive
// a 50/50 mix of ad-hoc queries and prepared executes, and the benchmark
// reports client-observed latency percentiles alongside throughput.
func BenchmarkServiceMixed(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("c=%d", workers), func(b *testing.B) {
			ts, handle := benchService(b, 8)
			latencies := make([]int64, b.N)
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						t0 := time.Now()
						var status int
						if i%2 == 0 {
							status, _ = benchPost(b, ts, "/v1/execute/"+handle, map[string]any{})
						} else {
							status, _ = benchPost(b, ts, "/v1/query", map[string]any{"query": benchServiceQuery})
						}
						latencies[i] = time.Since(t0).Microseconds()
						if status != http.StatusOK {
							b.Errorf("status %d", status)
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			pct := func(p float64) float64 {
				idx := int(p * float64(len(latencies)))
				if idx >= len(latencies) {
					idx = len(latencies) - 1
				}
				return float64(latencies[idx])
			}
			b.ReportMetric(pct(0.50), "p50-us")
			b.ReportMetric(pct(0.99), "p99-us")
			b.ReportMetric(pct(0.999), "p999-us")
		})
	}
}
