package algebra

import (
	"math/rand"
	"testing"

	"sgmldb/internal/calculus"
	"sgmldb/internal/object"
	"sgmldb/internal/path"
)

// TestDifferentialRandomPatterns generates random path patterns over the
// Knuth fixture and checks that the algebra agrees with the naive
// evaluator on every one — the adversarial leg of the Section 5.4
// equivalence ("it is possible to extend the equivalence between
// relational calculus and algebra to this extended calculus and algebra").
func TestDifferentialRandomPatterns(t *testing.T) {
	env := knuthEnv(t)
	r := rand.New(rand.NewSource(2024))
	attrs := []string{"title", "volumes", "chapters", "name", "author", "review", "nosuch"}
	for trial := 0; trial < 300; trial++ {
		elems, heads := randomPattern(r, attrs)
		if len(heads) == 0 {
			continue
		}
		q := &calculus.Query{
			Head: heads[:1],
			Body: calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
				Path: calculus.PathTerm{Elems: elems}},
		}
		if len(heads) > 1 {
			q.Body = calculus.Exists{Vars: heads[1:], Body: q.Body}
		}
		if err := calculus.CheckQuery(q); err != nil {
			continue // unsafe pattern shapes are rejected identically by both
		}
		naive, err1 := env.Eval(q)
		plan, err2 := Translate(env, q, Options{})
		if err1 != nil || err2 != nil {
			// "matches no schema path" may reject statically what the
			// naive evaluator answers with ∅; that is the only permitted
			// divergence.
			if err2 != nil && err1 == nil && naive.Len() == 0 {
				continue
			}
			if err1 != nil && err2 != nil {
				continue
			}
			t.Fatalf("trial %d: error divergence for %s: naive=%v algebra=%v", trial, q, err1, err2)
		}
		got, err := plan.Run(NewCtx(env))
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		if !object.Equal(naive.ToSet(), got.ToSet()) {
			t.Fatalf("trial %d: divergence for %s:\nnaive   %s\nalgebra %s\nplan:\n%s",
				trial, q, naive.ToSet(), got.ToSet(), plan.Explain())
		}
		// The pruning ablation must not change results either.
		if trial%10 == 0 {
			planNP, err := Translate(env, q, Options{NoPrune: true})
			if err != nil {
				t.Fatalf("trial %d: translate(NoPrune): %v", trial, err)
			}
			gotNP, err := planNP.Run(NewCtx(env))
			if err != nil {
				t.Fatalf("trial %d: run(NoPrune): %v", trial, err)
			}
			if !object.Equal(naive.ToSet(), gotNP.ToSet()) {
				t.Fatalf("trial %d: NoPrune divergence for %s", trial, q)
			}
		}
	}
}

// randomPattern builds a random element sequence; it returns the declared
// variables (first one is used as the head).
func randomPattern(r *rand.Rand, attrs []string) ([]calculus.PathElem, []calculus.VarDecl) {
	var elems []calculus.PathElem
	var decls []calculus.VarDecl
	nVar := 0
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		switch r.Intn(7) {
		case 0:
			nVar++
			name := "P" + string(rune('0'+nVar))
			elems = append(elems, calculus.ElemVar{Name: name})
			decls = append(decls, calculus.VarDecl{Name: name, Sort: calculus.SortPath})
		case 1:
			elems = append(elems, calculus.ElemAttr{A: calculus.AttrName{Name: attrs[r.Intn(len(attrs))]}})
		case 2:
			nVar++
			name := "A" + string(rune('0'+nVar))
			elems = append(elems, calculus.ElemAttr{A: calculus.AttrVar{Name: name}})
			decls = append(decls, calculus.VarDecl{Name: name, Sort: calculus.SortAttr})
		case 3:
			elems = append(elems, calculus.ElemIndex{I: calculus.Num(int64(r.Intn(3)))})
		case 4:
			nVar++
			name := "I" + string(rune('0'+nVar))
			elems = append(elems, calculus.ElemIndex{I: calculus.Var{Name: name}})
			decls = append(decls, calculus.VarDecl{Name: name, Sort: calculus.SortData})
		case 5:
			elems = append(elems, calculus.ElemDeref{})
		default:
			nVar++
			name := "X" + string(rune('0'+nVar))
			elems = append(elems, calculus.ElemBind{X: name})
			decls = append(decls, calculus.VarDecl{Name: name, Sort: calculus.SortData})
		}
	}
	return elems, decls
}

// TestDifferentialLiberalSemantics repeats a slice of the differential
// test under the liberal path semantics over a cyclic instance.
func TestDifferentialLiberalSemantics(t *testing.T) {
	env := knuthEnv(t)
	env.Semantics = path.Liberal
	q := &calculus.Query{
		Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
		Body: calculus.Exists{
			Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
			Body: calculus.PathAtom{Base: calculus.NameRef{Name: "Knuth_Books"},
				Path: calculus.P(calculus.ElemVar{Name: "P"},
					calculus.ElemAttr{A: calculus.AttrName{Name: "author"}},
					calculus.ElemBind{X: "X"})},
		},
	}
	naive, err := env.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Translate(env, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(NewCtx(env))
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(naive.ToSet(), got.ToSet()) {
		t.Fatalf("liberal divergence:\nnaive   %s\nalgebra %s", naive.ToSet(), got.ToSet())
	}
}

// TestGuidePruning verifies the guide actually prunes: navigating for a
// title must not enumerate into review sets (strings cannot satisfy
// .title), which the candidate count reflects.
func TestGuidePruning(t *testing.T) {
	env := knuthEnv(t)
	elems := []calculus.PathElem{
		calculus.ElemVar{Name: "P"},
		calculus.ElemAttr{A: calculus.AttrName{Name: "title"}},
		calculus.ElemBind{X: "T"},
	}
	g := newGuide(env.Inst.Schema(), elems)
	// A string can never satisfy ".title…": sat at position 1 is false.
	strID := g.id(object.StringType)
	if g.satID(1, strID) {
		t.Error("a string must not satisfy .title")
	}
	if g.satVarID(1, strID) {
		t.Error("nothing reachable from a string satisfies .title")
	}
	// The Book tuple does satisfy it.
	sigma, _ := env.Inst.Schema().Hierarchy().TypeOf("Book")
	if !g.satID(1, g.id(sigma)) {
		t.Error("the book tuple must satisfy .title")
	}
	if g.CandidateCount() == 0 {
		t.Error("candidate count")
	}
}
