// Package analysis is sgmldb's domain-specific static-analysis suite: a
// from-scratch driver on go/parser and go/types (packages enumerated via
// `go list -json`), with analyzers that enforce the repo's hand-kept
// invariants mechanically:
//
//   - exhaustive: switches over closed kind sets (types marked
//     //sgmldbvet:closed) must handle every variant, so that removing or
//     adding a variant fails CI instead of surfacing as a runtime panic.
//   - ctxpoll: row-scan loops over valuation slices must poll context
//     cancellation, keeping long queries promptly cancellable.
//   - lockcheck: a method that acquires its receiver's mutex must release
//     it on every path and must not re-acquire it — directly or through
//     another method of the same receiver (self-deadlock).
//   - errwrap: fmt.Errorf with an error operand must wrap it with %w, and
//     facade-level errors must be sentinel-based.
//   - nopanic: a panic reachable from an exported function is flagged
//     unless annotated.
//   - faultpoint: fault-injection sites must be package-level
//     declarations, and production code may only Hit them — the arming
//     machinery stays in tests.
//   - atomiccheck: a struct field accessed through sync/atomic anywhere
//     must never be read or written plainly anywhere else.
//   - publishorder: in functions annotated //sgmldbvet:commitpath, the
//     WAL append+fsync must precede the atomic snapshot publish, and a
//     failed append must never reach the publish.
//   - snapshotpin: one query/evaluator chain must load the published
//     engine State exactly once and thread it — a second load in the
//     same chain can observe a different epoch (torn snapshot).
//   - wirecode: every error sentinel must have a Code(err) wire-code
//     mapping and a DESIGN.md table entry, and HTTP handlers may respond
//     only through the JSON envelope helper.
//
// Intentional deviations are annotated in source as
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
//
// The driver analyzes target packages in parallel: one task per
// (per-package analyzer, package) pair plus one per whole-program
// analyzer, all sharing the single type-checked Program and its memoized
// indices (closed sets, call graph, atomic-field census, pin family).
// Findings are sorted into a deterministic order afterwards, so a
// parallel run reports exactly what a serial run reports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go standard library
	Target     bool // named by the load patterns: analyzed, not just imported
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Program is a load result: the analysis targets plus every dependency,
// sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Dir      string     // the directory the load patterns were resolved in
	Packages []*Package // in dependency order (dependencies first)
	Targets  []*Package // the packages named by the load patterns
	packages map[string]*Package

	closedOnce sync.Once
	closed     *closedSets

	graphOnce sync.Once
	graph     *callGraph

	atomicOnce sync.Once
	atomics    *atomicCensus

	pinOnce sync.Once
	pins    *pinCensus
}

// Diagnostic is one finding, positioned in the program's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Finding is one fully resolved diagnostic: position rendered against
// the program's load directory, plus the suppression state the JSON
// emitter and the baseline machinery work with. Suppressed findings
// (covered by a //lint:allow directive) and baselined findings
// (grandfathered by a -baseline file) are reported in the JSON artifact
// but do not fail the build.
type Finding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"` // relative to the load directory when possible
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Baselined  bool   `json:"baselined"`

	pos token.Pos
}

// Pos returns the finding's position in the program's FileSet.
func (f Finding) Pos() token.Pos { return f.pos }

// Active reports whether the finding should fail the build: neither
// suppressed in source nor grandfathered by the baseline.
func (f Finding) Active() bool { return !f.Suppressed && !f.Baselined }

// Analyzer is one check. Exactly one of Run / RunPackage is set:
// RunPackage analyzes one target package and is the driver's unit of
// parallelism; Run analyzes the whole program at once (analyzers whose
// invariant spans packages, like the nopanic call graph). Neither may
// mutate the program.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(prog *Program, report func(Diagnostic))
	RunPackage func(prog *Program, pkg *Package, report func(Diagnostic))
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ExhaustiveAnalyzer,
		CtxpollAnalyzer,
		LockcheckAnalyzer,
		ErrwrapAnalyzer,
		NopanicAnalyzer,
		FaultpointAnalyzer,
		AtomicCheckAnalyzer,
		PublishOrderAnalyzer,
		SnapshotPinAnalyzer,
		WireCodeAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Analyze applies the analyzers to the program's targets on the given
// number of workers (0 means GOMAXPROCS) and returns every diagnostic —
// suppressed ones included, marked — as findings in a deterministic
// order. Malformed //lint:allow directives (missing reason) are reported
// under the "directive" pseudo-analyzer and are never suppressible.
func Analyze(prog *Program, analyzers []*Analyzer, workers int) []Finding {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type task func(report func(Diagnostic))
	var tasks []task
	for _, a := range analyzers {
		a := a
		switch {
		case a.RunPackage != nil:
			for _, pkg := range prog.Targets {
				pkg := pkg
				tasks = append(tasks, func(report func(Diagnostic)) {
					a.RunPackage(prog, pkg, func(d Diagnostic) {
						d.Analyzer = a.Name
						report(d)
					})
				})
			}
		case a.Run != nil:
			tasks = append(tasks, func(report func(Diagnostic)) {
				a.Run(prog, func(d Diagnostic) {
					d.Analyzer = a.Name
					report(d)
				})
			})
		}
	}

	var (
		mu    sync.Mutex
		diags []Diagnostic
	)
	report := func(d Diagnostic) {
		mu.Lock()
		diags = append(diags, d)
		mu.Unlock()
	}
	ch := make(chan task)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t(report)
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()

	allows, bad := collectAllows(prog)
	findings := make([]Finding, 0, len(diags)+len(bad))
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		findings = append(findings, Finding{
			Analyzer:   d.Analyzer,
			File:       relFile(prog.Dir, pos.Filename),
			Line:       pos.Line,
			Col:        pos.Column,
			Message:    d.Message,
			Suppressed: allows.covers(d.Analyzer, pos),
			pos:        d.Pos,
		})
	}
	for _, d := range bad {
		pos := prog.Fset.Position(d.Pos)
		findings = append(findings, Finding{
			Analyzer: d.Analyzer,
			File:     relFile(prog.Dir, pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
			pos:      d.Pos,
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}

// relFile renders a file path relative to the load directory (stable
// across machines, so baselines and JSON artifacts are portable).
func relFile(dir, file string) string {
	if dir == "" {
		return file
	}
	rel, err := filepath.Rel(dir, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}

// Run applies the analyzers serially and returns the surviving
// diagnostics sorted by position: findings suppressed by a well-formed
// //lint:allow directive are dropped, and malformed directives (missing
// reason) are themselves reported. It is the single-goroutine view of
// Analyze, kept for tests and embedders that want plain diagnostics.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, f := range Analyze(prog, analyzers, 1) {
		if f.Suppressed {
			continue
		}
		out = append(out, Diagnostic{Pos: f.pos, Analyzer: f.Analyzer, Message: f.Message})
	}
	return out
}

// allowKey identifies one //lint:allow site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// covers reports whether an allow directive for the analyzer sits on the
// diagnostic's line or the line directly above it.
func (s allowSet) covers(analyzer string, pos token.Position) bool {
	return s[allowKey{pos.Filename, pos.Line, analyzer}] ||
		s[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}

// collectAllows gathers the //lint:allow directives of every target file.
// A directive without a reason is reported: the annotation grammar is
// "//lint:allow <analyzer> <reason>", and the reason is the audit trail.
func collectAllows(prog *Program) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var bad []Diagnostic
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:allow") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
					pos := prog.Fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "directive",
							Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
						})
						continue
					}
					allows[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return allows, bad
}

// funcBodies visits every function declaration of a target package with
// its resolved types.Func (nil receiver-less init bodies included).
func funcBodies(pkg *Package, visit func(decl *ast.FuncDecl, fn *types.Func)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
			visit(decl, fn)
		}
	}
}

// calleeOf resolves a call expression to the called named function or
// method, when the call is direct (not through an interface value whose
// dynamic type is unknown — those resolve to the interface method).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPanicCall reports a call to the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
