package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sgmldb/internal/text"
)

// Term chain tests (DESIGN.md §12): the log stamps every record with its
// promotion term, persists the term across reopen and checkpoint, and
// refuses anything that would make the chain run backwards.

func TestLogTermStampingAndAdoption(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Term(); got != 1 {
		t.Fatalf("fresh log term = %d, want 1", got)
	}
	// Term 0 records are stamped with the log's current term.
	if err := l.Append(Record{Kind: KindSchema, Schema: "<!ELEMENT a (#PCDATA)>"}); err != nil {
		t.Fatal(err)
	}
	// A promotion record raises the term; later appends inherit it.
	if err := l.Append(Record{Kind: KindTerm, Term: 3}); err != nil {
		t.Fatal(err)
	}
	if got := l.Term(); got != 3 {
		t.Fatalf("term after bump = %d, want 3", got)
	}
	if err := l.Append(Record{Kind: KindLoad, Docs: []string{"<a>x</a>"}}); err != nil {
		t.Fatal(err)
	}
	// A stale-term append is refused before touching the file.
	err = l.Append(Record{Kind: KindLoad, Term: 2, Docs: []string{"<a>y</a>"}})
	if !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("stale append: err = %v, want ErrStaleTerm", err)
	}
	seq := l.Seq()
	l.Close()

	// Reopen recovers the term from the scan and the replay carries the
	// stamped terms.
	l2, _, tail, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Term(); got != 3 {
		t.Fatalf("reopened term = %d, want 3", got)
	}
	if got := l2.Seq(); got != seq {
		t.Fatalf("reopened seq = %d, want %d", got, seq)
	}
	wantTerms := []uint64{1, 3, 3}
	for i, rec := range tail {
		if rec.Term != wantTerms[i] {
			t.Errorf("replayed record %d term = %d, want %d", i, rec.Term, wantTerms[i])
		}
	}
}

func TestLogTermRegressionIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindTerm, Term: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Forge a term-1 frame behind the bump: Reset a scratch log to the
	// right position, append, splice its frames on.
	scratch := t.TempDir()
	sl, _, _, err := Open(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Reset(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := sl.Append(Record{Kind: KindLoad, Docs: []string{"<a>stale</a>"}}); err != nil {
		t.Fatal(err)
	}
	sl.Close()
	forged, err := os.ReadFile(filepath.Join(scratch, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	var nl int
	for nl = 0; forged[nl] != '\n'; nl++ {
	}
	logPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(forged[nl+1:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, _, _, err := Open(dir); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("open with term regression: err = %v, want ErrCorruptLog", err)
	}
	if _, err := Fsck(dir, false); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("fsck with term regression: err = %v, want ErrCorruptLog", err)
	}
}

func TestCheckpointCarriesTerm(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindSchema, Schema: "d"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindTerm, Term: 4}); err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Seq: l.Seq(), Epoch: 1, Term: l.Term(), DTD: "d", Inst: checkpointInstance(t), Index: text.NewIndex()}
	if err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncatePrefix(ck.Seq); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Open adopts the checkpoint's term even though the log holds no
	// frames anymore.
	l2, ck2, tail, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if ck2 == nil || ck2.Term != 4 {
		t.Fatalf("reopened checkpoint = %+v, want term 4", ck2)
	}
	if len(tail) != 0 {
		t.Fatalf("tail after covering checkpoint: %d records", len(tail))
	}
	if got := l2.Term(); got != 4 {
		t.Fatalf("reopened term = %d, want 4 (from checkpoint)", got)
	}
	// The next append continues at the checkpointed term.
	if err := l2.Append(Record{Kind: KindLoad, Docs: []string{"<a>x</a>"}}); err != nil {
		t.Fatal(err)
	}
	frames, _, err := l2.FramesAfter(ck2.Seq, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := DecodeFrame(frames)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Term != 4 {
		t.Fatalf("post-checkpoint append term = %d, want 4", rec.Term)
	}
}

func TestFramesAfterTermAnchor(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Kind: KindSchema, Schema: "d"}); err != nil { // seq 1, term 1
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindTerm, Term: 2}); err != nil { // seq 2, term 2
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindLoad, Docs: []string{"<a>x</a>"}}); err != nil { // seq 3, term 2
		t.Fatal(err)
	}

	// Matching anchors serve frames.
	if _, last, err := l.FramesAfter(1, 1, 1<<20); err != nil || last != 3 {
		t.Fatalf("FramesAfter(1, term 1) = (last %d, %v), want (3, nil)", last, err)
	}
	if _, last, err := l.FramesAfter(2, 2, 1<<20); err != nil || last != 3 {
		t.Fatalf("FramesAfter(2, term 2) = (last %d, %v), want (3, nil)", last, err)
	}
	// Term 0 anchors skip the check (pre-term clients, fresh followers).
	if _, last, err := l.FramesAfter(1, 0, 1<<20); err != nil || last != 3 {
		t.Fatalf("FramesAfter(1, term 0) = (last %d, %v), want (3, nil)", last, err)
	}
	// A diverged anchor — right seq, wrong term — is refused.
	if _, _, err := l.FramesAfter(1, 2, 1<<20); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("FramesAfter(1, term 2): err = %v, want ErrStaleTerm", err)
	}
	// The caught-up case uses the cached term: anchor == last seq.
	if _, _, err := l.FramesAfter(3, 1, 1<<20); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("FramesAfter(3, term 1): err = %v, want ErrStaleTerm", err)
	}
	if _, last, err := l.FramesAfter(3, 2, 1<<20); err != nil || last != 3 {
		t.Fatalf("FramesAfter(3, term 2) = (last %d, %v), want (3, nil)", last, err)
	}
	// An anchor past the log is another history entirely.
	if _, _, err := l.FramesAfter(9, 2, 1<<20); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("FramesAfter(9, term 2): err = %v, want ErrStaleTerm", err)
	}

	// After truncation the floor's term backs the anchor check.
	if err := WriteCheckpoint(dir, &Checkpoint{Seq: 2, Epoch: 1, Term: 2, DTD: "d", Inst: checkpointInstance(t), Index: text.NewIndex()}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncatePrefix(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.FramesAfter(2, 1, 1<<20); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("FramesAfter(floor, wrong term): err = %v, want ErrStaleTerm", err)
	}
	if _, last, err := l.FramesAfter(2, 2, 1<<20); err != nil || last != 3 {
		t.Fatalf("FramesAfter(floor, right term) = (last %d, %v), want (3, nil)", last, err)
	}
}

func TestLogReset(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Kind: KindLoad, Docs: []string{"<a>x</a>"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(10, 5); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 10 || l.Term() != 5 {
		t.Fatalf("after Reset: seq %d term %d, want 10/5", l.Seq(), l.Term())
	}
	// The old frames are gone; the next append continues the new history.
	if frames, last, err := l.FramesAfter(10, 5, 1<<20); err != nil || len(frames) != 0 || last != 10 {
		t.Fatalf("FramesAfter after Reset = (%d bytes, last %d, %v), want empty", len(frames), last, err)
	}
	if err := l.Append(Record{Kind: KindLoad, Docs: []string{"<a>y</a>"}}); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 11 {
		t.Fatalf("seq after post-Reset append = %d, want 11", l.Seq())
	}
	l.Close()

	// A Reset floor is only legal behind a covering checkpoint — that is
	// the bootstrap order (Reset, then the shipped checkpoint lands).
	// With one in place the reopen resumes the new history.
	if err := WriteCheckpoint(dir, &Checkpoint{Seq: 10, Epoch: 1, Term: 5, DTD: "d", Inst: checkpointInstance(t), Index: text.NewIndex()}); err != nil {
		t.Fatal(err)
	}
	l2, _, tail, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(tail) != 1 || tail[0].Seq != 11 || tail[0].Term != 5 {
		t.Fatalf("reopened tail = %+v, want one record seq 11 term 5", tail)
	}
}

func TestScrubTermRegression(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Kind: KindTerm, Term: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Scrub(); err != nil {
		t.Fatalf("clean scrub: %v", err)
	}
}
