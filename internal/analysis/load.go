package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// listPackages enumerates the named patterns and their full dependency
// closure via `go list -json -deps`, which emits dependencies before the
// packages that import them — exactly the order a type checker needs.
// Cgo is disabled so every listed package is pure Go source.
func listPackages(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// parsedPackage is one package's parse result, produced concurrently.
type parsedPackage struct {
	files []*ast.File
	err   error
}

// parseAll parses every listed package's files on a worker pool sharing
// one FileSet (token.FileSet is safe for concurrent AddFile). Parsing
// dominates load time before type checking, and every package's parse is
// independent, so this is the cheap half of the driver's parallelism;
// type checking stays sequential in dependency order.
func parseAll(fset *token.FileSet, listed []listedPackage) []parsedPackage {
	out := make([]parsedPackage, len(listed))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, lp := range listed {
		if lp.ImportPath == "unsafe" || lp.Error != nil || len(lp.GoFiles) == 0 {
			continue
		}
		target := !lp.DepOnly && !lp.Standard
		mode := parser.SkipObjectResolution
		if target || !lp.Standard {
			// Targets keep comments: the //sgmldbvet:closed, commitpath and
			// //lint:allow directives live there. So do module dependencies,
			// whose type declarations may carry closed-set directives used
			// while analyzing a dependent package.
			mode |= parser.ParseComments
		}
		i, lp := i, lp
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			files := make([]*ast.File, 0, len(lp.GoFiles))
			for _, f := range lp.GoFiles {
				file, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, mode)
				if err != nil {
					out[i].err = fmt.Errorf("analysis: parsing %s: %w", lp.ImportPath, err)
					return
				}
				files = append(files, file)
			}
			out[i].files = files
		}()
	}
	wg.Wait()
	return out
}

// Load enumerates the packages matching the patterns (relative to dir),
// parses them in parallel and type-checks them together with their whole
// dependency closure into one shared Program ready for analysis. Only
// the packages named by the patterns become analysis targets;
// dependencies (including the standard library, type-checked from source
// with function bodies ignored) serve solely as type information.
//
// Loading is strict about driver-level failures so the vet gate cannot
// silently pass a broken tree: a pattern set that matches no packages, a
// package `go list` reports an error for, a file that does not parse,
// and a target or module-dependency package that does not type-check are
// all errors. (Standard-library packages stay lenient: their bodies may
// use compiler intrinsics that do not check from source.)
func Load(dir string, patterns []string) (*Program, error) {
	listed, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	prog := &Program{
		Fset:     token.NewFileSet(),
		Dir:      absDir,
		packages: map[string]*Package{},
	}
	parsed := parseAll(prog.Fset, listed)
	typesPkgs := map[string]*types.Package{"unsafe": types.Unsafe}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := typesPkgs[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("analysis: import %q not loaded", path)
	})
	for i, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			return nil, fmt.Errorf("analysis: %s has no Go files", lp.ImportPath)
		}
		if parsed[i].err != nil {
			return nil, parsed[i].err
		}
		target := !lp.DepOnly && !lp.Standard
		files := parsed[i].files
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			// Dependency bodies are irrelevant to export information;
			// skipping them keeps whole-stdlib checking cheap.
			IgnoreFuncBodies: !target && lp.Standard,
			// Dependencies may contain constructs whose *bodies* do not
			// check cleanly from source (compiler intrinsics); collect
			// instead of aborting, the package object is still usable.
			Error: func(error) {},
		}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
		if err != nil && !lp.Standard {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
		}
		typesPkgs[lp.ImportPath] = tpkg
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			Target:     target,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}
		prog.packages[lp.ImportPath] = pkg
		prog.Packages = append(prog.Packages, pkg)
		if target {
			prog.Targets = append(prog.Targets, pkg)
		}
	}
	if len(prog.Targets) == 0 {
		return nil, fmt.Errorf("analysis: patterns %s matched no packages", strings.Join(patterns, " "))
	}
	return prog, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
