// Command sgmldbfsck validates (and optionally repairs) an sgmldb data
// directory offline — the operator's tool for the morning after a crash
// or a storage fault (DESIGN.md §11). It never runs against a live
// database.
//
// Usage:
//
//	sgmldbfsck -verify dir    # read-only: report, never write
//	sgmldbfsck -repair dir    # fix recoverable crash damage in place
//
// Verify classifies the directory and exits:
//
//	0  clean — recovery would replay it without repairs
//	1  recoverable crash damage (torn log tail, stray temp files,
//	   undecodable newer checkpoint with a valid one behind it);
//	   -repair would fix it, and so would normal recovery
//	2  corrupt — damage inside the committed prefix (bad checksum,
//	   sequence gap, log ahead of every valid checkpoint); restore
//	   from a replica or backup
//	3  usage error, or the directory cannot be read at all
//
// Repair fixes exactly the exit-1 bucket the way recovery would —
// truncate the torn tail on the last good frame edge, delete stray temp
// files and undecodable checkpoints — then exits 0. Corruption is never
// repaired: repair exits 2 and leaves the directory untouched past the
// point of the finding.
//
// Verify also reports the log's term chain (DESIGN.md §12): the first
// and last promotion terms, how many term bumps the log holds, and the
// newest checkpoint's term. The chain must be non-decreasing; a term
// regression mid-log is corruption (exit 2) — repair never truncates
// across a term boundary, because the records behind a bump are another
// primary's durable history, not crash damage.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sgmldb/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgmldbfsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verify := fs.Bool("verify", false, "validate the directory read-only")
	repair := fs.Bool("repair", false, "fix recoverable crash damage in place")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sgmldbfsck -verify|-repair <data-dir>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *verify == *repair || fs.NArg() != 1 {
		fs.Usage()
		return 3
	}
	dir := fs.Arg(0)

	rep, err := wal.Fsck(dir, *repair)
	if err != nil {
		if errors.Is(err, wal.ErrCorruptLog) {
			fmt.Fprintf(stderr, "sgmldbfsck: %s: CORRUPT: %v\n", dir, err)
			report(stdout, rep)
			return 2
		}
		fmt.Fprintf(stderr, "sgmldbfsck: %s: %v\n", dir, err)
		return 3
	}
	report(stdout, rep)
	switch {
	case rep.Repaired:
		fmt.Fprintf(stdout, "%s: repaired\n", dir)
		return 0
	case rep.Clean():
		fmt.Fprintf(stdout, "%s: clean\n", dir)
		return 0
	default:
		fmt.Fprintf(stdout, "%s: recoverable crash damage (run -repair)\n", dir)
		return 1
	}
}

// report prints what the pass found, one line per fact, greppable.
func report(w io.Writer, rep *wal.FsckReport) {
	if rep == nil {
		return
	}
	fmt.Fprintf(w, "log: %d frames, last seq %d\n", rep.Frames, rep.LastSeq)
	fmt.Fprintf(w, "terms: first %d, last %d, %d bumps (checkpoint term %d)\n",
		rep.FirstTerm, rep.LastTerm, rep.TermBumps, rep.CheckpointTerm)
	fmt.Fprintf(w, "checkpoints: %d valid (newest covers seq %d), %d undecodable\n",
		rep.Checkpoints, rep.CheckpointSeq, rep.BadCheckpoints)
	if rep.TornTail {
		fmt.Fprintf(w, "torn tail at offset %d\n", rep.TornOffset)
	}
	if rep.StrayTemps > 0 {
		fmt.Fprintf(w, "stray temp files: %d\n", rep.StrayTemps)
	}
}
