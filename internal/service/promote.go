package service

import (
	"fmt"
	"net/http"

	"sgmldb"
)

// POST /v1/promote — controlled failover (DESIGN.md §12). Promotes this
// node's durable follower to a writable primary at a fresh term. The
// operator (or an external coordinator) calls it on the chosen survivor
// after the old primary dies, or on the target of a planned switchover
// after lag reaches zero. Idempotence is the caller's problem by design:
// a second promote on a node that already switched is 409 NOT_FOLLOWER,
// which tells the caller the first one won.
//
// The endpoint is governed like every write: it authenticates, counts
// against the tenant, and honors draining. A tenant that may not load
// documents may not promote either — both change what every reader sees.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	t, release, ok := s.enter(w, r)
	if !ok {
		return
	}
	defer release()
	if t.cfg.DenyLoad {
		t.errors.Add(1)
		fail(w, codeForbidden, fmt.Sprintf("tenant %q may not promote", t.cfg.Name))
		return
	}
	newTerm, err := s.db.Promote()
	if err != nil {
		if code := sgmldb.Code(err); code != sgmldb.CodeNotFollower {
			t.errors.Add(1)
		}
		failErr(w, err)
		return
	}
	if s.OnPromote != nil {
		s.OnPromote(newTerm)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"promoted": true,
		"term":     newTerm,
		"seq":      s.db.AppliedSeq(),
	})
}
