// Package wirecode is a sgmldbvet fixture: sentinels need Code(err)
// mappings, wire codes need DESIGN.md entries (this directory carries
// its own DESIGN.md), and responses go through the writeJSON envelope.
package wirecode

import (
	"errors"
	"net/http"
)

var (
	ErrMapped     = errors.New("mapped")
	ErrUnmapped   = errors.New("unmapped") // want "no wire-code mapping in Code"
	ErrStaleTerm  = errors.New("stale term")
	ErrReplicaGap = errors.New("replica gap")
)

const (
	CodeOK         = ""                    // empty: never hits the wire
	CodeMapped     = "MAPPED"              // documented below
	codeLocal      = "LOCAL_OK"            // documented below
	CodeMissing    = "MISSING_FROM_DESIGN" // want "not documented in DESIGN.md"
	CodeStaleTerm  = "STALE_TERM"          // failover codes must be documented
	CodeReplicaGap = "REPLICA_GAP"         // like any other (table below)
)

func Code(err error) string {
	if err == nil {
		return CodeOK
	}
	if errors.Is(err, ErrMapped) {
		return CodeMapped
	}
	if errors.Is(err, ErrStaleTerm) {
		return CodeStaleTerm
	}
	if errors.Is(err, ErrReplicaGap) {
		return CodeReplicaGap
	}
	return codeLocal
}

func writeJSON(w http.ResponseWriter, status int, v []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(v)
}

func good(w http.ResponseWriter) { writeJSON(w, 200, []byte("{}")) }

func bad(w http.ResponseWriter) {
	http.Error(w, "boom", 500) // want "not http.Error"
}

func naked(w http.ResponseWriter) {
	w.WriteHeader(500) // want "bypasses the writeJSON envelope"
}

func raw(w http.ResponseWriter) {
	//lint:allow wirecode streaming endpoint writes raw bytes by design
	_, _ = w.Write([]byte("raw"))
}
