#!/bin/sh
# Service smoke test (make smoke / part of make ci): build sgmldbd and
# sgmldbload, start the server on loopback in tenant mode over the
# article corpus, fire a load-generator burst through the authenticated
# key, require zero request errors, then SIGTERM the server and require
# a clean drain (exit 0). Fails fast on any step.
set -eu

GO=${GO:-go}
ADDR=${SGMLDBD_ADDR:-127.0.0.1:8344}
TMP=$(mktemp -d)
SRV_PID=

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "service_smoke: building"
$GO build -o "$TMP/sgmldbd" ./cmd/sgmldbd
$GO build -o "$TMP/sgmldbload" ./cmd/sgmldbload

cat > "$TMP/tenants.json" <<'EOF'
{"tenants": [
  {"name": "smoke", "api_key": "smoke-key", "max_concurrent": 32, "timeout_ms": 10000}
]}
EOF

echo "service_smoke: starting sgmldbd on $ADDR"
"$TMP/sgmldbd" -dtd testdata/article.dtd -addr "$ADDR" -tenants "$TMP/tenants.json" \
    testdata/article.sgml testdata/article.sgml testdata/article.sgml &
SRV_PID=$!

# Wait for the health endpoint (the server binds asynchronously).
i=0
until curl -sf "http://$ADDR/v1/health" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "service_smoke: server never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

echo "service_smoke: load burst"
"$TMP/sgmldbload" -addr "http://$ADDR" -key smoke-key -n 500 -c 8 -o "$TMP/report.json"
cat "$TMP/report.json"
grep -q '"errors": 0' "$TMP/report.json" || {
    echo "service_smoke: load generator reported request errors" >&2
    exit 1
}

echo "service_smoke: draining"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || {
    echo "service_smoke: sgmldbd exited non-zero" >&2
    SRV_PID=
    exit 1
}
SRV_PID=
echo "service_smoke: ok"
