package service

import (
	"sgmldb/internal/object"
)

// ValueJSON encodes a query result value as the JSON-marshallable shape
// the wire responses carry:
//
//	atoms     → JSON scalars (nil, number, string, bool)
//	oids      → their printed form ("o12")
//	tuples    → objects keyed by attribute name
//	lists     → arrays (document order preserved)
//	sets      → arrays (canonical element order, so responses are
//	            deterministic across servers and runs)
//	unions    → a single-key object {marker: value}
//
// Anything outside the closed value set falls back to its String form, so
// the codec can never fail a response that the engine produced.
func ValueJSON(v object.Value) any {
	switch x := v.(type) {
	case nil, object.Nil:
		return nil
	case object.Int:
		return int64(x)
	case object.Float:
		return float64(x)
	case object.String_:
		return string(x)
	case object.Bool:
		return bool(x)
	case object.OID:
		return x.String()
	case *object.Tuple:
		m := make(map[string]any, x.Len())
		for i := 0; i < x.Len(); i++ {
			f := x.At(i)
			m[f.Name] = ValueJSON(f.Value)
		}
		return m
	case *object.List:
		out := make([]any, x.Len())
		for i := range out {
			out[i] = ValueJSON(x.At(i))
		}
		return out
	case *object.Set:
		out := make([]any, x.Len())
		for i := range out {
			out[i] = ValueJSON(x.At(i))
		}
		return out
	case *object.Union_:
		return map[string]any{x.Marker: ValueJSON(x.Value)}
	default:
		return v.String()
	}
}

// RowsJSON flattens a result value into the response row array: sets and
// lists contribute one row per element, any other value is a single row.
func RowsJSON(v object.Value) []any {
	switch x := v.(type) {
	case *object.Set:
		out := make([]any, x.Len())
		for i := range out {
			out[i] = ValueJSON(x.At(i))
		}
		return out
	case *object.List:
		out := make([]any, x.Len())
		for i := range out {
			out[i] = ValueJSON(x.At(i))
		}
		return out
	default:
		return []any{ValueJSON(v)}
	}
}
