package text

import (
	"reflect"
	"testing"
)

// TestAddReplacesPostings is the re-index regression test: Adding the
// same DocID twice must replace the document's postings, not accumulate
// out-of-order positions that break the binary search in hasAt.
func TestAddReplacesPostings(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "structured documents need query facilities")
	ix.Add(2, "documents")
	// Re-index doc 1 with different text: the old postings must go.
	ix.Add(1, "novel query facilities for structured documents")

	if got := ix.Size(); got != 2 {
		t.Errorf("Size = %d, want 2", got)
	}
	if got := ix.Docs(); !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("Docs = %v (insertion order must be stable across re-Add)", got)
	}
	// "need" only occurred in the old text of doc 1.
	if got := ix.Lookup("need"); len(got) != 0 {
		t.Errorf(`Lookup("need") = %v, want none after re-index`, got)
	}
	// The old phrase is gone, the new phrase matches.
	if got := ix.Eval(MatchExpr{Pattern: MustCompileLiteral(t, "documents need")}); len(got) != 0 {
		t.Errorf("stale phrase still matches: %v", got)
	}
	if got := ix.Eval(MatchExpr{Pattern: MustCompileLiteral(t, "novel query facilities")}); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("new phrase = %v, want [1]", got)
	}
	// Positions must be ascending again: "structured documents" is a
	// phrase only in the new text (positions 4,5), and with accumulated
	// postings the search in hasAt would misfire.
	if got := ix.Eval(MatchExpr{Pattern: MustCompileLiteral(t, "structured documents")}); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf(`phrase "structured documents" = %v, want [1]`, got)
	}
	if got := ix.Eval(NearExpr{A: "novel", B: "facilities", Dist: 1}); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("near after re-index = %v, want [1]", got)
	}
}

// MustCompileLiteral compiles an escaped literal pattern for tests.
func MustCompileLiteral(t *testing.T, s string) *Pattern {
	t.Helper()
	p, err := Compile(escapeLiteral(s))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNearMultiWordOperands: a near operand that is itself a phrase must
// be evaluated as a phrase, not silently truncated to its first word.
func TestNearMultiWordOperands(t *testing.T) {
	const doc = "the system supports complex object queries over structured documents"
	ix := NewIndex()
	ix.Add(7, doc)

	// "complex object" occurs at positions 3-4, "structured" at 7: two
	// intervening words ("queries", "over").
	if got := ix.Eval(NearExpr{A: "complex object", B: "structured", Dist: 2}); !reflect.DeepEqual(got, []DocID{7}) {
		t.Errorf("phrase-near (dist 2) = %v, want [7]", got)
	}
	if got := ix.Eval(NearExpr{A: "complex object", B: "structured", Dist: 1}); len(got) != 0 {
		t.Errorf("phrase-near (dist 1) = %v, want none", got)
	}
	// Truncation to the first word would match: "complex" alone is 3
	// words from "over" — make sure the full phrase's end is used.
	if got := ix.Eval(NearExpr{A: "complex object queries", B: "over", Dist: 0}); !reflect.DeepEqual(got, []DocID{7}) {
		t.Errorf("adjacent phrase-near = %v, want [7]", got)
	}
	// A phrase that does not occur (words present but not consecutive)
	// must not match even though its first word is near B.
	if got := ix.Eval(NearExpr{A: "complex documents", B: "queries", Dist: 5}); len(got) != 0 {
		t.Errorf("non-occurring phrase operand matched: %v", got)
	}

	// The scan path must agree with the index path.
	if !Contains(doc, NearExpr{A: "complex object", B: "structured", Dist: 2}) {
		t.Error("scan: phrase-near (dist 2) should hold")
	}
	if Contains(doc, NearExpr{A: "complex object", B: "structured", Dist: 1}) {
		t.Error("scan: phrase-near (dist 1) should not hold")
	}
	if Contains(doc, NearExpr{A: "complex documents", B: "queries", Dist: 5}) {
		t.Error("scan: non-occurring phrase operand should not hold")
	}
	// Char distance across a phrase: "complex object" ends before
	// " queries", one space → distance 1.
	if !Contains(doc, NearExpr{A: "complex object", B: "queries", Dist: 1, Chars: true}) {
		t.Error("scan: char-near across phrase end should hold")
	}
	if Contains(doc, NearExpr{A: "complex", B: "queries", Dist: 1, Chars: true}) {
		t.Error("scan: char distance must be measured from the operand's own end")
	}
}

// TestIndexCloneIsolation: a clone and its base must not observe each
// other's Adds, even though they share posting storage at clone time.
func TestIndexCloneIsolation(t *testing.T) {
	base := NewIndex()
	base.Add(1, "alpha beta gamma")
	base.Add(2, "beta delta")

	c := base.Clone()
	c.Add(3, "beta epsilon")
	c.Add(1, "alpha rewritten") // re-Add through the COW path

	// Base is untouched.
	if got := base.Size(); got != 2 {
		t.Errorf("base Size = %d after clone mutation", got)
	}
	if got := base.Lookup("beta"); !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("base beta docs = %v, want [1 2]", got)
	}
	if got := base.Lookup("gamma"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("base gamma docs = %v, want [1]", got)
	}
	if got := base.Lookup("epsilon"); len(got) != 0 {
		t.Errorf("clone doc leaked into base: %v", got)
	}

	// Clone sees its own state.
	if got := c.Size(); got != 3 {
		t.Errorf("clone Size = %d, want 3", got)
	}
	if got := c.Lookup("beta"); !reflect.DeepEqual(got, []DocID{2, 3}) {
		t.Errorf("clone beta docs = %v, want [2 3]", got)
	}
	if got := c.Lookup("gamma"); len(got) != 0 {
		t.Errorf("clone kept doc 1's retracted word: %v", got)
	}
	if got := c.Lookup("rewritten"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("clone rewritten docs = %v, want [1]", got)
	}

	// Mutating the base after the clone (the facade never does, but the
	// structure must still hold) leaves the clone alone.
	base.Add(4, "beta zeta")
	if got := c.Lookup("zeta"); len(got) != 0 {
		t.Errorf("base doc leaked into clone: %v", got)
	}
	if got := base.Lookup("beta"); !reflect.DeepEqual(got, []DocID{1, 2, 4}) {
		t.Errorf("base beta docs after own Add = %v, want [1 2 4]", got)
	}
}

// TestCloneOfCloneChain exercises repeated cloning, the facade's
// steady-state (every load clones the previously published index).
func TestCloneOfCloneChain(t *testing.T) {
	ix := NewIndex()
	var gens []*Index
	for i := 0; i < 5; i++ {
		ix = ix.Clone()
		ix.Add(DocID(i+1), "common word")
		gens = append(gens, ix)
	}
	for i, g := range gens {
		if got := g.Size(); got != i+1 {
			t.Errorf("generation %d Size = %d, want %d", i, got, i+1)
		}
		if got := len(g.Lookup("common")); got != i+1 {
			t.Errorf("generation %d common docs = %d, want %d", i, got, i+1)
		}
	}
}
