package oql

import (
	"os"
	"strings"
	"testing"

	"sgmldb/internal/calculus"
	"sgmldb/internal/dtdmap"
	"sgmldb/internal/object"
	"sgmldb/internal/sgml"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// articleWithSubsections is a Figure 2 style article whose second section
// carries subsections (for Q2).
const articleWithSubsections = `<article status="draft">
<title>Querying Documents in Object Databases</title>
<author>B. Amann
<affil>Cedric/CNAM
<abstract>We study complex object storage for structured text.
<section><title>Background</title>
<body><paragr>Databases keep growing.</body>
</section>
<section><title>The Model</title>
<subsectn><title>Values</title>
<body><paragr>A complex object is built from tuples and lists.</body>
</subsectn>
<subsectn><title>Types</title>
<body><paragr>Union types mark alternatives.</body>
</subsectn>
</section>
<acknowl>Thanks to the Verso group.
</article>`

// articleEngine loads the Figure 1 DTD with the Figure 2 article plus the
// subsectioned article, declares my_article / my_old_article roots, wires
// the text() operator and a full-text index.
func articleEngine(t *testing.T) *Engine {
	t.Helper()
	dtdSrc, err := os.ReadFile("../../testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := sgml.ParseDTD(string(dtdSrc))
	if err != nil {
		t.Fatal(err)
	}
	m, err := dtdmap.MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	loader := dtdmap.NewLoader(m)
	fig2, err := os.ReadFile("../../testdata/article.sgml")
	if err != nil {
		t.Fatal(err)
	}
	doc1, err := sgml.ParseDocument(dtd, string(fig2))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := loader.Load(doc1)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := sgml.ParseDocument(dtd, articleWithSubsections)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := loader.Load(doc2)
	if err != nil {
		t.Fatal(err)
	}
	inst := loader.Instance
	schema := inst.Schema()
	for _, r := range []struct {
		name string
		oid  object.OID
	}{{"my_article", a2}, {"my_old_article", a1}} {
		if err := schema.AddRoot(r.name, object.Class("Article")); err != nil {
			t.Fatal(err)
		}
		if err := inst.SetRoot(r.name, r.oid); err != nil {
			t.Fatal(err)
		}
	}
	if errs := inst.Check(); len(errs) != 0 {
		t.Fatalf("fixture invalid: %v", errs)
	}
	env := calculus.NewEnv(inst)
	env.TextOf = dtdmap.TextOf
	ix := text.NewIndex()
	for _, o := range inst.Objects() {
		ix.Add(text.DocID(o), dtdmap.TextOf(inst, o))
	}
	e := New(env)
	e.Index = ix
	return e
}

// bothEngines runs the test body with the naive and the algebraic
// evaluator.
func bothEngines(t *testing.T, e *Engine, body func(t *testing.T, e *Engine)) {
	t.Helper()
	withMode := func(on bool) *Engine {
		e2 := New(e.Env)
		e2.Index = e.Index
		e2.SkipTypecheck = e.SkipTypecheck
		e2.MaxBranches = e.MaxBranches
		e2.UseAlgebra = on
		return e2
	}
	t.Run("naive", func(t *testing.T) {
		body(t, withMode(false))
	})
	t.Run("algebra", func(t *testing.T) {
		body(t, withMode(true))
	})
}

func asSet(t *testing.T, v object.Value) *object.Set {
	t.Helper()
	s, ok := v.(*object.Set)
	if !ok {
		t.Fatalf("result is %T, not a set: %s", v, v)
	}
	return s
}

// TestQ1 reproduces query Q1: titles and first authors of articles having
// a section whose title contains "SGML" and "OODBMS".
func TestQ1(t *testing.T) {
	e := articleEngine(t)
	// Make the fixture discriminating: the Figure 2 article's first
	// section title is "Introduction"; none contains both words. Query on
	// the abstract-level words present in the corpus instead, then the
	// paper's exact pattern.
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`
select tuple (t: a.title, f_author: first(a.authors))
from a in Articles, s in a.sections
where s.title contains ("SGML" and "preliminaries")`)
		if err != nil {
			t.Fatal(err)
		}
		s := asSet(t, got)
		if s.Len() != 1 {
			t.Fatalf("Q1 = %s", s)
		}
		row := s.At(0).(*object.Tuple)
		title, _ := row.Get("t")
		// The projection dereferences: a.title is a Title object; its text
		// is reachable via text(); the oid itself is returned.
		if title.Kind() != object.KindOID {
			t.Errorf("t = %s", title)
		}
		fa, _ := row.Get("f_author")
		if fa.Kind() != object.KindOID {
			t.Errorf("f_author = %s", fa)
		}
		// No article has a section title with both SGML and OODBMS.
		empty, err := e.Query(`
select a from a in Articles, s in a.sections
where s.title contains ("SGML" and "OODBMS")`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, empty).Len() != 0 {
			t.Errorf("expected empty, got %s", empty)
		}
	})
}

// TestQ2 reproduces query Q2: subsections of articles containing the
// sentence "complex object" — the contains operates on complex logical
// objects through the text operator, and the subsectns attribute exists
// only in the a2 alternative of the Section union (implicit selectors).
func TestQ2(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`
select ss
from a in Articles, s in a.sections, ss in s.subsectns
where ss contains "complex object"`)
		if err != nil {
			t.Fatal(err)
		}
		s := asSet(t, got)
		if s.Len() != 1 {
			t.Fatalf("Q2 = %s", s)
		}
		oid := s.At(0).(object.OID)
		if txt := e.Env.TextOf(e.Env.Inst, oid); !strings.Contains(txt, "complex object") {
			t.Errorf("subsection text = %q", txt)
		}
	})
}

// TestQ3 reproduces query Q3: all titles in my_article, reached by every
// path.
func TestQ3(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`select t from my_article PATH_p.title(t)`)
		if err != nil {
			t.Fatal(err)
		}
		s := asSet(t, got)
		// my_article: 1 article title + 2 section titles + 2 subsection
		// titles = 5 Title objects (each both as oid and as content value
		// depending on path shape; titles are objects so 5 oids).
		var texts []string
		for i := 0; i < s.Len(); i++ {
			if o, ok := s.At(i).(object.OID); ok {
				texts = append(texts, e.Env.TextOf(e.Env.Inst, o))
			}
		}
		want := []string{"Querying Documents in Object Databases", "Background",
			"The Model", "Values", "Types"}
		for _, w := range want {
			found := false
			for _, txt := range texts {
				if txt == w {
					found = true
				}
			}
			if !found {
				t.Errorf("Q3 missing title %q in %v", w, texts)
			}
		}
		// The ".." sugared form gives the same result set.
		sugared, err := e.Query(`select t from my_article .. title(t)`)
		if err != nil {
			t.Fatal(err)
		}
		if !object.Equal(got, sugared) {
			t.Error("'..' sugar must behave like an anonymous path variable")
		}
	})
}

// TestQ4 reproduces query Q4: the structural difference between two
// versions of my_article as a difference of path sets.
func TestQ4(t *testing.T) {
	e := articleEngine(t)
	// Q4 is a bare expression; evaluated through the naive engine.
	got, err := e.Query(`my_article PATH_p - my_old_article PATH_p`)
	if err != nil {
		t.Fatal(err)
	}
	s := asSet(t, got)
	if s.Len() == 0 {
		t.Fatal("the new version must contribute new paths")
	}
	// Every member is a path value; the subsection structure appears.
	sawSubsectn := false
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		if _, ok := p.(*object.List); !ok {
			t.Fatalf("non-path member %s", p)
		}
		if strings.Contains(p.String(), "subsectns") {
			sawSubsectn = true
		}
	}
	if !sawSubsectn {
		t.Error("difference must expose the new subsectns structure")
	}
	// The reverse difference also exists (old paths not in the new one).
	rev, err := e.Query(`my_old_article PATH_p - my_article PATH_p`)
	if err != nil {
		t.Fatal(err)
	}
	if asSet(t, rev).Len() == 0 {
		t.Error("old version has its own paths")
	}
}

// TestQ5 reproduces query Q5: the attributes whose value contains "final"
// — "search operations like Unix grep inside an OODBMS". In the loaded
// corpus only the Figure 2 article (my_old_article) has status "final".
func TestQ5(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`
select name(ATT_a)
from my_old_article PATH_p.ATT_a(val)
where val contains ("final")`)
		if err != nil {
			t.Fatal(err)
		}
		s := asSet(t, got)
		found := false
		for i := 0; i < s.Len(); i++ {
			if object.Equal(s.At(i), object.String_("status")) {
				found = true
			}
		}
		if !found {
			t.Errorf("Q5 must find the status attribute, got %s", s)
		}
		// my_article is a draft: no attribute contains "final".
		got2, err := e.Query(`
select name(ATT_a)
from my_article PATH_p.ATT_a(val)
where val contains ("final")`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, got2).Len() != 0 {
			t.Errorf("draft article must yield nothing, got %s", got2)
		}
	})
}

// lettersEngine loads the Section 4.4 letters database via the "&"
// connector mapping.
func lettersEngine(t *testing.T) *Engine {
	t.Helper()
	dtd, err := sgml.ParseDTD(`
<!ELEMENT letter - - (preamble, content)>
<!ELEMENT preamble - O (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT content - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dtdmap.MapDTD(dtd)
	if err != nil {
		t.Fatal(err)
	}
	loader := dtdmap.NewLoader(m)
	for _, src := range []string{
		`<letter><preamble><to>Alice<from>Bob</preamble><content>to first</letter>`,
		`<letter><preamble><from>Carol<to>Dan</preamble><content>from first</letter>`,
		`<letter><preamble><to>Erin<from>Frank</preamble><content>to first again</letter>`,
	} {
		doc, err := sgml.ParseDocument(dtd, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loader.Load(doc); err != nil {
			t.Fatal(err)
		}
	}
	inst := loader.Instance
	env := calculus.NewEnv(inst)
	env.TextOf = dtdmap.TextOf
	return New(env)
}

// TestQ6 reproduces query Q6: letters where the sender precedes the
// recipient in the preamble, via position bindings over the ordered tuple
// viewed as a heterogeneous list.
func TestQ6(t *testing.T) {
	e := lettersEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`
select letter
from letter in Letters, from(i) in letter.preamble, to(j) in letter.preamble
where i < j`)
		if err != nil {
			t.Fatal(err)
		}
		s := asSet(t, got)
		if s.Len() != 1 {
			t.Fatalf("Q6 = %s", s)
		}
		// The matching letter is the Carol→Dan one (from precedes to).
		oid := s.At(0).(object.OID)
		txt := e.Env.TextOf(e.Env.Inst, oid)
		if !strings.Contains(txt, "Carol") {
			t.Errorf("Q6 letter text = %q", txt)
		}
		// And the symmetric query finds the other two.
		rev, err := e.Query(`
select letter
from letter in Letters, from(i) in letter.preamble, to(j) in letter.preamble
where j < i`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, rev).Len() != 2 {
			t.Errorf("reverse Q6 = %s", rev)
		}
	})
}

func TestBarePatternQuery(t *testing.T) {
	e := articleEngine(t)
	// Point 3 of Section 4.3: my_article PATH_p.title is a query returning
	// the set of paths to a title field.
	got, err := e.Query(`my_article PATH_p.title`)
	if err != nil {
		t.Fatal(err)
	}
	s := asSet(t, got)
	if s.Len() < 5 {
		t.Errorf("paths to titles = %s", s)
	}
}

func TestExecutionTimeTypeError(t *testing.T) {
	e := articleEngine(t)
	// my_old_article's sections are all marked a1: accessing subsectns on
	// the named instance is the paper's execution-time type error.
	_, err := e.Query(`my_old_article.sections[0].subsectns`)
	if err == nil || !strings.Contains(err.Error(), "type error") {
		t.Errorf("expected execution-time type error, got %v", err)
	}
	// Plain navigation works.
	v, err := e.Query(`my_old_article.sections[0].title`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != object.KindOID {
		t.Errorf("title = %s", v)
	}
}

func TestStaticTypeErrors(t *testing.T) {
	e := articleEngine(t)
	cases := []string{
		`select a from a in Articles where a.nosuchattr = 1`, // unknown attribute
		`Articles union set(1, 2)`,                           // union vs int set: no common supertype
		`set(1, "x")`,                                        // constructor members must join
		// Note: "a in my_old_article.title" is NOT an error — the Title
		// object's tuple value is a heterogeneous list (Section 4.4). An
		// integer, though, is no collection:
		`select x from x in length(my_article.sections)`,
		`nosuchroot`, // unknown name
		`select a from a in Articles where a.status contains "x" and 1 = "y"`, // incomparable
	}
	for _, src := range cases {
		if _, err := e.Query(src); err == nil {
			t.Errorf("query %q must be rejected", src)
		}
	}
}

func TestSetOperationsAndFunctions(t *testing.T) {
	e := articleEngine(t)
	v, err := e.Query(`set(1, 2, 3) intersect set(2, 3, 4)`)
	if err != nil {
		t.Fatal(err)
	}
	if asSet(t, v).Len() != 2 {
		t.Errorf("intersect = %s", v)
	}
	v, err = e.Query(`set(1, 2) union set(2, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if asSet(t, v).Len() != 3 {
		t.Errorf("union = %s", v)
	}
	v, err = e.Query(`set(1, 2) - set(2)`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.NewSet(object.Int(1))) {
		t.Errorf("except = %s", v)
	}
	v, err = e.Query(`element(set(7))`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.Int(7)) {
		t.Errorf("element = %s", v)
	}
	v, err = e.Query(`count(my_article.sections)`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.Int(2)) {
		t.Errorf("count = %s", v)
	}
	v, err = e.Query(`text(my_article.sections[0].title)`)
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.String_("Background")) {
		t.Errorf("text = %s", v)
	}
}

func TestWhereConnectivesAndQuantifiers(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`
select a from a in Articles
where a.status = "draft" or a.status = "final"`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, got).Len() != 2 {
			t.Errorf("or = %s", got)
		}
		got, err = e.Query(`
select a from a in Articles
where not (a.status = "final")`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, got).Len() != 1 {
			t.Errorf("not = %s", got)
		}
		got, err = e.Query(`
select a from a in Articles
where exists s in a.sections: s.title contains "Model"`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, got).Len() != 1 {
			t.Errorf("exists = %s", got)
		}
		got, err = e.Query(`
select a from a in Articles
where forall s in a.sections: text(s.title) != ""`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, got).Len() != 2 {
			t.Errorf("forall = %s", got)
		}
	})
}

func TestNearPredicate(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`
select ss from a in Articles, s in a.sections, ss in s.subsectns
where near(ss, "complex", "object", 1)`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, got).Len() != 1 {
			t.Errorf("near = %s", got)
		}
		got, err = e.Query(`
select ss from a in Articles, s in a.sections, ss in s.subsectns
where near(ss, "complex", "lists", 2)`)
		if err != nil {
			t.Fatal(err)
		}
		if asSet(t, got).Len() != 0 {
			t.Errorf("near distance must exclude, got %s", got)
		}
	})
}

func TestPathFunctionsInQueries(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		// Titles reachable by short paths only: the article's own title is
		// at ->.title (length 2); section titles are deeper.
		got, err := e.Query(`
select t from my_article PATH_p.title(t)
where length(PATH_p) < 3`)
		if err != nil {
			t.Fatal(err)
		}
		s := asSet(t, got)
		if s.Len() != 1 {
			t.Fatalf("short paths = %s", s)
		}
		if txt := e.Env.TextOf(e.Env.Inst, s.At(0)); txt != "Querying Documents in Object Databases" {
			t.Errorf("short-path title = %q", txt)
		}
	})
}

func TestProjectionOfPathAndAttrVars(t *testing.T) {
	e := articleEngine(t)
	bothEngines(t, e, func(t *testing.T, e *Engine) {
		got, err := e.Query(`select PATH_p from my_article PATH_p.title(t)`)
		if err != nil {
			t.Fatal(err)
		}
		s := asSet(t, got)
		if s.Len() < 5 {
			t.Errorf("path projection = %s", s)
		}
		got, err = e.Query(`select ATT_a from my_article PATH_p.ATT_a(v) where length(PATH_p) < 2`)
		if err != nil {
			t.Fatal(err)
		}
		s = asSet(t, got)
		// Attributes directly on the article tuple.
		wantAttrs := map[string]bool{"title": true, "authors": true, "affil": true,
			"abstract": true, "sections": true, "acknowl": true, "status": true}
		for i := 0; i < s.Len(); i++ {
			name := string(s.At(i).(object.String_))
			if !wantAttrs[name] {
				t.Errorf("unexpected attribute %q", name)
			}
		}
		if s.Len() != len(wantAttrs) {
			t.Errorf("attributes = %s", s)
		}
	})
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		``,
		`select`,
		`select x`,
		`select x from`,
		`select x from x in`,
		`a.`,
		`a[`,
		`a[1`,
		`"unterminated`,
		`select x from 3 in y`,
		`tuple(`,
		`near(a, "x")`,
		`a contains`,
		`a contains 3`,
		`select x from x in y where (`,
		`x ~ y`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) must fail", src)
		}
	}
}

func TestParserShapes(t *testing.T) {
	e, err := Parse(`select tuple (t: a.title, f_author: first(a.authors))
from a in Articles, s in a.sections
where s.title contains ("SGML" and "OODBMS")`)
	if err != nil {
		t.Fatal(err)
	}
	sel := e.(SelectExpr)
	if len(sel.From) != 2 {
		t.Fatalf("from = %v", sel.From)
	}
	if _, ok := sel.Proj.(TupleCons); !ok {
		t.Errorf("proj = %T", sel.Proj)
	}
	cont, ok := sel.Where.(ContainsExpr)
	if !ok {
		t.Fatalf("where = %T", sel.Where)
	}
	if _, ok := cont.Pattern.(PatAnd); !ok {
		t.Errorf("pattern = %T", cont.Pattern)
	}
	// Pattern binding with PATH and ATT variables.
	e2, err := Parse(`select name(ATT_a) from my_article PATH_p.ATT_a(val) where val contains ("final")`)
	if err != nil {
		t.Fatal(err)
	}
	sel2 := e2.(SelectExpr)
	pe := sel2.From[0].Base.(PathExpr)
	if len(pe.Elems) != 3 {
		t.Fatalf("pattern elems = %v", pe.Elems)
	}
	if _, ok := pe.Elems[0].(PathVarP); !ok {
		t.Error("elem 0 should be PATH var")
	}
	if _, ok := pe.Elems[1].(AttrVarP); !ok {
		t.Error("elem 1 should be ATT var")
	}
	if _, ok := pe.Elems[2].(BindP); !ok {
		t.Error("elem 2 should be a binding")
	}
	// Position bindings.
	e3, err := Parse(`select l from l in Letters, from(i) in l.preamble, to(j) in l.preamble where i < j`)
	if err != nil {
		t.Fatal(err)
	}
	sel3 := e3.(SelectExpr)
	if sel3.From[1].Attr != "from" || sel3.From[1].PosVar != "i" {
		t.Errorf("position binding = %+v", sel3.From[1])
	}
	// AST String round trips through the parser.
	for _, src := range []string{
		`select t from my_article PATH_p.title(t)`,
		`select a from a in Articles where near(a, "x", "y", 3)`,
		`set(1, 2) union list(3)[0:?]`,
	} {
		ast, err := Parse(src)
		if err != nil {
			continue // the last one is intentionally bogus
		}
		if _, err := Parse(ast.String()); err != nil {
			t.Errorf("String of %q does not re-parse: %v\n%s", src, err, ast)
		}
	}
}

func TestDistinctVariableScoping(t *testing.T) {
	e := articleEngine(t)
	// Duplicate from variables are rejected.
	if _, err := e.Query(`select a from a in Articles, a in Articles`); err == nil {
		t.Error("duplicate variable must be rejected")
	}
}

func TestRowsAndPlanAPIs(t *testing.T) {
	e := articleEngine(t)
	res, err := e.Rows(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() < 5 {
		t.Errorf("rows = %d", res.Len())
	}
	q, err := e.Lower(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 1 || q.Head[0].Name != "t" {
		t.Errorf("lowered head = %v", q.Head)
	}
	plan, err := e.Plan(`select t from my_article PATH_p.title(t)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "path-navigate") {
		t.Errorf("plan:\n%s", plan.Explain())
	}
}

func TestIndexAcceleratedContains(t *testing.T) {
	e := articleEngine(t)
	// The same contains query with and without the index agrees.
	src := `select a from a in Articles where a contains "SGML"`
	e.UseAlgebra = true
	withIdx, err := e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	savedIdx := e.Index
	e.Index = nil
	without, err := e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	e.Index = savedIdx
	if !object.Equal(withIdx, without) {
		t.Errorf("index changes semantics: %s vs %s", withIdx, without)
	}
	if asSet(t, withIdx).Len() != 1 {
		t.Errorf("contains SGML = %s", withIdx)
	}
}

func TestTypecheckSkip(t *testing.T) {
	e := articleEngine(t)
	e.SkipTypecheck = true
	// Statically wrong but dynamically empty: accepted without typecheck.
	if _, err := e.Query(`select a from a in Articles where a.nosuchattr = 1`); err != nil {
		t.Errorf("with SkipTypecheck the query should run: %v", err)
	}
}

func TestEngineOverEmptySchema(t *testing.T) {
	s := store.NewSchema()
	if err := s.AddRoot("Nums", object.SetOf(object.IntType)); err != nil {
		t.Fatal(err)
	}
	in := store.NewInstance(s)
	_ = in.SetRoot("Nums", object.NewSet(object.Int(1), object.Int(2), object.Int(3)))
	e := New(calculus.NewEnv(in))
	got, err := e.Query(`select n from n in Nums where n > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if asSet(t, got).Len() != 2 {
		t.Errorf("filter = %s", got)
	}
}
