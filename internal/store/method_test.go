package store

import (
	"testing"

	"sgmldb/internal/object"
)

func TestHasMethodNamed(t *testing.T) {
	s := articleSchema(t)
	in := populate(t, s)
	if in.HasMethodNamed("text") {
		t.Error("no bindings yet")
	}
	if err := in.BindMethod("Text", "text", func(*Instance, object.OID, []object.Value) (object.Value, error) {
		return object.String_("x"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !in.HasMethodNamed("text") {
		t.Error("binding not found")
	}
	if in.HasMethodNamed("ext") {
		t.Error("suffix must not match")
	}
	if in.HasMethodNamed("Text::text") {
		t.Error("qualified names are not method names")
	}
}

func TestInvokeDiamondResolution(t *testing.T) {
	s := NewSchema()
	for _, c := range []string{"Top", "L", "R", "Bot"} {
		if err := s.AddClass(c, object.TupleOf()); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.AddInherits("L", "Top")
	_ = s.AddInherits("R", "Top")
	_ = s.AddInherits("Bot", "L")
	_ = s.AddInherits("Bot", "R")
	in := NewInstance(s)
	o, err := in.NewObject("Bot", object.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tag string) Method {
		return func(*Instance, object.OID, []object.Value) (object.Value, error) {
			return object.String_(tag), nil
		}
	}
	// Only Top binds: resolution climbs the diamond.
	if err := in.BindMethod("Top", "who", mk("top")); err != nil {
		t.Fatal(err)
	}
	got, err := in.Invoke(o, "who")
	if err != nil || !object.Equal(got, object.String_("top")) {
		t.Errorf("Invoke = %v %v", got, err)
	}
	// A nearer binding (breadth-first: L before Top) wins.
	if err := in.BindMethod("L", "who", mk("l")); err != nil {
		t.Fatal(err)
	}
	got, _ = in.Invoke(o, "who")
	if !object.Equal(got, object.String_("l")) {
		t.Errorf("nearest binding = %v", got)
	}
	// The receiver's own class wins over everything.
	if err := in.BindMethod("Bot", "who", mk("bot")); err != nil {
		t.Fatal(err)
	}
	got, _ = in.Invoke(o, "who")
	if !object.Equal(got, object.String_("bot")) {
		t.Errorf("own binding = %v", got)
	}
}

func TestSnapshotPreservesUnionRoots(t *testing.T) {
	s := NewSchema()
	u := object.UnionOf(
		object.TField{Name: "a", Type: object.IntType},
		object.TField{Name: "b", Type: object.StringType},
	)
	if err := s.AddRoot("U", object.ListOf(u)); err != nil {
		t.Fatal(err)
	}
	in := NewInstance(s)
	_ = in.SetRoot("U", object.NewList(
		object.NewUnion("a", object.Int(1)),
		object.NewUnion("b", object.String_("x")),
	))
	var err error
	dir := t.TempDir()
	if err = SaveFile(dir+"/u.snap", in); err != nil {
		t.Fatal(err)
	}
	in2, err := LoadFile(dir + "/u.snap")
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := in.Root("U")
	v2, _ := in2.Root("U")
	if !object.Equal(v1, v2) {
		t.Errorf("union root changed: %s vs %s", v1, v2)
	}
	rt, _ := in2.Schema().RootType("U")
	if !object.TypeEqual(rt, object.ListOf(u)) {
		t.Errorf("union root type changed: %s", rt)
	}
}
