// Package wal gives the database durability: committed writes append
// checksummed records to a write-ahead log that is fsynced before the
// in-memory snapshot swap publishes them, a checkpointer periodically
// serializes the published (instance, index, schema) snapshot to a
// sidecar file and truncates the log prefix it covers, and Open recovers
// the last durable state by loading the newest valid checkpoint and
// replaying the log tail. A torn tail record — the signature a crash
// leaves — is truncated silently; corruption anywhere before the tail is
// ErrCorruptLog.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorruptLog reports damage to the write-ahead log that is not a torn
// tail: a record whose checksum fails (or whose sequencing breaks) with
// further data behind it. A torn tail is the expected crash signature and
// is truncated silently; mid-log corruption means durable history was
// lost or altered, which recovery must surface, not paper over.
var ErrCorruptLog = errors.New("wal: corrupt log record before the tail")

// Kind discriminates the record types of the log.
type Kind uint8

//sgmldbvet:closed
const (
	// KindSchema records the DTD the database was opened with; it is the
	// first record of a fresh log and pins the data directory to its DTD.
	KindSchema Kind = 1
	// KindLoad records one committed document batch as the raw SGML
	// sources; replay re-parses and re-loads them, which reproduces the
	// original oids because loading is deterministic.
	KindLoad Kind = 2
	// KindName records a root naming (name → oid).
	KindName Kind = 3
	// KindTerm records a promotion: the first record a follower appends
	// when it becomes the primary, bumping the log's term. It carries no
	// data — replaying one only raises the term.
	KindTerm Kind = 4
)

// Record is one logical log entry.
type Record struct {
	Seq  uint64
	Kind Kind
	// Term is the promotion epoch the record was written under. A primary
	// stamps the log's current term on append (callers leave it 0); a
	// follower replays shipped records with their original term, and the
	// term chain must never decrease.
	Term uint64

	Schema string   // KindSchema: the DTD source
	Docs   []string // KindLoad: document sources, in batch order
	Name   string   // KindName: the root name
	OID    uint64   // KindName: the named object
}

// Frame layout: a fixed header of payload length and CRC, then the
// payload. The CRC (Castagnoli) covers the whole payload, so a torn or
// bit-flipped record never decodes.
const frameHeaderSize = 8

// maxRecordSize bounds a single record's payload. The length field of a
// torn frame can hold garbage; the bound keeps a bad length from forcing
// a giant allocation while scanning.
const maxRecordSize = 1 << 28 // 256 MiB

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendUvarint/appendString build the payload.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// EncodePayload serializes the record body (everything the CRC covers).
func EncodePayload(r Record) []byte {
	b := []byte{byte(r.Kind)}
	b = binary.AppendUvarint(b, r.Seq)
	b = binary.AppendUvarint(b, r.Term)
	switch r.Kind {
	case KindSchema:
		b = appendString(b, r.Schema)
	case KindLoad:
		b = binary.AppendUvarint(b, uint64(len(r.Docs)))
		for _, d := range r.Docs {
			b = appendString(b, d)
		}
	case KindName:
		b = appendString(b, r.Name)
		b = binary.AppendUvarint(b, r.OID)
	case KindTerm:
		// the term itself is the whole payload
	default:
		//lint:allow panic encoding an unknown Kind is a programmer error (closed set, enforced by sgmldbvet exhaustive)
		panic(fmt.Sprintf("wal: encode unknown record kind %d", r.Kind))
	}
	return b
}

// EncodeFrame serializes the whole framed record: header plus payload.
func EncodeFrame(r Record) []byte {
	payload := EncodePayload(r)
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}

// payloadReader decodes payload fields with bounds checking — arbitrary
// bytes must produce errors, never panics (FuzzWALRecord pins this).
type payloadReader struct {
	b   []byte
	pos int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: bad varint at %d", p.pos)
	}
	p.pos += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(p.b)-p.pos) {
		return "", fmt.Errorf("wal: string of %d bytes overruns payload at %d", n, p.pos)
	}
	s := string(p.b[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s, nil
}

// DecodePayload parses a record body (the bytes EncodePayload produced,
// after the frame CRC already vouched for them — or arbitrary bytes, in
// which case it returns an error).
func DecodePayload(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, errors.New("wal: empty payload")
	}
	p := &payloadReader{b: b, pos: 1}
	r := Record{Kind: Kind(b[0])}
	var err error
	if r.Seq, err = p.uvarint(); err != nil {
		return Record{}, err
	}
	if r.Term, err = p.uvarint(); err != nil {
		return Record{}, err
	}
	switch r.Kind {
	case KindSchema:
		if r.Schema, err = p.str(); err != nil {
			return Record{}, err
		}
	case KindLoad:
		n, err := p.uvarint()
		if err != nil {
			return Record{}, err
		}
		if n > uint64(len(b)) { // each doc needs at least its length byte
			return Record{}, fmt.Errorf("wal: load record claims %d documents in %d bytes", n, len(b))
		}
		r.Docs = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			d, err := p.str()
			if err != nil {
				return Record{}, err
			}
			r.Docs = append(r.Docs, d)
		}
	case KindName:
		if r.Name, err = p.str(); err != nil {
			return Record{}, err
		}
		if r.OID, err = p.uvarint(); err != nil {
			return Record{}, err
		}
	case KindTerm:
		// no fields beyond seq and term
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", b[0])
	}
	if p.pos != len(b) {
		return Record{}, fmt.Errorf("wal: %d trailing payload bytes", len(b)-p.pos)
	}
	return r, nil
}

// DecodeFrame parses one framed record from the front of b, returning the
// record and the number of bytes consumed.
//
// The error taxonomy drives the torn-tail policy: errShortFrame means b
// ends before the frame does (decidable only with more data — at EOF it
// is a torn tail), errBadCRC means a complete frame failed its checksum
// (a torn tail only if nothing follows it). Any other error is a malformed
// payload behind a valid CRC, which cannot happen to a log we wrote —
// corruption.
func DecodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, errShortFrame
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxRecordSize {
		return Record{}, 0, errBadCRC // an insane length is indistinguishable from a scribbled header
	}
	if uint64(len(b)-frameHeaderSize) < uint64(n) {
		return Record{}, 0, errShortFrame
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, frameHeaderSize + int(n), errBadCRC
	}
	r, err := DecodePayload(payload)
	if err != nil {
		return Record{}, frameHeaderSize + int(n), err
	}
	return r, frameHeaderSize + int(n), nil
}

var (
	errShortFrame = errors.New("wal: frame extends past the data")
	errBadCRC     = errors.New("wal: frame checksum mismatch")
)
