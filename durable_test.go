package sgmldb

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Durable-lifecycle tests: clean-shutdown recovery, checkpoint compaction,
// schema pinning, and the sentinels — the crash-path counterparts live in
// crash_test.go.

// TestDurableRecoveryRoundTrip loads across several batches and namings,
// closes, reopens, and asserts the recovered database is indistinguishable:
// same epoch, same documents, same query answers, and still writable.
func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	src := articleSrc(t)
	if _, err := db.LoadDocuments([]string{src, src}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadDocuments([]string{src}); err != nil {
		t.Fatal(err)
	}
	epoch := db.Epoch()
	docs := len(db.Loader.Documents())
	count := articleCount(t, db)
	titles := mustQuery(t, db, chaosQuery).Len()
	db.Close()

	rdb := reopenDurable(t, dir)
	if got := rdb.Epoch(); got != epoch {
		t.Errorf("recovered epoch = %d, want %d", got, epoch)
	}
	if got := len(rdb.Loader.Documents()); got != docs {
		t.Errorf("recovered documents = %d, want %d", got, docs)
	}
	if got := articleCount(t, rdb); got != count {
		t.Errorf("recovered articles = %d, want %d", got, count)
	}
	if got := mustQuery(t, rdb, chaosQuery).Len(); got != titles {
		t.Errorf("recovered reference query = %d, want %d", got, titles)
	}
	// The recovered database accepts further writes, which survive another
	// recovery.
	if _, err := rdb.LoadDocuments([]string{src}); err != nil {
		t.Fatalf("load after recovery: %v", err)
	}
	epoch2 := rdb.Epoch()
	rdb.Close()
	rdb2 := reopenDurable(t, dir)
	if got := rdb2.Epoch(); got != epoch2 {
		t.Errorf("second recovery epoch = %d, want %d", got, epoch2)
	}
	if got := len(rdb2.Loader.Documents()); got != docs+1 {
		t.Errorf("second recovery documents = %d, want %d", got, docs+1)
	}
}

// TestDurableCheckpointTruncatesLog checkpoints and asserts the log
// shrank to (at most) its header while recovery still reproduces the full
// state from the checkpoint alone.
func TestDurableCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	src := articleSrc(t)
	if _, err := db.LoadDocuments([]string{src, src}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("log after checkpoint: %d bytes, want < %d", len(after), len(before))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint-") {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Errorf("checkpoint files = %d, want 1", ckpts)
	}
	epoch := db.Epoch()
	docs := len(db.Loader.Documents())
	count := articleCount(t, db)
	db.Close()

	rdb := reopenDurable(t, dir)
	if got := rdb.Epoch(); got != epoch {
		t.Errorf("recovered epoch = %d, want %d", got, epoch)
	}
	if got := len(rdb.Loader.Documents()); got != docs {
		t.Errorf("recovered documents = %d, want %d", got, docs)
	}
	if got := articleCount(t, rdb); got != count {
		t.Errorf("recovered articles = %d, want %d", got, count)
	}
	mustQuery(t, rdb, chaosQuery) // the naming came back through the checkpoint
	// Writes after a checkpoint land in the (truncated) log and recover on
	// top of the checkpointed base.
	if _, err := rdb.LoadDocuments([]string{src}); err != nil {
		t.Fatal(err)
	}
	epoch2 := rdb.Epoch()
	rdb.Close()
	rdb2 := reopenDurable(t, dir)
	if got := rdb2.Epoch(); got != epoch2 {
		t.Errorf("post-checkpoint recovery epoch = %d, want %d", got, epoch2)
	}
	if got := len(rdb2.Loader.Documents()); got != docs+1 {
		t.Errorf("post-checkpoint recovery documents = %d, want %d", got, docs+1)
	}
}

// TestDurableAutoCheckpoint lets the background checkpointer (cadence 2)
// compact the log and asserts recovery still works — the asynchronous
// variant of the test above.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDTD(string(dtd), WithDataDir(dir), WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	src := articleSrc(t)
	for i := 0; i < 6; i++ {
		if _, err := db.LoadDocuments([]string{src}); err != nil {
			t.Fatal(err)
		}
	}
	epoch := db.Epoch()
	docs := len(db.Loader.Documents())
	db.Close() // waits for the checkpointer to drain

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint-") {
			found = true
		}
	}
	if !found {
		t.Error("no checkpoint file after 6 committed records at cadence 2")
	}
	rdb := reopenDurable(t, dir)
	if got := rdb.Epoch(); got != epoch {
		t.Errorf("recovered epoch = %d, want %d", got, epoch)
	}
	if got := len(rdb.Loader.Documents()); got != docs {
		t.Errorf("recovered documents = %d, want %d", got, docs)
	}
}

// TestDurableDTDPinned asserts a data directory refuses a different DTD —
// both via the schema log record and via a checkpoint.
func TestDurableDTDPinned(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	other := `<!ELEMENT note (#PCDATA)>`
	if _, err := OpenDTD(other, WithDataDir(t.TempDir())); err != nil {
		t.Fatalf("control open: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := OpenDTD(other, WithDataDir(dir)); err == nil || !strings.Contains(err.Error(), "different DTD") {
		t.Errorf("open with different DTD: err = %v, want DTD mismatch", err)
	}
}

// TestDurableSnapshotRejected: OpenSnapshot cannot replay loads (no DTD),
// so combining it with WithDataDir must fail loudly, not silently run
// without durability.
func TestDurableSnapshotRejected(t *testing.T) {
	db := openChaosDB(t)
	snap := filepath.Join(t.TempDir(), "db.snapshot")
	if err := db.Save(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(snap, WithDataDir(t.TempDir())); err == nil {
		t.Error("OpenSnapshot with WithDataDir succeeded, want error")
	}
	if _, err := OpenSnapshot(snap); err != nil {
		t.Errorf("OpenSnapshot without data dir: %v", err)
	}
}

// TestDurableErrCorruptLogRoundTrip pins the sentinel plumbing: the
// public alias, errors.Is through the facade's wrapping, and that a torn
// tail does NOT surface it.
func TestDurableErrCorruptLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := seedDurableDB(t, dir)
	if _, err := db.LoadDocuments([]string{articleSrc(t)}); err != nil {
		t.Fatal(err)
	}
	db.Close()
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Torn tail: drop the last byte — recovery succeeds, no sentinel.
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	rdb := reopenDurable(t, dir)
	rdb.Close()
	// Non-tail damage: flip a payload byte of the first record (the CRC
	// fails with records behind it, which cannot be a torn tail).
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	data[13+8+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	dtd, err := os.ReadFile("testdata/article.dtd")
	if err != nil {
		t.Fatal(err)
	}
	_, err = OpenDTD(string(dtd), WithDataDir(dir))
	if err == nil {
		t.Fatal("open on corrupt log succeeded")
	}
	if !errors.Is(err, ErrCorruptLog) {
		t.Errorf("errors.Is(err, sgmldb.ErrCorruptLog) = false for %v", err)
	}
}

// TestDurableCloseIdempotent: Close twice, and Close on an in-memory
// database, are no-ops.
func TestDurableCloseIdempotent(t *testing.T) {
	db := openChaosDB(t)
	if err := db.Close(); err != nil {
		t.Errorf("Close on in-memory db: %v", err)
	}
	dir := t.TempDir()
	ddb := seedDurableDB(t, dir)
	if err := ddb.Close(); err != nil {
		t.Errorf("first Close: %v", err)
	}
	if err := ddb.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// Writes after Close fail but do not corrupt the in-memory state.
	if _, err := ddb.LoadDocuments([]string{articleSrc(t)}); err == nil {
		t.Error("load after Close succeeded")
	}
	mustQuery(t, ddb, chaosQuery)
}

// TestInMemoryUnchanged: without WithDataDir nothing durable is
// configured — no log, no checkpointer, no files — and loads behave as
// before.
func TestInMemoryUnchanged(t *testing.T) {
	db := openChaosDB(t)
	if db.walLog != nil || db.ckptCh != nil || db.dataDir != "" {
		t.Error("in-memory database grew durability state")
	}
	if _, err := db.LoadDocuments([]string{articleSrc(t)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Errorf("Checkpoint on in-memory db: %v", err)
	}
}
