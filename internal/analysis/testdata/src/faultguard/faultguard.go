// Package faultguard exercises the faultpoint analyzer: production code
// may declare injection sites as package-level vars and Hit them; the
// arming machinery is test-only and anything else is flagged.
package faultguard

import (
	"sgmldb/internal/analysis/testdata/src/faultguard/faultpoint"
)

// A package-level declaration is the sanctioned form.
var fpGood = faultpoint.New("guard/good")

// Grouped declarations are fine too.
var (
	fpOther = faultpoint.New("guard/other")
)

// hitOnPath is the sanctioned probe.
func hitOnPath() error {
	if err := fpGood.Hit(); err != nil {
		return err
	}
	return fpOther.Hit()
}

// declareDynamically creates a site at run time, defeating enumerability.
func declareDynamically(name string) *faultpoint.Point {
	return faultpoint.New(name) // want "faultpoint.New outside a package-level var"
}

// armInProduction reaches for the test-only machinery.
func armInProduction() {
	inject := faultpoint.Error(nil)              // want "faultpoint.Error is test-only"
	defer faultpoint.Arm("guard/good", inject)() // want "faultpoint.Arm is test-only"
}

// resetEverything is suppressible with an annotation like any analyzer.
func resetEverything() {
	//lint:allow faultpoint fixture demonstrates suppression
	faultpoint.DisarmAll()
}

// The commit-path shape used by the write-ahead log: several seam sites
// declared in one grouped var, probed in order along a single function.
var (
	fpSeamAppend = faultpoint.New("guard/wal-append")
	fpSeamSync   = faultpoint.New("guard/wal-post-fsync")
	fpSeamRename = faultpoint.New("guard/wal-checkpoint-rename")
)

// commitBatch hits every seam on the way through, like Log.Append and
// WriteCheckpoint do. All sanctioned.
func commitBatch() error {
	if err := fpSeamAppend.Hit(); err != nil {
		return err
	}
	if err := fpSeamSync.Hit(); err != nil {
		return err
	}
	return fpSeamRename.Hit()
}

// armCrashSeam wires a crash simulation into production code — the
// injector constructors are as test-only as Arm itself.
func armCrashSeam() {
	inject := faultpoint.Error(nil)          // want "faultpoint.Error is test-only"
	fire := faultpoint.Once(inject)          // want "faultpoint.Once is test-only"
	_ = faultpoint.After(2, fire)            // want "faultpoint.After is test-only"
	faultpoint.Arm("guard/wal-append", fire) // want "faultpoint.Arm is test-only"
}

// enumerateSeams inspects the registry, which only the chaos suite's
// site-enumeration test should do.
func enumerateSeams() []string {
	return faultpoint.Names() // want "faultpoint.Names is test-only"
}
