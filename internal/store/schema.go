// Package store implements the schema and instance layer of Section 5.1:
// schemas (C, σ, ≺, M, G) over the extended O₂ data model, instances
// (π, ν, μ, γ) with disjoint per-class oid extents, the Figure 3 constraint
// language, and snapshot persistence. It is the from-scratch substitute for
// the O₂ OODBMS the paper targets: everything the query languages of
// Sections 4–5 need is defined against this layer.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"sgmldb/internal/object"
)

// MethodSig is a method signature in M. Methods are carried for
// completeness, as in the paper ("we do not discuss methods here and
// introduce them just for the sake of completeness"): the calculus treats
// them as interpreted functions registered on the instance.
type MethodSig struct {
	Class  string        // receiver class
	Name   string        // method name
	Params []object.Type // parameter types
	Result object.Type   // result type
}

// String renders the signature, e.g. "Article::text(): string".
func (m MethodSig) String() string {
	var b strings.Builder
	b.WriteString(m.Class)
	b.WriteString("::")
	b.WriteString(m.Name)
	b.WriteByte('(')
	for i, p := range m.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(")")
	if m.Result != nil {
		b.WriteString(": ")
		b.WriteString(m.Result.String())
	}
	return b.String()
}

// Schema is a 5-tuple (C, σ, ≺, M, G): a well-formed class hierarchy, a set
// of method signatures and a set of named persistence roots with their
// types.
//
// Concurrency: schemas follow the single-writer/multi-reader discipline —
// mutators (AddClass, AddRoot, …) must not run concurrently with readers.
// Version is safe to read at any time and lets caches built from the
// schema (e.g. compiled algebra plans) detect staleness.
type Schema struct {
	hierarchy   *object.Hierarchy
	methods     []MethodSig
	roots       map[string]object.Type // G with type(g)
	rootOrder   []string
	constraints map[string][]Constraint    // per class, Figure 3 style
	private     map[string]map[string]bool // class -> private attribute names

	// version counts schema mutations; anything compiled against the
	// schema (candidate-valuation guides, cached plans) records it and
	// recompiles when it moves.
	version atomic.Uint64
}

// Version reports the schema's mutation counter. It increases on every
// structural change (class, inheritance, root, constraint, method or
// privacy declaration), so a cache keyed by (input, Version) never serves
// a plan compiled against a stale schema.
func (s *Schema) Version() uint64 { return s.version.Load() }

func (s *Schema) bumpVersion() { s.version.Add(1) }

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		hierarchy:   object.NewHierarchy(),
		roots:       make(map[string]object.Type),
		constraints: make(map[string][]Constraint),
		private:     make(map[string]map[string]bool),
	}
}

// Hierarchy exposes the class hierarchy (C, σ, ≺).
func (s *Schema) Hierarchy() *object.Hierarchy { return s.hierarchy }

// Clone returns a copy of the schema that shares the class hierarchy,
// methods, constraints and privacy marks (immutable once the DTD mapping
// is compiled) but owns its persistence-root declarations. It supports
// the copy-on-write write path: declaring a root at run time mutates the
// clone, so readers pinned to an older instance version keep a stable
// view of G. The clone starts at the receiver's version; mutating it
// bumps the clone's counter only.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		hierarchy:   s.hierarchy,
		methods:     s.methods,
		constraints: s.constraints,
		private:     s.private,
		roots:       make(map[string]object.Type, len(s.roots)),
		rootOrder:   append([]string(nil), s.rootOrder...),
	}
	for g, t := range s.roots {
		c.roots[g] = t
	}
	c.version.Store(s.version.Load())
	return c
}

// AddClass declares a class with its type σ(name).
func (s *Schema) AddClass(name string, typ object.Type) error {
	s.bumpVersion()
	return s.hierarchy.AddClass(name, typ)
}

// SetClassType replaces σ(name); used when compiling recursive DTDs.
func (s *Schema) SetClassType(name string, typ object.Type) error {
	s.bumpVersion()
	return s.hierarchy.SetType(name, typ)
}

// AddInherits records c ≺ sup.
func (s *Schema) AddInherits(c, sup string) error {
	s.bumpVersion()
	return s.hierarchy.AddInherits(c, sup)
}

// AddMethod registers a method signature in M.
func (s *Schema) AddMethod(m MethodSig) error {
	if !s.hierarchy.Has(m.Class) {
		return fmt.Errorf("store: method %s on undeclared class %q", m.Name, m.Class)
	}
	s.methods = append(s.methods, m)
	s.bumpVersion()
	return nil
}

// Methods returns the method signatures.
func (s *Schema) Methods() []MethodSig {
	out := make([]MethodSig, len(s.methods))
	copy(out, s.methods)
	return out
}

// AddRoot declares a persistence root g ∈ G with its type.
func (s *Schema) AddRoot(name string, typ object.Type) error {
	if name == "" {
		return fmt.Errorf("store: empty root name")
	}
	if _, ok := s.roots[name]; ok {
		return fmt.Errorf("store: root %q already declared", name)
	}
	s.roots[name] = typ
	s.rootOrder = append(s.rootOrder, name)
	s.bumpVersion()
	return nil
}

// RootType returns type(g) and whether g is declared.
func (s *Schema) RootType(name string) (object.Type, bool) {
	t, ok := s.roots[name]
	return t, ok
}

// Roots returns the persistence root names in declaration order.
func (s *Schema) Roots() []string {
	out := make([]string, len(s.rootOrder))
	copy(out, s.rootOrder)
	return out
}

// AddConstraint attaches a Figure 3 style constraint to a class.
func (s *Schema) AddConstraint(class string, c Constraint) error {
	if !s.hierarchy.Has(class) {
		return fmt.Errorf("store: constraint on undeclared class %q", class)
	}
	s.constraints[class] = append(s.constraints[class], c)
	s.bumpVersion()
	return nil
}

// Constraints returns the constraints declared on a class.
func (s *Schema) Constraints(class string) []Constraint {
	cs := s.constraints[class]
	out := make([]Constraint, len(cs))
	copy(out, cs)
	return out
}

// MarkPrivate records that an attribute of a class is private (Figure 3's
// "private status: string"). Private attributes are stored and queryable by
// the engine but hidden from schema printing of the public type.
func (s *Schema) MarkPrivate(class, attr string) error {
	if !s.hierarchy.Has(class) {
		return fmt.Errorf("store: private attribute on undeclared class %q", class)
	}
	m := s.private[class]
	if m == nil {
		m = make(map[string]bool)
		s.private[class] = m
	}
	m[attr] = true
	s.bumpVersion()
	return nil
}

// IsPrivate reports whether class.attr was marked private.
func (s *Schema) IsPrivate(class, attr string) bool {
	return s.private[class][attr]
}

// Check validates the schema: the hierarchy must be well formed and root
// types must only mention declared classes.
func (s *Schema) Check() error {
	if err := s.hierarchy.Check(); err != nil {
		return err
	}
	for _, g := range s.rootOrder {
		if err := s.checkTypeRefs(s.roots[g]); err != nil {
			return fmt.Errorf("store: root %q: %w", g, err)
		}
	}
	for _, c := range s.hierarchy.Classes() {
		t, _ := s.hierarchy.TypeOf(c)
		if err := s.checkTypeRefs(t); err != nil {
			return fmt.Errorf("store: class %q: %w", c, err)
		}
	}
	return nil
}

func (s *Schema) checkTypeRefs(t object.Type) error {
	switch ty := t.(type) {
	case object.ClassType:
		if !s.hierarchy.Has(ty.Name) {
			return fmt.Errorf("undeclared class %q in type", ty.Name)
		}
	case object.ListType:
		return s.checkTypeRefs(ty.Elem)
	case object.SetType:
		return s.checkTypeRefs(ty.Elem)
	case object.TupleType:
		for _, f := range ty.Fields() {
			if err := s.checkTypeRefs(f.Type); err != nil {
				return err
			}
		}
	case object.UnionType:
		for _, a := range ty.Alts() {
			if err := s.checkTypeRefs(a.Type); err != nil {
				return err
			}
		}
	default:
		// atomic and any types reference no classes
	}
	return nil
}

// String renders the schema in the Figure 3 surface syntax.
func (s *Schema) String() string {
	var b strings.Builder
	for _, c := range s.hierarchy.Classes() {
		b.WriteString("class ")
		b.WriteString(c)
		if ps := s.hierarchy.Parents(c); len(ps) > 0 {
			sorted := append([]string(nil), ps...)
			sort.Strings(sorted)
			b.WriteString(" inherit ")
			b.WriteString(strings.Join(sorted, ", "))
		}
		t, _ := s.hierarchy.TypeOf(c)
		if tt, ok := t.(object.TupleType); !ok || tt.Len() > 0 {
			b.WriteString(" public type ")
			b.WriteString(s.typeString(c, t))
		}
		if cs := s.constraints[c]; len(cs) > 0 {
			b.WriteString("\n  constraint: ")
			parts := make([]string, len(cs))
			for i, con := range cs {
				parts[i] = con.String()
			}
			b.WriteString(strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	for _, g := range s.rootOrder {
		fmt.Fprintf(&b, "name %s: %s\n", g, s.roots[g])
	}
	return b.String()
}

// typeString renders a class type, annotating private attributes.
func (s *Schema) typeString(class string, t object.Type) string {
	tt, ok := t.(object.TupleType)
	if !ok {
		return t.String()
	}
	var b strings.Builder
	b.WriteString("tuple(")
	for i, f := range tt.Fields() {
		if i > 0 {
			b.WriteString(", ")
		}
		if s.IsPrivate(class, f.Name) {
			b.WriteString("private ")
		}
		b.WriteString(f.Name)
		b.WriteString(": ")
		b.WriteString(f.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}
