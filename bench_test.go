package sgmldb

// The benchmark harness of EXPERIMENTS.md: one benchmark family per
// experiment row. The paper has no performance tables; these benchmarks
// quantify its performance *claims*:
//
//	B1 restricted path semantics "can be implemented with efficient
//	   algebraic techniques" (naive calculus vs (★) algebra plans)
//	B2 full-text indexing integration (contains by scan vs inverted index)
//	B3 restricted vs liberal path semantics (schema-bounded vs
//	   data-bounded enumeration with loop detection)
//	B4 the storage cost of the mapping and load throughput
//	B5 union-type expansion ("combinatorial explosion … should rarely
//	   happen"): (★) branch counts under growing union fan-out
//	B6 algebra operator microbenchmarks
//	B7 the paper's queries Q1–Q6 end to end
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"sgmldb/internal/algebra"
	"sgmldb/internal/calculus"
	"sgmldb/internal/corpus"
	"sgmldb/internal/object"
	"sgmldb/internal/oql"
	"sgmldb/internal/path"
	"sgmldb/internal/store"
	"sgmldb/internal/text"
)

// benchDB caches corpora across benchmarks (building is itself B4).
var benchDBs = map[string]*corpus.Database{}

func articlesDB(b *testing.B, docs int) *corpus.Database {
	b.Helper()
	key := fmt.Sprintf("articles-%d", docs)
	if db, ok := benchDBs[key]; ok {
		return db
	}
	db, err := corpus.BuildArticles(corpus.Params{Docs: docs, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchDBs[key] = db
	return db
}

func lettersDB(b *testing.B, docs int) *corpus.Database {
	b.Helper()
	key := fmt.Sprintf("letters-%d", docs)
	if db, ok := benchDBs[key]; ok {
		return db
	}
	db, err := corpus.BuildLetters(corpus.Params{Docs: docs, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	benchDBs[key] = db
	return db
}

func engineFor(db *corpus.Database, algebraMode bool, withIndex bool) *oql.Engine {
	e := oql.New(db.Env)
	e.UseAlgebra = algebraMode
	if withIndex {
		e.Index = db.Index
	}
	return e
}

func runQuery(b *testing.B, e *oql.Engine, q string) object.Value {
	b.Helper()
	v, err := e.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// ---------------------------------------------------------------- B1 ----

// BenchmarkAlgebraizationNaive and …Algebra evaluate the same
// path-variable query (Q3's shape over the whole corpus): the naive
// calculus interprets the path variable by enumerating every concrete
// path; the algebra navigates only the schema-derived candidate shapes.
func BenchmarkAlgebraization(b *testing.B) {
	const q = `select t from a in Articles, a PATH_p.title(t)`
	for _, docs := range []int{2, 6, 12} {
		db := articlesDB(b, docs)
		b.Run(fmt.Sprintf("Naive/docs=%d", docs), func(b *testing.B) {
			e := engineFor(db, false, false)
			lowered, err := e.Lower(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Env.Eval(lowered); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Algebra/docs=%d", docs), func(b *testing.B) {
			e := engineFor(db, true, false)
			plan, err := e.Plan(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := algebra.NewCtx(db.Env)
				if _, err := plan.Run(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Ablation: the same compiled plan with the satisfiability
		// pruning disabled isolates the contribution of the (★) analysis.
		b.Run(fmt.Sprintf("AlgebraNoPrune/docs=%d", docs), func(b *testing.B) {
			e := engineFor(db, true, false)
			lowered, err := e.Lower(q)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := algebra.Translate(db.Env, lowered, algebra.Options{NoPrune: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := algebra.NewCtx(db.Env)
				if _, err := plan.Run(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- B2 ----

// BenchmarkContains compares contains evaluated by scanning document text
// against the inverted-index access path. w0000 is the most frequent
// Zipf word (low selectivity), w0400 a rare one (high selectivity).
func BenchmarkContains(b *testing.B) {
	db := articlesDB(b, 12)
	for _, word := range []string{"w0000", "w0400"} {
		q := fmt.Sprintf(`select a from a in Articles where a contains "%s"`, word)
		b.Run("Scan/"+word, func(b *testing.B) {
			e := engineFor(db, false, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, e, q)
			}
		})
		b.Run("Index/"+word, func(b *testing.B) {
			e := engineFor(db, true, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, e, q)
			}
		})
	}
}

// BenchmarkPatternEngine measures the from-scratch NFA against the
// pathological pattern that ruins backtracking engines.
func BenchmarkPatternEngine(b *testing.B) {
	pat := text.MustCompile("(a|b)*abb")
	input := ""
	for i := 0; i < 256; i++ {
		input += "ab"
	}
	input += "abb"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pat.Match(input) {
			b.Fatal("must match")
		}
	}
}

// ---------------------------------------------------------------- B3 ----

// chainInstance builds a linked list of n Node objects with a back
// pointer, giving the liberal semantics a data-bounded path space and the
// restricted semantics a schema-bounded one.
func chainInstance(b *testing.B, n int) (*store.Instance, object.OID) {
	b.Helper()
	s := store.NewSchema()
	if err := s.AddClass("Node", object.TupleOf(
		object.TField{Name: "label", Type: object.StringType},
		object.TField{Name: "next", Type: object.Class("Node")},
	)); err != nil {
		b.Fatal(err)
	}
	if err := s.AddRoot("Head", object.Class("Node")); err != nil {
		b.Fatal(err)
	}
	in := store.NewInstance(s)
	oids := make([]object.OID, n)
	for i := 0; i < n; i++ {
		o, err := in.NewObject("Node", object.Nil{})
		if err != nil {
			b.Fatal(err)
		}
		oids[i] = o
	}
	for i := 0; i < n; i++ {
		next := object.Value(object.Nil{})
		if i+1 < n {
			next = oids[i+1]
		} else {
			next = oids[0] // cycle back
		}
		if err := in.SetValue(oids[i], object.NewTuple(
			object.Field{Name: "label", Value: object.String_(fmt.Sprintf("n%d", i))},
			object.Field{Name: "next", Value: next},
		)); err != nil {
			b.Fatal(err)
		}
	}
	if err := in.SetRoot("Head", oids[0]); err != nil {
		b.Fatal(err)
	}
	return in, oids[0]
}

// BenchmarkPathSemantics contrasts the restricted semantics (paths bounded
// by the schema: Node dereferenced once) with the liberal semantics
// (paths bounded by the data: the whole cycle, with loop detection).
func BenchmarkPathSemantics(b *testing.B) {
	for _, n := range []int{8, 64} {
		in, head := chainInstance(b, n)
		for _, sem := range []path.Semantics{path.Restricted, path.Liberal} {
			b.Run(fmt.Sprintf("%s/nodes=%d", sem, n), func(b *testing.B) {
				var count int
				for i := 0; i < b.N; i++ {
					count = len(path.Enumerate(in, head, path.Options{Semantics: sem}))
				}
				b.ReportMetric(float64(count), "paths")
			})
		}
	}
}

// ---------------------------------------------------------------- B4 ----

// BenchmarkLoad measures parse+map+load throughput and reports the
// storage overhead of the mapping (instance bytes per raw SGML byte) —
// the Section 3 "extra cost in storage".
func BenchmarkLoad(b *testing.B) {
	for _, docs := range []int{5, 20} {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			var db *corpus.Database
			var err error
			for i := 0; i < b.N; i++ {
				db, err = corpus.BuildArticles(corpus.Params{Docs: docs, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			st := db.Loader.Instance.Stats()
			b.ReportMetric(float64(st.Objects), "objects")
			b.ReportMetric(float64(st.ValueBytes)/float64(db.RawBytes), "overhead×")
			b.SetBytes(int64(db.RawBytes))
		})
	}
}

// BenchmarkSnapshot measures snapshot serialisation round trips.
func BenchmarkSnapshot(b *testing.B) {
	db := articlesDB(b, 10)
	dir := b.TempDir()
	path := dir + "/bench.snap"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.SaveFile(path, db.Loader.Instance); err != nil {
			b.Fatal(err)
		}
		if _, err := store.LoadFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- B5 ----

// BenchmarkUnionExpansion measures the (★) branch count as union fan-out
// grows: the paper's "combinatorial explosion of types" controlled by the
// MaxBranches guard. The reported branches metric is the cost driver.
func BenchmarkUnionExpansion(b *testing.B) {
	for _, fanout := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			env := unionSchemaEnv(b, fanout)
			q := &calculus.Query{
				Head: []calculus.VarDecl{{Name: "X", Sort: calculus.SortData}},
				Body: calculus.Exists{
					Vars: []calculus.VarDecl{{Name: "P", Sort: calculus.SortPath}},
					Body: calculus.PathAtom{
						Base: calculus.NameRef{Name: "Root"},
						Path: calculus.P(
							calculus.ElemVar{Name: "P"},
							calculus.ElemAttr{A: calculus.AttrName{Name: "leaf"}},
							calculus.ElemBind{X: "X"},
						),
					},
				},
			}
			var branches int
			for i := 0; i < b.N; i++ {
				plan, err := algebra.Translate(env, q, algebra.Options{MaxBranches: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				branches = plan.Branches
			}
			b.ReportMetric(float64(branches), "branches")
		})
	}
}

// unionSchemaEnv builds a schema whose root type nests two levels of
// k-way unions ending in a leaf attribute.
func unionSchemaEnv(b *testing.B, k int) *calculus.Env {
	b.Helper()
	s := store.NewSchema()
	inner := make([]object.TField, k)
	for i := range inner {
		// Distinct alternative types: each carries its own marker field
		// beside the common leaf, so the candidate space grows with the
		// fan-out.
		inner[i] = object.TField{Name: fmt.Sprintf("i%d", i), Type: object.TupleOf(
			object.TField{Name: "leaf", Type: object.StringType},
			object.TField{Name: fmt.Sprintf("tag%d", i), Type: object.IntType},
		)}
	}
	innerU := object.UnionOf(inner...)
	outer := make([]object.TField, k)
	for i := range outer {
		outer[i] = object.TField{Name: fmt.Sprintf("o%d", i),
			Type: object.TupleOf(object.TField{Name: "child", Type: innerU})}
	}
	if err := s.AddRoot("Root", object.UnionOf(outer...)); err != nil {
		b.Fatal(err)
	}
	in := store.NewInstance(s)
	_ = in.SetRoot("Root", object.NewUnion("o0", object.NewTuple(
		object.Field{Name: "child", Value: object.NewUnion("i0", object.NewTuple(
			object.Field{Name: "leaf", Value: object.String_("x")},
			object.Field{Name: "tag0", Value: object.Int(0)},
		))},
	)))
	return calculus.NewEnv(in)
}

// ---------------------------------------------------------------- B6 ----

// BenchmarkAlgebraOps microbenchmarks the distinctive operators: variant
// selection through implicit selectors (sections of either union branch)
// and heterogeneous-list unnesting (Q6's tuple-as-list view).
func BenchmarkAlgebraOps(b *testing.B) {
	db := articlesDB(b, 8)
	b.Run("VariantSelect", func(b *testing.B) {
		e := engineFor(db, true, false)
		const q = `select ss from a in Articles, s in a.sections, ss in s.subsectns`
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, e, q)
		}
	})
	b.Run("HeterogeneousUnnest", func(b *testing.B) {
		ldb := lettersDB(b, 16)
		e := engineFor(ldb, true, false)
		const q = `
select letter
from letter in Letters, from(i) in letter.preamble, to(j) in letter.preamble
where i < j`
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, e, q)
		}
	})
	b.Run("PathEnumeration", func(b *testing.B) {
		inst := db.Loader.Instance
		doc := db.Loader.Documents()[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			path.Enumerate(inst, doc, path.Options{})
		}
	})
}

// ---------------------------------------------------------------- B7 ----

// BenchmarkQ1 through BenchmarkQ6 run the paper's own queries end to end
// over the synthetic corpus, under both evaluators.
func benchBoth(b *testing.B, db *corpus.Database, q string, withIndex bool) {
	for _, mode := range []struct {
		name    string
		algebra bool
	}{{"Naive", false}, {"Algebra", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := engineFor(db, mode.algebra, withIndex)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runQuery(b, e, q)
			}
		})
	}
}

func BenchmarkQ1(b *testing.B) {
	db := articlesDB(b, 8)
	benchBoth(b, db, `
select tuple (t: a.title, f_author: first(a.authors))
from a in Articles, s in a.sections
where s.title contains ("Section" and "w0000")`, true)
}

func BenchmarkQ2(b *testing.B) {
	db := articlesDB(b, 8)
	benchBoth(b, db, `
select ss from a in Articles, s in a.sections, ss in s.subsectns
where ss contains "w0001"`, true)
}

func BenchmarkQ3(b *testing.B) {
	db := articlesDB(b, 4)
	// Name the first document for the single-article queries.
	nameFirst(b, db, "my_article")
	benchBoth(b, db, `select t from my_article PATH_p.title(t)`, false)
}

func BenchmarkQ4(b *testing.B) {
	db := articlesDB(b, 4)
	nameFirst(b, db, "my_article")
	docs := db.Loader.Documents()
	if err := nameDoc(db, "my_old_article", docs[1]); err != nil {
		b.Fatal(err)
	}
	e := engineFor(db, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runQuery(b, e, `my_article PATH_p - my_old_article PATH_p`)
	}
}

func BenchmarkQ5(b *testing.B) {
	db := articlesDB(b, 4)
	nameFirst(b, db, "my_article")
	benchBoth(b, db, `
select name(ATT_a)
from my_article PATH_p.ATT_a(val)
where val contains ("final")`, false)
}

func BenchmarkQ6(b *testing.B) {
	db := lettersDB(b, 16)
	benchBoth(b, db, `
select letter
from letter in Letters, from(i) in letter.preamble, to(j) in letter.preamble
where i < j`, false)
}

func nameFirst(b *testing.B, db *corpus.Database, name string) {
	b.Helper()
	if err := nameDoc(db, name, db.Loader.Documents()[0]); err != nil {
		b.Fatal(err)
	}
}

func nameDoc(db *corpus.Database, name string, oid object.OID) error {
	schema := db.Loader.Instance.Schema()
	class, _ := db.Loader.Instance.ClassOf(oid)
	if _, ok := schema.RootType(name); !ok {
		if err := schema.AddRoot(name, object.Class(class)); err != nil {
			return err
		}
	}
	return db.Loader.Instance.SetRoot(name, oid)
}
